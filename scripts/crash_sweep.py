#!/usr/bin/env python3
"""Randomized crash-harness sweep for CI.

Drives bench/flit_crashtest over the full matrix — both layouts x all
three durability modes through the direct API, plus both layouts through
the network path — until a target number of randomized kill points is
reached (default 200) or the time box expires. Every cell's RNG seed is
derived from one master seed, which is printed up front and again on any
failure so a red run is reproducible with --seed.

The sweep ends with a seeded-bug validation round: the harness is re-run
with FLIT_CRASHTEST_UNSAFE_ACK=1 (an intentionally planted
ack-before-durable bug) and must REPORT a violation — proving the
detector still detects.

Usage:
  scripts/crash_sweep.py --crashtest build/bench/flit_crashtest \\
      --server build/bench/flit_server [--kills 200] [--time-box 900] \\
      [--seed N]
"""

import argparse
import os
import random
import subprocess
import sys
import tempfile
import time

API_MATRIX = [
    (layout, durability)
    for layout in ("hashed", "ordered")
    for durability in ("never", "everysec", "always")
]
NET_MATRIX = [("hashed", "always"), ("ordered", "always")]


def run_cell(args, mode, layout, durability, iters, seed, workdir):
    img = os.path.join(workdir, f"sweep_{mode}_{layout}_{durability}.img")
    cmd = [
        args.crashtest,
        f"--mode={mode}",
        f"--layout={layout}",
        f"--durability={durability}",
        f"--iters={iters}",
        f"--seed={seed}",
        f"--kill-max-ms={args.kill_max_ms}",
        f"--file={img}",
    ]
    if mode == "net":
        cmd.append(f"--server={args.server}")
    print(f"--- {mode}/{layout}/{durability}: {iters} kills, seed={seed}",
          flush=True)
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(
            f"FAIL: {mode}/{layout}/{durability} seed={seed} "
            f"(master seed {args.seed}); reproduce with:\n  {' '.join(cmd)}",
            file=sys.stderr,
            flush=True,
        )
        return False
    return True


def run_seeded_bug_check(args, seed, workdir):
    img = os.path.join(workdir, "sweep_seeded_bug.img")
    cmd = [
        args.crashtest,
        "--mode=api",
        "--layout=hashed",
        "--durability=never",
        "--iters=6",
        "--kill-min-ms=40",
        "--kill-max-ms=200",
        f"--seed={seed}",
        "--expect-violation",
        f"--file={img}",
    ]
    print(f"--- seeded-bug validation, seed={seed}", flush=True)
    env = dict(os.environ, FLIT_CRASHTEST_UNSAFE_ACK="1")
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        print(
            f"FAIL: the planted ack-before-durable bug went UNDETECTED "
            f"(seed={seed}, master seed {args.seed})",
            file=sys.stderr,
            flush=True,
        )
        return False
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--crashtest", required=True,
                    help="path to the flit_crashtest binary")
    ap.add_argument("--server", required=True,
                    help="path to the flit_server binary (net mode)")
    ap.add_argument("--kills", type=int, default=200,
                    help="total randomized kill points to aim for")
    ap.add_argument("--time-box", type=float, default=900.0,
                    help="stop starting new cells after this many seconds")
    ap.add_argument("--kill-max-ms", type=int, default=300)
    ap.add_argument("--seed", type=int, default=0,
                    help="master seed (0: randomize)")
    args = ap.parse_args()

    if args.seed == 0:
        args.seed = random.SystemRandom().randrange(1, 2**63)
    rng = random.Random(args.seed)
    print(f"crash_sweep: master seed {args.seed} "
          f"(reproduce with --seed {args.seed})", flush=True)

    # Net iterations cost more wall clock (server boot) than API ones, so
    # they get a smaller share of the kill budget.
    cells = [("api",) + c for c in API_MATRIX] + [("net",) + c
                                                 for c in NET_MATRIX]
    net_share = 0.2
    api_cells = len(API_MATRIX)
    net_cells = len(NET_MATRIX)
    per_api = max(1, round(args.kills * (1 - net_share) / api_cells))
    per_net = max(1, round(args.kills * net_share / net_cells))

    start = time.monotonic()
    kills = 0
    failures = 0
    skipped = []
    with tempfile.TemporaryDirectory(prefix="flit_crash_sweep_") as workdir:
        for mode, layout, durability in cells:
            if time.monotonic() - start > args.time_box:
                skipped.append(f"{mode}/{layout}/{durability}")
                continue
            iters = per_api if mode == "api" else per_net
            if not run_cell(args, mode, layout, durability, iters,
                            rng.randrange(1, 2**63), workdir):
                failures += 1
            else:
                kills += iters
        if not run_seeded_bug_check(args, rng.randrange(1, 2**63), workdir):
            failures += 1

    elapsed = time.monotonic() - start
    if skipped:
        print(f"crash_sweep: time box hit; skipped cells: "
              f"{', '.join(skipped)}", flush=True)
    if failures:
        print(
            f"crash_sweep: {failures} FAILING cell(s) after {kills} kills "
            f"in {elapsed:.0f}s — master seed {args.seed}",
            file=sys.stderr,
        )
        return 1
    print(f"crash_sweep: ok — {kills} randomized kill points, "
          f"0 violations, seeded bug detected, {elapsed:.0f}s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
