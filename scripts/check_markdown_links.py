#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans the given markdown files (or every top-level *.md when run without
arguments) for inline links/images ``[text](target)`` and reference
definitions ``[ref]: target``, and verifies that every *relative* target
exists on disk (anchors are stripped; external schemes, mailto and
in-page anchors are skipped). Exits 1 listing each broken link — this is
what keeps README/ARCHITECTURE/EXPERIMENTS cross-references valid; it
runs as the `docs_link_check` CTest entry and as a CI step.
"""

import re
import sys
from pathlib import Path

# [text](target "title") — target may not contain spaces/parens in our docs.
INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [ref]: target
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP = ("http://", "https://", "mailto:", "#")


def targets(text: str):
    in_code = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        yield from INLINE.findall(line)
        yield from REFDEF.findall(line)


def main(argv):
    root = Path(__file__).resolve().parent.parent
    files = [Path(a).resolve() for a in argv] or sorted(root.glob("*.md"))
    broken = []
    for md in files:
        for target in targets(md.read_text(encoding="utf-8")):
            if target.startswith(SKIP):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                broken.append(f"{md.relative_to(root)}: broken link -> {target}")
    for b in broken:
        print(b, file=sys.stderr)
    checked = ", ".join(str(f.relative_to(root)) for f in files)
    print(f"checked {len(files)} file(s): {checked}")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
