#!/usr/bin/env python3
"""Compare two benchmark JSON snapshots row by row.

Usage: bench_diff.py BASELINE.json CANDIDATE.json [--min-delta PCT]

Works on BENCH_ycsb_kv.json and BENCH_flit_loadgen.json alike. Rows are
matched on (words, layout, mix, batch, conns) — `conns` is the loadgen's
connection count and defaults to 0 for the in-process benches, so old
snapshots keep matching. For each matched row the throughput,
persistence-instruction, and (when present) p50/p99/p999 latency deltas
are printed as a table; rows present on only one side are listed
separately. Latency columns are tolerated, not required: snapshots
predating the histogram simply print 0. Exit status is always 0 — this
is a reporting tool, not a gate (the fence-coalescing gate lives in
check_fence_coalescing.py).

Rows that cannot be compared are never dropped silently: a key present
in only one snapshot, or appearing twice within one snapshot (later
occurrence wins), produces a WARNING on stderr.

Robustness counters (loadgen snapshots): each side's summed misses /
mismatches / errors / chaos_events are reported after the table. A
candidate with verification failures gets a WARNING — its throughput
numbers come from a broken run and should not be trusted — as does a
chaos/non-chaos mismatch between the sides (chaos rounds sacrifice
throughput on purpose, so the Mops delta is not like-for-like). `--self-test` exercises
both warnings against synthesized snapshots and is wired up as the
`bench_diff_selftest` CTest entry.
"""

import argparse
import json
import sys


def key(row):
    return (row["words"], row.get("layout", ""), row["mix"],
            row.get("batch", 1), row.get("conns", 0))


def warn(msg):
    print(f"WARNING: bench_diff: {msg}", file=sys.stderr, flush=True)


def load(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for r in data.get("rows", []):
        k = key(r)
        if k in rows:
            warn(f"{path}: duplicate row for {k}; keeping the later one")
        rows[k] = r
    return rows


def pct(new, old):
    if old == 0:
        return float("inf") if new > 0 else 0.0
    return 100.0 * (new - old) / old


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--min-delta", type=float, default=0.0,
                    help="only print rows whose |Mops delta| >= PCT")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    # The redundancy-lint columns (.get with 0.0: snapshots predating the
    # PersistCheck lint lack them). redundant_pwbs_per_op is only nonzero
    # when the bench ran under FLIT_PERSIST_CHECK; empty_pfences_per_op is
    # counted in every build.
    hdr = (f"{'words':<15} {'layout':<8} {'mix':<4} {'batch':>5} "
           f"{'conns':>5} "
           f"{'Mops':>8} {'Δ%':>8} {'pwbs/op':>9} {'Δ%':>8} "
           f"{'pfences/op':>11} {'Δ%':>8} {'rpwb/op':>8} {'Δ%':>8} "
           f"{'epf/op':>7} {'Δ%':>8} "
           f"{'p50us':>8} {'Δ%':>8} {'p99us':>8} {'Δ%':>8} "
           f"{'p999us':>8} {'Δ%':>8}")
    print(hdr)
    print("-" * len(hdr))
    for k in shared:
        b, c = base[k], cand[k]
        dm = pct(c["mops"], b["mops"])
        if abs(dm) < args.min_delta:
            continue
        dw = pct(c["pwbs_per_op"], b["pwbs_per_op"])
        df = pct(c.get("pfences_per_op", 0.0), b.get("pfences_per_op", 0.0))
        crp = c.get("redundant_pwbs_per_op", 0.0)
        cep = c.get("empty_pfences_per_op", 0.0)
        drp = pct(crp, b.get("redundant_pwbs_per_op", 0.0))
        dep = pct(cep, b.get("empty_pfences_per_op", 0.0))
        c50, c99, c999 = (c.get("p50_us", 0.0), c.get("p99_us", 0.0),
                          c.get("p999_us", 0.0))
        d50 = pct(c50, b.get("p50_us", 0.0))
        d99 = pct(c99, b.get("p99_us", 0.0))
        d999 = pct(c999, b.get("p999_us", 0.0))
        print(f"{k[0]:<15} {k[1]:<8} {k[2]:<4} {k[3]:>5} {k[4]:>5} "
              f"{c['mops']:>8.3f} {dm:>+7.1f}% {c['pwbs_per_op']:>9.3f} "
              f"{dw:>+7.1f}% {c.get('pfences_per_op', 0.0):>11.3f} "
              f"{df:>+7.1f}% {crp:>8.4f} {drp:>+7.1f}% "
              f"{cep:>7.4f} {dep:>+7.1f}% "
              f"{c50:>8.1f} {d50:>+7.1f}% {c99:>8.1f} {d99:>+7.1f}% "
              f"{c999:>8.1f} {d999:>+7.1f}%")

    for label, keys in (("only in baseline", only_base),
                        ("only in candidate", only_cand)):
        if keys:
            print(f"\n{label}:")
            for k in keys:
                print(f"  {k[0]} {k[1]} {k[2]} batch={k[3]} conns={k[4]}")
    if only_base:
        # A key that disappears between snapshots is the classic silent
        # regression hider (a bench cell stopped running): make it loud.
        warn(f"{len(only_base)} baseline row(s) have no candidate "
             f"counterpart and were NOT compared")
    if only_cand:
        warn(f"{len(only_cand)} candidate row(s) are new and have no "
             f"baseline to compare against")

    def robustness(rows):
        tot = {"misses": 0, "mismatches": 0, "errors": 0, "chaos_events": 0}
        for r in rows.values():
            for name in tot:
                tot[name] += int(r.get(name, 0))
        return tot

    rb, rc = robustness(base), robustness(cand)
    print(f"\nrobustness: baseline  misses={rb['misses']} "
          f"mismatches={rb['mismatches']} errors={rb['errors']} "
          f"chaos_events={rb['chaos_events']}")
    print(f"robustness: candidate misses={rc['misses']} "
          f"mismatches={rc['mismatches']} errors={rc['errors']} "
          f"chaos_events={rc['chaos_events']}")
    bad = rc["misses"] + rc["mismatches"] + rc["errors"]
    if bad:
        warn(f"candidate snapshot has {bad} verification failure(s) — "
             f"its throughput numbers come from a broken run")
    if (rb["chaos_events"] == 0) != (rc["chaos_events"] == 0):
        warn("one side ran --chaos and the other did not; chaos rounds "
             "sacrifice throughput on purpose, so Mops deltas are not "
             "like-for-like")

    print(f"\n{len(shared)} matched rows "
          f"({len(only_base)} baseline-only, {len(only_cand)} candidate-only)")
    return 0


def self_test():
    """Assert the dropped-row warnings actually fire."""
    import os
    import subprocess
    import tempfile

    def row(mix, mops, conns=0):
        return {"words": "flit-ht", "layout": "hashed", "mix": mix,
                "batch": 1, "conns": conns, "mops": mops,
                "pwbs_per_op": 2.0, "pfences_per_op": 1.0}

    with tempfile.TemporaryDirectory(prefix="bench_diff_selftest_") as tmp:
        base_path = os.path.join(tmp, "base.json")
        cand_path = os.path.join(tmp, "cand.json")
        # Baseline: mixes A and B, plus a duplicate of A (later wins).
        with open(base_path, "w") as f:
            json.dump({"rows": [row("A", 1.0), row("A", 1.5),
                                row("B", 2.0)]}, f)
        # Candidate: B disappeared, C is new; A carries verification
        # failures and chaos rounds — both must be called out.
        bad_a = dict(row("A", 1.6), errors=3, chaos_events=12)
        with open(cand_path, "w") as f:
            json.dump({"rows": [bad_a, row("C", 3.0)]}, f)

        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), base_path,
             cand_path],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)

    failures = []
    if proc.returncode != 0:
        failures.append(f"exit status {proc.returncode}, expected 0")
    if "duplicate row" not in proc.stderr:
        failures.append("no duplicate-row warning on stderr")
    if "NOT compared" not in proc.stderr:
        failures.append("no dropped-baseline-row warning on stderr")
    if "1 matched rows" not in proc.stdout:
        failures.append("expected exactly 1 matched row")
    if "verification failure" not in proc.stderr:
        failures.append("no broken-candidate robustness warning")
    if "like-for-like" not in proc.stderr:
        failures.append("no chaos-mismatch warning")
    if failures:
        for f in failures:
            print(f"bench_diff --self-test: FAIL: {f}", file=sys.stderr)
        print(f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1
    print("bench_diff --self-test: ok")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(main())
