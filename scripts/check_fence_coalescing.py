#!/usr/bin/env python3
"""Gate: batched writes must keep their pfence amortization.

Usage: check_fence_coalescing.py BENCH_ycsb_kv.json

For every batched row (batch > 1) of the write mixes A and F in the
multi-op sweep, asserts the deterministic kSimLatency/kNoOp-backend
invariant

    pfences/op  <=  (scalar pfences/op) / batch  +  EPSILON

where the scalar baseline is the batch=1 row of the same
(words, layout, mix). The bound is what the coalesced write path
guarantees by construction — one record fence plus one publish fence per
multi_put and one completion fence per multi_get, instead of the scalar
path's per-op record/publish/completion fences — so a regression to
per-op fencing (~2.5-3 pfences/op) fails loudly while run-to-run noise
(CAS retries, flush-if-tagged helping) stays inside EPSILON.

Exit 1 on any violation or if no batched write rows are found (an empty
gate would pass vacuously).
"""

import json
import sys

EPSILON = 0.5
WRITE_MIXES = {"A", "F"}


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)
    rows = data.get("rows", [])

    scalar = {}
    for r in rows:
        if r.get("batch", 1) == 1:
            # Last batch=1 row wins; the batched sweep's own baseline rows
            # come after the scalar sweep's, and either is a valid basis.
            scalar[(r["words"], r.get("layout", ""), r["mix"])] = r

    checked = 0
    failures = []
    for r in rows:
        batch = r.get("batch", 1)
        if batch <= 1 or r["mix"] not in WRITE_MIXES:
            continue
        k = (r["words"], r.get("layout", ""), r["mix"])
        base = scalar.get(k)
        if base is None:
            failures.append(f"no batch=1 baseline for {k}")
            continue
        bound = base["pfences_per_op"] / batch + EPSILON
        ok = r["pfences_per_op"] <= bound
        checked += 1
        status = "ok " if ok else "FAIL"
        print(f"{status} {k[0]:<12} {k[1]:<8} {k[2]} batch={batch:<3} "
              f"pfences/op={r['pfences_per_op']:.3f} "
              f"<= {base['pfences_per_op']:.3f}/{batch} + {EPSILON} "
              f"= {bound:.3f}")
        if not ok:
            failures.append(
                f"{k} batch={batch}: pfences/op={r['pfences_per_op']:.3f} "
                f"> {bound:.3f} — the fence coalescing regressed")

    if checked == 0:
        failures.append("no batched write-mix rows found; gate is vacuous")
    if failures:
        print("\nfence-coalescing gate FAILED:")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print(f"\nfence-coalescing gate OK ({checked} rows checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
