#!/usr/bin/env python3
"""End-to-end smoke gate for the network front-end (CTest `server_smoke`).

Boots flit-server on an ephemeral loopback port and drives it with
flit_loadgen, asserting the acceptance criteria of the network subsystem:

  1. Hashed layout, mix A: a scalar baseline (1 conn x pipeline 1) and a
     pipelined run (2 conns x pipeline 16) both complete with ZERO
     misses / mismatches / errors, and the pipelined run's pfences/op is
     measurably below the scalar run's — fence coalescing driven by real
     pipelined connections, not synthetic batch sweeps.
  2. Ordered layout, mix E: verified SCAN traffic (ascending keys, intact
     payloads) over the wire.
  3. Clean shutdown both times: an inline-protocol SHUTDOWN (exercising
     the telnet-style framing) for the hashed server, the loadgen's
     --shutdown for the ordered one; both servers must exit 0.
  4. Durability plumbing on a file-backed store: --durability=always must
     checkpoint with every write batch (STATS checkpoints delta grows
     with traffic) and --durability=everysec --flush-ms=50 must
     checkpoint on its timer even while idle — both asserted via STATS
     deltas, so a silently-dead flusher or a disconnected
     note_write_commit() fails the gate.
  5. Overload protection: with --max-conns=6 the seventh connection is
     shed (accepted then immediately closed), held-idle connections are
     reaped by --idle-timeout-ms, both visible in STATS
     (shed_conns/idle_timeouts), and a --chaos loadgen round (abandoned
     bursts, half-closes, torn frames) finishes with zero verification
     failures against the same server.
  6. (--failpoints builds only) Fault injection over the wire: with the
     server booted under --failpoints=pool.alloc=prob:0.5, SETs fail
     per-request with -ERR while GETs of successfully stored keys still
     verify, STATS injected_faults grows, and the server still shuts
     down cleanly.

Usage: server_smoke.py --server PATH --loadgen PATH [--seconds F]
                       [--failpoints]
"""

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

LISTEN_RE = re.compile(r"flit-server: listening on ([0-9.]+):(\d+)")

# Pipelined pfences/op must land below this fraction of scalar: with
# depth-16 bursts collapsing into multi-ops the true ratio is ~1/8 or
# better, so 0.6 is a loose-but-meaningful gate that tolerates CI noise.
COALESCE_RATIO = 0.6


def start_server(args, extra, env=None):
    cmd = [args.server, "--port=0"] + extra
    child_env = dict(os.environ, **env) if env else None
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=child_env)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(line)
        m = LISTEN_RE.search(line)
        if m:
            return proc, m.group(1), int(m.group(2))
    proc.kill()
    raise SystemExit("server_smoke: server never reported its port")


def run_loadgen(args, host, port, extra):
    cmd = [args.loadgen, f"--host={host}", f"--port={port}",
           f"--seconds={args.seconds}"] + extra
    print("server_smoke: $", " ".join(cmd), flush=True)
    res = subprocess.run(cmd, stdout=subprocess.PIPE,
                         stderr=subprocess.STDOUT, text=True)
    sys.stdout.write(res.stdout)
    if res.returncode != 0:
        raise SystemExit(f"server_smoke: loadgen failed (exit "
                         f"{res.returncode})")
    with open("BENCH_flit_loadgen.json") as f:
        return json.load(f)["rows"]


def inline_shutdown(host, port):
    """SHUTDOWN via the telnet-style inline framing (no RESP arrays):
    exercises the second parser path end to end."""
    with socket.create_connection((host, port), timeout=10) as s:
        s.sendall(b"SHUTDOWN\r\n")
        reply = s.recv(64)
    if not reply.startswith(b"+OK"):
        raise SystemExit(f"server_smoke: inline SHUTDOWN got {reply!r}")


def inline_stats(host, port):
    """Fetch STATS via the inline framing and parse its k=v fields."""
    with socket.create_connection((host, port), timeout=10) as s:
        s.sendall(b"STATS\r\n")
        buf = b""
        while b"\r\n" not in buf:
            buf += s.recv(4096)
        if not buf.startswith(b"$"):
            raise SystemExit(f"server_smoke: STATS got {buf!r}")
        header, _, rest = buf.partition(b"\r\n")
        want = int(header[1:]) + 2  # payload + trailing CRLF
        while len(rest) < want:
            rest += s.recv(4096)
    fields = {}
    for tok in rest[:want - 2].decode().split():
        if "=" in tok:
            k, _, v = tok.partition("=")
            fields[k] = int(v) if v.isdigit() else v
    return fields


def inline_roundtrip(sock, line):
    """Send one inline command, return the reply's first line (statuses
    and errors whole; bulk replies return the $N header — enough to
    classify the outcome)."""
    sock.sendall(line.encode() + b"\r\n")
    buf = b""
    while b"\r\n" not in buf:
        chunk = sock.recv(4096)
        if not chunk:
            return ""
        buf += chunk
    header = buf.partition(b"\r\n")[0].decode()
    if header.startswith("$") and not header.startswith("$-1"):
        want = int(header[1:]) + 2
        rest = buf.partition(b"\r\n")[2]
        while len(rest) < want:
            rest += sock.recv(4096)
    return header


def wait_exit(proc, what):
    try:
        code = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit(f"server_smoke: {what} did not exit after SHUTDOWN")
    for line in proc.stdout:
        sys.stdout.write(line)
    if code != 0:
        raise SystemExit(f"server_smoke: {what} exited {code}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--server", required=True)
    ap.add_argument("--loadgen", required=True)
    ap.add_argument("--seconds", type=float, default=0.3,
                    help="measurement time per loadgen point")
    ap.add_argument("--failpoints", action="store_true",
                    help="server was built with FLIT_FAILPOINTS=ON: also "
                         "run the fault-injection round")
    args = ap.parse_args()

    # --- round 1: hashed layout, scalar vs pipelined fence coalescing ----
    proc, host, port = start_server(args, ["--layout=hashed",
                                           "--workers=2", "--keys=4000"])
    scalar = run_loadgen(args, host, port,
                         ["--mix=A", "--keys=4000", "--conns=1",
                          "--pipeline=1"])[0]
    piped = run_loadgen(args, host, port,
                        ["--mix=A", "--keys=4000", "--conns=2",
                         "--pipeline=16", "--no-load"])[0]
    inline_shutdown(host, port)
    wait_exit(proc, "hashed server")

    for name, row in (("scalar", scalar), ("pipelined", piped)):
        bad = row["misses"] + row["mismatches"] + row["errors"]
        if bad:
            raise SystemExit(f"server_smoke: {name} run had {bad} "
                             f"verification failures")
    if scalar["pfences_per_op"] <= 0:
        raise SystemExit("server_smoke: scalar run recorded no pfences "
                         "(STATS plumbing broken?)")
    ratio = piped["pfences_per_op"] / scalar["pfences_per_op"]
    print(f"server_smoke: pfences/op scalar={scalar['pfences_per_op']:.3f} "
          f"pipelined={piped['pfences_per_op']:.3f} ratio={ratio:.3f} "
          f"(gate < {COALESCE_RATIO})")
    if ratio >= COALESCE_RATIO:
        raise SystemExit("server_smoke: pipelining did not coalesce fences")

    # --- round 2: ordered layout, verified SCAN + loadgen shutdown -------
    proc, host, port = start_server(args, ["--layout=ordered",
                                           "--workers=2", "--keys=4000"])
    scans = run_loadgen(args, host, port,
                        ["--mix=E", "--keys=4000", "--conns=2",
                         "--pipeline=4", "--shutdown"])[0]
    wait_exit(proc, "ordered server")
    bad = scans["misses"] + scans["mismatches"] + scans["errors"]
    if bad:
        raise SystemExit(f"server_smoke: scan run had {bad} verification "
                         f"failures")
    if scans["layout"] != "ordered":
        raise SystemExit("server_smoke: expected the ordered layout")

    # --- round 3: durability modes checkpoint on a file-backed store -----
    with tempfile.TemporaryDirectory(prefix="flit_server_smoke_") as tmp:
        # always: every write batch checkpoints, so the counter must grow
        # roughly with traffic (>= 2 guards against a single close-time
        # checkpoint masquerading as per-batch durability).
        img = os.path.join(tmp, "always.img")
        proc, host, port = start_server(
            args, ["--layout=hashed", "--workers=2", "--keys=4000",
                   f"--file={img}", "--durability=always",
                   "--capacity-mb=128"])
        before = inline_stats(host, port).get("checkpoints")
        if before is None:
            raise SystemExit("server_smoke: STATS lacks a checkpoints field")
        run_loadgen(args, host, port,
                    ["--mix=A", "--keys=4000", "--conns=2", "--pipeline=8"])
        delta = inline_stats(host, port)["checkpoints"] - before
        inline_shutdown(host, port)
        wait_exit(proc, "always-durability server")
        print(f"server_smoke: durability=always checkpoints delta={delta}")
        if delta < 2:
            raise SystemExit("server_smoke: --durability=always did not "
                             "checkpoint with traffic")

        # everysec (shrunk to 50ms): the flusher must checkpoint on its
        # timer, no traffic required beyond the initial load.
        img = os.path.join(tmp, "everysec.img")
        proc, host, port = start_server(
            args, ["--layout=hashed", "--workers=2", "--keys=4000",
                   f"--file={img}", "--durability=everysec",
                   "--flush-ms=50", "--capacity-mb=128"])
        before = inline_stats(host, port)["checkpoints"]
        time.sleep(0.5)
        delta = inline_stats(host, port)["checkpoints"] - before
        inline_shutdown(host, port)
        wait_exit(proc, "everysec-durability server")
        print(f"server_smoke: durability=everysec checkpoints delta={delta}")
        if delta < 2:
            raise SystemExit("server_smoke: the everysec flusher is not "
                             "checkpointing on its interval")

    # --- round 4: overload protection — shed, idle-reap, chaos traffic ---
    proc, host, port = start_server(
        args, ["--layout=hashed", "--workers=2", "--keys=4000",
               "--max-conns=6", "--idle-timeout-ms=200"])
    held = [socket.create_connection((host, port), timeout=10)
            for _ in range(6)]
    # The seventh connection must be shed: accepted, then closed before
    # any request is served (a clean EOF or an RST both qualify).
    with socket.create_connection((host, port), timeout=10) as extra_conn:
        extra_conn.settimeout(10)
        try:
            shed_reply = inline_roundtrip(extra_conn, "STATS")
        except (ConnectionResetError, BrokenPipeError):
            shed_reply = ""
    if shed_reply != "":
        raise SystemExit(f"server_smoke: connection over --max-conns was "
                         f"served ({shed_reply!r}), not shed")
    time.sleep(0.8)  # idle wheel (200ms timeout) reaps the held six
    for sock in held:
        sock.close()
    fields = inline_stats(host, port)
    print(f"server_smoke: overload shed_conns={fields.get('shed_conns')} "
          f"idle_timeouts={fields.get('idle_timeouts')} "
          f"open_conns={fields.get('open_conns')}")
    if fields.get("shed_conns", 0) < 1:
        raise SystemExit("server_smoke: shed connection not counted")
    if fields.get("idle_timeouts", 0) < 1:
        raise SystemExit("server_smoke: idle connections were never reaped")
    chaos = run_loadgen(args, host, port,
                        ["--mix=A", "--keys=4000", "--conns=2",
                         "--pipeline=8", "--chaos", "--shutdown"])[0]
    wait_exit(proc, "overload server")
    bad = chaos["misses"] + chaos["mismatches"] + chaos["errors"]
    if bad:
        raise SystemExit(f"server_smoke: chaos run had {bad} verification "
                         f"failures")
    if chaos.get("chaos_events", 0) < 1:
        raise SystemExit("server_smoke: --chaos never fired")
    print(f"server_smoke: chaos_events={chaos['chaos_events']} survived")

    # --- round 5: per-request fault injection (failpoint builds only) ----
    if args.failpoints:
        proc, host, port = start_server(
            args, ["--layout=hashed", "--workers=2", "--keys=4000",
                   "--failpoints=pool.alloc=prob:0.5"],
            env={"FLIT_FAILPOINTS_SEED": "7"})
        with socket.create_connection((host, port), timeout=10) as s:
            s.settimeout(10)
            ok = err = 0
            stored = []
            for i in range(9000, 9040):
                reply = inline_roundtrip(s, f"SET {i} payload{i}")
                if reply.startswith("+OK"):
                    ok += 1
                    stored.append(i)
                elif reply.startswith("-ERR"):
                    err += 1
                else:
                    raise SystemExit(f"server_smoke: SET got {reply!r}")
            for i in stored[:5]:
                reply = inline_roundtrip(s, f"GET {i}")
                if not reply.startswith("$"):
                    raise SystemExit(f"server_smoke: GET after injection "
                                     f"got {reply!r}")
        fields = inline_stats(host, port)
        print(f"server_smoke: injection ok={ok} err={err} "
              f"injected_faults={fields.get('injected_faults')}")
        if ok < 1 or err < 1:
            raise SystemExit("server_smoke: prob:0.5 injection should "
                             "produce both outcomes over 40 SETs")
        if fields.get("injected_faults", 0) < err:
            raise SystemExit("server_smoke: STATS injected_faults did not "
                             "count the injected failures")
        inline_shutdown(host, port)
        wait_exit(proc, "injection server")

    print("server_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
