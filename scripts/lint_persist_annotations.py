#!/usr/bin/env python3
"""Durable-word hygiene lint for the flit data-structure, KV, network,
and checker layers.

Pool-resident shared words in ``src/ds/`` and ``src/kv/`` must be declared
as ``persist<T, ...>`` or ``lap_word`` so every store/CAS goes through the
FliT protocol (tag, pwb, pfence, untag). A raw ``std::atomic`` member in
those layers bypasses the protocol entirely: its stores are never tracked
by the per-word counters, never flushed by readers, and invisible to
PersistCheck — the exact class of bug the checker cannot see because the
annotation was never there.

This lint flags every ``std::atomic`` / ``std::atomic_ref`` declaration in
the two layers. Words that are volatile *by design* (rebuilt on recovery,
never flushed) are exempted with an inline marker:

    // persist-lint: allow(<reason>)

A marker covers its own line and every following line up to the next blank
line, so one marker above a small group of declarations covers the group.

Usage: lint_persist_annotations.py [repo-root]
Exit status: 0 if clean, 1 if any unexempted raw atomic is found.
"""

from __future__ import annotations

import pathlib
import re
import sys

ATOMIC = re.compile(r"std::atomic(?:_ref)?\s*<")
MARKER = re.compile(r"persist-lint:\s*allow\(([^)]*)\)")

#: Layers whose shared words must use persist<>/lap_word. src/core (the
#: annotation machinery itself), src/pmem (the simulator/checker), and
#: src/bench_util (volatile harness state) legitimately hold raw atomics.
#: src/net and src/check are covered too: they hold no pool-resident
#: state at all, so every atomic there must carry an explicit
#: volatile-by-design marker — keeping "this word is volatile" a reviewed
#: decision rather than a default.
LINT_DIRS = ("src/ds", "src/kv", "src/net", "src/check")

SUFFIXES = (".hpp", ".cpp")


def lint_file(path: pathlib.Path) -> list[tuple[int, str]]:
    violations: list[tuple[int, str]] = []
    allowed = False  # inside a marker's paragraph scope
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            allowed = False
            continue
        if MARKER.search(line):
            allowed = True
        # Only code counts: a comment *mentioning* std::atomic is fine.
        code = line.split("//", 1)[0]
        if ATOMIC.search(code) and not allowed:
            violations.append((lineno, line.strip()))
    return violations


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent)
    failures = 0
    checked = 0
    for rel in LINT_DIRS:
        base = root / rel
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            checked += 1
            for lineno, text in lint_file(path):
                failures += 1
                print(f"{path.relative_to(root)}:{lineno}: raw atomic "
                      f"bypasses persist<>/lap_word: {text}")
    if failures:
        print(f"\n{failures} unexempted raw atomic(s). Pool-resident words "
              f"in {', '.join(LINT_DIRS)} must use persist<> or lap_word; "
              "words that are volatile by design need an inline\n"
              "    // persist-lint: allow(<reason>)\n"
              "marker on (or in the paragraph above) the declaration.")
        return 1
    print(f"persist-annotation lint: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
