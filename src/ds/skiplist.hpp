// skiplist.hpp — lock-free skiplist (Fraser [2003] / Herlihy–Shavit style),
// written against the FliT instruction API.
//
// One of the four evaluated structures (§6). The set is defined by the
// bottom level (a Harris-style marked list); upper levels are an index.
// Deletion marks every level of the victim top-down (bottom level last —
// the linearization point) and then physically unlinks via a helping
// search. Nodes have geometric random height; towers make skiplist nodes
// the structure where the adjacent-counter placement overflows a cache
// line (paper §6.6).
//
// Pointer-valued lists additionally support atomic in-place value
// replacement (upsert) with the same value-word protocol as HarrisList:
// upsert CASes the value word old→new on a live node, a removal claims
// the final value by marking it (bit 0) after winning the bottom-level
// mark CAS, and readers treat a marked value as absence. See the
// harris_list.hpp file comment for the ownership argument.
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>
#include <optional>
#include <stdexcept>
#include <type_traits>

#include "check/lincheck.hpp"
#include "core/modes.hpp"
#include "ds/batch.hpp"
#include "ds/tagged_ptr.hpp"
#include "pmem/persist_check.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::ds {

template <class K, class V, class Words = HashedWords,
          class Method = Automatic>
class SkipList {
  static_assert(std::is_integral_v<K>, "sentinel keys require integral K");

  template <class T>
  using W = typename Words::template word<T>;

 public:
  static constexpr int kMaxLevel = 20;
  static constexpr K kMinKey = std::numeric_limits<K>::min();
  static constexpr K kMaxKey = std::numeric_limits<K>::max();

  struct Node {
    W<K> key;
    W<V> value;
    int height;        // immutable after construction
    W<Node*> next[1];  // tower, occupied [0, height); bit 0 = mark

    static std::size_t bytes_for(int h) noexcept {
      return sizeof(Node) + static_cast<std::size_t>(h - 1) * sizeof(W<Node*>);
    }
  };

  SkipList() {
    tail_ = alloc_node(kMaxKey, V{}, kMaxLevel);
    head_ = alloc_node(kMinKey, V{}, kMaxLevel);
    for (int i = 0; i < kMaxLevel; ++i) {
      head_->next[i].store_private(tail_, kVolatile);
      tail_->next[i].store_private(nullptr, kVolatile);
    }
    persist_node(tail_);
    persist_node(head_);
  }

  ~SkipList() {
    if (!owns_) return;
    Node* n = head_;
    while (n != nullptr) {
      Node* nxt = without_mark(n->next[0].load_private());
      free_node_now(n);
      n = nxt;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;
  SkipList(SkipList&& o) noexcept
      : head_(o.head_), tail_(o.tail_), owns_(o.owns_) {
    o.owns_ = false;
    o.head_ = o.tail_ = nullptr;
  }

  bool insert(K k, V v) {
    recl::Ebr::Guard g;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int height = random_height();
    for (;;) {
      if (find(k, preds, succs)) {
        Words::operation_completion();
        return false;
      }
      if (try_link(k, v, height, preds, succs)) {
        Words::operation_completion();
        return true;
      }
    }
  }

  /// Insert-or-replace. Returns the superseded value when k was present
  /// (the caller owns cleanup of whatever it referenced), nullopt when
  /// this call freshly inserted k. The replacement is one durable CAS on
  /// the node's value word — a concurrent find/scan observes the old or
  /// the new value, never absence. Pointer values only (the coordination
  /// with removal needs bit 0 of the word); see HarrisList::upsert for
  /// the linearization argument, which carries over unchanged.
  std::optional<V> upsert(K k, V v)
    requires std::is_pointer_v<V>
  {
    recl::Ebr::Guard g;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int height = random_height();
    for (;;) {
      if (find(k, preds, succs)) {
        if (std::optional<V> old = replace_value(
                succs[0]->value, v, Method::critical_load,
                Method::critical_store)) {
          Words::operation_completion();
          return old;
        }
        continue;  // claimed by a removal: re-find (helps unlink), insert
      }
      if (try_link(k, v, height, preds, succs)) {
        Words::operation_completion();
        return std::nullopt;
      }
    }
  }

  /// Batched upsert: identical set semantics to upsert(), but the publish
  /// (value-word replace or the fresh tower's bottom-level link) is a
  /// deferred-fence CAS enlisted in `batch`, and no per-op completion
  /// fence is issued — the caller pays one pfence for the whole batch and
  /// then batch.complete_all() (see ds/batch.hpp and
  /// kv::Store::multi_put). Index-level linking is unchanged (it never
  /// decides set membership).
  std::optional<V> upsert_batched(K k, V v, PublishBatch& batch)
    requires std::is_pointer_v<V>
  {
    recl::Ebr::Guard g;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    const int height = random_height();
    for (;;) {
      if (find(k, preds, succs)) {
        if (std::optional<V> old = replace_value_deferred(
                succs[0]->value, v, Method::critical_load,
                Method::critical_store, batch)) {
          return old;
        }
        continue;  // claimed by a removal: re-find (helps unlink), insert
      }
      if (try_link(k, v, height, preds, succs, &batch)) {
        return std::nullopt;
      }
    }
  }

  bool remove(K k) { return remove_get(k).has_value(); }

  /// Remove k, returning the removed value (nullopt if k is absent).
  /// Exactly one removal observes the returned value, which lets callers
  /// own cleanup of value-referenced storage (the KV record slab relies
  /// on this for EBR retirement of superseded records; see
  /// HarrisList::remove_get for the same contract). Pointer values are
  /// claimed with a marking CAS (ending the word's upsert chain);
  /// non-pointer values are immutable after publication and a plain read
  /// suffices.
  std::optional<V> remove_get(K k) {
    recl::Ebr::Guard g;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!find(k, preds, succs)) {
      Words::operation_completion();
      return std::nullopt;
    }
    Node* victim = succs[0];
    // Mark index levels top-down (helping is idempotent).
    for (int level = victim->height - 1; level >= 1; --level) {
      Node* succ = victim->next[level].load(Method::critical_load);
      while (!is_marked(succ)) {
        Node* e = succ;
        victim->next[level].cas(e, with_mark(succ), Method::cleanup_store);
        succ = victim->next[level].load(Method::critical_load);
      }
    }
    // Bottom-level mark decides the winner (linearization point).
    Node* succ = victim->next[0].load(Method::critical_load);
    for (;;) {
      if (is_marked(succ)) {  // another remover won
        Words::operation_completion();
        return std::nullopt;
      }
      Node* e = succ;
      if (victim->next[0].cas(e, with_mark(succ), Method::critical_store)) {
        const V removed = claim_value(victim->value, Method::critical_load,
                                      Method::cleanup_store);
        // Physically unlink at every level, then reclaim.
        find(k, preds, succs);
        recl::Ebr::instance().retire(victim, &retire_deleter);
        Words::operation_completion();
        return removed;
      }
      succ = e;
    }
  }

  bool contains(K k) const {
    recl::Ebr::Guard g;
    Node* pred = head_;
    Node* curr = nullptr;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      curr = without_mark(pred->next[level].load(Method::traversal_load));
      for (;;) {
        Node* succ = curr->next[level].load(Method::traversal_load);
        while (is_marked(succ)) {  // skip logically deleted (wait-free read)
          curr = without_mark(succ);
          succ = curr->next[level].load(Method::traversal_load);
        }
        if (curr->key.load(Method::traversal_load) < k) {
          pred = curr;
          curr = without_mark(succ);
        } else {
          break;
        }
      }
    }
    bool found = curr->key.load(Method::transition_load) == k &&
                 !is_marked(curr->next[0].load(Method::transition_load));
    Words::operation_completion();
    return found;
  }

  /// Lookup returning the value. A claimed (marked) pointer value means
  /// the node's removal linearized before our read: absent.
  std::optional<V> find_value(K k) const {
    std::optional<V> out = find_batched(k);
    Words::operation_completion();
    return out;
  }

  /// find_value() minus the per-op completion fence: a batch of lookups
  /// shares one completion fence, issued by the caller after the last
  /// lookup.
  std::optional<V> find_batched(K k) const {
    recl::Ebr::Guard g;
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    std::optional<V> out;
    if (const_cast<SkipList*>(this)->find(k, preds, succs)) {
      const V v = succs[0]->value.load(Method::transition_load);
      if (!value_is_claimed(v)) out = v;
    }
    return out;
  }

  /// Prefetch the first probe targets of a later operation: the head
  /// tower's top-level link word (where every descent starts) and its
  /// successor node. Purely a memory hint — one relaxed pointer load, no
  /// dereference — safe with or without an EBR guard. Batched operations
  /// call this for key i+1 while key i's cache misses are outstanding.
  void prepare(K /*k*/) const noexcept {
    __builtin_prefetch(head_);
    __builtin_prefetch(&head_->next[kMaxLevel - 1]);
    __builtin_prefetch(without_mark(head_->next[kMaxLevel - 1].load_private()));
  }

  /// Reachable key count at the bottom level; single-threaded use only.
  std::size_t size() const {
    std::size_t n = 0;
    const Node* c = without_mark(head_->next[0].load_private());
    while (c != tail_) {
      if (c == nullptr) {
        throw std::length_error(
            "ds::SkipList: bottom level breaks before the tail sentinel");
      }
      if (!is_marked(c->next[0].load_private())) ++n;
      c = without_mark(c->next[0].load_private());
    }
    return n;
  }

  /// Ordered range visit: call f(key, value) for every unmarked node with
  /// key >= lo, in ascending key order, until f returns false or the tail
  /// sentinel is reached. Safe under concurrent inserts/removes (the walk
  /// skips marked nodes wait-free and never helps, like contains); the
  /// caller should hold an Ebr::Guard across any use it makes of
  /// value-referenced storage. The visit is not an atomic snapshot: each
  /// (key, value) read is individually consistent, but keys inserted or
  /// removed while the walk is in flight may or may not appear. Keys that
  /// are present for the walk's whole duration are always visited.
  template <class F>
  void for_each_range(K lo, F&& f) const {
    recl::Ebr::Guard g;
    // Descend to the bottom-level node preceding lo (read-only, no
    // helping — same wait-free skip of marked nodes as contains()).
    Node* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      Node* curr = without_mark(pred->next[level].load(Method::traversal_load));
      for (;;) {
        check::lc_deref(curr, "ds::SkipList::for_each_range");
        Node* succ = curr->next[level].load(Method::traversal_load);
        while (is_marked(succ)) {
          curr = without_mark(succ);
          check::lc_deref(curr, "ds::SkipList::for_each_range");
          succ = curr->next[level].load(Method::traversal_load);
        }
        if (curr->key.load(Method::traversal_load) < lo) {
          pred = curr;
          curr = without_mark(succ);
        } else {
          break;
        }
      }
    }
    // Walk the bottom level, yielding unmarked nodes. The mark check and
    // the value read use transition loads (flush-if-tagged) so every
    // emitted pair is durably readable before the operation completes.
    Node* curr = without_mark(pred->next[0].load(Method::traversal_load));
    while (curr != tail_) {
      check::lc_deref(curr, "ds::SkipList::for_each_range");
      Node* succ = curr->next[0].load(Method::transition_load);
      if (!is_marked(succ)) {
        const K k = curr->key.load(Method::transition_load);
        if (k >= lo) {
          // A value claimed between our mark check and this read means
          // the node's removal linearized mid-walk: skip it, exactly as
          // if the walk had read `succ` a moment later.
          const V v = curr->value.load(Method::transition_load);
          if (!value_is_claimed(v) && !f(k, v)) break;
        }
      }
      curr = without_mark(succ);
    }
    Words::operation_completion();
  }

  // --- crash recovery ------------------------------------------------------

  Node* head() const noexcept { return head_; }
  Node* tail() const noexcept { return tail_; }

  /// Disown the nodes: the destructor will no longer free them. Used when
  /// the structure's bytes outlive this handle (e.g. a file-backed region
  /// being closed while the persisted nodes stay on disk).
  void release() noexcept { owns_ = false; }

  /// Visit every bottom-level linked node — sentinels and marked nodes
  /// included — as f(node, is_marked). Single-threaded use only (recovery
  /// sweeps that rebuild allocator metadata must see every byte a
  /// traversal could reach; a *marked* node's value may reference
  /// already-reclaimed storage, which is why the flag is passed along).
  /// Every healthy bottom level terminates at the tail sentinel (the only
  /// tower whose next[0] is null); a walk ending anywhere else is a
  /// truncated/torn image and throws std::length_error rather than
  /// letting recovery half-succeed.
  template <class F>
  void for_each_linked(F&& f) const {
    const Node* c = head_;
    const Node* last = nullptr;
    while (c != nullptr) {
      const Node* succ = c->next[0].load_private();
      f(*c, is_marked(succ));
      last = c;
      c = without_mark(succ);
    }
    if (last != tail_) {
      throw std::length_error(
          "ds::SkipList: bottom level breaks before the tail sentinel");
    }
  }

  /// Post-crash recovery. The durable set is the bottom level (every
  /// insert/delete linearizes there with p-instructions); the index levels
  /// may be stale after a crash — under the Manual method the index is
  /// maintained entirely with v-instructions, so a node can even be marked
  /// at level 0 but look alive above. Like the durable skiplists in the
  /// literature, recovery therefore rebuilds the index from the bottom
  /// level (single-threaded, then re-persisted) instead of trusting it.
  static SkipList recover(Node* head, Node* tail) {
    SkipList s(head, tail);
    s.rebuild_index();
    return s;
  }

 private:
  SkipList(Node* head, Node* tail) noexcept
      : head_(head), tail_(tail), owns_(false) {}

  /// One insertion attempt against the (pred, succ) neighborhood `find`
  /// just computed: build the tower, link at the bottom level (the
  /// linearization point), then best-effort link the index levels
  /// (volatile under Manual — the set already contains k; any failure
  /// here only degrades the index). Returns false — node freed, nothing
  /// published — if the bottom-level CAS lost; the caller re-finds and
  /// retries. May itself call find() while fixing up index levels, so
  /// preds/succs are clobbered either way. With a non-null `batch` the
  /// bottom-level publish defers its trailing fence to the batch (the
  /// tower persist keeps its own fence: the node's bytes must be durable
  /// before the link can be observed).
  bool try_link(K k, V v, int height, Node** preds, Node** succs,
                PublishBatch* batch = nullptr) {
    Node* node = alloc_node(k, v, height);
    for (int i = 0; i < height; ++i) {
      node->next[i].store_private(succs[i], kVolatile);
    }
    if (Method::persist_node_init) persist_node(node);
    if constexpr (Words::persistent) {
      pmem::pc_publish(node, Node::bytes_for(height),
                       "ds::SkipList::try_link");
    }

    Node* expected = succs[0];
    bool linked;
    if (batch != nullptr) {
      linked =
          preds[0]->next[0].cas_deferred(expected, node,
                                         Method::critical_store);
      if (linked && Method::critical_store) {
        batch->enlist(preds[0]->next[0], node);
      }
    } else {
      linked = preds[0]->next[0].cas(expected, node, Method::critical_store);
    }
    if (!linked) {
      free_node_now(node);  // never published
      return false;
    }
    bool stop = false;
    for (int level = 1; level < height && !stop; ++level) {
      for (;;) {
        Node* mine = node->next[level].load(Method::critical_load);
        if (is_marked(mine)) {  // node is already being deleted
          stop = true;
          break;
        }
        Node* succ = succs[level];
        if (succ == node) break;  // a helper already linked this level
        if (mine != succ) {
          Node* e = mine;
          if (!node->next[level].cas(e, succ, Method::cleanup_store)) {
            continue;  // re-read our tower pointer and retry
          }
        }
        Node* e = succ;
        if (preds[level]->next[level].cas(e, node, Method::cleanup_store)) {
          break;
        }
        // Predecessor changed; recompute the neighborhood.
        const bool present = find(k, preds, succs);
        if (!present || succs[0] != node) {  // removed concurrently
          stop = true;
          break;
        }
      }
    }
    return true;
  }

  /// Single-threaded crash-recovery repair: walk the durable bottom level,
  /// splice out logically deleted (marked) nodes, rebuild every index
  /// level from scratch, and persist the repaired pointers so a subsequent
  /// crash recovers from a clean image.
  void rebuild_index() {
    // Per-level "last node seen with height > level" cursors.
    Node* prev_at[kMaxLevel];
    for (int i = 0; i < kMaxLevel; ++i) prev_at[i] = head_;

    Node* prev0 = head_;
    Node* c = without_mark(head_->next[0].load_private());
    while (c != tail_) {
      if (c == nullptr) {
        // The durable bottom level dead-ends before the tail sentinel: a
        // truncated/torn image. Abort before re-stitching (and durably
        // persisting) an index over the broken chain — the caller rejects
        // the whole store instead of half-recovering it.
        throw std::length_error(
            "ds::SkipList: bottom level breaks before the tail sentinel");
      }
      Node* nxt = c->next[0].load_private();
      if (is_marked(nxt)) {  // logically deleted: drop from every level
        c = without_mark(nxt);
        continue;
      }
      // Live node: stitch bottom level and its index levels.
      if (prev0->next[0].load_private() != c) {
        prev0->next[0].store_private(c, kVolatile);
      }
      prev0 = c;
      for (int lvl = 1; lvl < c->height && lvl < kMaxLevel; ++lvl) {
        prev_at[lvl]->next[lvl].store_private(c, kVolatile);
        prev_at[lvl] = c;
      }
      c = without_mark(nxt);
    }
    // Terminate every level at the tail.
    prev0->next[0].store_private(tail_, kVolatile);
    for (int lvl = 1; lvl < kMaxLevel; ++lvl) {
      prev_at[lvl]->next[lvl].store_private(tail_, kVolatile);
    }
    if constexpr (Words::persistent) {
      // Re-persist every repaired tower (head, tail, and all live nodes).
      persist_node(head_);
      persist_node(tail_);
      for (Node* n = without_mark(head_->next[0].load_private());
           n != tail_ && n != nullptr;
           n = without_mark(n->next[0].load_private())) {
        persist_node(n);
      }
      pmem::pfence();
    }
  }

  /// Fraser search with helping: fills preds/succs at every level; returns
  /// true iff an unmarked node with key k is present at the bottom level.
  bool find(K k, Node** preds, Node** succs) {
  retry:
    Node* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      Node* curr = without_mark(pred->next[level].load(Method::traversal_load));
      for (;;) {
        check::lc_deref(curr, "ds::SkipList::find");
        Node* succ = curr->next[level].load(Method::traversal_load);
        while (is_marked(succ)) {
          // curr is deleted at this level: unlink it.
          Node* expected = curr;
          if (!pred->next[level].cas(expected, without_mark(succ),
                                     Method::cleanup_store)) {
            goto retry;
          }
          curr = without_mark(succ);
          check::lc_deref(curr, "ds::SkipList::find");
          succ = curr->next[level].load(Method::traversal_load);
        }
        if (curr->key.load(Method::traversal_load) < k) {
          pred = curr;
          curr = without_mark(succ);
        } else {
          break;
        }
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    // NVtraverse/manual transition: flush-if-tagged what the critical phase
    // will touch.
    if (Method::traversal_load != Method::transition_load) {
      preds[0]->next[0].load(Method::transition_load);
      succs[0]->next[0].load(Method::transition_load);
    }
    return succs[0]->key.load(Method::transition_load) == k;
  }

  static void persist_node(const Node* n) {
    if constexpr (Words::persistent) {
      pmem::persist_range(n, Node::bytes_for(n->height));
    }
  }

  static Node* alloc_node(K k, V v, int h) {
    void* mem = pmem::Pool::instance().alloc(Node::bytes_for(h));
    Node* n = static_cast<Node*>(mem);
    new (&n->key) W<K>(k);
    new (&n->value) W<V>(v);
    n->height = h;
    for (int i = 0; i < h; ++i) new (&n->next[i]) W<Node*>(nullptr);
    return n;
  }

  static void free_node_now(Node* n) noexcept {
    // W<> wrappers are trivially destructible; release the raw block.
    pmem::Pool::instance().dealloc(n, Node::bytes_for(n->height));
  }

  static void retire_deleter(void* p) {
    free_node_now(static_cast<Node*>(p));
  }

  static int random_height() noexcept {
    static thread_local std::uint64_t state = []() {
      const auto seed = reinterpret_cast<std::uintptr_t>(&state);
      return static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ull | 1;
    }();
    // xorshift64*
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const std::uint64_t r = state * 0x2545F4914F6CDD1Dull;
    int h = 1;
    // Geometric with p = 1/2, capped at kMaxLevel.
    while (h < kMaxLevel && (r >> h) & 1) ++h;
    return h;
  }

  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  bool owns_ = true;
};

}  // namespace flit::ds
