// tagged_ptr.hpp — low-bit pointer tagging helpers shared by the lock-free
// structures.
//
// Bit assignments across the library:
//   bit 0 — data-structure logical-deletion mark (Harris / Fraser / the
//           hash-table buckets) or the BST "flag";
//   bit 1 — either the BST "tag" (Natarajan–Mittal use two control bits,
//           which is why link-and-persist cannot serve the BST), or the
//           link-and-persist dirty flag (handled inside lap_word, invisible
//           to the structures).
#pragma once

#include <cstdint>

namespace flit::ds {

inline constexpr std::uintptr_t kMarkBit = 0x1;
inline constexpr std::uintptr_t kFlagBit = 0x1;  // BST terminology
inline constexpr std::uintptr_t kTagBit = 0x2;   // BST only

template <class P>
P* with_mark(P* p) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) | kMarkBit);
}

template <class P>
P* without_mark(P* p) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) &
                              ~kMarkBit);
}

template <class P>
bool is_marked(P* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & kMarkBit) != 0;
}

template <class P>
P* with_bits(P* p, std::uintptr_t bits) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) | bits);
}

template <class P>
P* without_bits(P* p, std::uintptr_t bits) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) & ~bits);
}

template <class P>
std::uintptr_t get_bits(P* p, std::uintptr_t bits) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) & bits;
}

}  // namespace flit::ds
