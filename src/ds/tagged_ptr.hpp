// tagged_ptr.hpp — low-bit pointer tagging helpers shared by the lock-free
// structures.
//
// Bit assignments across the library:
//   bit 0 — data-structure logical-deletion mark (Harris / Fraser / the
//           hash-table buckets) or the BST "flag";
//   bit 1 — either the BST "tag" (Natarajan–Mittal use two control bits,
//           which is why link-and-persist cannot serve the BST), or the
//           link-and-persist dirty flag (handled inside lap_word, invisible
//           to the structures).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>

namespace flit::ds {

inline constexpr std::uintptr_t kMarkBit = 0x1;
inline constexpr std::uintptr_t kFlagBit = 0x1;  // BST terminology
inline constexpr std::uintptr_t kTagBit = 0x2;   // BST only

template <class P>
P* with_mark(P* p) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) | kMarkBit);
}

template <class P>
P* without_mark(P* p) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) &
                              ~kMarkBit);
}

template <class P>
bool is_marked(P* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & kMarkBit) != 0;
}

template <class P>
P* with_bits(P* p, std::uintptr_t bits) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) | bits);
}

template <class P>
P* without_bits(P* p, std::uintptr_t bits) noexcept {
  return reinterpret_cast<P*>(reinterpret_cast<std::uintptr_t>(p) & ~bits);
}

template <class P>
std::uintptr_t get_bits(P* p, std::uintptr_t bits) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) & bits;
}

// --- the value-claim protocol (shared by HarrisList and SkipList) ----------
//
// Pointer-valued nodes support atomic in-place value replacement (upsert):
// the value word is CASed old→new on a live node, and the removal that won
// the node's next-pointer mark CAS *claims* the final value by CASing it to
// its bit-0-marked form. The word's successful CASes thus form one linear
// chain ending in a marked pointer, which gives every superseded value
// exactly one owner — the CAS winner that replaced it — and a marked value
// can only ever be observed on a node whose removal already linearized, so
// readers treat it as absence.

/// True iff a loaded value is a claimed (removal-owned) pointer. Always
/// false for non-pointer values, which are immutable once published.
template <class V>
bool value_is_claimed([[maybe_unused]] V v) noexcept {
  if constexpr (std::is_pointer_v<V>) {
    return is_marked(v);
  } else {
    return false;
  }
}

/// Take unique ownership of a removed node's final value. Pointer values:
/// CAS the word to its marked form, which both defeats any still-in-flight
/// upsert (its CAS can no longer succeed) and ends the word's replacement
/// chain — the claimed value has exactly this one owner. Only the remover
/// that won the node's mark CAS may call this, so the loop races only with
/// (finitely many) upserts. `cas_pflag` should be the Method's cleanup
/// pflag: the removal is already durable through the node mark, and
/// recovery never reads a marked node's value. Non-pointer values are
/// immutable once published (and persisted at node init), so a private
/// load suffices — no counter traffic, no spurious pwbs.
template <class Word>
typename Word::value_type claim_value(Word& word, bool load_pflag,
                                      bool cas_pflag) noexcept {
  using V = typename Word::value_type;
  if constexpr (std::is_pointer_v<V>) {
    V val = word.load(load_pflag);
    for (;;) {
      // A single remover claims each node (it won the mark CAS) and
      // upserts only ever install unmarked pointers, so the word cannot
      // already be marked here — and a crash cannot fake it either: the
      // mark CAS is a p-CAS that flushes and fences before returning, so
      // the node mark is durable before this claim executes. Returning a
      // marked pointer would hand the caller a tainted Record* to retire.
      assert(!is_marked(val));
      V expected = val;
      if (word.cas(expected, with_mark(val), cas_pflag)) return val;
      val = expected;
    }
  } else {
    return word.load_private();
  }
}

/// The replace half of the protocol (upsert's in-place overwrite): CAS
/// the word old→new until it succeeds — returning the superseded value,
/// which the caller now uniquely owns — or the value is found claimed by
/// a removal, returning nullopt: the node is logically dead, and the
/// caller should re-search (helping unlink) and fall back to inserting a
/// fresh node. `cas_pflag` should be the Method's critical pflag — this
/// CAS is the overwrite's durable linearization point, and the caller
/// must have fully persisted what `v` points at before installing it.
template <class Word, class V = typename Word::value_type>
std::optional<V> replace_value(Word& word, V v, bool load_pflag,
                               bool cas_pflag) noexcept
  requires std::is_pointer_v<V>
{
  V old = word.load(load_pflag);
  while (!is_marked(old)) {
    V expected = old;
    if (word.cas(expected, v, cas_pflag)) return old;
    old = expected;
  }
  return std::nullopt;
}

}  // namespace flit::ds
