// hash_table.hpp — lock-free hash table with one Harris list per bucket,
// as evaluated in the paper (§6: "a hash table which uses Harris's linked
// list to implement each bucket").
//
// The bucket count is fixed at construction (the paper sizes it to the key
// range, keeping chains short). Bucket roots — the head/tail sentinel
// pointers of each chain — are stored in the persistent pool so a crash
// test can recover the whole table from the root array alone.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <vector>

#include "ds/batch.hpp"
#include "ds/harris_list.hpp"

namespace flit::ds {

template <class K, class V, class Words = HashedWords,
          class Method = Automatic>
class HashTable {
 public:
  using Bucket = HarrisList<K, V, Words, Method>;
  using Node = typename Bucket::Node;

  /// Persistent root record: everything recovery needs.
  struct Roots {
    std::size_t nbuckets;
    // Followed in memory by nbuckets {head, tail} pairs.
    struct Entry {
      Node* head;
      Node* tail;
    };
    Entry entries[1];  // flexible-array idiom; allocated oversized
  };

  explicit HashTable(std::size_t nbuckets) {
    buckets_.reserve(nbuckets);
    for (std::size_t i = 0; i < nbuckets; ++i) buckets_.emplace_back();

    const std::size_t bytes =
        sizeof(Roots) + (nbuckets - 1) * sizeof(typename Roots::Entry);
    roots_ = static_cast<Roots*>(pmem::Pool::instance().alloc(bytes));
    roots_bytes_ = bytes;
    roots_->nbuckets = nbuckets;
    for (std::size_t i = 0; i < nbuckets; ++i) {
      roots_->entries[i] = {buckets_[i].head(), buckets_[i].tail()};
    }
    if constexpr (Words::persistent) pmem::persist_range(roots_, bytes);
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;
  HashTable(HashTable&&) noexcept = default;

  bool insert(K k, V v) { return bucket(k).insert(k, v); }
  /// Insert-or-replace with an atomic in-place value CAS (pointer values
  /// only; see HarrisList::upsert). Returns the superseded value when k
  /// was present, nullopt on a fresh insert.
  std::optional<V> upsert(K k, V v)
    requires std::is_pointer_v<V>
  {
    return bucket(k).upsert(k, v);
  }
  bool remove(K k) { return bucket(k).remove(k); }
  /// Remove k, returning the removed value (see HarrisList::remove_get).
  std::optional<V> remove_get(K k) { return bucket(k).remove_get(k); }
  bool contains(K k) const { return bucket(k).contains(k); }
  std::optional<V> find(K k) const { return bucket(k).find(k); }

  // --- batched multi-op hooks (see HarrisList) -----------------------------

  /// Prefetch k's bucket chain entry (the hash pick plus the sentinel and
  /// first node lines) ahead of a later operation on k.
  void prepare(K k) const noexcept { bucket(k).prepare(k); }
  /// Lookup without the per-op completion fence; the caller fences once
  /// per batch.
  std::optional<V> find_batched(K k) const {
    return bucket(k).find_batched(k);
  }
  /// Upsert whose publish defers its fence to `batch` (see
  /// HarrisList::upsert_batched).
  std::optional<V> upsert_batched(K k, V v, PublishBatch& batch)
    requires std::is_pointer_v<V>
  {
    return bucket(k).upsert_batched(k, v, batch);
  }

  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Total reachable keys; single-threaded use only.
  std::size_t size() const {
    std::size_t n = 0;
    for (const Bucket& b : buckets_) n += b.size();
    return n;
  }

  // --- crash recovery ------------------------------------------------------

  Roots* roots() const noexcept { return roots_; }

  /// Rebuild non-owning bucket handles from a persisted root array.
  static HashTable recover(Roots* roots) {
    HashTable t(RecoverTag{});
    t.roots_ = roots;
    t.buckets_.reserve(roots->nbuckets);
    for (std::size_t i = 0; i < roots->nbuckets; ++i) {
      t.buckets_.push_back(
          Bucket::recover(roots->entries[i].head, roots->entries[i].tail));
    }
    return t;
  }

  /// Disown every bucket's nodes (see HarrisList::release): the persisted
  /// bytes outlive this volatile handle.
  void release() noexcept {
    for (Bucket& b : buckets_) b.release();
  }

  /// Visit every linked node in every bucket as f(node, is_marked);
  /// single-threaded use only (see HarrisList::for_each_linked).
  template <class F>
  void for_each_linked(F&& f) const {
    for (const Bucket& b : buckets_) b.for_each_linked(f);
  }

  /// One past the last byte of the persisted root array.
  std::uintptr_t roots_extent() const noexcept {
    return reinterpret_cast<std::uintptr_t>(roots_) + sizeof(Roots) +
           (roots_->nbuckets - 1) * sizeof(typename Roots::Entry);
  }

 private:
  struct RecoverTag {};
  explicit HashTable(RecoverTag) noexcept {}

  std::size_t index(K k) const noexcept {
    const auto h = static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h % buckets_.size());
  }
  Bucket& bucket(K k) noexcept { return buckets_[index(k)]; }
  const Bucket& bucket(K k) const noexcept { return buckets_[index(k)]; }

  std::vector<Bucket> buckets_;
  Roots* roots_ = nullptr;
  std::size_t roots_bytes_ = 0;
};

}  // namespace flit::ds
