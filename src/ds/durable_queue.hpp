// durable_queue.hpp — a durable Michael–Scott queue in the style of
// Friedman et al. [PPoPP'18], used by the paper (§4) as the example of
// leaving variables *outside* the persist<> template:
//
//   "Friedman et al. present a durable queue implementation that completely
//    avoids flushing the head and tail pointers of the queue. In this case,
//    these variables can be declared normally, without the FliT library."
//
// head/tail here are plain std::atomic (volatile memory); durability comes
// from p-instructions on node words only:
//   * enqueue persists the node and the link that publishes it;
//   * dequeue persists a per-node `deq_mark` claim word instead of the head
//     pointer — after a crash, the queue content is exactly the linked
//     nodes (from a persistent anchor) whose claim word is still empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/modes.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::ds {

template <class V, class Words = HashedWords>
class DurableQueue {
  template <class T>
  using W = typename Words::template word<T>;

 public:
  static constexpr std::int64_t kUnclaimed = -1;

  struct Node {
    W<V> value;
    W<std::int64_t> deq_mark;  // kUnclaimed, or a claim token (see pack)
    W<Node*> next;
    // Detectability metadata (paper §7, Friedman et al. [17]): who
    // enqueued this node and that operation's sequence number. Written
    // privately before publication; persisted with the node.
    W<std::int64_t> enq_tid;
    W<std::int64_t> enq_seq;
    explicit Node(V v) noexcept
        : value(v),
          deq_mark(kUnclaimed),
          next(nullptr),
          enq_tid(-1),
          enq_seq(-1) {}
  };

  /// Claim token carried in deq_mark: (seq << 8) | tid. With tid < 256 a
  /// single word identifies the dequeue operation exactly, which is what
  /// makes dequeues *detectable* after a crash.
  static std::int64_t pack_claim(std::int64_t tid, std::int64_t seq) noexcept {
    return (seq << 8) | (tid & 0xFF);
  }
  static std::int64_t claim_tid(std::int64_t token) noexcept {
    return token & 0xFF;
  }
  static std::int64_t claim_seq(std::int64_t token) noexcept {
    return token >> 8;
  }

  /// Persistent anchor: the fixed entry point recovery walks from.
  struct Anchor {
    Node* first;
  };

  DurableQueue() {
    Node* sentinel = pmem::pnew<Node>(V{});
    sentinel->deq_mark.store_private(0, kPersist);  // sentinel is consumed
    Words::persist_obj(sentinel);
    anchor_ = static_cast<Anchor*>(
        pmem::Pool::instance().alloc(sizeof(Anchor)));
    anchor_->first = sentinel;
    if constexpr (Words::persistent) {
      pmem::persist_range(anchor_, sizeof(Anchor));
    }
    head_.store(sentinel, std::memory_order_relaxed);
    tail_.store(sentinel, std::memory_order_relaxed);
  }

  ~DurableQueue() {
    if (!owns_) return;
    Node* n = anchor_ != nullptr ? anchor_->first
                                 : head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* nxt = n->next.load_private();
      pmem::pdelete(n);
      n = nxt;
    }
    if (anchor_ != nullptr) {
      pmem::Pool::instance().dealloc(anchor_, sizeof(Anchor));
    }
  }

  DurableQueue(const DurableQueue&) = delete;
  DurableQueue& operator=(const DurableQueue&) = delete;
  DurableQueue(DurableQueue&& o) noexcept
      : anchor_(o.anchor_), owns_(o.owns_) {
    head_.store(o.head_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    tail_.store(o.tail_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    o.owns_ = false;
    o.anchor_ = nullptr;
  }

  void enqueue(V v) { enqueue_tagged(v, /*tid=*/-1, /*seq=*/-1); }

  /// Detectable enqueue: tags the node with (tid, seq) so recovery can
  /// answer "did my operation #seq complete?" (see was_enqueued).
  void enqueue_tagged(V v, std::int64_t tid, std::int64_t seq) {
    recl::Ebr::Guard g;
    Node* node = pmem::pnew<Node>(v);
    node->enq_tid.store_private(tid, kVolatile);
    node->enq_seq.store_private(seq, kVolatile);
    Words::persist_obj(node);
    for (;;) {
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = last->next.load(kPersist);
      if (last != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        Node* expected = nullptr;
        if (last->next.cas(expected, node, kPersist)) {  // linearization
          tail_.compare_exchange_strong(last, node,
                                        std::memory_order_acq_rel);
          Words::operation_completion();
          return;
        }
      } else {
        tail_.compare_exchange_strong(last, next, std::memory_order_acq_rel);
      }
    }
  }

  /// Dequeue by `claimer` (any non-negative id, e.g. thread index).
  std::optional<V> dequeue(std::int64_t claimer) {
    recl::Ebr::Guard g;
    for (;;) {
      Node* first = head_.load(std::memory_order_acquire);
      Node* last = tail_.load(std::memory_order_acquire);
      Node* next = first->next.load(kPersist);
      if (first != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        Words::operation_completion();
        return std::nullopt;  // empty
      }
      if (first == last) {
        tail_.compare_exchange_strong(last, next, std::memory_order_acq_rel);
        continue;
      }
      const V v = next->value.load(kPersist);
      std::int64_t expected = kUnclaimed;
      if (next->deq_mark.cas(expected, claimer, kPersist)) {
        // Claim persisted: the removal is durable even if head_ is lost.
        advance_head(first, next);
        Words::operation_completion();
        return v;
      }
      // Someone else claimed it; help move head past it.
      advance_head(first, next);
    }
  }

  bool empty() const {
    Node* first = head_.load(std::memory_order_acquire);
    return first->next.load(kVolatile) == nullptr;
  }

  // --- crash recovery ------------------------------------------------------

  Anchor* anchor() const noexcept { return anchor_; }

  // Detectability queries (paper §7: "each process [can] find out whether
  // its most recently called operation had completed before a crash").
  // Both walk the persistent chain from the anchor; call on a recovered
  // (quiescent) queue.

  /// Did enqueue (tid, seq) take effect (its node is linked)?
  static bool was_enqueued(Anchor* anchor, std::int64_t tid,
                           std::int64_t seq) {
    for (Node* n = anchor->first; n != nullptr;
         n = n->next.load_private()) {
      if (n->enq_tid.load_private() == tid &&
          n->enq_seq.load_private() == seq) {
        return true;
      }
    }
    return false;
  }

  /// If dequeue op (tid, seq) claimed a value, return it.
  static std::optional<V> claimed_value(Anchor* anchor, std::int64_t tid,
                                        std::int64_t seq) {
    const std::int64_t token = pack_claim(tid, seq);
    for (Node* n = anchor->first; n != nullptr;
         n = n->next.load_private()) {
      if (n->deq_mark.load_private() == token) {
        return n->value.load_private();
      }
    }
    return std::nullopt;
  }

  /// Rebuild a non-owning queue handle from the persistent anchor: skip
  /// claimed nodes, then re-link head/tail in volatile memory. Read-only
  /// with respect to persistent state (recovery never allocates).
  static DurableQueue recover(Anchor* anchor) {
    DurableQueue q(RecoverTag{});
    q.anchor_ = anchor;
    Node* first = anchor->first;
    // First unclaimed node's predecessor acts as the new sentinel.
    Node* sentinel = first;
    while (true) {
      Node* next = sentinel->next.load_private();
      if (next == nullptr) break;
      if (next->deq_mark.load_private() == kUnclaimed) break;
      sentinel = next;
    }
    Node* last = sentinel;
    while (Node* n = last->next.load_private()) last = n;
    q.head_.store(sentinel, std::memory_order_relaxed);
    q.tail_.store(last, std::memory_order_relaxed);
    return q;
  }

 private:
  struct RecoverTag {};
  explicit DurableQueue(RecoverTag) noexcept : owns_(false) {}

  void advance_head(Node* first, Node* next) {
    if (head_.compare_exchange_strong(first, next,
                                      std::memory_order_acq_rel)) {
      // Old sentinel `first` is now unreachable from head_, but stays
      // reachable from the anchor chain for recovery; reclamation of the
      // prefix is deferred to the queue destructor (matching Friedman et
      // al., where the persistent prefix is trimmed lazily).
    }
  }

  // Volatile, never flushed (paper §4): lives outside persist<>.
  // persist-lint: allow(volatile roots; rebuilt from the anchor on recovery)
  std::atomic<Node*> head_{nullptr};
  std::atomic<Node*> tail_{nullptr};
  Anchor* anchor_ = nullptr;
  bool owns_ = true;
};

}  // namespace flit::ds
