// locked_bptree.hpp — a lock-based B+-tree exercising the P-V Interface's
// *private-instruction* optimization (paper §5 + §7).
//
// The paper's evaluation focuses on lock-free structures, but §7 notes the
// P-V Interface "captures lock-based algorithms as well, leaving room for
// optimized solutions by treating private instructions (those inside a
// lock) separately from shared instructions". This tree demonstrates that:
// a writer holds the tree lock exclusively, so every store inside the
// critical section is a *private* instruction — no flit-counter traffic,
// no per-store fences. The writer tracks which nodes it dirtied and
// persists them in one batch (pwb per line + one pfence) before releasing
// the lock; the release is the single shared store that publishes the
// operation, and by then all its dependencies are persistent
// (Definition 1, Condition 4). Readers take the lock shared and never
// observe unpersisted data, so they issue no flushes at all.
//
// Three persistence modes, selected by a template tag (used by the
// ablation benchmark):
//   PersistAtRelease — the optimized scheme above (the point of §7);
//   PersistEveryStore — naive: every store inside the lock is treated as
//       a shared p-store (what automatic instrumentation would do);
//   NoPersistence — volatile baseline.
//
// Durability granularity: FliT persists *instructions*; it does not make
// multi-word operations failure-atomic (neither does the paper — its
// lock-free structures linearize on a single CAS). A crash *between*
// operations is always recoverable here; a crash in the middle of a
// multi-node split needs write-ahead logging, which is out of scope and
// called out in DESIGN.md. Deletion is by tombstone (no rebalancing) —
// standard practice for persistent B+-trees to keep SMOs rare.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "core/modes.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"

namespace flit::ds {

struct PersistAtRelease {
  static constexpr bool persistent = true;
  static constexpr bool batch = true;
  static constexpr const char* name = "persist-at-release";
};
struct PersistEveryStore {
  static constexpr bool persistent = true;
  static constexpr bool batch = false;
  static constexpr const char* name = "persist-every-store";
};
struct NoPersistence {
  static constexpr bool persistent = false;
  static constexpr bool batch = false;
  static constexpr const char* name = "non-persistent";
};

template <class K, class V, class Mode = PersistAtRelease, int Fanout = 16>
class LockedBPlusTree {
  static_assert(Fanout >= 4 && Fanout % 2 == 0);

 public:
  struct Node {
    bool leaf = true;
    std::int16_t count = 0;      // keys in use
    Node* next = nullptr;        // leaf chain (range scans, recovery)
    K keys[Fanout];
    union {
      Node* children[Fanout + 1];
      struct {
        V values[Fanout];
        bool live[Fanout];  // tombstones
      } leaf_data;
    };
    Node() : leaf(true) {
      leaf_data = {};
    }
  };

  LockedBPlusTree() {
    root_ = new_node(/*leaf=*/true);
    persist_now(root_);
  }

  ~LockedBPlusTree() {
    if (owns_) destroy(root_);
  }

  LockedBPlusTree(const LockedBPlusTree&) = delete;
  LockedBPlusTree& operator=(const LockedBPlusTree&) = delete;
  LockedBPlusTree(LockedBPlusTree&& o) noexcept
      : root_(o.root_), owns_(o.owns_) {
    o.owns_ = false;
    o.root_ = nullptr;
  }

  /// Insert or overwrite. Returns false if the key was already live.
  bool insert(K k, V v) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    dirty_.clear();
    if (root_full()) grow_root();
    const bool fresh = insert_nonfull(root_, k, v);
    flush_dirty();  // persist all dependencies before the (releasing)
                    // shared store makes the operation visible
    return fresh;
  }

  /// Tombstone-delete. Returns false if absent.
  bool remove(K k) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    dirty_.clear();
    Node* leaf = descend(k);
    const int i = find_slot(leaf, k);
    if (i < 0 || !leaf->leaf_data.live[i]) return false;
    leaf->leaf_data.live[i] = false;
    touch(&leaf->leaf_data.live[i]);
    mark_dirty(leaf);
    flush_dirty();
    return true;
  }

  bool contains(K k) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    const Node* leaf = descend(k);
    const int i = find_slot(leaf, k);
    return i >= 0 && leaf->leaf_data.live[i];
  }

  std::optional<V> find(K k) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    const Node* leaf = descend(k);
    const int i = find_slot(leaf, k);
    if (i < 0 || !leaf->leaf_data.live[i]) return std::nullopt;
    return leaf->leaf_data.values[i];
  }

  /// Live keys in [lo, hi), in order (leaf chain scan).
  std::vector<K> range(K lo, K hi) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    std::vector<K> out;
    const Node* leaf = descend(lo);
    while (leaf != nullptr) {
      for (int i = 0; i < leaf->count; ++i) {
        if (leaf->keys[i] >= hi) return out;
        if (leaf->keys[i] >= lo && leaf->leaf_data.live[i]) {
          out.push_back(leaf->keys[i]);
        }
      }
      leaf = leaf->next;
    }
    return out;
  }

  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    std::size_t n = 0;
    const Node* leaf = leftmost();
    while (leaf != nullptr) {
      for (int i = 0; i < leaf->count; ++i) {
        if (leaf->leaf_data.live[i]) ++n;
      }
      leaf = leaf->next;
    }
    return n;
  }

  // --- crash recovery ------------------------------------------------------

  Node* root() const noexcept { return root_; }

  /// Non-owning handle over a persisted tree (operation-boundary images).
  static LockedBPlusTree recover(Node* root) {
    return LockedBPlusTree(root);
  }

 private:
  explicit LockedBPlusTree(Node* root) noexcept : root_(root), owns_(false) {}

  static Node* new_node(bool leaf) {
    auto* n = static_cast<Node*>(pmem::Pool::instance().alloc(sizeof(Node)));
    ::new (n) Node();
    n->leaf = leaf;
    if (!leaf) {
      for (auto& c : n->children) c = nullptr;
    }
    return n;
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      for (int i = 0; i <= n->count; ++i) destroy(n->children[i]);
    }
    n->~Node();
    pmem::Pool::instance().dealloc(n, sizeof(Node));
  }

  // Every mutation inside the lock is a private instruction: plain stores,
  // with persistence deferred to flush_dirty() (PersistAtRelease). The
  // naive mode persists per node-touch as well (splits cost extra), but
  // its real cost comes from touch() below.
  void mark_dirty(Node* n) {
    if constexpr (!Mode::persistent) {
      (void)n;
    } else if constexpr (Mode::batch) {
      if (std::find(dirty_.begin(), dirty_.end(), n) == dirty_.end()) {
        dirty_.push_back(n);
      }
    } else {
      persist_now(n);  // naive: pwb+pfence on every touched node, each time
    }
  }

  // Per-word-store hook. PersistAtRelease treats in-lock stores as
  // *private* instructions (free; the batch at release covers them). The
  // naive mode emulates what automatic instrumentation would do to a
  // lock-based structure: every store is a shared p-store — fence, write,
  // write-back, fence (Algorithm 4) — which is exactly the per-instruction
  // cost FliT's private-access rule removes.
  static void touch(const void* p) {
    if constexpr (Mode::persistent && !Mode::batch) {
      pmem::pfence();
      pmem::pwb(p);
      pmem::pfence();
    } else {
      (void)p;
    }
  }

  void flush_dirty() {
    if constexpr (Mode::persistent && Mode::batch) {
      for (Node* n : dirty_) {
        const auto addr = reinterpret_cast<std::uintptr_t>(n);
        const std::size_t lines = pmem::lines_spanned(addr, sizeof(Node));
        std::uintptr_t line = pmem::line_base(addr);
        for (std::size_t i = 0; i < lines; ++i, line += pmem::kCacheLineSize) {
          pmem::pwb(reinterpret_cast<const void*>(line));
        }
      }
      pmem::pfence();  // one fence covers the whole operation
      dirty_.clear();
    }
  }

  static void persist_now(const Node* n) {
    if constexpr (Mode::persistent) pmem::persist_range(n, sizeof(Node));
  }

  bool root_full() const { return root_->count == Fanout; }

  void grow_root() {
    Node* old = root_;
    Node* nr = new_node(/*leaf=*/false);
    nr->children[0] = old;
    split_child(nr, 0);
    root_ = nr;
    mark_dirty(nr);
  }

  /// Split full child `idx` of internal node `p`.
  void split_child(Node* p, int idx) {
    Node* full = p->leaf ? nullptr : p->children[idx];
    assert(full != nullptr && full->count == Fanout);
    Node* right = new_node(full->leaf);
    const int half = Fanout / 2;

    if (full->leaf) {
      // Right keeps the upper half; separator = first right key.
      right->count = Fanout - half;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = full->keys[half + i];
        right->leaf_data.values[i] = full->leaf_data.values[half + i];
        right->leaf_data.live[i] = full->leaf_data.live[half + i];
        touch(&right->keys[i]);
        touch(&right->leaf_data.values[i]);
      }
      full->count = half;
      touch(&full->count);
      right->next = full->next;
      full->next = right;
      touch(&full->next);
      shift_in_child(p, idx, right->keys[0], right);
    } else {
      // Middle key moves up; right takes keys above it.
      right->count = Fanout - half - 1;
      for (int i = 0; i < right->count; ++i) {
        right->keys[i] = full->keys[half + 1 + i];
        touch(&right->keys[i]);
      }
      for (int i = 0; i <= right->count; ++i) {
        right->children[i] = full->children[half + 1 + i];
        touch(&right->children[i]);
      }
      const K sep = full->keys[half];
      full->count = half;
      touch(&full->count);
      shift_in_child(p, idx, sep, right);
    }
    mark_dirty(full);
    mark_dirty(right);
    mark_dirty(p);
  }

  /// Insert separator + right child into internal node p after slot idx.
  void shift_in_child(Node* p, int idx, K sep, Node* right) {
    for (int i = p->count; i > idx; --i) {
      p->keys[i] = p->keys[i - 1];
      p->children[i + 1] = p->children[i];
      touch(&p->keys[i]);
      touch(&p->children[i + 1]);
    }
    p->keys[idx] = sep;
    p->children[idx + 1] = right;
    ++p->count;
    touch(&p->keys[idx]);
    touch(&p->children[idx + 1]);
    touch(&p->count);
  }

  bool insert_nonfull(Node* n, K k, V v) {
    while (!n->leaf) {
      int i = child_index(n, k);
      Node* c = n->children[i];
      if (c->count == Fanout) {
        split_child(n, i);
        if (k >= n->keys[i]) ++i;
        c = n->children[i];
      }
      n = c;
    }
    const int at = find_slot(n, k);
    if (at >= 0) {
      const bool was_live = n->leaf_data.live[at];
      n->leaf_data.values[at] = v;
      n->leaf_data.live[at] = true;
      touch(&n->leaf_data.values[at]);
      touch(&n->leaf_data.live[at]);
      mark_dirty(n);
      return !was_live;
    }
    int i = n->count - 1;
    while (i >= 0 && n->keys[i] > k) {
      n->keys[i + 1] = n->keys[i];
      n->leaf_data.values[i + 1] = n->leaf_data.values[i];
      n->leaf_data.live[i + 1] = n->leaf_data.live[i];
      touch(&n->keys[i + 1]);
      touch(&n->leaf_data.values[i + 1]);
      --i;
    }
    n->keys[i + 1] = k;
    n->leaf_data.values[i + 1] = v;
    n->leaf_data.live[i + 1] = true;
    ++n->count;
    touch(&n->keys[i + 1]);
    touch(&n->leaf_data.values[i + 1]);
    touch(&n->count);
    mark_dirty(n);
    return true;
  }

  static int child_index(const Node* n, K k) {
    int i = 0;
    while (i < n->count && k >= n->keys[i]) ++i;
    return i;
  }

  /// Leaf that would contain k.
  const Node* descend(K k) const {
    const Node* n = root_;
    while (!n->leaf) n = n->children[child_index(n, k)];
    return n;
  }
  Node* descend(K k) {
    Node* n = root_;
    while (!n->leaf) n = n->children[child_index(n, k)];
    return n;
  }

  /// Exact key slot in a leaf, or -1.
  static int find_slot(const Node* leaf, K k) {
    for (int i = 0; i < leaf->count; ++i) {
      if (leaf->keys[i] == k) return i;
    }
    return -1;
  }

  const Node* leftmost() const {
    const Node* n = root_;
    while (!n->leaf) n = n->children[0];
    return n;
  }

  mutable std::shared_mutex mu_;
  Node* root_ = nullptr;
  bool owns_ = true;
  std::vector<Node*> dirty_;  // writer-private (guarded by mu_ exclusive)
};

}  // namespace flit::ds
