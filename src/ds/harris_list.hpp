// harris_list.hpp — Harris's lock-free linked list [DISC'01], written
// against the FliT instruction API.
//
// This is the paper's running example (§1: "a C++11 implementation of
// Harris's linked list can be made durably linearizable by changing just
// seven lines of code") and one of the four evaluated structures. Deletion
// is two-phase: a delete first *marks* the victim's next pointer (bit 0 —
// the linearization point) and then physically unlinks it; traversals help
// unlink marked nodes they encounter.
//
// Pointer-valued lists additionally support atomic in-place value
// replacement (upsert): the value word is CASed from the old pointer to
// the new one, and a removal *claims* the final value by CASing it to its
// bit-0-marked form after winning the next-pointer mark. The value word's
// successful CASes thus form one linear chain ending in a marked pointer,
// which gives every superseded value exactly one owner (the CAS winner
// that replaced it) — the retirement-uniqueness contract the KV record
// slab builds on. A marked value can only ever be observed on a node
// whose removal already linearized, so readers treat it as absence.
//
// Template parameters:
//   K, V    — integral key (numeric_limits min/max are reserved for the
//             sentinels) and trivially copyable value;
//   Words   — word-wrapper configuration (FliT policy, link-and-persist,
//             plain, or non-persistent; see core/modes.hpp);
//   Method  — durability method choosing pflags per call site (Automatic /
//             NVTraverse / Manual).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <stdexcept>
#include <type_traits>

#include "check/lincheck.hpp"
#include "core/modes.hpp"
#include "ds/batch.hpp"
#include "ds/tagged_ptr.hpp"
#include "pmem/persist_check.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::ds {

template <class K, class V, class Words = HashedWords,
          class Method = Automatic>
class HarrisList {
  static_assert(std::is_integral_v<K>, "sentinel keys require integral K");

  template <class T>
  using W = typename Words::template word<T>;

 public:
  struct Node {
    W<K> key;
    W<V> value;
    W<Node*> next;  // bit 0 = deletion mark
    Node(K k, V v, Node* n) noexcept : key(k), value(v), next(n) {}
  };

  static constexpr K kMinKey = std::numeric_limits<K>::min();
  static constexpr K kMaxKey = std::numeric_limits<K>::max();

  HarrisList() {
    tail_ = pmem::pnew<Node>(kMaxKey, V{}, nullptr);
    head_ = pmem::pnew<Node>(kMinKey, V{}, tail_);
    Words::persist_obj(tail_);
    Words::persist_obj(head_);
  }

  ~HarrisList() {
    if (!owns_) return;
    Node* n = head_;
    while (n != nullptr) {
      Node* nxt = without_mark(n->next.load_private());
      pmem::pdelete(n);
      n = nxt;
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  HarrisList(HarrisList&& o) noexcept
      : head_(o.head_), tail_(o.tail_), owns_(o.owns_) {
    o.owns_ = false;
    o.head_ = o.tail_ = nullptr;
  }

  /// Insert (k, v). Returns false if k is already present.
  bool insert(K k, V v) {
    recl::Ebr::Guard g;
    for (;;) {
      auto [pred, curr] = search(k);
      if (curr->key.load(Method::critical_load) == k) {
        Words::operation_completion();
        return false;
      }
      if (try_link(k, v, pred, curr)) {
        Words::operation_completion();
        return true;
      }
    }
  }

  /// Insert-or-replace. Returns the superseded value when k was present
  /// (the caller owns cleanup of whatever it referenced — see the file
  /// comment), nullopt when this call freshly inserted k. The replacement
  /// is one durable CAS on the node's value word: a concurrent find
  /// observes the old or the new value, never absence. Pointer values
  /// only (the coordination with removal needs bit 0 of the word).
  std::optional<V> upsert(K k, V v)
    requires std::is_pointer_v<V>
  {
    recl::Ebr::Guard g;
    for (;;) {
      auto [pred, curr] = search(k);
      if (curr->key.load(Method::critical_load) == k) {
        // In-place replace. A marked value means the removal that won
        // this node's mark CAS already claimed it: the key is logically
        // absent, so fall through to a fresh search (which helps unlink)
        // and the insert path. Succeeding on a node whose *next* was
        // marked after our search is benign: the value was still
        // unclaimed, so the remover has not returned and the two
        // overlapping operations linearize as replace-then-remove (the
        // remover's claim captures — and owns — our value).
        if (std::optional<V> old = replace_value(
                curr->value, v, Method::critical_load,
                Method::critical_store)) {
          Words::operation_completion();
          return old;
        }
        continue;
      }
      if (try_link(k, v, pred, curr)) {
        Words::operation_completion();
        return std::nullopt;
      }
    }
  }

  /// Batched upsert: identical set semantics to upsert(), but the publish
  /// (value-word replace or fresh-node link) is a deferred-fence CAS
  /// enlisted in `batch`, and no per-op completion fence is issued — the
  /// caller pays one pfence for the whole batch and then
  /// batch.complete_all() (see ds/batch.hpp and kv::Store::multi_put).
  /// Precondition: everything `v` points at is already flushed, and the
  /// caller fences those flushes before the first publish of the batch.
  std::optional<V> upsert_batched(K k, V v, PublishBatch& batch)
    requires std::is_pointer_v<V>
  {
    recl::Ebr::Guard g;
    for (;;) {
      auto [pred, curr] = search(k);
      if (curr->key.load(Method::critical_load) == k) {
        if (std::optional<V> old = replace_value_deferred(
                curr->value, v, Method::critical_load,
                Method::critical_store, batch)) {
          return old;
        }
        continue;
      }
      if (try_link(k, v, pred, curr, &batch)) return std::nullopt;
    }
  }

  /// Remove k. Returns false if k is absent.
  bool remove(K k) { return remove_get(k).has_value(); }

  /// Remove k, returning the removed value (nullopt if k is absent).
  /// Exactly one removal observes the returned value, which lets callers
  /// own cleanup of value-referenced storage (the KV record slab relies
  /// on this for EBR retirement of superseded records). For pointer
  /// values the winner *claims* it by marking the value word — the CAS
  /// that ends the word's upsert chain; for other value types values are
  /// immutable after publication and a plain read suffices.
  std::optional<V> remove_get(K k) {
    recl::Ebr::Guard g;
    for (;;) {
      auto [pred, curr] = search(k);
      if (curr->key.load(Method::critical_load) != k) {
        Words::operation_completion();
        return std::nullopt;
      }
      Node* succ = curr->next.load(Method::critical_load);
      if (is_marked(succ)) continue;  // raced with another remover; re-find
      // Logical deletion: mark curr's next pointer (linearization point).
      Node* expected = succ;
      if (!curr->next.cas(expected, with_mark(succ),
                          Method::critical_store)) {
        continue;  // next changed (insert after curr, or competing mark)
      }
      const V removed = claim_value(curr->value, Method::critical_load,
                                    Method::cleanup_store);
      // Physical deletion: unlink; on failure, search() will help.
      Node* e = curr;
      if (pred->next.cas(e, succ, Method::cleanup_store)) {
        recl::Ebr::instance().retire_pmem(curr);
      } else {
        search(k);  // ensures curr is unlinked (and retired by the helper)
      }
      Words::operation_completion();
      return removed;
    }
  }

  /// Membership test.
  bool contains(K k) const {
    recl::Ebr::Guard g;
    auto [pred, curr] = const_cast<HarrisList*>(this)->search(k);
    (void)pred;
    const bool found = curr->key.load(Method::transition_load) == k;
    Words::operation_completion();
    return found;
  }

  /// Lookup returning the value. A claimed (marked) pointer value means
  /// the node's removal linearized before our read: absent.
  std::optional<V> find(K k) const {
    std::optional<V> out = find_batched(k);
    Words::operation_completion();
    return out;
  }

  /// find() minus the per-op completion fence: a batch of lookups shares
  /// one completion fence, issued by the caller after the last lookup
  /// (flush-if-tagged pwbs from the searches stay pending until then, so
  /// nothing the batch observed escapes to the outside unpersisted).
  std::optional<V> find_batched(K k) const {
    recl::Ebr::Guard g;
    auto [pred, curr] = const_cast<HarrisList*>(this)->search(k);
    (void)pred;
    std::optional<V> out;
    if (curr->key.load(Method::transition_load) == k) {
      const V v = curr->value.load(Method::transition_load);
      if (!value_is_claimed(v)) out = v;
    }
    return out;
  }

  /// Prefetch the first probe targets of a later operation on this list:
  /// the head sentinel's line and the first linked node. Purely a memory
  /// hint — it dereferences nothing beyond one relaxed pointer load, so it
  /// is safe with or without an EBR guard (a stale prefetch address is
  /// harmless). Batched operations call this for key i+1 while key i's
  /// cache misses are outstanding.
  void prepare(K /*k*/) const noexcept {
    __builtin_prefetch(head_);
    __builtin_prefetch(without_mark(head_->next.load_private()));
  }

  /// Number of reachable (unmarked) keys; single-threaded use only.
  /// Throws std::length_error on a chain that dead-ends before the tail
  /// sentinel — a healthy list always reaches it, so a premature null is
  /// a truncated/torn image (e.g. a node zeroed by file truncation), and
  /// walking past it would either miscount silently or dereference null.
  std::size_t size() const {
    std::size_t n = 0;
    const Node* c = without_mark(head_->next.load_private());
    while (c != tail_) {
      if (c == nullptr) {
        throw std::length_error(
            "ds::HarrisList: chain breaks before the tail sentinel");
      }
      if (!is_marked(c->next.load_private())) ++n;
      c = without_mark(c->next.load_private());
    }
    return n;
  }

  // --- crash recovery ------------------------------------------------------

  /// Address of the root pointer pair for persistence tests: the head
  /// sentinel (in the persistent pool) fully determines the structure.
  Node* head() const noexcept { return head_; }
  Node* tail() const noexcept { return tail_; }

  /// Rebuild a (non-owning) handle onto a structure whose nodes survived a
  /// crash in the persistent pool. Recovery is read-only, per the model.
  static HarrisList recover(Node* head, Node* tail) {
    return HarrisList(head, tail);
  }

  /// Disown the nodes: the destructor will no longer free them. Used when
  /// the structure's bytes outlive this handle (e.g. a file-backed region
  /// being closed while the persisted nodes stay on disk).
  void release() noexcept { owns_ = false; }

  /// Visit every linked node — sentinels and marked nodes included — as
  /// f(node, is_marked). Single-threaded use only (recovery sweeps that
  /// rebuild allocator metadata must see every byte a traversal could
  /// reach; note a *marked* node's value may reference already-reclaimed
  /// storage, which is why the flag is passed along). Every healthy chain
  /// terminates at the tail sentinel (the only node whose next is null);
  /// a walk ending anywhere else is a truncated/torn image and throws
  /// std::length_error rather than letting recovery half-succeed.
  template <class F>
  void for_each_linked(F&& f) const {
    const Node* c = head_;
    const Node* last = nullptr;
    while (c != nullptr) {
      const Node* succ = c->next.load_private();
      f(*c, is_marked(succ));
      last = c;
      c = without_mark(succ);
    }
    if (last != tail_) {
      throw std::length_error(
          "ds::HarrisList: chain breaks before the tail sentinel");
    }
  }

 private:
  HarrisList(Node* head, Node* tail) noexcept
      : head_(head), tail_(tail), owns_(false) {}

  /// One insertion attempt at the (pred, curr) position search() just
  /// computed: build the node, persist it, publish it with the critical
  /// CAS. False — node freed, nothing published — if the CAS lost; the
  /// caller re-searches and retries. Shared by insert and upsert so the
  /// publish/durability sequence exists exactly once. With a non-null
  /// `batch` the publish CAS defers its trailing fence to the batch (the
  /// node-init persist keeps its own fence either way: the node's bytes
  /// must be durable before the link can be observed, and they were
  /// flushed after the batch's record fence).
  bool try_link(K k, V v, Node* pred, Node* curr,
                PublishBatch* batch = nullptr) {
    Node* node = pmem::pnew<Node>(k, v, curr);
    if (Method::persist_node_init) Words::persist_obj(node);
    if constexpr (Words::persistent) {
      pmem::pc_publish(node, sizeof(Node), "ds::HarrisList::try_link");
    }
    Node* expected = curr;
    if (batch != nullptr) {
      if (pred->next.cas_deferred(expected, node, Method::critical_store)) {
        if (Method::critical_store) batch->enlist(pred->next, node);
        return true;
      }
    } else if (pred->next.cas(expected, node, Method::critical_store)) {
      return true;
    }
    pmem::pdelete(node);  // never published; immediate free is safe
    return false;
  }

  /// Harris search: returns (pred, curr) where curr is the first unmarked
  /// node with key >= k and pred is its unmarked predecessor. Helps unlink
  /// marked nodes along the way.
  std::pair<Node*, Node*> search(K k) {
  retry:
    for (;;) {
      Node* pred = head_;
      Node* curr = without_mark(pred->next.load(Method::traversal_load));
      for (;;) {
        check::lc_deref(curr, "ds::HarrisList::search");
        Node* succ = curr->next.load(Method::traversal_load);
        while (is_marked(succ)) {
          // curr is logically deleted: unlink it before moving on.
          Node* expected = curr;
          if (!pred->next.cas(expected, without_mark(succ),
                              Method::cleanup_store)) {
            goto retry;
          }
          recl::Ebr::instance().retire_pmem(curr);
          curr = without_mark(succ);
          check::lc_deref(curr, "ds::HarrisList::search");
          succ = curr->next.load(Method::traversal_load);
        }
        if (curr->key.load(Method::traversal_load) >= k) {
          // NVtraverse/manual transition: flush-if-tagged the nodes the
          // critical phase depends on.
          if (Method::traversal_load != Method::transition_load) {
            pred->next.load(Method::transition_load);
            curr->next.load(Method::transition_load);
          }
          return {pred, curr};
        }
        pred = curr;
        curr = without_mark(succ);
      }
    }
  }

  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  bool owns_ = true;
};

}  // namespace flit::ds
