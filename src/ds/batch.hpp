// batch.hpp — deferred-fence publication batches for the multi-op KV path.
//
// A scalar durable publish pays its own trailing pfence (Algorithm 4). A
// batch of publishes instead leaves every published word tagged (persist<>
// counter) or dirty (lap_word bit), issues ONE pfence covering all of the
// batch's pwbs, and only then clears the per-word state — concurrent
// p-loads flush-if-tagged in the meantime, so visibility before the shared
// fence never breaks durable linearizability. PublishBatch is the
// bookkeeping: the type-erased list of (word, desired) pairs whose
// complete_deferred() calls the batch owner owes after its fence.
//
// Single-owner, single-threaded object: one batch belongs to one in-flight
// multi-op on one thread (the words it points at are shared; the list is
// not).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "ds/tagged_ptr.hpp"
#include "pmem/persist_check.hpp"

namespace flit::ds {

class PublishBatch {
 public:
  /// Pre-size the pending list. A batch owner MUST reserve capacity for
  /// its worst-case publish count before the first enlist: enlist runs
  /// after a publish CAS has already succeeded, so an allocation failure
  /// inside it would strand a published-but-never-completed word (and
  /// wreck the owner's exception cleanup, which assumes un-enlisted
  /// elements were never published).
  void reserve(std::size_t n) { pending_.reserve(n); }

  /// Register a word whose cas_deferred just succeeded with `desired`.
  /// No-op for word types that need no completion (plain/volatile). The
  /// caller must eventually pfence and then complete_all().
  template <class W>
  void enlist(W& word, typename W::value_type desired) {
    using V = typename W::value_type;
    static_assert(std::is_pointer_v<V>,
                  "deferred publication batches carry pointer values");
    if constexpr (W::needs_completion) {
      pmem::pc_deferred_publish(word.raw_address(),
                                "ds::PublishBatch::enlist");
      pending_.push_back(
          {&word, word.raw_address(),
           reinterpret_cast<std::uintptr_t>(desired),
           [](void* w, std::uintptr_t d) {
             static_cast<W*>(w)->complete_deferred(reinterpret_cast<V>(d));
           }});
    }
  }

  /// Untag / clear-dirty every enlisted word. Only call after a pfence
  /// that covers all of the batch's publish pwbs (Condition 3: a word's
  /// value must be persistent before its tag drops).
  void complete_all() noexcept {
    for (const Pending& p : pending_) {
      pmem::pc_complete_deferred(p.addr);
      p.complete(p.word, p.desired);
    }
    pending_.clear();
  }

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t size() const noexcept { return pending_.size(); }

 private:
  struct Pending {
    void* word;
    const void* addr;  ///< raw word address (PersistCheck identity)
    std::uintptr_t desired;
    void (*complete)(void*, std::uintptr_t);
  };
  std::vector<Pending> pending_;
};

/// Deferred-fence variant of replace_value (the upsert in-place overwrite,
/// see tagged_ptr.hpp): the winning CAS leaves the word tagged/dirty and
/// enlists it in `batch`; the caller issues one pfence covering the whole
/// batch and then batch.complete_all(). Same return contract as
/// replace_value: the superseded value on success (uniquely owned by the
/// caller — but see kv::Shard::put_batched: retirement must wait for the
/// batch fence), nullopt when the value was claimed by a removal.
template <class Word, class V = typename Word::value_type>
std::optional<V> replace_value_deferred(Word& word, V v, bool load_pflag,
                                        bool cas_pflag, PublishBatch& batch)
  requires std::is_pointer_v<V>
{
  V old = word.load(load_pflag);
  while (!is_marked(old)) {
    V expected = old;
    if (word.cas_deferred(expected, v, cas_pflag)) {
      if (cas_pflag) batch.enlist(word, v);
      return old;
    }
    old = expected;
  }
  return std::nullopt;
}

}  // namespace flit::ds
