// natarajan_bst.hpp — Natarajan–Mittal lock-free external BST [PPoPP'14],
// written against the FliT instruction API.
//
// External tree: internal nodes route (two children each), leaves hold the
// keys. Deletion is edge-based: the deleter *flags* (bit 0) the edge from
// the parent to the victim leaf, *tags* (bit 1) the edge to the sibling so
// it cannot be modified, and swings the ancestor's edge down to the
// sibling, removing the parent and leaf in one CAS.
//
// Because both low bits of every child pointer are control bits, there is
// no spare bit for link-and-persist's dirty flag — this is the structure
// the paper uses to show FliT's generality (§6.6: "link-and-persist ...
// cannot be implemented with the BST, since this BST algorithm makes use of
// all bits in each word").
//
// Reclamation: a deleter retires its own parent + leaf when its cleanup CAS
// succeeds. Removals completed by helpers leak those two nodes (rare,
// contention-only) — the standard conservative choice for this algorithm.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <type_traits>

#include "check/lincheck.hpp"
#include "core/modes.hpp"
#include "ds/tagged_ptr.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::ds {

template <class K, class V, class Words = HashedWords,
          class Method = Automatic>
class NatarajanBst {
  static_assert(std::is_integral_v<K>, "sentinel keys require integral K");

  template <class T>
  using W = typename Words::template word<T>;

 public:
  struct Node {
    W<K> key;
    W<V> value;
    W<Node*> left;   // bits 0 (flag) and 1 (tag) are control bits
    W<Node*> right;
    Node(K k, V v, Node* l, Node* r) noexcept
        : key(k), value(v), left(l), right(r) {}
    bool is_leaf() const noexcept {
      return without_bits(left.load_private(), kFlagBit | kTagBit) == nullptr;
    }
  };

  // Two sentinel keys above every real key (paper's inf1 < inf2).
  static constexpr K kInf2 = std::numeric_limits<K>::max();
  static constexpr K kInf1 = kInf2 - 1;

  NatarajanBst() {
    Node* leaf_inf1 = pmem::pnew<Node>(kInf1, V{}, nullptr, nullptr);
    Node* leaf_inf2a = pmem::pnew<Node>(kInf2, V{}, nullptr, nullptr);
    Node* leaf_inf2b = pmem::pnew<Node>(kInf2, V{}, nullptr, nullptr);
    s_ = pmem::pnew<Node>(kInf1, V{}, leaf_inf1, leaf_inf2a);
    r_ = pmem::pnew<Node>(kInf2, V{}, s_, leaf_inf2b);
    Words::persist_obj(leaf_inf1);
    Words::persist_obj(leaf_inf2a);
    Words::persist_obj(leaf_inf2b);
    Words::persist_obj(s_);
    Words::persist_obj(r_);
  }

  ~NatarajanBst() {
    if (!owns_) return;
    destroy_rec(r_);
  }

  NatarajanBst(const NatarajanBst&) = delete;
  NatarajanBst& operator=(const NatarajanBst&) = delete;
  NatarajanBst(NatarajanBst&& o) noexcept
      : r_(o.r_), s_(o.s_), owns_(o.owns_) {
    o.owns_ = false;
    o.r_ = o.s_ = nullptr;
  }

  bool insert(K k, V v) {
    recl::Ebr::Guard g;
    for (;;) {
      SeekRecord sr = seek(k);
      const K leaf_key = sr.leaf->key.load(Method::critical_load);
      if (leaf_key == k) {
        Words::operation_completion();
        return false;
      }
      // Build: a new internal routing node whose children are the existing
      // leaf and the new leaf.
      Node* new_leaf = pmem::pnew<Node>(k, v, nullptr, nullptr);
      Node* internal =
          (k < leaf_key)
              ? pmem::pnew<Node>(leaf_key, V{}, new_leaf, sr.leaf)
              : pmem::pnew<Node>(k, V{}, sr.leaf, new_leaf);
      if (Method::persist_node_init) {
        Words::persist_obj(new_leaf);
        Words::persist_obj(internal);
      }
      W<Node*>& child_field = child_of(sr.parent, k);
      Node* expected = sr.leaf;  // clean edge (no flag/tag)
      if (child_field.cas(expected, internal, Method::critical_store)) {
        Words::operation_completion();
        return true;
      }
      // Failed: free the unpublished nodes and help if the edge to our
      // leaf is being deleted.
      pmem::pdelete(new_leaf);
      pmem::pdelete(internal);
      if (without_bits(expected, kFlagBit | kTagBit) == sr.leaf &&
          get_bits(expected, kFlagBit | kTagBit) != 0) {
        cleanup(k, sr);
      }
    }
  }

  bool remove(K k) {
    recl::Ebr::Guard g;
    bool injected = false;
    Node* victim = nullptr;
    Node* victim_parent = nullptr;
    for (;;) {
      SeekRecord sr = seek(k);
      if (!injected) {
        if (sr.leaf->key.load(Method::critical_load) != k) {
          Words::operation_completion();
          return false;
        }
        victim = sr.leaf;
        W<Node*>& child_field = child_of(sr.parent, k);
        Node* expected = victim;
        if (child_field.cas(expected, with_bits(victim, kFlagBit),
                            Method::critical_store)) {
          injected = true;
          victim_parent = sr.parent;
          if (cleanup(k, sr)) {
            retire_removed(victim, victim_parent);
            Words::operation_completion();
            return true;
          }
        } else if (without_bits(expected, kFlagBit | kTagBit) == victim &&
                   get_bits(expected, kFlagBit | kTagBit) != 0) {
          // Another delete flagged this same leaf first: help, then lose.
          cleanup(k, sr);
        }
      } else {
        if (sr.leaf != victim) {
          // A helper finished our removal; the helper's CAS moved the tree
          // past our parent/leaf — conservatively leak them (see header).
          Words::operation_completion();
          return true;
        }
        if (cleanup(k, sr)) {
          retire_removed(victim, sr.parent);
          Words::operation_completion();
          return true;
        }
      }
    }
  }

  bool contains(K k) const {
    recl::Ebr::Guard g;
    Node* n = without_bits(
        s_->left.load(Method::traversal_load), kFlagBit | kTagBit);
    while (!is_leaf_traverse(n)) {
      n = without_bits(child_of_const(n, k).load(Method::traversal_load),
                       kFlagBit | kTagBit);
    }
    const bool found = n->key.load(Method::transition_load) == k;
    Words::operation_completion();
    return found;
  }

  std::optional<V> find(K k) const {
    recl::Ebr::Guard g;
    Node* n = without_bits(
        s_->left.load(Method::traversal_load), kFlagBit | kTagBit);
    while (!is_leaf_traverse(n)) {
      n = without_bits(child_of_const(n, k).load(Method::traversal_load),
                       kFlagBit | kTagBit);
    }
    std::optional<V> out;
    if (n->key.load(Method::transition_load) == k) {
      out = n->value.load(Method::transition_load);
    }
    Words::operation_completion();
    return out;
  }

  /// Reachable key count; single-threaded use only.
  std::size_t size() const { return count_rec(s_, /*leaves_only=*/true); }

  // --- crash recovery ------------------------------------------------------

  Node* root() const noexcept { return r_; }
  Node* sentinel() const noexcept { return s_; }

  static NatarajanBst recover(Node* r, Node* s) { return NatarajanBst(r, s); }

 private:
  struct SeekRecord {
    Node* ancestor;
    Node* successor;
    Node* parent;
    Node* leaf;
  };

  NatarajanBst(Node* r, Node* s) noexcept : r_(r), s_(s), owns_(false) {}

  W<Node*>& child_of(Node* n, K k) noexcept {
    return (k < n->key.load(Method::traversal_load)) ? n->left : n->right;
  }
  const W<Node*>& child_of_const(Node* n, K k) const noexcept {
    return (k < n->key.load(Method::traversal_load)) ? n->left : n->right;
  }

  bool is_leaf_traverse(Node* n) const noexcept {
    return without_bits(n->left.load(Method::traversal_load),
                        kFlagBit | kTagBit) == nullptr;
  }

  /// Natarajan–Mittal seek: tracks the deepest *untagged* edge (ancestor →
  /// successor) above the search path, plus the final (parent, leaf).
  SeekRecord seek(K k) {
    SeekRecord sr{r_, s_, s_, nullptr};
    Node* parent_field =
        sr.parent->left.load(Method::traversal_load);  // raw S→child word
    Node* current_field = nullptr;
    sr.leaf = without_bits(parent_field, kFlagBit | kTagBit);
    check::lc_deref(sr.leaf, "ds::NatarajanBst::seek");
    current_field = sr.leaf->left.load(Method::traversal_load);
    Node* current = without_bits(current_field, kFlagBit | kTagBit);

    while (current != nullptr) {
      check::lc_deref(current, "ds::NatarajanBst::seek");
      if (get_bits(parent_field, kTagBit) == 0) {
        sr.ancestor = sr.parent;
        sr.successor = sr.leaf;
      }
      sr.parent = sr.leaf;
      sr.leaf = current;
      parent_field = current_field;
      current_field =
          (k < sr.leaf->key.load(Method::traversal_load))
              ? sr.leaf->left.load(Method::traversal_load)
              : sr.leaf->right.load(Method::traversal_load);
      current = without_bits(current_field, kFlagBit | kTagBit);
    }
    // NVtraverse/manual transition: flush-if-tagged the words the critical
    // phase reads/CASes.
    if (Method::traversal_load != Method::transition_load) {
      child_of(sr.parent, k).load(Method::transition_load);
      sr.leaf->key.load(Method::transition_load);
    }
    return sr;
  }

  /// Remove the flagged leaf (and its parent) by swinging the ancestor's
  /// edge to the sibling. Returns true if this call's CAS did the removal.
  bool cleanup(K k, const SeekRecord& sr) {
    Node* ancestor = sr.ancestor;
    Node* parent = sr.parent;

    // Which of parent's edges carries the delete flag?
    const bool leaf_on_left =
        k < parent->key.load(Method::critical_load);
    W<Node*>& child_field = leaf_on_left ? parent->left : parent->right;
    W<Node*>& sibling_init = leaf_on_left ? parent->right : parent->left;
    W<Node*>* sibling_field = &sibling_init;

    Node* child_val = child_field.load(Method::critical_load);
    if (get_bits(child_val, kFlagBit) == 0) {
      // The flag is on the other edge: we are helping a delete of the
      // sibling leaf, so the roles swap.
      sibling_field = &child_field;
    }

    // Tag the sibling edge so no insert/delete can modify it, preserving a
    // possible flag (a pending delete of the sibling survives the swing).
    for (;;) {
      Node* sv = sibling_field->load(Method::critical_load);
      if (get_bits(sv, kTagBit) != 0) break;
      Node* expected = sv;
      if (sibling_field->cas(expected, with_bits(sv, kTagBit),
                             Method::critical_store)) {
        break;
      }
    }
    Node* sibling_val = sibling_field->load(Method::critical_load);
    Node* new_child = without_bits(sibling_val, kTagBit);  // keep flag bit

    // Swing: ancestor's edge to successor is replaced by the sibling.
    W<Node*>& anc_field =
        (k < ancestor->key.load(Method::critical_load)) ? ancestor->left
                                                        : ancestor->right;
    Node* expected = sr.successor;  // clean edge expected
    return anc_field.cas(expected, new_child, Method::critical_store);
  }

  void retire_removed(Node* leaf, Node* parent) {
    recl::Ebr::instance().retire_pmem(leaf);
    recl::Ebr::instance().retire_pmem(parent);
  }

  std::size_t count_rec(const Node* n, bool leaves_only) const {
    if (n == nullptr) return 0;
    const Node* l =
        without_bits(n->left.load_private(), kFlagBit | kTagBit);
    const Node* r =
        without_bits(n->right.load_private(), kFlagBit | kTagBit);
    if (l == nullptr) {  // leaf
      const K key = n->key.load_private();
      return (key < kInf1) ? 1 : 0;
    }
    (void)leaves_only;
    return count_rec(l, leaves_only) + count_rec(r, leaves_only);
  }

  void destroy_rec(Node* n) {
    if (n == nullptr) return;
    Node* l = without_bits(n->left.load_private(), kFlagBit | kTagBit);
    Node* r = without_bits(n->right.load_private(), kFlagBit | kTagBit);
    destroy_rec(l);
    destroy_rec(r);
    pmem::pdelete(n);
  }

  Node* r_ = nullptr;  // root internal node (key inf2)
  Node* s_ = nullptr;  // its left child (key inf1); real keys live below
  bool owns_ = true;
};

}  // namespace flit::ds
