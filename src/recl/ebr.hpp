// ebr.hpp — epoch-based memory reclamation for the lock-free structures.
//
// The paper's data structures (Harris list, Natarajan BST, skiplist, hash
// table) unlink nodes that concurrent traversals may still be reading, so
// they need a safe-memory-reclamation substrate. We implement classic
// 3-epoch EBR:
//
//   * a global epoch counter;
//   * each thread announces the epoch it read when it enters an operation
//     (Guard) and announces "idle" when it leaves;
//   * retired nodes go into the retiring thread's limbo bucket for the
//     current epoch; a bucket is recycled when the global epoch has moved
//     two steps past it (no active guard can still reach its nodes);
//   * the epoch advances when every active thread has announced the
//     current epoch.
//
// Crash tests disable reclamation (`set_reclaim(false)`) so that a
// simulated power failure never races with node reuse; the paper's own
// evaluation likewise sidesteps persistent allocator recovery (libvmmalloc
// is not crash-consistent).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace flit::recl {

/// Returns a block of `size` bytes to the persistent pool (defined in
/// ebr.cpp; kept out of line so this header needn't include pool.hpp).
void ebr_pmem_free(void* p, std::size_t size);

class Ebr {
 public:
  static constexpr std::size_t kMaxThreads = 256;
  /// Try to advance the epoch / recycle limbo every this many retires.
  static constexpr std::size_t kScanThreshold = 64;
  /// The announcement value of a thread holding no guard (what
  /// current_announce() returns when idle).
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};

  static Ebr& instance();

  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  /// RAII epoch pin. Every data-structure operation must hold one for its
  /// whole duration. Re-entrant (nested guards are counted).
  class Guard {
   public:
    Guard() { Ebr::instance().enter(); }
    ~Guard() { Ebr::instance().leave(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
  };

  /// Retire a node for deferred deletion via `deleter(p)`.
  void retire(void* p, void (*deleter)(void*));

  /// Typed convenience over pmem::pdelete.
  template <class T>
  void retire_pmem(T* p);

  /// Globally enable/disable reclamation. When disabled, retire() leaks —
  /// used by crash tests. Switch only while quiescent.
  void set_reclaim(bool enabled) noexcept {
    reclaim_.store(enabled, std::memory_order_relaxed);
  }
  bool reclaim_enabled() const noexcept {
    return reclaim_.load(std::memory_order_relaxed);
  }

  /// Free every limbo node unconditionally. Caller must guarantee no
  /// concurrent operations (test/bench teardown between phases).
  void drain_all();

  std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }
  /// The calling thread's current epoch announcement (kIdleEpoch when it
  /// holds no guard). Used by the LinCheck lifetime analyzer to judge
  /// dereferences of retired nodes.
  std::uint64_t current_announce() noexcept;
  /// Nodes currently awaiting reclamation across all threads (approximate).
  std::size_t limbo_size() const noexcept {
    return limbo_count_.load(std::memory_order_relaxed);
  }

 private:
  Ebr() = default;

  static constexpr std::uint64_t kIdle = kIdleEpoch;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> announce{kIdle};
    std::atomic<bool> used{false};
  };

  struct Retired {
    void* p;
    void (*deleter)(void*);
  };

  struct Bucket {
    std::uint64_t epoch = 0;  // epoch in which these nodes were retired
    std::vector<Retired> nodes;
  };

  struct ThreadState {
    int slot = -1;
    int guard_depth = 0;
    std::size_t since_scan = 0;
    Bucket buckets[3];
    Ebr* owner = nullptr;
    ~ThreadState();  // hands buckets to the orphan list, frees the slot
  };

  ThreadState& tls();
  int acquire_slot();
  void enter();
  void leave();
  void scan(ThreadState& ts);
  void free_bucket(Bucket& b, bool quiescent = false);
  void adopt_orphans(std::uint64_t safe_epoch);

  std::atomic<std::uint64_t> global_epoch_{2};
  std::atomic<bool> reclaim_{true};
  std::atomic<std::size_t> limbo_count_{0};
  Slot slots_[kMaxThreads];

  std::mutex orphan_mu_;
  std::vector<Bucket> orphans_;
};

template <class T>
void Ebr::retire_pmem(T* p) {
  retire(p, [](void* q) {
    static_cast<T*>(q)->~T();
    ebr_pmem_free(q, sizeof(T));
  });
}

}  // namespace flit::recl
