#include "recl/ebr.hpp"

#include <cassert>

#include "check/lincheck.hpp"
#include "pmem/pool.hpp"

namespace flit::recl {

void ebr_pmem_free(void* p, std::size_t size) {
  pmem::Pool::instance().dealloc(p, size);
}

Ebr& Ebr::instance() {
  static Ebr e;
  return e;
}

Ebr::ThreadState::~ThreadState() {
  if (owner == nullptr) return;
  // Hand any unreclaimed nodes to the orphan list; they are freed by a
  // future scan once the epoch has safely advanced.
  {
    std::lock_guard<std::mutex> lk(owner->orphan_mu_);
    for (Bucket& b : buckets) {
      if (!b.nodes.empty()) owner->orphans_.push_back(std::move(b));
    }
  }
  if (slot >= 0) {
    owner->slots_[slot].announce.store(kIdle, std::memory_order_release);
    owner->slots_[slot].used.store(false, std::memory_order_release);
  }
}

Ebr::ThreadState& Ebr::tls() {
  static thread_local ThreadState ts;
  if (ts.owner == nullptr) {
    ts.owner = this;
    ts.slot = acquire_slot();
  }
  return ts;
}

int Ebr::acquire_slot() {
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!slots_[i].used.load(std::memory_order_acquire) &&
        slots_[i].used.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      return static_cast<int>(i);
    }
  }
  assert(false && "EBR: more than kMaxThreads concurrent threads");
  return -1;
}

void Ebr::enter() {
  ThreadState& ts = tls();
  if (ts.guard_depth++ > 0) return;
  Slot& s = slots_[ts.slot];
  // Announce-then-verify so the announcement is never behind the epoch we
  // operate in.
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    s.announce.store(e, std::memory_order_seq_cst);
    const std::uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) break;
    e = e2;
  }
}

void Ebr::leave() {
  ThreadState& ts = tls();
  assert(ts.guard_depth > 0);
  if (--ts.guard_depth == 0) {
    slots_[ts.slot].announce.store(kIdle, std::memory_order_release);
  }
}

std::uint64_t Ebr::current_announce() noexcept {
  ThreadState& ts = tls();
  if (ts.guard_depth == 0) return kIdleEpoch;
  return slots_[ts.slot].announce.load(std::memory_order_relaxed);
}

void Ebr::retire(void* p, void (*deleter)(void*)) {
  if (!reclaim_.load(std::memory_order_relaxed)) return;  // crash-test leak
  ThreadState& ts = tls();
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  check::lc_retire(p, e, "recl::Ebr::retire");
  Bucket& b = ts.buckets[e % 3];
  if (b.epoch != e) {
    // Entering epoch e recycles this bucket: its content was retired in
    // epoch e-3 (or earlier drained), i.e. at least two epochs ago.
    free_bucket(b);
    b.epoch = e;
  }
  b.nodes.push_back({p, deleter});
  limbo_count_.fetch_add(1, std::memory_order_relaxed);
  if (++ts.since_scan >= kScanThreshold) {
    ts.since_scan = 0;
    scan(ts);
  }
}

void Ebr::scan(ThreadState& ts) {
  (void)ts;
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].used.load(std::memory_order_acquire)) continue;
    const std::uint64_t a = slots_[i].announce.load(std::memory_order_seq_cst);
    if (a != kIdle && a != e) return;  // somebody still in an older epoch
  }
  std::uint64_t expected = e;
  if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                            std::memory_order_seq_cst)) {
    adopt_orphans(/*safe_epoch=*/e - 1);
  }
}

void Ebr::free_bucket(Bucket& b, bool quiescent) {
  if (b.nodes.empty()) return;
  limbo_count_.fetch_sub(b.nodes.size(), std::memory_order_relaxed);
  if constexpr (check::kLinCheckEnabled) {
    const std::uint64_t now = global_epoch_.load(std::memory_order_acquire);
    for (const Retired& r : b.nodes) check::lc_free(r.p, now, quiescent);
  }
  for (const Retired& r : b.nodes) r.deleter(r.p);
  b.nodes.clear();
}

void Ebr::adopt_orphans(std::uint64_t safe_epoch) {
  std::lock_guard<std::mutex> lk(orphan_mu_);
  for (std::size_t i = 0; i < orphans_.size();) {
    if (orphans_[i].epoch <= safe_epoch) {
      free_bucket(orphans_[i]);
      orphans_[i] = std::move(orphans_.back());
      orphans_.pop_back();
    } else {
      ++i;
    }
  }
}

void Ebr::drain_all() {
  // Caller guarantees quiescence: free this thread's buckets and all
  // orphans. Other threads' buckets are handed over when those threads
  // exit; tests drain after joining their workers.
  ThreadState& ts = tls();
  for (Bucket& b : ts.buckets) free_bucket(b, /*quiescent=*/true);
  std::lock_guard<std::mutex> lk(orphan_mu_);
  for (Bucket& b : orphans_) free_bucket(b, /*quiescent=*/true);
  orphans_.clear();
}

}  // namespace flit::recl
