// errors.hpp — the KV store's typed fault surface.
//
// Split out of shard.hpp/store.hpp so the network front-end (generic over
// the store) can map each fault class to its protocol reply without
// pulling the full KV headers: OutOfSpace → -ERR OUT_OF_SPACE,
// StoreReadOnly → -ERR READONLY, Health → the STATS health= field.
//
// The degradation ladder these types encode (see ARCHITECTURE.md
// "Failpoints & degraded modes"):
//
//   * OutOfSpace — the persistent pool cannot hold another record. A
//     per-*operation* error: the store stays fully serviceable (reads,
//     deletes, and any put small enough to reuse recycled blocks), so it
//     derives from std::bad_alloc and callers that already treated
//     bad_alloc as "pool full" keep working unchanged.
//   * StoreReadOnly — the store latched *degraded read-only* after msync
//     failed past its retry budget (the fsyncgate lesson: once the kernel
//     reports a failed writeback, dirty pages may have been dropped, so
//     acknowledging further writes as durable would lie). A per-*store*
//     latch: every mutation fails until the operator reopens the store;
//     reads stay correct (they serve from the mapping, which is intact).
#pragma once

#include <new>
#include <stdexcept>

namespace flit::kv {

/// The persisted image exists but cannot be recovered by this Store
/// instantiation: wrong magic/version, a different Words configuration's
/// node layout, a different backend layout (hashed vs ordered), or a
/// corrupt header. Distinct from transient system errors (which surface
/// as plain std::runtime_error from FileRegion) so callers can decide to
/// recreate only when the file itself is the problem.
struct IncompatibleStore : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The persistent pool is full: the put (or multi_put element) that threw
/// was not applied — nothing is leaked and nothing is torn (multi_put's
/// documented prefix semantics apply). Derives from std::bad_alloc so
/// pre-existing "pool full" handlers keep matching.
struct OutOfSpace : std::bad_alloc {
  const char* what() const noexcept override {
    return "kv: out of persistent space";
  }
};

/// The store is latched in degraded read-only mode: a checkpoint msync
/// failed past its retry budget, so write acknowledgements can no longer
/// be trusted as durable. Mutations throw this until the store is closed
/// and reopened (reads keep serving).
struct StoreReadOnly : std::runtime_error {
  StoreReadOnly()
      : std::runtime_error(
            "kv: store is in degraded read-only mode (msync failed; "
            "writes can no longer be acknowledged as durable)") {}
};

/// Store::health(): the read-only latch, surfaced for STATS/telemetry.
enum class Health { kOk = 0, kDegradedReadOnly = 1 };

inline const char* to_string(Health h) noexcept {
  return h == Health::kOk ? "ok" : "readonly";
}

}  // namespace flit::kv
