// backend.hpp — the shard ↔ data-structure contract of the KV store.
//
// The paper's central claim is that FliT instrumentation makes *any*
// lock-free structure durably linearizable with minimal code change. The
// KV layer honors that generality: a kv::Shard is written against the
// *backend concept* below rather than against one structure, and a
// backend is a thin adapter giving a set structure from src/ds/ the
// uniform face the shard (and Store recovery) needs:
//
//   using Key = std::int64_t;                 // the store's key type
//   using Node;                               // the persisted node type
//   struct Roots;                             // persistent recovery root
//   static constexpr bool kOrdered;           // supports for_each_range
//   static constexpr const char* kLayoutName; // superblock layout tag
//
//   Backend(std::size_t capacity_hint);       // fresh structure
//   static Backend recover(Roots*);           // volatile handle rebuild
//   Roots* roots();
//   bool insert(Key, Record*);                // false if key present
//   std::optional<Record*> upsert(Key, Record*);  // atomic in-place
//                                             // replace-or-insert; the
//                                             // superseded record (owned
//                                             // by the caller) or nullopt
//   std::optional<Record*> remove_get(Key);   // unique unlink ownership
//   std::optional<Record*> find(Key);
//   bool contains(Key);
//   void prepare(Key);                        // prefetch probe entry
//   std::optional<Record*> find_batched(Key); // lookup, caller fences batch
//   std::optional<Record*> upsert_batched(Key, Record*, ds::PublishBatch&);
//                                             // deferred-fence publication
//   std::size_t count();                      // O(data) reachable sweep
//   void release();                           // disown persisted nodes
//   for_each_linked(f);                       // recovery sweep, see below
//   std::uintptr_t roots_extent();
//   static std::size_t node_bytes(const Node&);
//   static validate_roots(const Roots*, spans);  // bounds-check headers
//   for_each_range(Key lo, f);                // ordered backends only
//
// Two backends are provided: HashBackend (one Harris list per bucket —
// the original store layout) and OrderedBackend (a lock-free skiplist,
// which additionally supports ordered range scans and range-partitioned
// sharding; see store.hpp). Both store values as Record* (shard.hpp) and
// lean on the same two invariants:
//
//   * persist-before-publish — a Record is fully persisted before the
//     structure ever points at it, so a record reachable from a persisted
//     link is always intact;
//   * unique retirement ownership — every record leaves the structure by
//     exactly one successful value-word CAS: an upsert superseding it
//     (the upsert's caller owns it) or a removal's claim (remove_get's
//     caller owns it), so exactly one operation retires each superseded
//     record through EBR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "ds/batch.hpp"
#include "ds/hash_table.hpp"
#include "ds/skiplist.hpp"
#include "kv/shard.hpp"
#include "pmem/pool.hpp"

namespace flit::kv {

/// Hash-partitioned shard backend: a FliT hash table (one Harris list per
/// bucket). `capacity_hint` is the bucket count. Unordered — no scans.
template <class Words, class Method>
class HashBackend {
 public:
  using Key = std::int64_t;
  using Table = ds::HashTable<Key, Record*, Words, Method>;
  using Node = typename Table::Node;
  using Roots = typename Table::Roots;

  static constexpr bool kOrdered = false;
  static constexpr bool kPersistent = Words::persistent;
  static constexpr const char* kLayoutName = "hashed";

  explicit HashBackend(std::size_t capacity_hint) : table_(capacity_hint) {}
  HashBackend(HashBackend&&) noexcept = default;

  static HashBackend recover(Roots* roots) {
    return HashBackend(Table::recover(roots));
  }

  Roots* roots() const noexcept { return table_.roots(); }
  bool insert(Key k, Record* r) { return table_.insert(k, r); }
  std::optional<Record*> upsert(Key k, Record* r) {
    return table_.upsert(k, r);
  }
  std::optional<Record*> remove_get(Key k) { return table_.remove_get(k); }
  std::optional<Record*> find(Key k) const { return table_.find(k); }
  bool contains(Key k) const { return table_.contains(k); }
  void prepare(Key k) const noexcept { table_.prepare(k); }
  std::optional<Record*> find_batched(Key k) const {
    return table_.find_batched(k);
  }
  std::optional<Record*> upsert_batched(Key k, Record* r,
                                        ds::PublishBatch& batch) {
    return table_.upsert_batched(k, r, batch);
  }
  std::size_t count() const { return table_.size(); }
  void release() noexcept { table_.release(); }

  template <class F>
  void for_each_linked(F&& f) const {
    table_.for_each_linked(f);
  }

  std::uintptr_t roots_extent() const noexcept {
    return table_.roots_extent();
  }

  static std::size_t node_bytes(const Node&) noexcept {
    return sizeof(Node);
  }

  /// Bounds-check everything recovery dereferences on the way to the
  /// nodes: the root array (including its nbuckets-sized entries) and
  /// every bucket's head/tail sentinels. `spans(p, len)` must return true
  /// iff [p, p+len) lies inside the region. Throws IncompatibleStore on a
  /// torn or bit-rotted header. Interior node corruption (next pointers)
  /// has no integrity metadata to check against and is out of scope, like
  /// the rest of the library's recovery model.
  template <class Spans>
  static void validate_roots(const Roots* roots, std::size_t region_capacity,
                             Spans&& spans) {
    using Entry = typename Roots::Entry;
    if (!spans(roots, sizeof(Roots))) {
      throw IncompatibleStore("kv::Store: corrupt shard root");
    }
    const std::size_t nb = roots->nbuckets;
    if (nb == 0 || nb > region_capacity / sizeof(Entry) ||
        !spans(roots, sizeof(Roots) + (nb - 1) * sizeof(Entry))) {
      throw IncompatibleStore("kv::Store: corrupt shard root array");
    }
    for (std::size_t b = 0; b < nb; ++b) {
      if (!spans(roots->entries[b].head, sizeof(Node)) ||
          !spans(roots->entries[b].tail, sizeof(Node))) {
        throw IncompatibleStore("kv::Store: corrupt bucket sentinel");
      }
    }
  }

 private:
  explicit HashBackend(Table&& t) noexcept : table_(std::move(t)) {}

  Table table_;
};

/// Ordered shard backend: a lock-free skiplist. Supports everything
/// HashBackend does plus ordered iteration (for_each_range), which is what
/// Store::scan and the YCSB E workload build on. `capacity_hint` is
/// accepted for ctor symmetry but unused (a skiplist needs no sizing).
template <class Words, class Method>
class OrderedBackend {
 public:
  using Key = std::int64_t;
  using List = ds::SkipList<Key, Record*, Words, Method>;
  using Node = typename List::Node;

  static constexpr bool kOrdered = true;
  static constexpr bool kPersistent = Words::persistent;
  static constexpr const char* kLayoutName = "ordered-skiplist";

  /// Persistent recovery root: the skiplist's two sentinel towers fully
  /// determine the structure (recovery rebuilds the index levels from the
  /// durable bottom level — see SkipList::recover).
  struct Roots {
    Node* head;
    Node* tail;
  };

  explicit OrderedBackend(std::size_t /*capacity_hint*/) : list_() {
    roots_ = static_cast<Roots*>(pmem::Pool::instance().alloc(sizeof(Roots)));
    roots_->head = list_.head();
    roots_->tail = list_.tail();
    if constexpr (Words::persistent) {
      pmem::persist_range(roots_, sizeof(Roots));
    }
  }

  OrderedBackend(OrderedBackend&&) noexcept = default;

  static OrderedBackend recover(Roots* roots) {
    return OrderedBackend(List::recover(roots->head, roots->tail), roots);
  }

  Roots* roots() const noexcept { return roots_; }
  bool insert(Key k, Record* r) { return list_.insert(k, r); }
  std::optional<Record*> upsert(Key k, Record* r) {
    return list_.upsert(k, r);
  }
  std::optional<Record*> remove_get(Key k) { return list_.remove_get(k); }
  std::optional<Record*> find(Key k) const { return list_.find_value(k); }
  bool contains(Key k) const { return list_.contains(k); }
  void prepare(Key k) const noexcept { list_.prepare(k); }
  std::optional<Record*> find_batched(Key k) const {
    return list_.find_batched(k);
  }
  std::optional<Record*> upsert_batched(Key k, Record* r,
                                        ds::PublishBatch& batch) {
    return list_.upsert_batched(k, r, batch);
  }
  std::size_t count() const { return list_.size(); }
  void release() noexcept { list_.release(); }

  template <class F>
  void for_each_linked(F&& f) const {
    list_.for_each_linked(f);
  }

  /// Ordered visit of every live (key, record) with key >= lo, ascending,
  /// until f returns false. See SkipList::for_each_range for the
  /// concurrency contract (not an atomic snapshot; stable keys are always
  /// visited).
  template <class F>
  void for_each_range(Key lo, F&& f) const {
    list_.for_each_range(lo, f);
  }

  std::uintptr_t roots_extent() const noexcept {
    return reinterpret_cast<std::uintptr_t>(roots_) + sizeof(Roots);
  }

  /// Skiplist nodes are tower-sized; a corrupt height would poison the
  /// recovery sweep's extent arithmetic, so reject it here (the sweep
  /// turns length_error into IncompatibleStore).
  static std::size_t node_bytes(const Node& n) {
    if (n.height < 1 || n.height > List::kMaxLevel) {
      throw std::length_error("kv: corrupt skiplist node height");
    }
    return Node::bytes_for(n.height);
  }

  template <class Spans>
  static void validate_roots(const Roots* roots,
                             std::size_t /*region_capacity*/, Spans&& spans) {
    if (!spans(roots, sizeof(Roots))) {
      throw IncompatibleStore("kv::Store: corrupt shard root");
    }
    for (const Node* s : {roots->head, roots->tail}) {
      // Two-step: the base Node must be in-region before its height can be
      // read, then the full tower must fit too.
      if (!spans(s, sizeof(Node))) {
        throw IncompatibleStore("kv::Store: corrupt skiplist sentinel");
      }
      if (s->height < 1 || s->height > List::kMaxLevel ||
          !spans(s, Node::bytes_for(s->height))) {
        throw IncompatibleStore("kv::Store: corrupt skiplist sentinel tower");
      }
    }
  }

 private:
  OrderedBackend(List&& l, Roots* roots) noexcept
      : list_(std::move(l)), roots_(roots) {}

  List list_;
  Roots* roots_ = nullptr;
};

}  // namespace flit::kv
