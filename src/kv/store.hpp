// store.hpp — the sharded durable key-value store.
//
// N kv::Shards (each a FliT hash table + value-record slab, see shard.hpp)
// behind one get/put/remove API, hash-partitioned by key. Everything
// recovery needs hangs off one persistent *superblock*:
//
//   Superblock { magic, version, nshards, generation, shard_roots[] }
//
// allocated in the persistent pool and persisted before use. The store
// runs in two placements:
//
//   * pool-backed  — Store(nshards, buckets): superblock and all data live
//     in the process-global Pool. Used by benchmarks and by the simulated-
//     crash tests, which recover with Store::recover(superblock()).
//   * file-backed  — Store::open(path, ...): the Pool adopts a FileRegion
//     and the superblock is wired to the region's root slot 0, so a later
//     open() of the same file transparently recovers every shard and the
//     generation stamp survives process restarts. Allocator metadata is
//     not crash-consistent (the libvmmalloc model), so open() rebuilds
//     the pool's high-water mark by sweeping the recovered shards —
//     a dirty shutdown (no close()) cannot cause recovered records to be
//     handed back out by the allocator. On DRAM+disk machines the
//     mmap'd bytes themselves are only msync-durable: checkpoint()/
//     close() bound that exposure; on DAX the pwb/pfence backend
//     applies as-is.
//
// The generation stamp counts sessions: 1 on creation, +1 (persisted) on
// every successful recovery — restart-count telemetry that doubles as a
// recovery proof in the tests.
//
// Consistency contract: get/put/remove on a single key are atomic and
// durably linearizable per the Words×Method configuration, with one
// documented exception — put over an *existing* key is remove + insert
// (node values are immutable; see shard.hpp). Two consequences: a
// concurrent get may observe the key briefly absent, and a crash landing
// between the two halves recovers with the key absent (old value durably
// removed, new one not yet committed) even though the put never
// returned. Each half is individually durable — no *returned* operation
// is ever lost. Closing this window with an atomic in-place overwrite is
// a ROADMAP item. size() is a single-threaded sweep.
//
// Lifetime contract: a Store handle is volatile; the persistent bytes are
// not owned by it. Destroying a pool-backed store releases the handles and
// leaves the bytes to Pool::reset/reinit (arena semantics, like the
// paper's libvmmalloc model). close() on a file-backed store quiesces
// reclamation, persists the allocator high-water mark, syncs and unmaps —
// after which the global Pool still targets the unmapped region, so call
// Pool::reinit (or exit) before allocating persistently again.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kv/shard.hpp"
#include "pmem/file_region.hpp"
#include "pmem/pool.hpp"

namespace flit::kv {

/// The file exists but cannot be recovered by this Store instantiation:
/// wrong magic/version, a different Words configuration's node layout, or
/// a corrupt header. Distinct from transient system errors (which surface
/// as plain std::runtime_error from FileRegion) so callers can decide to
/// recreate only when the file itself is the problem.
struct IncompatibleStore : std::runtime_error {
  using std::runtime_error::runtime_error;
};

template <class Words = HashedWords, class Method = Automatic>
class Store {
 public:
  using Key = std::int64_t;
  using Shard_ = Shard<Words, Method>;

  static constexpr std::uint64_t kMagic = 0xF117'4B56'0000'0001ull;
  static constexpr std::uint32_t kVersion = 1;
  /// FileRegion root slot holding the superblock.
  static constexpr std::size_t kSuperblockSlot = 0;
  /// Root slot doubling as a clean-shutdown flag: non-null only between a
  /// quiesced close() and the next open(). While it is set, the header's
  /// bump mark is authoritative and open() can skip the O(data) recovery
  /// sweep; a dirty shutdown leaves it null. (checkpoint() deliberately
  /// does NOT set it: post-checkpoint allocations would sit above the
  /// checkpointed mark.)
  static constexpr std::size_t kCleanShutdownSlot = 1;

  /// Persistent recovery root: everything Store::recover needs.
  struct Superblock {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t nshards;
    std::uint64_t generation;  ///< sessions: 1 at creation, +1 per recovery
    std::uint32_t words_tag;   ///< hash of Words::name (layout guard)
    std::uint32_t node_bytes;  ///< sizeof(Table::Node) (layout guard)
    typename Shard_::Roots* shard_roots[1];  // flexible-array idiom

    static std::size_t bytes(std::uint32_t nshards) noexcept {
      return sizeof(Superblock) +
             (nshards - 1) * sizeof(typename Shard_::Roots*);
    }
  };

  /// FNV-1a of the Words configuration name: different Words change the
  /// persisted node layout (e.g. adjacent counters pad every word), so a
  /// file must be reopened with the configuration that wrote it.
  static constexpr std::uint32_t words_tag() noexcept {
    std::uint32_t h = 2166136261u;
    for (const char* p = Words::name; *p != '\0'; ++p) {
      h = (h ^ static_cast<unsigned char>(*p)) * 16777619u;
    }
    return h;
  }

  /// Pool-backed store: build `nshards` fresh shards and a persisted
  /// superblock in the process-global Pool.
  Store(std::uint32_t nshards, std::size_t buckets_per_shard) {
    if (nshards == 0) throw std::invalid_argument("kv::Store: 0 shards");
    if (buckets_per_shard == 0) {
      throw std::invalid_argument("kv::Store: 0 buckets per shard");
    }
    shards_.reserve(nshards);
    for (std::uint32_t i = 0; i < nshards; ++i) {
      shards_.emplace_back(buckets_per_shard);
    }
    sb_ = static_cast<Superblock*>(
        pmem::Pool::instance().alloc(Superblock::bytes(nshards)));
    sb_->magic = kMagic;
    sb_->version = kVersion;
    sb_->nshards = nshards;
    sb_->generation = 1;
    sb_->words_tag = words_tag();
    sb_->node_bytes =
        static_cast<std::uint32_t>(sizeof(typename Shard_::Table::Node));
    for (std::uint32_t i = 0; i < nshards; ++i) {
      sb_->shard_roots[i] = shards_[i].roots();
    }
    if constexpr (Words::persistent) {
      pmem::persist_range(sb_, Superblock::bytes(nshards));
    }
  }

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  Store(Store&& o) noexcept
      : shards_(std::move(o.shards_)),
        sb_(std::exchange(o.sb_, nullptr)),
        region_(std::move(o.region_)),
        file_backed_(std::exchange(o.file_backed_, false)) {}

  ~Store() {
    // close() can throw (msync failure on the backing file); a destructor
    // must not — swallow and rely on FileRegion::close()'s best-effort
    // final sync. Callers who need the error call close() explicitly.
    try {
      close();
    } catch (...) {
    }
  }

  /// Throw unless `sb` is a superblock this Store version can recover.
  static void validate_superblock(const Superblock* sb) {
    if (sb == nullptr || sb->magic != kMagic) {
      throw IncompatibleStore("kv::Store: superblock magic mismatch");
    }
    if (sb->version != kVersion) {
      throw IncompatibleStore("kv::Store: superblock version mismatch");
    }
    if (sb->nshards == 0) {
      throw IncompatibleStore("kv::Store: corrupt superblock (0 shards)");
    }
    if (sb->words_tag != words_tag() ||
        sb->node_bytes != sizeof(typename Shard_::Table::Node)) {
      throw IncompatibleStore(
          "kv::Store: file was written by a different Words configuration "
          "(node layout mismatch); reopen with the configuration that "
          "created it");
    }
  }

  /// Rebuild a store from a persisted superblock (simulated-crash path, or
  /// the recovered half of open()). Bumps the generation stamp durably.
  static Store recover(Superblock* sb) {
    Store s = recover_handles(sb);
    bump_generation(sb);
    return s;
  }

  /// Open (or create) a file-backed store: the Pool adopts the region and
  /// the store recovers from (or installs) the superblock in root slot 0.
  /// An existing file's shard count wins over `nshards`.
  static Store open(const std::string& path, std::size_t capacity,
                    std::uint32_t nshards, std::size_t buckets_per_shard) {
    pmem::FileRegion region = pmem::FileRegion::open(path, capacity);
    // The allocator mark is header data too: a bit-rotted value past the
    // region would poison Pool::adopt's chunk round-up (possibly wrapping
    // to 0 and overwriting committed records). Checked for *any* existing
    // region — even one whose superblock root was never set takes the
    // mark into adopt(). Too-small marks are repaired by the recovery
    // sweep; too-large ones are corruption.
    if (region.recovered() && region.bump() > region.usable_capacity()) {
      throw IncompatibleStore("kv::Store: corrupt allocator bump mark");
    }
    void* root = region.recovered() ? region.root(kSuperblockSlot) : nullptr;
    // Validate before the Pool adopts the region: a reject (foreign file,
    // newer version, corrupt header) must unwind with the global allocator
    // untouched, not leave it pointing into a mapping this frame is about
    // to drop. The root offset and everything reached through it are
    // bounds-checked before the first dereference — a torn or bit-rotted
    // header must produce the clean throw, not a SIGSEGV.
    if (root != nullptr) {
      if (!region_spans(region, root, sizeof(Superblock))) {
        throw IncompatibleStore("kv::Store: corrupt superblock offset");
      }
      auto* sb = static_cast<Superblock*>(root);
      validate_superblock(sb);
      validate_region_layout(region, sb);
    }
    // Once the Pool has adopted the region, an exception unwinding this
    // frame would unmap the region under the adopted pool — every later
    // allocation in the process would fault. Catch, restore a fresh
    // anonymous pool at the pre-adopt capacity (its contents were already
    // discarded by the adoption), rethrow. Before adoption (the recovery
    // handles and the sweep run first — reads only) the existing pool is
    // healthy and must be left alone.
    const std::size_t prev_capacity = pmem::Pool::instance().capacity();
    bool adopted = false;
    try {
      if (root != nullptr) {
        // Recover the handles first (reads only — recovery never
        // allocates). After a *dirty* shutdown the header's bump mark can
        // sit below durably committed records (it is only written at
        // checkpoint()/close(); allocator metadata is not crash-
        // consistent, the libvmmalloc model) — resuming from it verbatim
        // would hand their bytes right back out, so rebuild the high-
        // water mark by sweeping what the shards actually reach. A clean
        // shutdown left the flag slot set, making the mark authoritative
        // and the O(data) sweep skippable.
        Store s = recover_handles(static_cast<Superblock*>(root));
        std::size_t resume = region.bump();
        if (region.root(kCleanShutdownSlot) == nullptr) {
          const auto base =
              reinterpret_cast<std::uintptr_t>(region.usable_base());
          const std::uintptr_t limit = base + region.usable_capacity();
          std::uintptr_t hi = 0;
          try {
            hi = s.max_extent(base, limit);
          } catch (const std::length_error& e) {
            throw IncompatibleStore(e.what());  // corrupt record length
          }
          if (hi > limit) {
            // A reachable object appearing past the region is bit rot in
            // a length or pointer field; clamping would only defer the
            // damage to an inexplicably full allocator.
            throw IncompatibleStore(
                "kv::Store: recovered data extends past the region");
          }
          const std::size_t swept = hi > base ? hi - base : 0;
          resume = std::max(resume, swept);
        }
        pmem::Pool::instance().adopt(region.usable_base(),
                                     region.usable_capacity(), resume);
        adopted = true;
        s.attach(std::move(region));
        // Everything that could reject this open has passed; only now
        // consume a recovery in the durable session stamp.
        bump_generation(s.sb_);
        s.region_.set_root(kCleanShutdownSlot, nullptr);  // in use: dirty
        s.region_.set_bump(pmem::Pool::instance().bump_used());
        s.region_.sync();  // generation stamp + repaired bump, durable now
        return s;
      }
      // Fresh file (or a region that died before its first superblock
      // sync — nothing was ever committed, so initializing from scratch
      // is safe).
      pmem::Pool::instance().adopt(region.usable_base(),
                                   region.usable_capacity(), region.bump());
      adopted = true;
      Store s(nshards, buckets_per_shard);
      s.attach(std::move(region));
      s.region_.set_root(kSuperblockSlot, s.sb_);
      s.region_.set_bump(pmem::Pool::instance().bump_used());
      s.region_.sync();
      return s;
    } catch (...) {
      if (adopted) {
        pmem::Pool::instance().reinit(prev_capacity != 0
                                          ? prev_capacity
                                          : pmem::Pool::kDefaultCapacity);
      }
      throw;
    }
  }

  // --- the KV API ----------------------------------------------------------

  /// Insert or overwrite. Returns true if k was absent (fresh insert).
  bool put(Key k, std::string_view value) {
    return shard_for(k).put(k, value);
  }

  /// Copy out the value for k (nullopt if absent).
  std::optional<std::string> get(Key k) const {
    return shard_for(k).get(k);
  }

  /// Remove k. Returns true if it was present.
  bool remove(Key k) { return shard_for(k).remove(k); }

  bool contains(Key k) const { return shard_for(k).contains(k); }

  /// Total reachable keys across shards; single-threaded use only.
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard_& s : shards_) n += s.size();
    return n;
  }

  // --- introspection / recovery handles ------------------------------------

  std::uint32_t nshards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint64_t generation() const noexcept { return sb_->generation; }
  Superblock* superblock() const noexcept { return sb_; }
  bool file_backed() const noexcept { return file_backed_; }
  const Shard_& shard(std::size_t i) const { return shards_[i]; }

  /// Which shard serves key k (stable across sessions).
  std::size_t shard_index(Key k) const noexcept {
    // Full splitmix64 mix, deliberately distinct from the table's bucket
    // hash so shard choice and bucket choice stay uncorrelated.
    auto x = static_cast<std::uint64_t>(k);
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards_.size());
  }

  /// Persist the allocator high-water mark and sync the backing file so
  /// everything committed so far is on stable storage (msync-durable
  /// even on DRAM+disk machines, where pwb/pfence alone reach only the
  /// page cache). Stop-the-world; file-backed stores only. open()'s
  /// recovery sweep protects committed records from a dirty shutdown
  /// regardless, but periodic checkpoints bound the sweep's work and the
  /// msync exposure window.
  void checkpoint() {
    if (!file_backed_) return;
    region_.set_bump(pmem::Pool::instance().bump_used());
    region_.sync();
  }

  /// Quiesce and detach. File-backed: drain reclamation, persist the
  /// allocator high-water mark, sync and unmap (see the lifetime contract
  /// above). Pool-backed: just release the volatile handles. Stop-the-
  /// world; the store is unusable afterwards. Idempotent.
  void close() {
    if (sb_ == nullptr) return;
    for (Shard_& s : shards_) s.release();
    shards_.clear();
    // Drain unconditionally: retired Records queued in EBR limbo hold
    // deleters that would otherwise run later — against pool memory a
    // reset()/reinit() may have recycled by then.
    recl::Ebr::instance().drain_all();
    if (file_backed_) {
      // Two-phase: the bump mark must be durable *before* the clean flag
      // declares it authoritative — flag-set with a stale mark would make
      // the next open() skip the repair sweep and recycle committed
      // records. (Both live in the header line; independent 8-byte
      // persists could otherwise land in either order.)
      region_.set_bump(pmem::Pool::instance().bump_used());
      region_.sync();
      region_.set_root(kCleanShutdownSlot, sb_);  // quiesced: mark clean
      region_.sync();
      region_.close();
      file_backed_ = false;
    }
    sb_ = nullptr;
  }

 private:
  struct RecoverTag {};
  explicit Store(RecoverTag) noexcept {}

  void attach(pmem::FileRegion&& region) {
    region_ = std::move(region);
    file_backed_ = true;
  }

  /// True if [p, p+len) lies inside the usable part of the region.
  static bool region_spans(const pmem::FileRegion& region, const void* p,
                           std::size_t len) noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const auto lo = reinterpret_cast<std::uintptr_t>(region.usable_base());
    const auto hi = lo + region.usable_capacity();
    // The a <= hi guard keeps hi - a from wrapping for pointers past the
    // region (a corrupt offset must fail here, not at the dereference).
    return a >= lo && a <= hi && len <= hi - a;
  }

  /// Bounds-check everything recovery dereferences on the way to the
  /// nodes: the superblock extent, each shard's root array (including its
  /// nbuckets-sized entries), and every bucket's head/tail sentinels.
  /// This catches torn or bit-rotted headers; interior node corruption
  /// (next pointers) has no integrity metadata to check against and is
  /// out of scope, like the rest of the library's recovery model.
  static void validate_region_layout(const pmem::FileRegion& region,
                                     const Superblock* sb) {
    using Roots = typename Shard_::Roots;
    using Entry = typename Roots::Entry;
    using Node = typename Shard_::Table::Node;
    if (!region_spans(region, sb, Superblock::bytes(sb->nshards))) {
      throw IncompatibleStore("kv::Store: superblock exceeds the region");
    }
    for (std::uint32_t i = 0; i < sb->nshards; ++i) {
      const Roots* roots = sb->shard_roots[i];
      if (!region_spans(region, roots, sizeof(Roots))) {
        throw IncompatibleStore("kv::Store: corrupt shard root");
      }
      const std::size_t nb = roots->nbuckets;
      if (nb == 0 || nb > region.usable_capacity() / sizeof(Entry) ||
          !region_spans(region, roots,
                        sizeof(Roots) + (nb - 1) * sizeof(Entry))) {
        throw IncompatibleStore("kv::Store: corrupt shard root array");
      }
      for (std::size_t b = 0; b < nb; ++b) {
        if (!region_spans(region, roots->entries[b].head, sizeof(Node)) ||
            !region_spans(region, roots->entries[b].tail, sizeof(Node))) {
          throw IncompatibleStore("kv::Store: corrupt bucket sentinel");
        }
      }
    }
  }

  /// Validation + volatile-handle reconstruction, with no persistent
  /// side effects (recovery is read-only until the caller commits).
  static Store recover_handles(Superblock* sb) {
    validate_superblock(sb);
    Store s{RecoverTag{}};
    s.sb_ = sb;
    s.shards_.reserve(sb->nshards);
    for (std::uint32_t i = 0; i < sb->nshards; ++i) {
      s.shards_.push_back(Shard_::recover(sb->shard_roots[i]));
    }
    return s;
  }

  /// Count this recovery in the session stamp, durably.
  static void bump_generation(Superblock* sb) {
    sb->generation += 1;
    if constexpr (Words::persistent) {
      pmem::persist_range(&sb->generation, sizeof(sb->generation));
    }
  }

  /// One past the highest byte reachable from the superblock: the
  /// recovery sweep that repairs the allocator bump mark after a dirty
  /// shutdown. Record pointers/lengths are validated against [lo, limit).
  /// Single-threaded (open-time) use only.
  std::uintptr_t max_extent(std::uintptr_t lo, std::uintptr_t limit) const {
    auto hi = reinterpret_cast<std::uintptr_t>(sb_) +
              Superblock::bytes(sb_->nshards);
    for (const Shard_& s : shards_) {
      hi = std::max(hi, s.max_extent(lo, limit));
    }
    return hi;
  }

  Shard_& shard_for(Key k) noexcept { return shards_[shard_index(k)]; }
  const Shard_& shard_for(Key k) const noexcept {
    return shards_[shard_index(k)];
  }

  std::vector<Shard_> shards_;
  Superblock* sb_ = nullptr;
  pmem::FileRegion region_;
  bool file_backed_ = false;
};

}  // namespace flit::kv
