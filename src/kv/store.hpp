// store.hpp — the sharded durable key-value store.
//
// N kv::Shards (each a FliT set structure + value-record slab, see
// shard.hpp / backend.hpp) behind one get/put/remove API. The store is
// generic over the backing structure via the backend concept:
//
//   * Store<Words, Method>                  — hash-partitioned shards over
//     FliT hash tables (HashBackend); keys route by a splitmix64 hash.
//   * OrderedStore<Words, Method>           — range-partitioned shards
//     over lock-free skiplists (OrderedBackend); keys route by position
//     in a persisted key range, which keeps shard ranges disjoint and
//     ordered, so Store::scan(start, n) can merge an ordered range scan
//     across shard boundaries by simple concatenation.
//
// Everything recovery needs hangs off one persistent *superblock*:
//
//   Superblock { magic, version, nshards, generation,
//                words_tag, layout_tag, node_bytes,
//                key_lo, key_hi, shard_roots[] }
//
// allocated in the persistent pool and persisted before use. The
// layout_tag (a hash of the backend's layout name) is what rejects a
// cross-layout open: a file written by an ordered store cannot be
// misread by a hashed one, and vice versa. The store runs in two
// placements:
//
//   * pool-backed  — Store(nshards, buckets): superblock and all data live
//     in the process-global Pool. Used by benchmarks and by the simulated-
//     crash tests, which recover with Store::recover(superblock()).
//   * file-backed  — Store::open(path, ...): the Pool adopts a FileRegion
//     and the superblock is wired to the region's root slot 0, so a later
//     open() of the same file transparently recovers every shard and the
//     generation stamp survives process restarts. Allocator metadata is
//     not crash-consistent (the libvmmalloc model), so open() rebuilds
//     the pool's high-water mark by sweeping the recovered shards —
//     a dirty shutdown (no close()) cannot cause recovered records to be
//     handed back out by the allocator. On DRAM+disk machines the
//     mmap'd bytes themselves are only msync-durable: checkpoint()/
//     close() bound that exposure; on DAX the pwb/pfence backend
//     applies as-is.
//
// The generation stamp counts sessions: 1 on creation, +1 (persisted) on
// every successful recovery — restart-count telemetry that doubles as a
// recovery proof in the tests.
//
// Consistency contract: get/put/remove on a single key are atomic and
// durably linearizable per the Words×Method configuration — including
// put over an *existing* key, which is a single durable CAS installing
// the new value record in place of the old one (the backend upsert; see
// shard.hpp). A concurrent get or scan observes the old or the new
// complete value, never absence and never a torn mix, and a crash
// mid-overwrite recovers exactly one of the two. No *returned* operation
// is ever lost. scan() is ordered but not an atomic snapshot (see the
// method comment); size() is an O(1) approximate counter, exact at
// quiescence and untouched by overwrites (see Shard::size and
// ARCHITECTURE.md).
//
// Lifetime contract: a Store handle is volatile; the persistent bytes are
// not owned by it. Destroying a pool-backed store releases the handles and
// leaves the bytes to Pool::reset/reinit (arena semantics, like the
// paper's libvmmalloc model). close() on a file-backed store quiesces
// reclamation, persists the allocator high-water mark, syncs and unmaps —
// after which the global Pool still targets the unmapped region, so call
// Pool::reinit (or exit) before allocating persistently again.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "check/lincheck.hpp"
#include "kv/backend.hpp"
#include "kv/errors.hpp"
#include "kv/shard.hpp"
#include "pmem/file_region.hpp"
#include "pmem/pool.hpp"

namespace flit::kv {

/// Half-open key interval [lo, hi) an ordered store partitions across its
/// shards. Persisted in the superblock (routing must be stable across
/// sessions). Keys outside the range still work — routing clamps them to
/// the first/last shard, which keeps the per-shard ranges monotone and
/// scans globally sorted — but a range matching the workload's keyspace
/// spreads load evenly. Ignored by hashed stores.
struct KeyRange {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();
};

/// When the store msyncs on its own (file-backed stores only — the modes
/// bound the DRAM+disk exposure window that checkpoint() closes by hand;
/// pool-backed stores have no backing file and every mode is a no-op).
/// The loss window is what a machine crash (not a process crash — the
/// page cache survives those) can take back:
///
///   * kNever   — only explicit checkpoint()/close() msync. Loss window:
///     everything since the last checkpoint. Fastest; the recovery sweep
///     still repairs the allocator mark, so committed-and-synced data is
///     never resurrected wrong, but recent writes may vanish wholesale.
///   * kEverySec — a background flusher checkpoints every interval
///     (default 1 s, the classic redis/pomaicache "everysec"). Loss
///     window: at most ~one interval of acknowledged writes.
///   * kAlways  — callers invoke note_write_commit() after each write
///     batch (the network server does this once per readiness event, so
///     one msync covers a whole pipelined burst); acknowledged then means
///     msync-durable. Loss window: nothing acknowledged.
enum class DurabilityMode { kNever, kEverySec, kAlways };

inline const char* to_string(DurabilityMode m) noexcept {
  switch (m) {
    case DurabilityMode::kAlways:
      return "always";
    case DurabilityMode::kEverySec:
      return "everysec";
    default:
      return "never";
  }
}

inline std::optional<DurabilityMode> parse_durability_mode(
    std::string_view s) noexcept {
  if (s == "never") return DurabilityMode::kNever;
  if (s == "everysec") return DurabilityMode::kEverySec;
  if (s == "always") return DurabilityMode::kAlways;
  return std::nullopt;
}

template <class Words = HashedWords, class Method = Automatic,
          template <class, class> class BackendT = HashBackend>
class Store {
 public:
  using Key = std::int64_t;
  using Backend_ = BackendT<Words, Method>;
  using Shard_ = Shard<Backend_>;

  /// True for OrderedStore: range-partitioned shards with scan() support.
  static constexpr bool kOrdered = Backend_::kOrdered;

  static constexpr std::uint64_t kMagic = 0xF117'4B56'0000'0001ull;
  /// Bumped when the superblock layout changes; v2 added the backend
  /// layout tag and the ordered partition bounds.
  static constexpr std::uint32_t kVersion = 2;
  /// FileRegion root slot holding the superblock.
  static constexpr std::size_t kSuperblockSlot = 0;
  /// Root slot doubling as a clean-shutdown flag: non-null only between a
  /// quiesced close() and the next open(). While it is set, the header's
  /// bump mark is authoritative and open() can skip the O(data) recovery
  /// sweep; a dirty shutdown leaves it null. (checkpoint() deliberately
  /// does NOT set it: post-checkpoint allocations would sit above the
  /// checkpointed mark.)
  static constexpr std::size_t kCleanShutdownSlot = 1;
  /// msync attempts per checkpoint before the store latches degraded
  /// read-only (1 initial try + retries, backoff 1→2→4 ms capped at 8).
  static constexpr int kMsyncRetryLimit = 4;

  /// Persistent recovery root: everything Store::recover needs.
  struct Superblock {
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t nshards;
    std::uint64_t generation;  ///< sessions: 1 at creation, +1 per recovery
    std::uint32_t words_tag;   ///< hash of Words::name (layout guard)
    std::uint32_t layout_tag;  ///< hash of Backend::kLayoutName (ditto)
    std::uint32_t node_bytes;  ///< sizeof(Backend::Node) (layout guard)
    std::uint32_t reserved;    ///< alignment; zero
    std::int64_t key_lo;       ///< ordered partition bounds [key_lo,
    std::int64_t key_hi;       ///<   key_hi); full range when hashed
    typename Shard_::Roots* shard_roots[1];  // flexible-array idiom

    static std::size_t bytes(std::uint32_t nshards) noexcept {
      return sizeof(Superblock) +
             (nshards - 1) * sizeof(typename Shard_::Roots*);
    }
  };

  /// FNV-1a of a configuration name; different Words change the persisted
  /// node layout (e.g. adjacent counters pad every word) and different
  /// backends change the node type entirely, so a file must be reopened
  /// with the configuration that wrote it.
  static constexpr std::uint32_t fnv1a(const char* s) noexcept {
    std::uint32_t h = 2166136261u;
    for (const char* p = s; *p != '\0'; ++p) {
      h = (h ^ static_cast<unsigned char>(*p)) * 16777619u;
    }
    return h;
  }
  static constexpr std::uint32_t words_tag() noexcept {
    return fnv1a(Words::name);
  }
  static constexpr std::uint32_t layout_tag() noexcept {
    return fnv1a(Backend_::kLayoutName);
  }

  /// Pool-backed store: build `nshards` fresh shards and a persisted
  /// superblock in the process-global Pool. `capacity_per_shard` sizes
  /// each backend (buckets for hashed shards; ignored by ordered ones).
  /// `range` sets an ordered store's persisted partition bounds (see
  /// KeyRange); hashed stores ignore it.
  Store(std::uint32_t nshards, std::size_t capacity_per_shard,
        KeyRange range = {}) {
    if (nshards == 0) throw std::invalid_argument("kv::Store: 0 shards");
    if (capacity_per_shard == 0) {
      throw std::invalid_argument("kv::Store: 0 capacity per shard");
    }
    if (range.lo >= range.hi) {
      throw std::invalid_argument("kv::Store: empty key range");
    }
    shards_.reserve(nshards);
    for (std::uint32_t i = 0; i < nshards; ++i) {
      shards_.emplace_back(capacity_per_shard);
    }
    sb_ = static_cast<Superblock*>(
        pmem::Pool::instance().alloc(Superblock::bytes(nshards)));
    sb_->magic = kMagic;
    sb_->version = kVersion;
    sb_->nshards = nshards;
    sb_->generation = 1;
    sb_->words_tag = words_tag();
    sb_->layout_tag = layout_tag();
    sb_->node_bytes = static_cast<std::uint32_t>(sizeof(typename Shard_::Node));
    sb_->reserved = 0;
    sb_->key_lo = range.lo;
    sb_->key_hi = range.hi;
    for (std::uint32_t i = 0; i < nshards; ++i) {
      sb_->shard_roots[i] = shards_[i].roots();
    }
    if constexpr (Words::persistent) {
      pmem::persist_range(sb_, Superblock::bytes(nshards));
    }
    init_routing();
  }

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  Store(Store&& o) noexcept
      : shards_(std::move(o.shards_)),
        sb_(std::exchange(o.sb_, nullptr)),
        region_(std::move(o.region_)),
        file_backed_(std::exchange(o.file_backed_, false)),
        range_chunk_(o.range_chunk_),
        durability_(o.durability_.load(std::memory_order_relaxed)),
        checkpoints_(o.checkpoints_.load(std::memory_order_relaxed)),
        health_(o.health_.load(std::memory_order_relaxed)),
        checkpoint_pre_(std::move(o.checkpoint_pre_)),
        checkpoint_post_(std::move(o.checkpoint_post_)),
        durability_ctl_(std::move(o.durability_ctl_)) {
    if (durability_ctl_) {
      // The flusher thread targets the store through the control block;
      // retarget it under the block's mutex so a concurrently running
      // flush sees either the old (still-valid) or the new handle.
      std::lock_guard<std::mutex> lk(durability_ctl_->mu);
      durability_ctl_->store = this;
    }
  }

  ~Store() {
    // close() can throw (msync failure on the backing file); a destructor
    // must not — swallow and rely on FileRegion::close()'s best-effort
    // final sync. Callers who need the error call close() explicitly.
    try {
      close();
    } catch (...) {
    }
  }

  /// Throw IncompatibleStore unless `sb` is a superblock this Store
  /// instantiation can recover: right magic/version, same backend layout
  /// (hashed vs ordered — the layout tag), same Words configuration (node
  /// byte layout), sane shard count and partition bounds.
  static void validate_superblock(const Superblock* sb) {
    if (sb == nullptr || sb->magic != kMagic) {
      throw IncompatibleStore("kv::Store: superblock magic mismatch");
    }
    if (sb->version != kVersion) {
      throw IncompatibleStore("kv::Store: superblock version mismatch");
    }
    if (sb->nshards == 0) {
      throw IncompatibleStore("kv::Store: corrupt superblock (0 shards)");
    }
    if (sb->layout_tag != layout_tag()) {
      throw IncompatibleStore(
          "kv::Store: file was written by a different backend layout "
          "(hashed vs ordered); reopen with the store type that created "
          "it");
    }
    if (sb->words_tag != words_tag() ||
        sb->node_bytes != sizeof(typename Shard_::Node)) {
      throw IncompatibleStore(
          "kv::Store: file was written by a different Words configuration "
          "(node layout mismatch); reopen with the configuration that "
          "created it");
    }
    if (sb->key_lo >= sb->key_hi) {
      throw IncompatibleStore("kv::Store: corrupt partition bounds");
    }
  }

  /// Rebuild a store from a persisted superblock (simulated-crash path, or
  /// the recovered half of open()). Bumps the generation stamp durably.
  /// Ordered shards additionally repair their skiplist index levels from
  /// the durable bottom level (see SkipList::recover), and every shard
  /// re-counts its keys for the O(1) size counter.
  static Store recover(Superblock* sb) {
    Store s = recover_handles(sb);
    bump_generation(sb);
    return s;
  }

  /// Open (or create) a file-backed store: the Pool adopts the region and
  /// the store recovers from (or installs) the superblock in root slot 0.
  /// An existing file's shard count and partition bounds win over the
  /// `nshards`/`range` arguments. Throws IncompatibleStore when the file
  /// exists but was written by a different store configuration or has a
  /// corrupt header — in that case (and on any other throw) the global
  /// Pool is left usable.
  static Store open(const std::string& path, std::size_t capacity,
                    std::uint32_t nshards, std::size_t capacity_per_shard,
                    KeyRange range = {}) {
    pmem::FileRegion region = pmem::FileRegion::open(path, capacity);
    // The allocator mark is header data too: a bit-rotted value past the
    // region would poison Pool::adopt's chunk round-up (possibly wrapping
    // to 0 and overwriting committed records). Checked for *any* existing
    // region — even one whose superblock root was never set takes the
    // mark into adopt(). Too-small marks are repaired by the recovery
    // sweep; too-large ones are corruption.
    if (region.recovered() && region.bump() > region.usable_capacity()) {
      throw IncompatibleStore("kv::Store: corrupt allocator bump mark");
    }
    void* root = region.recovered() ? region.root(kSuperblockSlot) : nullptr;
    // Validate before the Pool adopts the region: a reject (foreign file,
    // newer version, corrupt header) must unwind with the global allocator
    // untouched, not leave it pointing into a mapping this frame is about
    // to drop. The root offset and everything reached through it are
    // bounds-checked before the first dereference — a torn or bit-rotted
    // header must produce the clean throw, not a SIGSEGV.
    if (root != nullptr) {
      if (!region_spans(region, root, sizeof(Superblock))) {
        throw IncompatibleStore("kv::Store: corrupt superblock offset");
      }
      auto* sb = static_cast<Superblock*>(root);
      validate_superblock(sb);
      validate_region_layout(region, sb);
    }
    // Once the Pool has adopted the region, an exception unwinding this
    // frame would unmap the region under the adopted pool — every later
    // allocation in the process would fault. Catch, restore a fresh
    // anonymous pool at the pre-adopt capacity (its contents were already
    // discarded by the adoption), rethrow. Before adoption (the recovery
    // handles and the sweep run first — no allocation) the existing pool
    // is healthy and must be left alone.
    const std::size_t prev_capacity = pmem::Pool::instance().capacity();
    bool adopted = false;
    try {
      if (root != nullptr) {
        // Recover the handles first (no allocation; ordered shards repair
        // their index levels in place). After a *dirty* shutdown the
        // header's bump mark can sit below durably committed records (it
        // is only written at checkpoint()/close(); allocator metadata is
        // not crash-consistent, the libvmmalloc model) — resuming from it
        // verbatim would hand their bytes right back out, so rebuild the
        // high-water mark by sweeping what the shards actually reach. A
        // clean shutdown left the flag slot set, making the mark
        // authoritative and the O(data) sweep skippable.
        //
        // Handle recovery itself walks every chain (the size re-count, the
        // ordered index rebuild); a truncated or torn image surfaces there
        // as std::length_error — a broken chain, an impossible node — and
        // must reject the open, not escape as a generic runtime error or
        // worse, yield a silently half-recovered store.
        Store s = [&] {
          try {
            return recover_handles(static_cast<Superblock*>(root));
          } catch (const std::length_error& e) {
            throw IncompatibleStore(e.what());
          }
        }();
        std::size_t resume = region.bump();
        if (region.root(kCleanShutdownSlot) == nullptr) {
          const auto base =
              reinterpret_cast<std::uintptr_t>(region.usable_base());
          const std::uintptr_t limit = base + region.usable_capacity();
          std::uintptr_t hi = 0;
          try {
            hi = s.max_extent(base, limit);
          } catch (const std::length_error& e) {
            throw IncompatibleStore(e.what());  // corrupt record length
          }
          if (hi > limit) {
            // A reachable object appearing past the region is bit rot in
            // a length or pointer field; clamping would only defer the
            // damage to an inexplicably full allocator.
            throw IncompatibleStore(
                "kv::Store: recovered data extends past the region");
          }
          const std::size_t swept = hi > base ? hi - base : 0;
          resume = std::max(resume, swept);
        }
        pmem::Pool::instance().adopt(region.usable_base(),
                                     region.usable_capacity(), resume);
        adopted = true;
        s.attach(std::move(region));
        // Everything that could reject this open has passed; only now
        // consume a recovery in the durable session stamp.
        bump_generation(s.sb_);
        s.region_.set_root(kCleanShutdownSlot, nullptr);  // in use: dirty
        s.region_.set_bump(pmem::Pool::instance().bump_used());
        s.region_.sync();  // generation stamp + repaired bump, durable now
        return s;
      }
      // Fresh file (or a region that died before its first superblock
      // sync — nothing was ever committed, so initializing from scratch
      // is safe).
      pmem::Pool::instance().adopt(region.usable_base(),
                                   region.usable_capacity(), region.bump());
      adopted = true;
      Store s(nshards, capacity_per_shard, range);
      s.attach(std::move(region));
      s.region_.set_root(kSuperblockSlot, s.sb_);
      s.region_.set_bump(pmem::Pool::instance().bump_used());
      s.region_.sync();
      return s;
    } catch (...) {
      if (adopted) {
        pmem::Pool::instance().reinit(prev_capacity != 0
                                          ? prev_capacity
                                          : pmem::Pool::kDefaultCapacity);
      }
      throw;
    }
  }

  // --- the KV API ----------------------------------------------------------

  /// Insert or overwrite. Returns true if k was absent (fresh insert).
  /// Durably linearizable per Words×Method; an overwrite is one atomic
  /// in-place value CAS — concurrent reads see the old or new value,
  /// never absence (see the consistency contract above). Throws
  /// std::invalid_argument on the reserved sentinel keys
  /// (INT64_MIN/INT64_MAX), std::length_error past Record::kMaxValueBytes,
  /// kv::OutOfSpace on a full pool (nothing applied, nothing leaked —
  /// the shard frees any unpublished record before the throw escapes),
  /// kv::StoreReadOnly when the store is latched degraded (see health()).
  bool put(Key k, std::string_view value) {
    ensure_writable();
    const std::uint64_t inv = check::lc_begin();
    bool fresh;
    try {
      fresh = shard_for(k).put(k, value);
    } catch (const OutOfSpace&) {
      throw;
    } catch (const std::bad_alloc&) {
      throw OutOfSpace();
    }
    check::lc_end_write(inv, check::Op::kPut, k, value, fresh);
    return fresh;
  }

  /// Copy out the value for k (nullopt if absent). The returned string is
  /// a private copy taken under an EBR guard — always intact, never torn,
  /// even against concurrent overwrites of k.
  std::optional<std::string> get(Key k) const {
    const std::uint64_t inv = check::lc_begin();
    std::optional<std::string> out = shard_for(k).get(k);
    check::lc_end_read(inv, k, out.has_value(),
                       out ? std::string_view(*out) : std::string_view{});
    return out;
  }

  /// Remove k. Returns true if it was present. The removal is durable
  /// before the call returns (per Words×Method). Throws
  /// kv::StoreReadOnly when latched degraded (a removal is a mutation:
  /// acknowledging it un-durably would lie exactly like a put).
  bool remove(Key k) {
    ensure_writable();
    const std::uint64_t inv = check::lc_begin();
    const bool present = shard_for(k).remove(k);
    check::lc_end_write(inv, check::Op::kRemove, k, {}, present);
    return present;
  }

  bool contains(Key k) const {
    const std::uint64_t inv = check::lc_begin();
    const bool hit = shard_for(k).contains(k);
    check::lc_end_contains(inv, k, hit);
    return hit;
  }

  // --- batched multi-operations --------------------------------------------
  // Real serving traffic arrives in batches (RPC multi-get, pipelined
  // writes). The multi-ops exploit that three ways: (1) ops are grouped by
  // destination shard, so consecutive probes share shard-local state; (2)
  // lookups are pipelined — while key i's cache miss is outstanding, key
  // i+1's probe entry is software-prefetched; (3) writes coalesce their
  // persistence: all of a batch's records are flushed and fenced ONCE
  // before any is published, the publish CASes defer their trailing
  // fences to one shared pfence, and only then are the published words
  // untagged. Per-element durability-before-publication is preserved —
  // see ARCHITECTURE.md ("Batched multi-op path") for the full argument.
  // Scalar get/put/remove are untouched.

  /// Batched get: out[i] corresponds to keys[i] (nullopt if absent; a
  /// reserved sentinel key is simply absent, as in get()). Duplicate keys
  /// are looked up independently. Each returned value is a private,
  /// never-torn copy; one completion fence covers the whole batch.
  std::vector<std::optional<std::string>> multi_get(
      std::span<const Key> keys) const {
    const std::size_t n = keys.size();
    std::vector<std::optional<std::string>> out(n);
    if (n == 0) return out;
    const std::uint64_t lc_inv = check::lc_begin();
    std::vector<std::uint32_t> sidx, order;
    group_by_shard(
        n, [&](std::size_t i) { return keys[i]; }, sidx, order);
    {
      recl::Ebr::Guard g;  // spans every lookup + record copy
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (pos + 1 < n) {
          const std::uint32_t j = order[pos + 1];
          shards_[sidx[j]].prepare(keys[j]);
        }
        const std::uint32_t i = order[pos];
        out[i] = shards_[sidx[i]].get_batched(keys[i]);
      }
    }
    Words::operation_completion();  // one fence for the whole batch
    if constexpr (check::kLinCheckEnabled) {
      // Every element shares the batch's inv tick (its lookup could have
      // linearized any time after the call began); resp ticks are per
      // element, taken now, after all lookups completed.
      for (std::size_t i = 0; i < n; ++i) {
        check::lc_end_read(lc_inv, keys[i], out[i].has_value(),
                           out[i] ? *out[i] : std::string_view{});
      }
    }
    return out;
  }

  /// Batched insert-or-overwrite: out[i] is the fresh-insert flag of
  /// kvs[i] (exactly put()'s return). Elements are applied in batch order
  /// — with duplicate keys in one batch, every occurrence is applied and
  /// the LAST one's value wins (each earlier record is superseded and
  /// retired exactly once).
  ///
  /// Durability: every record in the batch is flushed and covered by a
  /// single pfence before the first element is published; each publish
  /// leaves its word tagged/dirty until one final pfence covers them all,
  /// so a concurrent reader that observes an element before that fence
  /// flushes the word itself (flit-if-tagged). A crash recovers each
  /// element independently as fully applied or not at all — never torn.
  ///
  /// Errors: a reserved sentinel key or an oversized value throws
  /// (std::invalid_argument / std::length_error) before ANY element is
  /// applied. kv::OutOfSpace on a full pool can leave a prefix of the
  /// batch applied (each applied element is complete and durable per the
  /// phase protocol; the rest are not applied at all — nothing torn,
  /// nothing leaked). kv::StoreReadOnly when latched degraded.
  std::vector<bool> multi_put(
      std::span<const std::pair<Key, std::string_view>> kvs) {
    ensure_writable();
    try {
      return multi_put_impl(kvs);
    } catch (const OutOfSpace&) {
      throw;
    } catch (const std::bad_alloc&) {
      // The cleanup already ran inside the impl's phase handlers (records
      // freed, partial publishes committed durable); only the type is
      // widened here.
      throw OutOfSpace();
    }
  }

 private:
  std::vector<bool> multi_put_impl(
      std::span<const std::pair<Key, std::string_view>> kvs) {
    const std::size_t n = kvs.size();
    std::vector<bool> fresh(n, false);
    if (n == 0) return fresh;
    for (const auto& [k, v] : kvs) {
      if (Shard_::reserved_key(k)) {
        throw std::invalid_argument("kv: INT64_MIN/INT64_MAX are reserved");
      }
      (void)v;
    }
    const std::uint64_t lc_inv = check::lc_begin();
    std::vector<std::uint32_t> sidx, order;
    group_by_shard(
        n, [&](std::size_t i) { return kvs[i].first; }, sidx, order);

    // Phase 1: create + flush every record, then ONE fence. Nothing is
    // published yet, so any throw here just frees the private records.
    std::vector<Record*> recs(n, nullptr);
    std::size_t created = 0;
    try {
      for (; created < n; ++created) {
        recs[created] =
            Record::create<Backend_::kPersistent, /*fence=*/false>(
                kvs[created].second);
      }
    } catch (...) {
      for (std::size_t i = 0; i < created; ++i) {
        pmem::Pool::instance().dealloc(recs[i], Record::bytes(recs[i]->len));
      }
      throw;
    }
    if constexpr (Backend_::kPersistent) pmem::pfence();

    // Phase 2: publish shard by shard with deferred fences, prefetching
    // the next element's probe entry while the current one is in flight.
    // Superseded records are collected, NOT retired yet: until the final
    // fence lands, a crash image can still hold the old link, and retired
    // storage could be recycled under it.
    ds::PublishBatch batch;
    batch.reserve(n);  // enlist must be nofail: it runs post-publish
    std::vector<Record*> superseded;
    superseded.reserve(n);
    std::size_t done = 0;
    try {
      recl::Ebr::Guard g;
      for (std::size_t pos = 0; pos < n; ++pos) {
        if (pos + 1 < n) {
          const std::uint32_t j = order[pos + 1];
          shards_[sidx[j]].prepare(kvs[j].first);
        }
        const std::uint32_t i = order[pos];
        fresh[i] =
            shards_[sidx[i]].put_batched(kvs[i].first, recs[i], batch,
                                         superseded);
        ++done;
      }
    } catch (...) {
      // Publishes so far must still become durable and untagged; the
      // failing element's record (and any never-reached ones) were never
      // published and are freed in place.
      commit_publishes(batch, superseded);
      for (std::size_t pos = done; pos < n; ++pos) {
        Record* r = recs[order[pos]];
        pmem::Pool::instance().dealloc(r, Record::bytes(r->len));
      }
      throw;
    }

    // Phase 3: one fence covers every publish pwb, then untag/clear and
    // retire the superseded records.
    commit_publishes(batch, superseded);
    if constexpr (check::kLinCheckEnabled) {
      // Recorded only on full success: an exception path leaves a prefix
      // applied but unrecorded, which the checker cannot distinguish from
      // crashes — acceptable, since the recorder is test-scoped and the
      // stress drivers never overcommit the pool.
      for (std::size_t i = 0; i < n; ++i) {
        check::lc_end_write(lc_inv, check::Op::kPut, kvs[i].first,
                            kvs[i].second, fresh[i]);
      }
    }
    return fresh;
  }

 public:
  /// Batched remove: out[i] is remove()'s return for keys[i] (reserved
  /// sentinel keys report false). Elements are applied in batch order;
  /// grouping and prefetching amortize the probes, but each removal keeps
  /// its own durable mark CAS — fence coalescing targets the put path,
  /// where records dominate the persistence bill. Throws
  /// kv::StoreReadOnly when latched degraded.
  std::vector<bool> multi_remove(std::span<const Key> keys) {
    ensure_writable();
    const std::size_t n = keys.size();
    std::vector<bool> out(n, false);
    if (n == 0) return out;
    const std::uint64_t lc_inv = check::lc_begin();
    std::vector<std::uint32_t> sidx, order;
    group_by_shard(
        n, [&](std::size_t i) { return keys[i]; }, sidx, order);
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (pos + 1 < n) {
        const std::uint32_t j = order[pos + 1];
        shards_[sidx[j]].prepare(keys[j]);
      }
      const std::uint32_t i = order[pos];
      out[i] = shards_[sidx[i]].remove(keys[i]);
    }
    if constexpr (check::kLinCheckEnabled) {
      for (std::size_t i = 0; i < n; ++i) {
        check::lc_end_write(lc_inv, check::Op::kRemove, keys[i], {},
                            out[i]);
      }
    }
    return out;
  }

  /// Ordered stores only: up to `n` pairs with key >= start, in ascending
  /// key order, merged across shard boundaries (range partitioning keeps
  /// shard ranges disjoint and ordered, so the merge is concatenation).
  /// Each returned pair is individually consistent (the payload is the
  /// full value some put committed for that key), but the scan as a whole
  /// is not an atomic snapshot: keys inserted or removed concurrently may
  /// or may not appear. Keys present for the whole call are always
  /// returned. After recovery, a scan observes every committed key in
  /// order. The reserved sentinel keys are safe starts: scan(INT64_MIN,
  /// n) returns the n smallest keys and scan(INT64_MAX, n) is empty
  /// (neither sentinel is storable, and the structures' sentinel nodes
  /// are never emitted) — audited in kv_ordered_test.
  std::vector<std::pair<Key, std::string>> scan(Key start, std::size_t n)
      const
    requires(kOrdered)
  {
    std::vector<std::pair<Key, std::string>> out;
    scan(start, n, out);
    return out;
  }

  /// Allocation-friendly overload: append up to `n` pairs to `out`
  /// (cleared first); returns how many were appended.
  std::size_t scan(Key start, std::size_t n,
                   std::vector<std::pair<Key, std::string>>& out) const
    requires(kOrdered)
  {
    out.clear();
    if (n == 0) return 0;
    const std::uint64_t lc_inv = check::lc_begin();
    std::size_t got = 0;
    const std::size_t first = shard_index(start);
    for (std::size_t i = first; i < shards_.size() && got < n; ++i) {
      // Later shards hold strictly larger keys; scan them from the start.
      const Key lo = i == first ? start : std::numeric_limits<Key>::min();
      got += shards_[i].scan(lo, n - got, out);
    }
    check::lc_end_scan(lc_inv, start, n, out);
    return got;
  }

  /// Approximate total key count, O(nshards): sums the per-shard
  /// counters. Exact at quiescence; under concurrency it may transiently
  /// deviate by the number of in-flight operations (see Shard::size and
  /// ARCHITECTURE.md for the accuracy contract).
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const Shard_& s : shards_) n += s.size();
    return n;
  }

  // --- introspection / recovery handles ------------------------------------

  std::uint32_t nshards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint64_t generation() const noexcept { return sb_->generation; }
  Superblock* superblock() const noexcept { return sb_; }
  bool file_backed() const noexcept { return file_backed_; }
  const Shard_& shard(std::size_t i) const { return shards_[i]; }
  /// Ordered stores: the persisted partition bounds.
  KeyRange key_range() const noexcept {
    return {sb_->key_lo, sb_->key_hi};
  }

  /// Which shard serves key k (stable across sessions: hashed routing
  /// depends only on nshards, ordered routing only on the persisted
  /// partition bounds).
  std::size_t shard_index(Key k) const noexcept {
    if constexpr (kOrdered) {
      // Range partition: shard i owns the i-th chunk of [key_lo, key_hi);
      // out-of-range keys clamp to the edge shards. The mapping is
      // monotone in k, which is what keeps cross-shard scans sorted.
      if (k < sb_->key_lo) return 0;
      if (k >= sb_->key_hi) return shards_.size() - 1;
      const auto off =
          static_cast<std::uint64_t>(k) - static_cast<std::uint64_t>(sb_->key_lo);
      return static_cast<std::size_t>(off / range_chunk_);
    } else {
      // Full splitmix64 mix, deliberately distinct from the table's bucket
      // hash so shard choice and bucket choice stay uncorrelated.
      auto x = static_cast<std::uint64_t>(k);
      x += 0x9E3779B97F4A7C15ull;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      x ^= x >> 31;
      return static_cast<std::size_t>(x % shards_.size());
    }
  }

  /// Persist the allocator high-water mark and sync the backing file so
  /// everything committed so far is on stable storage (msync-durable
  /// even on DRAM+disk machines, where pwb/pfence alone reach only the
  /// page cache). Stop-the-world; file-backed stores only. open()'s
  /// recovery sweep protects committed records from a dirty shutdown
  /// regardless, but periodic checkpoints bound the sweep's work and the
  /// msync exposure window.
  void checkpoint() {
    if (durability_ctl_) {
      std::lock_guard<std::mutex> lk(durability_ctl_->mu);
      checkpoint_impl();
    } else {
      checkpoint_impl();
    }
  }

  // --- durability modes ------------------------------------------------------

  /// Select how aggressively the store msyncs on its own (see
  /// DurabilityMode for the loss windows). `every` is the kEverySec
  /// flusher interval (exposed for tests; production uses the default).
  /// Stops any previous flusher first; safe to call repeatedly. On a
  /// pool-backed store the mode is recorded but every flush is a no-op.
  void set_durability_mode(
      DurabilityMode m,
      std::chrono::milliseconds every = std::chrono::milliseconds(1000)) {
    stop_flusher();
    durability_.store(m, std::memory_order_relaxed);
    if (m == DurabilityMode::kNever) return;
    // kAlways needs the control block too: note_write_commit() arrives
    // from many server workers at once and the block's mutex serializes
    // the header write + msync.
    durability_ctl_ = std::make_unique<DurabilityCtl>();
    durability_ctl_->store = this;
    durability_ctl_->every = every;
    if (m == DurabilityMode::kEverySec && file_backed_) {
      durability_ctl_->th =
          std::thread(&Store::flusher_main, durability_ctl_.get());
    }
  }

  DurabilityMode durability_mode() const noexcept {
    return durability_.load(std::memory_order_relaxed);
  }

  /// Checkpoints executed so far (explicit, flusher, or kAlways hook) —
  /// telemetry for tests and the server's STATS.
  std::uint64_t checkpoints() const noexcept {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// Degradation state (see kv::Health and the ladder in errors.hpp).
  /// kDegradedReadOnly latches when a checkpoint msync fails past its
  /// retry budget, or when the process-wide pmem durability latch fired
  /// (a close-path msync was swallowed somewhere a throw could not
  /// reach). Once degraded, every mutation throws kv::StoreReadOnly;
  /// reads keep serving. The latch clears only by reopening the store in
  /// a healthy process — trusting dirty pages again after the kernel
  /// rejected a writeback is the fsyncgate bug.
  Health health() const noexcept {
    if (health_.load(std::memory_order_acquire) != Health::kOk) {
      return Health::kDegradedReadOnly;
    }
    if (file_backed_ && pmem::durability_degraded()) {
      return Health::kDegradedReadOnly;
    }
    return Health::kOk;
  }

  /// kAlways hook: callers (the network server, once per readiness
  /// event's writes) invoke this after a write batch commits; under
  /// kAlways it checkpoints before the caller acknowledges, making
  /// "acknowledged" mean "msync-durable". Other modes: no-op.
  void note_write_commit() {
    if (durability_mode() == DurabilityMode::kAlways) checkpoint();
  }

  /// Observe each checkpoint's durability point: `pre` runs immediately
  /// before the msync (snapshot what is about to become durable), `post`
  /// immediately after it returns (everything snapshotted IS durable).
  /// Both run on whichever thread checkpoints — an explicit checkpoint()
  /// caller, the kEverySec flusher, or a kAlways note_write_commit() —
  /// and are serialized with the checkpoint itself (callers hold the
  /// durability control mutex when one exists), so a pre/post pair never
  /// interleaves with another checkpoint's. This is the ack-point surface
  /// the crash-test harness builds its acknowledgement stream on; either
  /// hook may be empty. Not thread-safe against concurrent checkpoints:
  /// install hooks before the store starts taking traffic.
  void set_checkpoint_hooks(std::function<void()> pre,
                            std::function<void()> post) {
    checkpoint_pre_ = std::move(pre);
    checkpoint_post_ = std::move(post);
  }

  /// Quiesce and detach. File-backed: drain reclamation, persist the
  /// allocator high-water mark, sync and unmap (see the lifetime contract
  /// above). Pool-backed: just release the volatile handles. Stop-the-
  /// world; the store is unusable afterwards. Idempotent.
  void close() {
    stop_flusher();
    if (sb_ == nullptr) return;
    for (Shard_& s : shards_) s.release();
    shards_.clear();
    // Drain unconditionally: retired Records queued in EBR limbo hold
    // deleters that would otherwise run later — against pool memory a
    // reset()/reinit() may have recycled by then.
    recl::Ebr::instance().drain_all();
    if (file_backed_) {
      // Two-phase: the bump mark must be durable *before* the clean flag
      // declares it authoritative — flag-set with a stale mark would make
      // the next open() skip the repair sweep and recycle committed
      // records. (Both live in the header line; independent 8-byte
      // persists could otherwise land in either order.)
      region_.set_bump(pmem::Pool::instance().bump_used());
      region_.sync();
      region_.set_root(kCleanShutdownSlot, sb_);  // quiesced: mark clean
      region_.sync();
      region_.close();
      file_backed_ = false;
    }
    sb_ = nullptr;
  }

 private:
  struct RecoverTag {};
  explicit Store(RecoverTag) noexcept {}

  /// Heap-allocated so the kEverySec flusher thread can hold a stable
  /// pointer while the Store handle itself moves (open() returns by
  /// value); the move ctor retargets `store` under `mu`.
  struct DurabilityCtl {
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    Store* store = nullptr;
    std::chrono::milliseconds every{1000};
    std::thread th;  ///< joinable only in kEverySec mode
  };

  static void flusher_main(DurabilityCtl* c) {
    std::unique_lock<std::mutex> lk(c->mu);
    while (!c->stop) {
      if (c->cv.wait_for(lk, c->every, [c] { return c->stop; })) break;
      // Still holding mu: the store pointer is stable and no concurrent
      // checkpoint() can interleave its header write with ours. A
      // failure must not terminate the process from a background thread.
      try {
        if (c->store != nullptr) c->store->checkpoint_impl();
      } catch (const StoreReadOnly&) {
        // The retry budget inside checkpoint_impl is spent and the store
        // latched degraded read-only: every further periodic flush would
        // fail identically, so stop the loop. Mutations are already
        // rejected at the API; the latch shows in health()/STATS.
        break;
      } catch (...) {
        // Transient (not latch-worthy — e.g. a pre/post hook threw):
        // retry on the next interval.
      }
    }
  }

  /// The actual checkpoint body; callers hold durability_ctl_->mu when
  /// the control block exists. An msync failure is retried with capped
  /// backoff (the kernel may be under transient pressure); past the
  /// budget the store latches degraded read-only and throws — after a
  /// rejected writeback the dirty pages can no longer be trusted as
  /// durable, so no later "successful" msync may acknowledge them (the
  /// fsyncgate lesson). The post hook (the ack surface) runs only on
  /// success: a failed checkpoint acknowledges nothing.
  void checkpoint_impl() {
    if (!file_backed_) return;
    if (health_.load(std::memory_order_acquire) != Health::kOk) {
      throw StoreReadOnly();
    }
    if (checkpoint_pre_) checkpoint_pre_();
    region_.set_bump(pmem::Pool::instance().bump_used());
    std::chrono::milliseconds backoff(1);
    for (int attempt = 1;; ++attempt) {
      try {
        region_.sync();
        break;
      } catch (const std::exception& e) {
        if (attempt >= kMsyncRetryLimit) {
          health_.store(Health::kDegradedReadOnly,
                        std::memory_order_release);
          std::fprintf(stderr,
                       "flit: kv: checkpoint sync failed %d times (%s); "
                       "latching degraded read-only\n",
                       attempt, e.what());
          throw StoreReadOnly();
        }
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(8));
      }
    }
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    if (checkpoint_post_) checkpoint_post_();
  }

  /// Mutation gate: reject writes while degraded (see health()).
  void ensure_writable() const {
    if (health() != Health::kOk) throw StoreReadOnly();
  }

  void stop_flusher() noexcept {
    if (!durability_ctl_) return;
    {
      std::lock_guard<std::mutex> lk(durability_ctl_->mu);
      durability_ctl_->stop = true;
    }
    durability_ctl_->cv.notify_all();
    if (durability_ctl_->th.joinable()) durability_ctl_->th.join();
    durability_ctl_.reset();
  }

  void attach(pmem::FileRegion&& region) {
    region_ = std::move(region);
    file_backed_ = true;
  }

  /// Precompute the ordered-routing chunk width. off/chunk stays < n for
  /// every in-range offset because chunk = ceil-ish(span / n): with
  /// chunk = span/n + 1, (span-1)/chunk <= n-1.
  void init_routing() noexcept {
    if constexpr (kOrdered) {
      const std::uint64_t span = static_cast<std::uint64_t>(sb_->key_hi) -
                                 static_cast<std::uint64_t>(sb_->key_lo);
      range_chunk_ = span / shards_.size() + 1;
    }
  }

  /// True if [p, p+len) lies inside the usable part of the region.
  static bool region_spans(const pmem::FileRegion& region, const void* p,
                           std::size_t len) noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const auto lo = reinterpret_cast<std::uintptr_t>(region.usable_base());
    const auto hi = lo + region.usable_capacity();
    // The a <= hi guard keeps hi - a from wrapping for pointers past the
    // region (a corrupt offset must fail here, not at the dereference).
    return a >= lo && a <= hi && len <= hi - a;
  }

  /// Bounds-check everything recovery dereferences on the way to the
  /// nodes: the superblock extent, then each shard's roots via the
  /// backend's own validator (root arrays + bucket sentinels for hashed
  /// shards, sentinel towers for ordered ones). This catches torn or
  /// bit-rotted headers; interior node corruption (next pointers) has no
  /// integrity metadata to check against and is out of scope, like the
  /// rest of the library's recovery model.
  static void validate_region_layout(const pmem::FileRegion& region,
                                     const Superblock* sb) {
    if (!region_spans(region, sb, Superblock::bytes(sb->nshards))) {
      throw IncompatibleStore("kv::Store: superblock exceeds the region");
    }
    const auto spans = [&region](const void* p, std::size_t len) {
      return region_spans(region, p, len);
    };
    for (std::uint32_t i = 0; i < sb->nshards; ++i) {
      Backend_::validate_roots(sb->shard_roots[i], region.usable_capacity(),
                               spans);
    }
  }

  /// Validation + volatile-handle reconstruction, with no persistent
  /// allocation (ordered shards do repair their skiplist index levels in
  /// place; recovery otherwise only reads).
  static Store recover_handles(Superblock* sb) {
    validate_superblock(sb);
    Store s{RecoverTag{}};
    s.sb_ = sb;
    s.shards_.reserve(sb->nshards);
    for (std::uint32_t i = 0; i < sb->nshards; ++i) {
      s.shards_.push_back(Shard_::recover(sb->shard_roots[i]));
    }
    s.init_routing();
    return s;
  }

  /// Count this recovery in the session stamp, durably.
  static void bump_generation(Superblock* sb) {
    sb->generation += 1;
    if constexpr (Words::persistent) {
      pmem::pc_store(&sb->generation, sizeof(sb->generation));
      pmem::persist_range(&sb->generation, sizeof(sb->generation));
    }
  }

  /// One past the highest byte reachable from the superblock: the
  /// recovery sweep that repairs the allocator bump mark after a dirty
  /// shutdown. Record pointers/lengths are validated against [lo, limit).
  /// Single-threaded (open-time) use only.
  std::uintptr_t max_extent(std::uintptr_t lo, std::uintptr_t limit) const {
    auto hi = reinterpret_cast<std::uintptr_t>(sb_) +
              Superblock::bytes(sb_->nshards);
    for (const Shard_& s : shards_) {
      hi = std::max(hi, s.max_extent(lo, limit));
    }
    return hi;
  }

  Shard_& shard_for(Key k) noexcept { return shards_[shard_index(k)]; }
  const Shard_& shard_for(Key k) const noexcept {
    return shards_[shard_index(k)];
  }

  /// Stable counting sort of a batch by destination shard: sidx[i] is
  /// element i's shard, order[] lists element indices shard-major with
  /// batch order preserved within each shard (duplicate keys apply in
  /// submission order — the documented last-wins semantics depend on this
  /// stability).
  template <class KeyOf>
  void group_by_shard(std::size_t n, KeyOf key_of,
                      std::vector<std::uint32_t>& sidx,
                      std::vector<std::uint32_t>& order) const {
    sidx.resize(n);
    order.resize(n);
    std::vector<std::uint32_t> offset(shards_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      sidx[i] = static_cast<std::uint32_t>(shard_index(key_of(i)));
      ++offset[sidx[i]];
    }
    std::uint32_t sum = 0;
    for (std::uint32_t& o : offset) {
      const std::uint32_t c = o;
      o = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      order[offset[sidx[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  /// multi_put's closing sequence: one pfence covering every deferred
  /// publish pwb, THEN untag/clear the published words (Condition 3), and
  /// only then retire the superseded records — retiring before the fence
  /// could let the old records' storage be recycled while a crash image
  /// still holds links to them.
  static void commit_publishes(ds::PublishBatch& batch,
                               std::vector<Record*>& superseded) {
    if constexpr (Backend_::kPersistent) pmem::pfence();
    batch.complete_all();
    for (Record* r : superseded) Record::retire<Backend_::kPersistent>(r);
    superseded.clear();
  }

  std::vector<Shard_> shards_;
  Superblock* sb_ = nullptr;
  pmem::FileRegion region_;
  bool file_backed_ = false;
  std::uint64_t range_chunk_ = 1;  ///< ordered routing chunk width
  // persist-lint: allow(volatile control state in the Store handle)
  // The durability mode, checkpoint counter and health latch are not
  // pool-resident: recovery re-selects the mode and restarts them — a
  // reopened store starts healthy by design (new process, new page-cache
  // state; the operator reopened deliberately).
  std::atomic<DurabilityMode> durability_{DurabilityMode::kNever};
  std::atomic<std::uint64_t> checkpoints_{0};
  std::atomic<Health> health_{Health::kOk};
  std::function<void()> checkpoint_pre_, checkpoint_post_;
  std::unique_ptr<DurabilityCtl> durability_ctl_;
};

/// Range-partitioned ordered store over skiplist shards: everything Store
/// offers plus scan(start, n) — the YCSB E workload class. Pass a
/// KeyRange matching the workload's keyspace for even shard load.
template <class Words = HashedWords, class Method = Automatic>
using OrderedStore = Store<Words, Method, OrderedBackend>;

}  // namespace flit::kv
