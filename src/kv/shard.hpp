// shard.hpp — one shard of the durable key-value store: a FliT hash table
// mapping int64 keys to variable-length persistent value records.
//
// The paper's motivating use case is persistent in-memory indexes and KV
// stores (§1). The set-structures in src/ds/ carry fixed-width trivially
// copyable values in their nodes; a KV store needs arbitrary byte-string
// values. A shard composes the two:
//
//   * values live in Records — variable-length blocks in the persistent
//     pool, fully written and published with a persist_range (one pwb per
//     cache line + pfence) *before* the table ever points at them, so a
//     record reachable from a persisted table link is always intact;
//   * the hash table stores Record* and provides durable linearizability
//     of the key→record mapping via the Words×Method grid, exactly like
//     the paper's evaluated structures;
//   * a superseded or removed record is retired through EBR by whichever
//     operation uniquely unlinked it (HarrisList::remove_get returns the
//     value observed at the mark CAS), so concurrent readers copying the
//     record's bytes under an Ebr::Guard never see freed memory.
//
// Overwrite semantics: node values are immutable (that immutability is
// what makes remove_get's retirement unique), so put-over-existing-key is
// remove + insert. Each half is atomic and durable; a concurrent get may
// observe the gap between them — the delete+set contract of memcached-
// style stores, documented at the Store API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ds/hash_table.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::kv {

/// A persistent variable-length value record. Header plus `len` payload
/// bytes, allocated as one block from the persistent pool.
struct Record {
  std::uint32_t len;

  char* data() noexcept { return reinterpret_cast<char*>(this + 1); }
  const char* data() const noexcept {
    return reinterpret_cast<const char*>(this + 1);
  }
  std::string_view view() const noexcept { return {data(), len}; }

  static std::size_t bytes(std::size_t payload) noexcept {
    return sizeof(Record) + payload;
  }

  /// Allocate a record in the persistent pool and, when `persistent`, make
  /// its bytes durable before the caller publishes a pointer to it.
  template <bool persistent>
  static Record* create(std::string_view value) {
    if (value.size() > kMaxValueBytes) {
      throw std::length_error("kv::Record: value too large");
    }
    auto* r = static_cast<Record*>(
        pmem::Pool::instance().alloc(bytes(value.size())));
    r->len = static_cast<std::uint32_t>(value.size());
    if (!value.empty()) std::memcpy(r->data(), value.data(), value.size());
    if constexpr (persistent) {
      pmem::persist_range(r, bytes(value.size()));
    }
    return r;
  }

  /// Hand an unlinked record to EBR; freed once no reader can reach it.
  static void retire(Record* r) {
    recl::Ebr::instance().retire(r, [](void* p) {
      auto* rec = static_cast<Record*>(p);
      recl::ebr_pmem_free(rec, bytes(rec->len));
    });
  }

  static constexpr std::size_t kMaxValueBytes = std::size_t{1} << 26;
};

/// One hash-partitioned shard: a FliT hash table over a value-record slab.
template <class Words = HashedWords, class Method = Automatic>
class Shard {
 public:
  using Key = std::int64_t;
  using Table = ds::HashTable<Key, Record*, Words, Method>;
  /// Persistent recovery root of a shard (stored in the Store superblock).
  using Roots = typename Table::Roots;

  explicit Shard(std::size_t nbuckets) : table_(nbuckets) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;
  Shard(Shard&&) noexcept = default;

  /// Keys the underlying Harris lists reserve for their sentinel nodes.
  /// put() rejects them; get/contains/remove treat them as always absent
  /// (they can never have been stored).
  static constexpr bool reserved_key(Key k) noexcept {
    return k == std::numeric_limits<Key>::min() ||
           k == std::numeric_limits<Key>::max();
  }

  /// Insert or overwrite. Returns true if k was absent (fresh insert).
  bool put(Key k, std::string_view value) {
    if (reserved_key(k)) {
      throw std::invalid_argument("kv: INT64_MIN/INT64_MAX are reserved");
    }
    // No guard here: the record is thread-private until insert publishes
    // it, the table operations pin their own epochs, and pinning across
    // a large value's copy + per-line flush would stall reclamation
    // everywhere else.
    Record* rec = Record::create<Words::persistent>(value);
    bool fresh = true;
    try {
      while (!table_.insert(k, rec)) {
        // Key present: unlink the old pairing and retry the insert.
        // Whoever wins the mark CAS owns retiring the superseded record.
        if (std::optional<Record*> old = table_.remove_get(k)) {
          Record::retire(*old);
          fresh = false;
        }
      }
    } catch (...) {
      // insert's node allocation can throw on a near-full pool; rec was
      // never published, so free it immediately rather than leak it.
      pmem::Pool::instance().dealloc(rec, Record::bytes(rec->len));
      throw;
    }
    return fresh;
  }

  /// Copy out the value for k (nullopt if absent). The Ebr::Guard spans
  /// the pointer lookup *and* the byte copy: the record cannot be freed
  /// while we read it.
  std::optional<std::string> get(Key k) const {
    if (reserved_key(k)) return std::nullopt;
    recl::Ebr::Guard g;
    const std::optional<Record*> rec = table_.find(k);
    if (!rec) return std::nullopt;
    return std::string((*rec)->view());
  }

  /// Remove k. Returns true if it was present.
  bool remove(Key k) {
    if (reserved_key(k)) return false;
    if (std::optional<Record*> old = table_.remove_get(k)) {
      Record::retire(*old);
      return true;
    }
    return false;
  }

  bool contains(Key k) const {
    return !reserved_key(k) && table_.contains(k);
  }

  /// Reachable keys; single-threaded use only (like HashTable::size).
  std::size_t size() const { return table_.size(); }

  std::size_t bucket_count() const noexcept { return table_.bucket_count(); }

  // --- crash recovery ------------------------------------------------------

  Roots* roots() const noexcept { return table_.roots(); }

  /// Rebuild a non-owning shard handle from its persisted table roots.
  static Shard recover(Roots* roots) {
    return Shard(Table::recover(roots));
  }

  /// Disown the persisted nodes (file-backed stores closing the region).
  void release() noexcept { table_.release(); }

  /// One past the highest byte reachable from this shard: root array,
  /// every linked node, and every *live* record. A marked node's record
  /// was already retired (possibly reclaimed and reused before the
  /// crash), so its pointer may dangle — exactly why traversals never
  /// read marked values — and it is excluded here the same way. Live
  /// record pointers and lengths are validated against [lo, limit)
  /// before the first dereference (std::length_error on bit rot); node
  /// pointer corruption has no integrity metadata and stays out of
  /// scope. Single-threaded recovery use only.
  std::uintptr_t max_extent(std::uintptr_t lo, std::uintptr_t limit) const {
    std::uintptr_t hi = table_.roots_extent();
    table_.for_each_linked(
        [&hi, lo, limit](const typename Table::Node& n, bool marked) {
          const auto node_end =
              reinterpret_cast<std::uintptr_t>(&n) + sizeof(n);
          if (node_end > hi) hi = node_end;
          const Record* r = n.value.load_private();
          if (marked || r == nullptr) return;  // sentinel or retired value
          const auto ra = reinterpret_cast<std::uintptr_t>(r);
          if (ra < lo || ra + sizeof(Record) > limit) {
            throw std::length_error(
                "kv: record pointer outside the region");
          }
          if (r->len > Record::kMaxValueBytes) {
            // A live record's length is bounded at creation; anything
            // larger is bit rot, and trusting it would poison the
            // rebuilt allocator mark.
            throw std::length_error("kv: corrupt record length");
          }
          const auto rec_end = ra + Record::bytes(r->len);
          if (rec_end > hi) hi = rec_end;
        });
    return hi;
  }

 private:
  explicit Shard(Table&& t) noexcept : table_(std::move(t)) {}

  Table table_;
};

}  // namespace flit::kv
