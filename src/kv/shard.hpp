// shard.hpp — one shard of the durable key-value store: a FliT set
// structure mapping int64 keys to variable-length persistent value
// records, generic over the backing structure (see backend.hpp).
//
// The paper's motivating use case is persistent in-memory indexes and KV
// stores (§1). The set structures in src/ds/ carry fixed-width trivially
// copyable values in their nodes; a KV store needs arbitrary byte-string
// values. A shard composes the two:
//
//   * values live in Records — variable-length blocks in the persistent
//     pool, fully written and published with a persist_range (one pwb per
//     cache line + pfence) *before* the structure ever points at them, so
//     a record reachable from a persisted link is always intact;
//   * the backend structure stores Record* and provides durable
//     linearizability of the key→record mapping via the Words×Method
//     grid, exactly like the paper's evaluated structures;
//   * a superseded or removed record is retired through EBR by whichever
//     operation uniquely superseded it, so concurrent readers copying
//     the record's bytes under an Ebr::Guard never see freed memory.
//
// Overwrite semantics: put over an existing key is a single durable CAS
// on the node's value word (the backend's upsert), installing the new
// record in place of the old one. A concurrent get or scan observes the
// old or the new complete value — never absence, never a torn mix — and
// a crash recovers one of the two. Retirement stays unique because the
// value word's successful CASes form one linear chain: each record is
// superseded by exactly one upsert (whose put retires it) or claimed by
// exactly one removal (whose remove retires it) — see the value-claim
// protocol in ds/harris_list.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/lincheck.hpp"
#include "ds/batch.hpp"
#include "ds/tagged_ptr.hpp"
#include "kv/errors.hpp"
#include "pmem/persist_check.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::kv {

/// A persistent variable-length value record. Header plus `len` payload
/// bytes, allocated as one block from the persistent pool.
struct Record {
  std::uint32_t len;

  char* data() noexcept { return reinterpret_cast<char*>(this + 1); }
  const char* data() const noexcept {
    return reinterpret_cast<const char*>(this + 1);
  }
  std::string_view view() const noexcept { return {data(), len}; }

  static std::size_t bytes(std::size_t payload) noexcept {
    return sizeof(Record) + payload;
  }

  /// Allocate a record in the persistent pool and, when `persistent`, make
  /// its bytes durable before the caller publishes a pointer to it. With
  /// `fence = false` the bytes are flushed (one pwb per line) but the
  /// pfence is left to the caller, who batches many records and fences
  /// ONCE before publishing any of them (see Store::multi_put) —
  /// persist-before-publish per record is preserved while the fence cost
  /// drops from O(batch) to O(1).
  template <bool persistent, bool fence = true>
  static Record* create(std::string_view value) {
    if (value.size() > kMaxValueBytes) {
      throw std::length_error("kv::Record: value too large");
    }
    auto* r = static_cast<Record*>(
        pmem::Pool::instance().alloc(bytes(value.size())));
    r->len = static_cast<std::uint32_t>(value.size());
    if (!value.empty()) std::memcpy(r->data(), value.data(), value.size());
    if constexpr (persistent) {
      if constexpr (fence) {
        pmem::persist_range(r, bytes(value.size()));
      } else {
        pmem::pwb_range(r, bytes(value.size()));
      }
    }
    return r;
  }

  /// Hand an unlinked record to EBR; freed once no reader can reach it.
  /// `persistent` matches the creating Backend::kPersistent: volatile
  /// configurations never flush records, so only persistent ones owe
  /// PersistCheck a fully-Clean range at retirement.
  template <bool persistent = true>
  static void retire(Record* r) {
    if (check::kLinCheckEnabled &&
        check::unsafe_mode() == check::UnsafeMode::kEarlyRetire) {
      // Seeded bug (FLIT_LINCHECK_UNSAFE=early_retire): free the record
      // immediately instead of through EBR limbo — no grace period, so
      // the lifetime analyzer must flag an early reclamation here.
      const std::uint64_t e = recl::Ebr::instance().epoch();
      check::lc_retire(r, e, "kv::Record::retire[early_retire]");
      check::lc_free(r, e, /*quiescent=*/false);
      recl::ebr_pmem_free(r, bytes(r->len));
      return;
    }
    if constexpr (persistent) {
      pmem::pc_retire(r, bytes(r->len), "kv::Record::retire");
    }
    recl::Ebr::instance().retire(r, [](void* p) {
      auto* rec = static_cast<Record*>(p);
      recl::ebr_pmem_free(rec, bytes(rec->len));
    });
  }

  static constexpr std::size_t kMaxValueBytes = std::size_t{1} << 26;
};

/// One shard of the store: a FliT set structure (the Backend — see
/// backend.hpp for the contract) over a value-record slab. Thread-safe
/// for put/get/remove/contains/scan; the recovery members are
/// single-threaded (open/recover-time) only.
template <class Backend>
class Shard {
 public:
  using Key = std::int64_t;
  using Backend_ = Backend;
  using Node = typename Backend::Node;
  /// Persistent recovery root of a shard (stored in the Store superblock).
  using Roots = typename Backend::Roots;

  static constexpr bool kOrdered = Backend::kOrdered;

  /// Fresh shard. `capacity_hint` sizes the backend (bucket count for the
  /// hashed backend; ignored by the skiplist).
  explicit Shard(std::size_t capacity_hint) : backend_(capacity_hint) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;
  Shard(Shard&& o) noexcept
      : backend_(std::move(o.backend_)),
        approx_size_(o.approx_size_.load(std::memory_order_relaxed)) {
    // The count moved with the backend; a populated counter left behind
    // would double-count the keys if the moved-from husk were ever
    // summed (Store::size walks every shard it still holds).
    o.approx_size_.store(0, std::memory_order_relaxed);
  }

  /// Keys the underlying structures reserve for their sentinel nodes.
  /// put() rejects them; get/contains/remove treat them as always absent
  /// (they can never have been stored).
  static constexpr bool reserved_key(Key k) noexcept {
    return k == std::numeric_limits<Key>::min() ||
           k == std::numeric_limits<Key>::max();
  }

  /// Insert or overwrite. Returns true if k was absent (fresh insert).
  /// Durability: the record is fully persisted before the backend links
  /// it, and the link — a fresh node's publish CAS or an overwrite's
  /// in-place value-word CAS — is durably linearizable per Words×Method.
  /// An overwrite is atomic: concurrent reads observe the old or new
  /// value, never absence (see the file comment). Throws
  /// std::invalid_argument on a reserved sentinel key, std::length_error
  /// past Record::kMaxValueBytes, and std::bad_alloc on a full pool (the
  /// unpublished record is freed).
  bool put(Key k, std::string_view value) {
    if (reserved_key(k)) {
      throw std::invalid_argument("kv: INT64_MIN/INT64_MAX are reserved");
    }
    if constexpr (check::kLinCheckEnabled) {
      const check::UnsafeMode m = check::unsafe_mode();
      if (m == check::UnsafeMode::kLostUpdate) {
        // Seeded bug (FLIT_LINCHECK_UNSAFE=lost_update): compute the
        // fresh-insert flag but never apply the write — a later get
        // misses this update and the checker must report kLostUpdate.
        return !backend_.contains(k);
      }
      if (m == check::UnsafeMode::kStaleRead) {
        // Seeded bug (FLIT_LINCHECK_UNSAFE=stale_read): park the real
        // application until the next write flushes pending work. A get
        // between this call's return and that flush observes the
        // superseded value — the checker must report kStaleRead.
        check::unsafe_apply_pending();
        Record* rec = Record::create<Backend::kPersistent>(value);
        if constexpr (Backend::kPersistent) {
          pmem::pc_publish(rec, Record::bytes(rec->len), "kv::Shard::put");
        }
        const bool fresh = !backend_.contains(k);
        check::unsafe_defer([this, k, rec] { apply_put(k, rec); });
        return fresh;
      }
    }
    // No guard here: the record is thread-private until upsert publishes
    // it, the backend operations pin their own epochs, and pinning across
    // a large value's copy + per-line flush would stall reclamation
    // everywhere else.
    Record* rec = Record::create<Backend::kPersistent>(value);
    if constexpr (Backend::kPersistent) {
      pmem::pc_publish(rec, Record::bytes(rec->len), "kv::Shard::put");
    }
    return apply_put(k, rec);
  }

  /// Copy out the value for k (nullopt if absent). The Ebr::Guard spans
  /// the pointer lookup *and* the byte copy: the record cannot be freed
  /// while we read it.
  std::optional<std::string> get(Key k) const {
    if (reserved_key(k)) return std::nullopt;
    recl::Ebr::Guard g;
    const std::optional<Record*> rec = backend_.find(k);
    if (!rec) return std::nullopt;
    check::lc_deref(*rec, "kv::Shard::get");
    return std::string((*rec)->view());
  }

  /// Remove k. Returns true if it was present; the removal is durably
  /// linearized at the backend's mark CAS and the record is retired
  /// through EBR by this (unique) winner.
  bool remove(Key k) {
    if (reserved_key(k)) return false;
    if (std::optional<Record*> old = backend_.remove_get(k)) {
      approx_size_.fetch_sub(1, std::memory_order_relaxed);
      Record::retire<Backend::kPersistent>(*old);
      return true;
    }
    return false;
  }

  bool contains(Key k) const {
    return !reserved_key(k) && backend_.contains(k);
  }

  // --- batched multi-op path (see Store::multi_get / multi_put) -----------

  /// Prefetch the backend's probe entry for an upcoming operation on k —
  /// called for key i+1 while key i's cache misses are outstanding.
  void prepare(Key k) const noexcept {
    if (!reserved_key(k)) backend_.prepare(k);
  }

  /// Batched lookup: like get(), but without the per-op completion fence
  /// (the caller fences once per batch) and under the *caller's*
  /// Ebr::Guard, which must span the call — the returned string is copied
  /// from the record under that guard.
  std::optional<std::string> get_batched(Key k) const {
    if (reserved_key(k)) return std::nullopt;
    const std::optional<Record*> rec = backend_.find_batched(k);
    if (!rec) return std::nullopt;
    check::lc_deref(*rec, "kv::Shard::get_batched");
    return std::string((*rec)->view());
  }

  /// Batched insert-or-overwrite of a record the caller has already
  /// flushed and fenced (Record::create<persistent, false> + one batch
  /// pfence). The publish is a deferred-fence CAS enlisted in `batch`; a
  /// superseded record is appended to `superseded` instead of retired
  /// here — the caller may retire it only AFTER the batch's covering
  /// pfence, because until the new link is durable, recycling the old
  /// record's bytes could leave a crash image whose (still old) link
  /// points at clobbered storage. Returns true on a fresh insert.
  bool put_batched(Key k, Record* rec, ds::PublishBatch& batch,
                   std::vector<Record*>& superseded) {
    if constexpr (Backend::kPersistent) {
      pmem::pc_publish(rec, Record::bytes(rec->len),
                       "kv::Shard::put_batched");
    }
    if (std::optional<Record*> old =
            backend_.upsert_batched(k, rec, batch)) {
      superseded.push_back(*old);
      return false;
    }
    approx_size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Approximate key count, O(1): a relaxed counter bumped at each
  /// linearized insert/remove. Exact whenever the shard is quiescent
  /// (every linearized operation is counted exactly once); under
  /// concurrency it may transiently deviate by the number of in-flight
  /// inserts/removes. Overwrites never touch it (an in-place upsert
  /// changes no key's presence), so a store under pure overwrite churn
  /// reads exactly. Rebuilt by an O(data) sweep on recovery. See
  /// ARCHITECTURE.md for the accuracy contract.
  std::size_t size() const noexcept {
    const auto n = approx_size_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  /// Ordered backends only: append up to `limit` live pairs with key >=
  /// lo to `out`, in ascending key order; returns how many were added.
  /// One Ebr::Guard spans the whole walk, so every copied record is safe
  /// from reclamation. Not an atomic snapshot: concurrent inserts/removes
  /// may or may not appear, but keys present for the whole call are
  /// always returned, and returned pairs are individually consistent
  /// (payload matches key, per the record immutability argument of get).
  std::size_t scan(Key lo, std::size_t limit,
                   std::vector<std::pair<Key, std::string>>& out) const
    requires(Backend::kOrdered)
  {
    if (limit == 0) return 0;
    recl::Ebr::Guard g;
    std::size_t added = 0;
    backend_.for_each_range(lo, [&](Key k, Record* r) {
      check::lc_deref(r, "kv::Shard::scan");
      out.emplace_back(k, std::string(r->view()));
      return ++added < limit;
    });
    return added;
  }

  // --- crash recovery ------------------------------------------------------

  Roots* roots() const noexcept { return backend_.roots(); }

  /// Rebuild a non-owning shard handle from its persisted roots and
  /// re-count the reachable keys (the O(1) size counter is volatile).
  /// Single-threaded; the caller (Store) has already bounds-checked the
  /// roots via Backend::validate_roots.
  static Shard recover(Roots* roots) {
    Shard s(Backend::recover(roots));
    s.approx_size_.store(
        static_cast<std::ptrdiff_t>(s.backend_.count()),
        std::memory_order_relaxed);
    return s;
  }

  /// Disown the persisted nodes (file-backed stores closing the region).
  void release() noexcept { backend_.release(); }

  /// One past the highest byte reachable from this shard: roots, every
  /// linked node, and every *live* record. A marked node's record was
  /// already retired (possibly reclaimed and reused before the crash), so
  /// its pointer may dangle — exactly why traversals never read marked
  /// values — and it is excluded here the same way. Live record pointers
  /// and lengths are validated against [lo, limit) before the first
  /// dereference (std::length_error on bit rot); node pointer corruption
  /// has no integrity metadata and stays out of scope. Single-threaded
  /// recovery use only.
  std::uintptr_t max_extent(std::uintptr_t lo, std::uintptr_t limit) const {
    std::uintptr_t hi = backend_.roots_extent();
    backend_.for_each_linked([&hi, lo, limit](const Node& n, bool marked) {
      const auto na = reinterpret_cast<std::uintptr_t>(&n);
      // Address first, then layout: node_bytes reads the node (a skiplist
      // tower's height), so an out-of-region link must be rejected before
      // the first field access, not diagnosed by the SIGSEGV it causes.
      if (na < lo || na >= limit || sizeof(Node) > limit - na) {
        throw std::length_error("kv: node pointer outside the region");
      }
      const std::size_t nb = Backend::node_bytes(n);  // validates layout
      if (nb > limit - na) {
        throw std::length_error("kv: node extends past the region");
      }
      if (na + nb > hi) hi = na + nb;
      const Record* r = n.value.load_private();
      // Sentinel, or a retired value: a marked node's record was claimed
      // by its removal (and a claimed — bit-0-marked — value pointer only
      // ever appears on a marked node; checked here anyway so a violated
      // invariant surfaces as a skip, not a wild dereference).
      if (marked || r == nullptr || ds::is_marked(r)) return;
      const auto ra = reinterpret_cast<std::uintptr_t>(r);
      if (ra < lo || ra + sizeof(Record) > limit) {
        throw std::length_error("kv: record pointer outside the region");
      }
      if (r->len > Record::kMaxValueBytes) {
        // A live record's length is bounded at creation; anything larger
        // is bit rot, and trusting it would poison the rebuilt allocator
        // mark.
        throw std::length_error("kv: corrupt record length");
      }
      const auto rec_end = ra + Record::bytes(r->len);
      if (rec_end > hi) hi = rec_end;
    });
    return hi;
  }

 private:
  explicit Shard(Backend&& b) noexcept : backend_(std::move(b)) {}

  /// The publish half of put(): install the already-persisted record and
  /// retire whatever it superseded. Split out so the seeded stale_read
  /// bug can defer exactly this step.
  bool apply_put(Key k, Record* rec) {
    std::optional<Record*> old;
    try {
      old = backend_.upsert(k, rec);
    } catch (...) {
      // upsert's node allocation can throw on a near-full pool; rec was
      // never published, so free it immediately rather than leak it.
      pmem::Pool::instance().dealloc(rec, Record::bytes(rec->len));
      throw;
    }
    if (old) {
      // We won the value-word CAS that superseded *old: unique retirement
      // ownership. The counter is untouched — an overwrite changes no
      // key's presence, so size() no longer dips during overwrites.
      Record::retire<Backend::kPersistent>(*old);
      return false;
    }
    approx_size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  Backend backend_;
  /// Linearized inserts minus removes; see size(). Cache-line aligned:
  /// shards live contiguously in Store's vector, and without the
  /// alignment two neighboring shards' hot counters (or a counter and the
  /// neighbor's backend state) can share a line — the same false-sharing
  /// collapse the paper demonstrates in §6 for flit counters packed into
  /// one cache line.
  // persist-lint: allow(volatile statistic; recomputed by recovery scan)
  alignas(64) std::atomic<std::ptrdiff_t> approx_size_{0};
};

}  // namespace flit::kv
