// server.hpp — the epoll network front-end over the sharded KV store.
//
// One listener, N workers. The listener thread (the caller of run())
// accepts connections and deals them round-robin to workers; each worker
// owns a level-triggered epoll instance, its connections' buffers, and
// nothing else — no locks on the data path (the only cross-thread
// touchpoint is the eventfd-signaled adoption queue new connections
// arrive through).
//
// Per readiness event a worker drains the socket into the connection's
// incremental RequestParser, then executes *every* fully parsed request
// before writing anything back. This is where the network layer becomes
// the batch former for the PR 5 multi-op path: consecutive runs of the
// same command inside one pipelined burst are grouped into a single
// multi_get / multi_put / multi_remove (singleton runs fall back to the
// scalar ops), so a client pipelining k SETs pays the coalesced-fence
// batched-put bill (two pfences per run) instead of k scalar commits.
// Grouping only ever merges *adjacent* same-command requests, so the
// per-connection sequential semantics are byte-identical to scalar
// execution — a GET pipelined after a SET of the same key always sees
// the SET (replies stay in request order, runs never reorder across a
// different command).
//
// Commands (keys are int64 decimal; INT64_MIN/INT64_MAX reserved):
//
//   PING                        +PONG
//   SET k v                     +OK
//   GET k                       $len v | $-1
//   DEL k                       :1 | :0
//   MSET k v [k v ...]          +OK
//   MGET k [k ...]              *n of ($len v | $-1)
//   MDEL k [k ...]              :removed
//   SCAN start n                *2m of (key, value) — ordered layout only
//   STATS                       $len "requests=... pfences=..." telemetry
//   SHUTDOWN                    +OK, then the server stops cleanly
//
// Durability: after the writes of a readiness event commit — and before
// any reply is flushed — the server invokes the store's durability-mode
// hook (see kv::DurabilityMode), so `always` mode means "acknowledged ⇒
// msync-durable". Protocol errors get one final -ERR reply and the
// connection is closed (framing is lost); command errors (-ERR bad key,
// wrong arity) are per-request and the connection lives on.
#pragma once

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <poll.h>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/failpoint.hpp"
#include "kv/errors.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "pmem/stats.hpp"

namespace flit::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (read back via port())
  int workers = 2;
  int backlog = 128;
  ProtocolLimits limits{};
  /// Largest value SET accepts (kv::Record::kMaxValueBytes upstream; the
  /// parser's max_bulk_bytes usually binds first).
  std::size_t max_value_bytes = std::size_t{1} << 26;
  /// A connection whose unsent replies exceed this is a dead/stuck reader
  /// and is dropped rather than allowed to balloon the process. Below the
  /// bound the server degrades first: past max_out_buffer/2 it stops
  /// *reading* the connection (TCP backpressure reaches the client) and
  /// only keeps flushing, so the close is the last rung, not the first.
  std::size_t max_out_buffer = std::size_t{64} << 20;
  /// Upper bound on one SCAN's requested length.
  std::size_t max_scan_len = 65536;
  /// Overload protection: connections past this cap are accepted and
  /// immediately closed (shed) so the backlog cannot silt up with
  /// connections nobody will serve. 0 = uncapped.
  std::size_t max_connections = 4096;
  /// Idle-connection reaping: a connection with no inbound traffic for
  /// this long is closed by its worker's timer wheel (slow-loris /
  /// abandoned-peer defense). 0 = never (the default; tests and the
  /// bench server opt in).
  int idle_timeout_ms = 0;
  /// Cap on the listener's exponential accept backoff after fd-pressure
  /// failures (EMFILE/ENFILE/ENOBUFS/ENOMEM): 1 ms doubling up to this.
  int accept_backoff_max_ms = 200;
};

/// Process-wide serving counters (relaxed; read by STATS and tests).
// persist-lint: allow(serving statistics — heap-resident, zeroed at start)
struct ServerStats {
  std::atomic<std::uint64_t> connections{0};  ///< accepted, lifetime
  std::atomic<std::uint64_t> requests{0};     ///< commands executed
  std::atomic<std::uint64_t> batched_keys{0};  ///< keys via multi-ops
  std::atomic<std::uint64_t> scalar_ops{0};    ///< keys via scalar ops
  std::atomic<std::uint64_t> protocol_errors{0};
  // Overload/degradation telemetry (see ISSUE: robustness runs must be
  // diffable like perf runs — these feed the STATS reply's shed_conns=,
  // idle_timeouts=, accept_backoffs= fields).
  std::atomic<std::uint64_t> open_connections{0};   ///< gauge, not lifetime
  std::atomic<std::uint64_t> shed_connections{0};   ///< over max_connections
  std::atomic<std::uint64_t> idle_timeouts{0};      ///< reaped by the wheel
  std::atomic<std::uint64_t> accept_backoffs{0};    ///< fd-pressure episodes
};

/// The epoll front-end, generic over the store exactly like the bench
/// layer: KV needs get/put/remove + multi_get/multi_put/multi_remove +
/// size(); scan(start, n, out) and the durability hook are detected and
/// used when present (kv::Store / kv::OrderedStore provide all of it).
template <class KV>
class Server {
 public:
  static constexpr bool kHasScan = requires(
      const KV& c, std::int64_t k, std::size_t n,
      std::vector<std::pair<std::int64_t, std::string>>& out) {
    { c.scan(k, n, out) };
  };
  static constexpr bool kHasDurabilityHook = requires(KV& s) {
    { s.note_write_commit() };
  };
  static constexpr bool kHasCheckpoints = requires(const KV& s) {
    { s.checkpoints() } -> std::convertible_to<std::uint64_t>;
  };
  static constexpr bool kHasHealth = requires(const KV& s) {
    { s.health() } -> std::convertible_to<kv::Health>;
  };

  Server(KV& store, ServerConfig cfg)
      : store_(store), cfg_(std::move(cfg)) {
    if (cfg_.workers < 1) cfg_.workers = 1;
    ignore_sigpipe();
    listen_fd_ = listen_tcp(cfg_.host, cfg_.port, cfg_.backlog);
    port_ = local_port(listen_fd_.get());
    stop_event_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!stop_event_.valid()) {
      throw std::runtime_error("net: eventfd failed");
    }
    workers_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i) {
      workers_.push_back(std::make_unique<Worker>(*this));
    }
  }

  ~Server() {
    shutdown();
    join_workers();
  }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  const ServerStats& stats() const noexcept { return stats_; }

  /// Accept loop; blocks the calling thread until shutdown() (or a
  /// SHUTDOWN command) stops the server, then joins the workers.
  void run() {
    for (auto& w : workers_) w->start();
    std::size_t next = 0;
    int backoff_ms = 0;  // nonzero while recovering from fd pressure
    while (!stop_.load(std::memory_order_acquire)) {
      if (backoff_ms > 0) {
        // fd pressure (EMFILE and friends): the listener is
        // level-triggered, so polling it while we cannot accept would
        // spin. Watch only the stop event for the backoff interval.
        pollfd pfd{stop_event_.get(), POLLIN, 0};
        if (::poll(&pfd, 1, backoff_ms) < 0 && errno != EINTR) {
          throw std::runtime_error(std::string("net: poll: ") +
                                   std::strerror(errno));
        }
        if (stop_.load(std::memory_order_acquire)) break;
      } else {
        pollfd pfds[2] = {{listen_fd_.get(), POLLIN, 0},
                          {stop_event_.get(), POLLIN, 0}};
        if (::poll(pfds, 2, -1) < 0) {
          if (errno == EINTR) continue;
          throw std::runtime_error(std::string("net: poll: ") +
                                   std::strerror(errno));
        }
        if (!(pfds[0].revents & POLLIN)) continue;
      }
      for (;;) {
        int transient = 0;
        SocketFd conn = accept_nonblocking(listen_fd_.get(), &transient);
        if (!conn.valid()) {
          if (transient == EMFILE || transient == ENFILE ||
              transient == ENOBUFS || transient == ENOMEM) {
            // Exponential backoff: stop draining the backlog until fds
            // free up; clients wait in the (bounded) listen queue.
            backoff_ms = backoff_ms > 0
                             ? std::min(backoff_ms * 2,
                                        cfg_.accept_backoff_max_ms)
                             : 1;
            stats_.accept_backoffs.fetch_add(1, std::memory_order_relaxed);
          }
          // ECONNABORTED/EPROTO: that one connection died; keep draining.
          break;
        }
        backoff_ms = 0;
        if (cfg_.max_connections > 0 &&
            stats_.open_connections.load(std::memory_order_relaxed) >=
                cfg_.max_connections) {
          // Shed: accept-and-close beats leaving the connection in the
          // backlog — the client learns immediately instead of hanging.
          stats_.shed_connections.fetch_add(1, std::memory_order_relaxed);
          continue;  // SocketFd dtor closes
        }
        set_nodelay(conn.get());
        stats_.connections.fetch_add(1, std::memory_order_relaxed);
        stats_.open_connections.fetch_add(1, std::memory_order_relaxed);
        workers_[next]->adopt(std::move(conn));
        next = (next + 1) % workers_.size();
      }
    }
    join_workers();
  }

  /// Stop accepting, wake every worker, drain and exit. Safe from any
  /// thread (including a worker executing SHUTDOWN) and from a signal
  /// handler (an atomic store plus eventfd writes).
  void shutdown() noexcept {
    stop_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    if (stop_event_.valid()) {
      [[maybe_unused]] ssize_t r =
          ::write(stop_event_.get(), &one, sizeof(one));
    }
    for (auto& w : workers_) w->wake();
  }

 private:
  // --- per-worker event loop ------------------------------------------------

  struct Conn {
    SocketFd fd;
    RequestParser parser;
    std::string out;
    std::size_t out_pos = 0;
    bool want_write = false;   ///< EPOLLOUT currently registered
    bool closing = false;      ///< flush remaining replies, then close
    bool read_paused = false;  ///< EPOLLIN dropped: output backpressure
    /// Last inbound traffic; the timer wheel reaps connections idle past
    /// cfg_.idle_timeout_ms.
    std::chrono::steady_clock::time_point last_active{};
    /// Adoption token: wheel entries carry (fd, token) so a reused fd
    /// number never inherits a stale expiry from its predecessor.
    std::uint64_t token = 0;

    explicit Conn(SocketFd f, const ProtocolLimits& lim)
        : fd(std::move(f)), parser(lim) {}
  };

  struct Worker {
    explicit Worker(Server& s) : server(s) {
      epfd.reset(::epoll_create1(EPOLL_CLOEXEC));
      wakefd.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
      if (!epfd.valid() || !wakefd.valid()) {
        throw std::runtime_error("net: epoll/eventfd setup failed");
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = wakefd.get();
      if (::epoll_ctl(epfd.get(), EPOLL_CTL_ADD, wakefd.get(), &ev) != 0) {
        throw std::runtime_error("net: epoll_ctl(wakefd) failed");
      }
    }

    void start() {
      th = std::thread([this] { server.worker_loop(*this); });
    }

    /// Listener-side: hand over an accepted connection.
    void adopt(SocketFd fd) {
      {
        std::lock_guard<std::mutex> lk(mu);
        pending.push_back(fd.release());
      }
      wake();
    }

    void wake() noexcept {
      const std::uint64_t one = 1;
      if (wakefd.valid()) {
        [[maybe_unused]] ssize_t r =
            ::write(wakefd.get(), &one, sizeof(one));
      }
    }

    Server& server;
    SocketFd epfd, wakefd;
    std::thread th;
    std::mutex mu;
    std::vector<int> pending;  // adopted fds, guarded by mu
    std::unordered_map<int, std::unique_ptr<Conn>> conns;

    // Coarse idle-timeout wheel (only consulted when cfg_.idle_timeout_ms
    // > 0): each adopted connection is dropped into the slot one full
    // timeout ahead; when the sweep reaches the slot, entries whose
    // connection has been active since are lazily re-bucketed instead of
    // tracked on every request — the hot path only stamps last_active.
    static constexpr std::size_t kWheelSlots = 16;
    std::vector<std::vector<std::pair<int, std::uint64_t>>> wheel{
        kWheelSlots};
    std::size_t wheel_pos = 0;
    std::uint64_t next_token = 1;
    std::chrono::steady_clock::time_point last_tick{};
  };

  void join_workers() {
    for (auto& w : workers_) {
      if (w->th.joinable()) w->th.join();
    }
  }

  /// One wheel slot spans tick_ms; the full wheel spans roughly one
  /// timeout, so an idle connection is reaped within ~2 timeouts worst
  /// case (coarse by design — idle reaping needs no precision).
  int tick_ms() const noexcept {
    return std::clamp(cfg_.idle_timeout_ms / int(Worker::kWheelSlots), 10,
                      250);
  }

  void worker_loop(Worker& w) {
    epoll_event events[64];
    std::vector<Request> reqs;
    const bool reap_idle = cfg_.idle_timeout_ms > 0;
    const auto tick = std::chrono::milliseconds(tick_ms());
    w.last_tick = std::chrono::steady_clock::now();
    while (!stop_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(w.epfd.get(), events, 64,
                                 reap_idle ? tick_ms() : -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failed; abandon the worker
      }
      for (int i = 0; i < n; ++i) {
        if (stop_.load(std::memory_order_acquire)) break;
        const int fd = events[i].data.fd;
        if (fd == w.wakefd.get()) {
          drain_wake(w);
          continue;
        }
        const auto it = w.conns.find(fd);
        if (it == w.conns.end()) continue;  // closed earlier this batch
        Conn& c = *it->second;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(w, fd);
          continue;
        }
        bool alive = true;
        if (events[i].events & EPOLLIN) {
          alive = handle_readable(w, c, reqs);
        }
        if (alive && (events[i].events & EPOLLOUT)) {
          alive = flush(w, c);
        }
        if (!alive) close_conn(w, fd);
      }
      if (reap_idle) {
        // Elapsed-time driven, not per-wakeup: a busy worker whose
        // epoll_wait returns early still advances the wheel on schedule.
        const auto now = std::chrono::steady_clock::now();
        while (now - w.last_tick >= tick) {
          w.last_tick += tick;
          sweep_wheel_slot(w, now);
        }
      }
    }
    stats_.open_connections.fetch_sub(w.conns.size(),
                                      std::memory_order_relaxed);
    w.conns.clear();  // SocketFd dtors close everything
  }

  /// Advance the wheel one slot and expire (or lazily re-bucket) its
  /// entries. Entries whose (fd, token) no longer matches a live
  /// connection are stale leftovers of a closed/reused fd: dropped.
  void sweep_wheel_slot(Worker& w,
                        std::chrono::steady_clock::time_point now) {
    w.wheel_pos = (w.wheel_pos + 1) % Worker::kWheelSlots;
    auto slot = std::move(w.wheel[w.wheel_pos]);
    w.wheel[w.wheel_pos].clear();
    const auto timeout = std::chrono::milliseconds(cfg_.idle_timeout_ms);
    for (const auto& [fd, token] : slot) {
      const auto it = w.conns.find(fd);
      if (it == w.conns.end() || it->second->token != token) continue;
      Conn& c = *it->second;
      const auto expires = c.last_active + timeout;
      if (expires <= now) {
        stats_.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        close_conn(w, fd);
        continue;
      }
      // Saw traffic since enqueue: re-bucket at (about) its new expiry.
      const auto remain_ticks =
          std::chrono::duration_cast<std::chrono::milliseconds>(expires -
                                                                now)
              .count() /
          tick_ms();
      const std::size_t ahead = std::clamp<std::size_t>(
          static_cast<std::size_t>(remain_ticks) + 1, 1,
          Worker::kWheelSlots - 1);
      w.wheel[(w.wheel_pos + ahead) % Worker::kWheelSlots].emplace_back(
          fd, token);
    }
  }

  void drain_wake(Worker& w) {
    std::uint64_t junk;
    while (::read(w.wakefd.get(), &junk, sizeof(junk)) > 0) {
    }
    std::vector<int> adopted;
    {
      std::lock_guard<std::mutex> lk(w.mu);
      adopted.swap(w.pending);
    }
    for (const int fd : adopted) {
      auto conn = std::make_unique<Conn>(SocketFd(fd), cfg_.limits);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(w.epfd.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
        stats_.open_connections.fetch_sub(1, std::memory_order_relaxed);
        continue;  // conn dtor closes the fd
      }
      conn->last_active = std::chrono::steady_clock::now();
      conn->token = w.next_token++;
      if (cfg_.idle_timeout_ms > 0) {
        // First expiry check one full wheel revolution out.
        w.wheel[(w.wheel_pos + Worker::kWheelSlots - 1) %
                Worker::kWheelSlots]
            .emplace_back(fd, conn->token);
      }
      w.conns.emplace(fd, std::move(conn));
    }
  }

  void close_conn(Worker& w, int fd) {
    (void)::epoll_ctl(w.epfd.get(), EPOLL_CTL_DEL, fd, nullptr);
    if (w.conns.erase(fd) > 0) {  // SocketFd dtor closes
      stats_.open_connections.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Re-register the connection's epoll interest from its want_write /
  /// read_paused flags. Returns false when epoll_ctl itself failed.
  bool update_interest(Worker& w, Conn& c) {
    epoll_event ev{};
    ev.events = (c.read_paused ? 0u : static_cast<unsigned>(EPOLLIN)) |
                (c.want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
    ev.data.fd = c.fd.get();
    return ::epoll_ctl(w.epfd.get(), EPOLL_CTL_MOD, c.fd.get(), &ev) == 0;
  }

  /// Drain the socket, execute every complete request, flush replies.
  /// Returns false when the connection should be closed.
  bool handle_readable(Worker& w, Conn& c, std::vector<Request>& reqs) {
    char buf[64 << 10];
    bool saw_eof = false;
    for (;;) {
      bool would_block = false;
      const ssize_t r = read_some(c.fd.get(), buf, sizeof(buf), would_block);
      if (r > 0) {
        c.last_active = std::chrono::steady_clock::now();
        c.parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
        continue;
      }
      if (would_block) break;
      saw_eof = true;  // r == 0
      break;
    }

    reqs.clear();
    Request req;
    ParseStatus st;
    while ((st = c.parser.next(req)) == ParseStatus::kOk) {
      reqs.push_back(std::move(req));
    }
    bool shutdown_after = false;
    if (!reqs.empty()) execute_batch(c, reqs, shutdown_after);
    if (st == ParseStatus::kError) {
      // Framing is lost: one final diagnostic, then close after flushing.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      append_error(c.out, "ERR " + c.parser.error());
      c.closing = true;
    }
    if (saw_eof) c.closing = true;
    if (c.out.size() - c.out_pos > cfg_.max_out_buffer) return false;
    if (!c.closing && !c.read_paused &&
        c.out.size() - c.out_pos > cfg_.max_out_buffer / 2) {
      // Degrade before dropping: stop reading so TCP backpressure reaches
      // the slow reader; only crossing max_out_buffer itself closes.
      c.read_paused = true;
      if (!update_interest(w, c)) return false;
    }
    const bool alive = flush(w, c);
    if (shutdown_after) {
      // Best effort: the +OK should reach the client before the process
      // stops accepting writes. flush() already pushed what the socket
      // would take.
      shutdown();
      return false;
    }
    return alive;
  }

  /// Write out what the socket will take; keep EPOLLOUT interest in sync.
  /// Returns false when the connection is finished (flushed-and-closing,
  /// or the peer is gone).
  bool flush(Worker& w, Conn& c) {
    while (c.out_pos < c.out.size()) {
      bool would_block = false;
      const ssize_t r = write_some(c.fd.get(), c.out.data() + c.out_pos,
                                   c.out.size() - c.out_pos, would_block);
      if (r > 0) {
        c.out_pos += static_cast<std::size_t>(r);
        continue;
      }
      if (!would_block) return false;  // peer closed mid-write
      if (!c.want_write) {
        c.want_write = true;
        if (!update_interest(w, c)) return false;
      }
      return true;  // resume on EPOLLOUT
    }
    c.out.clear();
    c.out_pos = 0;
    const bool resume_read = c.read_paused && !c.closing;
    if (c.want_write || resume_read) {
      c.want_write = false;
      c.read_paused = false;  // drained: backpressure over
      if (!update_interest(w, c)) return false;
    }
    return !c.closing;
  }

  // --- command execution ----------------------------------------------------

  enum class Cmd {
    kGet,
    kSet,
    kDel,
    kMget,
    kMset,
    kMdel,
    kScan,
    kPing,
    kStats,
    kShutdown,
    kUnknown,
  };

  static Cmd classify(const Request& r) noexcept {
    std::string up = r.argv[0];
    for (char& ch : up) {
      if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
    }
    if (up == "GET") return Cmd::kGet;
    if (up == "SET") return Cmd::kSet;
    if (up == "DEL") return Cmd::kDel;
    if (up == "MGET") return Cmd::kMget;
    if (up == "MSET") return Cmd::kMset;
    if (up == "MDEL") return Cmd::kMdel;
    if (up == "SCAN") return Cmd::kScan;
    if (up == "PING") return Cmd::kPing;
    if (up == "STATS") return Cmd::kStats;
    if (up == "SHUTDOWN") return Cmd::kShutdown;
    return Cmd::kUnknown;
  }

  static bool reserved_key(std::int64_t k) noexcept {
    return k == std::numeric_limits<std::int64_t>::min() ||
           k == std::numeric_limits<std::int64_t>::max();
  }

  /// Validate one key argument; sets `err` (reply text) on failure.
  static std::optional<std::int64_t> parse_key(const std::string& s,
                                               std::string& err) {
    const auto k = detail::parse_i64(s);
    if (!k) {
      err = "ERR key is not an int64";
      return std::nullopt;
    }
    if (reserved_key(*k)) {
      err = "ERR INT64_MIN/INT64_MAX are reserved";
      return std::nullopt;
    }
    return k;
  }

  /// Execute every request of one readiness event: adjacent same-command
  /// runs of GET/SET/DEL collapse into one multi-op (length 1 runs stay
  /// scalar), everything else executes one by one. Replies are appended
  /// in request order. The durability hook runs once, after all of the
  /// event's writes and before the caller flushes replies.
  void execute_batch(Conn& c, std::vector<Request>& reqs,
                     bool& shutdown_after) {
    stats_.requests.fetch_add(reqs.size(), std::memory_order_relaxed);
    // Replies appended past this mark are withdrawn if the commit-point
    // durability hook fails: "acknowledged ⇒ durable" must hold even
    // when msync stops cooperating.
    const std::size_t out_mark = c.out.size();
    bool wrote = false;
    std::size_t i = 0;
    while (i < reqs.size()) {
      const Cmd cmd = classify(reqs[i]);
      if (cmd == Cmd::kGet || cmd == Cmd::kSet || cmd == Cmd::kDel) {
        std::size_t j = i + 1;
        while (j < reqs.size() && classify(reqs[j]) == cmd) ++j;
        const std::span<Request> run(reqs.data() + i, j - i);
        switch (cmd) {
          case Cmd::kGet:
            run_gets(c, run);
            break;
          case Cmd::kSet:
            run_sets(c, run, wrote);
            break;
          default:
            run_dels(c, run, wrote);
            break;
        }
        i = j;
        continue;
      }
      execute_single(c, reqs[i], cmd, wrote, shutdown_after);
      ++i;
    }
    if (wrote) {
      try {
        note_write_commit();
      } catch (const std::exception&) {
        // The event's writes cannot be acknowledged as durable (kAlways
        // msync failed; the store has latched read-only). The reply
        // stream no longer corresponds to the request stream if we just
        // substitute errors, so withdraw every reply of this event,
        // send one diagnostic, and close — the client re-syncs on
        // reconnect and sees per-request -ERR READONLY from then on.
        c.out.resize(out_mark);
        append_error(c.out,
                     "ERR READONLY commit failed; acknowledgements "
                     "withdrawn, closing");
        c.closing = true;
      }
    }
  }

  void note_write_commit() {
    if constexpr (kHasDurabilityHook) store_.note_write_commit();
  }

  /// A run of GETs: one multi_get (scalar get for a singleton). Requests
  /// that fail validation get their error reply in place; the valid rest
  /// still batch.
  void run_gets(Conn& c, std::span<Request> run) {
    if (run.size() == 1) {
      std::string err;
      const Request& r = run[0];
      if (r.argv.size() != 2) {
        append_error(c.out, "ERR GET expects: GET key");
        return;
      }
      const auto k = parse_key(r.argv[1], err);
      if (!k) {
        append_error(c.out, err);
        return;
      }
      stats_.scalar_ops.fetch_add(1, std::memory_order_relaxed);
      const auto v = store_.get(*k);
      if (v) {
        append_bulk(c.out, *v);
      } else {
        append_null(c.out);
      }
      return;
    }
    std::vector<std::int64_t> keys;
    std::vector<std::string> errs(run.size());
    std::vector<std::size_t> slot(run.size(), SIZE_MAX);
    keys.reserve(run.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      if (run[i].argv.size() != 2) {
        errs[i] = "ERR GET expects: GET key";
        continue;
      }
      const auto k = parse_key(run[i].argv[1], errs[i]);
      if (!k) continue;
      slot[i] = keys.size();
      keys.push_back(*k);
    }
    stats_.batched_keys.fetch_add(keys.size(), std::memory_order_relaxed);
    const auto vals = store_.multi_get(keys);
    for (std::size_t i = 0; i < run.size(); ++i) {
      if (slot[i] == SIZE_MAX) {
        append_error(c.out, errs[i]);
      } else if (vals[slot[i]]) {
        append_bulk(c.out, *vals[slot[i]]);
      } else {
        append_null(c.out);
      }
    }
  }

  /// A run of SETs: one multi_put. Validation (arity, key syntax,
  /// reserved keys, value size) happens before anything is applied, so a
  /// bad element costs only its own error reply.
  void run_sets(Conn& c, std::span<Request> run, bool& wrote) {
    if (run.size() == 1) {
      const Request& r = run[0];
      std::string err;
      if (r.argv.size() != 3) {
        append_error(c.out, "ERR SET expects: SET key value");
        return;
      }
      const auto k = parse_key(r.argv[1], err);
      if (!k) {
        append_error(c.out, err);
        return;
      }
      if (r.argv[2].size() > cfg_.max_value_bytes) {
        append_error(c.out, "ERR value too large");
        return;
      }
      stats_.scalar_ops.fetch_add(1, std::memory_order_relaxed);
      if (!apply_store(c, [&] { store_.put(*k, r.argv[2]); }, &wrote)) {
        return;
      }
      append_simple(c.out, "OK");
      return;
    }
    std::vector<std::pair<std::int64_t, std::string_view>> kvs;
    std::vector<std::string> errs(run.size());
    std::vector<bool> valid(run.size(), false);
    kvs.reserve(run.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      const Request& r = run[i];
      if (r.argv.size() != 3) {
        errs[i] = "ERR SET expects: SET key value";
        continue;
      }
      const auto k = parse_key(r.argv[1], errs[i]);
      if (!k) continue;
      if (r.argv[2].size() > cfg_.max_value_bytes) {
        errs[i] = "ERR value too large";
        continue;
      }
      valid[i] = true;
      kvs.emplace_back(*k, std::string_view(r.argv[2]));
    }
    stats_.batched_keys.fetch_add(kvs.size(), std::memory_order_relaxed);
    std::string batch_err;
    const bool applied =
        apply_store_err(batch_err, [&] { store_.multi_put(kvs); }, &wrote);
    for (std::size_t i = 0; i < run.size(); ++i) {
      if (!valid[i]) {
        append_error(c.out, errs[i]);
      } else if (applied) {
        append_simple(c.out, "OK");
      } else {
        append_error(c.out, batch_err);
      }
    }
  }

  /// A run of DELs: one multi_remove.
  void run_dels(Conn& c, std::span<Request> run, bool& wrote) {
    if (run.size() == 1) {
      const Request& r = run[0];
      std::string err;
      if (r.argv.size() != 2) {
        append_error(c.out, "ERR DEL expects: DEL key");
        return;
      }
      const auto k = parse_key(r.argv[1], err);
      if (!k) {
        append_error(c.out, err);
        return;
      }
      stats_.scalar_ops.fetch_add(1, std::memory_order_relaxed);
      bool removed = false;
      if (!apply_store(c, [&] { removed = store_.remove(*k); }, &wrote)) {
        return;
      }
      append_integer(c.out, removed ? 1 : 0);
      return;
    }
    std::vector<std::int64_t> keys;
    std::vector<std::string> errs(run.size());
    std::vector<std::size_t> slot(run.size(), SIZE_MAX);
    keys.reserve(run.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      if (run[i].argv.size() != 2) {
        errs[i] = "ERR DEL expects: DEL key";
        continue;
      }
      const auto k = parse_key(run[i].argv[1], errs[i]);
      if (!k) continue;
      slot[i] = keys.size();
      keys.push_back(*k);
    }
    stats_.batched_keys.fetch_add(keys.size(), std::memory_order_relaxed);
    std::vector<bool> removed;
    std::string batch_err;
    const bool applied = apply_store_err(
        batch_err, [&] { removed = store_.multi_remove(keys); }, &wrote);
    for (std::size_t i = 0; i < run.size(); ++i) {
      if (slot[i] == SIZE_MAX) {
        append_error(c.out, errs[i]);
      } else if (applied) {
        append_integer(c.out, removed[slot[i]] ? 1 : 0);
      } else {
        append_error(c.out, batch_err);
      }
    }
  }

  void execute_single(Conn& c, const Request& r, Cmd cmd, bool& wrote,
                      bool& shutdown_after) {
    std::string err;
    switch (cmd) {
      case Cmd::kPing:
        append_simple(c.out, "PONG");
        return;
      case Cmd::kMget: {
        if (r.argv.size() < 2) {
          append_error(c.out, "ERR MGET expects: MGET key [key ...]");
          return;
        }
        std::vector<std::int64_t> keys;
        keys.reserve(r.argv.size() - 1);
        for (std::size_t i = 1; i < r.argv.size(); ++i) {
          const auto k = parse_key(r.argv[i], err);
          if (!k) {
            append_error(c.out, err);
            return;
          }
          keys.push_back(*k);
        }
        stats_.batched_keys.fetch_add(keys.size(),
                                      std::memory_order_relaxed);
        const auto vals = store_.multi_get(keys);
        append_array_header(c.out, vals.size());
        for (const auto& v : vals) {
          if (v) {
            append_bulk(c.out, *v);
          } else {
            append_null(c.out);
          }
        }
        return;
      }
      case Cmd::kMset: {
        if (r.argv.size() < 3 || r.argv.size() % 2 != 1) {
          append_error(c.out, "ERR MSET expects: MSET key value [k v ...]");
          return;
        }
        std::vector<std::pair<std::int64_t, std::string_view>> kvs;
        kvs.reserve((r.argv.size() - 1) / 2);
        for (std::size_t i = 1; i + 1 < r.argv.size(); i += 2) {
          const auto k = parse_key(r.argv[i], err);
          if (!k) {
            append_error(c.out, err);
            return;
          }
          if (r.argv[i + 1].size() > cfg_.max_value_bytes) {
            append_error(c.out, "ERR value too large");
            return;
          }
          kvs.emplace_back(*k, std::string_view(r.argv[i + 1]));
        }
        stats_.batched_keys.fetch_add(kvs.size(), std::memory_order_relaxed);
        if (!apply_store(c, [&] { store_.multi_put(kvs); }, &wrote)) return;
        append_simple(c.out, "OK");
        return;
      }
      case Cmd::kMdel: {
        if (r.argv.size() < 2) {
          append_error(c.out, "ERR MDEL expects: MDEL key [key ...]");
          return;
        }
        std::vector<std::int64_t> keys;
        keys.reserve(r.argv.size() - 1);
        for (std::size_t i = 1; i < r.argv.size(); ++i) {
          const auto k = parse_key(r.argv[i], err);
          if (!k) {
            append_error(c.out, err);
            return;
          }
          keys.push_back(*k);
        }
        stats_.batched_keys.fetch_add(keys.size(),
                                      std::memory_order_relaxed);
        std::vector<bool> removed;
        if (!apply_store(
                c, [&] { removed = store_.multi_remove(keys); }, &wrote)) {
          return;
        }
        std::int64_t count = 0;
        for (const bool b : removed) count += b ? 1 : 0;
        append_integer(c.out, count);
        return;
      }
      case Cmd::kScan: {
        if constexpr (kHasScan) {
          if (r.argv.size() != 3) {
            append_error(c.out, "ERR SCAN expects: SCAN start count");
            return;
          }
          // The start key may be a sentinel (scan(INT64_MIN) = smallest
          // keys), so it skips the reserved-key check.
          const auto start = detail::parse_i64(r.argv[1]);
          const auto count = detail::parse_i64(r.argv[2]);
          if (!start || !count || *count < 0) {
            append_error(c.out, "ERR SCAN start/count must be integers");
            return;
          }
          if (static_cast<std::uint64_t>(*count) > cfg_.max_scan_len) {
            append_error(c.out, "ERR SCAN count too large");
            return;
          }
          scan_buf_.clear();
          store_.scan(*start, static_cast<std::size_t>(*count), scan_buf_);
          stats_.batched_keys.fetch_add(scan_buf_.size(),
                                        std::memory_order_relaxed);
          append_array_header(c.out, 2 * scan_buf_.size());
          for (const auto& [k, v] : scan_buf_) {
            append_bulk(c.out, std::to_string(k));
            append_bulk(c.out, v);
          }
        } else {
          append_error(c.out, "ERR SCAN requires the ordered layout");
        }
        return;
      }
      case Cmd::kStats: {
        const pmem::StatsSnapshot ps = pmem::stats_snapshot();
        // Stores without the durability surface (plain maps in tests)
        // report 0 checkpoints rather than dropping the field — smoke
        // scripts parse STATS by key and rely on the key being present.
        unsigned long long ckpts = 0;
        if constexpr (kHasCheckpoints) {
          ckpts = static_cast<unsigned long long>(store_.checkpoints());
        }
        // Stores without health() (plain maps) are always "ok" — the
        // key stays present for the same parse-by-key reason.
        const char* health = "ok";
        if constexpr (kHasHealth) {
          health = kv::to_string(store_.health());
        }
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "layout=%s requests=%llu connections=%llu batched_keys=%llu "
            "scalar_ops=%llu protocol_errors=%llu pwbs=%llu pfences=%llu "
            "checkpoints=%llu keys=%llu health=%s open_conns=%llu "
            "shed_conns=%llu idle_timeouts=%llu accept_backoffs=%llu "
            "injected_faults=%llu",
            KV::kOrdered ? "ordered" : "hashed",
            load(stats_.requests), load(stats_.connections),
            load(stats_.batched_keys), load(stats_.scalar_ops),
            load(stats_.protocol_errors),
            static_cast<unsigned long long>(ps.pwbs),
            static_cast<unsigned long long>(ps.pfences), ckpts,
            static_cast<unsigned long long>(store_.size()), health,
            load(stats_.open_connections), load(stats_.shed_connections),
            load(stats_.idle_timeouts), load(stats_.accept_backoffs),
            static_cast<unsigned long long>(core::fp_total_injected()));
        append_bulk(c.out, buf);
        return;
      }
      case Cmd::kShutdown:
        append_simple(c.out, "OK");
        c.closing = true;
        shutdown_after = true;
        return;
      case Cmd::kUnknown:
      default:
        append_error(c.out, "ERR unknown command '" + r.argv[0] + "'");
        return;
    }
  }

  // persist-lint: allow(reads the volatile ServerStats counters above)
  static unsigned long long load(
      const std::atomic<std::uint64_t>& a) noexcept {
    return static_cast<unsigned long long>(
        a.load(std::memory_order_relaxed));
  }

  /// Run a store mutation, converting exceptions (pool exhaustion,
  /// length/argument errors that slipped past validation) into one -ERR
  /// reply. Returns false when the mutation threw — the server keeps
  /// serving; the store's documented partial-application rules apply.
  /// `mutated`, when given, is set whenever the store may have changed —
  /// on success, and on failures that can leave a partially applied batch
  /// (OutOfSpace fails element k with the prefix landed). It is NOT set
  /// for StoreReadOnly: that refusal happens up front, before anything is
  /// applied, so there is nothing for the commit hook to make durable —
  /// and calling checkpoint() on a latched store would just throw again
  /// and needlessly tear the connection down.
  template <class Fn>
  bool apply_store(Conn& c, Fn&& fn, bool* mutated = nullptr) {
    std::string err;
    if (apply_store_err(err, std::forward<Fn>(fn), mutated)) return true;
    append_error(c.out, err);
    return false;
  }

  /// Error-capturing variant for batched runs: the caller owes one reply
  /// per request of the run, so the diagnostic must be emitted per
  /// element, not appended once (which would desynchronize the pipeline
  /// by an extra reply).
  template <class Fn>
  bool apply_store_err(std::string& err, Fn&& fn, bool* mutated = nullptr) {
    try {
      fn();
      if (mutated != nullptr) *mutated = true;
      return true;
    } catch (const kv::OutOfSpace&) {
      // Pool exhausted: this mutation failed cleanly (strong exception
      // safety upstream); reads/deletes on this connection keep working.
      if (mutated != nullptr) *mutated = true;
      err = "ERR OUT_OF_SPACE store is full; reads and deletes still "
            "served";
      return false;
    } catch (const std::bad_alloc&) {
      if (mutated != nullptr) *mutated = true;
      err = "ERR out of persistent memory";
      return false;
    } catch (const kv::StoreReadOnly&) {
      // Durability latch (failed msync): mutations refused up front,
      // reads still answered from the in-memory index.
      err = "ERR READONLY store is degraded read-only (durability "
            "failure); reads still served";
      return false;
    } catch (const std::exception& e) {
      if (mutated != nullptr) *mutated = true;
      err = std::string("ERR ") + e.what();
      return false;
    }
  }

  KV& store_;
  ServerConfig cfg_;
  SocketFd listen_fd_;
  SocketFd stop_event_;
  std::uint16_t port_ = 0;
  // persist-lint: allow(shutdown latch — volatile process state)
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  ServerStats stats_;
  /// SCAN scratch: per-thread because every worker runs SCANs for its
  /// own connections concurrently with the others.
  static thread_local std::vector<std::pair<std::int64_t, std::string>>
      scan_buf_;
};

template <class KV>
thread_local std::vector<std::pair<std::int64_t, std::string>>
    Server<KV>::scan_buf_;

}  // namespace flit::net
