#include "net/socket.hpp"

#include "core/failpoint.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

namespace flit::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void SocketFd::reset(int fd) noexcept {
  if (fd_ >= 0) {
    // close() is not retried on EINTR: on Linux the fd is released
    // regardless, and retrying can close a reused descriptor.
    ::close(fd_);
  }
  fd_ = fd;
}

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

SocketFd listen_tcp(const std::string& host, std::uint16_t port,
                    int backlog) {
  SocketFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  // The accept loop drains until EWOULDBLOCK; accept4(SOCK_NONBLOCK)
  // only affects the accepted fd, so the listener itself must be
  // non-blocking or the drain loop wedges on its second iteration.
  set_nonblocking(fd.get(), true);
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

SocketFd connect_tcp(const std::string& host, std::uint16_t port) {
  ignore_sigpipe();
  SocketFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_in addr = make_addr(host, port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd.get());
  return fd;
}

SocketFd accept_nonblocking(int listen_fd, int* transient_err) {
  if (transient_err != nullptr) *transient_err = 0;
  // Failpoint: simulated accept failure (default EMFILE — fd
  // exhaustion), reported exactly like the real transient path below.
  if (const int e = core::fp_inject("net.accept", EMFILE)) {
    if (transient_err != nullptr) *transient_err = e;
    return SocketFd();
  }
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return SocketFd(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return SocketFd();
    // Transient per-connection failures (the peer reset before we
    // accepted, fd pressure) must not kill the listener.
    if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
        errno == ENOBUFS || errno == ENOMEM || errno == EPROTO) {
      if (transient_err != nullptr) *transient_err = errno;
      return SocketFd();
    }
    throw_errno("accept");
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: NODELAY failing (e.g. on a non-TCP test socket) only
  // costs latency, never correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ssize_t read_some(int fd, void* buf, std::size_t n, bool& would_block) {
  would_block = false;
  // Failpoint: simulated peer reset mid-read — surfaces as EOF, exactly
  // like the real ECONNRESET mapping below.
  if (core::fp_inject("net.read", ECONNRESET) != 0) return 0;
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block = true;
      return -1;
    }
    if (errno == ECONNRESET) return 0;  // peer vanished: treat as EOF
    throw_errno("read");
  }
}

ssize_t write_some(int fd, const void* buf, std::size_t n,
                   bool& would_block) {
  would_block = false;
  // Failpoints: "net.write" simulates a dead peer (the EPIPE/ECONNRESET
  // return below); "net.write.short" truncates the send to one byte so
  // partial-write resumption paths run under test control.
  if (core::fp_inject("net.write", ECONNRESET) != 0) return -1;
  if (core::fp_inject("net.write.short") != 0 && n > 1) n = 1;
  for (;;) {
    const ssize_t r = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block = true;
      return -1;
    }
    if (errno == EPIPE || errno == ECONNRESET) return -1;  // dead peer
    throw_errno("send");
  }
}

void write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    bool would_block = false;
    const ssize_t r = write_some(fd, p + off, n - off, would_block);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (would_block) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, /*ms=*/1000) < 0 && errno != EINTR) {
        throw_errno("poll");
      }
      continue;
    }
    throw std::runtime_error("net: connection closed mid-write");
  }
}

}  // namespace flit::net
