// client.hpp — blocking pipelined client for the flit network protocol.
//
// The counterpart to Server: enqueue() serializes requests into a local
// buffer without touching the socket, flush() writes the whole burst,
// read_reply() parses responses in order. That makes pipeline-depth-k
// traffic a loop of k enqueues, one flush, k read_replies — exactly the
// shape the server turns into one multi-op per readiness event.
//
// Not thread-safe; one Client per connection per thread (the loadgen
// runs one per worker thread, tests use it inline).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace flit::net {

class Client {
 public:
  static Client connect(const std::string& host, std::uint16_t port) {
    return Client(connect_tcp(host, port));
  }

  explicit Client(SocketFd fd) : fd_(std::move(fd)) {}

  int fd() const noexcept { return fd_.get(); }

  /// Serialize one request into the outgoing buffer (no I/O).
  void enqueue(std::initializer_list<std::string_view> argv) {
    append_request(out_, argv);
    ++pending_;
  }

  /// Same, for programmatic argv construction.
  void enqueue_parts(const std::string_view* parts, std::size_t n) {
    append_array_header(out_, n);
    for (std::size_t i = 0; i < n; ++i) append_bulk(out_, parts[i]);
    ++pending_;
  }

  std::size_t pending() const noexcept { return pending_; }

  /// Write every enqueued request to the socket (blocking).
  void flush() {
    if (out_.empty()) return;
    write_all(fd_.get(), out_.data(), out_.size());
    out_.clear();
  }

  /// Blocking read of the next in-order reply. Throws on EOF or a
  /// protocol error from the server side.
  Reply read_reply() {
    Reply r;
    for (;;) {
      const ParseStatus st = parser_.next(r);
      if (st == ParseStatus::kOk) {
        if (pending_ > 0) --pending_;
        return r;
      }
      if (st == ParseStatus::kError) {
        throw std::runtime_error("net: bad reply from server: " +
                                 parser_.error());
      }
      char buf[64 << 10];
      bool would_block = false;
      const ssize_t n = read_some(fd_.get(), buf, sizeof(buf), would_block);
      if (n == 0) {
        throw std::runtime_error("net: server closed the connection");
      }
      if (n > 0) {
        parser_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      }
      // would_block cannot happen on a blocking socket; loop regardless.
    }
  }

  /// Convenience: one request, flushed, one reply.
  Reply command(std::initializer_list<std::string_view> argv) {
    enqueue(argv);
    flush();
    return read_reply();
  }

 private:
  SocketFd fd_;
  std::string out_;
  ReplyParser parser_;
  std::size_t pending_ = 0;
};

}  // namespace flit::net
