// socket.hpp — thin POSIX TCP helpers for the network front-end.
//
// Everything the server and client need from the socket layer, with the
// paper cuts handled once:
//
//   * SIGPIPE — a peer that closes mid-write must surface as EPIPE from
//     send(), not kill the process: sends use MSG_NOSIGNAL and
//     ignore_sigpipe() covers any path that bypasses send (e.g. a
//     sanitizer interceptor falling back to write).
//   * EINTR — every syscall wrapper retries; a signal landing mid-accept
//     or mid-read is invisible to callers.
//   * Partial I/O — read_some/write_some return what the kernel took and
//     report would-block distinctly, so the event loop can resume a
//     partial write when the socket drains (see Server::flush).
//
// IPv4 only (the server is a loopback/LAN service; the listen address is
// explicit). All helpers throw std::runtime_error with errno context on
// hard failures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>
#include <utility>

namespace flit::net {

/// Move-only owning file descriptor.
class SocketFd {
 public:
  SocketFd() = default;
  explicit SocketFd(int fd) noexcept : fd_(fd) {}
  ~SocketFd() { reset(); }
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;
  SocketFd(SocketFd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  SocketFd& operator=(SocketFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Idempotent, thread-safe: SIG_IGN SIGPIPE for the process. Called by
/// the server and client constructors; a broken pipe then surfaces as
/// EPIPE from the write, which the owner handles as a dead connection.
void ignore_sigpipe();

/// Bind + listen on host:port (port 0 = kernel-assigned ephemeral port;
/// read it back with local_port). SO_REUSEADDR is set.
SocketFd listen_tcp(const std::string& host, std::uint16_t port,
                    int backlog = 128);

/// The locally bound port of a socket (resolves port-0 binds).
std::uint16_t local_port(int fd);

/// Blocking connect to host:port with TCP_NODELAY.
SocketFd connect_tcp(const std::string& host, std::uint16_t port);

/// EINTR-retrying accept4(SOCK_NONBLOCK | SOCK_CLOEXEC). Returns an
/// invalid SocketFd when the listener has nothing pending (EAGAIN) or a
/// transient per-connection failure occurred. When `transient_err` is
/// non-null it reports why: 0 for a drained listener, else the errno
/// (ECONNABORTED, EMFILE, ENFILE, ENOBUFS, ENOMEM, EPROTO) — the server
/// backs off accepting on the fd-pressure subset instead of spinning on
/// a level-triggered listener it cannot drain.
SocketFd accept_nonblocking(int listen_fd, int* transient_err = nullptr);

void set_nonblocking(int fd, bool on);
void set_nodelay(int fd);

/// EINTR-retrying read(). >0 bytes, 0 on EOF, -1 with would_block=true
/// when the socket is drained; throws std::runtime_error on hard errors.
ssize_t read_some(int fd, void* buf, std::size_t n, bool& would_block);

/// EINTR-retrying send(MSG_NOSIGNAL). Returns bytes accepted, or -1 with
/// would_block=true on a full socket buffer. A dead peer (EPIPE /
/// ECONNRESET) returns -1 with would_block=false — a closed connection,
/// not an exception (it is routine under pipelining).
ssize_t write_some(int fd, const void* buf, std::size_t n,
                   bool& would_block);

/// Blocking write of the whole buffer (poll()s through would-block).
/// Throws std::runtime_error if the peer dies first.
void write_all(int fd, const void* buf, std::size_t n);

}  // namespace flit::net
