// protocol.hpp — the flit-server wire protocol: a RESP-like text protocol
// with incremental (torn-read-safe) parsers for both directions.
//
// Requests arrive in one of two framings:
//
//   * RESP arrays (binary-safe, what flit_loadgen and the client helper
//     emit):   *<n>\r\n  then n bulk strings  $<len>\r\n<len bytes>\r\n
//   * inline commands (telnet-friendly): space-separated tokens on one
//     line, terminated by \n (an optional preceding \r is stripped).
//     Values with spaces or CRLF need the array framing.
//
// Replies are RESP: simple strings (+OK), errors (-ERR ...), integers
// (:n), bulk strings ($len ... or $-1 for null), and arrays (*n followed
// by n replies).
//
// Both parsers are *incremental*: bytes are fed as they arrive off a
// socket, and next() either produces a complete message, asks for more,
// or fails the connection. Robustness is part of the contract:
//
//   * torn reads — a frame split at any byte boundary parses identically;
//   * pipelining — any number of back-to-back frames in one buffer;
//   * oversized frames — rejected from the *header* (a hostile
//     `$1000000000` cannot make the server buffer a gigabyte);
//   * malformed frames — bad digits, missing terminators, bulks outside
//     an array — fail fast with a diagnostic, never hang or crash;
//   * unterminated frames — a header line that never ends is rejected
//     once it exceeds its bounded length.
//
// A parser that returned kError is poisoned: the byte stream has lost
// framing, so the owner must send one final -ERR reply and close the
// connection. See ARCHITECTURE.md "Network front-end".
#pragma once

#include <charconv>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flit::net {

/// Parser bounds. Defaults fit the KV store (values ≤ 8 MiB through the
/// server; Record::kMaxValueBytes is the 64 MiB hard ceiling) while
/// keeping a hostile header from committing the server to unbounded
/// buffering.
struct ProtocolLimits {
  std::size_t max_bulk_bytes = std::size_t{8} << 20;  ///< one argument
  std::size_t max_array_elems = 1024;                 ///< argv length
  std::size_t max_inline_bytes = std::size_t{64} << 10;  ///< inline line
  /// A `*`/`$` header line (punctuation + digits + CRLF) is tiny; one
  /// that runs longer than this without a newline is garbage.
  std::size_t max_header_bytes = 32;
};

/// One parsed request: argv[0] is the command word (case-insensitive),
/// the rest its arguments, all binary-safe.
struct Request {
  std::vector<std::string> argv;
};

enum class ParseStatus {
  kOk,        ///< one complete message produced
  kNeedMore,  ///< frame incomplete; feed more bytes and retry
  kError,     ///< stream corrupt; reply -ERR and close the connection
};

namespace detail {

/// Strict decimal parse of a whole token (optional leading '-').
inline std::optional<std::int64_t> parse_i64(std::string_view s) noexcept {
  std::int64_t v = 0;
  if (s.empty()) return std::nullopt;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

}  // namespace detail

/// Incremental request parser. feed() appends raw socket bytes; next()
/// extracts complete requests one at a time. After kError the parser (and
/// the connection) is dead — error() holds the diagnostic for the final
/// -ERR reply.
class RequestParser {
 public:
  explicit RequestParser(ProtocolLimits limits = {}) : lim_(limits) {}

  void feed(std::string_view bytes) { buf_.append(bytes); }

  ParseStatus next(Request& out) {
    if (failed_) return ParseStatus::kError;
    for (;;) {
      compact();
      if (pos_ >= buf_.size()) return ParseStatus::kNeedMore;
      const char c = buf_[pos_];
      if (c == '\r' || c == '\n') {  // stray blank line: skip it
        ++pos_;
        continue;
      }
      if (c == '*') return parse_array(out);
      if (c == '$') return fail("protocol: bulk string outside an array");
      return parse_inline(out);
    }
  }

  const std::string& error() const noexcept { return error_; }
  bool failed() const noexcept { return failed_; }
  /// Bytes buffered but not yet consumed by a complete request.
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  ParseStatus fail(std::string msg) {
    failed_ = true;
    error_ = std::move(msg);
    return ParseStatus::kError;
  }

  /// Reclaim the consumed prefix once it dominates the buffer.
  void compact() {
    if (pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    } else if (pos_ > (std::size_t{64} << 10) && pos_ > buf_.size() / 2) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  /// Find the '\n' ending the line starting at `from`; the returned view
  /// excludes the terminator and any preceding '\r'. nullopt = incomplete.
  std::optional<std::string_view> take_line(std::size_t from,
                                            std::size_t& next_pos) const {
    const std::size_t nl = buf_.find('\n', from);
    if (nl == std::string::npos) return std::nullopt;
    std::size_t end = nl;
    if (end > from && buf_[end - 1] == '\r') --end;
    next_pos = nl + 1;
    return std::string_view(buf_).substr(from, end - from);
  }

  /// `*<n>\r\n` then n bulk strings. Limit checks run on each *header* as
  /// soon as it is complete, before waiting for (or buffering) the body.
  ParseStatus parse_array(Request& out) {
    std::size_t p = pos_ + 1;  // past '*'
    std::size_t after = 0;
    const auto head = take_line(p, after);
    if (!head) {
      if (buf_.size() - pos_ > lim_.max_header_bytes) {
        return fail("protocol: unterminated array header");
      }
      return ParseStatus::kNeedMore;
    }
    const auto n = detail::parse_i64(*head);
    if (!n || *n < 1) return fail("protocol: bad array header");
    if (static_cast<std::uint64_t>(*n) > lim_.max_array_elems) {
      return fail("protocol: array exceeds " +
                  std::to_string(lim_.max_array_elems) + " elements");
    }
    std::vector<std::string> argv;
    argv.reserve(static_cast<std::size_t>(*n));
    p = after;
    for (std::int64_t i = 0; i < *n; ++i) {
      if (p >= buf_.size()) return ParseStatus::kNeedMore;
      if (buf_[p] != '$') return fail("protocol: expected bulk string");
      const auto blen = take_line(p + 1, after);
      if (!blen) {
        if (buf_.size() - p > lim_.max_header_bytes) {
          return fail("protocol: unterminated bulk header");
        }
        return ParseStatus::kNeedMore;
      }
      const auto len = detail::parse_i64(*blen);
      if (!len || *len < 0) return fail("protocol: bad bulk length");
      if (static_cast<std::uint64_t>(*len) > lim_.max_bulk_bytes) {
        return fail("protocol: bulk exceeds " +
                    std::to_string(lim_.max_bulk_bytes) + " bytes");
      }
      const auto need = static_cast<std::size_t>(*len);
      if (buf_.size() - after < need + 2) return ParseStatus::kNeedMore;
      if (buf_[after + need] != '\r' || buf_[after + need + 1] != '\n') {
        return fail("protocol: bulk payload not CRLF-terminated");
      }
      argv.emplace_back(buf_, after, need);
      p = after + need + 2;
    }
    out.argv = std::move(argv);
    pos_ = p;
    return ParseStatus::kOk;
  }

  /// One line of space-separated tokens.
  ParseStatus parse_inline(Request& out) {
    std::size_t after = 0;
    const auto line = take_line(pos_, after);
    if (!line) {
      if (buf_.size() - pos_ > lim_.max_inline_bytes) {
        return fail("protocol: unterminated inline command");
      }
      return ParseStatus::kNeedMore;
    }
    if (line->size() > lim_.max_inline_bytes) {
      return fail("protocol: inline command too long");
    }
    std::vector<std::string> argv;
    std::size_t i = 0;
    while (i < line->size()) {
      while (i < line->size() &&
             ((*line)[i] == ' ' || (*line)[i] == '\t')) {
        ++i;
      }
      std::size_t j = i;
      while (j < line->size() && (*line)[j] != ' ' && (*line)[j] != '\t') {
        ++j;
      }
      if (j > i) {
        if (argv.size() == lim_.max_array_elems) {
          return fail("protocol: too many inline tokens");
        }
        argv.emplace_back(line->substr(i, j - i));
      }
      i = j;
    }
    pos_ = after;
    if (argv.empty()) return next(out);  // blank line: keep scanning
    out.argv = std::move(argv);
    return ParseStatus::kOk;
  }

  ProtocolLimits lim_;
  std::string buf_;
  std::size_t pos_ = 0;
  std::string error_;
  bool failed_ = false;
};

// --- reply serialization ----------------------------------------------------

inline void append_simple(std::string& out, std::string_view s) {
  out += '+';
  out += s;
  out += "\r\n";
}

/// `msg` should start with a code word, e.g. "ERR bad key".
inline void append_error(std::string& out, std::string_view msg) {
  out += '-';
  out += msg;
  out += "\r\n";
}

inline void append_integer(std::string& out, std::int64_t v) {
  out += ':';
  out += std::to_string(v);
  out += "\r\n";
}

inline void append_bulk(std::string& out, std::string_view v) {
  out += '$';
  out += std::to_string(v.size());
  out += "\r\n";
  out += v;
  out += "\r\n";
}

inline void append_null(std::string& out) { out += "$-1\r\n"; }

inline void append_array_header(std::string& out, std::size_t n) {
  out += '*';
  out += std::to_string(n);
  out += "\r\n";
}

/// Serialize a request in the array framing (what the client and loadgen
/// send; binary-safe).
inline void append_request(std::string& out,
                           std::initializer_list<std::string_view> argv) {
  append_array_header(out, argv.size());
  for (const std::string_view a : argv) append_bulk(out, a);
}

// --- reply parsing (client side) --------------------------------------------

/// One parsed reply. kNull is the absent-value bulk ($-1).
struct Reply {
  enum class Type { kSimple, kError, kInteger, kBulk, kNull, kArray };
  Type type = Type::kNull;
  std::string str;           ///< simple / error / bulk payload
  std::int64_t integer = 0;  ///< kInteger
  std::vector<Reply> elems;  ///< kArray

  bool ok() const noexcept { return type == Type::kSimple && str == "OK"; }
  bool is_error() const noexcept { return type == Type::kError; }
  bool is_null() const noexcept { return type == Type::kNull; }
};

/// Incremental RESP reply parser (the client half). Same contract as
/// RequestParser: feed bytes, next() yields complete replies; kError
/// poisons the stream.
class ReplyParser {
 public:
  explicit ReplyParser(ProtocolLimits limits = {}) : lim_(limits) {}

  void feed(std::string_view bytes) { buf_.append(bytes); }

  ParseStatus next(Reply& out) {
    if (failed_) return ParseStatus::kError;
    compact();
    std::size_t p = pos_;
    const ParseStatus st = parse_one(out, p, /*depth=*/0);
    if (st == ParseStatus::kOk) pos_ = p;
    return st;
  }

  const std::string& error() const noexcept { return error_; }

 private:
  static constexpr int kMaxDepth = 4;

  ParseStatus fail(std::string msg) {
    failed_ = true;
    error_ = std::move(msg);
    return ParseStatus::kError;
  }

  void compact() {
    if (pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    } else if (pos_ > (std::size_t{64} << 10) && pos_ > buf_.size() / 2) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::optional<std::string_view> take_line(std::size_t from,
                                            std::size_t& next_pos) const {
    const std::size_t nl = buf_.find('\n', from);
    if (nl == std::string::npos) return std::nullopt;
    std::size_t end = nl;
    if (end > from && buf_[end - 1] == '\r') --end;
    next_pos = nl + 1;
    return std::string_view(buf_).substr(from, end - from);
  }

  ParseStatus parse_one(Reply& out, std::size_t& p, int depth) {
    if (depth > kMaxDepth) return fail("protocol: reply nested too deeply");
    if (p >= buf_.size()) return ParseStatus::kNeedMore;
    const char c = buf_[p];
    std::size_t after = 0;
    switch (c) {
      case '+':
      case '-': {
        const auto line = take_line(p + 1, after);
        if (!line) return need_line(p);
        out = {};
        out.type = c == '+' ? Reply::Type::kSimple : Reply::Type::kError;
        out.str = std::string(*line);
        p = after;
        return ParseStatus::kOk;
      }
      case ':': {
        const auto line = take_line(p + 1, after);
        if (!line) return need_line(p);
        const auto v = detail::parse_i64(*line);
        if (!v) return fail("protocol: bad integer reply");
        out = {};
        out.type = Reply::Type::kInteger;
        out.integer = *v;
        p = after;
        return ParseStatus::kOk;
      }
      case '$': {
        const auto line = take_line(p + 1, after);
        if (!line) return need_line(p);
        const auto len = detail::parse_i64(*line);
        if (!len || *len < -1) return fail("protocol: bad bulk length");
        if (*len == -1) {
          out = {};
          out.type = Reply::Type::kNull;
          p = after;
          return ParseStatus::kOk;
        }
        if (static_cast<std::uint64_t>(*len) > lim_.max_bulk_bytes) {
          return fail("protocol: bulk reply too large");
        }
        const auto need = static_cast<std::size_t>(*len);
        if (buf_.size() - after < need + 2) return ParseStatus::kNeedMore;
        if (buf_[after + need] != '\r' || buf_[after + need + 1] != '\n') {
          return fail("protocol: bulk reply not CRLF-terminated");
        }
        out = {};
        out.type = Reply::Type::kBulk;
        out.str.assign(buf_, after, need);
        p = after + need + 2;
        return ParseStatus::kOk;
      }
      case '*': {
        const auto line = take_line(p + 1, after);
        if (!line) return need_line(p);
        const auto n = detail::parse_i64(*line);
        if (!n || *n < 0) return fail("protocol: bad array header");
        // Replies can legitimately be wide (SCAN returns 2 elements per
        // pair; MGET one per key), so the element bound is looser than
        // the request-side argv bound.
        if (static_cast<std::uint64_t>(*n) >
            2 * lim_.max_array_elems + 16) {
          return fail("protocol: array reply too large");
        }
        Reply arr;
        arr.type = Reply::Type::kArray;
        arr.elems.reserve(static_cast<std::size_t>(*n));
        std::size_t q = after;
        for (std::int64_t i = 0; i < *n; ++i) {
          Reply elem;
          const ParseStatus st = parse_one(elem, q, depth + 1);
          if (st != ParseStatus::kOk) return st;
          arr.elems.push_back(std::move(elem));
        }
        out = std::move(arr);
        p = q;
        return ParseStatus::kOk;
      }
      default:
        return fail("protocol: unknown reply type byte");
    }
  }

  /// A header line is pending: wait, unless it can no longer terminate.
  ParseStatus need_line(std::size_t from) {
    if (buf_.size() - from > lim_.max_header_bytes + lim_.max_bulk_bytes) {
      return fail("protocol: unterminated reply");
    }
    return ParseStatus::kNeedMore;
  }

  ProtocolLimits lim_;
  std::string buf_;
  std::size_t pos_ = 0;
  std::string error_;
  bool failed_ = false;
};

}  // namespace flit::net
