// linearizer.hpp — the LinCheck history checkers: per-key interval-order
// linearizability (WGL-style search), whole-history scan validation, and
// the durable-linearizability check against crash-simulator images.
//
// Decomposition argument (why per-key checking is sound and complete for
// this API): every recorded operation except scan touches exactly one
// key, and the sequential specification of the store is a product of
// independent per-key registers — operations on distinct keys commute in
// every state. A history is therefore linearizable iff each per-key
// subhistory is linearizable: any per-key witnesses can be merged into
// one global order by interleaving them consistently with real time
// (intervals that overlap leave the order free; intervals that don't are
// already consistent per key because each subhistory preserved real-time
// order). This turns Wing & Gong's exponential search into many small
// searches whose width is bounded by per-key concurrency, which keeps
// stress-scale histories tractable.
//
// Scans don't get a full atomic-snapshot check on purpose: the store's
// contract (Store::scan) promises only per-pair consistency plus "keys
// present for the whole call are returned". The scan rules here check
// exactly that contract against some cut of the per-key linearizations —
// every reported pair must be plausibly current at some point inside the
// scan's interval, and a key provably present throughout the interval
// (and inside the returned range) must appear.
//
// All checks are *sound* (a reported violation is a real contract
// violation, never a false positive): the conservative classifiers
// quantify only over completed operations and use interval containment
// (inv <= linearization point <= resp), and the WGL search is exact per
// key. The classifiers additionally give precise violation classes and
// op attribution where the plain search could only say "no witness".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace flit::check {

enum class ViolationClass : int {
  kStaleRead = 0,    ///< read returned a value certainly superseded
  kPhantomRead,      ///< read returned a value nothing ever wrote
  kLostUpdate,       ///< read missed a key certainly present
  kFlagMismatch,     ///< a boolean response contradicts certain state
  kNonLinearizable,  ///< per-key WGL search found no witness order
  kScanOrder,        ///< scan output not strictly ascending from start
  kScanStale,        ///< scan pair's value certainly superseded
  kScanPhantom,      ///< scan reported a key/value certainly absent
  kScanDropped,      ///< scan missed a key certainly present throughout
  kDurableLost,      ///< completed-before-crash op missing from image
  kDurablePhantom,   ///< recovered value nothing ever wrote
  kSearchLimit,      ///< WGL window/state budget exceeded (inconclusive)
};
inline constexpr int kViolationClasses = 12;

const char* to_string(ViolationClass v) noexcept;

/// One checker diagnostic: the class, the key it concerns, the inv tick
/// of the offending operation (or scan / crash cut), and a rendered
/// explanation naming the contradicting operations.
struct Finding {
  ViolationClass cls;
  std::int64_t key = 0;
  std::uint64_t tick = 0;
  std::string detail;
};

/// Check a completed history (call quiescent, e.g. after joining the
/// worker threads): per-key classifiers + WGL linearizability search,
/// then the scan rules. Returns every violation found (empty = the
/// history is linearizable and all scans honor the scan contract).
std::vector<Finding> check_history(const History& h);

/// Durable-linearizability check of one crash image. `cut` is the tick
/// at which the pfence-boundary image was captured; `recovered` maps key
/// -> value_id of the recovered store's contents (absent keys omitted).
/// Asserts the image agrees with a prefix-consistent linearization in
/// which every operation completed before `cut` survives: a recovered
/// value must have a completed-or-in-flight writer not certainly
/// superseded before the cut, and a key certainly present at the cut
/// must be recovered. In-flight-at-cut operations may or may not have
/// taken effect (their fence raced the crash) — the rules quantify only
/// over completed ones, so partial prefixes are accepted, lost completed
/// ops are not.
std::vector<Finding> check_durable(
    const History& h, std::uint64_t cut,
    const std::map<std::int64_t, std::uint64_t>& recovered);

}  // namespace flit::check
