// history.hpp — the LinCheck event model: what one recorded operation
// looks like, and the containers a whole run's history lives in.
//
// LinCheck decides durable linearizability from *histories*: every KV
// operation is recorded as an invocation/response interval stamped from
// one global atomic tick, plus the operation's arguments and its observed
// response. The checker (linearizer.hpp) then asks whether some order of
// linearization points — one inside each interval — explains every
// response against the sequential map specification. The model is shared
// by the runtime recorder (lincheck.hpp), the offline checker, and the
// hand-built histories in tests, so it lives in its own dependency-free
// header and is compiled unconditionally (only the *recording hooks* are
// gated behind FLIT_LINCHECK).
//
// Values are identified by a 64-bit FNV-1a hash of their bytes rather
// than the bytes themselves: the checker only ever needs equality ("did
// this get return what that put wrote, intact?"), and hashing keeps a
// million-op history's footprint flat. 0 is reserved to mean "absent",
// so a genuine hash of 0 folds to 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace flit::check {

/// The recorded operation kinds, by their sequential specification on a
/// single key's register (0 = absent):
///   kPut      — reg := v;           flag reports "key was absent"
///   kInsert   — if absent reg := v; flag reports "this call inserted"
///   kGet      — reg unchanged;      value reports reg (0 when absent)
///   kContains — reg unchanged;      flag reports reg != 0
///   kRemove   — reg := 0;           flag reports "key was present"
enum class Op : std::uint8_t {
  kPut = 0,
  kInsert = 1,
  kGet = 2,
  kContains = 3,
  kRemove = 4,
};

const char* to_string(Op op) noexcept;

/// 64-bit FNV-1a over the value bytes; never returns 0 (reserved for
/// "absent"), so distinct-from-absent is preserved.
inline std::uint64_t value_id(std::string_view v) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : v) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

/// One completed single-key operation. inv/resp are global ticks taken
/// at (before) invocation and (after) response, so the recorded interval
/// contains the operation's true linearization point. Batched multi-op
/// elements share their batch's inv tick; resp ticks are always unique.
struct Event {
  std::uint64_t inv = 0;
  std::uint64_t resp = 0;
  std::int64_t key = 0;
  std::uint64_t value = 0;  ///< value_id written/read; 0 = none/absent
  Op op = Op::kGet;
  bool flag = false;  ///< the op's boolean response (see Op)
};

/// One completed scan: the start key, the requested limit, and the
/// returned pairs in return order. A pair's value id of 0 means "key
/// reported present, value not recorded" (keys-only range scans) — the
/// checker then applies only the presence rules to it.
struct ScanEvent {
  std::uint64_t inv = 0;
  std::uint64_t resp = 0;
  std::int64_t start = 0;
  std::size_t limit = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
};

/// Everything one run recorded. Events appear in per-thread append order
/// concatenated arbitrarily; the checker sorts per key by inv tick.
struct History {
  std::vector<Event> events;
  std::vector<ScanEvent> scans;
};

}  // namespace flit::check
