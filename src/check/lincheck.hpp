// lincheck.hpp — the LinCheck runtime: a low-overhead history recorder,
// the EBR lifetime analyzer, and the seeded-bug switchboard, plus the
// `lc_*` hook helpers the kv/ds/pmem layers call.
//
// Wiring mirrors PersistCheck (pmem/persist_check.hpp): the hook helpers
// are inline and compile to nothing unless the FLIT_LINCHECK CMake option
// defines FLIT_LINCHECK, so default builds carry zero overhead — no tick
// traffic, no registry, not even the value hashing (it happens inside the
// disabled helper). The classes themselves are compiled unconditionally
// so tests can drive the checker on hand-built histories in any build.
//
// Recorder: every hooked operation takes an invocation tick before it
// starts and a response tick after it returns, both from one global
// atomic counter, and appends one Event to a per-thread append-only log
// (owner-thread writes only; a light lock is taken only so the quiescent
// snapshot() is well-defined). The recorded interval therefore contains
// the operation's true linearization point, which is the only property
// the checker needs.
//
// Lifetime: pmem allocations, EBR retirements and frees, and ds-layer
// node dereferences are cross-checked against the 3-epoch EBR grace
// rule. A legitimate reader that can still hold a pointer to a node
// retired at epoch E has announced at most E+1 (its guard would have
// blocked the epoch from advancing further), so:
//   * freeing a node before global epoch >= E+2 (outside a quiescent
//     drain) is an early reclamation;
//   * dereferencing a retired node from a thread with no guard, or one
//     announcing >= E+2, is a protocol violation — no correct traversal
//     can still reach that node;
//   * dereferencing a node after it was freed is a use-after-free.
// Like PersistCheck, unacknowledged lifetime violations make the process
// exit nonzero at exit, so a stress test can't silently pass over them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "recl/ebr.hpp"

namespace flit::check {

#if defined(FLIT_LINCHECK)
inline constexpr bool kLinCheckEnabled = true;
#else
inline constexpr bool kLinCheckEnabled = false;
#endif

/// Sentinel returned by lc_begin() when recording is off.
inline constexpr std::uint64_t kNoTick = ~std::uint64_t{0};

/// Global history recorder. Disarmed by default even in lincheck builds:
/// tests arm() around the workload they want checked and snapshot() after
/// joining their workers.
class Recorder {
 public:
  static Recorder& instance();

  void arm() noexcept;
  void disarm() noexcept;
  bool armed() const noexcept;

  /// The next tick to be handed out — use as a durable-mode cut: every
  /// op with inv < now() was invoked before this point.
  std::uint64_t now() const noexcept;

  /// Take an invocation tick (kNoTick when disarmed — end() then drops
  /// the event, so an op spanning arm()/disarm() is never half-recorded).
  std::uint64_t begin() noexcept;

  void end(std::uint64_t inv, Op op, std::int64_t key, std::uint64_t value,
           bool flag);
  void end_scan(std::uint64_t inv, std::int64_t start, std::size_t limit,
                std::vector<std::pair<std::int64_t, std::uint64_t>> out);

  /// Copy out everything recorded so far. Call at quiescence (workers
  /// joined); concurrent appends make the copy a valid prefix per thread.
  History snapshot() const;

  /// Drop all recorded events and restart ticks from 1.
  void reset();

 private:
  Recorder() = default;
};

enum class LifetimeViolation : int {
  kEarlyReclaim = 0,  ///< freed before the 2-epoch grace period elapsed
  kUseAfterFree,      ///< dereferenced after its storage was freed
  kUnprotectedDeref,  ///< retired node dereferenced with no guard held
  kStaleDeref,        ///< retired node dereferenced from a post-grace epoch
};
inline constexpr int kLifetimeViolationKinds = 4;

const char* to_string(LifetimeViolation v) noexcept;

/// EBR lifetime registry + violation accounting. All entry points are
/// thread-safe; counters follow the PersistCheck acknowledgement idiom
/// (tests assert zero and reset; unacknowledged violations fail the
/// process at exit).
class Lifetime {
 public:
  static Lifetime& instance();

  /// A pool allocation: forget any retired/freed record the new block
  /// overlaps (the address is being legitimately recycled).
  void on_alloc(const void* p, std::size_t len);

  /// A node entered the limbo list at `epoch` from `site`.
  void on_retire(const void* p, std::uint64_t epoch, const char* site);

  /// A limbo node is about to be freed while the global epoch is `now`.
  /// `quiescent` exempts drain_all()-style frees from the grace check.
  void on_free(const void* p, std::uint64_t now, bool quiescent);

  /// A traversal dereferences node `p` while announcing `announce`
  /// (recl::Ebr::kIdleEpoch when no guard is held).
  void on_deref(const void* p, std::uint64_t announce, const char* site);

  std::uint64_t violations(LifetimeViolation v) const noexcept;
  std::uint64_t total_violations() const noexcept;
  /// Site string of the first violation since the last reset ("" if none).
  const char* first_violation_site() const noexcept;
  /// Acknowledge all violations (does not clear the registry).
  void reset_violations() noexcept;

  /// Drop the whole registry — the pool was torn down or remapped, so
  /// stale entries would alias fresh file-backed regions.
  void clear();

 private:
  Lifetime() = default;
};

// --- seeded bugs -----------------------------------------------------------
// Self-validation switchboard, mirroring FLIT_PERSIST_CHECK_UNSAFE and
// FLIT_CRASHTEST_UNSAFE_ACK: each mode plants one precise bug in the kv
// layer that the checker must catch with the right class and site.
//   stale_read   — put defers its upsert until the next write, so a get
//                  between them returns the superseded value (kStaleRead).
//   lost_update  — put computes its return but never applies the write;
//                  a later get misses it (kLostUpdate).
//   early_retire — a superseded record is freed immediately instead of
//                  through EBR limbo (Lifetime kEarlyReclaim).

enum class UnsafeMode : int {
  kNone = 0,
  kStaleRead,
  kLostUpdate,
  kEarlyRetire,
};

/// The active seeded bug: first call reads FLIT_LINCHECK_UNSAFE
/// ("stale_read" | "lost_update" | "early_retire"), then cached;
/// set_unsafe_mode() overrides (tests use the API, CI uses the env).
UnsafeMode unsafe_mode() noexcept;
void set_unsafe_mode(UnsafeMode m) noexcept;

/// stale_read support: park a write's real application until the next
/// write to the same shard applies pending work (or a test flushes it).
void unsafe_defer(std::function<void()> fn);
void unsafe_apply_pending();

// --- hook helpers ----------------------------------------------------------
// These are what the instrumented layers call. Each is a no-op (and the
// disabled branch folds away entirely) unless FLIT_LINCHECK is defined.

inline std::uint64_t lc_begin() noexcept {
  if constexpr (kLinCheckEnabled) return Recorder::instance().begin();
  return kNoTick;
}

/// Completed write-ish op (put/insert/remove): `payload` is hashed to a
/// value id for puts; pass empty for remove.
inline void lc_end_write(std::uint64_t inv, Op op, std::int64_t key,
                         std::string_view payload, bool flag) {
  if constexpr (kLinCheckEnabled) {
    if (inv == kNoTick) return;
    const std::uint64_t v = payload.empty() ? 0 : value_id(payload);
    Recorder::instance().end(inv, op, key, v, flag);
  } else {
    (void)inv; (void)op; (void)key; (void)payload; (void)flag;
  }
}

/// Completed get: `found` + the returned bytes (ignored when !found).
inline void lc_end_read(std::uint64_t inv, std::int64_t key, bool found,
                        std::string_view payload) {
  if constexpr (kLinCheckEnabled) {
    if (inv == kNoTick) return;
    const std::uint64_t v = found ? value_id(payload) : 0;
    Recorder::instance().end(inv, Op::kGet, key, v, found);
  } else {
    (void)inv; (void)key; (void)found; (void)payload;
  }
}

/// Completed contains.
inline void lc_end_contains(std::uint64_t inv, std::int64_t key, bool hit) {
  if constexpr (kLinCheckEnabled) {
    if (inv == kNoTick) return;
    Recorder::instance().end(inv, Op::kContains, key, 0, hit);
  } else {
    (void)inv; (void)key; (void)hit;
  }
}

/// Completed scan over (key, string-like value) pairs.
template <class Pairs>
inline void lc_end_scan(std::uint64_t inv, std::int64_t start,
                        std::size_t limit, const Pairs& pairs) {
  if constexpr (kLinCheckEnabled) {
    if (inv == kNoTick) return;
    std::vector<std::pair<std::int64_t, std::uint64_t>> out;
    out.reserve(pairs.size());
    for (const auto& p : pairs) {
      out.emplace_back(static_cast<std::int64_t>(p.first),
                       value_id(std::string_view(p.second)));
    }
    Recorder::instance().end_scan(inv, start, limit, std::move(out));
  } else {
    (void)inv; (void)start; (void)limit; (void)pairs;
  }
}

inline void lc_alloc(const void* p, std::size_t len) {
  if constexpr (kLinCheckEnabled) {
    Lifetime::instance().on_alloc(p, len);
  } else {
    (void)p; (void)len;
  }
}

inline void lc_retire(const void* p, std::uint64_t epoch, const char* site) {
  if constexpr (kLinCheckEnabled) {
    Lifetime::instance().on_retire(p, epoch, site);
  } else {
    (void)p; (void)epoch; (void)site;
  }
}

inline void lc_free(const void* p, std::uint64_t now, bool quiescent) {
  if constexpr (kLinCheckEnabled) {
    Lifetime::instance().on_free(p, now, quiescent);
  } else {
    (void)p; (void)now; (void)quiescent;
  }
}

inline void lc_deref(const void* p, const char* site) {
  if constexpr (kLinCheckEnabled) {
    if (p == nullptr) return;
    Lifetime::instance().on_deref(
        p, recl::Ebr::instance().current_announce(), site);
  } else {
    (void)p; (void)site;
  }
}

inline void lc_pool_reset() {
  if constexpr (kLinCheckEnabled) Lifetime::instance().clear();
}

}  // namespace flit::check
