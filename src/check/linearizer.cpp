// linearizer.cpp — see linearizer.hpp for the decomposition and
// soundness arguments the implementation leans on. Shape of a check:
//
//   1. group events per key, sorted by inv tick;
//   2. per key, run the conservative classifiers (each names a precise
//      violation class and the contradicting ops);
//   3. per key with no classifier finding, run the exact WGL search —
//      a DFS over "which op linearizes next", memoized on (prefix,
//      out-of-order window bitmask, register value);
//   4. check every scan against the per-key groups;
//   5. (durable mode) check a recovered image against the same groups.
#include "check/linearizer.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <unordered_set>

namespace flit::check {

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kPut: return "put";
    case Op::kInsert: return "insert";
    case Op::kGet: return "get";
    case Op::kContains: return "contains";
    case Op::kRemove: return "remove";
  }
  return "?";
}

const char* to_string(ViolationClass v) noexcept {
  switch (v) {
    case ViolationClass::kStaleRead: return "stale-read";
    case ViolationClass::kPhantomRead: return "phantom-read";
    case ViolationClass::kLostUpdate: return "lost-update";
    case ViolationClass::kFlagMismatch: return "flag-mismatch";
    case ViolationClass::kNonLinearizable: return "non-linearizable";
    case ViolationClass::kScanOrder: return "scan-order";
    case ViolationClass::kScanStale: return "scan-stale";
    case ViolationClass::kScanPhantom: return "scan-phantom";
    case ViolationClass::kScanDropped: return "scan-dropped";
    case ViolationClass::kDurableLost: return "durable-lost";
    case ViolationClass::kDurablePhantom: return "durable-phantom";
    case ViolationClass::kSearchLimit: return "search-limit";
  }
  return "?";
}

namespace {

bool is_write(const Event& e) noexcept {
  return e.op == Op::kPut || (e.op == Op::kInsert && e.flag);
}
bool is_true_remove(const Event& e) noexcept {
  return e.op == Op::kRemove && e.flag;
}
bool is_state_changer(const Event& e) noexcept {
  return is_write(e) || is_true_remove(e);
}

std::string describe(const Event& e) {
  std::string s = to_string(e.op);
  s += "(key=" + std::to_string(e.key) + ")@[" + std::to_string(e.inv) +
       "," + std::to_string(e.resp) + "]";
  return s;
}

/// Write w is certainly superseded before tick t: some completed state
/// changer starts after w responds and responds before t, so no
/// linearization can keep w's value current at any point >= t.
bool certainly_dead_before(const std::vector<Event>& evs, const Event& w,
                          std::uint64_t t, const Event* killer_out_hack =
                              nullptr) {
  (void)killer_out_hack;
  for (const Event& q : evs) {
    if (!is_state_changer(q)) continue;
    if (q.inv > w.resp && q.resp < t) return true;
  }
  return false;
}

/// The key is present at every point of [s, e] in every linearization:
/// some write (other than `self`) completes before s, and no true remove
/// (other than `self`) can linearize between that write and e.
bool certainly_present(const std::vector<Event>& evs, std::uint64_t s,
                       std::uint64_t e, const Event* self) {
  for (const Event& w : evs) {
    if (&w == self || !is_write(w) || w.resp >= s) continue;
    bool maybe_killed = false;
    for (const Event& r : evs) {
      if (&r == self || !is_true_remove(r)) continue;
      if (r.resp < w.inv || r.inv > e) continue;  // cannot land in (w, e]
      maybe_killed = true;
      break;
    }
    if (!maybe_killed) return true;
  }
  return false;
}

/// The key is absent at every point of [s, e] in every linearization:
/// every write (other than `self`) either starts after e or is certainly
/// followed by a true remove completing before s.
bool certainly_absent(const std::vector<Event>& evs, std::uint64_t s,
                      std::uint64_t e, const Event* self) {
  for (const Event& w : evs) {
    if (&w == self || !is_write(w)) continue;
    if (w.inv > e) continue;
    bool certainly_removed = false;
    for (const Event& r : evs) {
      if (&r == self || !is_true_remove(r)) continue;
      if (r.inv > w.resp && r.resp < s) {
        certainly_removed = true;
        break;
      }
    }
    if (!certainly_removed) return false;
  }
  return true;
}

/// Precise-class classifiers for one key's events. Sound: each rule
/// quantifies only over completed ops via interval containment.
void classify_key(const std::vector<Event>& evs,
                  std::vector<Finding>& out) {
  for (const Event& g : evs) {
    const std::uint64_t s = g.inv;
    const std::uint64_t e = g.resp;
    switch (g.op) {
      case Op::kGet: {
        if (g.value != 0) {
          bool any_writer_of_vid = false;
          bool plausible = false;
          for (const Event& w : evs) {
            if (!is_write(w) || w.value != g.value) continue;
            any_writer_of_vid = true;
            if (w.inv < e && !certainly_dead_before(evs, w, s)) {
              plausible = true;
              break;
            }
          }
          if (!plausible) {
            out.push_back(
                {any_writer_of_vid ? ViolationClass::kStaleRead
                                   : ViolationClass::kPhantomRead,
                 g.key, g.inv,
                 describe(g) +
                     (any_writer_of_vid
                          ? " returned a value every writer of which was "
                            "certainly superseded before the read began"
                          : " returned a value no recorded operation "
                            "ever wrote")});
          }
        } else if (certainly_present(evs, s, e, &g)) {
          out.push_back({ViolationClass::kLostUpdate, g.key, g.inv,
                         describe(g) +
                             " returned absent while the key was "
                             "certainly present for the whole interval"});
        }
        break;
      }
      case Op::kPut:
      case Op::kInsert: {
        if (g.flag && certainly_present(evs, s, e, &g)) {
          out.push_back({ViolationClass::kFlagMismatch, g.key, g.inv,
                         describe(g) +
                             " reported a fresh insert while the key was "
                             "certainly present"});
        } else if (!g.flag && certainly_absent(evs, s, e, &g)) {
          out.push_back({ViolationClass::kFlagMismatch, g.key, g.inv,
                         describe(g) +
                             " reported the key present while it was "
                             "certainly absent"});
        }
        break;
      }
      case Op::kContains:
      case Op::kRemove: {
        if (g.flag && certainly_absent(evs, s, e, &g)) {
          out.push_back({ViolationClass::kFlagMismatch, g.key, g.inv,
                         describe(g) +
                             " reported present while the key was "
                             "certainly absent"});
        } else if (!g.flag && certainly_present(evs, s, e, &g)) {
          out.push_back({ViolationClass::kFlagMismatch, g.key, g.inv,
                         describe(g) +
                             " reported absent while the key was "
                             "certainly present"});
        }
        break;
      }
    }
  }
}

// --- per-key WGL search ----------------------------------------------------

/// The linearize-ahead window: ops linearized out of real-time-index
/// order ahead of `base`. 256 bits — the distance is bounded by how many
/// same-key ops complete while one op stays open, so a heavily preempted
/// thread on an oversubscribed box can legitimately need far more than
/// 64 (observed in the 1-CPU CI stress runs).
constexpr std::size_t kWindow = 256;
using WglMask = std::array<std::uint64_t, kWindow / 64>;

bool mask_bit(const WglMask& m, std::size_t off) noexcept {
  return ((m[off >> 6] >> (off & 63)) & 1) != 0;
}

void mask_set(WglMask& m, std::size_t off) noexcept {
  m[off >> 6] |= std::uint64_t{1} << (off & 63);
}

void mask_shift1(WglMask& m) noexcept {
  for (std::size_t w = 0; w + 1 < m.size(); ++w) {
    m[w] = (m[w] >> 1) | (m[w + 1] << 63);
  }
  m.back() >>= 1;
}

/// DFS state: ops[0..base) all linearized, `mask` marks linearized ops
/// in the window [base, base+kWindow), `reg` is the register value.
struct WglState {
  std::size_t base = 0;
  WglMask mask{};
  std::uint64_t reg = 0;
  bool operator==(const WglState& o) const noexcept {
    return base == o.base && mask == o.mask && reg == o.reg;
  }
};
struct WglStateHash {
  std::size_t operator()(const WglState& s) const noexcept {
    std::uint64_t h = s.base * 0x9E3779B97F4A7C15ull;
    for (const std::uint64_t w : s.mask) {
      h ^= w + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    h ^= s.reg + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

enum class WglOutcome { kLinearizable, kNoWitness, kLimit };

/// Apply one op to `reg` per the sequential spec; false if the recorded
/// response contradicts the state (transition illegal in this order).
bool apply_op(const Event& o, std::uint64_t& reg) noexcept {
  switch (o.op) {
    case Op::kPut:
      if (o.flag != (reg == 0)) return false;
      reg = o.value;
      return true;
    case Op::kInsert:
      if (reg == 0) {
        if (!o.flag) return false;
        reg = o.value;
      } else if (o.flag) {
        return false;
      }
      return true;
    case Op::kGet:
      return o.value == reg;
    case Op::kContains:
      return o.flag == (reg != 0);
    case Op::kRemove:
      if (o.flag != (reg != 0)) return false;
      reg = 0;
      return true;
  }
  return false;
}

/// Exact per-key linearizability: is there an order of the ops — one
/// linearization point inside each [inv, resp] — that the sequential
/// spec accepts? Ops must be sorted by inv. The candidate rule is Wing &
/// Gong's: o may go next iff no other pending op responded before o was
/// invoked. Memoization collapses revisited (prefix, window, register)
/// states; kWindow bounds per-key concurrency (out-of-order distance),
/// kMaxVisited bounds the search outright.
WglOutcome wgl_check(const std::vector<Event>& evs) {
  constexpr std::size_t kMaxVisited = std::size_t{1} << 21;
  const std::size_t n = evs.size();
  std::unordered_set<WglState, WglStateHash> visited;
  std::vector<WglState> stack{{0, {}, 0}};
  visited.insert(stack.back());
  while (!stack.empty()) {
    const WglState st = stack.back();
    stack.pop_back();
    if (st.base == n) return WglOutcome::kLinearizable;
    // Minimum response among pending ops bounds the candidates.
    std::uint64_t min_resp = ~std::uint64_t{0};
    for (std::size_t i = st.base; i < n; ++i) {
      const bool done =
          i - st.base < kWindow && mask_bit(st.mask, i - st.base);
      if (done) continue;
      min_resp = std::min(min_resp, evs[i].resp);
      // Pending ops invoked after min_resp can't constrain it further,
      // but later ops may still; keep scanning only while inv could
      // undercut the current minimum.
      if (i + 1 < n && evs[i + 1].inv > min_resp) break;
    }
    for (std::size_t i = st.base; i < n && evs[i].inv <= min_resp; ++i) {
      const std::size_t off = i - st.base;
      if (off >= kWindow) return WglOutcome::kLimit;
      if (mask_bit(st.mask, off)) continue;
      WglState next = st;
      if (!apply_op(evs[i], next.reg)) continue;
      mask_set(next.mask, off);
      while (mask_bit(next.mask, 0)) {
        mask_shift1(next.mask);
        ++next.base;
      }
      if (visited.size() >= kMaxVisited) return WglOutcome::kLimit;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return WglOutcome::kNoWitness;
}

// --- scan rules ------------------------------------------------------------

void check_scan(const ScanEvent& sc,
                const std::map<std::int64_t, std::vector<Event>>& per_key,
                std::vector<Finding>& out) {
  static const std::vector<Event> kNoEvents;
  const std::uint64_t s = sc.inv;
  const std::uint64_t e = sc.resp;

  // Output shape: strictly ascending keys, all >= start.
  for (std::size_t i = 0; i < sc.out.size(); ++i) {
    const std::int64_t k = sc.out[i].first;
    if (k < sc.start || (i > 0 && sc.out[i - 1].first >= k)) {
      out.push_back({ViolationClass::kScanOrder, k, sc.inv,
                     "scan(start=" + std::to_string(sc.start) +
                         ") output not strictly ascending at key " +
                         std::to_string(k)});
      return;  // one order diagnostic per scan is enough
    }
  }

  // Each returned pair must be plausibly current somewhere in [s, e].
  for (const auto& [k, v] : sc.out) {
    const auto it = per_key.find(k);
    const std::vector<Event>& evs =
        it == per_key.end() ? kNoEvents : it->second;
    if (v != 0) {
      bool any_writer_of_vid = false;
      bool plausible = false;
      for (const Event& w : evs) {
        if (!is_write(w) || w.value != v) continue;
        any_writer_of_vid = true;
        if (w.inv < e && !certainly_dead_before(evs, w, s)) {
          plausible = true;
          break;
        }
      }
      if (!plausible) {
        out.push_back({any_writer_of_vid ? ViolationClass::kScanStale
                                         : ViolationClass::kScanPhantom,
                       k, sc.inv,
                       "scan returned key " + std::to_string(k) +
                           (any_writer_of_vid
                                ? " with a value certainly superseded "
                                  "before the scan began"
                                : " with a value nothing ever wrote")});
      }
    } else if (certainly_absent(evs, s, e, nullptr)) {
      out.push_back({ViolationClass::kScanPhantom, k, sc.inv,
                     "scan reported key " + std::to_string(k) +
                         " present while it was certainly absent"});
    }
  }

  // Keys certainly present throughout [s, e] and inside the returned
  // range must appear. Respect the limit: with a full output, only keys
  // up to the last returned one were owed.
  const bool full = sc.out.size() >= sc.limit && sc.limit > 0;
  const std::int64_t last_key =
      sc.out.empty() ? sc.start : sc.out.back().first;
  for (const auto& [k, evs] : per_key) {
    if (k < sc.start) continue;
    if (full && k > last_key) continue;
    if (!certainly_present(evs, s, e, nullptr)) continue;
    bool returned = false;
    for (const auto& p : sc.out) {
      if (p.first == k) {
        returned = true;
        break;
      }
    }
    if (!returned) {
      out.push_back({ViolationClass::kScanDropped, k, sc.inv,
                     "scan(start=" + std::to_string(sc.start) +
                         ", limit=" + std::to_string(sc.limit) +
                         ") dropped key " + std::to_string(k) +
                         ", certainly present for the whole interval"});
    }
  }
}

std::map<std::int64_t, std::vector<Event>> group_by_key(const History& h) {
  std::map<std::int64_t, std::vector<Event>> per_key;
  for (const Event& e : h.events) per_key[e.key].push_back(e);
  for (auto& [k, evs] : per_key) {
    std::stable_sort(evs.begin(), evs.end(),
                     [](const Event& a, const Event& b) {
                       return a.inv != b.inv ? a.inv < b.inv
                                             : a.resp < b.resp;
                     });
  }
  return per_key;
}

}  // namespace

std::vector<Finding> check_history(const History& h) {
  std::vector<Finding> out;
  const auto per_key = group_by_key(h);
  for (const auto& [k, evs] : per_key) {
    const std::size_t before = out.size();
    classify_key(evs, out);
    if (out.size() != before) continue;  // precise classes beat "no witness"
    switch (wgl_check(evs)) {
      case WglOutcome::kLinearizable:
        break;
      case WglOutcome::kNoWitness:
        out.push_back({ViolationClass::kNonLinearizable, k,
                       evs.empty() ? 0 : evs.front().inv,
                       "no linearization of the " +
                           std::to_string(evs.size()) + " ops on key " +
                           std::to_string(k) +
                           " satisfies the sequential spec"});
        break;
      case WglOutcome::kLimit:
        out.push_back({ViolationClass::kSearchLimit, k,
                       evs.empty() ? 0 : evs.front().inv,
                       "WGL search budget exceeded on key " +
                           std::to_string(k) + " (inconclusive)"});
        break;
    }
  }
  for (const ScanEvent& sc : h.scans) check_scan(sc, per_key, out);
  return out;
}

std::vector<Finding> check_durable(
    const History& h, std::uint64_t cut,
    const std::map<std::int64_t, std::uint64_t>& recovered) {
  static const std::vector<Event> kNoEvents;
  std::vector<Finding> out;
  const auto per_key = group_by_key(h);

  auto check_key = [&](std::int64_t k, const std::vector<Event>& evs) {
    const auto rit = recovered.find(k);
    const std::uint64_t rv = rit == recovered.end() ? 0 : rit->second;
    if (rv != 0) {
      // The recovered value needs a writer that could have linearized
      // before the cut and was not certainly superseded by then.
      bool any_writer_of_vid = false;
      bool plausible = false;
      for (const Event& w : evs) {
        if (!is_write(w) || w.value != rv) continue;
        any_writer_of_vid = true;
        if (w.inv < cut && !certainly_dead_before(evs, w, cut)) {
          plausible = true;
          break;
        }
      }
      if (!plausible) {
        out.push_back({any_writer_of_vid ? ViolationClass::kDurableLost
                                         : ViolationClass::kDurablePhantom,
                       k, cut,
                       "image at tick " + std::to_string(cut) +
                           " recovered key " + std::to_string(k) +
                           (any_writer_of_vid
                                ? " with a value certainly superseded "
                                  "by a completed-before-crash op"
                                : " with a value nothing ever wrote")});
      }
    } else if (certainly_present(evs, cut, cut, nullptr)) {
      out.push_back({ViolationClass::kDurableLost, k, cut,
                     "image at tick " + std::to_string(cut) +
                         " lost key " + std::to_string(k) +
                         ", certainly present at the crash point"});
    }
  };

  for (const auto& [k, evs] : per_key) check_key(k, evs);
  for (const auto& [k, rv] : recovered) {
    (void)rv;
    if (per_key.find(k) == per_key.end()) check_key(k, kNoEvents);
  }
  return out;
}

}  // namespace flit::check
