#include "check/lincheck.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace flit::check {

const char* to_string(LifetimeViolation v) noexcept {
  switch (v) {
    case LifetimeViolation::kEarlyReclaim: return "early reclamation";
    case LifetimeViolation::kUseAfterFree: return "use after free";
    case LifetimeViolation::kUnprotectedDeref: return "unprotected deref";
    case LifetimeViolation::kStaleDeref: return "post-grace deref";
  }
  return "unknown";
}

// --- Recorder --------------------------------------------------------------

namespace {

struct Log {
  // Owner thread appends; the mutex only serializes against the quiescent
  // snapshot()/reset(), so the fast path takes an uncontended lock.
  std::mutex mu;
  std::vector<Event> events;
  std::vector<ScanEvent> scans;
};

// persist-lint: allow(checker bookkeeping — heap-resident, never durable)
struct RecorderState {
  std::atomic<bool> armed{false};
  std::atomic<std::uint64_t> tick{1};
  std::mutex registry_mu;
  std::vector<std::shared_ptr<Log>> logs;
};

// Immortal, like PersistCheck::Impl: hook calls may still arrive during
// static destruction of test fixtures' worker helpers.
RecorderState& rec() {
  static RecorderState* s = new RecorderState();
  return *s;
}

Log& tls_log() {
  thread_local std::shared_ptr<Log> log = [] {
    auto l = std::make_shared<Log>();
    RecorderState& s = rec();
    std::lock_guard<std::mutex> lk(s.registry_mu);
    s.logs.push_back(l);
    return l;
  }();
  return *log;
}

}  // namespace

Recorder& Recorder::instance() {
  static Recorder* r = new Recorder();
  return *r;
}

void Recorder::arm() noexcept {
  rec().armed.store(true, std::memory_order_seq_cst);
}
void Recorder::disarm() noexcept {
  rec().armed.store(false, std::memory_order_seq_cst);
}
bool Recorder::armed() const noexcept {
  return rec().armed.load(std::memory_order_seq_cst);
}

std::uint64_t Recorder::now() const noexcept {
  return rec().tick.load(std::memory_order_seq_cst);
}

std::uint64_t Recorder::begin() noexcept {
  RecorderState& s = rec();
  if (!s.armed.load(std::memory_order_seq_cst)) return kNoTick;
  // seq_cst so the tick order is a legal global order of the stamping
  // instants: if op A responds before op B is invoked in real time, A's
  // resp tick is smaller than B's inv tick.
  return s.tick.fetch_add(1, std::memory_order_seq_cst);
}

void Recorder::end(std::uint64_t inv, Op op, std::int64_t key,
                   std::uint64_t value, bool flag) {
  if (inv == kNoTick) return;
  const std::uint64_t resp = rec().tick.fetch_add(1, std::memory_order_seq_cst);
  Log& l = tls_log();
  std::lock_guard<std::mutex> lk(l.mu);
  l.events.push_back({inv, resp, key, value, op, flag});
}

void Recorder::end_scan(std::uint64_t inv, std::int64_t start,
                        std::size_t limit,
                        std::vector<std::pair<std::int64_t, std::uint64_t>>
                            out) {
  if (inv == kNoTick) return;
  const std::uint64_t resp = rec().tick.fetch_add(1, std::memory_order_seq_cst);
  Log& l = tls_log();
  std::lock_guard<std::mutex> lk(l.mu);
  l.scans.push_back({inv, resp, start, limit, std::move(out)});
}

History Recorder::snapshot() const {
  RecorderState& s = rec();
  History h;
  std::lock_guard<std::mutex> lk(s.registry_mu);
  for (const std::shared_ptr<Log>& l : s.logs) {
    std::lock_guard<std::mutex> llk(l->mu);
    h.events.insert(h.events.end(), l->events.begin(), l->events.end());
    h.scans.insert(h.scans.end(), l->scans.begin(), l->scans.end());
  }
  return h;
}

void Recorder::reset() {
  RecorderState& s = rec();
  std::lock_guard<std::mutex> lk(s.registry_mu);
  for (const std::shared_ptr<Log>& l : s.logs) {
    std::lock_guard<std::mutex> llk(l->mu);
    l->events.clear();
    l->scans.clear();
  }
  s.tick.store(1, std::memory_order_seq_cst);
}

// --- Lifetime --------------------------------------------------------------

namespace {

struct LifetimeEntry {
  std::uint64_t retire_epoch = 0;
  const char* site = "";
  bool freed = false;
};

struct LifetimeState {
  // Exact node addresses; ordered so on_alloc can erase the recycled range.
  std::shared_mutex mu;
  std::map<std::uintptr_t, LifetimeEntry> retired;

  // persist-lint: allow(violation counters — checker state, never durable)
  std::atomic<std::uint64_t> counts[kLifetimeViolationKinds] = {};
  std::once_flag atexit_once;

  static constexpr std::size_t kMaxDiags = 32;
  std::mutex diag_mu;
  std::vector<std::string> diags;
  const char* first_site = "";

  void report(LifetimeViolation v, const char* site, const void* p) {
    counts[static_cast<int>(v)].fetch_add(1, std::memory_order_acq_rel);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "LinCheck: %s at %s (node %p)",
                  to_string(v), site, p);
    std::fprintf(stderr, "%s\n", buf);
    std::lock_guard<std::mutex> lk(diag_mu);
    if (diags.empty()) first_site = site;
    if (diags.size() < kMaxDiags) diags.emplace_back(buf);
  }
};

LifetimeState& lt() {
  static LifetimeState* s = new LifetimeState();
  return *s;
}

void arm_exit_report() {
  std::call_once(lt().atexit_once, [] {
    std::atexit([] {
      Lifetime& l = Lifetime::instance();
      const std::uint64_t total = l.total_violations();
      if (total == 0) return;
      LifetimeState& s = lt();
      std::fprintf(stderr,
                   "LinCheck: %llu unacknowledged lifetime violation(s) "
                   "at exit:\n",
                   static_cast<unsigned long long>(total));
      {
        std::lock_guard<std::mutex> lk(s.diag_mu);
        for (const std::string& d : s.diags) {
          std::fprintf(stderr, "  %s\n", d.c_str());
        }
      }
      std::_Exit(1);
    });
  });
}

}  // namespace

Lifetime& Lifetime::instance() {
  static Lifetime* l = new Lifetime();
  return *l;
}

void Lifetime::on_alloc(const void* p, std::size_t len) {
  LifetimeState& s = lt();
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  std::unique_lock<std::shared_mutex> lk(s.mu);
  auto it = s.retired.lower_bound(a);
  while (it != s.retired.end() && it->first < a + len) {
    it = s.retired.erase(it);
  }
}

void Lifetime::on_retire(const void* p, std::uint64_t epoch,
                         const char* site) {
  LifetimeState& s = lt();
  std::unique_lock<std::shared_mutex> lk(s.mu);
  s.retired[reinterpret_cast<std::uintptr_t>(p)] = {epoch, site, false};
}

void Lifetime::on_free(const void* p, std::uint64_t now, bool quiescent) {
  LifetimeState& s = lt();
  const char* site = "";
  std::uint64_t retire_epoch = 0;
  bool tracked = false;
  {
    std::unique_lock<std::shared_mutex> lk(s.mu);
    auto it = s.retired.find(reinterpret_cast<std::uintptr_t>(p));
    if (it != s.retired.end()) {
      tracked = true;
      site = it->second.site;
      retire_epoch = it->second.retire_epoch;
      it->second.freed = true;
    }
  }
  if (!tracked || quiescent) return;
  // A reader that can still reach this node announced <= retire_epoch + 1
  // (its guard pins the epoch), so freeing is safe once the global epoch
  // has moved two past the retirement.
  if (now < retire_epoch + 2) {
    arm_exit_report();
    s.report(LifetimeViolation::kEarlyReclaim, site, p);
  }
}

void Lifetime::on_deref(const void* p, std::uint64_t announce,
                        const char* site) {
  LifetimeState& s = lt();
  std::uint64_t retire_epoch = 0;
  bool tracked = false;
  bool freed = false;
  {
    std::shared_lock<std::shared_mutex> lk(s.mu);
    auto it = s.retired.find(reinterpret_cast<std::uintptr_t>(p));
    if (it != s.retired.end()) {
      tracked = true;
      retire_epoch = it->second.retire_epoch;
      freed = it->second.freed;
    }
  }
  if (!tracked) return;  // live node, never retired
  arm_exit_report();
  if (freed) {
    s.report(LifetimeViolation::kUseAfterFree, site, p);
  } else if (announce == recl::Ebr::kIdleEpoch) {
    s.report(LifetimeViolation::kUnprotectedDeref, site, p);
  } else if (announce >= retire_epoch + 2) {
    // The retirer's unlink happened before its retire; a guard entered
    // two epochs later can only reach the node via a leaked pointer.
    s.report(LifetimeViolation::kStaleDeref, site, p);
  }
}

std::uint64_t Lifetime::violations(LifetimeViolation v) const noexcept {
  return lt().counts[static_cast<int>(v)].load(std::memory_order_acquire);
}

std::uint64_t Lifetime::total_violations() const noexcept {
  std::uint64_t t = 0;
  for (int i = 0; i < kLifetimeViolationKinds; ++i) {
    t += violations(static_cast<LifetimeViolation>(i));
  }
  return t;
}

const char* Lifetime::first_violation_site() const noexcept {
  LifetimeState& s = lt();
  std::lock_guard<std::mutex> lk(s.diag_mu);
  return s.first_site;
}

void Lifetime::reset_violations() noexcept {
  LifetimeState& s = lt();
  for (auto& c : s.counts) c.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lk(s.diag_mu);
  s.diags.clear();
  s.first_site = "";
}

void Lifetime::clear() {
  LifetimeState& s = lt();
  std::unique_lock<std::shared_mutex> lk(s.mu);
  s.retired.clear();
}

// --- seeded bugs -----------------------------------------------------------

namespace {

// persist-lint: allow(seeded-bug switchboard — test-only volatile state)
struct UnsafeState {
  std::atomic<int> mode{-1};  // -1 = env not read yet
  std::mutex mu;
  std::vector<std::function<void()>> pending;
};

UnsafeState& us() {
  static UnsafeState* s = new UnsafeState();
  return *s;
}

int parse_unsafe_env() noexcept {
  const char* e = std::getenv("FLIT_LINCHECK_UNSAFE");
  if (e == nullptr) return static_cast<int>(UnsafeMode::kNone);
  if (std::strcmp(e, "stale_read") == 0) {
    return static_cast<int>(UnsafeMode::kStaleRead);
  }
  if (std::strcmp(e, "lost_update") == 0) {
    return static_cast<int>(UnsafeMode::kLostUpdate);
  }
  if (std::strcmp(e, "early_retire") == 0) {
    return static_cast<int>(UnsafeMode::kEarlyRetire);
  }
  std::fprintf(stderr,
               "LinCheck: unknown FLIT_LINCHECK_UNSAFE value '%s' "
               "(want stale_read|lost_update|early_retire)\n",
               e);
  return static_cast<int>(UnsafeMode::kNone);
}

}  // namespace

UnsafeMode unsafe_mode() noexcept {
  UnsafeState& s = us();
  int m = s.mode.load(std::memory_order_acquire);
  if (m < 0) {
    int parsed = parse_unsafe_env();
    int expected = -1;
    if (!s.mode.compare_exchange_strong(expected, parsed,
                                        std::memory_order_acq_rel)) {
      parsed = expected;
    }
    m = parsed;
  }
  return static_cast<UnsafeMode>(m);
}

void set_unsafe_mode(UnsafeMode m) noexcept {
  us().mode.store(static_cast<int>(m), std::memory_order_release);
}

void unsafe_defer(std::function<void()> fn) {
  UnsafeState& s = us();
  std::lock_guard<std::mutex> lk(s.mu);
  s.pending.push_back(std::move(fn));
}

void unsafe_apply_pending() {
  UnsafeState& s = us();
  std::vector<std::function<void()>> work;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    work.swap(s.pending);
  }
  for (const auto& fn : work) fn();
}

}  // namespace flit::check
