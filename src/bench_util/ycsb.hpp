// ycsb.hpp — YCSB-style workloads for the KV store (src/kv/).
//
// The set microbenchmark in workload.hpp reproduces the paper's §6.1
// protocol. The KV subsystem is evaluated the way PPoPP-artifact KV
// systems usually are: the YCSB core workloads (Cooper et al., SoCC'10)
// over a zipfian key popularity distribution.
//
//   A  50% read / 50% update          zipfian
//   B  95% read /  5% update          zipfian
//   C 100% read                       zipfian
//   D  95% read /  5% insert          read-latest (reads skew to the
//                                     newest inserted keys)
//   E  95% scan /  5% insert          zipfian start key, short scans
//                                     (uniform length 1..100)
//   F  50% read / 50% RMW             zipfian (read-modify-write: get,
//                                     bump the payload version, put)
//
// "Update" means put on an existing key; "insert" extends the keyspace;
// "scan" is an ordered range read of up to `max_scan_len` keys starting
// at the picked key — it needs a KV with a scan(start, n, out) member
// (kv::OrderedStore), and run_ycsb rejects mixes with scans on stores
// without one. Keys are scrambled (hashed rank) as in YCSB's
// ScrambledZipfian so the hottest keys are spread across shards and
// buckets instead of clustering at 0..k.
//
// F's read-modify-write hammers put-over-existing-key — the overwrite
// path — and is *verified*: each RMW key is thread-exclusive (the picked
// zipfian key is remapped into the thread's residue class mod nthreads),
// so the writer knows exactly which payload version its read must
// observe. A read that comes back absent, torn, or at any version other
// than the last one written is a lost update (counted in
// YcsbResult::lost_updates) — precisely the failure mode of a
// non-atomic remove+insert overwrite.
//
// With YcsbConfig::batch > 1 the non-scan mixes run through the store's
// multi-op API instead: each worker assembles `batch` picked ops and
// issues one multi_get for the reads and one multi_put for the writes,
// with identical verification (RMW version chains stay exact across
// in-batch duplicate keys — see the batched loop in run_ycsb).
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util/workload.hpp"
#include "pmem/stats.hpp"
#include "recl/ebr.hpp"

namespace flit::bench {

/// Zipfian rank generator over [0, n) with parameter theta (YCSB default
/// 0.99), after Gray et al.'s rejection-free method as used in YCSB's
/// ZipfianGenerator. Construction is O(n) (the zeta sum); next() is O(1).
class Zipfian {
 public:
  explicit Zipfian(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    if (n == 0 || theta <= 0.0 || theta >= 1.0) {
      // theta == 1 (classic Zipf) needs the harmonic special case this
      // implementation deliberately omits; fail fast instead of handing
      // back inf/NaN ranks.
      throw std::invalid_argument("Zipfian: need n > 0 and 0 < theta < 1");
    }
    zetan_ = zeta(n_, theta_);
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// zeta(n, theta) = Σ_{i=1..n} i^-theta, memoized for the process
  /// lifetime. Benchmark sweeps construct a fresh generator per phase
  /// over the same (n, theta) pair, and the O(n) std::pow loop was
  /// dominating sweep setup — repeated pairs now hit the cache instead of
  /// rescanning the keyspace. Thread-safe; a racing first computation of
  /// the same pair is benign (both sides produce the same value).
  static double zeta(std::uint64_t n, double theta) {
    static std::mutex mu;
    static std::map<std::pair<std::uint64_t, double>, double> cache;
    const std::pair<std::uint64_t, double> key{n, theta};
    {
      std::lock_guard<std::mutex> lk(mu);
      if (const auto it = cache.find(key); it != cache.end()) {
        return it->second;
      }
    }
    double z = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    std::lock_guard<std::mutex> lk(mu);
    return cache.emplace(key, z).first->second;
  }

  /// Zipf-distributed rank in [0, n): rank 0 is the most popular.
  std::uint64_t next(Rng& rng) const noexcept {
    const double u = rng.next_unit();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < zeta2_) return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= n_ ? n_ - 1 : r;
  }

  /// ScrambledZipfian: hash the rank so popular keys are spread uniformly
  /// over the keyspace (still in [0, n)).
  std::uint64_t next_scrambled(Rng& rng) const noexcept {
    return scramble(next(rng)) % n_;
  }

  std::uint64_t n() const noexcept { return n_; }

  static std::uint64_t scramble(std::uint64_t x) noexcept {
    // fmix64 (splitmix finalizer) — stationary, cheap, well mixed.
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

 private:
  std::uint64_t n_;
  double theta_, alpha_, zetan_, eta_, zeta2_;
};

enum class YcsbOp { kRead, kUpdate, kInsert, kScan, kRmw };

/// One YCSB core-workload mix.
struct YcsbMix {
  const char* name;
  double read_frac;    ///< remainder splits update/insert/rmw/scan below
  double update_frac;  ///< put on an existing key
  double insert_frac;  ///< put on a fresh key (extends the keyspace)
  bool read_latest;    ///< D: reads skew towards recently inserted keys
  /// E: remaining fraction is ordered scans (needs an ordered store).
  double scan_frac = 0.0;
  /// Scan lengths are uniform in [1, max_scan_len] (YCSB default 100).
  std::uint64_t max_scan_len = 100;
  /// F: verified read-modify-write on a thread-exclusive key.
  double rmw_frac = 0.0;

  YcsbOp pick(Rng& rng) const noexcept {
    const double r = rng.next_unit();
    if (r < read_frac) return YcsbOp::kRead;
    if (r < read_frac + update_frac) return YcsbOp::kUpdate;
    if (r < read_frac + update_frac + insert_frac) return YcsbOp::kInsert;
    if (r < read_frac + update_frac + insert_frac + rmw_frac) {
      return YcsbOp::kRmw;
    }
    return YcsbOp::kScan;
  }

  static constexpr YcsbMix a() { return {"A", 0.50, 0.50, 0.0, false}; }
  static constexpr YcsbMix b() { return {"B", 0.95, 0.05, 0.0, false}; }
  static constexpr YcsbMix c() { return {"C", 1.00, 0.00, 0.0, false}; }
  static constexpr YcsbMix d() { return {"D", 0.95, 0.00, 0.05, true}; }
  static constexpr YcsbMix e() {
    return {"E", 0.00, 0.00, 0.05, false, 0.95, 100};
  }
  static constexpr YcsbMix f() {
    return {"F", 0.50, 0.00, 0.00, false, 0.0, 100, 0.50};
  }
};

struct YcsbConfig {
  YcsbMix mix = YcsbMix::b();
  int threads = 4;
  std::uint64_t record_count = 10'000;  ///< prefilled keys
  std::size_t value_bytes = 100;        ///< YCSB default: ~100B values
  double zipf_theta = 0.99;
  double duration_s = 1.0;
  std::uint64_t seed = 0x5EEDu;
  /// >1: each worker assembles `batch` picked ops and issues them through
  /// the store's multi-op API — one multi_get for the reads (plain and
  /// RMW), one multi_put for the writes. Scan mixes cannot be batched.
  std::size_t batch = 1;
};

/// Deterministic value payload for key k: an 8-byte key stamp, an 8-byte
/// little-endian version (0 for plain loads/updates; F's read-modify-
/// write bumps it), then filler — so readers can verify what they fetch
/// byte for byte.
inline std::string ycsb_value(std::int64_t k, std::size_t len,
                              std::uint64_t version = 0) {
  std::string v(len, static_cast<char>('a' + (k & 0xF)));
  const auto stamp = static_cast<std::uint64_t>(k);
  for (std::size_t i = 0; i < sizeof(stamp) && i < len; ++i) {
    v[i] = static_cast<char>((stamp >> (8 * i)) & 0xFF);
  }
  for (std::size_t i = 0; i < sizeof(version) && sizeof(stamp) + i < len;
       ++i) {
    v[sizeof(stamp) + i] = static_cast<char>((version >> (8 * i)) & 0xFF);
  }
  return v;
}

/// True if `v` is a plausible ycsb_value for k (checks the key stamp).
inline bool ycsb_value_matches(std::int64_t k, const std::string& v,
                               std::size_t len) {
  if (v.size() != len) return false;
  const auto stamp = static_cast<std::uint64_t>(k);
  for (std::size_t i = 0; i < sizeof(stamp) && i < len; ++i) {
    if (v[i] != static_cast<char>((stamp >> (8 * i)) & 0xFF)) return false;
  }
  return true;
}

struct YcsbResult {
  std::uint64_t total_ops = 0;
  std::uint64_t read_misses = 0;      ///< reads/scans that found nothing
  std::uint64_t value_mismatches = 0; ///< payload/order verification fails
  /// F: RMW reads that observed anything but the thread's last committed
  /// version for that (thread-exclusive) key — a dropped overwrite.
  std::uint64_t lost_updates = 0;
  std::uint64_t scan_entries = 0;     ///< pairs returned across all scans
  double seconds = 0.0;
  pmem::StatsSnapshot persistence;

  double mops() const noexcept {
    return seconds > 0 ? static_cast<double>(total_ops) / seconds / 1e6 : 0;
  }
  double pwbs_per_op() const noexcept {
    return total_ops > 0 ? static_cast<double>(persistence.pwbs) /
                               static_cast<double>(total_ops)
                         : 0;
  }
  double pfences_per_op() const noexcept {
    return total_ops > 0 ? static_cast<double>(persistence.pfences) /
                               static_cast<double>(total_ops)
                         : 0;
  }
  /// Redundancy lint, per op. empty_pfences is counted in every build;
  /// redundant_pwbs stays 0 unless FLIT_PERSIST_CHECK tracks line state.
  double redundant_pwbs_per_op() const noexcept {
    return total_ops > 0 ? static_cast<double>(persistence.redundant_pwbs) /
                               static_cast<double>(total_ops)
                         : 0;
  }
  double empty_pfences_per_op() const noexcept {
    return total_ops > 0 ? static_cast<double>(persistence.empty_pfences) /
                               static_cast<double>(total_ops)
                         : 0;
  }
};

/// Load phase: put keys [0, record_count) with deterministic payloads.
/// `KV` needs put/get/remove over (int64 key, string_view value).
template <class KV>
void ycsb_load(KV& kv, const YcsbConfig& cfg) {
  for (std::uint64_t k = 0; k < cfg.record_count; ++k) {
    kv.put(static_cast<std::int64_t>(k),
           ycsb_value(static_cast<std::int64_t>(k), cfg.value_bytes));
  }
}

/// Timed run phase. Reads verify the fetched payload's key stamp; scans
/// (mix E) additionally verify that returned keys are strictly ascending
/// and start at or after the requested key. The returned counters give
/// the run teeth (a store that loses, cross-wires, or mis-orders records
/// shows up as misses/mismatches, not just as throughput). `zipf` must
/// have been built over cfg.record_count — pass one generator into
/// repeated runs (its construction is O(n)); the two-argument overload
/// below builds it for one-off calls. Throws std::invalid_argument if the
/// mix contains scans but KV has no scan(start, n, out) member.
template <class KV>
YcsbResult run_ycsb(KV& kv, const YcsbConfig& cfg, const Zipfian& zipf) {
  constexpr bool kHasScan = requires(
      const KV& c, std::int64_t k, std::size_t n,
      std::vector<std::pair<std::int64_t, std::string>>& out) {
    { c.scan(k, n, out) } -> std::convertible_to<std::size_t>;
  };
  if (cfg.mix.scan_frac > 0.0 && !kHasScan) {
    throw std::invalid_argument(
        "run_ycsb: a scan mix needs an ordered store (kv::OrderedStore)");
  }
  constexpr bool kHasMulti = requires(
      KV& m, const KV& c, std::span<const std::int64_t> ks,
      std::span<const std::pair<std::int64_t, std::string_view>> ps) {
    { c.multi_get(ks) };
    { m.multi_put(ps) };
  };
  if (cfg.batch > 1) {
    if (cfg.mix.scan_frac > 0.0) {
      throw std::invalid_argument(
          "run_ycsb: scan mixes cannot be batched (use batch = 1 for E)");
    }
    if (!kHasMulti) {
      throw std::invalid_argument(
          "run_ycsb: batch > 1 needs a store with multi_get/multi_put");
    }
  }
  if (cfg.mix.rmw_frac > 0.0 &&
      cfg.record_count < static_cast<std::uint64_t>(cfg.threads)) {
    // RMW keys are striped by thread residue class; every thread needs at
    // least one key of its own or the remap below would leave the
    // prefilled keyspace.
    throw std::invalid_argument(
        "run_ycsb: an RMW mix needs record_count >= threads");
  }
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  // D/E's insert frontier: the next fresh key (shared across threads).
  std::atomic<std::uint64_t> frontier{cfg.record_count};

  struct PerThread {
    std::uint64_t ops = 0, misses = 0, mismatches = 0, lost = 0,
                  scanned = 0;
  };
  std::vector<PerThread> per_thread(static_cast<std::size_t>(cfg.threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.threads));

  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(cfg.seed + 0x9000ull * static_cast<std::uint64_t>(t + 1));
      PerThread local;
      std::vector<std::pair<std::int64_t, std::string>> scan_buf;
      // F: this thread's last committed version per owned key (key kk is
      // owned by thread kk % threads and indexed by kk / threads).
      const auto nthreads = static_cast<std::uint64_t>(cfg.threads);
      std::vector<std::uint64_t> rmw_version;
      if (cfg.mix.rmw_frac > 0.0) {
        rmw_version.assign(
            static_cast<std::size_t>(cfg.record_count / nthreads + 1), 0);
      }
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (cfg.batch > 1) {
        if constexpr (kHasMulti) {
          // Batched mode: assemble cfg.batch picked ops, then issue one
          // multi_get for every read (plain and RMW) and one multi_put
          // for every write. Reads of a key the same batch also writes
          // observe the pre-batch value (gets run before puts), which
          // keeps every verification below exact: an RMW key picked
          // multiple times in one batch reads the last *committed*
          // version once per occurrence and writes committed+occurrence
          // versions in order (multi_put applies duplicates in batch
          // order — last value wins).
          std::vector<std::int64_t> get_keys;
          std::vector<std::uint8_t> get_is_rmw;
          std::vector<std::uint64_t> get_expect;  // RMW: pre-batch version
          std::vector<std::size_t> get_veridx;    // RMW: rmw_version index
          std::vector<std::pair<std::int64_t, std::string>> put_store;
          std::vector<std::pair<std::int64_t, std::string_view>> put_view;
          while (!stop.load(std::memory_order_relaxed)) {
            get_keys.clear();
            get_is_rmw.clear();
            get_expect.clear();
            get_veridx.clear();
            put_store.clear();
            for (std::size_t b = 0; b < cfg.batch; ++b) {
              std::int64_t k;
              switch (cfg.mix.pick(rng)) {
                case YcsbOp::kRead: {
                  if (cfg.mix.read_latest) {
                    const std::uint64_t hi =
                        frontier.load(std::memory_order_relaxed);
                    const std::uint64_t back = zipf.next(rng) % hi;
                    k = static_cast<std::int64_t>(hi - 1 - back);
                  } else {
                    k = static_cast<std::int64_t>(zipf.next_scrambled(rng));
                  }
                  get_keys.push_back(k);
                  get_is_rmw.push_back(0);
                  get_expect.push_back(0);
                  get_veridx.push_back(0);
                  break;
                }
                case YcsbOp::kUpdate:
                  k = static_cast<std::int64_t>(zipf.next_scrambled(rng));
                  put_store.emplace_back(k, ycsb_value(k, cfg.value_bytes));
                  break;
                case YcsbOp::kInsert:
                  k = static_cast<std::int64_t>(
                      frontier.fetch_add(1, std::memory_order_relaxed));
                  put_store.emplace_back(k, ycsb_value(k, cfg.value_bytes));
                  break;
                case YcsbOp::kRmw: {
                  const std::uint64_t r0 = zipf.next_scrambled(rng);
                  std::uint64_t kk =
                      r0 - r0 % nthreads + static_cast<std::uint64_t>(t);
                  if (kk >= cfg.record_count) kk -= nthreads;
                  k = static_cast<std::int64_t>(kk);
                  const std::size_t idx =
                      static_cast<std::size_t>(kk / nthreads);
                  // rmw_version is only advanced after the batch commits,
                  // so it is the pre-batch version every in-batch read of
                  // this key must observe; prior occurrences in this
                  // batch bump the version this occurrence writes.
                  const std::uint64_t base = rmw_version[idx];
                  std::uint64_t occ = 0;
                  for (std::size_t j = 0; j < get_veridx.size(); ++j) {
                    if (get_is_rmw[j] && get_veridx[j] == idx) ++occ;
                  }
                  get_keys.push_back(k);
                  get_is_rmw.push_back(1);
                  get_expect.push_back(base);
                  get_veridx.push_back(idx);
                  put_store.emplace_back(
                      k, ycsb_value(k, cfg.value_bytes, base + occ + 1));
                  break;
                }
                case YcsbOp::kScan:
                  break;  // rejected above; unreachable
              }
            }
            if (!get_keys.empty()) {
              const auto res = kv.multi_get(get_keys);
              for (std::size_t j = 0; j < get_keys.size(); ++j) {
                const std::int64_t gk = get_keys[j];
                if (!res[j]) {
                  ++local.misses;
                  if (get_is_rmw[j]) ++local.lost;
                } else if (!ycsb_value_matches(gk, *res[j],
                                               cfg.value_bytes)) {
                  ++local.mismatches;
                } else if (get_is_rmw[j] &&
                           *res[j] != ycsb_value(gk, cfg.value_bytes,
                                                 get_expect[j])) {
                  ++local.lost;
                }
              }
            }
            if (!put_store.empty()) {
              put_view.clear();
              for (const auto& [pk, pv] : put_store) {
                put_view.emplace_back(pk, std::string_view(pv));
              }
              kv.multi_put(put_view);
              for (std::size_t j = 0; j < get_veridx.size(); ++j) {
                if (get_is_rmw[j]) ++rmw_version[get_veridx[j]];
              }
            }
            local.ops += cfg.batch;
          }
          per_thread[static_cast<std::size_t>(t)] = local;
          return;
        }
      }
      while (!stop.load(std::memory_order_relaxed)) {
        std::int64_t k;
        switch (cfg.mix.pick(rng)) {
          case YcsbOp::kRead: {
            if (cfg.mix.read_latest) {
              // Skew towards the newest keys: newest minus a zipf offset.
              const std::uint64_t hi =
                  frontier.load(std::memory_order_relaxed);
              const std::uint64_t back = zipf.next(rng) % hi;
              k = static_cast<std::int64_t>(hi - 1 - back);
            } else {
              k = static_cast<std::int64_t>(zipf.next_scrambled(rng));
            }
            const auto v = kv.get(k);
            if (!v) {
              ++local.misses;
            } else if (!ycsb_value_matches(k, *v, cfg.value_bytes)) {
              ++local.mismatches;
            }
            break;
          }
          case YcsbOp::kUpdate:
            k = static_cast<std::int64_t>(zipf.next_scrambled(rng));
            kv.put(k, ycsb_value(k, cfg.value_bytes));
            break;
          case YcsbOp::kInsert:
            k = static_cast<std::int64_t>(
                frontier.fetch_add(1, std::memory_order_relaxed));
            kv.put(k, ycsb_value(k, cfg.value_bytes));
            break;
          case YcsbOp::kRmw: {
            // Read-modify-write on a thread-exclusive key: remap the
            // zipfian pick into this thread's residue class so the version
            // chain per key is sequential and any lost update is exactly
            // detectable (popularity skew per class is preserved).
            const std::uint64_t r0 = zipf.next_scrambled(rng);
            std::uint64_t kk =
                r0 - r0 % nthreads + static_cast<std::uint64_t>(t);
            if (kk >= cfg.record_count) kk -= nthreads;
            k = static_cast<std::int64_t>(kk);
            const std::size_t idx = static_cast<std::size_t>(kk / nthreads);
            const std::uint64_t expect = rmw_version[idx];
            const auto v = kv.get(k);
            if (!v) {
              ++local.misses;
              ++local.lost;  // prefilled + never removed: absent = lost
            } else if (!ycsb_value_matches(k, *v, cfg.value_bytes)) {
              ++local.mismatches;
            } else if (*v != ycsb_value(k, cfg.value_bytes, expect)) {
              ++local.lost;  // stale/phantom version: a dropped overwrite
            }
            kv.put(k, ycsb_value(k, cfg.value_bytes, expect + 1));
            rmw_version[idx] = expect + 1;
            break;
          }
          case YcsbOp::kScan:
            if constexpr (kHasScan) {
              k = static_cast<std::int64_t>(zipf.next_scrambled(rng));
              const std::size_t len = static_cast<std::size_t>(
                  1 + rng.next() % cfg.mix.max_scan_len);
              const std::size_t got = kv.scan(k, len, scan_buf);
              // The prefilled keyspace is never shrunk by this mix, so a
              // scan starting at an in-range key must return something.
              if (got == 0) ++local.misses;
              std::int64_t prev = std::numeric_limits<std::int64_t>::min();
              for (const auto& [sk, sv] : scan_buf) {
                if (sk < k || sk <= prev ||
                    !ycsb_value_matches(sk, sv, cfg.value_bytes)) {
                  ++local.mismatches;
                }
                prev = sk;
              }
              local.scanned += got;
            }
            break;
        }
        ++local.ops;
      }
      per_thread[static_cast<std::size_t>(t)] = local;
    });
  }

  const pmem::StatsSnapshot before = pmem::stats_snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.duration_s));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();

  YcsbResult r;
  for (const PerThread& p : per_thread) {
    r.total_ops += p.ops;
    r.read_misses += p.misses;
    r.value_mismatches += p.mismatches;
    r.lost_updates += p.lost;
    r.scan_entries += p.scanned;
  }
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.persistence = pmem::stats_snapshot() - before;
  recl::Ebr::instance().drain_all();
  return r;
}

template <class KV>
YcsbResult run_ycsb(KV& kv, const YcsbConfig& cfg) {
  const Zipfian zipf(cfg.record_count, cfg.zipf_theta);
  return run_ycsb(kv, cfg, zipf);
}

}  // namespace flit::bench
