// workload.hpp — the paper's microbenchmark workload (§6.1).
//
// "Unless stated otherwise, all data structures are tested with three
//  different workloads; 0% updates, 5% updates, and 50% updates. Updates
//  are split 50/50 between inserts and deletes, and chosen randomly."
//
// Keys are drawn uniformly from a range of 2× the target size and the
// structure is prefilled to half the range, so the 50/50 insert/delete mix
// keeps the size stationary.
#pragma once

#include <cstdint>

namespace flit::bench {

/// xorshift128+ — fast, decent-quality per-thread PRNG for key selection.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 seeding.
    s0_ = splitmix(seed);
    s1_ = splitmix(seed + 0x9E3779B97F4A7C15ull);
    if ((s0_ | s1_) == 0) s1_ = 1;
  }

  std::uint64_t next() noexcept {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform real in [0, 1).
  double next_unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t splitmix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t s0_, s1_;
};

enum class OpKind { kContains, kInsert, kRemove };

/// Stateless operation mix: update_pct of operations are updates, split
/// 50/50 insert/delete.
class OpMix {
 public:
  explicit OpMix(double update_pct) noexcept
      : update_frac_(update_pct / 100.0) {}

  OpKind pick(Rng& rng) const noexcept {
    const double r = rng.next_unit();
    if (r >= update_frac_) return OpKind::kContains;
    return (r < update_frac_ / 2) ? OpKind::kInsert : OpKind::kRemove;
  }

 private:
  double update_frac_;
};

struct WorkloadConfig {
  int threads = 4;
  double update_pct = 5.0;       ///< 0, 5, or 50 in the paper
  std::uint64_t key_range = 20'000;  ///< 2× the target structure size
  std::uint64_t prefill = 10'000;    ///< initial keys (= target size)
  double duration_s = 1.0;       ///< paper runs 5s; smoke runs are shorter
  std::uint64_t seed = 0x5EEDu;
};

}  // namespace flit::bench
