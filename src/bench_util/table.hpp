// table.hpp — aligned text-table + CSV emission for the bench binaries.
//
// Every figure binary prints (a) a human-readable table mirroring the
// paper's plot series and (b) machine-readable `CSV,`-prefixed lines so the
// results can be scraped into EXPERIMENTS.md or plotted.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace flit::bench {

/// Incremental `CSV,`-prefixed row emission, shared by every bench binary:
/// construction prints the header line, row() prints one data line. Use
/// this directly when results stream out point by point (the YCSB bench);
/// Table::print_csv uses it for batch emission.
class CsvWriter {
 public:
  CsvWriter(std::string tag, const std::vector<std::string>& headers)
      : tag_(std::move(tag)) {
    emit(headers);
  }

  void row(const std::vector<std::string>& cells) { emit(cells); }

 private:
  void emit(const std::vector<std::string>& cells) {
    std::printf("CSV,%s", tag_.c_str());
    for (const auto& c : cells) std::printf(",%s", c.c_str());
    std::printf("\n");
  }

  std::string tag_;
};

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  static std::string fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }

  static std::string fmt_u(unsigned long long v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", v);
    return buf;
  }

  /// Print the aligned table to stdout.
  void print(const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    std::printf("\n== %s ==\n", title.c_str());
    print_row(headers_, widths);
    std::string sep;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i] + 2, '-');
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row, widths);
  }

  /// Print `CSV,<tag>,<h1>,<h2>,...` then one CSV line per row.
  void print_csv(const std::string& tag) const {
    CsvWriter csv(tag, headers_);
    for (const auto& row : rows_) csv.row(row);
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal flag parsing shared by the bench binaries:
///   --full           run paper-scale parameters (long!)
///   --threads=N      override thread count
///   --seconds=S      override per-point duration
///   --batch=N        restrict a batch sweep to one batch size (ycsb_kv)
struct BenchArgs {
  bool full = false;
  int threads = 0;       // 0 = binary default
  double seconds = 0.0;  // 0 = binary default
  int batch = 0;         // 0 = binary default (full sweep)

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s == "--full") {
        a.full = true;
      } else if (s.rfind("--threads=", 0) == 0) {
        a.threads = std::atoi(s.c_str() + 10);
      } else if (s.rfind("--seconds=", 0) == 0) {
        a.seconds = std::atof(s.c_str() + 10);
      } else if (s.rfind("--batch=", 0) == 0) {
        a.batch = std::atoi(s.c_str() + 8);
      }
    }
    return a;
  }
};

}  // namespace flit::bench
