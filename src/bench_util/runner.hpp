// runner.hpp — timed multi-thread throughput driver for the evaluation
// harness (one binary per paper figure lives in bench/).
//
// The driver prefills the structure, spawns `threads` workers that each run
// the operation mix against the shared structure until the deadline, and
// reports aggregate throughput plus the pwb/pfence counts used by Figure 9.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "pmem/stats.hpp"
#include "recl/ebr.hpp"

namespace flit::bench {

struct RunResult {
  std::uint64_t total_ops = 0;
  double seconds = 0.0;
  pmem::StatsSnapshot persistence;  // pwbs/pfences during the timed phase

  double mops() const noexcept {
    return seconds > 0 ? static_cast<double>(total_ops) / seconds / 1e6 : 0;
  }
  double pwbs_per_op() const noexcept {
    return total_ops > 0
               ? static_cast<double>(persistence.pwbs) /
                     static_cast<double>(total_ops)
               : 0;
  }
};

/// Prefill `set` with cfg.prefill distinct keys drawn from the key range.
/// Deterministic for a given seed.
template <class Set>
void prefill(Set& set, const WorkloadConfig& cfg) {
  Rng rng(cfg.seed ^ 0xF1F1F1F1ull);
  std::uint64_t inserted = 0;
  while (inserted < cfg.prefill) {
    const auto k = static_cast<std::int64_t>(rng.next_below(cfg.key_range));
    if (set.insert(k, k)) ++inserted;
  }
}

/// Run the timed phase. `Set` needs insert(k,v) / remove(k) / contains(k).
template <class Set>
RunResult run_workload(Set& set, const WorkloadConfig& cfg) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops_per_thread(
      static_cast<std::size_t>(cfg.threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(cfg.threads));

  const OpMix mix(cfg.update_pct);
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(cfg.seed + 0x1000ull * static_cast<std::uint64_t>(t + 1));
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k =
            static_cast<std::int64_t>(rng.next_below(cfg.key_range));
        switch (mix.pick(rng)) {
          case OpKind::kContains:
            set.contains(k);
            break;
          case OpKind::kInsert:
            set.insert(k, k);
            break;
          case OpKind::kRemove:
            set.remove(k);
            break;
        }
        ++ops;
      }
      ops_per_thread[static_cast<std::size_t>(t)] = ops;
    });
  }

  const pmem::StatsSnapshot before = pmem::stats_snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.duration_s));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  for (const std::uint64_t o : ops_per_thread) r.total_ops += o;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.persistence = pmem::stats_snapshot() - before;
  recl::Ebr::instance().drain_all();
  return r;
}

}  // namespace flit::bench
