// histogram.hpp — fixed-bucket log2-linear latency histogram.
//
// The HdrHistogram shape, sized down: buckets are grouped by the value's
// magnitude (log2) and each magnitude splits into kSub linear
// sub-buckets, so relative error is bounded by 1/kSub (~6%) at every
// scale from 1 tick to 2^63 — record() is two shifts and an add, no
// allocation, no per-sample storage. That keeps p999 honest on
// million-sample loadgen runs where a plain array would blow memory and
// a plain log2 histogram would quantize a 9 µs p50 to "8–16 µs".
//
// Values are whatever unit the caller picks (the loadgen records
// nanoseconds and divides on output). Zero is recorded in slot 0.
// Single-threaded by design: each loadgen connection owns one and the
// aggregator merges them (merge() is bucket-wise addition).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace flit::bench {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;  // 16
  // Magnitude groups: values < 2*kSub are exact (one slot per value);
  // above that, group g covers [2^(kSubBits+g), 2^(kSubBits+g+1)) split
  // into kSub linear sub-buckets. 64-bit values need < 64 groups.
  static constexpr std::size_t kSlots = (64 - kSubBits) * kSub + 2 * kSub;

  void record(std::uint64_t v) noexcept {
    ++counts_[slot(v)];
    ++total_;
    if (v > max_) max_ = v;
    sum_ += v;
  }

  void merge(const LatencyHistogram& o) noexcept {
    for (std::size_t i = 0; i < kSlots; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(total_);
  }

  /// The value at quantile q in [0, 1] (q=0.5 → p50). Returns the
  /// midpoint of the bucket containing the q-th sample — within the
  /// 1/kSub relative-error bound of the true order statistic. 0 when
  /// empty.
  std::uint64_t percentile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target sample, 1-based; q=1 must land on the last one.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        const std::uint64_t mid = (slot_lo(i) + slot_hi(i)) / 2;
        return mid > max_ ? max_ : mid;  // never report past the max seen
      }
    }
    return max_;
  }

  /// Slot index for value v: identity below 2*kSub, then
  /// (group+1)*kSub + linear sub-bucket.
  static constexpr std::size_t slot(std::uint64_t v) noexcept {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const unsigned bits = std::bit_width(v);  // >= kSubBits + 2 here
    const unsigned group = bits - (kSubBits + 1);
    const std::uint64_t sub = (v >> (bits - 1 - kSubBits)) & (kSub - 1);
    return static_cast<std::size_t>((group + 1) * kSub + sub);
  }

  /// Smallest value mapping to slot i (inverse of slot()).
  static constexpr std::uint64_t slot_lo(std::size_t i) noexcept {
    if (i < 2 * kSub) return i;
    const std::uint64_t group = i / kSub - 1;
    const std::uint64_t sub = i % kSub;
    return (kSub + sub) << group;
  }

  static constexpr std::uint64_t slot_hi(std::size_t i) noexcept {
    if (i < 2 * kSub) return i;
    const std::uint64_t group = i / kSub - 1;
    return slot_lo(i) + (1ull << group) - 1;
  }

 private:
  std::array<std::uint64_t, kSlots> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace flit::bench
