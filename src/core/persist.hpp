// persist.hpp — the FliT instruction wrapper (paper Figure 1 + Algorithm 4).
//
// `persist<T, Policy, Default>` wraps one shared memory word. Every access
// is a *flit-instruction*: the underlying atomic instruction plus the
// persistence protocol of Algorithm 4, parameterized by a counter-placement
// Policy (see counters.hpp) and a declaration-site default pflag.
//
// Shared p-store (Algorithm 4, shared-store):
//     pfence();                 // persist my dependencies (Condition 4)
//     tag(X);                   // flit-counter(X)++
//     X.store(v);
//     pwb(X);
//     pfence();                 // value persisted before untag (Cond. 3)
//     untag(X);                 // flit-counter(X)--
//
// Shared p-load (Algorithm 4, shared-load):
//     v = X.load();
//     if (flit-counter(X) > 0) pwb(X);   // Flush if Tagged
//
// Private variants (paper §5, "private accesses") skip the counter and the
// leading fence; they are exposed as load_private/store_private for code
// that initializes nodes before publishing them.
//
// The same template also realizes the paper's baselines:
//   * PlainPolicy  — p-loads always pwb (no tagging), p-stores pwb+pfence.
//   * VolatilePolicy — every access is the bare atomic instruction.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <type_traits>

#include "core/counters.hpp"
#include "core/pv.hpp"
#include "pmem/backend.hpp"
#include "pmem/persist_check.hpp"

namespace flit {

namespace detail {

/// Storage for the adjacent-counter placement: pads the persist<> word to a
/// double word so value and counter share a cache line (paper §5.1,
/// "Adjacent Counter"). Empty (and occupying no space thanks to
/// [[no_unique_address]]) for every other policy.
template <bool Present>
struct CounterSlot {
  static constexpr bool present = false;
};

template <>
struct CounterSlot<true> {
  static constexpr bool present = true;
  std::atomic<std::uint8_t> ctr{0};
  std::uint8_t pad[7]{};
};

}  // namespace detail

template <class T, class Policy = HashedPolicy,
          flush_option Default = flush_option::persisted>
class persist {
  static_assert(std::is_trivially_copyable_v<T>,
                "persist<T> requires a trivially copyable T (it wraps "
                "std::atomic<T>)");

 public:
  using value_type = T;
  using policy_type = Policy;
  static constexpr bool default_pflag = (Default == flush_option::persisted);
  static constexpr CounterKind kind = Policy::kind;

  persist() noexcept : val_(T{}) {}
  /*implicit*/ persist(T v) noexcept : val_(v) {}

  persist(const persist&) = delete;
  persist& operator=(const persist&) = delete;

  // --- shared flit-instructions -----------------------------------------

  /// Shared load. With pflag: flush-if-tagged (p-load).
  T load(bool pflag = default_pflag) const noexcept {
    T v = val_.load(std::memory_order_acquire);
    if constexpr (kind == CounterKind::kVolatile) {
      (void)pflag;
    } else if constexpr (kind == CounterKind::kPlain) {
      if (pflag) pmem::pwb(&val_);
    } else {
      if (pflag && tagged()) pmem::pwb(&val_);
    }
    return v;
  }

  /// Shared store (write flit-instruction).
  void store(T v, bool pflag = default_pflag) noexcept {
    if constexpr (kind == CounterKind::kVolatile) {
      val_.store(v, std::memory_order_release);
      return;
    }
    pmem::pfence();  // Condition 4: dependencies persist before this store
    if (pflag) {
      tag();
      val_.store(v, std::memory_order_release);
      pmem::pc_store(&val_, sizeof(val_));
      pmem::pwb(&val_);
      pmem::pfence();
      untag();
    } else {
      val_.store(v, std::memory_order_release);
      pmem::pc_store(&val_, sizeof(val_));
    }
  }

  /// Shared compare-and-swap. On failure `expected` is updated with the
  /// observed value (std::atomic semantics). Constrained to types without
  /// padding bits: std::atomic compares object representations, so a CAS
  /// on a padded aggregate can fail spuriously on indeterminate padding —
  /// reject that at compile time instead of at 3am.
  bool cas(T& expected, T desired, bool pflag = default_pflag) noexcept
    requires std::has_unique_object_representations_v<T>
  {
    if constexpr (kind == CounterKind::kVolatile) {
      return val_.compare_exchange_strong(expected, desired,
                                          std::memory_order_seq_cst,
                                          std::memory_order_acquire);
    }
    pmem::pfence();
    if (pflag) {
      tag();
      const bool ok = val_.compare_exchange_strong(
          expected, desired, std::memory_order_seq_cst,
          std::memory_order_acquire);
      if (ok) pmem::pc_store(&val_, sizeof(val_));
      pmem::pwb(&val_);
      pmem::pfence();
      untag();
      return ok;
    }
    const bool ok = val_.compare_exchange_strong(expected, desired,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_acquire);
    if (ok) pmem::pc_store(&val_, sizeof(val_));
    return ok;
  }

  /// Convenience CAS that does not report the witness value.
  bool compare_and_set(T expected, T desired,
                       bool pflag = default_pflag) noexcept
    requires std::has_unique_object_representations_v<T>
  {
    return cas(expected, desired, pflag);
  }

  // --- deferred-fence publication (batched operations) --------------------
  // The flit counter exists to decouple visibility from persistence: while
  // a location is tagged, every p-load flushes it, so a store may be
  // observed before its own fence without breaking durable linearizability.
  // A batch of publications stretches that window deliberately: each
  // publish tags, CASes and pwbs its word but leaves it TAGGED, the caller
  // issues ONE pfence covering the whole batch, and only then untags every
  // published word (Condition 3: value persisted before untag). The
  // leading per-store fence of Algorithm 4 is replaced by the batch-level
  // fence the caller issued over the publications' dependencies (the fully
  // flushed value records) before the first publish — see
  // kv::Store::multi_put for the end-to-end protocol and ARCHITECTURE.md
  // for the safety argument.

  /// True if a successful cas_deferred leaves per-word state that
  /// complete_deferred must clean up (tag-counter placements). Plain
  /// words need no completion (p-loads always flush) and volatile words
  /// have no persistence protocol at all.
  static constexpr bool needs_completion =
      kind == CounterKind::kAdjacent || kind == CounterKind::kExternal;

  /// Publication CAS with the trailing fence deferred to the caller: on
  /// success the word stays tagged (and flushed); the caller must issue a
  /// pfence covering this pwb and then call complete_deferred(). A failed
  /// CAS restores the counter and leaves nothing pending.
  bool cas_deferred(T& expected, T desired,
                    bool pflag = default_pflag) noexcept
    requires std::has_unique_object_representations_v<T>
  {
    if constexpr (kind == CounterKind::kVolatile) {
      return val_.compare_exchange_strong(expected, desired,
                                          std::memory_order_seq_cst,
                                          std::memory_order_acquire);
    }
    if (!pflag) {
      const bool ok = val_.compare_exchange_strong(expected, desired,
                                                   std::memory_order_seq_cst,
                                                   std::memory_order_acquire);
      if (ok) pmem::pc_store(&val_, sizeof(val_));
      return ok;
    }
    tag();
    const bool ok = val_.compare_exchange_strong(expected, desired,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_acquire);
    if (!ok) {
      untag();
      return false;
    }
    pmem::pc_store(&val_, sizeof(val_));
    pmem::pwb(&val_);
    return true;  // still tagged: readers flush until complete_deferred()
  }

  /// Second half of cas_deferred, called after the batch-covering pfence.
  /// `desired` is unused here (the tag counter needs no value); the
  /// parameter keeps the signature uniform with lap_word, whose dirty bit
  /// lives in the word itself.
  void complete_deferred(T /*desired*/) noexcept {
    if constexpr (needs_completion) untag();
  }

  /// Shared exchange (swap) flit-instruction.
  T exchange(T v, bool pflag = default_pflag) noexcept {
    if constexpr (kind == CounterKind::kVolatile) {
      return val_.exchange(v, std::memory_order_acq_rel);
    }
    pmem::pfence();
    if (pflag) {
      tag();
      T old = val_.exchange(v, std::memory_order_acq_rel);
      pmem::pc_store(&val_, sizeof(val_));
      pmem::pwb(&val_);
      pmem::pfence();
      untag();
      return old;
    }
    T old = val_.exchange(v, std::memory_order_acq_rel);
    pmem::pc_store(&val_, sizeof(val_));
    return old;
  }

  /// Shared fetch-and-add (integral T only) — the instruction that the
  /// bit-tagging alternative (link-and-persist) cannot support.
  T faa(T amount, bool pflag = default_pflag) noexcept
    requires std::integral<T>
  {
    if constexpr (kind == CounterKind::kVolatile) {
      return val_.fetch_add(amount, std::memory_order_acq_rel);
    }
    pmem::pfence();
    if (pflag) {
      tag();
      T old = val_.fetch_add(amount, std::memory_order_acq_rel);
      pmem::pc_store(&val_, sizeof(val_));
      pmem::pwb(&val_);
      pmem::pfence();
      untag();
      return old;
    }
    T old = val_.fetch_add(amount, std::memory_order_acq_rel);
    pmem::pc_store(&val_, sizeof(val_));
    return old;
  }

  // --- private flit-instructions (paper §5) ------------------------------
  // Legal only while no other process can access this location (e.g. a node
  // not yet published). No counter traffic, no leading fence.

  T load_private(bool /*pflag*/ = default_pflag) const noexcept {
    return val_.load(std::memory_order_relaxed);
  }

  void store_private(T v, bool pflag = default_pflag) noexcept {
    val_.store(v, std::memory_order_relaxed);
    if constexpr (kind != CounterKind::kVolatile) {
      pmem::pc_store(&val_, sizeof(val_));
      if (pflag) {
        pmem::pwb(&val_);
        pmem::pfence();
      }
    }
  }

  // --- operator sugar (default pflag only, paper §4) ----------------------

  /*implicit*/ operator T() const noexcept { return load(); }
  T operator=(T v) noexcept {
    store(v);
    return v;
  }
  T operator->() const noexcept
    requires std::is_pointer_v<T>
  {
    return load();
  }

  /// Called at the end of every data-structure operation (Figure 1 /
  /// Algorithm 4 completeOp): a single pfence persisting all dependencies.
  static void operation_completion() noexcept {
    if constexpr (kind != CounterKind::kVolatile) pmem::pfence();
  }

  // --- introspection -------------------------------------------------------

  /// Address of the underlying word (what pwb flushes).
  const void* raw_address() const noexcept { return &val_; }

  /// True if this location currently has a pending p-store (test hook).
  bool tagged() const noexcept {
    if constexpr (kind == CounterKind::kAdjacent) {
      return slot_.ctr.load(std::memory_order_acquire) != 0;
    } else if constexpr (kind == CounterKind::kExternal) {
      return Policy::tagged(&val_);
    } else {
      return false;
    }
  }

 private:
  void tag() noexcept {
    if constexpr (kind == CounterKind::kAdjacent) {
      slot_.ctr.fetch_add(1, std::memory_order_acq_rel);
    } else if constexpr (kind == CounterKind::kExternal) {
      Policy::tag(&val_);
    }
  }
  void untag() noexcept {
    if constexpr (kind == CounterKind::kAdjacent) {
      slot_.ctr.fetch_sub(1, std::memory_order_acq_rel);
    } else if constexpr (kind == CounterKind::kExternal) {
      Policy::untag(&val_);
    }
  }

  std::atomic<T> val_;
  [[no_unique_address]] detail::CounterSlot<Policy::kind ==
                                            CounterKind::kAdjacent>
      slot_;
};

}  // namespace flit
