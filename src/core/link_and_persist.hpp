// link_and_persist.hpp — the bit-tagging alternative to FliT (paper §2,
// David et al. [14], also in [19, 35, 38]).
//
// Link-and-persist steals one bit of the memory word itself as the dirty
// flag: a store installs `value | DIRTY` with CAS, flushes, fences, then
// clears the flag with a second CAS; a reader that observes the flag up
// flushes the line. FliT's evaluation compares against this technique
// (flit-adjacent and link-and-persist behave almost identically, §6.6).
//
// Its two structural limitations — the reasons FliT exists — are enforced
// here at compile time:
//   * T must be a pointer type with bit 1 free (the Natarajan BST uses all
//     low pointer bits, so `lap_word` cannot serve it);
//   * shared stores must be CAS: there is no store()/faa()/exchange(),
//     because a blind RMW could clear a not-yet-persisted value's flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "core/pv.hpp"
#include "pmem/backend.hpp"
#include "pmem/persist_check.hpp"

namespace flit {

template <class T, flush_option Default = flush_option::persisted>
class lap_word {
  static_assert(std::is_pointer_v<T>,
                "link-and-persist needs spare bits: T must be a pointer");

 public:
  using value_type = T;
  static constexpr bool default_pflag = (Default == flush_option::persisted);
  /// Bit 1 is the dirty flag; bit 0 is left to the data structure (Harris
  /// marks). Allocations are >= 4-byte aligned so both bits are spare.
  static constexpr std::uintptr_t kDirty = 0x2;

  lap_word() noexcept : val_(0) {}
  /*implicit*/ lap_word(T v) noexcept : val_(bits(v)) {}

  lap_word(const lap_word&) = delete;
  lap_word& operator=(const lap_word&) = delete;

  /// Shared load: flush if the dirty flag is up; the flag is masked out of
  /// the returned value.
  T load(bool pflag = default_pflag) const noexcept {
    std::uintptr_t w = val_.load(std::memory_order_acquire);
    if (pflag && (w & kDirty)) pmem::pwb(&val_);
    return as_value(w);
  }

  /// Shared CAS — the only shared store form link-and-persist admits.
  /// `expected`/`desired` are logical (flag-free) values; on failure
  /// `expected` receives the observed logical value.
  bool cas(T& expected, T desired, bool pflag = default_pflag) noexcept {
    pmem::pfence();  // Condition 4
    const std::uintptr_t exp = bits(expected);
    const std::uintptr_t des_clean = bits(desired);
    for (;;) {
      std::uintptr_t w = val_.load(std::memory_order_acquire);
      if (w & kDirty) {
        // Help persist and clear the pending store's flag so our CAS can't
        // fail (or spuriously succeed) on flag state.
        pmem::pwb(&val_);
        pmem::pfence();
        if (val_.compare_exchange_strong(w, w & ~kDirty,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          pmem::pc_store(&val_, sizeof(val_));
        }
        w &= ~kDirty;
      }
      if (w != exp) {
        expected = as_value(w);
        return false;
      }
      std::uintptr_t e = exp;
      const std::uintptr_t des = pflag ? (des_clean | kDirty) : des_clean;
      if (val_.compare_exchange_strong(e, des, std::memory_order_seq_cst,
                                       std::memory_order_acquire)) {
        pmem::pc_store(&val_, sizeof(val_));
        if (pflag) {
          pmem::pwb(&val_);
          pmem::pfence();
          std::uintptr_t d = des;
          // Clear our flag unless a newer store already replaced the word.
          if (val_.compare_exchange_strong(d, des_clean,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
            pmem::pc_store(&val_, sizeof(val_));
          }
        }
        return true;
      }
      if ((e & ~kDirty) != exp) {
        expected = as_value(e);
        return false;
      }
      // Lost a race on the flag bit only; renormalize and retry.
    }
  }

  bool compare_and_set(T expected, T desired,
                       bool pflag = default_pflag) noexcept {
    return cas(expected, desired, pflag);
  }

  // --- deferred-fence publication (batched operations) --------------------
  // Mirrors persist<>::cas_deferred: the publish installs `desired |
  // DIRTY`, flushes, and returns with the flag still up, so readers keep
  // flushing the line until the caller's single batch-covering pfence and
  // the complete_deferred() that clears the flag. The helping path for a
  // *foreign* dirty word is unchanged (it must fence — that pending store
  // is not part of our batch).

  static constexpr bool needs_completion = true;

  bool cas_deferred(T& expected, T desired,
                    bool pflag = default_pflag) noexcept {
    const std::uintptr_t exp = bits(expected);
    const std::uintptr_t des_clean = bits(desired);
    for (;;) {
      std::uintptr_t w = val_.load(std::memory_order_acquire);
      if (w & kDirty) {
        // Foreign pending store: help persist and clear it exactly as the
        // fully fenced cas() does.
        pmem::pwb(&val_);
        pmem::pfence();
        if (val_.compare_exchange_strong(w, w & ~kDirty,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          pmem::pc_store(&val_, sizeof(val_));
        }
        w &= ~kDirty;
      }
      if (w != exp) {
        expected = as_value(w);
        return false;
      }
      std::uintptr_t e = exp;
      const std::uintptr_t des = pflag ? (des_clean | kDirty) : des_clean;
      if (val_.compare_exchange_strong(e, des, std::memory_order_seq_cst,
                                       std::memory_order_acquire)) {
        pmem::pc_store(&val_, sizeof(val_));
        if (pflag) pmem::pwb(&val_);
        return true;  // dirty flag stays up until complete_deferred()
      }
      if ((e & ~kDirty) != exp) {
        expected = as_value(e);
        return false;
      }
      // Lost a race on the flag bit only; renormalize and retry.
    }
  }

  /// Clear our dirty flag after the batch-covering pfence — unless a newer
  /// store already replaced the word (its writer owns the flag now).
  void complete_deferred(T desired) noexcept {
    std::uintptr_t d = bits(desired) | kDirty;
    if (val_.compare_exchange_strong(d, bits(desired),
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      pmem::pc_store(&val_, sizeof(val_));
    }
  }

  // --- private accesses (unpublished nodes) -------------------------------

  T load_private(bool /*pflag*/ = default_pflag) const noexcept {
    return as_value(val_.load(std::memory_order_relaxed));
  }

  void store_private(T v, bool pflag = default_pflag) noexcept {
    val_.store(bits(v), std::memory_order_relaxed);
    pmem::pc_store(&val_, sizeof(val_));
    if (pflag) {
      pmem::pwb(&val_);
      pmem::pfence();
    }
  }

  /*implicit*/ operator T() const noexcept { return load(); }
  T operator->() const noexcept { return load(); }

  static void operation_completion() noexcept { pmem::pfence(); }

  const void* raw_address() const noexcept { return &val_; }

  /// Test hook: is the dirty flag currently up?
  bool dirty() const noexcept {
    return (val_.load(std::memory_order_acquire) & kDirty) != 0;
  }

 private:
  static std::uintptr_t bits(T v) noexcept {
    return reinterpret_cast<std::uintptr_t>(v);
  }
  static T as_value(std::uintptr_t w) noexcept {
    return reinterpret_cast<T>(w & ~kDirty);
  }

  std::atomic<std::uintptr_t> val_;
};

}  // namespace flit
