#include "core/counters.hpp"

#include <bit>
#include <cassert>
#include <new>

namespace flit {

HashedCounterTable& HashedCounterTable::instance() {
  static HashedCounterTable t;
  return t;
}

HashedCounterTable::HashedCounterTable() {
  configure(kDefaultSlots, /*stride_bytes=*/1);
}

void HashedCounterTable::configure(std::size_t slots,
                                   std::size_t stride_bytes) {
  assert(slots >= 64 && "table too small to be meaningful");
  assert(stride_bytes >= 1);
  slots = std::bit_ceil(slots);

  if (table_ != nullptr) {
    ::operator delete[](table_, std::align_val_t{pmem::kCacheLineSize});
  }
  const std::size_t bytes = slots * stride_bytes;
  void* mem =
      ::operator new[](bytes, std::align_val_t{pmem::kCacheLineSize});
  table_ = static_cast<std::atomic<std::uint8_t>*>(mem);
  for (std::size_t i = 0; i < bytes; ++i) {
    new (&table_[i]) std::atomic<std::uint8_t>(0);
  }
  slots_ = slots;
  stride_ = stride_bytes;
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(slots));
}

bool HashedCounterTable::all_zero() const noexcept {
  for (std::size_t i = 0; i < slots_; ++i) {
    if (table_[i * stride_].load(std::memory_order_acquire) != 0) return false;
  }
  return true;
}

}  // namespace flit
