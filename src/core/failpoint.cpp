#include "core/failpoint.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <random>

namespace flit::core {

namespace {

/// Symbolic errno names the env grammar accepts (the ones the site
/// catalog injects); anything else must be a plain decimal number.
int parse_errno(const std::string& s) {
  if (s == "EIO") return EIO;
  if (s == "ENOMEM") return ENOMEM;
  if (s == "ENOSPC") return ENOSPC;
  if (s == "EMFILE") return EMFILE;
  if (s == "ENFILE") return ENFILE;
  if (s == "ECONNRESET") return ECONNRESET;
  if (s == "EPIPE") return EPIPE;
  if (s == "EAGAIN") return EAGAIN;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v <= 0) return -1;
  return static_cast<int>(v);
}

}  // namespace

struct Failpoints::Impl {
  struct Site {
    FailSpec spec;
    std::uint64_t evals = 0;
    std::uint64_t hits = 0;
  };

  mutable std::mutex mu;
  std::map<std::string, Site> sites;
  std::mt19937_64 rng{1};
  // Lock-free fast path: should_fail() returns without taking `mu` while
  // nothing is armed, so an enabled-but-idle build stays cheap.
  std::atomic<std::size_t> armed{0};
  std::atomic<std::uint64_t> total_hits{0};
};

Failpoints& Failpoints::instance() {
  // Immortal (never destroyed): site hooks run from server workers and
  // static-destruction-order teardown paths (FileRegion::close from
  // static Store handles).
  static Failpoints* f = new Failpoints();
  return *f;
}

Failpoints::Failpoints() : impl_(new Impl()) {
  if (const char* seed = std::getenv("FLIT_FAILPOINTS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(seed, &end, 10);
    if (end != seed) impl_->rng.seed(v);
  }
  if (const char* list = std::getenv("FLIT_FAILPOINTS")) {
    arm_from_list(list);
  }
}

void Failpoints::arm(const std::string& site, const FailSpec& spec) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Site& s = impl_->sites[site];
  const bool was_armed = s.spec.trigger != FailTrigger::kOff;
  s.spec = spec;
  s.evals = 0;
  s.hits = 0;
  const bool is_armed = spec.trigger != FailTrigger::kOff;
  if (is_armed && !was_armed) {
    impl_->armed.fetch_add(1, std::memory_order_relaxed);
  } else if (!is_armed && was_armed) {
    impl_->armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Failpoints::arm_from_spec(const std::string& clause) {
  const std::size_t eq = clause.find('=');
  if (eq == 0 || eq == std::string::npos) return false;
  const std::string site = clause.substr(0, eq);
  std::string trig = clause.substr(eq + 1);

  FailSpec spec;
  const std::size_t at = trig.find('@');
  if (at != std::string::npos) {
    spec.error = parse_errno(trig.substr(at + 1));
    if (spec.error < 0) return false;
    trig.resize(at);
  }
  if (trig == "once") {
    spec.trigger = FailTrigger::kOnce;
  } else if (trig == "off") {
    spec.trigger = FailTrigger::kOff;
  } else if (trig.rfind("every:", 0) == 0) {
    char* end = nullptr;
    const std::string arg = trig.substr(6);
    const unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || n == 0) return false;
    spec.trigger = FailTrigger::kEveryNth;
    spec.every_n = n;
  } else if (trig.rfind("prob:", 0) == 0) {
    char* end = nullptr;
    const std::string arg = trig.substr(5);
    const double p = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return false;
    }
    spec.trigger = FailTrigger::kProbability;
    spec.probability = p;
  } else {
    return false;
  }
  arm(site, spec);
  return true;
}

std::size_t Failpoints::arm_from_list(const std::string& list) {
  std::size_t armed = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t end = list.find(';', pos);
    if (end == std::string::npos) end = list.size();
    const std::string clause = list.substr(pos, end - pos);
    if (!clause.empty()) {
      if (arm_from_spec(clause)) {
        ++armed;
      } else {
        std::fprintf(stderr, "flit: failpoints: bad clause '%s' ignored\n",
                     clause.c_str());
      }
    }
    pos = end + 1;
  }
  return armed;
}

void Failpoints::disarm(const std::string& site) {
  arm(site, FailSpec{});
}

void Failpoints::disarm_all() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, s] : impl_->sites) s.spec = FailSpec{};
  impl_->armed.store(0, std::memory_order_relaxed);
}

int Failpoints::should_fail(const char* site, int default_error) {
  if (impl_->armed.load(std::memory_order_relaxed) == 0) return 0;
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  if (it == impl_->sites.end()) return 0;
  Impl::Site& s = it->second;
  if (s.spec.trigger == FailTrigger::kOff) return 0;
  ++s.evals;
  bool fire = false;
  switch (s.spec.trigger) {
    case FailTrigger::kOnce:
      fire = s.evals == 1;
      break;
    case FailTrigger::kEveryNth:
      fire = s.evals % s.spec.every_n == 0;
      break;
    case FailTrigger::kProbability: {
      std::uniform_real_distribution<double> d(0.0, 1.0);
      fire = d(impl_->rng) < s.spec.probability;
      break;
    }
    case FailTrigger::kOff:
      break;
  }
  if (!fire) return 0;
  ++s.hits;
  impl_->total_hits.fetch_add(1, std::memory_order_relaxed);
  // A firing site must never resolve to 0 ("proceed"): sites that carry
  // no meaningful errno (pool.alloc, net.write.short) pass
  // default_error = 0 and get the -1 sentinel.
  if (s.spec.error != 0) return s.spec.error;
  return default_error != 0 ? default_error : -1;
}

std::uint64_t Failpoints::hits(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.hits;
}

std::uint64_t Failpoints::evaluations(const std::string& site) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.evals;
}

std::uint64_t Failpoints::total_hits() const noexcept {
  return impl_->total_hits.load(std::memory_order_relaxed);
}

std::vector<std::string> Failpoints::armed_sites() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  for (const auto& [name, s] : impl_->sites) {
    if (s.spec.trigger != FailTrigger::kOff) out.push_back(name);
  }
  return out;
}

void Failpoints::reseed(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rng.seed(seed);
}

}  // namespace flit::core
