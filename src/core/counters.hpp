// counters.hpp — flit-counter placement policies (paper §5.1).
//
// Algorithm 4 deliberately leaves `flit-counter(X)` unspecified: a counter
// may live anywhere and may be shared by any number of locations — sharing
// can only cause extra pwbs, never unsafe behaviour. The paper evaluates
// two placements and names a third as future work; all three are here:
//
//   AdjacentPolicy — the counter sits in the word next to the variable
//       (flit-adjacent). Zero extra cache misses, but doubles the footprint
//       of every persist<> word (the skiplist-node overflow effect of §6.6
//       follows directly).
//   HashedPolicy — a global table of 8-bit counters indexed by address hash
//       (flit-HT). Size is runtime-configurable (Figure 5 sweeps it);
//       counters are packed 8-per-word, so a 4 KiB table is only 64 cache
//       lines — the false-sharing collapse the paper observes.
//   HashedUnpackedPolicy — one counter per cache line *of the table*
//       (ablation B: removes intra-table false sharing at 64× the space).
//   PerLinePolicy — one counter per *data* cache line (paper §8's "natural
//       option that we did not explore"): all words on a line share a tag.
//   PlainPolicy — no tagging at all; every p-load flushes (the "plain"
//       baseline of every figure).
//   VolatilePolicy — everything is an ordinary atomic access and no
//       persistence instruction is ever issued (the grey dotted
//       non-persistent baseline).
//
// A counter holds the number of *pending* p-stores on its location(s); it
// is bounded by the thread count, so 8 bits suffice below 256 threads
// (paper §5.1). Tag/untag use acq_rel RMWs; `tagged` uses an acquire load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "pmem/cacheline.hpp"

namespace flit {

/// How a policy stores its counters; drives `if constexpr` dispatch in
/// persist<>.
enum class CounterKind {
  kAdjacent,  ///< counter embedded next to the word
  kExternal,  ///< counter in a global table, found by address
  kPlain,     ///< no counters; p-loads always flush
  kVolatile,  ///< no counters and no persistence instructions at all
};

/// Global table of 8-bit flit-counters used by the external policies.
///
/// `configure()` chooses the number of counter slots, the byte stride
/// between consecutive counters (1 = packed 8-per-word, 64 = one per cache
/// line of the table) and the granularity shift applied to addresses
/// (0 = per-word tagging, 6 = per-data-line tagging).
class HashedCounterTable {
 public:
  static constexpr std::size_t kDefaultSlots = std::size_t{1} << 20;  // 1 MiB

  static HashedCounterTable& instance();

  HashedCounterTable(const HashedCounterTable&) = delete;
  HashedCounterTable& operator=(const HashedCounterTable&) = delete;

  /// Rebuild the table. Stop-the-world only (counters must all be zero,
  /// i.e. no p-store in flight). `slots` is rounded up to a power of two.
  void configure(std::size_t slots, std::size_t stride_bytes = 1);

  std::size_t slots() const noexcept { return slots_; }
  std::size_t stride() const noexcept { return stride_; }
  /// Total memory footprint in bytes (what Figure 5's x-axis reports).
  std::size_t footprint_bytes() const noexcept { return slots_ * stride_; }

  void tag(const void* addr, unsigned gran_shift) noexcept {
    slot(addr, gran_shift).fetch_add(1, std::memory_order_acq_rel);
  }
  void untag(const void* addr, unsigned gran_shift) noexcept {
    slot(addr, gran_shift).fetch_sub(1, std::memory_order_acq_rel);
  }
  bool tagged(const void* addr, unsigned gran_shift) const noexcept {
    return slot(addr, gran_shift).load(std::memory_order_acquire) != 0;
  }

  /// Test hook: true if every counter is zero (all p-stores balanced).
  bool all_zero() const noexcept;

 private:
  HashedCounterTable();

  std::atomic<std::uint8_t>& slot(const void* addr,
                                  unsigned gran_shift) const noexcept {
    auto a = reinterpret_cast<std::uintptr_t>(addr) >> gran_shift;
    // Fibonacci multiplicative hash; table size is a power of two.
    const std::uint64_t h =
        (static_cast<std::uint64_t>(a) * 0x9E3779B97F4A7C15ull) >> shift_;
    return table_[h * stride_];
  }

  // Storage is one atomic byte per `stride_` bytes; sized slots_*stride_.
  std::atomic<std::uint8_t>* table_ = nullptr;
  std::size_t slots_ = 0;
  std::size_t stride_ = 1;
  unsigned shift_ = 0;  // 64 - log2(slots_)
};

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

struct AdjacentPolicy {
  static constexpr CounterKind kind = CounterKind::kAdjacent;
  static constexpr const char* name = "flit-adjacent";
};

struct HashedPolicy {
  static constexpr CounterKind kind = CounterKind::kExternal;
  static constexpr unsigned gran_shift = 0;
  static constexpr const char* name = "flit-HT";
  static void tag(const void* a) noexcept {
    HashedCounterTable::instance().tag(a, gran_shift);
  }
  static void untag(const void* a) noexcept {
    HashedCounterTable::instance().untag(a, gran_shift);
  }
  static bool tagged(const void* a) noexcept {
    return HashedCounterTable::instance().tagged(a, gran_shift);
  }
};

/// Same table, but addresses are first truncated to their cache line: one
/// logical counter per data line (paper §8 extension).
struct PerLinePolicy {
  static constexpr CounterKind kind = CounterKind::kExternal;
  static constexpr unsigned gran_shift = 6;  // log2(cache line)
  static constexpr const char* name = "flit-perline";
  static void tag(const void* a) noexcept {
    HashedCounterTable::instance().tag(a, gran_shift);
  }
  static void untag(const void* a) noexcept {
    HashedCounterTable::instance().untag(a, gran_shift);
  }
  static bool tagged(const void* a) noexcept {
    return HashedCounterTable::instance().tagged(a, gran_shift);
  }
};

struct PlainPolicy {
  static constexpr CounterKind kind = CounterKind::kPlain;
  static constexpr const char* name = "plain";
};

struct VolatilePolicy {
  static constexpr CounterKind kind = CounterKind::kVolatile;
  static constexpr const char* name = "non-persistent";
};

}  // namespace flit
