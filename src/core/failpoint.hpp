// failpoint.hpp — named fault-injection sites for error-path testing.
//
// The crash harnesses prove the store survives dying; failpoints prove it
// survives the OS saying no while it lives. A *site* is a named hook at a
// syscall or allocator boundary ("pmem.msync", "pool.alloc", "net.accept",
// ...; see the catalog below). Armed, a site simulates the failure its
// callers must degrade around — msync returns EIO, the pool throws
// bad_alloc, accept reports EMFILE — without exhausting anything for
// real, so the degraded paths (OutOfSpace replies, the read-only latch,
// accept backoff) become deterministic, regression-testable behavior.
//
// Zero cost when disabled: the fp_inject() hook below compiles to a
// constant 0 unless FLIT_FAILPOINTS is defined (the `failpoints` CMake
// preset, mirroring FLIT_PERSIST_CHECK / FLIT_LINCHECK), so default
// builds carry byte-identical hot paths. The registry class itself is
// always compiled — spec parsing and trigger arithmetic stay unit-tested
// in every build; only the hot-path consultation is gated.
//
// Arming:
//
//   * API:  Failpoints::instance().arm("pool.alloc", spec)
//   * env:  FLIT_FAILPOINTS="site=trigger[@errno][;site=trigger...]"
//             trigger:  once | every:N | prob:P      (P in [0, 1])
//             errno:    EIO | ENOMEM | ENOSPC | EMFILE | ECONNRESET |
//                       EPIPE | EAGAIN | or a plain decimal number
//           e.g. FLIT_FAILPOINTS="pmem.msync=once@EIO;pool.alloc=every:3"
//           parsed once, at the first instance() call.
//
// Triggers: `once` fires on the first evaluation only; `every:N` fires on
// evaluations N, 2N, 3N, ... (the classic every-Nth exhaustion audit);
// `prob:P` fires each evaluation with probability P from a deterministic
// per-registry PRNG (seed via FLIT_FAILPOINTS_SEED, default 1, so runs
// replay). Each site counts evaluations and hits; tests assert on hits()
// and the process-wide total_hits() feeds the server's STATS line.
//
// Site catalog (kept in sync with ARCHITECTURE.md "Failpoints & degraded
// modes"):
//
//   pool.alloc       Pool::alloc            throws std::bad_alloc
//   pmem.msync       FileRegion sync/close  msync fails (default EIO)
//   pmem.mmap        FileRegion::open       mmap fails (default ENOMEM)
//   pmem.ftruncate   FileRegion::open       ftruncate fails (default ENOSPC)
//   net.accept       accept_nonblocking     accept fails (default EMFILE)
//   net.read         read_some              read fails (default ECONNRESET)
//   net.write        write_some             send fails (default ECONNRESET)
//   net.write.short  write_some             send truncated to one byte
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace flit::core {

/// True when the fp_inject() site hooks are compiled in (FLIT_FAILPOINTS
/// builds). The registry below exists in every build.
#if defined(FLIT_FAILPOINTS)
inline constexpr bool kFailpointsEnabled = true;
#else
inline constexpr bool kFailpointsEnabled = false;
#endif

/// How an armed site decides to fire.
enum class FailTrigger { kOff, kOnce, kEveryNth, kProbability };

/// One site's arming: trigger + parameter + the errno the site should
/// simulate (0 = use the site's documented default).
struct FailSpec {
  FailTrigger trigger = FailTrigger::kOff;
  std::uint64_t every_n = 0;  ///< kEveryNth period (>= 1)
  double probability = 0.0;   ///< kProbability chance per evaluation
  int error = 0;              ///< injected errno; 0 = site default
};

class Failpoints {
 public:
  /// Immortal singleton (sites are consulted from worker threads that may
  /// outlive static destruction). The first call arms from the
  /// FLIT_FAILPOINTS environment variable, if set.
  static Failpoints& instance();

  Failpoints(const Failpoints&) = delete;
  Failpoints& operator=(const Failpoints&) = delete;

  /// Arm (or re-arm, resetting counters) one site.
  void arm(const std::string& site, const FailSpec& spec);

  /// Parse one `site=trigger[@errno]` clause (the env grammar above) and
  /// arm it. Returns false (arming nothing) on a malformed clause.
  bool arm_from_spec(const std::string& clause);

  /// Parse a full `site=...;site=...` list; returns how many clauses
  /// armed. Malformed clauses are skipped with a stderr diagnostic.
  std::size_t arm_from_list(const std::string& list);

  void disarm(const std::string& site);
  void disarm_all();

  /// Evaluate `site`: 0 = proceed normally; nonzero = simulate failure
  /// with this errno (the armed errno, else `default_error`, else -1 so
  /// a firing site is never mistaken for "proceed"). Counts the
  /// evaluation, and the hit when it fires.
  int should_fail(const char* site, int default_error);

  /// Times `site` has fired (0 when never armed).
  std::uint64_t hits(const std::string& site) const;
  /// Times `site` has been evaluated while armed.
  std::uint64_t evaluations(const std::string& site) const;
  /// Fired injections across every site — the STATS `injected_faults=`
  /// telemetry.
  std::uint64_t total_hits() const noexcept;

  /// Sites currently armed (diagnostics / tests).
  std::vector<std::string> armed_sites() const;

  /// Reseed the probabilistic trigger PRNG (tests; also read from
  /// FLIT_FAILPOINTS_SEED at construction).
  void reseed(std::uint64_t seed);

 private:
  Failpoints();
  struct Impl;
  Impl* impl_;  // immortal, like the registry itself
};

/// The site hook: 0 = proceed, nonzero = simulate a failure with this
/// errno. Compiles to a constant 0 (dead site name and all) in
/// non-FLIT_FAILPOINTS builds — the zero-cost contract the disabled-build
/// acceptance bar depends on.
inline int fp_inject([[maybe_unused]] const char* site,
                     [[maybe_unused]] int default_error = 0) {
#if defined(FLIT_FAILPOINTS)
  return Failpoints::instance().should_fail(site, default_error);
#else
  return 0;
#endif
}

/// Process-wide injected-fault count for telemetry: 0 in disabled builds.
inline std::uint64_t fp_total_injected() {
#if defined(FLIT_FAILPOINTS)
  return Failpoints::instance().total_hits();
#else
  return 0;
#endif
}

}  // namespace flit::core
