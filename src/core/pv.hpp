// pv.hpp — vocabulary of the P-V Interface (paper §3, Definition 1).
//
// Every FliT instruction is either a *p-instruction* (its value must be
// persisted: it creates dependencies that must reach NVRAM before the
// issuing process's next shared store or operation completion) or a
// *v-instruction* (persistence has been reasoned away; it adds no
// dependencies). The choice is carried by a `pflag` argument on every
// flit-instruction, with a per-variable default selected at declaration
// time via the `flush_option` template argument — exactly the interface in
// Figure 1 of the paper.
#pragma once

namespace flit {

/// Per-variable default for the pflag argument (paper Figure 2 uses
/// flush_option::persisted as the declaration-site default).
enum class flush_option : bool {
  volatile_ = false,  ///< default to v-instructions
  persisted = true,   ///< default to p-instructions
};

/// Convenience constants mirroring the paper's pseudocode (`pflag`).
inline constexpr bool kPersist = true;   ///< p-instruction
inline constexpr bool kVolatile = false; ///< v-instruction

}  // namespace flit
