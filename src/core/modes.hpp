// modes.hpp — word-wrapper configurations and durability-method traits.
//
// The evaluation grid of the paper (§6) is the cross product of
//
//   implementation  ∈ {plain, flit-adjacent, flit-HT, flit-perline,
//                      link-and-persist, non-persistent}
//   durability method ∈ {automatic, NVtraverse, manual}
//   data structure  ∈ {list, BST, skiplist, hash table}
//
// The data structures are written once. A `Words` configuration chooses the
// word wrapper (which implementation executes each flit-instruction), and a
// `Method` trait chooses the pflag at each call site (which instructions
// are p- and which are v-instructions).
#pragma once

#include <type_traits>

#include "core/counters.hpp"
#include "core/link_and_persist.hpp"
#include "core/persist.hpp"
#include "pmem/backend.hpp"

namespace flit {

// ---------------------------------------------------------------------------
// Words configurations
// ---------------------------------------------------------------------------

/// FliT (or plain / non-persistent) words under a counter policy.
template <class Policy>
struct FlitWords {
  template <class T>
  using word = persist<T, Policy, flush_option::persisted>;

  static constexpr bool persistent =
      Policy::kind != CounterKind::kVolatile;
  static constexpr const char* name = Policy::name;

  /// Persist a freshly initialized object before publishing it (one pwb per
  /// cache line + pfence); no-op in the non-persistent configuration.
  template <class Obj>
  static void persist_obj(const Obj* o) noexcept {
    if constexpr (persistent) pmem::persist_range(o, sizeof(Obj));
  }

  /// End-of-operation fence (Algorithm 4 completeOp).
  static void operation_completion() noexcept {
    if constexpr (persistent) pmem::pfence();
  }
};

using AdjacentWords = FlitWords<AdjacentPolicy>;
using HashedWords = FlitWords<HashedPolicy>;
using PerLineWords = FlitWords<PerLinePolicy>;
using PlainWords = FlitWords<PlainPolicy>;
using VolatileWords = FlitWords<VolatilePolicy>;

/// Link-and-persist words. Pointer fields use the bit-tagged word; scalar
/// fields (keys/values, which in our structures are immutable after the
/// node is published and persisted) are read without any flush — matching
/// how the technique is deployed in the literature, where only link words
/// carry the flag and immutable fields are covered by the publication
/// flush.
struct LapWords {
  template <class T>
  using word =
      std::conditional_t<std::is_pointer_v<T>,
                         lap_word<T, flush_option::persisted>,
                         persist<T, VolatilePolicy, flush_option::persisted>>;

  static constexpr bool persistent = true;
  static constexpr const char* name = "link-and-persist";

  template <class Obj>
  static void persist_obj(const Obj* o) noexcept {
    pmem::persist_range(o, sizeof(Obj));
  }

  static void operation_completion() noexcept { pmem::pfence(); }
};

// ---------------------------------------------------------------------------
// Durability methods (paper §3.1 and §6.4)
// ---------------------------------------------------------------------------
// Call sites in the data structures are classified as:
//   * traversal loads   — read-only walk towards the target position;
//   * transition loads  — re-reads of the final position (pred/curr) at the
//                         boundary between traversal and the critical phase;
//   * critical stores   — the CAS that logically changes the set (insert
//                         link, delete mark);
//   * cleanup stores    — physical helping (unlink of marked nodes);
//   * node init         — publication flush of a freshly built node.

/// Automatic (Theorem 3.1): every load and store is a p-instruction.
/// Any linearizable structure becomes durably linearizable.
struct Automatic {
  static constexpr const char* name = "automatic";
  static constexpr bool traversal_load = kPersist;
  static constexpr bool transition_load = kPersist;
  static constexpr bool critical_load = kPersist;
  static constexpr bool critical_store = kPersist;
  static constexpr bool cleanup_store = kPersist;
  static constexpr bool persist_node_init = true;
};

/// NVtraverse (Friedman et al. [16]): traversal-phase loads are
/// v-instructions; at the transition the last nodes read are p-loaded
/// (flushing them if tagged); everything in the critical phase is a
/// p-instruction.
struct NVTraverse {
  static constexpr const char* name = "nvtraverse";
  static constexpr bool traversal_load = kVolatile;
  static constexpr bool transition_load = kPersist;
  static constexpr bool critical_load = kPersist;
  static constexpr bool critical_store = kPersist;
  static constexpr bool cleanup_store = kPersist;
  static constexpr bool persist_node_init = true;
};

/// Manual (hand-tuned after David et al. [14]): like NVtraverse, but
/// physical cleanup (unlinking already-marked nodes) is volatile too — a
/// marked node's removal is already durable through the mark, so the unlink
/// CAS adds no dependency.
struct Manual {
  static constexpr const char* name = "manual";
  static constexpr bool traversal_load = kVolatile;
  static constexpr bool transition_load = kPersist;
  static constexpr bool critical_load = kPersist;
  static constexpr bool critical_store = kPersist;
  static constexpr bool cleanup_store = kVolatile;
  static constexpr bool persist_node_init = true;
};

}  // namespace flit
