#include "pmem/cpu_features.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define FLIT_X86 1
#include <cpuid.h>
#endif

namespace flit::pmem {

namespace {

FlushInstruction detect_impl() noexcept {
#ifdef FLIT_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  // Leaf 7, subleaf 0: EBX bit 24 = CLWB, EBX bit 23 = CLFLUSHOPT.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    if (ebx & (1u << 24)) return FlushInstruction::kClwb;
    if (ebx & (1u << 23)) return FlushInstruction::kClflushOpt;
  }
  // Leaf 1: EDX bit 19 = CLFSH (clflush).
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    if (edx & (1u << 19)) return FlushInstruction::kClflush;
  }
#endif
  return FlushInstruction::kNone;
}

}  // namespace

FlushInstruction detect_flush_instruction() noexcept {
  static const FlushInstruction cached = detect_impl();
  return cached;
}

const char* to_string(FlushInstruction f) noexcept {
  switch (f) {
    case FlushInstruction::kClwb:
      return "clwb";
    case FlushInstruction::kClflushOpt:
      return "clflushopt";
    case FlushInstruction::kClflush:
      return "clflush";
    case FlushInstruction::kNone:
      return "none";
  }
  return "unknown";
}

}  // namespace flit::pmem
