// cacheline.hpp — cache-line geometry constants and alignment helpers.
//
// Part of the FliT persistence substrate. Everything in the substrate that
// reasons about flushing does so at cache-line granularity, mirroring the
// hardware clwb/clflushopt/clflush instructions which write back whole lines.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flit::pmem {

/// Cache-line size assumed throughout the library. 64 bytes on every x86
/// microarchitecture we target (and on most AArch64 parts). A build-time
/// override is possible via -DFLIT_CACHELINE_SIZE=<n>.
#ifndef FLIT_CACHELINE_SIZE
inline constexpr std::size_t kCacheLineSize = 64;
#else
inline constexpr std::size_t kCacheLineSize = FLIT_CACHELINE_SIZE;
#endif

static_assert((kCacheLineSize & (kCacheLineSize - 1)) == 0,
              "cache line size must be a power of two");

/// Round `addr` down to the start of its cache line.
constexpr std::uintptr_t line_base(std::uintptr_t addr) noexcept {
  return addr & ~static_cast<std::uintptr_t>(kCacheLineSize - 1);
}

inline const void* line_base(const void* p) noexcept {
  return reinterpret_cast<const void*>(
      line_base(reinterpret_cast<std::uintptr_t>(p)));
}

/// Index of the cache line containing `addr`, relative to `base`.
/// Precondition: addr >= base.
constexpr std::size_t line_index(std::uintptr_t base,
                                 std::uintptr_t addr) noexcept {
  return (addr - base) / kCacheLineSize;
}

/// Number of cache lines spanned by the byte range [addr, addr+len).
constexpr std::size_t lines_spanned(std::uintptr_t addr,
                                    std::size_t len) noexcept {
  if (len == 0) return 0;
  const std::uintptr_t first = line_base(addr);
  const std::uintptr_t last = line_base(addr + len - 1);
  return (last - first) / kCacheLineSize + 1;
}

/// Round `n` up to a multiple of the cache-line size.
constexpr std::size_t round_up_to_line(std::size_t n) noexcept {
  return (n + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

}  // namespace flit::pmem
