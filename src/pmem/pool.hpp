// pool.hpp — persistent-region allocator (the libvmmalloc stand-in).
//
// The paper places all dynamically allocated objects in NVRAM via PMDK's
// libvmmalloc (§6.1): malloc semantics, persistent placement. This pool
// plays the same role over an mmap'd region that the backends treat as
// persistent memory:
//
//   * one contiguous anonymous mapping (MAP_NORESERVE — virtual reservation,
//     pages commit on first touch);
//   * a global bump pointer hands out 64 KiB chunks;
//   * each thread carves allocations from its own chunk (no contention on
//     the fast path) and keeps per-size-class free lists for reuse;
//   * the whole region can be registered with SimMemory so crash tests see
//     every node as persistent memory.
//
// Like libvmmalloc, the allocator's own metadata is *not* crash-consistent:
// recovery code must only traverse the user's persistent structure, never
// allocate (which is all the paper's recovery model requires).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace flit::pmem {

class Pool {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 30;
  static constexpr std::size_t kChunkSize = std::size_t{64} << 10;
  static constexpr std::size_t kGranularity = 16;  // min size & alignment
  static constexpr std::size_t kNumSizeClasses = 64;  // 16..1024 bytes

  static Pool& instance();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// (Re)create the region with the given capacity, discarding all previous
  /// allocations. Stop-the-world only. Called lazily with kDefaultCapacity
  /// (or $FLIT_POOL_BYTES) on first alloc if never called explicitly.
  void reinit(std::size_t capacity);

  /// Drop all allocations but keep the mapping (fast between bench phases).
  /// Stop-the-world only.
  void reset();

  /// Serve allocations from an externally owned region (e.g. a
  /// FileRegion) instead of the pool's own anonymous mapping, resuming the
  /// bump allocator at `initial_bump` (a recovered high-water mark). The
  /// pool never unmaps adopted memory. Stop-the-world only.
  void adopt(void* base, std::size_t capacity, std::size_t initial_bump);

  /// Allocate `size` bytes, 16-byte aligned, from the persistent region.
  /// Throws std::bad_alloc when the region is exhausted.
  void* alloc(std::size_t size);

  /// Return a block obtained from alloc(). `size` must match.
  void dealloc(void* p, std::size_t size) noexcept;

  /// Register the full region as persistent memory with SimMemory.
  void register_with_sim();

  void* base() const noexcept { return base_; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Bytes handed out via bump allocation (upper bound on live bytes).
  std::size_t bump_used() const noexcept;
  bool contains(const void* p) const noexcept {
    auto a = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(base_);
    return a >= b && a < b + capacity_;
  }

 private:
  Pool() = default;
  ~Pool();

  struct FreeNode {
    FreeNode* next;
  };

  struct ThreadArena {
    std::uint64_t epoch = ~std::uint64_t{0};
    std::byte* cur = nullptr;
    std::byte* end = nullptr;
    FreeNode* free_lists[kNumSizeClasses] = {};
  };

  static ThreadArena& tls_arena();
  void ensure_init();
  std::byte* bump_chunk(std::size_t bytes);

  static constexpr std::size_t size_class(std::size_t size) noexcept {
    // class i holds blocks of (i+1)*16 bytes; size<=1024 is classed.
    return (size + kGranularity - 1) / kGranularity - 1;
  }

  void* base_ = nullptr;
  std::size_t capacity_ = 0;
  bool owns_mapping_ = true;
};

/// Allocate and construct a T in the persistent region.
template <class T, class... Args>
T* pnew(Args&&... args) {
  void* mem = Pool::instance().alloc(sizeof(T));
  return ::new (mem) T(std::forward<Args>(args)...);
}

/// Destroy and free a T allocated with pnew.
template <class T>
void pdelete(T* p) noexcept {
  if (p == nullptr) return;
  p->~T();
  Pool::instance().dealloc(p, sizeof(T));
}

}  // namespace flit::pmem
