// file_region.hpp — file-backed persistent region (fsdax-style).
//
// The anonymous pool (pool.hpp) models NVRAM for benchmarking and crash
// simulation inside one process. This module adds the real-persistence
// variant: a file-backed MAP_SHARED region whose content survives process
// exit, with a small persistent header carrying
//
//   * a magic/version stamp,
//   * the mapping base address (pointers stored in the region are
//     absolute, so reopening maps at the same address — the same
//     contract PMDK's libpmemobj solves with offset pointers; we use a
//     fixed-address remap and fail loudly if the range is taken; within
//     one process close() leaves a PROT_NONE reservation behind so a
//     close/reopen cycle cannot lose the address to an unrelated mmap),
//   * the allocator bump offset (so reopening resumes allocation), and
//   * up to kMaxRoots named root offsets (entry points for recovery).
//
// On DRAM+disk machines durability is provided by msync(MS_SYNC) at
// sync(); on real NVRAM (DAX-mounted) the pwb/pfence hardware backend
// applies as-is. The examples use this for restart-and-recover demos.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace flit::pmem {

/// Process-wide durability-health latch. Set (never cleared, except by
/// the test-only reset) when a best-effort durability path fails where no
/// exception can propagate — today, a failed msync in
/// FileRegion::close() (destructor/unwind paths): the close still
/// completes, but the "everything written is on stable storage" promise
/// is gone, and silently dropping that (the pre-fix behavior) is exactly
/// the fsyncgate bug. Store::health() folds this latch into its own
/// degraded-read-only state so the failure reaches STATS/operators.
bool durability_degraded() noexcept;

/// Record a swallowed durability failure: logs to stderr and latches
/// durability_degraded(). Safe from destructors and unwind paths.
void note_durability_failure(const char* what) noexcept;

/// Clear the latch — tests only (the process-wide latch would otherwise
/// leak a simulated failure into every later test in the binary).
void reset_durability_health() noexcept;

class FileRegion {
 public:
  static constexpr std::uint64_t kMagic = 0xF117'F117'0000'0001ull;
  static constexpr std::size_t kHeaderSize = 4096;
  static constexpr std::size_t kMaxRoots = 8;

  struct Header {
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t base;         ///< mapping address of previous sessions
    std::uint64_t capacity;     ///< total file size
    std::uint64_t bump_offset;  ///< allocator high-water mark
    std::uint64_t roots[kMaxRoots];  ///< region-relative, 0 = unset
  };

  FileRegion() = default;
  ~FileRegion() { close(); }
  FileRegion(const FileRegion&) = delete;
  FileRegion& operator=(const FileRegion&) = delete;
  FileRegion(FileRegion&& o) noexcept { *this = std::move(o); }
  FileRegion& operator=(FileRegion&& o) noexcept;

  /// Open (or create) the region file. Throws std::runtime_error on any
  /// failure, including an existing file whose recorded base address
  /// cannot be re-mapped.
  static FileRegion open(const std::string& path, std::size_t capacity);

  /// Remove a region file (start-over helper for examples/tests).
  static void destroy(const std::string& path);

  /// True if open() found an existing, initialized region (recovery run).
  bool recovered() const noexcept { return recovered_; }

  void* base() const noexcept { return base_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// First usable byte after the header.
  void* usable_base() const noexcept {
    return static_cast<std::byte*>(base_) + kHeaderSize;
  }
  std::size_t usable_capacity() const noexcept {
    return capacity_ - kHeaderSize;
  }

  /// Named recovery roots.
  void set_root(std::size_t slot, const void* p);
  void* root(std::size_t slot) const;

  /// Allocator bump persistence (the pool calls these through the glue in
  /// examples/tests; see Pool::adopt_region).
  void set_bump(std::size_t offset);
  std::size_t bump() const;

  /// Flush the whole region (and header) to stable storage.
  void sync();

  /// Unmap (after a final sync). Safe to call twice.
  void close();

  bool contains(const void* p) const noexcept {
    auto a = reinterpret_cast<std::uintptr_t>(p);
    auto b = reinterpret_cast<std::uintptr_t>(base_);
    return base_ != nullptr && a >= b && a < b + capacity_;
  }

 private:
  Header* header() const noexcept { return static_cast<Header*>(base_); }

  void* base_ = nullptr;
  std::size_t capacity_ = 0;
  int fd_ = -1;
  bool recovered_ = false;
};

}  // namespace flit::pmem
