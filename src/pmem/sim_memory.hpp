// sim_memory.hpp — software model of volatile caches over persistent memory.
//
// This is the substrate that makes the paper's correctness claims *testable*.
// It implements exactly the §2.1 model of the paper:
//
//   * All loads and stores act on volatile memory (the real DRAM region).
//   * pwb(l) "flushes" the value currently in location l: the containing
//     cache line's bytes are snapshotted into the issuing thread's pending
//     set.
//   * pfence() makes every line the issuing thread flushed reach persistent
//     memory: pending snapshots are published to the shadow image. Like
//     real (coherent) cache lines, publication never moves a line
//     backwards: snapshots carry a per-line order and a stale snapshot
//     cannot overwrite a newer one already published by another thread.
//   * crash() models a power failure: the volatile view is overwritten with
//     the shadow image — every store that was not covered by a pwb+pfence
//     pair is lost — and all pending (flushed-but-not-fenced) state is
//     discarded.
//
// Threading contract: on_pwb/on_pfence are called concurrently by worker
// threads (pending sets are thread-local; shadow publication takes striped
// per-line locks). crash(), persist_all(), register_region() and
// clear_regions() require the caller to be the only thread issuing
// persistence instructions (stop-the-world), which is how the durability
// tests use them.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pmem/cacheline.hpp"

namespace flit::pmem {

class SimMemory {
 public:
  static SimMemory& instance();

  SimMemory(const SimMemory&) = delete;
  SimMemory& operator=(const SimMemory&) = delete;

  /// Track [base, base+len) as persistent memory. The region's current
  /// content is taken as the initial persisted image. `base` must be
  /// cache-line aligned; `len` is rounded up to whole lines, and the
  /// caller must own every byte of the rounded range — the simulator
  /// snapshots and (on crash()) rewrites whole cache lines.
  void register_region(void* base, std::size_t len);

  /// Drop all tracked regions and pending state (test teardown).
  void clear_regions();

  /// True if `p` lies inside a tracked region.
  bool contains(const void* p) const noexcept;

  /// Feed a store of [p, p+len) to PersistCheck (no-op unless built with
  /// FLIT_PERSIST_CHECK and `p` lies in a tracked region). The simulator
  /// itself needs no store hook — stores hit the volatile region directly —
  /// but the checker tracks them, and this is its entry point for callers
  /// that only know the simulator.
  void on_store(const void* p, std::size_t len) noexcept;

  /// Model a pwb on the line containing `addr` (no-op outside regions).
  void on_pwb(const void* addr);

  /// Model a pfence by the calling thread: publish its pending lines.
  void on_pfence();

  /// Model a full-system crash: revert every tracked region to its
  /// persisted image and discard all threads' pending flushes.
  /// Caller must guarantee stop-the-world.
  void crash();

  /// Mark the current volatile content of every region as persisted
  /// (used after test setup to start from a fully-persisted structure).
  void persist_all();

  /// Number of crashes simulated so far.
  std::uint64_t crash_count() const noexcept {
    return crash_epoch_.load(std::memory_order_acquire);
  }

  // --- introspection for tests -------------------------------------------

  /// Copy of the *persisted* (shadow) bytes of the line containing `addr`.
  /// Returns empty vector if `addr` is not tracked.
  std::vector<std::byte> persisted_line(const void* addr) const;

  // --- crash-point injection (single-threaded test harness) ----------------
  // A "crash point" is the persistent-memory image that a power failure at
  // a given instant would leave behind. Tests capture candidate images
  // mid-operation (after chosen pfences) and later verify each image is
  // explainable — i.e. the structure is durably linearizable at *every*
  // instruction boundary, not just between operations.

  /// Clone the persisted (shadow) image of region `idx`.
  std::vector<std::byte> clone_shadow(std::size_t idx = 0) const;

  /// Clone the current *volatile* content of region `idx`.
  std::vector<std::byte> clone_volatile(std::size_t idx = 0) const;

  /// Overwrite the volatile content of region `idx` with `image`
  /// (simulates rebooting into a captured crash image, or restoring the
  /// pre-restore volatile state). Stop-the-world only.
  void overwrite_volatile(const std::vector<std::byte>& image,
                          std::size_t idx = 0);

  /// Install a hook invoked after every pfence publish by any thread
  /// (nullptr to remove). The hook runs on the fencing thread; keep it
  /// cheap and reentrancy-free. Testing use only.
  using PfenceHook = void (*)(void* ctx);
  void set_pfence_hook(PfenceHook hook, void* ctx) noexcept;

  /// True if the calling thread has flushed-but-not-yet-fenced data for the
  /// line containing `addr`.
  bool line_pending_here(const void* addr) const;

 private:
  SimMemory() = default;

  struct Region {
    std::uintptr_t base = 0;
    std::size_t len = 0;  // whole cache lines
    std::unique_ptr<std::byte[]> shadow;
    // Per-line snapshot order, both guarded by the line's stripe lock:
    // snap_seq numbers each pwb snapshot of the line; line_seq records the
    // newest snapshot published to the shadow, so stale snapshots are
    // dropped instead of rolling the shadow line backwards.
    std::unique_ptr<std::uint64_t[]> snap_seq;
    std::unique_ptr<std::uint64_t[]> line_seq;
  };

  struct PendingLine {
    std::uintptr_t line = 0;
    std::uint64_t seq = 0;  // this line's snapshot order (see on_pwb)
    std::array<std::byte, kCacheLineSize> data{};
  };

  // Per-thread pending set. `epoch` lazily invalidates the buffer after a
  // crash without the crashing thread having to touch other threads' state.
  struct ThreadPending {
    std::uint64_t epoch = 0;
    std::vector<PendingLine> lines;
  };

  static ThreadPending& tls_pending();

  const Region* find_region(std::uintptr_t addr) const noexcept;
  void publish_line(const Region& r, const PendingLine& pl);

  // Region list is append-only under mu_; readers index entries
  // [0, region_count_) lock-free via the acquire-loaded count (regions are
  // never removed except clear_regions, which is stop-the-world). A
  // fixed-capacity array so registration never moves or re-links storage
  // concurrent readers are traversing.
  static constexpr std::size_t kMaxRegions = 64;
  mutable std::mutex mu_;
  std::array<Region, kMaxRegions> regions_;
  std::atomic<std::size_t> region_count_{0};

  std::atomic<std::uint64_t> crash_epoch_{0};

  std::atomic<PfenceHook> pfence_hook_{nullptr};
  std::atomic<void*> pfence_hook_ctx_{nullptr};

  static constexpr std::size_t kLockStripes = 512;
  std::array<std::atomic_flag, kLockStripes> line_locks_{};
};

}  // namespace flit::pmem
