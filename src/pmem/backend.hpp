// backend.hpp — the pwb / pfence persistence primitives.
//
// The paper is written against two architecture-agnostic instructions
// (§2): `pwb` (persistent write-back of one cache line, non-blocking) and
// `pfence` (orders and completes the calling thread's preceding pwbs).
// On Intel these map to clwb (or clflushopt/clflush) and sfence.
//
// This library dispatches the two primitives to one of four runtime
// backends, so the same data-structure binaries serve benchmarking on real
// hardware, deterministic latency modelling on DRAM-only machines, and
// crash-correctness testing:
//
//   kNoOp       — both primitives do nothing (cost ablation).
//   kHardware   — clwb/clflushopt/clflush + sfence, chosen by CPUID.
//   kSimLatency — DRAM-only model: each primitive busy-waits a configurable
//                 delay calibrated to published Optane DC figures, so the
//                 *relative* cost structure of the paper's machine is
//                 reproduced on machines without NVRAM.
//   kSimCrash   — full volatile/persistent model (see sim_memory.hpp) that
//                 supports simulated power failures.
//
// The dispatch is a relaxed atomic load plus a predictable switch; its cost
// is identical across all compared series, so relative benchmark results
// are unaffected.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "pmem/cacheline.hpp"
#include "pmem/cpu_features.hpp"
#include "pmem/persist_check.hpp"
#include "pmem/sim_memory.hpp"
#include "pmem/stats.hpp"

namespace flit::pmem {

enum class Backend : int {
  kNoOp = 0,
  kHardware = 1,
  kSimLatency = 2,
  kSimCrash = 3,
};

const char* to_string(Backend b) noexcept;

namespace detail {

// Definitions live in backend.cpp.
extern std::atomic<int> g_backend;
extern std::atomic<std::uint32_t> g_pwb_delay_ns;
extern std::atomic<std::uint32_t> g_pfence_delay_ns;

void hw_flush_line(const void* p) noexcept;  // clwb/clflushopt/clflush
void hw_sfence() noexcept;

/// Busy-wait approximately `ns` nanoseconds (0 returns immediately).
inline void spin_ns(std::uint32_t ns) noexcept {
  if (ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace detail

/// Select the global backend. Not thread-safe with respect to in-flight
/// persistence instructions; switch only while quiescent.
void set_backend(Backend b) noexcept;

inline Backend backend() noexcept {
  return static_cast<Backend>(
      detail::g_backend.load(std::memory_order_relaxed));
}

/// Configure the kSimLatency delays. Defaults (pwb 90ns, pfence 60ns) are
/// in the ballpark of published Optane DC write-back + fence costs.
void set_sim_latency(std::uint32_t pwb_ns, std::uint32_t pfence_ns) noexcept;

/// pwb: persistent write-back of the cache line containing `addr`.
/// Non-blocking; a subsequent pfence() completes it.
inline void pwb(const void* addr) noexcept {
#if defined(FLIT_PERSIST_CHECK)
  // Seeded-bug hook: a suppressed pwb never happened — not modelled by the
  // simulator, not seen by the checker, not counted.
  if (PersistCheck::instance().consume_suppressed_pwb()) return;
#endif
  count_pwb();
  switch (backend()) {
    case Backend::kNoOp:
      return;
    case Backend::kHardware:
      detail::hw_flush_line(addr);
      return;
    case Backend::kSimLatency:
      std::atomic_signal_fence(std::memory_order_seq_cst);
      detail::spin_ns(detail::g_pwb_delay_ns.load(std::memory_order_relaxed));
      return;
    case Backend::kSimCrash:
      SimMemory::instance().on_pwb(addr);
      return;
  }
}

/// pfence: all pwbs previously executed by this thread reach persistent
/// memory before any of the thread's subsequent stores/pwbs.
inline void pfence() noexcept {
  count_pfence();
  switch (backend()) {
    case Backend::kNoOp:
      return;
    case Backend::kHardware:
      detail::hw_sfence();
      return;
    case Backend::kSimLatency:
      std::atomic_thread_fence(std::memory_order_seq_cst);
      detail::spin_ns(
          detail::g_pfence_delay_ns.load(std::memory_order_relaxed));
      return;
    case Backend::kSimCrash:
      std::atomic_thread_fence(std::memory_order_seq_cst);
      SimMemory::instance().on_pfence();
      return;
  }
}

/// Flush an arbitrary byte range without fencing: one pwb per spanned
/// cache line. The caller owes the pfence — the batched KV write path
/// uses this to flush a whole batch of value records and then pay a
/// single fence for all of them (see kv::Store::multi_put).
inline void pwb_range(const void* p, std::size_t len) noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::size_t n = lines_spanned(addr, len);
  std::uintptr_t line = line_base(addr);
  for (std::size_t i = 0; i < n; ++i, line += kCacheLineSize) {
    pwb(reinterpret_cast<const void*>(line));
  }
}

/// Flush and fence an arbitrary byte range (initialization helper): one pwb
/// per spanned cache line followed by a single pfence.
inline void persist_range(const void* p, std::size_t len) noexcept {
  pwb_range(p, len);
  pfence();
}

/// RAII backend switch for tests: restores the previous backend on scope
/// exit.
class BackendScope {
 public:
  explicit BackendScope(Backend b) noexcept : prev_(backend()) {
    set_backend(b);
  }
  ~BackendScope() { set_backend(prev_); }
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  Backend prev_;
};

}  // namespace flit::pmem
