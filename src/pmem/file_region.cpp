#include "pmem/file_region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "pmem/cacheline.hpp"

namespace flit::pmem {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("FileRegion: " + what + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

FileRegion& FileRegion::operator=(FileRegion&& o) noexcept {
  if (this != &o) {
    close();
    base_ = std::exchange(o.base_, nullptr);
    capacity_ = std::exchange(o.capacity_, 0);
    fd_ = std::exchange(o.fd_, -1);
    recovered_ = std::exchange(o.recovered_, false);
  }
  return *this;
}

FileRegion FileRegion::open(const std::string& path, std::size_t capacity) {
  capacity = round_up_to_line(capacity);
  if (capacity < kHeaderSize + kCacheLineSize) {
    throw std::runtime_error("FileRegion: capacity too small");
  }

  FileRegion r;
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  r.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (r.fd_ < 0) fail("open " + path);

  Header prev{};
  bool have_prev = false;
  if (existed) {
    const ssize_t n = ::pread(r.fd_, &prev, sizeof(prev), 0);
    have_prev = n == static_cast<ssize_t>(sizeof(prev)) &&
                prev.magic == kMagic;
    if (have_prev) capacity = static_cast<std::size_t>(prev.capacity);
  }
  if (::ftruncate(r.fd_, static_cast<off_t>(capacity)) != 0) {
    ::close(r.fd_);
    fail("ftruncate");
  }

  void* hint = have_prev ? reinterpret_cast<void*>(prev.base) : nullptr;
  int flags = MAP_SHARED;
#ifdef MAP_FIXED_NOREPLACE
  if (hint != nullptr) flags |= MAP_FIXED_NOREPLACE;
#endif
  void* mem = ::mmap(hint, capacity, PROT_READ | PROT_WRITE, flags, r.fd_, 0);
  if (mem == MAP_FAILED) {
    ::close(r.fd_);
    fail("mmap");
  }
  if (have_prev && mem != hint) {
    ::munmap(mem, capacity);
    ::close(r.fd_);
    throw std::runtime_error(
        "FileRegion: could not re-map at the recorded base address; "
        "pointers inside the region would dangle");
  }
  r.base_ = mem;
  r.capacity_ = capacity;
  r.recovered_ = have_prev;

  Header* h = r.header();
  if (!have_prev) {
    std::memset(h, 0, sizeof(Header));
    h->magic = kMagic;
    h->version = 1;
    h->base = reinterpret_cast<std::uint64_t>(mem);
    h->capacity = capacity;
    h->bump_offset = 0;
    r.sync();
  }
  return r;
}

void FileRegion::destroy(const std::string& path) {
  (void)::unlink(path.c_str());
}

void FileRegion::set_root(std::size_t slot, const void* p) {
  if (slot >= kMaxRoots) throw std::runtime_error("FileRegion: bad root slot");
  header()->roots[slot] =
      p == nullptr
          ? 0
          : reinterpret_cast<std::uint64_t>(p) -
                reinterpret_cast<std::uint64_t>(base_);
}

void* FileRegion::root(std::size_t slot) const {
  if (slot >= kMaxRoots) throw std::runtime_error("FileRegion: bad root slot");
  const std::uint64_t off = header()->roots[slot];
  return off == 0 ? nullptr : static_cast<std::byte*>(base_) + off;
}

void FileRegion::set_bump(std::size_t offset) {
  header()->bump_offset = offset;
}

std::size_t FileRegion::bump() const {
  return static_cast<std::size_t>(header()->bump_offset);
}

void FileRegion::sync() {
  if (base_ == nullptr) return;
  if (::msync(base_, capacity_, MS_SYNC) != 0) fail("msync");
}

void FileRegion::close() {
  if (base_ != nullptr) {
    (void)::msync(base_, capacity_, MS_SYNC);
    ::munmap(base_, capacity_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace flit::pmem
