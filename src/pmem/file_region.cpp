#include "pmem/file_region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/failpoint.hpp"
#include "pmem/cacheline.hpp"

namespace flit::pmem {

namespace {

std::atomic<bool> g_durability_degraded{false};

/// msync with its failpoint site: an armed "pmem.msync" simulates the
/// kernel rejecting the writeback (default EIO) without touching the
/// real file.
int msync_checked(void* base, std::size_t len) noexcept {
  if (const int e = core::fp_inject("pmem.msync", EIO)) {
    errno = e;
    return -1;
  }
  return ::msync(base, len, MS_SYNC);
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("FileRegion: " + what + " (" +
                           std::strerror(errno) + ")");
}

// Address reservations left behind by close(). Absolute pointers inside a
// region require re-mapping at the same address, but plain munmap leaves a
// hole that any intervening mmap (heap arena growth, Pool::reinit, ...)
// may claim, making a later reopen fail nondeterministically. close()
// therefore replaces the file mapping with a PROT_NONE/MAP_NORESERVE
// reservation (costing address space only), and open() consumes the
// reservation with MAP_FIXED. Cross-process reopens still depend on the
// recorded base being free — that limitation is documented in the header.
class ReservationTable {
 public:
  static ReservationTable& instance() {
    // Immortal (never destroyed): FileRegion destructors of static-storage
    // objects may run close() during static destruction.
    static ReservationTable* t = new ReservationTable();
    return *t;
  }

  /// Replace [base, base+capacity) with a PROT_NONE reservation. The
  /// MAP_FIXED mapping atomically unmaps whatever is there; on failure we
  /// fall back to a plain munmap (losing only the address guarantee).
  void reserve(void* base, std::size_t capacity) noexcept {
    void* r = ::mmap(base, capacity, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED | MAP_NORESERVE,
                     -1, 0);
    if (r == base) {
      const std::lock_guard<std::mutex> lock(mu_);
      ranges_[reinterpret_cast<std::uintptr_t>(base)] = capacity;
    } else {
      (void)::munmap(base, capacity);
    }
  }

  /// True (and the entry is removed) if [base, base+capacity) is exactly a
  /// reservation we own, in which case the caller may MAP_FIXED over it.
  bool take(void* base, std::size_t capacity) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = ranges_.find(reinterpret_cast<std::uintptr_t>(base));
    if (it == ranges_.end() || it->second != capacity) return false;
    ranges_.erase(it);
    return true;
  }

  /// Drop the reservation for [base, base+capacity) (if we hold one) and
  /// return the address space to the kernel — used when the backing file
  /// is destroyed, so create/close/destroy cycles don't accumulate vmas.
  void release(void* base, std::size_t capacity) noexcept {
    if (take(base, capacity)) (void)::munmap(base, capacity);
  }

 private:
  std::mutex mu_;
  std::map<std::uintptr_t, std::size_t> ranges_;
};

}  // namespace

bool durability_degraded() noexcept {
  return g_durability_degraded.load(std::memory_order_acquire);
}

void note_durability_failure(const char* what) noexcept {
  g_durability_degraded.store(true, std::memory_order_release);
  std::fprintf(stderr,
               "flit: durability failure (latched degraded): %s (%s)\n",
               what, std::strerror(errno));
}

void reset_durability_health() noexcept {
  g_durability_degraded.store(false, std::memory_order_release);
}

FileRegion& FileRegion::operator=(FileRegion&& o) noexcept {
  if (this != &o) {
    close();
    base_ = std::exchange(o.base_, nullptr);
    capacity_ = std::exchange(o.capacity_, 0);
    fd_ = std::exchange(o.fd_, -1);
    recovered_ = std::exchange(o.recovered_, false);
  }
  return *this;
}

FileRegion FileRegion::open(const std::string& path, std::size_t capacity) {
  capacity = round_up_to_line(capacity);
  if (capacity < kHeaderSize + kCacheLineSize) {
    throw std::runtime_error("FileRegion: capacity too small");
  }

  FileRegion r;
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  r.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (r.fd_ < 0) fail("open " + path);

  Header prev{};
  bool have_prev = false;
  if (existed) {
    const ssize_t n = ::pread(r.fd_, &prev, sizeof(prev), 0);
    // A short read that still shows the magic is a file truncated inside
    // its own header: the region committed data once (the magic is only
    // written on the first sync) but its metadata is gone. Treating it as
    // fresh would silently reinitialize — i.e. destroy — whatever the
    // file held, so reject it loudly instead. A magic-less short file
    // (died before the first header sync) stays a legitimate fresh start.
    if (n >= static_cast<ssize_t>(sizeof(prev.magic)) &&
        prev.magic == kMagic && n < static_cast<ssize_t>(sizeof(prev))) {
      errno = EINVAL;
      fail("header truncated mid-write; refusing to reinitialize " + path);
    }
    have_prev = n == static_cast<ssize_t>(sizeof(prev)) &&
                prev.magic == kMagic;
    if (have_prev) capacity = static_cast<std::size_t>(prev.capacity);
  }
  // Error paths below throw and let r's destructor close the fd exactly
  // once (an explicit ::close here would double-close on unwind, possibly
  // hitting an unrelated descriptor that reused the number).
  if (const int e = core::fp_inject("pmem.ftruncate", ENOSPC)) {
    errno = e;  // simulated out-of-space growing the backing file
    fail("ftruncate");
  }
  if (::ftruncate(r.fd_, static_cast<off_t>(capacity)) != 0) {
    fail("ftruncate");
  }

  void* hint = have_prev ? reinterpret_cast<void*>(prev.base) : nullptr;
  int flags = MAP_SHARED;
  bool over_reservation = false;
  if (hint != nullptr) {
    over_reservation = ReservationTable::instance().take(hint, capacity);
    if (over_reservation) {
      flags |= MAP_FIXED;  // over our own close()-time reservation
    } else {
#ifdef MAP_FIXED_NOREPLACE
      flags |= MAP_FIXED_NOREPLACE;
#endif
    }
  }
  void* mem = MAP_FAILED;
  if (const int e = core::fp_inject("pmem.mmap", ENOMEM)) {
    errno = e;  // simulated mapping failure; falls into the error path
  } else {
    mem = ::mmap(hint, capacity, PROT_READ | PROT_WRITE, flags, r.fd_, 0);
  }
  if (mem == MAP_FAILED) {
    // If we consumed a reservation, the address is forfeited: a failed
    // MAP_FIXED leaves the prior-mapping state unspecified, so neither
    // re-recording the range (another mapping may occupy part of it) nor
    // remapping it (MAP_FIXED would clobber that mapping) is safe. Any
    // surviving PROT_NONE fragments stay harmlessly mapped; a later
    // reopen takes the MAP_FIXED_NOREPLACE path and fails loudly.
    fail("mmap");
  }
  if (have_prev && mem != hint) {
    ::munmap(mem, capacity);
    throw std::runtime_error(
        "FileRegion: could not re-map at the recorded base address; "
        "pointers inside the region would dangle");
  }
  r.base_ = mem;
  r.capacity_ = capacity;
  r.recovered_ = have_prev;

  Header* h = r.header();
  if (!have_prev) {
    std::memset(h, 0, sizeof(Header));
    h->magic = kMagic;
    h->version = 1;
    h->base = reinterpret_cast<std::uint64_t>(mem);
    h->capacity = capacity;
    h->bump_offset = 0;
    r.sync();
  }
  return r;
}

void FileRegion::destroy(const std::string& path) {
  // Release any reservation this process still holds for the file's
  // recorded base — with the file gone the address needs no protection,
  // and create/close/destroy cycles would otherwise leak one PROT_NONE
  // vma each. A region that is currently mapped (not reserved) is left
  // untouched: take() won't match it.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    Header h{};
    const ssize_t n = ::pread(fd, &h, sizeof(h), 0);
    ::close(fd);
    if (n == static_cast<ssize_t>(sizeof(h)) && h.magic == kMagic) {
      ReservationTable::instance().release(
          reinterpret_cast<void*>(h.base),
          static_cast<std::size_t>(h.capacity));
    }
  }
  (void)::unlink(path.c_str());
}

void FileRegion::set_root(std::size_t slot, const void* p) {
  if (slot >= kMaxRoots) throw std::runtime_error("FileRegion: bad root slot");
  header()->roots[slot] =
      p == nullptr
          ? 0
          : reinterpret_cast<std::uint64_t>(p) -
                reinterpret_cast<std::uint64_t>(base_);
}

void* FileRegion::root(std::size_t slot) const {
  if (slot >= kMaxRoots) throw std::runtime_error("FileRegion: bad root slot");
  const std::uint64_t off = header()->roots[slot];
  return off == 0 ? nullptr : static_cast<std::byte*>(base_) + off;
}

void FileRegion::set_bump(std::size_t offset) {
  header()->bump_offset = offset;
}

std::size_t FileRegion::bump() const {
  return static_cast<std::size_t>(header()->bump_offset);
}

void FileRegion::sync() {
  if (base_ == nullptr) return;
  if (msync_checked(base_, capacity_) != 0) fail("msync");
}

void FileRegion::close() {
  if (base_ != nullptr) {
    // The final best-effort sync used to (void)-discard its result — an
    // acked-then-close sequence could silently lose the durability
    // promise. close() still cannot throw (destructors and unwind paths
    // land here), so a failure is logged and latched process-wide
    // instead; Store::health() and the server's STATS surface it.
    if (msync_checked(base_, capacity_) != 0) {
      note_durability_failure("msync on FileRegion::close");
    }
    // Only reserve the address if the backing file is still linked
    // somewhere (fstat on the open fd — immune to chdir/rename): after
    // destroy() there is nothing to reopen, and an unreleasable
    // reservation would leak one vma per open/destroy/close cycle.
    struct stat st;
    const bool linked =
        fd_ >= 0 && ::fstat(fd_, &st) == 0 && st.st_nlink > 0;
    if (linked) {
      ReservationTable::instance().reserve(base_, capacity_);
    } else {
      (void)::munmap(base_, capacity_);
    }
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace flit::pmem
