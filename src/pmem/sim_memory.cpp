#include "pmem/sim_memory.hpp"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "pmem/persist_check.hpp"

namespace flit::pmem {

SimMemory& SimMemory::instance() {
  static SimMemory s;
  return s;
}

SimMemory::ThreadPending& SimMemory::tls_pending() {
  static thread_local ThreadPending tp;
  return tp;
}

void SimMemory::register_region(void* base, std::size_t len) {
  const auto b = reinterpret_cast<std::uintptr_t>(base);
  assert(line_base(b) == b && "region base must be cache-line aligned");
  len = round_up_to_line(len);

  Region r;
  r.base = b;
  r.len = len;
  r.shadow = std::make_unique<std::byte[]>(len);
  r.snap_seq = std::make_unique<std::uint64_t[]>(len / kCacheLineSize);
  r.line_seq = std::make_unique<std::uint64_t[]>(len / kCacheLineSize);
  std::memcpy(r.shadow.get(), base, len);

  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = region_count_.load(std::memory_order_relaxed);
  if (n == kMaxRegions) {
    // Loud failure even under NDEBUG: silently dropping a region would
    // make every pwb/pfence on it a no-op and crash() skip it — tests
    // would "pass" while simulating nothing.
    throw std::length_error("SimMemory: too many registered regions");
  }
  regions_[n] = std::move(r);
  region_count_.store(n + 1, std::memory_order_release);
#if defined(FLIT_PERSIST_CHECK)
  PersistCheck::instance().on_register_region(base, len);
#endif
}

void SimMemory::clear_regions() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = region_count_.load(std::memory_order_relaxed);
  region_count_.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) regions_[i] = Region{};
  // Invalidate every thread's pending buffer lazily.
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);
#if defined(FLIT_PERSIST_CHECK)
  PersistCheck::instance().on_clear_regions();
#endif
}

void SimMemory::on_store(const void* p, std::size_t len) noexcept {
  pc_store(p, len);
}

const SimMemory::Region* SimMemory::find_region(
    std::uintptr_t addr) const noexcept {
  // regions_ is append-only; entries [0, region_count_) are immutable once
  // published, so lock-free reads are safe.
  const std::size_t n = region_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const Region& r = regions_[i];
    if (addr >= r.base && addr < r.base + r.len) return &r;
  }
  return nullptr;
}

bool SimMemory::contains(const void* p) const noexcept {
  return find_region(reinterpret_cast<std::uintptr_t>(p)) != nullptr;
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define FLIT_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define FLIT_NO_SANITIZE_THREAD
#endif

/// Copy one live cache line into a pending-snapshot buffer, the way the
/// hardware's write-back engine would: word by word, each word whole.
/// This used to be a plain memcpy, which had a real fidelity bug — the
/// byte-wise copy could tear a racing thread's in-flight 8-byte atomic
/// store and "persist" a half-written pointer, a state a coherent line
/// write-back can never produce. Aligned volatile 8-byte loads fix that:
/// one load instruction per word on every supported target, so each
/// captured word is entirely-old or entirely-new (the stripe lock orders
/// snapshots of a line, not the data they carry). TSan instrumentation
/// is disabled because the copy unavoidably conflicts with plain stores
/// it can never synchronize with: a flushed line also carries bytes of
/// *neighboring* objects another thread is still privately initializing
/// (pool allocations pack objects within a line). Capturing such a word
/// pre- or post-store is benign — the object is unreachable until its
/// publication CAS orders it — exactly like a real line flush racing
/// adjacent initialization. (volatile rather than std::atomic_ref
/// because GCC instruments atomic builtins even in no_sanitize
/// functions, which would re-flag the benign conflict.)
FLIT_NO_SANITIZE_THREAD
void snapshot_line(std::uintptr_t line, std::byte* dst) {
  auto* src = reinterpret_cast<const volatile std::uint64_t*>(line);
  for (std::size_t w = 0; w < kCacheLineSize / sizeof(std::uint64_t); ++w) {
    const std::uint64_t word = src[w];
    std::memcpy(dst + w * sizeof(std::uint64_t), &word, sizeof(word));
  }
}

}  // namespace

void SimMemory::on_pwb(const void* addr) {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const Region* r = find_region(a);
  if (r == nullptr) return;  // not persistent memory; pwb has no effect

  ThreadPending& tp = tls_pending();
  const std::uint64_t epoch = crash_epoch_.load(std::memory_order_acquire);
  if (tp.epoch != epoch) {  // stale pendings from before a crash/reset
    tp.lines.clear();
    tp.epoch = epoch;
  }

  PendingLine pl;
  pl.line = line_base(a);
  // Snapshot under the line's stripe lock with a per-line sequence number:
  // snapshots of one line are serialized, so a higher seq is a no-older
  // memory state. publish_line() uses that order to drop stale snapshots —
  // otherwise thread A's pfence could publish a pre-B snapshot of a shared
  // line and roll back thread B's already-fenced write (real cache lines
  // are coherent; a write-back can never revert one).
  const std::size_t idx = line_index(r->base, pl.line);
  std::atomic_flag& lock = line_locks_[idx % kLockStripes];
  while (lock.test_and_set(std::memory_order_acquire)) {
  }
  pl.seq = ++r->snap_seq[idx];
  snapshot_line(pl.line, pl.data.data());
  lock.clear(std::memory_order_release);
  tp.lines.push_back(pl);
#if defined(FLIT_PERSIST_CHECK)
  PersistCheck::instance().on_pwb(addr);
#endif
}

void SimMemory::publish_line(const Region& r, const PendingLine& pl) {
  const std::size_t idx = line_index(r.base, pl.line);
  std::atomic_flag& lock = line_locks_[idx % kLockStripes];
  while (lock.test_and_set(std::memory_order_acquire)) {
    // spin; critical section is a 64-byte copy
  }
  if (pl.seq > r.line_seq[idx]) {
    r.line_seq[idx] = pl.seq;
    std::memcpy(r.shadow.get() + idx * kCacheLineSize, pl.data.data(),
                kCacheLineSize);
  }
  lock.clear(std::memory_order_release);
}

void SimMemory::on_pfence() {
  ThreadPending& tp = tls_pending();
  const std::uint64_t epoch = crash_epoch_.load(std::memory_order_acquire);
  if (tp.epoch != epoch) {
    tp.lines.clear();
    tp.epoch = epoch;
    return;  // PersistCheck's own epoch guard drops its stale pendings too
  }
  for (const PendingLine& pl : tp.lines) {
    if (const Region* r = find_region(pl.line)) publish_line(*r, pl);
  }
  tp.lines.clear();
#if defined(FLIT_PERSIST_CHECK)
  PersistCheck::instance().on_pfence();
#endif
  if (PfenceHook hook = pfence_hook_.load(std::memory_order_acquire)) {
    hook(pfence_hook_ctx_.load(std::memory_order_acquire));
  }
}

std::vector<std::byte> SimMemory::clone_shadow(std::size_t idx) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (idx >= region_count_.load(std::memory_order_acquire)) return {};
  const Region& r = regions_[idx];
  return std::vector<std::byte>(r.shadow.get(), r.shadow.get() + r.len);
}

std::vector<std::byte> SimMemory::clone_volatile(std::size_t idx) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (idx >= region_count_.load(std::memory_order_acquire)) return {};
  const Region& r = regions_[idx];
  const auto* p = reinterpret_cast<const std::byte*>(r.base);
  return std::vector<std::byte>(p, p + r.len);
}

void SimMemory::overwrite_volatile(const std::vector<std::byte>& image,
                                   std::size_t idx) {
  std::lock_guard<std::mutex> lk(mu_);
  if (idx >= region_count_.load(std::memory_order_acquire)) return;
  Region& r = regions_[idx];
  const std::size_t n = image.size() < r.len ? image.size() : r.len;
  std::memcpy(reinterpret_cast<void*>(r.base), image.data(), n);
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);  // drop pendings
#if defined(FLIT_PERSIST_CHECK)
  PersistCheck::instance().on_mark_all_clean();
#endif
}

void SimMemory::set_pfence_hook(PfenceHook hook, void* ctx) noexcept {
  pfence_hook_ctx_.store(ctx, std::memory_order_release);
  pfence_hook_.store(hook, std::memory_order_release);
}

void SimMemory::crash() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = region_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    Region& r = regions_[i];
    std::memcpy(reinterpret_cast<void*>(r.base), r.shadow.get(), r.len);
  }
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);
#if defined(FLIT_PERSIST_CHECK)
  // Post-crash the volatile view *is* the persisted image: all Clean.
  PersistCheck::instance().on_mark_all_clean();
#endif
}

void SimMemory::persist_all() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = region_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    Region& r = regions_[i];
    std::memcpy(r.shadow.get(), reinterpret_cast<const void*>(r.base), r.len);
  }
  crash_epoch_.fetch_add(1, std::memory_order_acq_rel);
#if defined(FLIT_PERSIST_CHECK)
  PersistCheck::instance().on_mark_all_clean();
#endif
}

std::vector<std::byte> SimMemory::persisted_line(const void* addr) const {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const Region* r = find_region(a);
  if (r == nullptr) return {};
  const std::size_t idx = line_index(r->base, line_base(a));
  std::vector<std::byte> out(kCacheLineSize);
  std::memcpy(out.data(), r->shadow.get() + idx * kCacheLineSize,
              kCacheLineSize);
  return out;
}

bool SimMemory::line_pending_here(const void* addr) const {
  const ThreadPending& tp = tls_pending();
  if (tp.epoch != crash_epoch_.load(std::memory_order_acquire)) return false;
  const std::uintptr_t lb = line_base(reinterpret_cast<std::uintptr_t>(addr));
  for (const PendingLine& pl : tp.lines) {
    if (pl.line == lb) return true;
  }
  return false;
}

}  // namespace flit::pmem
