// stats.hpp — per-thread persistence-instruction statistics.
//
// Figure 9 of the paper reports the number of pwb instructions executed per
// operation for each FliT implementation. To regenerate it we count every
// pwb and pfence issued through the backend. Counters are plain (non-atomic)
// thread-local integers — a single predictable increment on the hot path —
// and are aggregated on demand under a registry mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace flit::pmem {

/// Snapshot of persistence-instruction counts (one thread or an aggregate).
struct StatsSnapshot {
  std::uint64_t pwbs = 0;     ///< pwb (cache-line write-back) instructions.
  std::uint64_t pfences = 0;  ///< pfence (persist fence) instructions.
  /// pwbs issued on lines with no unpersisted store (PersistCheck builds
  /// only; stays 0 otherwise).
  std::uint64_t redundant_pwbs = 0;
  /// pfences with no pwb by the same thread since its previous pfence —
  /// pure ordering cost with nothing to publish. Counted in every build.
  std::uint64_t empty_pfences = 0;

  StatsSnapshot& operator+=(const StatsSnapshot& o) noexcept {
    pwbs += o.pwbs;
    pfences += o.pfences;
    redundant_pwbs += o.redundant_pwbs;
    empty_pfences += o.empty_pfences;
    return *this;
  }
  friend StatsSnapshot operator-(StatsSnapshot a,
                                 const StatsSnapshot& b) noexcept {
    a.pwbs -= b.pwbs;
    a.pfences -= b.pfences;
    a.redundant_pwbs -= b.redundant_pwbs;
    a.empty_pfences -= b.empty_pfences;
    return a;
  }
};

namespace detail {

/// One thread's counter block. Cache-line aligned: the blocks are
/// heap-allocated one per thread, and consecutive registrations would
/// otherwise land adjacent — two threads bumping hot counters on one
/// shared line, the same false-sharing collapse the paper measures in §6
/// when flit counters are packed into a single cache line.
struct alignas(64) ThreadStats {
  std::uint64_t pwbs = 0;
  std::uint64_t pfences = 0;
  std::uint64_t redundant_pwbs = 0;
  std::uint64_t empty_pfences = 0;
  /// Value of `pwbs` when this thread last fenced; equal at the next
  /// pfence means that fence had nothing of ours to publish.
  std::uint64_t pwbs_at_last_fence = 0;
};

/// Registry of every thread's counter block. Thread-local blocks are
/// heap-allocated and intentionally leaked (never freed) so aggregation can
/// safely read blocks of exited threads; the count is bounded by the number
/// of distinct threads over the process lifetime.
class StatsRegistry {
 public:
  static StatsRegistry& instance() {
    // Immortal (heap-allocated, never destroyed): threads may still issue
    // counted instructions during static destruction, and the blocks must
    // stay reachable so leak checkers classify them as intentional.
    static StatsRegistry* r = new StatsRegistry();
    return *r;
  }

  ThreadStats* register_thread() {
    auto* ts = new ThreadStats();
    std::lock_guard<std::mutex> lk(mu_);
    blocks_.push_back(ts);
    return ts;
  }

  StatsSnapshot aggregate() const {
    StatsSnapshot s;
    std::lock_guard<std::mutex> lk(mu_);
    for (const ThreadStats* ts : blocks_) {
      s.pwbs += ts->pwbs;
      s.pfences += ts->pfences;
      s.redundant_pwbs += ts->redundant_pwbs;
      s.empty_pfences += ts->empty_pfences;
    }
    return s;
  }

  /// Zero every thread's counters. Only call while no other thread is
  /// issuing persistence instructions (e.g. between benchmark phases).
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    for (ThreadStats* ts : blocks_) {
      ts->pwbs = 0;
      ts->pfences = 0;
      ts->redundant_pwbs = 0;
      ts->empty_pfences = 0;
      ts->pwbs_at_last_fence = 0;
    }
  }

 private:
  mutable std::mutex mu_;
  std::vector<ThreadStats*> blocks_;
};

inline ThreadStats& tls_stats() {
  static thread_local ThreadStats* ts =
      StatsRegistry::instance().register_thread();
  return *ts;
}

}  // namespace detail

/// Record one pwb / one pfence (called by the backend on every instruction).
inline void count_pwb() noexcept { ++detail::tls_stats().pwbs; }
inline void count_pfence() noexcept {
  auto& ts = detail::tls_stats();
  if (ts.pwbs == ts.pwbs_at_last_fence) ++ts.empty_pfences;
  ++ts.pfences;
  ts.pwbs_at_last_fence = ts.pwbs;
}

/// Record a pwb that hit an all-clean line (called by PersistCheck).
inline void count_redundant_pwb() noexcept {
  ++detail::tls_stats().redundant_pwbs;
}

/// Aggregate counts across all threads that ever issued an instruction.
inline StatsSnapshot stats_snapshot() {
  return detail::StatsRegistry::instance().aggregate();
}

/// Reset all counters to zero (quiescent callers only).
inline void stats_reset() { detail::StatsRegistry::instance().reset(); }

}  // namespace flit::pmem
