#include "pmem/pool.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "check/lincheck.hpp"
#include "core/failpoint.hpp"
#include "pmem/cacheline.hpp"
#include "pmem/persist_check.hpp"
#include "pmem/sim_memory.hpp"

namespace flit::pmem {

namespace {

std::atomic<std::uint64_t> g_pool_epoch{0};
std::atomic<std::size_t> g_bump{0};
std::mutex g_init_mu;

std::size_t env_capacity() {
  if (const char* s = std::getenv("FLIT_POOL_BYTES")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && v >= (1u << 20)) return static_cast<std::size_t>(v);
  }
  return Pool::kDefaultCapacity;
}

}  // namespace

Pool& Pool::instance() {
  static Pool p;
  return p;
}

Pool::~Pool() {
  if (base_ != nullptr && owns_mapping_) ::munmap(base_, capacity_);
}

Pool::ThreadArena& Pool::tls_arena() {
  static thread_local ThreadArena a;
  return a;
}

void Pool::reinit(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(g_init_mu);
  if (base_ != nullptr) {
    if (owns_mapping_) ::munmap(base_, capacity_);
    base_ = nullptr;
    capacity_ = 0;
  }
  owns_mapping_ = true;
  capacity = round_up_to_line(capacity);
  void* mem = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc();
  base_ = mem;
  capacity_ = capacity;
  g_bump.store(0, std::memory_order_relaxed);
  // Invalidate every thread's arena lazily.
  g_pool_epoch.fetch_add(1, std::memory_order_acq_rel);
  // The new mapping may land over addresses of the discarded pool's
  // retired records; stale registry entries would alias fresh nodes.
  check::lc_pool_reset();
}

void Pool::reset() {
  std::lock_guard<std::mutex> lk(g_init_mu);
  g_bump.store(0, std::memory_order_relaxed);
  g_pool_epoch.fetch_add(1, std::memory_order_acq_rel);
  check::lc_pool_reset();  // every address is about to be recycled
}

void Pool::ensure_init() {
  if (base_ != nullptr) return;
  std::size_t cap = env_capacity();
  {
    std::lock_guard<std::mutex> lk(g_init_mu);
    if (base_ != nullptr) return;
    cap = round_up_to_line(cap);
    void* mem = ::mmap(nullptr, cap, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED) throw std::bad_alloc();
    base_ = mem;
    capacity_ = cap;
  }
}

std::byte* Pool::bump_chunk(std::size_t bytes) {
  // CAS loop rather than fetch_add: a failed carve must leave the mark
  // untouched. A blind fetch_add would inflate g_bump past capacity_ on
  // every refused allocation, and Store::close() persists bump_used() as
  // the region's allocator mark — an exhausted store would then record a
  // "corrupt" mark and refuse to reopen.
  std::size_t off = g_bump.load(std::memory_order_relaxed);
  for (;;) {
    if (off + bytes > capacity_) throw std::bad_alloc();
    if (g_bump.compare_exchange_weak(off, off + bytes,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
      break;
    }
  }
  return static_cast<std::byte*>(base_) + off;
}

void* Pool::alloc(std::size_t size) {
  // Failpoint: simulated slab exhaustion, before any allocator state
  // changes — an injected failure must be indistinguishable from a full
  // pool (bad_alloc, nothing leaked, nothing carved).
  if (core::fp_inject("pool.alloc") != 0) throw std::bad_alloc();
  ensure_init();
  assert(size > 0);
  const std::size_t rounded =
      (size + kGranularity - 1) & ~(kGranularity - 1);

  ThreadArena& a = tls_arena();
  const std::uint64_t epoch = g_pool_epoch.load(std::memory_order_acquire);
  if (a.epoch != epoch) {
    a.cur = a.end = nullptr;
    std::memset(a.free_lists, 0, sizeof(a.free_lists));
    a.epoch = epoch;
  }

  void* out;
  if (rounded > kNumSizeClasses * kGranularity) {
    // Large allocations bypass the arena.
    out = bump_chunk(round_up_to_line(rounded));
  } else if (FreeNode* n = a.free_lists[size_class(rounded)]) {
    // Fast path 1: per-thread size-class free list.
    a.free_lists[size_class(rounded)] = n->next;
    out = n;
  } else {
    // Fast path 2: carve from the thread's chunk.
    if (a.cur + rounded > a.end) {
      a.cur = bump_chunk(kChunkSize);
      a.end = a.cur + kChunkSize;
    }
    out = a.cur;
    a.cur += rounded;
  }
  // A fresh block starts un-persisted: constructor stores that follow
  // (placement-new, Record::create) dirty it before it can be published,
  // and recycled blocks still hold the freed object's stale words. Marking
  // here covers every allocation site with one hook.
  pc_store(out, rounded);
  // Any retired/freed record this block overlaps is being legitimately
  // recycled — the lifetime analyzer must forget it.
  check::lc_alloc(out, rounded);
  return out;
}

void Pool::dealloc(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  const std::size_t rounded =
      (size + kGranularity - 1) & ~(kGranularity - 1);
  if (rounded > kNumSizeClasses * kGranularity) {
    return;  // large blocks are not recycled (bump-only), like an arena
  }
  ThreadArena& a = tls_arena();
  const std::uint64_t epoch = g_pool_epoch.load(std::memory_order_acquire);
  if (a.epoch != epoch) {
    // The arena's chunk and cached free lists belong to a discarded pool
    // generation; reset them. The block itself is judged by address below,
    // not dropped outright: after adopt() the prior generation's blocks
    // ARE the current pool, and losing their frees would strand space — a
    // store reopened at the brim relies on delete-then-reuse working on
    // the very first free.
    a.cur = a.end = nullptr;
    std::memset(a.free_lists, 0, sizeof(a.free_lists));
    a.epoch = epoch;
  }
  // Drop blocks outside the current pool: they came from a generation
  // whose mapping is gone (reinit/adopt munmap'd it), so recycling the
  // address would hand out unmapped — or worse, re-mapped — memory.
  // (Frees racing a generation switch don't otherwise occur: fixtures and
  // Store::close() drain the EBR limbo before the pool is swapped.)
  const auto* blk = static_cast<const std::byte*>(p);
  const auto* lo = static_cast<const std::byte*>(base_);
  if (lo == nullptr || blk < lo || blk + rounded > lo + capacity_) return;
  const std::size_t cls = size_class(rounded);
  auto* n = static_cast<FreeNode*>(p);
  n->next = a.free_lists[cls];
  a.free_lists[cls] = n;
}

void Pool::adopt(void* base, std::size_t capacity,
                 std::size_t initial_bump) {
  std::lock_guard<std::mutex> lk(g_init_mu);
  if (base_ != nullptr && owns_mapping_) ::munmap(base_, capacity_);
  base_ = base;
  capacity_ = capacity;
  owns_mapping_ = false;
  // Round the recovered mark up to the chunk size so resumed allocation
  // never overlaps blocks handed out by a previous session's arenas.
  // Clamp to capacity: on a region closed at the brim the round-up can
  // overshoot, and the overshoot must not be persisted back at close as
  // an (apparently corrupt) out-of-range mark. Nothing lives past
  // capacity, so the clamp cannot alias prior allocations.
  const std::size_t resumed = std::min(
      (initial_bump + kChunkSize - 1) & ~(kChunkSize - 1), capacity);
  g_bump.store(resumed, std::memory_order_relaxed);
  g_pool_epoch.fetch_add(1, std::memory_order_acq_rel);
  check::lc_pool_reset();
}

std::size_t Pool::bump_used() const noexcept {
  return g_bump.load(std::memory_order_relaxed);
}

void Pool::register_with_sim() {
  ensure_init();
  SimMemory::instance().register_region(base_, capacity_);
}

}  // namespace flit::pmem
