// cpu_features.hpp — runtime detection of the flush instructions available
// on the executing CPU (clwb / clflushopt / clflush).
//
// The paper (§6.1) uses clwb, the weakest non-blocking flush, noting that on
// Cascade Lake clwb still invalidates the line. We detect the best available
// instruction at startup and fall back gracefully so the library runs on any
// x86-64 machine — and, with the simulated backends, on any machine at all.
#pragma once

namespace flit::pmem {

/// Which hardware cache-line write-back instruction is available.
enum class FlushInstruction {
  kNone,        ///< No usable flush instruction (non-x86 or ancient CPU).
  kClflush,     ///< clflush: serializing, invalidates the line.
  kClflushOpt,  ///< clflushopt: non-serializing, invalidates the line.
  kClwb,        ///< clwb: non-serializing, architecturally may keep the line.
};

/// Detect the best flush instruction supported by this CPU. The result is
/// computed once and cached; safe to call concurrently.
FlushInstruction detect_flush_instruction() noexcept;

/// Human-readable name ("clwb", "clflushopt", "clflush", "none").
const char* to_string(FlushInstruction f) noexcept;

}  // namespace flit::pmem
