#include "pmem/backend.hpp"

namespace flit::pmem {

namespace detail {

std::atomic<int> g_backend{static_cast<int>(Backend::kSimLatency)};
std::atomic<std::uint32_t> g_pwb_delay_ns{90};
std::atomic<std::uint32_t> g_pfence_delay_ns{60};

#if defined(__x86_64__) || defined(__i386__)

namespace {

__attribute__((target("clwb"))) void do_clwb(const void* p) noexcept {
  __builtin_ia32_clwb(const_cast<void*>(p));
}

__attribute__((target("clflushopt"))) void do_clflushopt(
    const void* p) noexcept {
  __builtin_ia32_clflushopt(const_cast<void*>(p));
}

void do_clflush(const void* p) noexcept {
  __builtin_ia32_clflush(const_cast<void*>(p));
}

void do_nothing(const void*) noexcept {}

using FlushFn = void (*)(const void*) noexcept;

FlushFn pick_flush_fn() noexcept {
  switch (detect_flush_instruction()) {
    case FlushInstruction::kClwb:
      return &do_clwb;
    case FlushInstruction::kClflushOpt:
      return &do_clflushopt;
    case FlushInstruction::kClflush:
      return &do_clflush;
    case FlushInstruction::kNone:
      return &do_nothing;
  }
  return &do_nothing;
}

}  // namespace

void hw_flush_line(const void* p) noexcept {
  static const FlushFn fn = pick_flush_fn();
  fn(line_base(p));
}

void hw_sfence() noexcept { __builtin_ia32_sfence(); }

#else  // non-x86: hardware backend degrades to fences only

void hw_flush_line(const void*) noexcept {}

void hw_sfence() noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

#endif

}  // namespace detail

void set_backend(Backend b) noexcept {
  detail::g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

void set_sim_latency(std::uint32_t pwb_ns, std::uint32_t pfence_ns) noexcept {
  detail::g_pwb_delay_ns.store(pwb_ns, std::memory_order_relaxed);
  detail::g_pfence_delay_ns.store(pfence_ns, std::memory_order_relaxed);
}

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::kNoOp:
      return "noop";
    case Backend::kHardware:
      return "hardware";
    case Backend::kSimLatency:
      return "sim-latency";
    case Backend::kSimCrash:
      return "sim-crash";
  }
  return "unknown";
}

}  // namespace flit::pmem
