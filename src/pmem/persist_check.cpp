#include "pmem/persist_check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "pmem/cacheline.hpp"
#include "pmem/stats.hpp"

namespace flit::pmem {

const char* to_string(PersistViolation v) noexcept {
  switch (v) {
    case PersistViolation::kPublishUnpersisted:
      return "persist-before-publish violation";
    case PersistViolation::kMissingFlushLeak:
      return "missing-flush leak";
    case PersistViolation::kPrematureRetire:
      return "premature retirement";
    case PersistViolation::kDeferredDangling:
      return "deferred tag left dangling";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kWordBytes = 8;
constexpr std::size_t kWordsPerLine = kCacheLineSize / kWordBytes;

// Word state packing: bits [0,2) state, bits [2,32) store sequence. The
// sequence wraps at 2^30 stores to one word, far past any test run; a
// wrap could only ever suppress a diagnostic, never invent one.
constexpr std::uint32_t kClean = 0;
constexpr std::uint32_t kDirty = 1;
constexpr std::uint32_t kPending = 2;
constexpr std::uint32_t kStateMask = 0x3;

constexpr std::uint32_t state_of(std::uint32_t w) noexcept {
  return w & kStateMask;
}
constexpr std::uint32_t seq_of(std::uint32_t w) noexcept {
  return w >> 2;
}
constexpr std::uint32_t pack(std::uint32_t seq, std::uint32_t st) noexcept {
  return (seq << 2) | st;
}

struct PendingWord {
  std::uintptr_t addr = 0;  // word-aligned
  std::uint32_t seq = 0;
};

struct DeferredPub {
  std::uintptr_t addr = 0;  // word-aligned
  std::uint32_t seq = 0;
  const char* site = nullptr;
};

// Per-thread flushed-but-unfenced words and in-flight deferred
// publications; `epoch` lazily invalidates both after a crash/reset, the
// same scheme SimMemory::ThreadPending uses.
struct Tls {
  std::uint64_t epoch = 0;
  std::vector<PendingWord> pending;
  std::vector<DeferredPub> deferred;
};

Tls& tls() {
  static thread_local Tls t;
  return t;
}

}  // namespace

struct PersistCheck::Impl {
  struct Region {
    std::uintptr_t base = 0;
    std::size_t words = 0;
    std::unique_ptr<std::atomic<std::uint32_t>[]> state;
  };

  static constexpr std::size_t kMaxRegions = 64;

  mutable std::mutex mu;
  Region regions[kMaxRegions];
  std::atomic<std::size_t> region_count{0};
  std::atomic<std::uint64_t> epoch{0};

  std::atomic<std::uint64_t> counts[kPersistViolationKinds] = {};
  std::atomic<std::int64_t> suppressed_pwbs{0};
  std::once_flag atexit_once;

  // First few diagnostics, kept for the exit report and for tests that
  // assert the reporting site.
  static constexpr std::size_t kMaxDiags = 32;
  mutable std::mutex diag_mu;
  std::vector<std::string> diags;
  const char* first_site = "";

  std::atomic<std::uint32_t>* find_word(std::uintptr_t addr,
                                        const Region** reg = nullptr) {
    const std::size_t n = region_count.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      Region& r = regions[i];
      if (addr >= r.base && addr < r.base + r.words * kWordBytes) {
        if (reg != nullptr) *reg = &r;
        return &r.state[(addr - r.base) / kWordBytes];
      }
    }
    return nullptr;
  }

  Tls& valid_tls() {
    Tls& t = tls();
    const std::uint64_t e = epoch.load(std::memory_order_acquire);
    if (t.epoch != e) {
      t.pending.clear();
      t.deferred.clear();
      t.epoch = e;
    }
    return t;
  }

  void report(PersistViolation v, const char* site, std::uintptr_t addr) {
    counts[static_cast<int>(v)].fetch_add(1, std::memory_order_acq_rel);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "PersistCheck: %s at %s (word %p)",
                  flit::pmem::to_string(v), site,
                  reinterpret_cast<void*>(addr));
    std::fprintf(stderr, "%s\n", buf);
    std::lock_guard<std::mutex> lk(diag_mu);
    if (diags.empty()) first_site = site;
    if (diags.size() < kMaxDiags) diags.emplace_back(buf);
  }

  void mark_store(std::uintptr_t a, std::size_t len) {
    if (len == 0) return;
    const std::uintptr_t first = a & ~(kWordBytes - 1);
    const std::uintptr_t last = (a + len - 1) & ~(kWordBytes - 1);
    for (std::uintptr_t w = first; w <= last; w += kWordBytes) {
      std::atomic<std::uint32_t>* st = find_word(w);
      if (st == nullptr) continue;
      std::uint32_t cur = st->load(std::memory_order_relaxed);
      std::uint32_t next;
      do {
        next = pack(seq_of(cur) + 1, kDirty);
      } while (!st->compare_exchange_weak(cur, next,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    }
  }

  /// True if every word of [a, a+len) is Clean; else sets *bad_word.
  bool range_clean(std::uintptr_t a, std::size_t len,
                   std::uintptr_t* bad_word) {
    if (len == 0) return true;
    const std::uintptr_t first = a & ~(kWordBytes - 1);
    const std::uintptr_t last = (a + len - 1) & ~(kWordBytes - 1);
    for (std::uintptr_t w = first; w <= last; w += kWordBytes) {
      std::atomic<std::uint32_t>* st = find_word(w);
      if (st == nullptr) continue;
      if (state_of(st->load(std::memory_order_acquire)) != kClean) {
        *bad_word = w;
        return false;
      }
    }
    return true;
  }

  /// Force [a, a+len) Clean after reporting a violation on it, so one bug
  /// produces one diagnostic instead of a cascade at every later check.
  void force_clean(std::uintptr_t a, std::size_t len) {
    if (len == 0) return;
    const std::uintptr_t first = a & ~(kWordBytes - 1);
    const std::uintptr_t last = (a + len - 1) & ~(kWordBytes - 1);
    for (std::uintptr_t w = first; w <= last; w += kWordBytes) {
      std::atomic<std::uint32_t>* st = find_word(w);
      if (st == nullptr) continue;
      std::uint32_t cur = st->load(std::memory_order_relaxed);
      while (!st->compare_exchange_weak(cur, pack(seq_of(cur), kClean),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      }
    }
  }
};

PersistCheck::Impl& PersistCheck::impl() {
  // Immortal, like StatsRegistry: threads may still run hooks during
  // static destruction, and the atexit report reads the counters.
  static Impl* i = new Impl();
  return *i;
}

PersistCheck& PersistCheck::instance() {
  static PersistCheck* p = new PersistCheck();
  return *p;
}

void PersistCheck::on_register_region(const void* base, std::size_t len) {
  Impl& im = impl();
  std::call_once(im.atexit_once, [] {
    std::atexit([] {
      PersistCheck& pc = PersistCheck::instance();
      const std::uint64_t total = pc.total_violations();
      if (total == 0) return;
      Impl& im2 = pc.impl();
      std::fprintf(stderr,
                   "PersistCheck: %llu unacknowledged violation(s) at "
                   "exit:\n",
                   static_cast<unsigned long long>(total));
      {
        std::lock_guard<std::mutex> lk(im2.diag_mu);
        for (const std::string& d : im2.diags) {
          std::fprintf(stderr, "  %s\n", d.c_str());
        }
      }
      std::_Exit(1);
    });
  });

  len = round_up_to_line(len);
  Impl::Region r;
  r.base = reinterpret_cast<std::uintptr_t>(base);
  r.words = len / kWordBytes;
  r.state = std::make_unique<std::atomic<std::uint32_t>[]>(r.words);
  for (std::size_t i = 0; i < r.words; ++i) {
    r.state[i].store(0, std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> lk(im.mu);
  const std::size_t n = im.region_count.load(std::memory_order_relaxed);
  if (n == Impl::kMaxRegions) {
    throw std::length_error("PersistCheck: too many registered regions");
  }
  im.regions[n] = std::move(r);
  im.region_count.store(n + 1, std::memory_order_release);
}

void PersistCheck::on_clear_regions() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  const std::size_t n = im.region_count.load(std::memory_order_relaxed);
  im.region_count.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < n; ++i) im.regions[i] = Impl::Region{};
  im.epoch.fetch_add(1, std::memory_order_acq_rel);
}

void PersistCheck::on_mark_all_clean() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  const std::size_t n = im.region_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    Impl::Region& r = im.regions[i];
    for (std::size_t w = 0; w < r.words; ++w) {
      r.state[w].store(0, std::memory_order_relaxed);
    }
  }
  im.epoch.fetch_add(1, std::memory_order_acq_rel);
}

void PersistCheck::on_store(const void* p, std::size_t len) noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  im.mark_store(reinterpret_cast<std::uintptr_t>(p), len);
}

void PersistCheck::on_pwb(const void* addr) noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  const std::uintptr_t line =
      line_base(reinterpret_cast<std::uintptr_t>(addr));
  if (im.find_word(line) == nullptr) return;

  Tls& t = im.valid_tls();
  bool any_tracked = false;
  for (std::size_t i = 0; i < kWordsPerLine; ++i) {
    const std::uintptr_t w = line + i * kWordBytes;
    std::atomic<std::uint32_t>* st = im.find_word(w);
    if (st == nullptr) continue;
    std::uint32_t cur = st->load(std::memory_order_acquire);
    for (;;) {
      if (state_of(cur) == kClean) break;
      if (state_of(cur) == kPending) {
        // Another thread flushed it first (or a reader's flush-if-tagged
        // re-flushed it): our snapshot carries the same store, so our
        // fence may also publish it.
        t.pending.push_back({w, seq_of(cur)});
        any_tracked = true;
        break;
      }
      // Dirty -> FlushedPending, same sequence.
      if (st->compare_exchange_weak(cur, pack(seq_of(cur), kPending),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
        t.pending.push_back({w, seq_of(cur)});
        any_tracked = true;
        break;
      }
    }
  }
  if (!any_tracked) count_redundant_pwb();
}

void PersistCheck::on_pfence() noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  Tls& t = im.valid_tls();
  for (const PendingWord& pw : t.pending) {
    std::atomic<std::uint32_t>* st = im.find_word(pw.addr);
    if (st == nullptr) continue;
    std::uint32_t cur = st->load(std::memory_order_acquire);
    // Publish only if no newer store superseded the flushed snapshot —
    // the state-level twin of SimMemory::publish_line's seq check.
    while (seq_of(cur) == pw.seq && state_of(cur) == kPending) {
      if (st->compare_exchange_weak(cur, pack(pw.seq, kClean),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
        break;
      }
    }
  }
  t.pending.clear();
}

void PersistCheck::on_publish(const void* p, std::size_t len,
                              const char* site) noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  std::uintptr_t bad = 0;
  if (!im.range_clean(a, len, &bad)) {
    im.report(PersistViolation::kPublishUnpersisted, site, bad);
    im.force_clean(a, len);
  }
}

void PersistCheck::on_retire(const void* p, std::size_t len,
                             const char* site) noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  Tls& t = im.valid_tls();
  for (const DeferredPub& d : t.deferred) {
    std::atomic<std::uint32_t>* st = im.find_word(d.addr);
    if (st == nullptr) continue;
    const std::uint32_t cur = st->load(std::memory_order_acquire);
    if (seq_of(cur) == d.seq && state_of(cur) != kClean) {
      // The publication that superseded this record is not durable yet:
      // a crash now could recover the OLD link over recycled storage.
      im.report(PersistViolation::kPrematureRetire, site, d.addr);
      return;
    }
  }
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  std::uintptr_t bad = 0;
  if (!im.range_clean(a, len, &bad)) {
    im.report(PersistViolation::kMissingFlushLeak, site, bad);
    im.force_clean(a, len);
  }
}

void PersistCheck::on_deferred_publish(const void* addr,
                                       const char* site) noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  const auto a = reinterpret_cast<std::uintptr_t>(addr) & ~(kWordBytes - 1);
  std::atomic<std::uint32_t>* st = im.find_word(a);
  if (st == nullptr) return;
  Tls& t = im.valid_tls();
  t.deferred.push_back(
      {a, seq_of(st->load(std::memory_order_acquire)), site});
}

void PersistCheck::on_complete_deferred(const void* addr) noexcept {
  Impl& im = impl();
  if (im.region_count.load(std::memory_order_acquire) == 0) return;
  const auto a = reinterpret_cast<std::uintptr_t>(addr) & ~(kWordBytes - 1);
  Tls& t = im.valid_tls();
  for (std::size_t i = t.deferred.size(); i-- > 0;) {
    if (t.deferred[i].addr != a) continue;
    const DeferredPub d = t.deferred[i];
    t.deferred.erase(t.deferred.begin() +
                     static_cast<std::ptrdiff_t>(i));
    std::atomic<std::uint32_t>* st = im.find_word(a);
    if (st != nullptr) {
      const std::uint32_t cur = st->load(std::memory_order_acquire);
      // seq moved => a newer store owns the word's durability (its writer
      // untags/clears after its own fence); unchanged and not Clean =>
      // this completion drops the tag before the covering fence landed.
      if (seq_of(cur) == d.seq && state_of(cur) != kClean) {
        im.report(PersistViolation::kDeferredDangling, d.site, a);
      }
    }
    return;
  }
}

bool PersistCheck::armed() const noexcept {
  return const_cast<PersistCheck*>(this)->impl().region_count.load(
             std::memory_order_acquire) != 0;
}

std::uint64_t PersistCheck::violations(PersistViolation v) const noexcept {
  return const_cast<PersistCheck*>(this)
      ->impl()
      .counts[static_cast<int>(v)]
      .load(std::memory_order_acquire);
}

std::uint64_t PersistCheck::total_violations() const noexcept {
  std::uint64_t t = 0;
  for (int i = 0; i < kPersistViolationKinds; ++i) {
    t += violations(static_cast<PersistViolation>(i));
  }
  return t;
}

void PersistCheck::reset_violations() noexcept {
  Impl& im = impl();
  for (auto& c : im.counts) c.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lk(im.diag_mu);
  im.diags.clear();
  im.first_site = "";
}

void PersistCheck::suppress_pwbs(std::uint64_t n) noexcept {
  impl().suppressed_pwbs.fetch_add(static_cast<std::int64_t>(n),
                                   std::memory_order_acq_rel);
}

bool PersistCheck::consume_suppressed_pwb() noexcept {
  Impl& im = impl();
  std::int64_t cur = im.suppressed_pwbs.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (im.suppressed_pwbs.compare_exchange_weak(
            cur, cur - 1, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

const char* PersistCheck::first_violation_site() const noexcept {
  Impl& im = const_cast<PersistCheck*>(this)->impl();
  std::lock_guard<std::mutex> lk(im.diag_mu);
  return im.first_site;
}

}  // namespace flit::pmem
