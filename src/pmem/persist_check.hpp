// persist_check.hpp — PersistCheck, a shadow-state persistency-ordering
// checker woven into the simulation backend.
//
// The crash-image sweeps in tests/ validate durability *samples*: they
// capture the persisted image at a handful of pfence boundaries and check
// each one recovers. PersistCheck instead observes every store, pwb and
// pfence that the kSimCrash backend models and validates the ordering
// invariants directly, so "no execution published an unpersisted word"
// becomes a checked property of the whole run, not of the sampled
// boundaries.
//
// Per 8-byte word of every registered region the checker tracks a state
// machine mirroring SimMemory's volatile/pending/shadow split:
//
//        store                pwb                  pfence
//   Clean ----> Dirty ----------> FlushedPending ----------> Clean
//                 ^  (snapshotted,  |                (published to the
//                 |   thread-local) |  store         persisted image)
//                 +-----------------+
//
// Each word also carries a store sequence number: a pwb records (word,
// seq) in the flushing thread's pending list, and the matching pfence
// only moves the word to Clean if no newer store intervened — exactly
// the stale-snapshot-drop rule SimMemory::publish_line applies to the
// data, applied here to the state.
//
// Annotated protocol sites then assert against that state:
//
//   1. persist-before-publish (kPublishUnpersisted): a publication site
//      (node link CAS, record install) covers a byte range that must be
//      entirely Clean — a crash after the publish CAS persists must
//      recover a fully persisted object.
//   2. missing-flush leak (kMissingFlushLeak): a record handed to EBR
//      retirement while any of its words never completed a pwb+pfence —
//      the record was reachable from the structure without ever being
//      made durable.
//   3. premature retirement (kPrematureRetire): a superseded record
//      retired while the retiring thread still has deferred publications
//      whose covering pfence has not landed (the exact hazard the
//      batched multi-op path defers retirement to avoid).
//   4. deferred tag left dangling (kDeferredDangling): a
//      cas_deferred-published word completed (untagged / dirty-bit
//      cleared) while its publish pwb was never covered by a pfence —
//      readers would stop flush-on-read before the value is durable.
//
// A fifth, non-fatal output is the redundant-persistence lint: pwbs
// issued on lines whose words are all Clean are counted through
// pmem/stats.hpp (count_redundant_pwb), alongside the always-on
// empty-pfence counter, so fence-coalescing wins are explainable.
//
// Wiring: the hooks live in SimMemory::on_store/on_pwb/on_pfence (and
// the region/crash lifecycle) and in the persist<>/lap_word mutation,
// publication and retirement sites, through the pc_* helpers below. The
// helpers compile to nothing unless FLIT_PERSIST_CHECK is defined (the
// `persistcheck` CMake preset), and even then do nothing until a region
// is registered (i.e. outside kSimCrash crash tests). Violations are
// counted, attributed to their reporting site, and — unless a test
// consumes them via reset_violations() — fail the process at exit.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flit::pmem {

enum class PersistViolation : int {
  kPublishUnpersisted = 0,  ///< published range not fully persisted
  kMissingFlushLeak = 1,    ///< record retired without ever persisting
  kPrematureRetire = 2,     ///< retired before the batch's covering pfence
  kDeferredDangling = 3,    ///< deferred tag cleared with no covering pfence
};
inline constexpr int kPersistViolationKinds = 4;

const char* to_string(PersistViolation v) noexcept;

/// True when the checker is compiled in (FLIT_PERSIST_CHECK builds).
#if defined(FLIT_PERSIST_CHECK)
inline constexpr bool kPersistCheckEnabled = true;
#else
inline constexpr bool kPersistCheckEnabled = false;
#endif

class PersistCheck {
 public:
  static PersistCheck& instance();

  PersistCheck(const PersistCheck&) = delete;
  PersistCheck& operator=(const PersistCheck&) = delete;

  // --- region lifecycle (driven by SimMemory) -----------------------------

  /// Mirror a SimMemory region registration: allocate per-word shadow
  /// state (all Clean) for [base, base+len). Stop-the-world, like
  /// SimMemory::register_region. Arms the checker.
  void on_register_region(const void* base, std::size_t len);

  /// Drop all region state (test teardown). Disarms the checker.
  void on_clear_regions();

  /// crash()/persist_all()/overwrite_volatile(): afterwards the volatile
  /// and persisted images agree (or the test replaced the volatile image
  /// wholesale), so every word resets to Clean and all threads' pending
  /// and deferred lists are invalidated.
  void on_mark_all_clean();

  // --- data-path hooks ----------------------------------------------------

  /// A store wrote [p, p+len): every overlapped word becomes Dirty with a
  /// bumped sequence number.
  void on_store(const void* p, std::size_t len) noexcept;

  /// A pwb snapshotted the line containing addr: Dirty words become
  /// FlushedPending and (with Pending ones re-flushed by readers) join
  /// the calling thread's pending list. A pwb on an all-Clean line bumps
  /// the redundant-pwb lint counter.
  void on_pwb(const void* addr) noexcept;

  /// A pfence by the calling thread: pending (word, seq) entries whose
  /// word was not re-stored since the flush become Clean.
  void on_pfence() noexcept;

  // --- protocol assertions (annotation sites) -----------------------------

  /// About to make [p, p+len) reachable (node link / record install):
  /// report kPublishUnpersisted unless every word is Clean.
  void on_publish(const void* p, std::size_t len, const char* site) noexcept;

  /// Handing [p, p+len) to EBR retirement: report kPrematureRetire if the
  /// calling thread still has un-fenced deferred publications, else
  /// kMissingFlushLeak if any word of the range is not Clean.
  void on_retire(const void* p, std::size_t len, const char* site) noexcept;

  /// A cas_deferred publication succeeded on the word at `addr`: record
  /// (addr, seq) against the calling thread until its completion.
  void on_deferred_publish(const void* addr, const char* site) noexcept;

  /// complete_deferred about to clear the word's tag/dirty bit: report
  /// kDeferredDangling if the matching publication's pwb was never
  /// covered by a pfence (a newer store on the word transfers the
  /// durability obligation to its writer and clears the entry).
  void on_complete_deferred(const void* addr) noexcept;

  // --- reporting / test hooks ---------------------------------------------

  /// True once a region is registered (hooks are live).
  bool armed() const noexcept;

  std::uint64_t violations(PersistViolation v) const noexcept;
  std::uint64_t total_violations() const noexcept;

  /// Acknowledge (zero) all recorded violations — negative tests call
  /// this after asserting; anything left at process exit fails the run.
  void reset_violations() noexcept;

  /// Seeded-bug hook: make the next `n` pwbs issued through pmem::pwb()
  /// disappear (not modelled, not counted), simulating a protocol that
  /// forgot a flush.
  void suppress_pwbs(std::uint64_t n) noexcept;

  /// Consumed by pmem::pwb(); true if this pwb should be dropped.
  bool consume_suppressed_pwb() noexcept;

  /// Description of the first recorded violation ("" if none) — lets
  /// tests assert the diagnostic's class and site, not just a count.
  const char* first_violation_site() const noexcept;

 private:
  PersistCheck() = default;
  ~PersistCheck() = default;

  struct Impl;
  Impl& impl();
};

// --- annotation helpers ------------------------------------------------
// These are the only names the annotated sites use. They compile to
// nothing unless FLIT_PERSIST_CHECK is defined, so the default build's
// hot paths are untouched.

#if defined(FLIT_PERSIST_CHECK)
inline void pc_store(const void* p, std::size_t len) noexcept {
  PersistCheck::instance().on_store(p, len);
}
inline void pc_publish(const void* p, std::size_t len,
                       const char* site) noexcept {
  PersistCheck::instance().on_publish(p, len, site);
}
inline void pc_retire(const void* p, std::size_t len,
                      const char* site) noexcept {
  PersistCheck::instance().on_retire(p, len, site);
}
inline void pc_deferred_publish(const void* addr, const char* site) noexcept {
  PersistCheck::instance().on_deferred_publish(addr, site);
}
inline void pc_complete_deferred(const void* addr) noexcept {
  PersistCheck::instance().on_complete_deferred(addr);
}
#else
inline void pc_store(const void*, std::size_t) noexcept {}
inline void pc_publish(const void*, std::size_t, const char*) noexcept {}
inline void pc_retire(const void*, std::size_t, const char*) noexcept {}
inline void pc_deferred_publish(const void*, const char*) noexcept {}
inline void pc_complete_deferred(const void*) noexcept {}
#endif

}  // namespace flit::pmem
