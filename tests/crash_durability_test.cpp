// Crash-durability tests: the paper's headline correctness claim
// (Theorem 3.1 — FliT's automatic mode makes any linearizable structure
// durably linearizable; §3.1 — NVtraverse and manual annotations preserve
// it), executed against the SimCrash backend.
//
// Protocol per test: build the structure with the crash simulator active,
// run operations (single- or multi-threaded), quiesce, simulate a power
// failure, recover from the persistent roots, and verify the recovered
// contents are exactly the completed operations' effects.
//
// A negative control (non-persistent words) shows the harness detects
// lost updates — i.e., these tests have teeth.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "ds/harris_list.hpp"
#include "ds/hash_table.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/skiplist.hpp"
#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using K = std::int64_t;

// --- recovery adapters ------------------------------------------------------

template <class Set>
struct Adapter;

template <class W, class M>
struct Adapter<HarrisList<K, K, W, M>> {
  using Set = HarrisList<K, K, W, M>;
  using Handle = std::pair<typename Set::Node*, typename Set::Node*>;
  static Set make() { return Set(); }
  static Handle save(const Set& s) { return {s.head(), s.tail()}; }
  static Set recover(Handle h) { return Set::recover(h.first, h.second); }
};

template <class W, class M>
struct Adapter<SkipList<K, K, W, M>> {
  using Set = SkipList<K, K, W, M>;
  using Handle = std::pair<typename Set::Node*, typename Set::Node*>;
  static Set make() { return Set(); }
  static Handle save(const Set& s) { return {s.head(), s.tail()}; }
  static Set recover(Handle h) { return Set::recover(h.first, h.second); }
};

template <class W, class M>
struct Adapter<NatarajanBst<K, K, W, M>> {
  using Set = NatarajanBst<K, K, W, M>;
  using Handle = std::pair<typename Set::Node*, typename Set::Node*>;
  static Set make() { return Set(); }
  static Handle save(const Set& s) { return {s.root(), s.sentinel()}; }
  static Set recover(Handle h) { return Set::recover(h.first, h.second); }
};

template <class W, class M>
struct Adapter<HashTable<K, K, W, M>> {
  using Set = HashTable<K, K, W, M>;
  using Handle = typename Set::Roots*;
  static Set make() { return Set(64); }
  static Handle save(const Set& s) { return s.roots(); }
  static Set recover(Handle h) { return Set::recover(h); }
};

template <class Set>
std::set<K> sweep(const Set& s, K range) {
  std::set<K> out;
  for (K k = 0; k < range; ++k) {
    if (s.contains(k)) out.insert(k);
  }
  return out;
}

// --- fixture ----------------------------------------------------------------

template <class SetT>
class CrashDurabilityTest : public PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    recl::Ebr::instance().set_reclaim(false);  // no reuse across a crash
    pmem::Pool::instance().register_with_sim();
    pmem::set_backend(pmem::Backend::kSimCrash);
  }
  void TearDown() override {
    recl::Ebr::instance().set_reclaim(true);
    PmemTest::TearDown();
  }
};

template <class W, class M>
using ListOf = HarrisList<K, K, W, M>;
template <class W, class M>
using BstOf = NatarajanBst<K, K, W, M>;
template <class W, class M>
using SkipOf = SkipList<K, K, W, M>;
template <class W, class M>
using TableOf = HashTable<K, K, W, M>;

using DurableConfigs = ::testing::Types<
    ListOf<HashedWords, Automatic>, ListOf<HashedWords, NVTraverse>,
    ListOf<HashedWords, Manual>, ListOf<AdjacentWords, Automatic>,
    ListOf<LapWords, Automatic>,
    BstOf<HashedWords, Automatic>, BstOf<HashedWords, NVTraverse>,
    BstOf<HashedWords, Manual>, BstOf<AdjacentWords, Automatic>,
    BstOf<PlainWords, Automatic>,
    SkipOf<HashedWords, Automatic>, SkipOf<HashedWords, NVTraverse>,
    SkipOf<HashedWords, Manual>, SkipOf<LapWords, Automatic>,
    TableOf<HashedWords, Automatic>, TableOf<HashedWords, NVTraverse>,
    TableOf<HashedWords, Manual>, TableOf<AdjacentWords, Manual>,
    TableOf<PerLineWords, Automatic>>;

TYPED_TEST_SUITE(CrashDurabilityTest, DurableConfigs);

TYPED_TEST(CrashDurabilityTest, CompletedOpsSurviveCrash) {
  using A = Adapter<TypeParam>;
  constexpr K kRange = 64;
  auto set = A::make();
  auto handle = A::save(set);

  std::mt19937_64 rng(42);
  std::set<K> oracle;
  for (int i = 0; i < 800; ++i) {
    const K k = static_cast<K>(rng() % kRange);
    if (rng() % 2 == 0) {
      oracle.insert(k);
      set.insert(k, k);
    } else {
      oracle.erase(k);
      set.remove(k);
    }
  }
  pmem::SimMemory::instance().crash();
  auto recovered = A::recover(handle);
  EXPECT_EQ(sweep(recovered, kRange), oracle)
      << "every completed operation's effect must survive the crash";
}

TYPED_TEST(CrashDurabilityTest, SurvivesRepeatedCrashes) {
  using A = Adapter<TypeParam>;
  using Set = TypeParam;
  constexpr K kRange = 48;
  auto owner = A::make();  // owns the nodes; views below are non-owning
  auto handle = A::save(owner);
  std::vector<Set> views;
  views.reserve(5);
  Set* cur = &owner;
  std::mt19937_64 rng(7);
  std::set<K> oracle;

  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 200; ++i) {
      const K k = static_cast<K>(rng() % kRange);
      if (rng() % 2 == 0) {
        oracle.insert(k);
        cur->insert(k, k);
      } else {
        oracle.erase(k);
        cur->remove(k);
      }
    }
    pmem::SimMemory::instance().crash();
    views.push_back(A::recover(handle));
    cur = &views.back();
    ASSERT_EQ(sweep(*cur, kRange), oracle) << "round " << round;
    // Keep operating on the recovered structure (new epoch of ops).
  }
}

TYPED_TEST(CrashDurabilityTest, ConcurrentOpsThenCrash) {
  using A = Adapter<TypeParam>;
  constexpr K kRange = 128;
  constexpr int kThreads = 4;
  auto set = A::make();
  auto handle = A::save(set);

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&set, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 101 + 11);
      for (int i = 0; i < 1'500; ++i) {
        const K k = static_cast<K>(rng() % kRange);
        switch (rng() % 3) {
          case 0:
            set.insert(k, k);
            break;
          case 1:
            set.remove(k);
            break;
          default:
            set.contains(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();  // quiesce: all ops completed

  const std::set<K> before = sweep(set, kRange);
  pmem::SimMemory::instance().crash();
  auto recovered = A::recover(handle);
  EXPECT_EQ(sweep(recovered, kRange), before)
      << "with all operations completed, the recovered state must equal "
         "the pre-crash state exactly";
}

// --- negative control -------------------------------------------------------

class CrashNegativeTest : public CrashDurabilityTest<int> {};

TEST_F(CrashNegativeTest, NonPersistentWordsLoseUpdates) {
  // Sanity check that the harness can detect loss: with VolatileWords no
  // pwb/pfence is ever issued, so inserted keys must vanish on crash.
  using Set = HarrisList<K, K, VolatileWords, Automatic>;
  Set set;
  auto* head = set.head();
  auto* tail = set.tail();
  // Checkpoint the empty structure so the sentinels themselves survive
  // (the point under test is the *updates*, not the constructor).
  pmem::SimMemory::instance().persist_all();
  for (K k = 0; k < 32; ++k) set.insert(k, k);
  pmem::SimMemory::instance().crash();
  Set recovered = Set::recover(head, tail);
  EXPECT_EQ(recovered.size(), 0u)
      << "non-persistent baseline must lose everything (otherwise the "
         "crash simulator is vacuous)";
}

// A deliberately broken durability method: traversal/critical stores all
// v-instructions. (Namespace scope: local classes cannot have static data
// members.)
struct BrokenMethod {
  static constexpr const char* name = "broken";
  static constexpr bool traversal_load = kVolatile;
  static constexpr bool transition_load = kVolatile;
  static constexpr bool critical_load = kVolatile;
  static constexpr bool critical_store = kVolatile;
  static constexpr bool cleanup_store = kVolatile;
  static constexpr bool persist_node_init = false;
};

TEST_F(CrashNegativeTest, VolatileCriticalStoresLoseUpdates) {
  // Completed inserts may be lost — and with the all-volatile annotation on
  // the Harris list they must be, since nothing flushes the link CAS.
  using Set = HarrisList<K, K, HashedWords, BrokenMethod>;
  Set set;
  auto* head = set.head();
  auto* tail = set.tail();
  pmem::SimMemory::instance().persist_all();
  for (K k = 0; k < 32; ++k) set.insert(k, k);
  pmem::SimMemory::instance().crash();
  Set recovered = Set::recover(head, tail);
  EXPECT_LT(recovered.size(), 32u)
      << "v-only annotation must not be durable — the checker has teeth";
}

}  // namespace
}  // namespace flit::ds
