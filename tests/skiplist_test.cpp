// Unit + concurrency tests for the lock-free skiplist.
#include "ds/skiplist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using Skip = SkipList<std::int64_t, std::int64_t, HashedWords, Automatic>;

class SkipListTest : public PmemTest {};

TEST_F(SkipListTest, EmptyContainsNothing) {
  Skip s;
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.size(), 0u);
}

TEST_F(SkipListTest, InsertContainsRemove) {
  Skip s;
  EXPECT_TRUE(s.insert(42, 420));
  EXPECT_TRUE(s.contains(42));
  EXPECT_EQ(s.find_value(42).value(), 420);
  EXPECT_TRUE(s.remove(42));
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(s.remove(42));
}

TEST_F(SkipListTest, DuplicateInsertFails) {
  Skip s;
  EXPECT_TRUE(s.insert(1, 1));
  EXPECT_FALSE(s.insert(1, 2));
  EXPECT_EQ(s.find_value(1).value(), 1);
}

TEST_F(SkipListTest, ManySequentialKeys) {
  Skip s;
  for (std::int64_t k = 0; k < 1'000; ++k) EXPECT_TRUE(s.insert(k, -k));
  EXPECT_EQ(s.size(), 1'000u);
  for (std::int64_t k = 0; k < 1'000; ++k) {
    EXPECT_TRUE(s.contains(k)) << k;
    EXPECT_EQ(s.find_value(k).value(), -k);
  }
  for (std::int64_t k = 0; k < 1'000; k += 3) EXPECT_TRUE(s.remove(k));
  for (std::int64_t k = 0; k < 1'000; ++k) {
    EXPECT_EQ(s.contains(k), k % 3 != 0) << k;
  }
}

TEST_F(SkipListTest, ShuffledInsertionOrder) {
  Skip s;
  std::vector<std::int64_t> keys(500);
  for (std::int64_t k = 0; k < 500; ++k) keys[static_cast<std::size_t>(k)] = k;
  std::mt19937_64 rng(3);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (auto k : keys) EXPECT_TRUE(s.insert(k, k));
  for (auto k : keys) EXPECT_TRUE(s.contains(k));
}

TEST_F(SkipListTest, TowersEventuallySpanLevels) {
  // With 4096 inserts, the probability that every node has height 1 is
  // astronomically small; verify the index above level 0 is in use by
  // checking head's level-1 pointer moved off the tail.
  Skip s;
  for (std::int64_t k = 0; k < 4'096; ++k) s.insert(k, k);
  EXPECT_NE(without_mark(s.head()->next[1].load_private()), s.tail());
}

TEST_F(SkipListTest, ConcurrentDisjointInserts) {
  Skip s;
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 1'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&s, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(s.insert(t * kPerThread + i, i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::int64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(s.contains(k)) << k;
  }
}

TEST_F(SkipListTest, ConcurrentInsertersAndRemoversBalance) {
  Skip s;
  constexpr int kPairs = 4;
  constexpr std::int64_t kRange = 256;
  std::atomic<std::int64_t> net{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 2 * kPairs; ++t) {
    ts.emplace_back([&s, &net, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 17 + 3);
      std::int64_t local = 0;
      for (int i = 0; i < 5'000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng() % kRange);
        if (t % 2 == 0) {
          if (s.insert(k, k)) ++local;
        } else {
          if (s.remove(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(s.size(), static_cast<std::size_t>(net.load()));
}

TEST_F(SkipListTest, HighContentionSingleKey) {
  Skip s;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&s, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < 10'000; ++i) {
        if (rng() % 2 == 0) {
          s.insert(7, 7);
        } else {
          s.remove(7);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_LE(s.size(), 1u);
  s.remove(7);
  EXPECT_TRUE(s.insert(7, 8));
  EXPECT_EQ(s.find_value(7).value(), 8);
}

TEST_F(SkipListTest, RecoverHandleSeesSameContent) {
  Skip s;
  for (std::int64_t k = 0; k < 100; ++k) s.insert(k, k + 5);
  Skip view = Skip::recover(s.head(), s.tail());
  EXPECT_EQ(view.size(), 100u);
  for (std::int64_t k = 0; k < 100; ++k) EXPECT_TRUE(view.contains(k));
}

}  // namespace
}  // namespace flit::ds
