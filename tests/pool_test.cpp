// Unit + stress tests for the persistent pool allocator.
#include "pmem/pool.hpp"

#include <gtest/gtest.h>

#include <sys/mman.h>

#include <cstring>
#include <random>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/test_common.hpp"

namespace flit::pmem {
namespace {

class PoolTest : public flit::test::PmemTest {};

TEST_F(PoolTest, AllocationsAreInsideTheRegion) {
  Pool& p = Pool::instance();
  for (std::size_t sz : {1u, 8u, 16u, 24u, 64u, 100u, 1024u}) {
    void* q = p.alloc(sz);
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(p.contains(q));
    std::memset(q, 0xAB, sz);  // must be writable
  }
}

TEST_F(PoolTest, AllocationsAreAligned) {
  Pool& p = Pool::instance();
  for (int i = 0; i < 100; ++i) {
    void* q = p.alloc(static_cast<std::size_t>(1 + i % 60));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % Pool::kGranularity, 0u);
  }
}

TEST_F(PoolTest, DistinctLiveAllocationsDoNotOverlap) {
  Pool& p = Pool::instance();
  std::vector<std::pair<std::uintptr_t, std::size_t>> blocks;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::size_t sz = 8 + rng() % 120;
    auto a = reinterpret_cast<std::uintptr_t>(p.alloc(sz));
    for (const auto& [b, bsz] : blocks) {
      EXPECT_TRUE(a + sz <= b || b + bsz <= a)
          << "overlap between allocations";
    }
    blocks.emplace_back(a, sz);
  }
}

TEST_F(PoolTest, FreedBlockIsReused) {
  Pool& p = Pool::instance();
  void* a = p.alloc(48);
  p.dealloc(a, 48);
  void* b = p.alloc(48);
  EXPECT_EQ(a, b) << "same-thread same-class free list should recycle";
}

TEST_F(PoolTest, LargeAllocationsBypassSizeClasses) {
  Pool& p = Pool::instance();
  void* a = p.alloc(4096);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(p.contains(a));
  std::memset(a, 0x11, 4096);
  p.dealloc(a, 4096);  // no-op, must not crash
}

TEST_F(PoolTest, PnewPdeleteRoundTrip) {
  struct Obj {
    std::uint64_t a, b;
  };
  Obj* o = pnew<Obj>(Obj{1, 2});
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->a, 1u);
  EXPECT_EQ(o->b, 2u);
  EXPECT_TRUE(Pool::instance().contains(o));
  pdelete(o);
}

TEST_F(PoolTest, ExhaustionThrowsBadAlloc) {
  Pool::instance().reinit(1 << 20);  // 1 MiB
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          (void)Pool::instance().alloc(Pool::kChunkSize);
        }
      },
      std::bad_alloc);
  Pool::instance().reinit(kPoolBytes);
}

TEST_F(PoolTest, ResetRecyclesTheRegion) {
  Pool& p = Pool::instance();
  (void)p.alloc(64);
  const std::size_t used = p.bump_used();
  EXPECT_GT(used, 0u);
  p.reset();
  EXPECT_EQ(p.bump_used(), 0u);
  void* q = p.alloc(64);
  EXPECT_TRUE(p.contains(q));
}

TEST_F(PoolTest, ConcurrentAllocationsAreDisjoint) {
  Pool& p = Pool::instance();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uintptr_t>> ptrs(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&p, &ptrs, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t sz = 16 + rng() % 64;
        auto* q = static_cast<std::uint64_t*>(p.alloc(sz));
        *q = static_cast<std::uint64_t>(t) << 32 | static_cast<unsigned>(i);
        ptrs[t].push_back(reinterpret_cast<std::uintptr_t>(q));
      }
    });
  }
  for (auto& th : ts) th.join();
  std::unordered_set<std::uintptr_t> seen;
  for (const auto& v : ptrs) {
    for (std::uintptr_t q : v) {
      EXPECT_TRUE(seen.insert(q).second) << "duplicate allocation";
    }
  }
  // Values written by each thread must be intact (no overlap smashing).
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const auto* q = reinterpret_cast<std::uint64_t*>(ptrs[t][i]);
      EXPECT_EQ(*q, static_cast<std::uint64_t>(t) << 32 |
                        static_cast<unsigned>(i));
    }
  }
}

TEST_F(PoolTest, AdoptThenResetServesFromTheAdoptedRegion) {
  // A file-backed store adopts the region, and benches reset() between
  // phases; the two must compose: reset() rewinds the bump pointer but
  // keeps serving from the adopted memory, never the old mapping.
  constexpr std::size_t kCap = 4 << 20;
  void* region = ::mmap(nullptr, kCap, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(region, MAP_FAILED);
  Pool& p = Pool::instance();

  p.adopt(region, kCap, /*initial_bump=*/Pool::kChunkSize);
  EXPECT_EQ(p.base(), region);
  EXPECT_EQ(p.capacity(), kCap);
  // Resumed allocation starts at (or after) the recovered high-water mark.
  auto* a = static_cast<std::byte*>(p.alloc(64));
  EXPECT_GE(a, static_cast<std::byte*>(region) + Pool::kChunkSize);
  EXPECT_TRUE(p.contains(a));
  std::memset(a, 0x5A, 64);

  p.reset();
  EXPECT_EQ(p.bump_used(), 0u);
  auto* b = static_cast<std::byte*>(p.alloc(64));
  EXPECT_TRUE(p.contains(b)) << "reset must keep serving the adopted region";
  EXPECT_LT(b, static_cast<std::byte*>(region) + Pool::kChunkSize)
      << "reset rewinds to the start of the adopted region";

  // adopt() must not have unmapped what it does not own on replacement.
  p.reinit(kPoolBytes);
  std::memset(region, 0x11, kCap);  // still mapped and writable
  ::munmap(region, kCap);
}

TEST_F(PoolTest, LargeBlocksRoundTripAcrossTheSizeClassBoundary) {
  // The KV value slab allocates records on both sides of the largest size
  // class (64 * 16 = 1024 bytes): classed blocks recycle through the
  // per-thread free lists, larger blocks are bump-only. Both paths must
  // hand back writable, non-overlapping memory across repeated cycles.
  Pool& p = Pool::instance();
  ASSERT_EQ(Pool::kNumSizeClasses * Pool::kGranularity, 1024u);

  void* classed = p.alloc(1024);
  p.dealloc(classed, 1024);
  EXPECT_EQ(p.alloc(1024), classed)
      << "1024 bytes is the last classed size and must recycle";

  for (const std::size_t sz : {1025u, 1040u, 4096u, 65536u}) {
    void* prev = nullptr;
    for (int i = 0; i < 8; ++i) {
      auto* q = static_cast<std::byte*>(p.alloc(sz));
      ASSERT_NE(q, nullptr);
      EXPECT_TRUE(p.contains(q));
      EXPECT_NE(q, prev) << "bump-only blocks are never recycled";
      std::memset(q, static_cast<int>(i), sz);  // fully writable
      EXPECT_EQ(q[sz - 1], static_cast<std::byte>(i));
      p.dealloc(q, sz);  // no-op by contract, must stay safe
      prev = q;
    }
  }
}

TEST_F(PoolTest, RegisterWithSimMakesPoolCrashable) {
  Pool& p = Pool::instance();
  p.register_with_sim();
  auto* word = static_cast<std::uint64_t*>(p.alloc(sizeof(std::uint64_t)));
  *word = 0;
  SimMemory::instance().persist_all();

  BackendScope scope(Backend::kSimCrash);
  *word = 41;
  pwb(word);
  pfence();
  *word = 42;  // not flushed
  SimMemory::instance().crash();
  EXPECT_EQ(*word, 41u);
}

}  // namespace
}  // namespace flit::pmem
