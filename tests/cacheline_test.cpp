// Unit tests for cache-line geometry helpers.
#include "pmem/cacheline.hpp"

#include <gtest/gtest.h>

namespace flit::pmem {
namespace {

TEST(Cacheline, LineBaseAlignsDown) {
  EXPECT_EQ(line_base(std::uintptr_t{0}), 0u);
  EXPECT_EQ(line_base(std::uintptr_t{1}), 0u);
  EXPECT_EQ(line_base(std::uintptr_t{63}), 0u);
  EXPECT_EQ(line_base(std::uintptr_t{64}), 64u);
  EXPECT_EQ(line_base(std::uintptr_t{127}), 64u);
  EXPECT_EQ(line_base(std::uintptr_t{0x12345678}),
            std::uintptr_t{0x12345678} & ~std::uintptr_t{63});
}

TEST(Cacheline, LineBasePointerOverloadMatches) {
  int x = 0;
  const void* lb = line_base(static_cast<const void*>(&x));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lb),
            line_base(reinterpret_cast<std::uintptr_t>(&x)));
  EXPECT_LE(reinterpret_cast<std::uintptr_t>(lb),
            reinterpret_cast<std::uintptr_t>(&x));
}

TEST(Cacheline, LineIndex) {
  EXPECT_EQ(line_index(0, 0), 0u);
  EXPECT_EQ(line_index(0, 63), 0u);
  EXPECT_EQ(line_index(0, 64), 1u);
  EXPECT_EQ(line_index(128, 128 + 640), 10u);
}

TEST(Cacheline, LinesSpanned) {
  EXPECT_EQ(lines_spanned(0, 0), 0u);
  EXPECT_EQ(lines_spanned(0, 1), 1u);
  EXPECT_EQ(lines_spanned(0, 64), 1u);
  EXPECT_EQ(lines_spanned(0, 65), 2u);
  EXPECT_EQ(lines_spanned(63, 2), 2u);   // straddles a boundary
  EXPECT_EQ(lines_spanned(60, 8), 2u);
  EXPECT_EQ(lines_spanned(64, 128), 2u);
}

TEST(Cacheline, RoundUpToLine) {
  EXPECT_EQ(round_up_to_line(0), 0u);
  EXPECT_EQ(round_up_to_line(1), 64u);
  EXPECT_EQ(round_up_to_line(64), 64u);
  EXPECT_EQ(round_up_to_line(65), 128u);
}

}  // namespace
}  // namespace flit::pmem
