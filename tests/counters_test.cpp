// Unit + property tests for flit-counter placement policies (§5.1).
#include "core/counters.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit {
namespace {

class CounterTableTest : public flit::test::PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    HashedCounterTable::instance().configure(
        HashedCounterTable::kDefaultSlots, 1);
  }
};

TEST_F(CounterTableTest, ConfigureRoundsToPowerOfTwo) {
  auto& t = HashedCounterTable::instance();
  t.configure(1000, 1);
  EXPECT_EQ(t.slots(), 1024u);
  EXPECT_EQ(t.footprint_bytes(), 1024u);
  t.configure(4096, 1);
  EXPECT_EQ(t.slots(), 4096u);
}

TEST_F(CounterTableTest, StrideMultipliesFootprint) {
  auto& t = HashedCounterTable::instance();
  t.configure(1024, 8);  // unpacked: one counter per 8 bytes
  EXPECT_EQ(t.footprint_bytes(), 8192u);
  t.configure(1024, 64);  // one counter per cache line of the table
  EXPECT_EQ(t.footprint_bytes(), 64u * 1024u);
}

TEST_F(CounterTableTest, TagUntagBalance) {
  auto& t = HashedCounterTable::instance();
  int x = 0;
  EXPECT_FALSE(t.tagged(&x, 0));
  t.tag(&x, 0);
  EXPECT_TRUE(t.tagged(&x, 0));
  t.tag(&x, 0);
  EXPECT_TRUE(t.tagged(&x, 0));
  t.untag(&x, 0);
  EXPECT_TRUE(t.tagged(&x, 0));  // one pending store remains
  t.untag(&x, 0);
  EXPECT_FALSE(t.tagged(&x, 0));
  EXPECT_TRUE(t.all_zero());
}

TEST_F(CounterTableTest, GranularityShiftSharesLineCounters) {
  auto& t = HashedCounterTable::instance();
  alignas(64) std::uint64_t line[8] = {};
  // With gran_shift=6 every word on the line maps to the same counter.
  t.tag(&line[0], 6);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(t.tagged(&line[i], 6)) << "word " << i;
  }
  t.untag(&line[3], 6);  // any word on the line may untag
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(t.tagged(&line[i], 6));
  }
}

TEST_F(CounterTableTest, WordGranularityDistinguishesNeighbors) {
  auto& t = HashedCounterTable::instance();
  alignas(64) std::uint64_t line[8] = {};
  t.tag(&line[0], 0);
  EXPECT_TRUE(t.tagged(&line[0], 0));
  // Neighboring words should (with a 1M-slot table) not collide.
  int collisions = 0;
  for (int i = 1; i < 8; ++i) {
    if (t.tagged(&line[i], 0)) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
  t.untag(&line[0], 0);
}

TEST_F(CounterTableTest, TinyTableForcesCollisions) {
  auto& t = HashedCounterTable::instance();
  t.configure(64, 1);  // 64 counters: collisions guaranteed across 1k words
  std::vector<std::uint64_t> words(1024);
  t.tag(&words[0], 0);
  int tagged_others = 0;
  for (std::size_t i = 1; i < words.size(); ++i) {
    if (t.tagged(&words[i], 0)) ++tagged_others;
  }
  EXPECT_GT(tagged_others, 0)
      << "a 64-slot table must alias some of 1024 distinct words";
  t.untag(&words[0], 0);
  EXPECT_TRUE(t.all_zero());
}

TEST_F(CounterTableTest, ConcurrentTagUntagNeverUnderflows) {
  auto& t = HashedCounterTable::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::uint64_t shared_word = 0;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&t, &shared_word] {
      for (int j = 0; j < kIters; ++j) {
        t.tag(&shared_word, 0);
        t.untag(&shared_word, 0);
      }
    });
  }
  for (auto& th : ts) th.join();
  // Lemma 5.1: the balance after all p-stores terminate is exactly 0.
  EXPECT_FALSE(t.tagged(&shared_word, 0));
  EXPECT_TRUE(t.all_zero());
}

TEST_F(CounterTableTest, PolicyWrappersRouteToTheTable) {
  auto& t = HashedCounterTable::instance();
  std::uint64_t w = 0;
  HashedPolicy::tag(&w);
  EXPECT_TRUE(HashedPolicy::tagged(&w));
  EXPECT_TRUE(t.tagged(&w, 0));
  HashedPolicy::untag(&w);
  EXPECT_FALSE(HashedPolicy::tagged(&w));

  alignas(64) std::uint64_t line[8] = {};
  PerLinePolicy::tag(&line[0]);
  EXPECT_TRUE(PerLinePolicy::tagged(&line[7]))
      << "per-line policy shares the tag across the data line";
  PerLinePolicy::untag(&line[0]);
  EXPECT_FALSE(PerLinePolicy::tagged(&line[7]));
}

TEST(PolicyKinds, AreDistinct) {
  EXPECT_EQ(AdjacentPolicy::kind, CounterKind::kAdjacent);
  EXPECT_EQ(HashedPolicy::kind, CounterKind::kExternal);
  EXPECT_EQ(PerLinePolicy::kind, CounterKind::kExternal);
  EXPECT_EQ(PlainPolicy::kind, CounterKind::kPlain);
  EXPECT_EQ(VolatilePolicy::kind, CounterKind::kVolatile);
  EXPECT_STRNE(AdjacentPolicy::name, HashedPolicy::name);
}

}  // namespace
}  // namespace flit
