// Unit tests for the crash simulator: the executable model of the paper's
// §2.1 volatile/persistent memory semantics.
#include "pmem/sim_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "pmem/backend.hpp"
#include "support/test_common.hpp"

namespace flit::pmem {
namespace {

// A line-aligned scratch region for direct SimMemory manipulation.
struct alignas(kCacheLineSize) Scratch {
  std::uint64_t words[64] = {};  // 8 cache lines
};

class SimMemoryTest : public flit::test::PmemTest {};

TEST_F(SimMemoryTest, UnflushedStoreIsLostOnCrash) {
  static Scratch s;
  s.words[0] = 0;
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[0] = 42;  // volatile store, never flushed
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[0], 0u) << "store must not survive without pwb+pfence";
}

TEST_F(SimMemoryTest, FlushedAndFencedStoreSurvivesCrash) {
  static Scratch s;
  s.words[1] = 0;
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[1] = 7;
  SimMemory::instance().on_pwb(&s.words[1]);
  SimMemory::instance().on_pfence();
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[1], 7u);
}

TEST_F(SimMemoryTest, FlushWithoutFenceIsLostOnCrash) {
  static Scratch s;
  s.words[2] = 0;
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[2] = 9;
  SimMemory::instance().on_pwb(&s.words[2]);
  // no pfence
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[2], 0u)
      << "pwb is non-blocking; without pfence the line may not be durable";
}

TEST_F(SimMemoryTest, PwbSnapshotsValueAtFlushTime) {
  static Scratch s;
  s.words[3] = 0;
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[3] = 1;
  SimMemory::instance().on_pwb(&s.words[3]);  // snapshot holds 1
  s.words[3] = 2;                             // later store, not flushed
  SimMemory::instance().on_pfence();
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[3], 1u);
}

TEST_F(SimMemoryTest, WholeLineIsFlushedTogether) {
  static Scratch s;
  SimMemory::instance().register_region(&s, sizeof(s));

  // words[0..7] share the first line.
  s.words[0] = 11;
  s.words[7] = 77;
  SimMemory::instance().on_pwb(&s.words[0]);
  SimMemory::instance().on_pfence();
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[0], 11u);
  EXPECT_EQ(s.words[7], 77u) << "pwb persists the whole cache line";
}

TEST_F(SimMemoryTest, DistinctLinesAreIndependent) {
  static Scratch s;
  s = Scratch{};
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[0] = 1;   // line 0, flushed
  s.words[8] = 2;   // line 1, not flushed
  SimMemory::instance().on_pwb(&s.words[0]);
  SimMemory::instance().on_pfence();
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[0], 1u);
  EXPECT_EQ(s.words[8], 0u);
}

TEST_F(SimMemoryTest, PwbOutsideRegionIsIgnored) {
  static Scratch s;
  SimMemory::instance().register_region(&s, sizeof(s));
  std::uint64_t local = 5;
  SimMemory::instance().on_pwb(&local);  // must not crash or track
  SimMemory::instance().on_pfence();
  EXPECT_FALSE(SimMemory::instance().contains(&local));
  EXPECT_TRUE(SimMemory::instance().contains(&s.words[0]));
}

TEST_F(SimMemoryTest, PendingIsPerThread) {
  static Scratch s;
  s.words[0] = 0;
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[0] = 123;
  SimMemory::instance().on_pwb(&s.words[0]);
  EXPECT_TRUE(SimMemory::instance().line_pending_here(&s.words[0]));

  // Another thread's pfence must NOT publish this thread's pending line.
  std::thread([] { SimMemory::instance().on_pfence(); }).join();
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[0], 0u);
}

TEST_F(SimMemoryTest, CrashDiscardsPendingFlushes) {
  static Scratch s;
  s.words[4] = 0;
  SimMemory::instance().register_region(&s, sizeof(s));

  s.words[4] = 50;
  SimMemory::instance().on_pwb(&s.words[4]);
  SimMemory::instance().crash();
  // Post-crash pfence must not resurrect the pre-crash pending flush.
  SimMemory::instance().on_pfence();
  EXPECT_EQ(s.words[4], 0u);
}

TEST_F(SimMemoryTest, PersistAllCheckpointsCurrentState) {
  static Scratch s;
  SimMemory::instance().register_region(&s, sizeof(s));
  s.words[5] = 99;
  SimMemory::instance().persist_all();
  s.words[5] = 100;  // volatile
  SimMemory::instance().crash();
  EXPECT_EQ(s.words[5], 99u);
}

TEST_F(SimMemoryTest, PersistedLineIntrospection) {
  static Scratch s;
  s.words[0] = 0xABCD;
  SimMemory::instance().register_region(&s, sizeof(s));
  auto line = SimMemory::instance().persisted_line(&s.words[0]);
  ASSERT_EQ(line.size(), kCacheLineSize);
  std::uint64_t v = 0;
  std::memcpy(&v, line.data(), sizeof(v));
  EXPECT_EQ(v, 0xABCDu);
}

TEST_F(SimMemoryTest, ConcurrentFlushersPublishTheirOwnLines) {
  static Scratch s;
  s = Scratch{};
  SimMemory::instance().register_region(&s, sizeof(s));

  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      // Thread t owns line t (words 8t..8t+7).
      s.words[8 * t] = static_cast<std::uint64_t>(t + 1);
      SimMemory::instance().on_pwb(&s.words[8 * t]);
      SimMemory::instance().on_pfence();
    });
  }
  for (auto& th : ts) th.join();
  SimMemory::instance().crash();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s.words[8 * t], static_cast<std::uint64_t>(t + 1));
  }
}

TEST_F(SimMemoryTest, CrashCountAdvances) {
  const auto before = SimMemory::instance().crash_count();
  SimMemory::instance().crash();
  EXPECT_GT(SimMemory::instance().crash_count(), before);
}

}  // namespace
}  // namespace flit::pmem
