// Unit + concurrency tests for the Natarajan–Mittal external BST.
#include "ds/natarajan_bst.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using Bst = NatarajanBst<std::int64_t, std::int64_t, HashedWords, Automatic>;

class BstTest : public PmemTest {};

TEST_F(BstTest, EmptyTreeContainsNothing) {
  Bst t;
  EXPECT_FALSE(t.contains(0));
  EXPECT_FALSE(t.contains(123));
  EXPECT_EQ(t.size(), 0u);
}

TEST_F(BstTest, InsertThenContains) {
  Bst t;
  EXPECT_TRUE(t.insert(10, 100));
  EXPECT_TRUE(t.contains(10));
  EXPECT_FALSE(t.contains(9));
  EXPECT_FALSE(t.contains(11));
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(BstTest, DuplicateInsertFails) {
  Bst t;
  EXPECT_TRUE(t.insert(10, 1));
  EXPECT_FALSE(t.insert(10, 2));
  EXPECT_EQ(t.find(10).value(), 1);
}

TEST_F(BstTest, RemoveLeafAndReinsert) {
  Bst t;
  EXPECT_TRUE(t.insert(10, 1));
  EXPECT_TRUE(t.remove(10));
  EXPECT_FALSE(t.contains(10));
  EXPECT_FALSE(t.remove(10));
  EXPECT_TRUE(t.insert(10, 2));
  EXPECT_EQ(t.find(10).value(), 2);
}

TEST_F(BstTest, RemoveFromDeepTree) {
  Bst t;
  for (std::int64_t k : {50, 25, 75, 10, 30, 60, 90, 5, 15}) {
    EXPECT_TRUE(t.insert(k, k));
  }
  EXPECT_EQ(t.size(), 9u);
  for (std::int64_t k : {25, 90, 50, 5}) {
    EXPECT_TRUE(t.remove(k)) << k;
    EXPECT_FALSE(t.contains(k)) << k;
  }
  for (std::int64_t k : {75, 10, 30, 60, 15}) {
    EXPECT_TRUE(t.contains(k)) << k;
  }
  EXPECT_EQ(t.size(), 5u);
}

TEST_F(BstTest, AscendingDescendingAndRandomOrders) {
  for (int mode = 0; mode < 3; ++mode) {
    Bst t;
    std::vector<std::int64_t> keys;
    for (std::int64_t k = 0; k < 300; ++k) keys.push_back(k);
    if (mode == 1) std::reverse(keys.begin(), keys.end());
    if (mode == 2) {
      std::mt19937_64 rng(9);
      std::shuffle(keys.begin(), keys.end(), rng);
    }
    for (auto k : keys) EXPECT_TRUE(t.insert(k, k));
    for (auto k : keys) EXPECT_TRUE(t.contains(k)) << "mode " << mode;
    EXPECT_EQ(t.size(), 300u);
  }
}

TEST_F(BstTest, SentinelKeysAreExcludedFromSize) {
  Bst t;
  EXPECT_EQ(t.size(), 0u);
  t.insert(1, 1);
  EXPECT_EQ(t.size(), 1u);
}

TEST_F(BstTest, ConcurrentDisjointInserts) {
  Bst t;
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 1'000;
  std::vector<std::thread> ts;
  for (int th = 0; th < kThreads; ++th) {
    ts.emplace_back([&t, th] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(t.insert(th * kPerThread + i, i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::int64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(t.contains(k)) << k;
  }
}

TEST_F(BstTest, ConcurrentInsertersAndRemoversBalance) {
  Bst t;
  constexpr int kPairs = 4;
  constexpr std::int64_t kRange = 256;
  std::atomic<std::int64_t> net{0};
  std::vector<std::thread> ts;
  for (int th = 0; th < 2 * kPairs; ++th) {
    ts.emplace_back([&t, &net, th] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(th) * 31 + 5);
      std::int64_t local = 0;
      for (int i = 0; i < 5'000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng() % kRange);
        if (th % 2 == 0) {
          if (t.insert(k, k)) ++local;
        } else {
          if (t.remove(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(net.load()));
}

TEST_F(BstTest, ConcurrentSameKeyContention) {
  // All threads fight over a handful of keys — exercises flag/tag helping.
  Bst t;
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int th = 0; th < kThreads; ++th) {
    ts.emplace_back([&t, th] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(th) + 1);
      for (int i = 0; i < 10'000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng() % 4);
        if (rng() % 2 == 0) {
          t.insert(k, k);
        } else {
          t.remove(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_LE(t.size(), 4u);
  // The tree must still be fully operational.
  for (std::int64_t k = 0; k < 4; ++k) t.remove(k);
  EXPECT_TRUE(t.insert(2, 2));
  EXPECT_TRUE(t.contains(2));
}

TEST_F(BstTest, RecoverHandleSeesSameContent) {
  Bst t;
  for (std::int64_t k = 0; k < 64; ++k) t.insert(k, k * 7);
  Bst view = Bst::recover(t.root(), t.sentinel());
  for (std::int64_t k = 0; k < 64; ++k) {
    EXPECT_TRUE(view.contains(k));
    EXPECT_EQ(view.find(k).value(), k * 7);
  }
  EXPECT_EQ(view.size(), 64u);
}

}  // namespace
}  // namespace flit::ds
