// Unit, property, concurrency, and crash tests for the lock-based B+-tree
// (private-instruction optimization, paper §5/§7).
#include "ds/locked_bptree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using K = std::int64_t;
using Tree = LockedBPlusTree<K, K, PersistAtRelease>;

class BPlusTreeTest : public PmemTest {};

TEST_F(BPlusTreeTest, EmptyTree) {
  Tree t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.range(0, 100).empty());
}

TEST_F(BPlusTreeTest, InsertFindRemove) {
  Tree t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.find(5).value(), 50);
  EXPECT_TRUE(t.remove(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.remove(5));
}

TEST_F(BPlusTreeTest, OverwriteRevivesTombstone) {
  Tree t;
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 20));  // live: overwrite, not fresh
  EXPECT_EQ(t.find(1).value(), 20);
  EXPECT_TRUE(t.remove(1));
  EXPECT_TRUE(t.insert(1, 30));  // tombstoned: fresh again
  EXPECT_EQ(t.find(1).value(), 30);
}

TEST_F(BPlusTreeTest, SplitsAcrossManyLevels) {
  Tree t;
  constexpr K kN = 10'000;  // forces multi-level splits at fanout 16
  for (K k = 0; k < kN; ++k) EXPECT_TRUE(t.insert(k, k * 3));
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kN));
  for (K k = 0; k < kN; ++k) {
    ASSERT_TRUE(t.contains(k)) << k;
    ASSERT_EQ(t.find(k).value(), k * 3);
  }
}

TEST_F(BPlusTreeTest, DescendingAndShuffledInsertions) {
  for (int mode = 0; mode < 2; ++mode) {
    Tree t;
    std::vector<K> keys(3'000);
    for (K k = 0; k < 3'000; ++k) keys[static_cast<std::size_t>(k)] = k;
    if (mode == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      std::mt19937_64 rng(4);
      std::shuffle(keys.begin(), keys.end(), rng);
    }
    for (K k : keys) EXPECT_TRUE(t.insert(k, k));
    for (K k : keys) ASSERT_TRUE(t.contains(k)) << "mode " << mode;
  }
}

TEST_F(BPlusTreeTest, RangeScanIsSortedAndFiltered) {
  Tree t;
  for (K k = 0; k < 500; ++k) t.insert(k, k);
  for (K k = 0; k < 500; k += 3) t.remove(k);
  const std::vector<K> got = t.range(100, 200);
  std::vector<K> expect;
  for (K k = 100; k < 200; ++k) {
    if (k % 3 != 0) expect.push_back(k);
  }
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST_F(BPlusTreeTest, MatchesStdMapUnderRandomOps) {
  Tree t;
  std::map<K, K> oracle;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 20'000; ++i) {
    const K k = static_cast<K>(rng() % 512);
    switch (rng() % 4) {
      case 0:
      case 1: {
        const bool fresh = oracle.find(k) == oracle.end();
        ASSERT_EQ(t.insert(k, k + 7), fresh) << "op " << i;
        oracle[k] = k + 7;
        break;
      }
      case 2: {
        const bool present = oracle.erase(k) > 0;
        ASSERT_EQ(t.remove(k), present) << "op " << i;
        break;
      }
      default: {
        const auto it = oracle.find(k);
        const auto got = t.find(k);
        ASSERT_EQ(got.has_value(), it != oracle.end()) << "op " << i;
        if (got) {
          ASSERT_EQ(*got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
}

TEST_F(BPlusTreeTest, ConcurrentReadersDuringWrites) {
  Tree t;
  for (K k = 0; k < 1'000; k += 2) t.insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::mt19937_64 rng(1);
      while (!stop.load()) {
        const K k = static_cast<K>(rng() % 1'000);
        // Even keys were prefilled and are never removed: must be visible.
        if (k % 2 == 0 && !t.contains(k)) {
          ok.store(false);
          return;
        }
      }
    });
  }
  for (K k = 1; k < 1'000; k += 2) {
    t.insert(k, k);
    if (k % 11 == 0) t.remove(k);
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_TRUE(ok.load());
}

TEST_F(BPlusTreeTest, WritersSerializeCorrectly) {
  Tree t;
  constexpr int kThreads = 6;
  constexpr K kPerThread = 2'000;
  std::vector<std::thread> ts;
  for (int th = 0; th < kThreads; ++th) {
    ts.emplace_back([&t, th] {
      for (K i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(t.insert(th * kPerThread + i, i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// --- persistence-mode behaviour ---------------------------------------------

TEST_F(BPlusTreeTest, PersistAtReleaseUsesOneFencePerUpdate) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  Tree t;
  for (K k = 0; k < 100; ++k) t.insert(k, k);  // warm up, causes splits
  const auto before = pmem::stats_snapshot();
  for (K k = 1'000; k < 1'100; ++k) t.insert(k, k);
  const auto d = pmem::stats_snapshot() - before;
  // One batched fence per op (plus none for the rare splits' extra nodes).
  EXPECT_LE(d.pfences, 130u);
  EXPECT_GE(d.pfences, 100u);
}

TEST_F(BPlusTreeTest, NaiveModeIssuesManyMoreFences) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  using Naive = LockedBPlusTree<K, K, PersistEveryStore>;
  Tree opt;
  Naive naive;
  const auto b0 = pmem::stats_snapshot();
  for (K k = 0; k < 1'000; ++k) opt.insert(k, k);
  const auto opt_cost = pmem::stats_snapshot() - b0;
  const auto b1 = pmem::stats_snapshot();
  for (K k = 0; k < 1'000; ++k) naive.insert(k, k);
  const auto naive_cost = pmem::stats_snapshot() - b1;
  EXPECT_GT(naive_cost.pwbs, 2 * opt_cost.pwbs)
      << "treating in-lock stores as shared p-stores must cost more";
  EXPECT_GT(naive_cost.pfences, opt_cost.pfences);
}

TEST_F(BPlusTreeTest, NonPersistentModeIssuesNothing) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  using Volatile = LockedBPlusTree<K, K, NoPersistence>;
  Volatile t;
  const auto before = pmem::stats_snapshot();
  for (K k = 0; k < 500; ++k) t.insert(k, k);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
  EXPECT_EQ(d.pfences, 0u);
}

// --- crash durability at operation boundaries -------------------------------

TEST_F(BPlusTreeTest, QuiescedCrashPreservesEveryCompletedOp) {
  recl::Ebr::instance().set_reclaim(false);
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);

  Tree t;
  std::map<K, K> oracle;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 3'000; ++i) {
    const K k = static_cast<K>(rng() % 256);
    if (rng() % 2 == 0) {
      t.insert(k, k);
      oracle[k] = k;
    } else {
      t.remove(k);
      oracle.erase(k);
    }
  }
  auto* root = t.root();  // capture after quiescing (SMOs may move it)

  pmem::SimMemory::instance().crash();
  Tree view = Tree::recover(root);
  for (K k = 0; k < 256; ++k) {
    ASSERT_EQ(view.contains(k), oracle.count(k) > 0) << k;
  }
  EXPECT_EQ(view.size(), oracle.size());
  recl::Ebr::instance().set_reclaim(true);
}

TEST_F(BPlusTreeTest, RecoveredTreeSupportsRangeScans) {
  recl::Ebr::instance().set_reclaim(false);
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);

  Tree t;
  for (K k = 0; k < 1'000; ++k) t.insert(k, k);
  auto* root = t.root();
  pmem::SimMemory::instance().crash();
  Tree view = Tree::recover(root);
  const auto got = view.range(250, 260);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<K>(250 + i));
  }
  recl::Ebr::instance().set_reclaim(true);
}

}  // namespace
}  // namespace flit::ds
