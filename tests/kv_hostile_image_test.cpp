// Hostile-image recovery tests: Store::open() against files that were
// truncated at the worst possible byte — mid-header, mid-superblock and
// mid-slab (both with and without the clean-shutdown flag, and on both
// layouts). Every case must end in a clean rejection the caller can
// catch (kv::IncompatibleStore / std::runtime_error), never a SIGSEGV
// from walking zeroed node memory and never a silently half-recovered
// store. The rejecting open must also leave the global Pool untouched —
// validation precedes adoption.
//
// Truncation is the canonical hostile shape because ftruncate-to-larger
// (which FileRegion::open performs to restore the recorded capacity)
// refills the lost tail with zeros: every pointer into the cut region
// becomes a null-looking fake node, which is exactly what the tail-
// sentinel termination checks in ds::HarrisList / ds::SkipList exist to
// catch (a healthy chain ends at its tail sentinel; zeroed memory ends
// at nullptr).
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/modes.hpp"
#include "kv/store.hpp"
#include "pmem/file_region.hpp"
#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using K = std::int64_t;

using HashedKv = Store<HashedWords, Automatic>;
using OrderedKv = OrderedStore<HashedWords, Automatic>;

constexpr std::size_t kCapacity = 8 << 20;
constexpr std::size_t kHdr = pmem::FileRegion::kHeaderSize;

class KvHostileImageTest : public PmemTest {
 protected:
  static std::string temp_path() {
    return "/tmp/flit_kv_hostile_image_test_" + std::to_string(::getpid()) +
           ".pmem";
  }

  struct HeaderBits {
    std::uint64_t bump = 0;
    std::uint64_t superblock_off = 0;  // region-relative roots[0]
  };

  static HeaderBits read_header(const std::string& path) {
    pmem::FileRegion::Header h{};
    const int fd = ::open(path.c_str(), O_RDONLY);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::pread(fd, &h, sizeof(h), 0),
              static_cast<ssize_t>(sizeof(h)));
    ::close(fd);
    return {h.bump_offset, h.roots[0]};
  }

  static void truncate_file(const std::string& path, std::uint64_t bytes) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(bytes)), 0);
    ::close(fd);
  }

  /// Zero the clean-shutdown root (Header::roots[1]) so the next open
  /// takes the dirty-image sweep path.
  static void clear_clean_flag(const std::string& path) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const std::uint64_t zero = 0;
    const auto at = static_cast<off_t>(
        offsetof(pmem::FileRegion::Header, roots) + sizeof(std::uint64_t));
    ASSERT_EQ(::pwrite(fd, &zero, sizeof(zero), at),
              static_cast<ssize_t>(sizeof(zero)));
    ::close(fd);
  }

  template <class StoreT>
  void populate(const std::string& path) {
    StoreT kv = StoreT::open(path, kCapacity, 2, 128, KeyRange{0, 4096});
    for (K k = 0; k < 600; ++k) {
      kv.put(k, "hostile-image payload " + std::to_string(k) +
                    std::string(40 + static_cast<std::size_t>(k % 97), 'p'));
    }
    kv.close();
    pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  }

  /// The rejection contract: open() throws something catchable twice in
  /// a row (no crash, no state consumed by the first attempt) and the
  /// global Pool still serves allocations afterwards.
  template <class StoreT, class Exception>
  void expect_stable_rejection(const std::string& path) {
    EXPECT_THROW(
        (void)StoreT::open(path, kCapacity, 2, 128, KeyRange{0, 4096}),
        Exception);
    EXPECT_THROW(
        (void)StoreT::open(path, kCapacity, 2, 128, KeyRange{0, 4096}),
        Exception);
    void* p = pmem::Pool::instance().alloc(64);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(pmem::Pool::instance().contains(p));
  }
};

TEST_F(KvHostileImageTest, TruncatedMidHeaderIsRejectedNotReinitialized) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  populate<HashedKv>(path);

  // Cut inside the region header itself: the magic survives, the
  // metadata after it does not. Reinitializing would silently destroy
  // the committed data, so FileRegion::open must refuse.
  truncate_file(path, 24);
  expect_stable_rejection<HashedKv, std::runtime_error>(path);

  // The refusal must not have "repaired" the file behind our back.
  struct stat st = {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 24) << "a rejecting open must not resize the file";
  pmem::FileRegion::destroy(path);
}

TEST_F(KvHostileImageTest, TruncatedMidSuperblockIsRejected) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  populate<HashedKv>(path);

  // Cut 12 bytes into the store superblock: its magic survives, the
  // version/tags/shard-roots beyond the cut read back as zeros.
  const HeaderBits h = read_header(path);
  ASSERT_GT(h.superblock_off, 0u);
  truncate_file(path, kHdr + h.superblock_off + 12);
  expect_stable_rejection<HashedKv, IncompatibleStore>(path);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvHostileImageTest, TruncatedMidSlabCleanImageIsRejected) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  populate<HashedKv>(path);

  // The superblock sits at creation-time bump; the 600 records were
  // appended above it. Cutting between the two leaves every header
  // intact but breaks bucket chains mid-walk: nodes past the cut read
  // back as zeros, so a traversal reaches nullptr before the tail
  // sentinel. Even with the clean-shutdown flag set, recovery must
  // reject — not crash, and not adopt a store missing half its data.
  const HeaderBits h = read_header(path);
  const std::uint64_t cut = h.superblock_off + 8192;
  ASSERT_LT(cut + 4096, h.bump) << "cut must land inside the data slabs";
  truncate_file(path, kHdr + cut);
  expect_stable_rejection<HashedKv, IncompatibleStore>(path);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvHostileImageTest, TruncatedMidSlabDirtyImageIsRejected) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  populate<HashedKv>(path);

  // Same cut, but with the clean flag cleared the open additionally runs
  // the dirty-shutdown max-extent sweep, whose bounds checks must fire
  // before any node field of an out-of-region fake node is read.
  const HeaderBits h = read_header(path);
  const std::uint64_t cut = h.superblock_off + 8192;
  ASSERT_LT(cut + 4096, h.bump);
  truncate_file(path, kHdr + cut);
  clear_clean_flag(path);
  expect_stable_rejection<HashedKv, IncompatibleStore>(path);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvHostileImageTest, OrderedLayoutTruncatedMidSlabIsRejected) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  populate<OrderedKv>(path);

  // The skiplist variant is the nastier one: recovery also rebuilds the
  // index levels from the bottom chain, and must abort BEFORE stitching
  // (and persisting) an index over a broken chain — a half-rebuilt index
  // would be a silently half-recovered store.
  const HeaderBits h = read_header(path);
  const std::uint64_t cut = h.superblock_off + 8192;
  ASSERT_LT(cut + 4096, h.bump);
  truncate_file(path, kHdr + cut);
  expect_stable_rejection<OrderedKv, IncompatibleStore>(path);

  // Dirty variant of the same image shape.
  pmem::FileRegion::destroy(path);
  populate<OrderedKv>(path);
  const HeaderBits h2 = read_header(path);
  truncate_file(path, kHdr + h2.superblock_off + 8192);
  clear_clean_flag(path);
  expect_stable_rejection<OrderedKv, IncompatibleStore>(path);
  pmem::FileRegion::destroy(path);
}

}  // namespace
}  // namespace flit::kv
