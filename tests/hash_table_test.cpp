// Unit + concurrency tests for the bucketed hash table.
#include "ds/hash_table.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using Table = HashTable<std::int64_t, std::int64_t, HashedWords, Automatic>;

class HashTableTest : public PmemTest {};

TEST_F(HashTableTest, EmptyContainsNothing) {
  Table t(64);
  EXPECT_FALSE(t.contains(0));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.bucket_count(), 64u);
}

TEST_F(HashTableTest, InsertContainsRemove) {
  Table t(64);
  EXPECT_TRUE(t.insert(5, 55));
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.find(5).value(), 55);
  EXPECT_TRUE(t.remove(5));
  EXPECT_FALSE(t.contains(5));
}

TEST_F(HashTableTest, ManyKeysAcrossBuckets) {
  Table t(128);
  for (std::int64_t k = 0; k < 2'000; ++k) EXPECT_TRUE(t.insert(k, k * 11));
  EXPECT_EQ(t.size(), 2'000u);
  for (std::int64_t k = 0; k < 2'000; ++k) {
    EXPECT_TRUE(t.contains(k)) << k;
    EXPECT_EQ(t.find(k).value(), k * 11);
  }
}

TEST_F(HashTableTest, CollidingKeysShareABucketCorrectly) {
  Table t(1);  // force every key into one bucket (pure chain)
  for (std::int64_t k = 0; k < 100; ++k) EXPECT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.size(), 100u);
  for (std::int64_t k = 0; k < 100; k += 2) EXPECT_TRUE(t.remove(k));
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(t.contains(k), k % 2 == 1);
  }
}

TEST_F(HashTableTest, DuplicateInsertFails) {
  Table t(16);
  EXPECT_TRUE(t.insert(9, 1));
  EXPECT_FALSE(t.insert(9, 2));
  EXPECT_EQ(t.find(9).value(), 1);
}

TEST_F(HashTableTest, NegativeKeysWork) {
  Table t(32);
  EXPECT_TRUE(t.insert(-5, 5));
  EXPECT_TRUE(t.contains(-5));
  EXPECT_TRUE(t.remove(-5));
}

TEST_F(HashTableTest, ConcurrentDisjointInserts) {
  Table t(1024);
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 2'000;
  std::vector<std::thread> ts;
  for (int th = 0; th < kThreads; ++th) {
    ts.emplace_back([&t, th] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(t.insert(th * kPerThread + i, i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(HashTableTest, ConcurrentMixedOnFewBuckets) {
  Table t(4);  // heavy per-bucket contention
  constexpr int kThreads = 8;
  std::atomic<std::int64_t> net{0};
  std::vector<std::thread> ts;
  for (int th = 0; th < kThreads; ++th) {
    ts.emplace_back([&t, &net, th] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(th) * 7 + 13);
      std::int64_t local = 0;
      for (int i = 0; i < 5'000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng() % 64);
        if (th % 2 == 0) {
          if (t.insert(k, k)) ++local;
        } else {
          if (t.remove(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(net.load()));
}

TEST_F(HashTableTest, RecoverFromPersistedRoots) {
  Table t(32);
  for (std::int64_t k = 0; k < 500; ++k) t.insert(k, k + 1);
  Table view = Table::recover(t.roots());
  EXPECT_EQ(view.bucket_count(), 32u);
  EXPECT_EQ(view.size(), 500u);
  for (std::int64_t k = 0; k < 500; ++k) {
    EXPECT_TRUE(view.contains(k));
    EXPECT_EQ(view.find(k).value(), k + 1);
  }
}

}  // namespace
}  // namespace flit::ds
