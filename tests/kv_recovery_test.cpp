// Recovery tests for the sharded KV store — durability proven two ways:
//
//   1. Simulated power failure (kSimCrash): no completed put/remove is
//      lost across SimMemory::crash(); Store::recover rebuilds every
//      shard from the superblock and bumps the generation stamp durably.
//      A VolatileWords negative control shows the harness has teeth.
//
//   2. Real restart (FileRegion): a store closed and reopened from its
//      backing file recovers all shards, every committed record, and the
//      session-counting generation stamp.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <fcntl.h>
#include <unistd.h>
#include <vector>

#include "pmem/file_region.hpp"
#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using K = std::int64_t;

/// Deterministic variable-length payload: exercises the record slab on
/// both sides of the pool's 1024-byte size-class boundary.
std::string value_for(K k, std::uint64_t salt) {
  const std::size_t len =
      1 + static_cast<std::size_t>((static_cast<std::uint64_t>(k) * 131 +
                                    salt * 257) %
                                   2048);
  return std::string(len, static_cast<char>('a' + (k + salt) % 26));
}

// --- simulated power failure -----------------------------------------------

template <class StoreT>
class KvCrashTest : public PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    recl::Ebr::instance().set_reclaim(false);  // no reuse across a crash
    pmem::Pool::instance().register_with_sim();
    pmem::set_backend(pmem::Backend::kSimCrash);
  }
  void TearDown() override {
    pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);
    recl::Ebr::instance().set_reclaim(true);
    PmemTest::TearDown();
  }
};

// The sweep covers every persistent word implementation (including
// link-and-persist, whose bit-1 dirty flag must coexist with the value
// word's bit-0 claim mark) and both backend layouts — the ordered store
// recovers through SkipList::recover's index rebuild, which the
// value-claim protocol must not confuse.
using CrashConfigs = ::testing::Types<
    Store<HashedWords, Automatic>, Store<HashedWords, NVTraverse>,
    Store<HashedWords, Manual>, Store<AdjacentWords, Automatic>,
    Store<PerLineWords, Automatic>, Store<LapWords, Automatic>,
    Store<LapWords, NVTraverse>, OrderedStore<HashedWords, Manual>,
    OrderedStore<LapWords, Automatic>>;

TYPED_TEST_SUITE(KvCrashTest, CrashConfigs);

TYPED_TEST(KvCrashTest, CompletedPutsSurviveSimulatedCrash) {
  constexpr K kRange = 96;
  TypeParam kv(4, 64);
  auto* sb = kv.superblock();

  std::mt19937_64 rng(42);
  std::map<K, std::string> oracle;
  for (std::uint64_t i = 0; i < 600; ++i) {
    const K k = static_cast<K>(rng() % kRange);
    if (rng() % 3 != 0) {
      std::string v = value_for(k, i);
      kv.put(k, v);
      oracle[k] = std::move(v);
    } else {
      kv.remove(k);
      oracle.erase(k);
    }
  }

  pmem::SimMemory::instance().crash();
  TypeParam recovered = TypeParam::recover(sb);
  EXPECT_EQ(recovered.generation(), 2u) << "recovery bumps the stamp";
  for (K k = 0; k < kRange; ++k) {
    const auto got = recovered.get(k);
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      EXPECT_EQ(got, std::nullopt) << "key " << k << " was removed";
    } else {
      ASSERT_TRUE(got.has_value()) << "committed put of key " << k
                                   << " lost in the crash";
      EXPECT_EQ(*got, it->second) << "key " << k;
    }
  }
  EXPECT_EQ(recovered.size(), oracle.size());
}

TYPED_TEST(KvCrashTest, GenerationStampSurvivesRepeatedCrashes) {
  constexpr K kRange = 48;
  TypeParam owner(2, 32);
  auto* sb = owner.superblock();
  TypeParam* cur = &owner;
  std::optional<TypeParam> holder;

  std::mt19937_64 rng(7);
  std::map<K, std::string> oracle;
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < 150; ++i) {
      const K k = static_cast<K>(rng() % kRange);
      if (rng() % 2 == 0) {
        std::string v = value_for(k, round * 1000 + i);
        cur->put(k, v);
        oracle[k] = std::move(v);
      } else {
        cur->remove(k);
        oracle.erase(k);
      }
    }
    pmem::SimMemory::instance().crash();
    holder.emplace(TypeParam::recover(sb));
    cur = &*holder;
    ASSERT_EQ(cur->generation(), round + 2) << "round " << round;
    for (const auto& [k, v] : oracle) {
      const auto got = cur->get(k);
      ASSERT_TRUE(got.has_value()) << "round " << round << " key " << k;
      ASSERT_EQ(*got, v) << "round " << round << " key " << k;
    }
    ASSERT_EQ(cur->size(), oracle.size()) << "round " << round;
  }
}

TYPED_TEST(KvCrashTest, ConcurrentOpsThenCrash) {
  constexpr K kRange = 128;
  constexpr int kThreads = 4;
  TypeParam kv(4, 64);
  auto* sb = kv.superblock();

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&kv, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 101 + 11);
      for (std::uint64_t i = 0; i < 1'000; ++i) {
        const K k = static_cast<K>(rng() % kRange);
        switch (rng() % 3) {
          case 0:
            kv.put(k, value_for(k, i));
            break;
          case 1:
            kv.remove(k);
            break;
          default:
            (void)kv.get(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();  // quiesce: all operations completed

  std::map<K, std::string> before;
  for (K k = 0; k < kRange; ++k) {
    if (auto v = kv.get(k)) before[k] = *v;
  }
  pmem::SimMemory::instance().crash();
  TypeParam recovered = TypeParam::recover(sb);
  for (K k = 0; k < kRange; ++k) {
    const auto got = recovered.get(k);
    const auto it = before.find(k);
    if (it == before.end()) {
      EXPECT_EQ(got, std::nullopt) << k;
    } else {
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(*got, it->second) << k;
    }
  }
}

TYPED_TEST(KvCrashTest, CrashDuringOverwriteRecoversOldOrNewValue) {
  // Instruction-granularity durability of the in-place overwrite: capture
  // the persistent image at *every* pfence boundary inside a single
  // put-over-existing-key, reboot into each, and require the key to
  // recover with the old or the new complete value — never absent (the
  // closed remove+insert gap), never torn, never with collateral damage
  // to a neighboring key. Values straddle multiple cache lines so a
  // value-CAS published before the record's persist_range would show up
  // as a torn read here.
  struct Ctx {
    std::uint64_t fence_count = 0;
    std::uint64_t target = 0;
    bool armed = false;
    std::vector<std::byte> image;
    static void hook(void* p) {
      auto* c = static_cast<Ctx*>(p);
      if (!c->armed) return;
      if (++c->fence_count == c->target) {
        c->image = pmem::SimMemory::instance().clone_shadow(0);
      }
    }
  };

  const std::string vold(120, 'o');   // > one cache line
  const std::string vnew(3000, 'n');  // multi-line record
  const std::string vside(40, 's');
  constexpr K kKey = 7, kSide = 8;

  // Returns the number of fences one overwrite executes; when `target`
  // lands on one of them, reboots into the captured image and checks it.
  const auto run = [&](std::uint64_t target) -> std::uint64_t {
    pmem::SimMemory::instance().clear_regions();
    pmem::Pool::instance().reinit(flit::test::PmemTest::kPoolBytes);
    pmem::Pool::instance().register_with_sim();

    TypeParam kv(2, 32);
    auto* sb = kv.superblock();
    kv.put(kKey, vold);
    kv.put(kSide, vside);

    Ctx ctx;
    ctx.target = target;
    pmem::SimMemory::instance().set_pfence_hook(&Ctx::hook, &ctx);
    ctx.armed = true;
    EXPECT_FALSE(kv.put(kKey, vnew));  // the in-flight overwrite
    ctx.armed = false;
    pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);

    if (!ctx.image.empty()) {
      const std::vector<std::byte> final_state =
          pmem::SimMemory::instance().clone_volatile(0);
      pmem::SimMemory::instance().overwrite_volatile(ctx.image, 0);
      {
        TypeParam recovered = TypeParam::recover(sb);
        const auto got = recovered.get(kKey);
        EXPECT_TRUE(got.has_value())
            << "key absent after a crash at overwrite fence #" << target
            << " — the remove+insert visibility gap is back";
        if (got.has_value()) {
          EXPECT_TRUE(*got == vold || *got == vnew)
              << "torn record at fence #" << target << " (got "
              << got->size() << " bytes of '" << (*got)[0] << "')";
        }
        EXPECT_EQ(recovered.get(kSide), vside) << "fence #" << target;
        EXPECT_EQ(recovered.size(), 2u) << "fence #" << target;
      }
      pmem::SimMemory::instance().overwrite_volatile(final_state, 0);
    }
    return ctx.fence_count;
  };

  const std::uint64_t total = run(~std::uint64_t{0});
  ASSERT_GT(total, 0u) << "an overwrite must fence at least once";
  for (std::uint64_t t = 1; t <= total; ++t) {
    run(t);
    if (::testing::Test::HasFailure()) return;  // first bad fence is enough
  }
}

TYPED_TEST(KvCrashTest, MultiPutCrashRecoversEachElementAtomically) {
  // The coalesced-fence contract of the batched write path: a multi_put
  // persists ALL of its records under one pfence before publishing any
  // element, publishes with deferred-fence CASes, and retires superseded
  // records only after the final covering fence. Capture the persistent
  // image at every pfence boundary inside one mixed batch (overwrites,
  // fresh inserts, an in-batch duplicate) and reboot into each: every
  // element must recover atomically — an overwritten key with its old or
  // a new complete value, a fresh key fully present or fully absent —
  // and never torn, with no collateral damage to a key outside the
  // batch. Multi-line values make a publish-before-record-persist bug
  // show up as a torn read here.
  struct Ctx {
    std::uint64_t fence_count = 0;
    std::uint64_t target = 0;
    bool armed = false;
    std::vector<std::byte> image;
    static void hook(void* p) {
      auto* c = static_cast<Ctx*>(p);
      if (!c->armed) return;
      if (++c->fence_count == c->target) {
        c->image = pmem::SimMemory::instance().clone_shadow(0);
      }
    }
  };

  const std::string vold(150, 'o');    // multi-line old value
  const std::string vnew(900, 'n');    // multi-line new value
  const std::string vdup1(300, '1');   // duplicate key, first occurrence
  const std::string vdup2(500, '2');   // duplicate key, last (wins)
  const std::string vins(700, 'i');    // fresh insert
  const std::string vside(40, 's');    // outside the batch
  constexpr K kOver1 = 3, kOver2 = 11, kDup = 21, kIns1 = 33, kIns2 = 41,
              kSide = 55;

  const auto run = [&](std::uint64_t target) -> std::uint64_t {
    pmem::SimMemory::instance().clear_regions();
    pmem::Pool::instance().reinit(flit::test::PmemTest::kPoolBytes);
    pmem::Pool::instance().register_with_sim();

    TypeParam kv(2, 32);
    auto* sb = kv.superblock();
    kv.put(kOver1, vold);
    kv.put(kOver2, vold);
    kv.put(kDup, vold);
    kv.put(kSide, vside);

    const std::vector<std::pair<K, std::string_view>> batch = {
        {kOver1, vnew}, {kIns1, vins}, {kDup, vdup1},
        {kOver2, vnew}, {kDup, vdup2}, {kIns2, vins}};

    Ctx ctx;
    ctx.target = target;
    pmem::SimMemory::instance().set_pfence_hook(&Ctx::hook, &ctx);
    ctx.armed = true;
    const auto fresh = kv.multi_put(batch);
    ctx.armed = false;
    pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);
    EXPECT_TRUE(fresh[1] && fresh[5]) << "the fresh keys insert";
    EXPECT_FALSE(fresh[0] || fresh[3] || fresh[4]) << "overwrites + dup";

    if (!ctx.image.empty()) {
      const std::vector<std::byte> final_state =
          pmem::SimMemory::instance().clone_volatile(0);
      pmem::SimMemory::instance().overwrite_volatile(ctx.image, 0);
      {
        TypeParam recovered = TypeParam::recover(sb);
        const auto check_overwrite = [&](K k) {
          const auto got = recovered.get(k);
          ASSERT_TRUE(got.has_value())
              << "prefilled key " << k << " absent at fence #" << target;
          EXPECT_TRUE(*got == vold || *got == vnew)
              << "torn record for key " << k << " at fence #" << target
              << " (got " << got->size() << " bytes)";
        };
        check_overwrite(kOver1);
        check_overwrite(kOver2);
        // The duplicate key may surface any committed generation: the
        // prefill or either in-batch occurrence (an intermediate fence —
        // e.g. a fresh insert's node persist — can publish the first
        // occurrence's pending CAS), but never a torn mix.
        {
          const auto got = recovered.get(kDup);
          EXPECT_TRUE(got.has_value()) << "fence #" << target;
          if (got.has_value()) {
            EXPECT_TRUE(*got == vold || *got == vdup1 || *got == vdup2)
                << "torn duplicate-key record at fence #" << target;
          }
        }
        for (const K k : {kIns1, kIns2}) {
          const auto got = recovered.get(k);
          if (got.has_value()) {
            EXPECT_EQ(*got, vins)
                << "torn fresh insert " << k << " at fence #" << target;
          }
        }
        EXPECT_EQ(recovered.get(kSide), vside)
            << "collateral damage at fence #" << target;
      }
      pmem::SimMemory::instance().overwrite_volatile(final_state, 0);
    }
    return ctx.fence_count;
  };

  const std::uint64_t total = run(~std::uint64_t{0});
  ASSERT_GT(total, 1u) << "a mixed batch fences more than once";
  for (std::uint64_t t = 1; t <= total; ++t) {
    run(t);
    if (::testing::Test::HasFailure()) return;  // first bad fence is enough
  }
}

// --- negative control -------------------------------------------------------

class KvCrashNegativeTest : public KvCrashTest<int> {};

TEST_F(KvCrashNegativeTest, NonPersistentStoreLosesPuts) {
  using VStore = Store<VolatileWords, Automatic>;
  VStore kv(2, 32);
  auto* sb = kv.superblock();
  // Checkpoint the empty store so the sentinels/superblock survive; the
  // point under test is the *puts*.
  pmem::SimMemory::instance().persist_all();
  for (K k = 0; k < 32; ++k) kv.put(k, "must vanish");
  pmem::SimMemory::instance().crash();
  VStore recovered = VStore::recover(sb);
  EXPECT_EQ(recovered.size(), 0u)
      << "non-persistent words must lose everything (otherwise this "
         "harness is vacuous)";
}

// --- real restart via the file-backed region --------------------------------

class KvFileRecoveryTest : public PmemTest {
 protected:
  static std::string temp_path() {
    return "/tmp/flit_kv_recovery_test_" + std::to_string(::getpid()) +
           ".pmem";
  }
};

TEST_F(KvFileRecoveryTest, ReopenRecoversAllShardsAndGenerationStamp) {
  using KvStore = Store<HashedWords, Automatic>;
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 32 << 20;
  std::map<K, std::string> oracle;

  // Session 1: create, load, overwrite, remove, close.
  {
    KvStore kv = KvStore::open(path, kCapacity, 4, 128);
    EXPECT_TRUE(kv.file_backed());
    EXPECT_EQ(kv.generation(), 1u);
    EXPECT_EQ(kv.nshards(), 4u);
    for (K k = 0; k < 400; ++k) {
      std::string v = value_for(k, 1);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    for (K k = 0; k < 400; k += 7) {  // overwrites
      std::string v = value_for(k, 2);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    for (K k = 3; k < 400; k += 11) {  // removes
      kv.remove(k);
      oracle.erase(k);
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  // Session 2: reopen (shard-count argument must lose to the file's),
  // verify every committed record, write a second generation of keys.
  {
    KvStore kv = KvStore::open(path, kCapacity, 9, 32);
    EXPECT_TRUE(kv.file_backed());
    EXPECT_EQ(kv.generation(), 2u) << "one recovery after creation";
    EXPECT_EQ(kv.nshards(), 4u) << "recovered shard count wins";
    for (const auto& [k, v] : oracle) {
      const auto got = kv.get(k);
      ASSERT_TRUE(got.has_value()) << "key " << k << " lost across restart";
      EXPECT_EQ(*got, v) << "key " << k;
    }
    EXPECT_EQ(kv.size(), oracle.size());
    for (K k = 1'000; k < 1'200; ++k) {
      std::string v = value_for(k, 3);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  // Session 3: both generations of data and a twice-bumped stamp.
  {
    KvStore kv = KvStore::open(path, kCapacity, 4, 128);
    EXPECT_EQ(kv.generation(), 3u);
    for (const auto& [k, v] : oracle) {
      const auto got = kv.get(k);
      ASSERT_TRUE(got.has_value()) << "key " << k;
      EXPECT_EQ(*got, v) << "key " << k;
    }
    EXPECT_EQ(kv.size(), oracle.size());
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvFileRecoveryTest, RejectsAFileFromADifferentWordsConfiguration) {
  // Words configurations change the persisted node layout (adjacent
  // counters pad every word), so recovery must reject a cross-
  // configuration open instead of misreading node bytes. The durability
  // *method* only changes call-site pflags, so switching it stays legal.
  using Written = Store<HashedWords, Automatic>;
  using WrongWords = Store<AdjacentWords, Automatic>;
  using OtherMethod = Store<HashedWords, NVTraverse>;
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 8 << 20;

  {
    Written kv = Written::open(path, kCapacity, 2, 32);
    kv.put(1, "layout canary");
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  EXPECT_THROW((void)WrongWords::open(path, kCapacity, 2, 32),
               std::runtime_error);
  // The rejecting open must leave the global Pool untouched (validation
  // precedes adoption): allocation still lands in the test pool.
  void* p = pmem::Pool::instance().alloc(64);
  EXPECT_TRUE(pmem::Pool::instance().contains(p));

  {
    OtherMethod kv = OtherMethod::open(path, kCapacity, 2, 32);
    EXPECT_EQ(kv.generation(), 2u)
        << "the failed open must not have consumed a recovery";
    EXPECT_EQ(kv.get(1), "layout canary");
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvFileRecoveryTest, CorruptRootOffsetThrowsInsteadOfCrashing) {
  // A torn or bit-rotted header whose root offset points past the file
  // must produce the clean validation throw, not a wild dereference.
  using KvStore = Store<HashedWords, Automatic>;
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 8 << 20;
  {
    KvStore kv = KvStore::open(path, kCapacity, 2, 32);
    kv.put(1, "x");
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  // Scribble an out-of-region offset into the header's roots[0].
  {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const std::uint64_t bad = kCapacity + 12'345;
    const auto at =
        static_cast<off_t>(offsetof(pmem::FileRegion::Header, roots));
    ASSERT_EQ(::pwrite(fd, &bad, sizeof(bad), at),
              static_cast<ssize_t>(sizeof(bad)));
    ::close(fd);
  }
  EXPECT_THROW((void)KvStore::open(path, kCapacity, 2, 32),
               std::runtime_error);
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvFileRecoveryTest, FailedFreshOpenLeavesTheAllocatorUsable) {
  // Building 16 shards x 4096 buckets cannot fit in a 1 MiB region; the
  // resulting bad_alloc unwinds open() after the Pool adopted the region.
  // open() must restore a usable (anonymous) pool before rethrowing —
  // otherwise every later allocation faults on the unmapped region.
  using KvStore = Store<HashedWords, Automatic>;
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  EXPECT_THROW((void)KvStore::open(path, 1 << 20, 16, 4'096),
               std::bad_alloc);
  void* p = pmem::Pool::instance().alloc(64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(pmem::Pool::instance().contains(p));
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvFileRecoveryTest, DirtyShutdownDoesNotClobberCommittedRecords) {
  // The region header's bump mark is written only at checkpoint()/close()
  // (allocator metadata is not crash-consistent). A process that dies
  // without close() leaves the mark stale while durably committed records
  // sit above it; open()'s recovery sweep must rebuild the high-water
  // mark so fresh allocations cannot overwrite them.
  using KvStore = Store<HashedWords, Automatic>;
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 32 << 20;
  std::map<K, std::string> oracle;

  // Session 1: establish a cleanly persisted bump mark.
  {
    KvStore kv = KvStore::open(path, kCapacity, 4, 64);
    for (K k = 0; k < 50; ++k) {
      std::string v = value_for(k, 1);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  std::size_t clean_bump = 0;
  {
    pmem::FileRegion r = pmem::FileRegion::open(path, kCapacity);
    clean_bump = r.bump();
  }

  // Session 2: commit far more data (well past the stale mark), close
  // cleanly — then rewind the header's bump to session 1's value. The
  // file now holds exactly the image a dirty shutdown mid-session-2
  // would have left on fsdax: all records durable, allocator mark stale.
  {
    KvStore kv = KvStore::open(path, kCapacity, 4, 64);
    for (K k = 1'000; k < 1'600; ++k) {
      std::string v = value_for(k, 2);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  {
    pmem::FileRegion r = pmem::FileRegion::open(path, kCapacity);
    ASSERT_GT(r.bump(), clean_bump) << "session 2 must have allocated";
    r.set_bump(clean_bump);
    // A dirty shutdown also never reaches close()'s clean-flag write;
    // clear it so open() takes the sweep path instead of trusting the
    // (now stale) mark.
    r.set_root(KvStore::kCleanShutdownSlot, nullptr);
    r.sync();
  }

  // Session 3: recover, then allocate heavily; every committed record
  // must survive both the recovery and the new allocations.
  {
    KvStore kv = KvStore::open(path, kCapacity, 4, 64);
    for (const auto& [k, v] : oracle) {
      const auto got = kv.get(k);
      ASSERT_TRUE(got.has_value()) << "key " << k << " lost to stale bump";
      ASSERT_EQ(*got, v) << "key " << k;
    }
    for (K k = 10'000; k < 11'000; ++k) {  // force fresh chunk allocations
      std::string v = value_for(k, 3);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    for (const auto& [k, v] : oracle) {
      const auto got = kv.get(k);
      ASSERT_TRUE(got.has_value())
          << "key " << k << " clobbered by post-recovery allocation";
      ASSERT_EQ(*got, v) << "key " << k;
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

}  // namespace
}  // namespace flit::kv
