// Unit tests for the file-backed persistent region (fsdax-style).
#include "pmem/file_region.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "ds/harris_list.hpp"
#include "pmem/pool.hpp"
#include "support/test_common.hpp"

namespace flit::pmem {
namespace {

std::string temp_path(const char* tag) {
  return std::string("/tmp/flit_region_test_") + tag + "_" +
         std::to_string(::getpid()) + ".pmem";
}

class FileRegionTest : public flit::test::PmemTest {};

TEST_F(FileRegionTest, CreateInitializesHeaderAndRoundTrips) {
  const std::string path = temp_path("create");
  FileRegion::destroy(path);
  {
    FileRegion r = FileRegion::open(path, 1 << 20);
    EXPECT_FALSE(r.recovered());
    EXPECT_GE(r.capacity(), std::size_t{1} << 20);
    EXPECT_EQ(r.bump(), 0u);
    EXPECT_EQ(r.root(0), nullptr);

    auto* p = static_cast<std::uint64_t*>(r.usable_base());
    *p = 0xDEADBEEF;
    r.set_root(0, p);
    r.set_bump(64);
    r.sync();
  }
  {
    FileRegion r = FileRegion::open(path, 1 << 20);
    EXPECT_TRUE(r.recovered());
    EXPECT_EQ(r.bump(), 64u);
    auto* p = static_cast<std::uint64_t*>(r.root(0));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 0xDEADBEEFu);
    EXPECT_TRUE(r.contains(p));
  }
  FileRegion::destroy(path);
}

TEST_F(FileRegionTest, ReopenMapsAtSameAddress) {
  const std::string path = temp_path("addr");
  FileRegion::destroy(path);
  void* first_base = nullptr;
  {
    FileRegion r = FileRegion::open(path, 1 << 20);
    first_base = r.base();
  }
  {
    FileRegion r = FileRegion::open(path, 1 << 20);
    EXPECT_EQ(r.base(), first_base)
        << "absolute pointers require a stable mapping address";
  }
  FileRegion::destroy(path);
}

TEST_F(FileRegionTest, RootSlotsAreIndependent) {
  const std::string path = temp_path("roots");
  FileRegion::destroy(path);
  FileRegion r = FileRegion::open(path, 1 << 20);
  auto* b = static_cast<std::byte*>(r.usable_base());
  r.set_root(0, b);
  r.set_root(3, b + 128);
  EXPECT_EQ(r.root(0), b);
  EXPECT_EQ(r.root(1), nullptr);
  EXPECT_EQ(r.root(3), b + 128);
  r.set_root(0, nullptr);
  EXPECT_EQ(r.root(0), nullptr);
  EXPECT_THROW(r.set_root(FileRegion::kMaxRoots, b), std::runtime_error);
  r.close();
  FileRegion::destroy(path);
}

TEST_F(FileRegionTest, TooSmallCapacityRejected) {
  const std::string path = temp_path("small");
  FileRegion::destroy(path);
  EXPECT_THROW(FileRegion::open(path, 64), std::runtime_error);
  FileRegion::destroy(path);
}

TEST_F(FileRegionTest, PoolAdoptAllocatesInsideTheRegion) {
  const std::string path = temp_path("adopt");
  FileRegion::destroy(path);
  FileRegion r = FileRegion::open(path, 8 << 20);
  Pool::instance().adopt(r.usable_base(), r.usable_capacity(), 0);

  void* a = Pool::instance().alloc(64);
  void* b = Pool::instance().alloc(1024);
  EXPECT_TRUE(r.contains(a));
  EXPECT_TRUE(r.contains(b));

  // Restore the normal pool before other tests run.
  Pool::instance().reinit(PmemTest::kPoolBytes);
  r.close();
  FileRegion::destroy(path);
}

TEST_F(FileRegionTest, DataStructureSurvivesRemapCycle) {
  using List = ds::HarrisList<std::int64_t, std::int64_t, HashedWords,
                              Automatic>;
  const std::string path = temp_path("list");
  FileRegion::destroy(path);

  // Session 1: build a list inside the file region and record its roots.
  // The list handle is intentionally leaked: its destructor would return
  // nodes to the allocator, scribbling free-list links over live persisted
  // bytes. A real application closes the region while the structure is
  // still live — exactly what leaking the (tiny, volatile) handle models.
  {
    FileRegion r = FileRegion::open(path, 16 << 20);
    Pool::instance().adopt(r.usable_base(), r.usable_capacity(), r.bump());
    auto* l = new List();
    for (std::int64_t k = 0; k < 500; ++k) l->insert(k, 2 * k);
    for (std::int64_t k = 0; k < 500; k += 5) l->remove(k);
    r.set_root(0, l->head());
    r.set_root(1, l->tail());
    // Reclaim retired (unreachable) nodes while the region is still
    // mapped — their bytes are dead, so the scribble is harmless.
    recl::Ebr::instance().drain_all();
    r.set_bump(Pool::instance().bump_used());
    r.sync();
  }
  Pool::instance().reinit(PmemTest::kPoolBytes);

  // Session 2: re-open, re-adopt, recover, verify, and mutate further.
  {
    FileRegion r = FileRegion::open(path, 16 << 20);
    ASSERT_TRUE(r.recovered());
    Pool::instance().adopt(r.usable_base(), r.usable_capacity(), r.bump());
    List view = List::recover(
        static_cast<List::Node*>(r.root(0)),
        static_cast<List::Node*>(r.root(1)));
    for (std::int64_t k = 0; k < 500; ++k) {
      const bool expected = (k % 5) != 0;
      ASSERT_EQ(view.contains(k), expected) << k;
      if (expected) {
        ASSERT_EQ(view.find(k).value(), 2 * k);
      }
    }
    // The recovered structure stays fully operational.
    EXPECT_TRUE(view.insert(1'000, 1));
    EXPECT_TRUE(view.contains(1'000));
    recl::Ebr::instance().drain_all();
  }
  Pool::instance().reinit(PmemTest::kPoolBytes);
  FileRegion::destroy(path);
}

}  // namespace
}  // namespace flit::pmem
