// Unit tests for per-thread persistence-instruction statistics.
#include "pmem/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pmem/backend.hpp"
#include "support/test_common.hpp"

namespace flit::pmem {
namespace {

class StatsTest : public flit::test::PmemTest {};

TEST_F(StatsTest, CountsAccumulate) {
  const StatsSnapshot before = stats_snapshot();
  int x = 0;
  pwb(&x);
  pwb(&x);
  pwb(&x);
  pfence();
  const StatsSnapshot d = stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 3u);
  EXPECT_EQ(d.pfences, 1u);
}

TEST_F(StatsTest, SnapshotArithmetic) {
  StatsSnapshot a{10, 4};
  StatsSnapshot b{3, 1};
  const StatsSnapshot d = a - b;
  EXPECT_EQ(d.pwbs, 7u);
  EXPECT_EQ(d.pfences, 3u);
  StatsSnapshot c;
  c += a;
  c += b;
  EXPECT_EQ(c.pwbs, 13u);
  EXPECT_EQ(c.pfences, 5u);
}

TEST_F(StatsTest, AggregatesAcrossThreads) {
  stats_reset();
  const StatsSnapshot before = stats_snapshot();
  constexpr int kThreads = 6;
  constexpr int kOps = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      int x = 0;
      for (int i = 0; i < kOps; ++i) {
        pwb(&x);
        pfence();
      }
    });
  }
  for (auto& th : ts) th.join();
  const StatsSnapshot d = stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(d.pfences, static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST_F(StatsTest, CountersOfExitedThreadsRemainVisible) {
  stats_reset();
  const StatsSnapshot before = stats_snapshot();
  {
    std::thread t([] {
      int x = 0;
      pwb(&x);
    });
    t.join();
  }
  const StatsSnapshot d = stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 1u);
}

TEST_F(StatsTest, ResetZeroesEverything) {
  int x = 0;
  pwb(&x);
  stats_reset();
  const StatsSnapshot s = stats_snapshot();
  EXPECT_EQ(s.pwbs, 0u);
  EXPECT_EQ(s.pfences, 0u);
}

}  // namespace
}  // namespace flit::pmem
