// Tests for PersistCheck (src/pmem/persist_check.hpp): clean workloads
// report zero violations, and each seeded protocol bug produces exactly
// one diagnostic of the right class, attributed to the right site.
//
// The seeded-bug tests are the checker's teeth: they break the persistence
// protocol in one precise place (a suppressed pwb, a retirement hoisted
// above its covering fence, a deferred tag completed without a fence) and
// assert the checker names that exact failure — a checker that stays
// silent here would also stay silent on a real regression.
#include "pmem/persist_check.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ds/batch.hpp"
#include "kv/store.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"
#include "pmem/stats.hpp"
#include "support/test_common.hpp"

namespace flit::pmem {
namespace {

using flit::test::PmemTest;
using kv::HashBackend;
using kv::Record;
using kv::Shard;

class PersistCheckTest : public PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    PersistCheck::instance().reset_violations();
  }

  void TearDown() override {
    // A diagnostic a test forgot to assert-and-acknowledge must fail that
    // test here, not the whole binary at exit.
    EXPECT_EQ(PersistCheck::instance().total_violations(), 0u);
    PersistCheck::instance().reset_violations();
    PmemTest::TearDown();
  }

  /// Arm the checker: simulate crashes on the pool (registration hooks
  /// PersistCheck in FLIT_PERSIST_CHECK builds).
  static void arm() { Pool::instance().register_with_sim(); }
};

using HashedShard = Shard<HashBackend<HashedWords, Automatic>>;

std::uint64_t count(PersistViolation v) {
  return PersistCheck::instance().violations(v);
}

TEST_F(PersistCheckTest, DisarmedWithoutRegions) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  EXPECT_FALSE(PersistCheck::instance().armed());
  // Unregistered memory: every hook is a no-op, even on "dirty" data.
  Record* r = Record::create<false>("never flushed");
  Record::retire<true>(r);
  EXPECT_EQ(PersistCheck::instance().total_violations(), 0u);
}

TEST_F(PersistCheckTest, CleanScalarWorkloadHasZeroViolations) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();
  ASSERT_TRUE(PersistCheck::instance().armed());
  {
    kv::Store<HashedWords, Automatic> store(2, 64);
    for (std::int64_t k = 0; k < 200; ++k) {
      store.put(k, std::string(1 + static_cast<std::size_t>(k % 60), 'v'));
    }
    for (std::int64_t k = 0; k < 200; k += 2) {
      store.put(k, "overwritten");  // upsert + retire of the old record
    }
    for (std::int64_t k = 0; k < 200; k += 3) store.remove(k);
    EXPECT_EQ(store.get(1), std::string(2, 'v'));
  }
  EXPECT_EQ(PersistCheck::instance().total_violations(), 0u);
}

TEST_F(PersistCheckTest, CleanBatchedWorkloadHasZeroViolations) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();
  {
    kv::OrderedStore<HashedWords, Automatic> store(2, 64,
                                                   kv::KeyRange{0, 1'000});
    std::vector<std::pair<std::int64_t, std::string_view>> batch;
    for (std::int64_t k = 0; k < 100; ++k) batch.emplace_back(k, "first");
    store.multi_put(batch);
    // Second round is pure overwrites: every element supersedes (and
    // after the batch fence, retires) a record through the deferred path.
    for (auto& [k, v] : batch) v = "second";
    store.multi_put(batch);
    const std::vector<std::int64_t> keys{1, 50, 99};
    for (const auto& g : store.multi_get(keys)) EXPECT_EQ(g, "second");
  }
  EXPECT_EQ(PersistCheck::instance().total_violations(), 0u);
}

TEST_F(PersistCheckTest, SuppressedPwbFiresPublishUnpersisted) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();
  HashedShard shard(64);
  ASSERT_EQ(PersistCheck::instance().total_violations(), 0u);

  // Seeded bug: the next pwb — the flush of the new record's line inside
  // Record::create — never happens. The record is published while Dirty.
  PersistCheck::instance().suppress_pwbs(1);
  shard.put(1, "hello");

  EXPECT_EQ(count(PersistViolation::kPublishUnpersisted), 1u);
  EXPECT_EQ(PersistCheck::instance().total_violations(), 1u);
  EXPECT_STREQ(PersistCheck::instance().first_violation_site(),
               "kv::Shard::put");
  // Exactly one diagnostic: the range was force-cleaned after the report,
  // so the store keeps working and later checks don't cascade.
  EXPECT_EQ(shard.get(1), "hello");
  PersistCheck::instance().reset_violations();
}

TEST_F(PersistCheckTest, UnpersistedRetireFiresMissingFlushLeak) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();

  // Seeded bug: a record built with the no-persist path (volatile
  // configurations use it legitimately) handed to *persistent* retirement
  // — it was reachable without ever being flushed.
  Record* r = Record::create<false>("never flushed");
  Record::retire<true>(r);

  EXPECT_EQ(count(PersistViolation::kMissingFlushLeak), 1u);
  EXPECT_EQ(PersistCheck::instance().total_violations(), 1u);
  EXPECT_STREQ(PersistCheck::instance().first_violation_site(),
               "kv::Record::retire");
  PersistCheck::instance().reset_violations();
}

TEST_F(PersistCheckTest, RetireBeforeBatchFenceFiresPrematureRetire) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();
  HashedShard shard(64);
  shard.put(1, "old");
  ASSERT_EQ(PersistCheck::instance().total_violations(), 0u);

  // Deferred-fence overwrite, exactly as Store::multi_put drives it...
  ds::PublishBatch batch;
  batch.reserve(1);
  std::vector<Record*> superseded;
  Record* rec = Record::create<true, false>("new");
  pfence();  // the batch's record fence (phase 1)
  shard.put_batched(1, rec, batch, superseded);
  ASSERT_EQ(superseded.size(), 1u);

  // ...but with the retirement hoisted above the batch's covering pfence:
  // the link to "new" is not durable yet, so recycling "old" could leave
  // a crash image whose still-old link points at clobbered storage.
  Record::retire<true>(superseded[0]);

  EXPECT_EQ(count(PersistViolation::kPrematureRetire), 1u);
  EXPECT_EQ(PersistCheck::instance().total_violations(), 1u);
  EXPECT_STREQ(PersistCheck::instance().first_violation_site(),
               "kv::Record::retire");

  // Finish the protocol correctly; no further diagnostics may appear.
  pfence();
  batch.complete_all();
  superseded.clear();
  EXPECT_EQ(PersistCheck::instance().total_violations(), 1u);
  PersistCheck::instance().reset_violations();
}

TEST_F(PersistCheckTest, CompleteWithoutFenceFiresDeferredDangling) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();
  HashedShard shard(64);
  shard.put(1, "old");
  ASSERT_EQ(PersistCheck::instance().total_violations(), 0u);

  ds::PublishBatch batch;
  batch.reserve(1);
  std::vector<Record*> superseded;
  Record* rec = Record::create<true, false>("new");
  pfence();
  shard.put_batched(1, rec, batch, superseded);
  ASSERT_EQ(superseded.size(), 1u);

  // Seeded bug: untag the published word with NO covering pfence — readers
  // stop flush-on-read while the publish pwb is still unfenced (the exact
  // Condition-3 violation the deferred protocol must not commit).
  batch.complete_all();

  EXPECT_EQ(count(PersistViolation::kDeferredDangling), 1u);
  EXPECT_EQ(PersistCheck::instance().total_violations(), 1u);
  EXPECT_STREQ(PersistCheck::instance().first_violation_site(),
               "ds::PublishBatch::enlist");

  // Clean completion of the rest of the protocol adds nothing.
  pfence();
  Record::retire<true>(superseded[0]);
  superseded.clear();
  EXPECT_EQ(PersistCheck::instance().total_violations(), 1u);
  PersistCheck::instance().reset_violations();
}

TEST_F(PersistCheckTest, RedundantPwbLintCountsCleanLineFlushes) {
  if (!kPersistCheckEnabled) GTEST_SKIP() << "FLIT_PERSIST_CHECK is off";
  BackendScope scope(Backend::kSimCrash);
  arm();
  void* p = Pool::instance().alloc(64);
  std::memset(p, 0x5a, 64);
  persist_range(p, 64);  // line now fully persisted

  const StatsSnapshot before = stats_snapshot();
  pwb(p);  // nothing on the line needs writing back
  pwb(p);
  pfence();
  const StatsSnapshot d = stats_snapshot() - before;
  EXPECT_EQ(d.redundant_pwbs, 2u);
  EXPECT_EQ(PersistCheck::instance().total_violations(), 0u);
}

// The empty-pfence counter is always on (it powers the bench columns in
// every build), so this test runs without the checker too.
TEST_F(PersistCheckTest, EmptyPfenceCounterIsAlwaysOn) {
  void* p = Pool::instance().alloc(64);
  pwb(p);
  pfence();  // has a preceding pwb: not empty
  const StatsSnapshot before = stats_snapshot();
  pfence();  // no pwb since the last fence: empty
  pwb(p);
  pfence();  // not empty again
  const StatsSnapshot d = stats_snapshot() - before;
  EXPECT_EQ(d.pfences, 2u);
  EXPECT_EQ(d.empty_pfences, 1u);
}

}  // namespace
}  // namespace flit::pmem
