// Crash-point injection: durable linearizability at *instruction*
// granularity, not just operation granularity.
//
// The crash_durability tests quiesce before pulling the plug, so every
// operation has completed. Here we capture the persistent-memory image
// that a power failure would leave at individual pfence boundaries *inside*
// operations, and verify each image is explainable (Definition 1 /
// Theorem 3.1): the recovered set must equal the completed-ops oracle,
// except that the single in-flight operation may or may not have taken
// effect.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <set>
#include <vector>

#include "ds/harris_list.hpp"
#include "ds/hash_table.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/skiplist.hpp"
#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using K = std::int64_t;

struct PendingOp {
  bool is_insert = false;
  K key = 0;
};

struct CaptureCtx {
  std::uint64_t fence_count = 0;
  std::uint64_t target = 0;
  bool armed = false;
  std::vector<std::byte> image;       // shadow at the target fence
  std::set<K> oracle_at_capture;      // completed ops' state
  std::optional<PendingOp> pending_at_capture;

  // Live state maintained by the test around each op.
  const std::set<K>* oracle = nullptr;
  const std::optional<PendingOp>* pending = nullptr;

  static void hook(void* p) {
    auto* c = static_cast<CaptureCtx*>(p);
    if (!c->armed) return;
    if (++c->fence_count != c->target) return;
    c->image = pmem::SimMemory::instance().clone_shadow(0);
    c->oracle_at_capture = *c->oracle;
    c->pending_at_capture = *c->pending;
  }
};

template <class Set>
std::set<K> sweep(const Set& s, K range) {
  std::set<K> out;
  for (K k = 0; k < range; ++k) {
    if (s.contains(k)) out.insert(k);
  }
  return out;
}

template <class Set>
struct Adapter;
template <class W, class M>
struct Adapter<HarrisList<K, K, W, M>> {
  using Set = HarrisList<K, K, W, M>;
  using Handle = std::pair<typename Set::Node*, typename Set::Node*>;
  static Set make() { return Set(); }
  static Handle save(const Set& s) { return {s.head(), s.tail()}; }
  static Set recover(Handle h) { return Set::recover(h.first, h.second); }
};
template <class W, class M>
struct Adapter<SkipList<K, K, W, M>> {
  using Set = SkipList<K, K, W, M>;
  using Handle = std::pair<typename Set::Node*, typename Set::Node*>;
  static Set make() { return Set(); }
  static Handle save(const Set& s) { return {s.head(), s.tail()}; }
  static Set recover(Handle h) { return Set::recover(h.first, h.second); }
};
template <class W, class M>
struct Adapter<NatarajanBst<K, K, W, M>> {
  using Set = NatarajanBst<K, K, W, M>;
  using Handle = std::pair<typename Set::Node*, typename Set::Node*>;
  static Set make() { return Set(); }
  static Handle save(const Set& s) { return {s.root(), s.sentinel()}; }
  static Set recover(Handle h) { return Set::recover(h.first, h.second); }
};
template <class W, class M>
struct Adapter<HashTable<K, K, W, M>> {
  using Set = HashTable<K, K, W, M>;
  using Handle = typename Set::Roots*;
  static Set make() { return Set(32); }
  static Handle save(const Set& s) { return s.roots(); }
  static Set recover(Handle h) { return Set::recover(h); }
};

template <class SetT>
class CrashPointTest : public PmemTest {
 protected:
  static constexpr std::size_t kSmallPool = std::size_t{8} << 20;

  void SetUp() override {
    pmem::SimMemory::instance().clear_regions();
    pmem::Pool::instance().reinit(kSmallPool);
    recl::Ebr::instance().set_reclaim(false);
    pmem::Pool::instance().register_with_sim();
    pmem::set_backend(pmem::Backend::kSimCrash);
  }
  void TearDown() override {
    pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);
    recl::Ebr::instance().set_reclaim(true);
    PmemTest::TearDown();
  }

  /// One deterministic run capturing the image at fence #target; returns
  /// false if the run has fewer fences than target.
  bool run_and_check(std::uint64_t target, std::uint64_t* fences_out) {
    using A = Adapter<SetT>;
    constexpr K kRange = 32;
    constexpr int kOps = 120;

    pmem::SimMemory::instance().clear_regions();
    pmem::Pool::instance().reinit(kSmallPool);
    pmem::Pool::instance().register_with_sim();

    std::set<K> oracle;
    std::optional<PendingOp> pending;
    CaptureCtx ctx;
    ctx.target = target;
    ctx.oracle = &oracle;
    ctx.pending = &pending;

    auto set = A::make();
    auto handle = A::save(set);

    pmem::SimMemory::instance().set_pfence_hook(&CaptureCtx::hook, &ctx);
    ctx.armed = true;
    std::mt19937_64 rng(12345);
    for (int i = 0; i < kOps; ++i) {
      const K k = static_cast<K>(rng() % kRange);
      const bool ins = rng() % 2 == 0;
      pending = PendingOp{ins, k};
      if (ins) {
        set.insert(k, k);
        oracle.insert(k);
      } else {
        set.remove(k);
        oracle.erase(k);
      }
      pending.reset();
    }
    ctx.armed = false;
    pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);
    *fences_out = ctx.fence_count;
    if (ctx.image.empty()) return false;  // target beyond the run

    // Reboot into the captured image and verify it is explainable.
    const std::vector<std::byte> final_state =
        pmem::SimMemory::instance().clone_volatile(0);
    pmem::SimMemory::instance().overwrite_volatile(ctx.image, 0);

    {
      auto recovered = A::recover(handle);
      const std::set<K> got = sweep(recovered, kRange);

      std::set<K> without = ctx.oracle_at_capture;
      std::set<K> with = ctx.oracle_at_capture;
      if (ctx.pending_at_capture) {
        if (ctx.pending_at_capture->is_insert) {
          with.insert(ctx.pending_at_capture->key);
        } else {
          with.erase(ctx.pending_at_capture->key);
        }
      }
      EXPECT_TRUE(got == without || got == with)
          << "crash at pfence #" << target
          << " left an unexplainable state (pending "
          << (ctx.pending_at_capture
                  ? (ctx.pending_at_capture->is_insert ? "insert " : "remove ")
                  : "none ")
          << (ctx.pending_at_capture ? ctx.pending_at_capture->key : -1)
          << ", got " << got.size() << " keys, completed-oracle "
          << without.size() << ")";
    }
    pmem::SimMemory::instance().overwrite_volatile(final_state, 0);
    return true;
  }

  void run_sweep() {
    std::uint64_t total_fences = 0;
    ASSERT_FALSE(run_and_check(~std::uint64_t{0}, &total_fences));
    ASSERT_GT(total_fences, 20u);
    // Probe ~32 crash points spread over the whole run, plus the first few
    // fences individually (early boundaries catch initialization bugs).
    std::vector<std::uint64_t> targets = {1, 2, 3, 4, 5};
    for (int i = 1; i <= 27; ++i) {
      targets.push_back(total_fences * static_cast<std::uint64_t>(i) / 28);
    }
    for (const std::uint64_t t : targets) {
      if (t == 0 || t > total_fences) continue;
      std::uint64_t unused = 0;
      run_and_check(t, &unused);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
};

using CrashPointConfigs = ::testing::Types<
    HarrisList<K, K, HashedWords, Automatic>,
    HarrisList<K, K, HashedWords, Manual>,
    HarrisList<K, K, AdjacentWords, NVTraverse>,
    HarrisList<K, K, LapWords, Automatic>,
    NatarajanBst<K, K, HashedWords, Automatic>,
    NatarajanBst<K, K, HashedWords, NVTraverse>,
    NatarajanBst<K, K, PlainWords, Manual>,
    SkipList<K, K, HashedWords, Automatic>,
    SkipList<K, K, HashedWords, Manual>,
    HashTable<K, K, HashedWords, Automatic>,
    HashTable<K, K, AdjacentWords, Manual>>;

TYPED_TEST_SUITE(CrashPointTest, CrashPointConfigs);

TYPED_TEST(CrashPointTest, EveryProbedCrashPointIsExplainable) {
  this->run_sweep();
}

}  // namespace
}  // namespace flit::ds
