// Tests for the failpoint fault-injection framework (src/core/failpoint)
// and the degraded modes it drives.
//
// Two layers:
//
//   1. Registry semantics — spec parsing, the once/every:N/prob:P
//      triggers, errno resolution, hit accounting. The registry is
//      compiled in every build, so these run everywhere.
//
//   2. Injection regressions — armed sites actually steering the store
//      and the socket layer into their degraded paths: pool exhaustion
//      becomes a clean kv::OutOfSpace, a failed msync latches degraded
//      read-only after the retry budget (the fsyncgate lesson), a
//      swallowed close()-path msync failure latches the process-wide
//      durability health, accept failures surface as transient errnos.
//      These only bite in FLIT_FAILPOINTS builds (the `failpoints`
//      preset) and GTEST_SKIP elsewhere.
#include "core/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <optional>
#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>
#include <vector>

#include "kv/store.hpp"
#include "net/socket.hpp"
#include "pmem/file_region.hpp"
#include "support/test_common.hpp"

namespace flit {
namespace {

using core::Failpoints;
using core::FailSpec;
using core::FailTrigger;

/// Leaves the process-global registry and durability latch clean on both
/// sides of every test (they outlive any single test by design).
class FailpointRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::instance().disarm_all();
    Failpoints::instance().reseed(1);
  }
  void TearDown() override { Failpoints::instance().disarm_all(); }
};

TEST_F(FailpointRegistryTest, ParsesWellFormedSpecClauses) {
  Failpoints& fp = Failpoints::instance();
  EXPECT_TRUE(fp.arm_from_spec("pool.alloc=once"));
  EXPECT_TRUE(fp.arm_from_spec("pmem.msync=every:3@EIO"));
  EXPECT_TRUE(fp.arm_from_spec("net.read=prob:0.25@ECONNRESET"));
  EXPECT_TRUE(fp.arm_from_spec("custom.site=once@113"));

  const auto armed = fp.armed_sites();
  EXPECT_EQ(armed.size(), 4u);
  EXPECT_NE(std::find(armed.begin(), armed.end(), "pool.alloc"),
            armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "custom.site"),
            armed.end());

  // `off` is a valid clause that disarms.
  EXPECT_TRUE(fp.arm_from_spec("pool.alloc=off"));
  EXPECT_EQ(fp.armed_sites().size(), 3u);
}

TEST_F(FailpointRegistryTest, RejectsMalformedSpecClauses) {
  Failpoints& fp = Failpoints::instance();
  EXPECT_FALSE(fp.arm_from_spec(""));
  EXPECT_FALSE(fp.arm_from_spec("=once"));
  EXPECT_FALSE(fp.arm_from_spec("site"));
  EXPECT_FALSE(fp.arm_from_spec("site=banana"));
  EXPECT_FALSE(fp.arm_from_spec("site=every:0"));
  EXPECT_FALSE(fp.arm_from_spec("site=every:abc"));
  EXPECT_FALSE(fp.arm_from_spec("site=prob:1.5"));
  EXPECT_FALSE(fp.arm_from_spec("site=prob:-0.1"));
  EXPECT_FALSE(fp.arm_from_spec("site=once@EBOGUS"));
  EXPECT_FALSE(fp.arm_from_spec("site=once@-5"));
  EXPECT_TRUE(fp.armed_sites().empty());
}

TEST_F(FailpointRegistryTest, ArmFromListSkipsBadClauses) {
  Failpoints& fp = Failpoints::instance();
  EXPECT_EQ(fp.arm_from_list("a=once;this is not a clause;b=every:2@EIO"),
            2u);
  const auto armed = fp.armed_sites();
  EXPECT_EQ(armed.size(), 2u);
}

TEST_F(FailpointRegistryTest, OnceFiresExactlyOnce) {
  Failpoints& fp = Failpoints::instance();
  FailSpec spec;
  spec.trigger = FailTrigger::kOnce;
  spec.error = EIO;
  fp.arm("t.once", spec);
  EXPECT_EQ(fp.should_fail("t.once", 0), EIO);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(fp.should_fail("t.once", 0), 0);
  EXPECT_EQ(fp.hits("t.once"), 1u);
  EXPECT_EQ(fp.evaluations("t.once"), 9u);
}

TEST_F(FailpointRegistryTest, EveryNthFiresOnMultiples) {
  Failpoints& fp = Failpoints::instance();
  FailSpec spec;
  spec.trigger = FailTrigger::kEveryNth;
  spec.every_n = 3;
  spec.error = ENOMEM;
  fp.arm("t.nth", spec);
  for (int i = 1; i <= 9; ++i) {
    const int got = fp.should_fail("t.nth", 0);
    if (i % 3 == 0) {
      EXPECT_EQ(got, ENOMEM) << "evaluation " << i;
    } else {
      EXPECT_EQ(got, 0) << "evaluation " << i;
    }
  }
  EXPECT_EQ(fp.hits("t.nth"), 3u);
}

TEST_F(FailpointRegistryTest, ProbabilityReplaysUnderTheSameSeed) {
  Failpoints& fp = Failpoints::instance();
  FailSpec spec;
  spec.trigger = FailTrigger::kProbability;
  spec.probability = 0.5;
  spec.error = EIO;

  const auto draw = [&] {
    std::vector<int> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(fp.should_fail("t.prob", 0));
    return fires;
  };
  fp.arm("t.prob", spec);
  fp.reseed(12345);
  const auto first = draw();
  fp.arm("t.prob", spec);  // re-arm resets counters
  fp.reseed(12345);
  const auto second = draw();
  EXPECT_EQ(first, second) << "prob trigger must replay under one seed";
  const auto hits = fp.hits("t.prob");
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 64u);
}

TEST_F(FailpointRegistryTest, FiringSiteNeverResolvesToZero) {
  Failpoints& fp = Failpoints::instance();
  FailSpec spec;
  spec.trigger = FailTrigger::kOnce;  // no errno armed
  fp.arm("t.err", spec);
  // No armed errno, no default: the -1 sentinel, never 0 ("proceed").
  EXPECT_EQ(fp.should_fail("t.err", 0), -1);
  fp.arm("t.err", spec);
  // Site default wins when nothing is armed.
  EXPECT_EQ(fp.should_fail("t.err", EMFILE), EMFILE);
  spec.error = EIO;
  fp.arm("t.err", spec);
  // An armed errno beats the site default.
  EXPECT_EQ(fp.should_fail("t.err", EMFILE), EIO);
}

TEST_F(FailpointRegistryTest, DisarmStopsFiringAndTotalHitsAccumulates) {
  Failpoints& fp = Failpoints::instance();
  const auto base = fp.total_hits();
  FailSpec spec;
  spec.trigger = FailTrigger::kEveryNth;
  spec.every_n = 1;
  spec.error = EIO;
  fp.arm("t.dis", spec);
  EXPECT_EQ(fp.should_fail("t.dis", 0), EIO);
  EXPECT_EQ(fp.should_fail("t.dis", 0), EIO);
  fp.disarm("t.dis");
  EXPECT_EQ(fp.should_fail("t.dis", 0), 0);
  EXPECT_EQ(fp.total_hits(), base + 2);
}

// --- injection through the real sites ---------------------------------------

using KvStore = kv::Store<HashedWords, Automatic>;

class FailpointInjectionTest : public flit::test::PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    Failpoints::instance().disarm_all();
    pmem::reset_durability_health();
  }
  void TearDown() override {
    Failpoints::instance().disarm_all();
    pmem::reset_durability_health();
    PmemTest::TearDown();
  }

  static void arm(const std::string& clause) {
    ASSERT_TRUE(Failpoints::instance().arm_from_spec(clause)) << clause;
  }

  static std::string temp_path() {
    return "/tmp/flit_failpoint_test_" + std::to_string(::getpid()) +
           ".pmem";
  }
};

TEST_F(FailpointInjectionTest, PoolAllocInjectionBecomesOutOfSpace) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  KvStore kv(2, 64);
  kv.put(1, "before");
  arm("pool.alloc=once");
  EXPECT_THROW(kv.put(2, "doomed"), kv::OutOfSpace);
  // OutOfSpace derives from bad_alloc: pre-existing handlers keep
  // matching.
  arm("pool.alloc=once");
  EXPECT_THROW(kv.put(2, "doomed"), std::bad_alloc);
  // Per-operation failure: the store stays fully serviceable.
  EXPECT_EQ(kv.get(1), "before");
  EXPECT_EQ(kv.get(2), std::nullopt);
  kv.put(2, "after");  // `once` consumed — succeeds
  EXPECT_EQ(kv.get(2), "after");
  // hits() counts since the last arm (re-arming resets the site);
  // lifetime accounting is total_hits().
  EXPECT_EQ(Failpoints::instance().hits("pool.alloc"), 1u);
}

// Satellite: the multi_put exception-safety audit. A batch whose k-th
// allocation fails must leave elements < k fully applied and elements
// >= k untouched — never torn, never interleaved. One shard keeps the
// apply order equal to batch order so the prefix is checkable directly.
TEST_F(FailpointInjectionTest, MultiPutEveryNthAllocLeavesCleanPrefix) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  constexpr std::size_t kBatch = 32;
  KvStore kv(1, 256);
  std::vector<std::string> values;
  std::vector<std::pair<std::int64_t, std::string_view>> kvs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    values.push_back("v" + std::to_string(i) +
                     std::string(64 + i, static_cast<char>('a' + i % 26)));
  }
  for (std::size_t i = 0; i < kBatch; ++i) {
    kvs.emplace_back(static_cast<std::int64_t>(i), values[i]);
  }

  // Fresh inserts allocate one record per element up front (phase 1) and
  // one node per element at publish (phase 2); every:40 survives all 32
  // record allocations and fires on the 8th publish.
  arm("pool.alloc=every:40");
  EXPECT_THROW(kv.multi_put(kvs), kv::OutOfSpace);
  Failpoints::instance().disarm_all();

  // The applied set must be a prefix of the batch, each element complete.
  std::size_t applied = 0;
  while (applied < kBatch &&
         kv.get(static_cast<std::int64_t>(applied)).has_value()) {
    ++applied;
  }
  EXPECT_LT(applied, kBatch) << "the injected failure should have bitten";
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto got = kv.get(static_cast<std::int64_t>(i));
    if (i < applied) {
      ASSERT_TRUE(got.has_value()) << "hole inside the applied prefix at "
                                   << i;
      EXPECT_EQ(*got, values[i]) << "torn element " << i;
    } else {
      EXPECT_EQ(got, std::nullopt) << "element " << i
                                   << " applied past the failure point";
    }
  }
  EXPECT_EQ(kv.size(), applied);

  // The store is not poisoned: the same batch succeeds once disarmed.
  const auto fresh = kv.multi_put(kvs);
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(fresh[i], i >= applied);
    EXPECT_EQ(kv.get(static_cast<std::int64_t>(i)), values[i]);
  }
}

// The fsyncgate regression: a checkpoint whose msync keeps failing must
// retry with backoff, then latch degraded read-only — not ack, not loop.
TEST_F(FailpointInjectionTest, MsyncFailureLatchesDegradedReadOnly) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  {
    KvStore kv = KvStore::open(path, 8 << 20, 2, 64);
    kv.put(1, "durable");
    kv.checkpoint();  // healthy baseline

    arm("pmem.msync=every:1@EIO");  // every attempt, retries included
    EXPECT_THROW(kv.checkpoint(), kv::StoreReadOnly);
    // The capped-backoff retry loop burned its whole budget first.
    EXPECT_EQ(Failpoints::instance().hits("pmem.msync"),
              static_cast<std::uint64_t>(KvStore::kMsyncRetryLimit));
    Failpoints::instance().disarm_all();

    // Latched: every mutation refused up front, reads still served.
    EXPECT_EQ(kv.health(), kv::Health::kDegradedReadOnly);
    EXPECT_THROW(kv.put(2, "x"), kv::StoreReadOnly);
    EXPECT_THROW(kv.remove(1), kv::StoreReadOnly);
    EXPECT_THROW(kv.checkpoint(), kv::StoreReadOnly);
    EXPECT_EQ(kv.get(1), "durable");
    kv.close();
  }
  // Reopening is the deliberate operator action that clears the latch
  // (new process/page-cache state); the data survived.
  {
    KvStore kv = KvStore::open(path, 8 << 20, 2, 64);
    EXPECT_EQ(kv.health(), kv::Health::kOk);
    EXPECT_EQ(kv.get(1), "durable");
    kv.put(2, "writable again");
    EXPECT_EQ(kv.get(2), "writable again");
    kv.close();
  }
  pmem::FileRegion::destroy(path);
}

// Satellite: FileRegion::close() used to (void)-discard its final msync
// result. It still must not throw (destructors land there), so a failure
// now latches the process-wide durability health instead of vanishing.
TEST_F(FailpointInjectionTest, CloseMsyncFailureLatchesProcessHealth) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  {
    pmem::FileRegion region = pmem::FileRegion::open(path, 1 << 20);
    EXPECT_FALSE(pmem::durability_degraded());
    arm("pmem.msync=once@EIO");
    region.close();  // must not throw
    EXPECT_TRUE(pmem::durability_degraded())
        << "a swallowed close-path msync failure must latch health";
  }
  pmem::reset_durability_health();
  pmem::FileRegion::destroy(path);
}

// Store::health() folds the process-wide latch for file-backed stores —
// a close-path failure on some other region still means this process's
// durability story is broken.
TEST_F(FailpointInjectionTest, StoreHealthFoldsProcessLatchWhenFileBacked) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  KvStore kv = KvStore::open(path, 8 << 20, 2, 64);
  kv.put(1, "v");
  EXPECT_EQ(kv.health(), kv::Health::kOk);
  pmem::note_durability_failure("injected by test");
  EXPECT_EQ(kv.health(), kv::Health::kDegradedReadOnly);
  EXPECT_THROW(kv.put(2, "x"), kv::StoreReadOnly);
  EXPECT_EQ(kv.get(1), "v");
  pmem::reset_durability_health();
  EXPECT_EQ(kv.health(), kv::Health::kOk);
  kv.put(2, "x");
  kv.close();
  pmem::FileRegion::destroy(path);
}

TEST_F(FailpointInjectionTest, AcceptInjectionReportsTransientErrno) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  net::SocketFd listener = net::listen_tcp("127.0.0.1", 0);
  arm("net.accept=once");  // site default: EMFILE
  int err = -1;
  net::SocketFd conn = net::accept_nonblocking(listener.get(), &err);
  EXPECT_FALSE(conn.valid());
  EXPECT_EQ(err, EMFILE);
  // Once consumed: the next call is a normal drained listener.
  conn = net::accept_nonblocking(listener.get(), &err);
  EXPECT_FALSE(conn.valid());
  EXPECT_EQ(err, 0);
}

TEST_F(FailpointInjectionTest, ReadAndWriteInjectionSimulateDeadPeer) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  char buf[8] = {};
  bool would_block = false;

  arm("net.read=once");
  // Injected reset surfaces exactly like the real mapping: EOF.
  EXPECT_EQ(net::read_some(fds[0], buf, sizeof(buf), would_block), 0);

  ::close(fds[0]);
  ::close(fds[1]);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  arm("net.write=once");
  EXPECT_EQ(net::write_some(sv[0], "abcd", 4, would_block), -1);
  EXPECT_FALSE(would_block);
  arm("net.write.short=once");
  // Truncated to one byte: the partial-write resumption path's fuel.
  EXPECT_EQ(net::write_some(sv[0], "abcd", 4, would_block), 1);
  ::close(sv[0]);
  ::close(sv[1]);
}

}  // namespace
}  // namespace flit
