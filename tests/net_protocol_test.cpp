// Robustness tests for the incremental wire-protocol parsers
// (src/net/protocol.hpp): torn byte-at-a-time feeds, pipelined runs,
// binary-safe payloads, and hostile input — oversized, malformed, and
// unterminated frames must produce kError (so the server can send one
// -ERR and close), never a crash, hang, or silent misparse.
#include "net/protocol.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace flit::net {
namespace {

std::string frame(std::initializer_list<std::string_view> argv) {
  std::string out;
  append_request(out, argv);
  return out;
}

std::vector<Request> drain(RequestParser& p) {
  std::vector<Request> reqs;
  Request r;
  while (p.next(r) == ParseStatus::kOk) reqs.push_back(std::move(r));
  return reqs;
}

TEST(RequestParser, ParsesSingleArrayFrame) {
  RequestParser p;
  p.feed(frame({"SET", "42", "hello"}));
  Request r;
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  ASSERT_EQ(r.argv.size(), 3u);
  EXPECT_EQ(r.argv[0], "SET");
  EXPECT_EQ(r.argv[1], "42");
  EXPECT_EQ(r.argv[2], "hello");
  EXPECT_EQ(p.next(r), ParseStatus::kNeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParser, TornByteAtATimeFeed) {
  // The defining incremental-parser property: a frame split at EVERY
  // byte boundary parses identically to one fed whole.
  const std::string wire =
      frame({"SET", "1", "alpha"}) + frame({"GET", "1"});
  RequestParser p;
  std::vector<Request> got;
  for (const char c : wire) {
    p.feed(std::string_view(&c, 1));
    for (Request& r : drain(p)) got.push_back(std::move(r));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].argv, (std::vector<std::string>{"SET", "1", "alpha"}));
  EXPECT_EQ(got[1].argv, (std::vector<std::string>{"GET", "1"}));
}

TEST(RequestParser, PipelinedRunInOneBuffer) {
  std::string wire;
  for (int i = 0; i < 64; ++i) {
    std::string v = "v";
    v += std::to_string(i);
    wire += frame({"SET", std::to_string(i), v});
  }
  RequestParser p;
  p.feed(wire);
  const auto reqs = drain(p);
  ASSERT_EQ(reqs.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(reqs[static_cast<std::size_t>(i)].argv[1], std::to_string(i));
  }
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParser, BinarySafeValues) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload += static_cast<char>(i);
  payload += "\r\n$6\r\n";  // protocol bytes inside a value must not confuse
  RequestParser p;
  p.feed(frame({"SET", "7", payload}));
  Request r;
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_EQ(r.argv[2], payload);
}

TEST(RequestParser, InlineCommands) {
  RequestParser p;
  p.feed("PING\r\n  GET   17  \n\r\nSET 3 abc\n");
  const auto reqs = drain(p);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].argv, (std::vector<std::string>{"PING"}));
  EXPECT_EQ(reqs[1].argv, (std::vector<std::string>{"GET", "17"}));
  EXPECT_EQ(reqs[2].argv, (std::vector<std::string>{"SET", "3", "abc"}));
}

TEST(RequestParser, InlineTornFeed) {
  RequestParser p;
  const std::string wire = "SET 5 torn-inline\n";
  std::vector<Request> got;
  for (const char c : wire) {
    p.feed(std::string_view(&c, 1));
    for (Request& r : drain(p)) got.push_back(std::move(r));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].argv,
            (std::vector<std::string>{"SET", "5", "torn-inline"}));
}

TEST(RequestParser, OversizedBulkRejectedFromHeader) {
  // The hostile header alone must fail the stream — before the server
  // commits to buffering the announced gigabyte.
  RequestParser p;
  p.feed("*2\r\n$3\r\nGET\r\n$1000000000\r\n");
  Request r;
  EXPECT_EQ(p.next(r), ParseStatus::kError);
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.error().find("bulk exceeds"), std::string::npos);
}

TEST(RequestParser, OversizedArrayRejected) {
  RequestParser p;
  p.feed("*99999999\r\n");
  Request r;
  EXPECT_EQ(p.next(r), ParseStatus::kError);
  EXPECT_NE(p.error().find("array exceeds"), std::string::npos);
}

TEST(RequestParser, MalformedFramesRejected) {
  const char* bad[] = {
      "*x\r\n",                 // non-numeric array header
      "*-3\r\n",                // negative array header
      "*1\r\n$abc\r\n",         // non-numeric bulk length
      "*1\r\n$-5\r\n",          // negative bulk length
      "*1\r\nxoink\r\n",        // array element that is not a bulk
      "$5\r\nhello\r\n",        // bulk outside an array
      "*1\r\n$3\r\nabcXY",      // payload not CRLF-terminated
  };
  for (const char* wire : bad) {
    RequestParser p;
    p.feed(wire);
    Request r;
    EXPECT_EQ(p.next(r), ParseStatus::kError) << wire;
    EXPECT_TRUE(p.failed()) << wire;
  }
}

TEST(RequestParser, ErrorStateIsSticky) {
  RequestParser p;
  p.feed("*x\r\n");
  Request r;
  ASSERT_EQ(p.next(r), ParseStatus::kError);
  // A poisoned parser stays poisoned even if valid bytes arrive later:
  // framing is lost for good.
  p.feed(frame({"PING"}));
  EXPECT_EQ(p.next(r), ParseStatus::kError);
}

TEST(RequestParser, UnterminatedHeaderRejected) {
  // A header line that never ends must not buffer forever.
  RequestParser p;
  p.feed("*123456789012345678901234567890123456789");
  Request r;
  EXPECT_EQ(p.next(r), ParseStatus::kError);
  EXPECT_NE(p.error().find("unterminated"), std::string::npos);
}

TEST(RequestParser, UnterminatedInlineRejected) {
  RequestParser p;
  ProtocolLimits lim;
  std::string noisy(lim.max_inline_bytes + 2, 'a');  // no newline ever
  p.feed(noisy);
  Request r;
  EXPECT_EQ(p.next(r), ParseStatus::kError);
}

TEST(RequestParser, IncompleteFrameJustWaits) {
  RequestParser p;
  const std::string whole = frame({"SET", "1", "value"});
  p.feed(std::string_view(whole).substr(0, whole.size() - 3));
  Request r;
  EXPECT_EQ(p.next(r), ParseStatus::kNeedMore);
  EXPECT_FALSE(p.failed());
  p.feed(std::string_view(whole).substr(whole.size() - 3));
  EXPECT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_EQ(r.argv[2], "value");
}

TEST(RequestParser, CustomLimits) {
  ProtocolLimits lim;
  lim.max_bulk_bytes = 8;
  lim.max_array_elems = 2;
  RequestParser p(lim);
  p.feed(frame({"SET", "1", "12345678"}));  // exactly at the bound: fine
  Request r;
  EXPECT_EQ(p.next(r), ParseStatus::kError);  // 3 elems > 2
  RequestParser q(lim);
  q.feed(frame({"A", "123456789"}));  // 9 > 8 bulk bytes
  EXPECT_EQ(q.next(r), ParseStatus::kError);
}

// --- reply side -------------------------------------------------------------

TEST(ReplyParser, RoundTripsEveryReplyType) {
  std::string wire;
  append_simple(wire, "OK");
  append_error(wire, "ERR nope");
  append_integer(wire, -42);
  append_bulk(wire, "payload");
  append_null(wire);
  append_array_header(wire, 2);
  append_bulk(wire, "k");
  append_bulk(wire, "v");

  ReplyParser p;
  p.feed(wire);
  Reply r;
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.str, "ERR nope");
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_EQ(r.type, Reply::Type::kInteger);
  EXPECT_EQ(r.integer, -42);
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_EQ(r.type, Reply::Type::kBulk);
  EXPECT_EQ(r.str, "payload");
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  EXPECT_TRUE(r.is_null());
  ASSERT_EQ(p.next(r), ParseStatus::kOk);
  ASSERT_EQ(r.type, Reply::Type::kArray);
  ASSERT_EQ(r.elems.size(), 2u);
  EXPECT_EQ(r.elems[0].str, "k");
  EXPECT_EQ(r.elems[1].str, "v");
  EXPECT_EQ(p.next(r), ParseStatus::kNeedMore);
}

TEST(ReplyParser, TornFeed) {
  std::string wire;
  append_array_header(wire, 3);
  append_bulk(wire, "a");
  append_null(wire);
  append_integer(wire, 7);
  ReplyParser p;
  Reply r;
  std::size_t got = 0;
  for (const char c : wire) {
    p.feed(std::string_view(&c, 1));
    while (p.next(r) == ParseStatus::kOk) ++got;
  }
  ASSERT_EQ(got, 1u);
  ASSERT_EQ(r.elems.size(), 3u);
  EXPECT_EQ(r.elems[0].str, "a");
  EXPECT_TRUE(r.elems[1].is_null());
  EXPECT_EQ(r.elems[2].integer, 7);
}

TEST(ReplyParser, RejectsGarbageAndDeepNesting) {
  {
    ReplyParser p;
    p.feed("?what\r\n");
    Reply r;
    EXPECT_EQ(p.next(r), ParseStatus::kError);
  }
  {
    ReplyParser p;
    std::string wire;
    for (int i = 0; i < 8; ++i) append_array_header(wire, 1);
    append_bulk(wire, "deep");
    p.feed(wire);
    Reply r;
    EXPECT_EQ(p.next(r), ParseStatus::kError);
  }
}

}  // namespace
}  // namespace flit::net
