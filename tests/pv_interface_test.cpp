// P-V Interface conformance tests (paper §3, Definition 1), exercised
// through the crash simulator. These reconstruct the races that motivate
// the FliT algorithm and check each condition's guarantee directly.
#include <gtest/gtest.h>

#include <thread>

#include "core/modes.hpp"
#include "core/persist.hpp"
#include "support/test_common.hpp"

namespace flit {
namespace {

using flit::test::PmemTest;
using P = persist<std::uint64_t, HashedPolicy>;

class PvInterfaceTest : public PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    pmem::Pool::instance().register_with_sim();
    pmem::set_backend(pmem::Backend::kSimCrash);
  }

  P* fresh(std::uint64_t v) {
    auto* p = pmem::pnew<P>(v);
    pmem::persist_range(p, sizeof(P));
    return p;
  }
};

// Condition 2 (store dependencies): a completed p-store is persisted by the
// time the flit-instruction returns — no operation_completion needed.
TEST_F(PvInterfaceTest, Condition2_PStoreDurableAtInstructionEnd) {
  P* x = fresh(0);
  x->store(5, kPersist);
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(x->load_private(), 5u);
}

// Condition 3 (load dependencies): the §5 race. A writer makes its store
// visible (counter tagged, line flushed but NOT fenced) and stalls. A
// reader p-loads the value; after the reader's own fence the value must be
// durable even though the writer never fenced.
TEST_F(PvInterfaceTest, Condition3_ReaderPersistsPendingStore) {
  P* x = fresh(0);

  std::thread writer([&] {
    // Open Algorithm 4's p-store window by hand and stall before the
    // final pfence/untag: tag, store, pwb (pending in *this* thread).
    HashedPolicy::tag(x->raw_address());
    x->store_private(77, kVolatile);  // plain store into volatile memory
    pmem::pwb(x->raw_address());
    // Thread exits without a fence: its pending flush is lost.
  });
  writer.join();

  // Reader: p-load must observe the tag and flush; its completion fence
  // persists the dependency (Definition 1, Conditions 3+4).
  EXPECT_EQ(x->load(kPersist), 77u);
  P::operation_completion();

  pmem::SimMemory::instance().crash();
  EXPECT_EQ(x->load_private(), 77u)
      << "reader's flush-if-tagged must make the observed value durable";
  HashedPolicy::untag(x->raw_address());
}

// Negative twin of Condition 3: a v-load does NOT adopt the dependency, so
// the value is lost — confirming the reader's pwb above is what saved it.
TEST_F(PvInterfaceTest, Condition3_VLoadAdoptsNoDependency) {
  P* x = fresh(0);
  std::thread writer([&] {
    HashedPolicy::tag(x->raw_address());
    x->store_private(88, kVolatile);
    pmem::pwb(x->raw_address());
  });
  writer.join();

  EXPECT_EQ(x->load(kVolatile), 88u);  // sees it, doesn't flush it
  P::operation_completion();
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(x->load_private(), 0u);
  HashedPolicy::untag(x->raw_address());
}

// Condition 4 (persisting dependencies): a shared store by a process
// persists everything the process read via p-loads beforehand — the
// leading pfence of Algorithm 4's shared-store.
TEST_F(PvInterfaceTest, Condition4_SharedStorePersistsPriorPLoads) {
  P* a = fresh(0);
  P* b = fresh(0);

  std::thread writer([&] {
    HashedPolicy::tag(a->raw_address());
    a->store_private(11, kVolatile);
    pmem::pwb(a->raw_address());
  });
  writer.join();

  EXPECT_EQ(a->load(kPersist), 11u);  // dependency adopted (pwb pending)
  b->store(22, kVolatile);            // even a v-store fences first
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(a->load_private(), 11u)
      << "the dependency must persist before the next shared store";
  HashedPolicy::untag(a->raw_address());
}

// Condition 4, operation-completion flavor.
TEST_F(PvInterfaceTest, Condition4_OperationCompletionPersistsDependencies) {
  P* a = fresh(0);
  std::thread writer([&] {
    HashedPolicy::tag(a->raw_address());
    a->store_private(33, kVolatile);
    pmem::pwb(a->raw_address());
  });
  writer.join();

  EXPECT_EQ(a->load(kPersist), 33u);
  P::operation_completion();
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(a->load_private(), 33u);
  HashedPolicy::untag(a->raw_address());
}

// Store ordering: two p-stores by the same process persist in order — the
// second store's leading pfence covers the first (prefix property used in
// Theorem 3.1's proof).
TEST_F(PvInterfaceTest, SameProcessPStoresPersistInOrder) {
  P* a = fresh(0);
  P* b = fresh(0);
  a->store(1, kPersist);
  b->store(2, kPersist);
  pmem::SimMemory::instance().crash();
  // Both completed, so both must be durable; in particular it must never
  // happen that b persisted without a.
  EXPECT_EQ(a->load_private(), 1u);
  EXPECT_EQ(b->load_private(), 2u);
}

// Private p-stores (paper §5): no counter traffic, but still durable.
TEST_F(PvInterfaceTest, PrivatePStoreIsDurableAndUntagged) {
  P* x = fresh(0);
  const auto before = pmem::stats_snapshot();
  x->store_private(44, kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 1u);
  EXPECT_EQ(d.pfences, 1u);
  EXPECT_FALSE(x->tagged()) << "private stores never touch the counter";
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(x->load_private(), 44u);
}

// Lemma 5.1 under concurrency: counters never go negative and return to
// zero once all p-stores complete (checked via the table's all_zero()).
TEST_F(PvInterfaceTest, CounterBalanceIsZeroWhenQuiescent) {
  HashedCounterTable::instance().configure(1 << 16, 1);
  P* x = pmem::pnew<P>(std::uint64_t{0});
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 3'000; ++i) x->store(static_cast<std::uint64_t>(i), kPersist);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_TRUE(HashedCounterTable::instance().all_zero());
  HashedCounterTable::instance().configure(HashedCounterTable::kDefaultSlots,
                                           1);
}

}  // namespace
}  // namespace flit
