// Unit tests for the link-and-persist word (the bit-tagging baseline).
#include "core/link_and_persist.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "pmem/cacheline.hpp"
#include "support/test_common.hpp"

namespace flit {
namespace {

using flit::test::PmemTest;

struct Obj {
  int v;
};

class LapTest : public PmemTest {};

TEST_F(LapTest, CasInstallsAndClearsDirtyFlag) {
  Obj a{1}, b{2};
  lap_word<Obj*> w(&a);
  Obj* expected = &a;
  EXPECT_TRUE(w.cas(expected, &b, kPersist));
  EXPECT_EQ(w.load(), &b);
  EXPECT_FALSE(w.dirty()) << "writer clears its flag after pwb+pfence";
}

TEST_F(LapTest, FailedCasReportsLogicalValue) {
  Obj a{1}, b{2}, c{3};
  lap_word<Obj*> w(&a);
  Obj* expected = &b;  // stale
  EXPECT_FALSE(w.cas(expected, &c, kPersist));
  EXPECT_EQ(expected, &a);
  EXPECT_EQ(w.load(), &a);
}

TEST_F(LapTest, VolatileCasLeavesNoFlag) {
  Obj a{1}, b{2};
  lap_word<Obj*> w(&a);
  Obj* expected = &a;
  const auto before = pmem::stats_snapshot();
  EXPECT_TRUE(w.cas(expected, &b, kVolatile));
  EXPECT_FALSE(w.dirty());
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
}

TEST_F(LapTest, PCasFlushesExactlyOnce) {
  Obj a{1}, b{2};
  lap_word<Obj*> w(&a);
  Obj* expected = &a;
  const auto before = pmem::stats_snapshot();
  EXPECT_TRUE(w.cas(expected, &b, kPersist));
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 1u);
}

TEST_F(LapTest, CleanReadSkipsFlush) {
  Obj a{1};
  lap_word<Obj*> w(&a);
  const auto before = pmem::stats_snapshot();
  for (int i = 0; i < 100; ++i) (void)w.load(kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
}

TEST_F(LapTest, MarkBitZeroSurvivesRoundTrip) {
  // The data structure's Harris mark (bit 0) must pass through untouched.
  Obj a{1}, b{2};
  auto* marked_b =
      reinterpret_cast<Obj*>(reinterpret_cast<std::uintptr_t>(&b) | 1);
  lap_word<Obj*> w(&a);
  Obj* expected = &a;
  EXPECT_TRUE(w.cas(expected, marked_b, kPersist));
  EXPECT_EQ(w.load(), marked_b) << "bit 0 belongs to the DS, not to LaP";
  EXPECT_FALSE(w.dirty());
}

TEST_F(LapTest, PrivateStoreRoundTrip) {
  Obj a{1};
  lap_word<Obj*> w;
  w.store_private(&a, kPersist);
  EXPECT_EQ(w.load_private(), &a);
  EXPECT_EQ(w.load(), &a);
}

TEST_F(LapTest, ConcurrentCasChainsLikeAtomic) {
  // N threads each install their own node expecting the previous one; the
  // final chain length equals the number of successful CASes.
  constexpr int kThreads = 8;
  constexpr int kIters = 2'000;
  static Obj nodes[kThreads];
  lap_word<Obj*> w(nullptr);
  std::atomic<int> successes{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&w, &successes, t] {
      for (int i = 0; i < kIters; ++i) {
        Obj* cur = w.load(kPersist);
        Obj* mine = &nodes[t];
        if (cur != mine && w.cas(cur, mine, kPersist)) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_GT(successes.load(), 0);
  EXPECT_FALSE(w.dirty()) << "all flags cleared once all stores finish";
  Obj* final_val = w.load();
  bool is_one_of_ours = false;
  for (auto& n : nodes) is_one_of_ours |= (final_val == &n);
  EXPECT_TRUE(is_one_of_ours);
}

TEST_F(LapTest, ReaderFlushesDirtyWord) {
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  // Padded to a whole cache line: the simulator registers, restores, and
  // flushes at line granularity, so the registered object must own every
  // byte of the lines it spans.
  static_assert(sizeof(lap_word<Obj*>) < pmem::kCacheLineSize,
                "pad arithmetic below needs a sub-line word");
  alignas(pmem::kCacheLineSize) static struct {
    lap_word<Obj*> w;
    std::byte pad[pmem::kCacheLineSize - sizeof(lap_word<Obj*>)];
  } region;
  static Obj a{1};
  pmem::SimMemory::instance().register_region(&region, sizeof(region));

  // Writer installs a value but "stalls" before clearing: emulate by
  // writing the dirty word via a volatile CAS then manually tagging.
  // Simpler: a p-CAS from another thread, whose flush lands in ITS pending
  // set; our reader must still be able to persist the value itself.
  std::thread writer([&] {
    Obj* e = nullptr;
    region.w.cas(e, &a, kPersist);
  });
  writer.join();
  (void)region.w.load(kPersist);
  pmem::pfence();
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(region.w.load_private(), &a);
}

}  // namespace
}  // namespace flit
