// Functional tests for the sharded KV store (src/kv/): API semantics,
// variable-length value records, shard routing, and concurrent mixed use.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using KvStore = Store<HashedWords, Automatic>;

class KvStoreTest : public PmemTest {};

/// Self-describing churn payload: 8-byte key + 8-byte salt header, then
/// filler whose char and length derive from both — a reader can verify
/// any committed generation byte for byte (and detect torn or
/// cross-wired records) without knowing which generation it caught.
std::string churn_value(std::int64_t k, std::uint64_t salt) {
  const std::size_t len = 16 + static_cast<std::size_t>(
                                   (static_cast<std::uint64_t>(k) * 131 +
                                    salt * 257) %
                                   200);
  std::string v(len, static_cast<char>('a' + (k + static_cast<std::int64_t>(
                                                      salt)) %
                                                 26));
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] = static_cast<char>((static_cast<std::uint64_t>(k) >> (8 * i)) &
                             0xFF);
    v[8 + i] = static_cast<char>((salt >> (8 * i)) & 0xFF);
  }
  return v;
}

/// True iff `v` is churn_value(k, s) for some salt s.
bool churn_value_ok(std::int64_t k, const std::string& v) {
  if (v.size() < 16) return false;
  std::uint64_t rk = 0, salt = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    rk |= static_cast<std::uint64_t>(static_cast<unsigned char>(v[i]))
          << (8 * i);
    salt |= static_cast<std::uint64_t>(static_cast<unsigned char>(v[8 + i]))
            << (8 * i);
  }
  return rk == static_cast<std::uint64_t>(k) && v == churn_value(k, salt);
}

TEST_F(KvStoreTest, PutGetRemoveRoundTrip) {
  KvStore kv(4, 64);
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_TRUE(kv.put(1, "one"));
  EXPECT_EQ(kv.get(1), "one");
  EXPECT_TRUE(kv.contains(1));

  // Overwrite: not a fresh insert, new value visible afterwards.
  EXPECT_FALSE(kv.put(1, "uno"));
  EXPECT_EQ(kv.get(1), "uno");

  EXPECT_TRUE(kv.remove(1));
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_FALSE(kv.remove(1));
}

TEST_F(KvStoreTest, VariableLengthValuesRoundTrip) {
  KvStore kv(2, 64);
  // Lengths straddle the pool's 1024-byte size-class boundary (the value
  // slab allocates headers + payload from both paths).
  const std::size_t lens[] = {0, 1, 15, 16, 100, 1000, 1020, 1024, 1025,
                              4096, 65536};
  std::int64_t k = 0;
  for (const std::size_t len : lens) {
    const std::string v(len, static_cast<char>('a' + (k % 26)));
    EXPECT_TRUE(kv.put(k, v));
    const auto got = kv.get(k);
    ASSERT_TRUE(got.has_value()) << "len " << len;
    EXPECT_EQ(*got, v) << "len " << len;
    ++k;
  }
  EXPECT_EQ(kv.size(), std::size(lens));
}

TEST_F(KvStoreTest, OverwriteChangesValueLength) {
  KvStore kv(2, 64);
  kv.put(7, std::string(2000, 'x'));
  kv.put(7, "short");
  EXPECT_EQ(kv.get(7), "short");
  kv.put(7, std::string(3000, 'y'));
  EXPECT_EQ(kv.get(7)->size(), 3000u);
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, KeysSpreadAcrossAllShards) {
  KvStore kv(8, 64);
  for (std::int64_t k = 0; k < 4'000; ++k) {
    kv.put(k, "v");
  }
  EXPECT_EQ(kv.size(), 4'000u);
  for (std::size_t i = 0; i < kv.nshards(); ++i) {
    // Uniform routing: each shard holds 500 ± a wide tolerance.
    EXPECT_GT(kv.shard(i).size(), 300u) << "shard " << i;
    EXPECT_LT(kv.shard(i).size(), 700u) << "shard " << i;
  }
}

TEST_F(KvStoreTest, ShardRoutingIsStable) {
  KvStore a(8, 64);
  KvStore b(8, 64);
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(a.shard_index(k), b.shard_index(k));
  }
}

TEST_F(KvStoreTest, ReservedSentinelKeysAreRejected) {
  // INT64_MIN/MAX are the Harris lists' sentinel keys: put must refuse
  // them (a put would otherwise corrupt a bucket's tail sentinel), and
  // reads must treat them as absent rather than matching a sentinel.
  KvStore kv(2, 64);
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(kv.put(kMin, "x"), std::invalid_argument);
  EXPECT_THROW(kv.put(kMax, "x"), std::invalid_argument);
  EXPECT_EQ(kv.get(kMin), std::nullopt);
  EXPECT_EQ(kv.get(kMax), std::nullopt);
  EXPECT_FALSE(kv.contains(kMax));
  EXPECT_FALSE(kv.remove(kMax));
  // Neighbouring keys are ordinary.
  EXPECT_TRUE(kv.put(kMax - 1, "edge"));
  EXPECT_EQ(kv.get(kMax - 1), "edge");
}

TEST_F(KvStoreTest, FreshStoreHasGenerationOne) {
  KvStore kv(2, 64);
  EXPECT_EQ(kv.generation(), 1u);
  EXPECT_EQ(kv.nshards(), 2u);
  ASSERT_NE(kv.superblock(), nullptr);
  EXPECT_EQ(kv.superblock()->magic, KvStore::kMagic);
}

TEST_F(KvStoreTest, RecoverRejectsCorruptSuperblock) {
  KvStore kv(2, 64);
  auto* sb = kv.superblock();
  const auto saved = sb->magic;
  sb->magic = 0xBAD;
  EXPECT_THROW((void)KvStore::recover(sb), std::runtime_error);
  sb->magic = saved;
}

TEST_F(KvStoreTest, ShardMoveResetsTheSourceCounter) {
  // Regression: the move constructor used to copy approx_size_ and leave
  // the moved-from shard's counter populated — a husk summed by anything
  // still holding it would double-count every key.
  Shard<HashBackend<HashedWords, Automatic>> a(16);
  ASSERT_TRUE(a.put(1, "one"));
  ASSERT_TRUE(a.put(2, "two"));
  ASSERT_EQ(a.size(), 2u);
  Shard<HashBackend<HashedWords, Automatic>> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u) << "moved-from counter must be zeroed";
  EXPECT_EQ(b.get(1), "one");
  EXPECT_EQ(b.get(2), "two");
}

TEST_F(KvStoreTest, OverwriteChurnNeverHidesAKey) {
  // The tentpole's acceptance criterion on the hashed backend: under
  // 100% overwrite churn on a fixed key set, a concurrent get must
  // observe the old or the new complete value — never absence, never a
  // torn mix. (Before the in-place value CAS, put was remove + insert
  // and this test's absence counter fired readily.)
  KvStore kv(4, 64);
  constexpr std::int64_t kKeys = 64;
  for (std::int64_t k = 0; k < kKeys; ++k) kv.put(k, churn_value(k, 0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> absences{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&kv, &stop, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 3);
      std::uint64_t salt = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = static_cast<std::int64_t>(rng() % kKeys);
        EXPECT_FALSE(kv.put(k, churn_value(k, salt++)))
            << "an overwrite must never report a fresh insert";
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&kv, &absences, &torn, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 31 + 7);
      for (int i = 0; i < 30'000; ++i) {
        const auto k = static_cast<std::int64_t>(rng() % kKeys);
        const auto v = kv.get(k);
        if (!v) {
          absences.fetch_add(1);
        } else if (!churn_value_ok(k, *v)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(absences.load(), 0u)
      << "a key under pure overwrite churn transiently disappeared";
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(kv.size(), static_cast<std::size_t>(kKeys));
}

TEST_F(KvStoreTest, SizeIsExactUnderPureOverwriteChurn) {
  // Overwrites no longer touch the per-shard counters (no remove+insert
  // sub/add dance), so size() reads exactly N even mid-churn — not just
  // at quiescence.
  KvStore kv(4, 64);
  constexpr std::int64_t kKeys = 128;
  for (std::int64_t k = 0; k < kKeys; ++k) kv.put(k, "v0");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&kv, &stop, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 97 + 13);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = static_cast<std::int64_t>(rng() % kKeys);
        kv.put(k, churn_value(k, rng()));
      }
    });
  }
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(kv.size(), static_cast<std::size_t>(kKeys))
        << "size() dipped during an in-flight overwrite";
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(kv.size(), static_cast<std::size_t>(kKeys));
}

// --- batched multi-op path ---------------------------------------------------

TEST_F(KvStoreTest, MultiGetMatchesScalarLoop) {
  KvStore kv(4, 64);
  for (std::int64_t k = 0; k < 100; k += 2) {
    kv.put(k, churn_value(k, 7));  // even keys present, odd keys absent
  }
  // Mixed hits/misses plus duplicate keys in one batch.
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 100; ++k) keys.push_back(k);
  keys.push_back(4);   // duplicate hit
  keys.push_back(5);   // duplicate miss
  const auto got = kv.multi_get(keys);
  ASSERT_EQ(got.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(got[i], kv.get(keys[i])) << "key " << keys[i];
  }
}

TEST_F(KvStoreTest, MultiPutMatchesScalarSemantics) {
  // The batched path must be observationally identical to a scalar loop:
  // same fresh-insert flags, same final contents.
  KvStore batched(4, 64);
  KvStore scalar(4, 64);
  std::vector<std::pair<std::int64_t, std::string>> store;
  for (std::int64_t k = 0; k < 64; ++k) {
    store.emplace_back(k, churn_value(k, 1));
  }
  for (std::int64_t k = 0; k < 32; ++k) {
    batched.put(k, churn_value(k, 0));  // first half becomes overwrites
    scalar.put(k, churn_value(k, 0));
  }
  std::vector<std::pair<std::int64_t, std::string_view>> kvs;
  for (const auto& [k, v] : store) kvs.emplace_back(k, v);

  const auto fresh = batched.multi_put(kvs);
  ASSERT_EQ(fresh.size(), kvs.size());
  for (std::size_t i = 0; i < kvs.size(); ++i) {
    const bool scalar_fresh = scalar.put(kvs[i].first, kvs[i].second);
    EXPECT_EQ(static_cast<bool>(fresh[i]), scalar_fresh) << "key "
                                                         << kvs[i].first;
  }
  EXPECT_EQ(batched.size(), scalar.size());
  for (std::int64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(batched.get(k), scalar.get(k)) << "key " << k;
  }
}

TEST_F(KvStoreTest, MultiRemoveMatchesScalarLoop) {
  KvStore kv(4, 64);
  for (std::int64_t k = 0; k < 40; ++k) kv.put(k, "v");
  // Present, absent, duplicate (second occurrence sees it gone), and a
  // reserved sentinel (reports false, like remove()).
  const std::vector<std::int64_t> keys = {
      3, 100, 7, 3, std::numeric_limits<std::int64_t>::max()};
  const auto out = kv.multi_remove(keys);
  ASSERT_EQ(out.size(), keys.size());
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_TRUE(out[2]);
  EXPECT_FALSE(out[3]) << "duplicate remove in one batch: second loses";
  EXPECT_FALSE(out[4]);
  EXPECT_EQ(kv.get(3), std::nullopt);
  EXPECT_EQ(kv.get(7), std::nullopt);
  EXPECT_EQ(kv.size(), 38u);
}

TEST_F(KvStoreTest, MultiPutDuplicateKeysApplyInOrderLastWins) {
  // Documented duplicate semantics: every occurrence is applied in batch
  // order, so the last value wins and at most the first occurrence can be
  // a fresh insert.
  KvStore kv(4, 64);
  kv.put(5, "pre");
  const std::vector<std::pair<std::int64_t, std::string_view>> kvs = {
      {9, "v1"}, {5, "a"}, {9, "v2"}, {9, "v3"}};
  const auto fresh = kv.multi_put(kvs);
  EXPECT_TRUE(fresh[0]) << "first occurrence of 9 inserts";
  EXPECT_FALSE(fresh[1]) << "5 was prefilled";
  EXPECT_FALSE(fresh[2]) << "second occurrence overwrites";
  EXPECT_FALSE(fresh[3]);
  EXPECT_EQ(kv.get(9), "v3");
  EXPECT_EQ(kv.get(5), "a");
  EXPECT_EQ(kv.size(), 2u) << "duplicates count once";
}

TEST_F(KvStoreTest, MultiOpsHandleEmptyAndSingletonBatches) {
  KvStore kv(2, 64);
  EXPECT_TRUE(kv.multi_get(std::vector<std::int64_t>{}).empty());
  EXPECT_TRUE(kv.multi_put({}).empty());
  EXPECT_TRUE(kv.multi_remove(std::vector<std::int64_t>{}).empty());
  const std::vector<std::pair<std::int64_t, std::string_view>> one = {
      {1, "x"}};
  EXPECT_TRUE(kv.multi_put(one)[0]);
  const auto got = kv.multi_get(std::vector<std::int64_t>{1});
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ(*got[0], "x");
  EXPECT_TRUE(kv.multi_remove(std::vector<std::int64_t>{1})[0]);
  EXPECT_EQ(kv.size(), 0u);
}

TEST_F(KvStoreTest, MultiPutReservedKeyThrowsBeforeAnySideEffect) {
  // Validation is all-or-nothing: a reserved sentinel anywhere in the
  // batch must reject the whole batch before any element is applied.
  KvStore kv(2, 64);
  const std::vector<std::pair<std::int64_t, std::string_view>> kvs = {
      {1, "a"}, {std::numeric_limits<std::int64_t>::min(), "boom"}, {2, "b"}};
  EXPECT_THROW((void)kv.multi_put(kvs), std::invalid_argument);
  EXPECT_EQ(kv.get(1), std::nullopt) << "no element may be applied";
  EXPECT_EQ(kv.get(2), std::nullopt);
  EXPECT_EQ(kv.size(), 0u);
  // Reserved keys in read/remove batches are simply absent, as scalar.
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(kv.multi_get(std::vector<std::int64_t>{kMax})[0], std::nullopt);
}

TEST_F(KvStoreTest, MultiGetUnderConcurrentUpsertsNeverMissesACommittedKey) {
  // The batched churn analogue of OverwriteChurnNeverHidesAKey, and the
  // TSan target for the multi-op path (this suite carries the kv label):
  // while writers overwrite a fixed committed key set through both the
  // scalar and the batched put paths, a multi_get batch must never
  // observe absence or a torn value — the deferred-fence publish is a
  // plain atomic CAS to readers.
  KvStore kv(4, 64);
  constexpr std::int64_t kKeys = 48;
  for (std::int64_t k = 0; k < kKeys; ++k) kv.put(k, churn_value(k, 0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> absences{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&kv, &stop, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 3);
      std::uint64_t salt = 1;
      std::vector<std::pair<std::int64_t, std::string>> vals;
      std::vector<std::pair<std::int64_t, std::string_view>> kvs;
      while (!stop.load(std::memory_order_relaxed)) {
        if (t == 0) {  // scalar overwrites
          const auto k = static_cast<std::int64_t>(rng() % kKeys);
          kv.put(k, churn_value(k, salt++));
        } else {  // batched overwrites
          vals.clear();
          kvs.clear();
          for (int i = 0; i < 8; ++i) {
            const auto k = static_cast<std::int64_t>(rng() % kKeys);
            vals.emplace_back(k, churn_value(k, salt++));
          }
          for (const auto& [k, v] : vals) kvs.emplace_back(k, v);
          kv.multi_put(kvs);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&kv, &absences, &torn, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 31 + 7);
      std::vector<std::int64_t> keys;
      for (int i = 0; i < 4'000; ++i) {
        keys.clear();
        for (int j = 0; j < 12; ++j) {
          keys.push_back(static_cast<std::int64_t>(rng() % kKeys));
        }
        const auto got = kv.multi_get(keys);
        for (std::size_t j = 0; j < keys.size(); ++j) {
          if (!got[j]) {
            absences.fetch_add(1);
          } else if (!churn_value_ok(keys[j], *got[j])) {
            torn.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(absences.load(), 0u)
      << "a committed key transiently vanished from a multi_get";
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(kv.size(), static_cast<std::size_t>(kKeys));
}

TEST_F(KvStoreTest, ConcurrentMixedOpsKeepValuesConsistent) {
  // Writers only ever store the deterministic pattern for a key; any read
  // must observe either absence or that exact pattern (never a torn or
  // cross-wired record).
  KvStore kv(4, 256);
  constexpr std::int64_t kRange = 512;
  constexpr int kThreads = 4;
  auto value_for = [](std::int64_t k) {
    return std::string(static_cast<std::size_t>(17 + 13 * (k % 97)),
                       static_cast<char>('A' + k % 23));
  };

  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < 20'000; ++i) {
        const auto k = static_cast<std::int64_t>(rng() % kRange);
        switch (rng() % 4) {
          case 0:
            kv.put(k, value_for(k));
            break;
          case 1:
            kv.remove(k);
            break;
          default: {
            const auto v = kv.get(k);
            if (v && *v != value_for(k)) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad.load(), 0u) << "reads must never observe torn values";

  // Post-quiescence: store agrees with a sequential sweep oracle.
  std::size_t present = 0;
  for (std::int64_t k = 0; k < kRange; ++k) {
    const auto v = kv.get(k);
    if (v) {
      EXPECT_EQ(*v, value_for(k)) << k;
      ++present;
    }
  }
  EXPECT_EQ(kv.size(), present);
}

}  // namespace
}  // namespace flit::kv
