// Functional tests for the sharded KV store (src/kv/): API semantics,
// variable-length value records, shard routing, and concurrent mixed use.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using KvStore = Store<HashedWords, Automatic>;

class KvStoreTest : public PmemTest {};

TEST_F(KvStoreTest, PutGetRemoveRoundTrip) {
  KvStore kv(4, 64);
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_TRUE(kv.put(1, "one"));
  EXPECT_EQ(kv.get(1), "one");
  EXPECT_TRUE(kv.contains(1));

  // Overwrite: not a fresh insert, new value visible afterwards.
  EXPECT_FALSE(kv.put(1, "uno"));
  EXPECT_EQ(kv.get(1), "uno");

  EXPECT_TRUE(kv.remove(1));
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_FALSE(kv.remove(1));
}

TEST_F(KvStoreTest, VariableLengthValuesRoundTrip) {
  KvStore kv(2, 64);
  // Lengths straddle the pool's 1024-byte size-class boundary (the value
  // slab allocates headers + payload from both paths).
  const std::size_t lens[] = {0, 1, 15, 16, 100, 1000, 1020, 1024, 1025,
                              4096, 65536};
  std::int64_t k = 0;
  for (const std::size_t len : lens) {
    const std::string v(len, static_cast<char>('a' + (k % 26)));
    EXPECT_TRUE(kv.put(k, v));
    const auto got = kv.get(k);
    ASSERT_TRUE(got.has_value()) << "len " << len;
    EXPECT_EQ(*got, v) << "len " << len;
    ++k;
  }
  EXPECT_EQ(kv.size(), std::size(lens));
}

TEST_F(KvStoreTest, OverwriteChangesValueLength) {
  KvStore kv(2, 64);
  kv.put(7, std::string(2000, 'x'));
  kv.put(7, "short");
  EXPECT_EQ(kv.get(7), "short");
  kv.put(7, std::string(3000, 'y'));
  EXPECT_EQ(kv.get(7)->size(), 3000u);
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, KeysSpreadAcrossAllShards) {
  KvStore kv(8, 64);
  for (std::int64_t k = 0; k < 4'000; ++k) {
    kv.put(k, "v");
  }
  EXPECT_EQ(kv.size(), 4'000u);
  for (std::size_t i = 0; i < kv.nshards(); ++i) {
    // Uniform routing: each shard holds 500 ± a wide tolerance.
    EXPECT_GT(kv.shard(i).size(), 300u) << "shard " << i;
    EXPECT_LT(kv.shard(i).size(), 700u) << "shard " << i;
  }
}

TEST_F(KvStoreTest, ShardRoutingIsStable) {
  KvStore a(8, 64);
  KvStore b(8, 64);
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(a.shard_index(k), b.shard_index(k));
  }
}

TEST_F(KvStoreTest, ReservedSentinelKeysAreRejected) {
  // INT64_MIN/MAX are the Harris lists' sentinel keys: put must refuse
  // them (a put would otherwise corrupt a bucket's tail sentinel), and
  // reads must treat them as absent rather than matching a sentinel.
  KvStore kv(2, 64);
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(kv.put(kMin, "x"), std::invalid_argument);
  EXPECT_THROW(kv.put(kMax, "x"), std::invalid_argument);
  EXPECT_EQ(kv.get(kMin), std::nullopt);
  EXPECT_EQ(kv.get(kMax), std::nullopt);
  EXPECT_FALSE(kv.contains(kMax));
  EXPECT_FALSE(kv.remove(kMax));
  // Neighbouring keys are ordinary.
  EXPECT_TRUE(kv.put(kMax - 1, "edge"));
  EXPECT_EQ(kv.get(kMax - 1), "edge");
}

TEST_F(KvStoreTest, FreshStoreHasGenerationOne) {
  KvStore kv(2, 64);
  EXPECT_EQ(kv.generation(), 1u);
  EXPECT_EQ(kv.nshards(), 2u);
  ASSERT_NE(kv.superblock(), nullptr);
  EXPECT_EQ(kv.superblock()->magic, KvStore::kMagic);
}

TEST_F(KvStoreTest, RecoverRejectsCorruptSuperblock) {
  KvStore kv(2, 64);
  auto* sb = kv.superblock();
  const auto saved = sb->magic;
  sb->magic = 0xBAD;
  EXPECT_THROW((void)KvStore::recover(sb), std::runtime_error);
  sb->magic = saved;
}

TEST_F(KvStoreTest, ConcurrentMixedOpsKeepValuesConsistent) {
  // Writers only ever store the deterministic pattern for a key; any read
  // must observe either absence or that exact pattern (never a torn or
  // cross-wired record).
  KvStore kv(4, 256);
  constexpr std::int64_t kRange = 512;
  constexpr int kThreads = 4;
  auto value_for = [](std::int64_t k) {
    return std::string(static_cast<std::size_t>(17 + 13 * (k % 97)),
                       static_cast<char>('A' + k % 23));
  };

  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < 20'000; ++i) {
        const auto k = static_cast<std::int64_t>(rng() % kRange);
        switch (rng() % 4) {
          case 0:
            kv.put(k, value_for(k));
            break;
          case 1:
            kv.remove(k);
            break;
          default: {
            const auto v = kv.get(k);
            if (v && *v != value_for(k)) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad.load(), 0u) << "reads must never observe torn values";

  // Post-quiescence: store agrees with a sequential sweep oracle.
  std::size_t present = 0;
  for (std::int64_t k = 0; k < kRange; ++k) {
    const auto v = kv.get(k);
    if (v) {
      EXPECT_EQ(*v, value_for(k)) << k;
      ++present;
    }
  }
  EXPECT_EQ(kv.size(), present);
}

}  // namespace
}  // namespace flit::kv
