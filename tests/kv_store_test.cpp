// Functional tests for the sharded KV store (src/kv/): API semantics,
// variable-length value records, shard routing, and concurrent mixed use.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using KvStore = Store<HashedWords, Automatic>;

class KvStoreTest : public PmemTest {};

/// Self-describing churn payload: 8-byte key + 8-byte salt header, then
/// filler whose char and length derive from both — a reader can verify
/// any committed generation byte for byte (and detect torn or
/// cross-wired records) without knowing which generation it caught.
std::string churn_value(std::int64_t k, std::uint64_t salt) {
  const std::size_t len = 16 + static_cast<std::size_t>(
                                   (static_cast<std::uint64_t>(k) * 131 +
                                    salt * 257) %
                                   200);
  std::string v(len, static_cast<char>('a' + (k + static_cast<std::int64_t>(
                                                      salt)) %
                                                 26));
  for (std::size_t i = 0; i < 8; ++i) {
    v[i] = static_cast<char>((static_cast<std::uint64_t>(k) >> (8 * i)) &
                             0xFF);
    v[8 + i] = static_cast<char>((salt >> (8 * i)) & 0xFF);
  }
  return v;
}

/// True iff `v` is churn_value(k, s) for some salt s.
bool churn_value_ok(std::int64_t k, const std::string& v) {
  if (v.size() < 16) return false;
  std::uint64_t rk = 0, salt = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    rk |= static_cast<std::uint64_t>(static_cast<unsigned char>(v[i]))
          << (8 * i);
    salt |= static_cast<std::uint64_t>(static_cast<unsigned char>(v[8 + i]))
            << (8 * i);
  }
  return rk == static_cast<std::uint64_t>(k) && v == churn_value(k, salt);
}

TEST_F(KvStoreTest, PutGetRemoveRoundTrip) {
  KvStore kv(4, 64);
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_TRUE(kv.put(1, "one"));
  EXPECT_EQ(kv.get(1), "one");
  EXPECT_TRUE(kv.contains(1));

  // Overwrite: not a fresh insert, new value visible afterwards.
  EXPECT_FALSE(kv.put(1, "uno"));
  EXPECT_EQ(kv.get(1), "uno");

  EXPECT_TRUE(kv.remove(1));
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_FALSE(kv.remove(1));
}

TEST_F(KvStoreTest, VariableLengthValuesRoundTrip) {
  KvStore kv(2, 64);
  // Lengths straddle the pool's 1024-byte size-class boundary (the value
  // slab allocates headers + payload from both paths).
  const std::size_t lens[] = {0, 1, 15, 16, 100, 1000, 1020, 1024, 1025,
                              4096, 65536};
  std::int64_t k = 0;
  for (const std::size_t len : lens) {
    const std::string v(len, static_cast<char>('a' + (k % 26)));
    EXPECT_TRUE(kv.put(k, v));
    const auto got = kv.get(k);
    ASSERT_TRUE(got.has_value()) << "len " << len;
    EXPECT_EQ(*got, v) << "len " << len;
    ++k;
  }
  EXPECT_EQ(kv.size(), std::size(lens));
}

TEST_F(KvStoreTest, OverwriteChangesValueLength) {
  KvStore kv(2, 64);
  kv.put(7, std::string(2000, 'x'));
  kv.put(7, "short");
  EXPECT_EQ(kv.get(7), "short");
  kv.put(7, std::string(3000, 'y'));
  EXPECT_EQ(kv.get(7)->size(), 3000u);
  EXPECT_EQ(kv.size(), 1u);
}

TEST_F(KvStoreTest, KeysSpreadAcrossAllShards) {
  KvStore kv(8, 64);
  for (std::int64_t k = 0; k < 4'000; ++k) {
    kv.put(k, "v");
  }
  EXPECT_EQ(kv.size(), 4'000u);
  for (std::size_t i = 0; i < kv.nshards(); ++i) {
    // Uniform routing: each shard holds 500 ± a wide tolerance.
    EXPECT_GT(kv.shard(i).size(), 300u) << "shard " << i;
    EXPECT_LT(kv.shard(i).size(), 700u) << "shard " << i;
  }
}

TEST_F(KvStoreTest, ShardRoutingIsStable) {
  KvStore a(8, 64);
  KvStore b(8, 64);
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(a.shard_index(k), b.shard_index(k));
  }
}

TEST_F(KvStoreTest, ReservedSentinelKeysAreRejected) {
  // INT64_MIN/MAX are the Harris lists' sentinel keys: put must refuse
  // them (a put would otherwise corrupt a bucket's tail sentinel), and
  // reads must treat them as absent rather than matching a sentinel.
  KvStore kv(2, 64);
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(kv.put(kMin, "x"), std::invalid_argument);
  EXPECT_THROW(kv.put(kMax, "x"), std::invalid_argument);
  EXPECT_EQ(kv.get(kMin), std::nullopt);
  EXPECT_EQ(kv.get(kMax), std::nullopt);
  EXPECT_FALSE(kv.contains(kMax));
  EXPECT_FALSE(kv.remove(kMax));
  // Neighbouring keys are ordinary.
  EXPECT_TRUE(kv.put(kMax - 1, "edge"));
  EXPECT_EQ(kv.get(kMax - 1), "edge");
}

TEST_F(KvStoreTest, FreshStoreHasGenerationOne) {
  KvStore kv(2, 64);
  EXPECT_EQ(kv.generation(), 1u);
  EXPECT_EQ(kv.nshards(), 2u);
  ASSERT_NE(kv.superblock(), nullptr);
  EXPECT_EQ(kv.superblock()->magic, KvStore::kMagic);
}

TEST_F(KvStoreTest, RecoverRejectsCorruptSuperblock) {
  KvStore kv(2, 64);
  auto* sb = kv.superblock();
  const auto saved = sb->magic;
  sb->magic = 0xBAD;
  EXPECT_THROW((void)KvStore::recover(sb), std::runtime_error);
  sb->magic = saved;
}

TEST_F(KvStoreTest, ShardMoveResetsTheSourceCounter) {
  // Regression: the move constructor used to copy approx_size_ and leave
  // the moved-from shard's counter populated — a husk summed by anything
  // still holding it would double-count every key.
  Shard<HashBackend<HashedWords, Automatic>> a(16);
  ASSERT_TRUE(a.put(1, "one"));
  ASSERT_TRUE(a.put(2, "two"));
  ASSERT_EQ(a.size(), 2u);
  Shard<HashBackend<HashedWords, Automatic>> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u) << "moved-from counter must be zeroed";
  EXPECT_EQ(b.get(1), "one");
  EXPECT_EQ(b.get(2), "two");
}

TEST_F(KvStoreTest, OverwriteChurnNeverHidesAKey) {
  // The tentpole's acceptance criterion on the hashed backend: under
  // 100% overwrite churn on a fixed key set, a concurrent get must
  // observe the old or the new complete value — never absence, never a
  // torn mix. (Before the in-place value CAS, put was remove + insert
  // and this test's absence counter fired readily.)
  KvStore kv(4, 64);
  constexpr std::int64_t kKeys = 64;
  for (std::int64_t k = 0; k < kKeys; ++k) kv.put(k, churn_value(k, 0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> absences{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&kv, &stop, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 3);
      std::uint64_t salt = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = static_cast<std::int64_t>(rng() % kKeys);
        EXPECT_FALSE(kv.put(k, churn_value(k, salt++)))
            << "an overwrite must never report a fresh insert";
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&kv, &absences, &torn, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 31 + 7);
      for (int i = 0; i < 30'000; ++i) {
        const auto k = static_cast<std::int64_t>(rng() % kKeys);
        const auto v = kv.get(k);
        if (!v) {
          absences.fetch_add(1);
        } else if (!churn_value_ok(k, *v)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(absences.load(), 0u)
      << "a key under pure overwrite churn transiently disappeared";
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(kv.size(), static_cast<std::size_t>(kKeys));
}

TEST_F(KvStoreTest, SizeIsExactUnderPureOverwriteChurn) {
  // Overwrites no longer touch the per-shard counters (no remove+insert
  // sub/add dance), so size() reads exactly N even mid-churn — not just
  // at quiescence.
  KvStore kv(4, 64);
  constexpr std::int64_t kKeys = 128;
  for (std::int64_t k = 0; k < kKeys; ++k) kv.put(k, "v0");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&kv, &stop, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 97 + 13);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto k = static_cast<std::int64_t>(rng() % kKeys);
        kv.put(k, churn_value(k, rng()));
      }
    });
  }
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(kv.size(), static_cast<std::size_t>(kKeys))
        << "size() dipped during an in-flight overwrite";
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(kv.size(), static_cast<std::size_t>(kKeys));
}

TEST_F(KvStoreTest, ConcurrentMixedOpsKeepValuesConsistent) {
  // Writers only ever store the deterministic pattern for a key; any read
  // must observe either absence or that exact pattern (never a torn or
  // cross-wired record).
  KvStore kv(4, 256);
  constexpr std::int64_t kRange = 512;
  constexpr int kThreads = 4;
  auto value_for = [](std::int64_t k) {
    return std::string(static_cast<std::size_t>(17 + 13 * (k % 97)),
                       static_cast<char>('A' + k % 23));
  };

  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < 20'000; ++i) {
        const auto k = static_cast<std::int64_t>(rng() % kRange);
        switch (rng() % 4) {
          case 0:
            kv.put(k, value_for(k));
            break;
          case 1:
            kv.remove(k);
            break;
          default: {
            const auto v = kv.get(k);
            if (v && *v != value_for(k)) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(bad.load(), 0u) << "reads must never observe torn values";

  // Post-quiescence: store agrees with a sequential sweep oracle.
  std::size_t present = 0;
  for (std::int64_t k = 0; k < kRange; ++k) {
    const auto v = kv.get(k);
    if (v) {
      EXPECT_EQ(*v, value_for(k)) << k;
      ++present;
    }
  }
  EXPECT_EQ(kv.size(), present);
}

}  // namespace
}  // namespace flit::kv
