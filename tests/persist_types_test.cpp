// Type-parameterized tests: persist<T> must behave like std::atomic<T>
// (plus persistence) for every word shape the data structures use —
// narrow integers, wide integers, pointers, and small aggregates.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/modes.hpp"
#include "core/persist.hpp"
#include "support/test_common.hpp"

namespace flit {
namespace {

using flit::test::PmemTest;

struct SmallPair {
  std::int32_t a;
  std::int32_t b;
  friend bool operator==(SmallPair x, SmallPair y) {
    return x.a == y.a && x.b == y.b;
  }
};

template <class T>
struct Sample;
template <>
struct Sample<std::uint8_t> {
  static std::uint8_t one() { return 7; }
  static std::uint8_t two() { return 201; }
};
template <>
struct Sample<std::int16_t> {
  static std::int16_t one() { return -1234; }
  static std::int16_t two() { return 31000; }
};
template <>
struct Sample<std::uint32_t> {
  static std::uint32_t one() { return 0xDEADBEEF; }
  static std::uint32_t two() { return 17; }
};
template <>
struct Sample<std::int64_t> {
  static std::int64_t one() { return -(std::int64_t{1} << 40); }
  static std::int64_t two() { return std::int64_t{1} << 50; }
};
template <>
struct Sample<int*> {
  static int* one() {
    static int x;
    return &x;
  }
  static int* two() {
    static int y;
    return &y;
  }
};
template <>
struct Sample<SmallPair> {
  static SmallPair one() { return {1, -2}; }
  static SmallPair two() { return {-3, 4}; }
};

template <class T>
class PersistTypeTest : public PmemTest {};

using WordTypes = ::testing::Types<std::uint8_t, std::int16_t, std::uint32_t,
                                   std::int64_t, int*, SmallPair>;
TYPED_TEST_SUITE(PersistTypeTest, WordTypes);

TYPED_TEST(PersistTypeTest, StoreLoadRoundTripAllPolicies) {
  const TypeParam a = Sample<TypeParam>::one();
  const TypeParam b = Sample<TypeParam>::two();
  {
    persist<TypeParam, HashedPolicy> x(a);
    EXPECT_EQ(x.load(kPersist), a);
    x.store(b, kPersist);
    EXPECT_EQ(x.load(kVolatile), b);
  }
  {
    persist<TypeParam, AdjacentPolicy> x(a);
    x.store(b, kPersist);
    EXPECT_EQ(x.load(kPersist), b);
    EXPECT_FALSE(x.tagged());
  }
  {
    persist<TypeParam, PlainPolicy> x(a);
    x.store(b, kVolatile);
    EXPECT_EQ(x.load(kPersist), b);
  }
  {
    persist<TypeParam, VolatilePolicy> x(a);
    x.store(b);
    EXPECT_EQ(x.load(), b);
  }
}

TYPED_TEST(PersistTypeTest, ExchangeAndPrivatePaths) {
  const TypeParam a = Sample<TypeParam>::one();
  const TypeParam b = Sample<TypeParam>::two();
  persist<TypeParam, HashedPolicy> x(a);
  EXPECT_EQ(x.exchange(b, kPersist), a);
  EXPECT_EQ(x.load_private(), b);
  x.store_private(a, kPersist);
  EXPECT_EQ(x.load_private(), a);
}

TYPED_TEST(PersistTypeTest, CrashDurabilityOfPStore) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  using P = persist<TypeParam, HashedPolicy>;
  auto* x = pmem::pnew<P>(Sample<TypeParam>::one());
  pmem::persist_range(x, sizeof(P));

  x->store(Sample<TypeParam>::two(), kPersist);
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(x->load_private(), Sample<TypeParam>::two());
}

TYPED_TEST(PersistTypeTest, VStoreIsLostOnCrash) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  using P = persist<TypeParam, HashedPolicy>;
  auto* x = pmem::pnew<P>(Sample<TypeParam>::one());
  pmem::persist_range(x, sizeof(P));

  x->store(Sample<TypeParam>::two(), kVolatile);
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(x->load_private(), Sample<TypeParam>::one());
}

// CAS compares object representations, so persist<>::cas is constrained to
// types without padding bits. Every word type the data structures use —
// including the padding-free SmallPair aggregate — satisfies it.
TYPED_TEST(PersistTypeTest, CasBehaviour) {
  static_assert(std::has_unique_object_representations_v<TypeParam>);
  const TypeParam a = Sample<TypeParam>::one();
  const TypeParam b = Sample<TypeParam>::two();
  persist<TypeParam, AdjacentPolicy> x(a);
  TypeParam expected = b;
  EXPECT_FALSE(x.cas(expected, b, kPersist));
  EXPECT_EQ(expected, a);
  EXPECT_TRUE(x.cas(expected, b, kPersist));
  EXPECT_EQ(x.load(), b);
}

// A padded aggregate still gets the load/store/exchange protocol, but the
// constraint removes cas/compare_and_set from the overload set: a CAS on a
// type with padding can fail spuriously on indeterminate padding bytes.
// (Concepts rather than bare requires-expressions so the probe runs in a
// substitution context instead of hard-erroring.)
struct Padded {
  std::int8_t a;
  std::int32_t b;  // 3 padding bytes between a and b
};

template <class P, class V>
concept HasCas = requires(P& x, V& e, V d) { x.cas(e, d); };
template <class P, class V>
concept HasCompareAndSet =
    requires(P& x, V e, V d) { x.compare_and_set(e, d); };
template <class P, class V>
concept HasStoreLoadExchange = requires(P& x, V v) {
  x.store(v);
  x.load();
  x.exchange(v);
};

TEST(PersistCasConstraintTest, PaddedAggregatesHaveNoCas) {
  static_assert(std::is_trivially_copyable_v<Padded>);
  static_assert(!std::has_unique_object_representations_v<Padded>);

  using P = persist<Padded, HashedPolicy>;
  static_assert(!HasCas<P, Padded>);
  static_assert(!HasCompareAndSet<P, Padded>);
  // The unconstrained flit-instructions remain available.
  static_assert(HasStoreLoadExchange<P, Padded>);
  // Padding-free word shapes keep the full instruction set.
  static_assert(HasCas<persist<SmallPair, HashedPolicy>, SmallPair>);
  static_assert(HasCas<persist<std::int64_t, AdjacentPolicy>, std::int64_t>);

  P x(Padded{1, 2});
  const Padded got = x.load(kVolatile);
  EXPECT_EQ(got.a, 1);
  EXPECT_EQ(got.b, 2);
}

// --- declaration-site defaults ----------------------------------------------

class FlushOptionDefaultTest : public PmemTest {};

TEST_F(FlushOptionDefaultTest, PersistedDefaultFlushesOnOperators) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, PlainPolicy, flush_option::persisted> x(0);
  const auto before = pmem::stats_snapshot();
  x = 5;            // operator= uses the default (persisted) flag
  const int v = x;  // operator T too
  (void)v;
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_GE(d.pwbs, 2u) << "p-store + plain p-load must both flush";
}

TEST_F(FlushOptionDefaultTest, VolatileDefaultSkipsFlushing) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, PlainPolicy, flush_option::volatile_> x(0);
  const auto before = pmem::stats_snapshot();
  x = 5;
  const int v = x;
  (void)v;
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u)
      << "the §4 manual-BST pattern: volatile default, explicit p-flags";
  // An explicit p-instruction still persists.
  x.store(6, kPersist);
  EXPECT_EQ((pmem::stats_snapshot() - before).pwbs, 1u);
}

TEST_F(FlushOptionDefaultTest, WordsConfigsExposeExpectedTraits) {
  EXPECT_TRUE(HashedWords::persistent);
  EXPECT_TRUE(AdjacentWords::persistent);
  EXPECT_TRUE(PlainWords::persistent);
  EXPECT_TRUE(LapWords::persistent);
  EXPECT_FALSE(VolatileWords::persistent);
  EXPECT_STREQ(HashedWords::name, "flit-HT");
  EXPECT_STREQ(LapWords::name, "link-and-persist");
}

TEST_F(FlushOptionDefaultTest, MethodTraitTable) {
  // Automatic: everything persisted (Theorem 3.1).
  EXPECT_TRUE(Automatic::traversal_load);
  EXPECT_TRUE(Automatic::critical_store);
  EXPECT_TRUE(Automatic::cleanup_store);
  // NVtraverse: volatile traversals, persisted transition + critical.
  EXPECT_FALSE(NVTraverse::traversal_load);
  EXPECT_TRUE(NVTraverse::transition_load);
  EXPECT_TRUE(NVTraverse::critical_store);
  EXPECT_TRUE(NVTraverse::cleanup_store);
  // Manual: additionally volatile cleanup.
  EXPECT_FALSE(Manual::traversal_load);
  EXPECT_TRUE(Manual::critical_store);
  EXPECT_FALSE(Manual::cleanup_store);
}

TEST_F(FlushOptionDefaultTest, PersistObjFlushesWholeObject) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  struct Big {
    std::byte bytes[200];
  };
  auto* b = static_cast<Big*>(pmem::Pool::instance().alloc(sizeof(Big)));
  for (auto& x : b->bytes) x = std::byte{0x5A};
  HashedWords::persist_obj(b);
  pmem::SimMemory::instance().crash();
  for (auto& x : b->bytes) ASSERT_EQ(x, std::byte{0x5A});
}

TEST_F(FlushOptionDefaultTest, VolatileWordsPersistObjIsFree) {
  const auto before = pmem::stats_snapshot();
  int dummy = 0;
  VolatileWords::persist_obj(&dummy);
  VolatileWords::operation_completion();
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
  EXPECT_EQ(d.pfences, 0u);
}

}  // namespace
}  // namespace flit
