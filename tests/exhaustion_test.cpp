// Out-of-space soak test (default build — real exhaustion, no failpoints):
// a small file-backed store is filled until the pool refuses, and the
// refusal must be *graceful*:
//
//   * the failing put throws kv::OutOfSpace and applies nothing;
//   * every previously acknowledged key stays readable, byte-exact;
//   * deletes still work at exhaustion, and the space they recycle is
//     reusable — the store is wedged for growth, not for service;
//   * closing and reopening the full store recovers everything.
//
// (The SIGKILL-at-exhaustion variant lives in flit_crashtest --inject,
// which can afford whole-process crashes.)
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unistd.h>
#include <utility>
#include <vector>

#include "pmem/file_region.hpp"
#include "recl/ebr.hpp"
#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using KvStore = Store<HashedWords, Automatic>;

/// Deterministic payload, sized to exhaust a 4 MiB region in a few
/// thousand puts without tripping any per-value limit.
std::string value_for(std::int64_t k) {
  const std::size_t len =
      512 + static_cast<std::size_t>(static_cast<std::uint64_t>(k) * 131 %
                                     1024);
  return std::string(len, static_cast<char>('a' + k % 26));
}

class ExhaustionTest : public PmemTest {
 protected:
  static std::string temp_path() {
    return "/tmp/flit_exhaustion_test_" + std::to_string(::getpid()) +
           ".pmem";
  }
};

TEST_F(ExhaustionTest, FillToOutOfSpaceThenServeAndRecycleAndReopen) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 4 << 20;

  std::map<std::int64_t, std::string> acked;
  {
    KvStore kv = KvStore::open(path, kCapacity, 2, 128);
    // Fill until the pool says no. Every put either fully applies (and
    // is recorded as acked) or throws OutOfSpace and applies nothing.
    std::int64_t k = 0;
    bool full = false;
    for (; k < 100000; ++k) {
      std::string v = value_for(k);
      try {
        kv.put(k, v);
      } catch (const OutOfSpace&) {
        full = true;
        break;
      }
      acked.emplace(k, std::move(v));
    }
    ASSERT_TRUE(full) << "4 MiB should not hold 100k ~1 KiB records";
    ASSERT_GT(acked.size(), 100u);

    // The failing key was not applied — not even partially.
    EXPECT_EQ(kv.get(k), std::nullopt);
    EXPECT_EQ(kv.size(), acked.size());

    // Exhaustion is stable and clean: more big puts keep failing the
    // same way, and reads answer correctly throughout.
    EXPECT_THROW(kv.put(k, value_for(k)), OutOfSpace);
    for (const auto& [key, val] : acked) {
      const auto got = kv.get(key);
      ASSERT_TRUE(got.has_value()) << key;
      ASSERT_EQ(*got, val) << key;
    }

    // Deletes still work at exhaustion, and freed blocks are reusable:
    // remove a record, drain the EBR limbo (retired storage only returns
    // to the pool after a grace period), then a same-shaped put succeeds.
    const std::int64_t victim = acked.begin()->first;
    EXPECT_TRUE(kv.remove(victim));
    acked.erase(victim);
    recl::Ebr::instance().drain_all();
    std::string replacement = value_for(victim);
    kv.put(victim, replacement);  // recycled storage
    acked.emplace(victim, std::move(replacement));

    kv.close();
  }

  // Reopen the (nearly) full store: everything acked is still there and
  // the store is healthy.
  {
    KvStore kv = KvStore::open(path, kCapacity, 2, 128);
    EXPECT_EQ(kv.health(), Health::kOk);
    EXPECT_EQ(kv.size(), acked.size());
    for (const auto& [key, val] : acked) {
      const auto got = kv.get(key);
      ASSERT_TRUE(got.has_value()) << key;
      ASSERT_EQ(*got, val) << key;
    }
    // Still serviceable: deletes free space for new writes even when
    // reopened at the brim.
    const std::int64_t victim = acked.begin()->first;
    EXPECT_TRUE(kv.remove(victim));
    recl::Ebr::instance().drain_all();
    kv.put(victim, value_for(victim));
    kv.close();
  }
  pmem::FileRegion::destroy(path);
}

TEST_F(ExhaustionTest, MultiPutAtExhaustionKeepsPrefixSemantics) {
  const std::string path = temp_path() + ".batch";
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 2 << 20;
  KvStore kv = KvStore::open(path, kCapacity, 1, 128);

  // Leave little headroom, then throw a batch at the wall.
  std::int64_t k = 0;
  try {
    for (; k < 100000; ++k) kv.put(k, value_for(k));
  } catch (const OutOfSpace&) {
  }
  ASSERT_LT(k, 100000) << "the fill loop should have hit the wall";
  const std::size_t before = kv.size();

  std::vector<std::string> values;
  std::vector<std::pair<std::int64_t, std::string_view>> batch;
  for (std::int64_t i = 0; i < 64; ++i) {
    values.push_back(value_for(200000 + i));
  }
  for (std::int64_t i = 0; i < 64; ++i) {
    batch.emplace_back(200000 + i, values[static_cast<std::size_t>(i)]);
  }
  EXPECT_THROW(kv.multi_put(batch), OutOfSpace);

  // Whatever prefix landed is complete and byte-exact; the rest is
  // wholly absent (never torn) and the store still answers.
  bool in_prefix = true;
  std::size_t applied = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    const auto got = kv.get(200000 + i);
    if (got.has_value()) {
      EXPECT_TRUE(in_prefix) << "hole before applied element " << i;
      EXPECT_EQ(*got, values[static_cast<std::size_t>(i)]);
      ++applied;
    } else {
      in_prefix = false;
    }
  }
  EXPECT_EQ(kv.size(), before + applied);
  EXPECT_EQ(kv.get(0), value_for(0));
  kv.close();
  pmem::FileRegion::destroy(path);
}

}  // namespace
}  // namespace flit::kv
