// Unit + property tests for persist<T> — the FliT flit-instructions
// (Algorithm 4) across every counter-placement policy.
#include "core/persist.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/modes.hpp"
#include "support/test_common.hpp"

namespace flit {
namespace {

using flit::test::PmemTest;

template <class Policy>
class PersistTypedTest : public PmemTest {};

using AllPolicies =
    ::testing::Types<AdjacentPolicy, HashedPolicy, PerLinePolicy, PlainPolicy,
                     VolatilePolicy>;
TYPED_TEST_SUITE(PersistTypedTest, AllPolicies);

TYPED_TEST(PersistTypedTest, LoadReturnsMostRecentStore) {
  persist<int, TypeParam> x(5);
  EXPECT_EQ(x.load(), 5);
  x.store(7, kPersist);
  EXPECT_EQ(x.load(kPersist), 7);
  x.store(9, kVolatile);
  EXPECT_EQ(x.load(kVolatile), 9);
}

TYPED_TEST(PersistTypedTest, CasSemanticsMatchStdAtomic) {
  persist<int, TypeParam> x(1);
  int expected = 1;
  EXPECT_TRUE(x.cas(expected, 2, kPersist));
  EXPECT_EQ(x.load(), 2);
  expected = 1;  // stale
  EXPECT_FALSE(x.cas(expected, 3, kPersist));
  EXPECT_EQ(expected, 2) << "failed CAS reports the witness value";
  EXPECT_EQ(x.load(), 2);
  EXPECT_TRUE(x.compare_and_set(2, 4, kVolatile));
  EXPECT_EQ(x.load(), 4);
}

TYPED_TEST(PersistTypedTest, ExchangeReturnsOldValue) {
  persist<int, TypeParam> x(10);
  EXPECT_EQ(x.exchange(20, kPersist), 10);
  EXPECT_EQ(x.exchange(30, kVolatile), 20);
  EXPECT_EQ(x.load(), 30);
}

TYPED_TEST(PersistTypedTest, FaaReturnsOldAndAccumulates) {
  persist<std::int64_t, TypeParam> x(0);
  EXPECT_EQ(x.faa(5, kPersist), 0);
  EXPECT_EQ(x.faa(-2, kPersist), 5);
  EXPECT_EQ(x.faa(1, kVolatile), 3);
  EXPECT_EQ(x.load(), 4);
}

TYPED_TEST(PersistTypedTest, OperatorSugarUsesDefaultFlag) {
  persist<int, TypeParam> x(0);
  x = 42;
  const int v = x;
  EXPECT_EQ(v, 42);

  struct Obj {
    int field;
  };
  Obj o{17};
  persist<Obj*, TypeParam> p(&o);
  EXPECT_EQ(p->field, 17);
}

TYPED_TEST(PersistTypedTest, PrivateAccessRoundTrip) {
  persist<int, TypeParam> x(0);
  x.store_private(99, kPersist);
  EXPECT_EQ(x.load_private(), 99);
  x.store_private(100, kVolatile);
  EXPECT_EQ(x.load_private(), 100);
}

TYPED_TEST(PersistTypedTest, UntaggedAfterStoreCompletes) {
  persist<int, TypeParam> x(0);
  x.store(1, kPersist);
  // Lemma 5.1: counter balance is zero after every p-store terminates.
  EXPECT_FALSE(x.tagged());
}

TYPED_TEST(PersistTypedTest, ConcurrentFaaIsLinearizable) {
  persist<std::int64_t, TypeParam> x(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&x] {
      for (int i = 0; i < kIters; ++i) x.faa(1, kPersist);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(x.load(), kThreads * kIters);
  EXPECT_FALSE(x.tagged());
}

TYPED_TEST(PersistTypedTest, ConcurrentCasElectsOneWinnerPerRound) {
  persist<int, TypeParam> x(0);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&x, &winners] {
      int expected = 0;
      if (x.cas(expected, 1, kPersist)) winners.fetch_add(1);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(x.load(), 1);
}

// --- pwb-count behaviour (the point of the FliT algorithm) -----------------

class PersistCountsTest : public PmemTest {};

TEST_F(PersistCountsTest, PLoadOnUntaggedLocationSkipsPwb) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, HashedPolicy> x(3);
  const auto before = pmem::stats_snapshot();
  for (int i = 0; i < 100; ++i) (void)x.load(kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u) << "flush-if-tagged: clean reads must not flush";
}

TEST_F(PersistCountsTest, PlainPLoadAlwaysFlushes) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, PlainPolicy> x(3);
  const auto before = pmem::stats_snapshot();
  for (int i = 0; i < 100; ++i) (void)x.load(kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 100u) << "the plain baseline flushes on every p-load";
}

TEST_F(PersistCountsTest, VLoadNeverFlushesEvenWhenTagged) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, HashedPolicy> x(3);
  HashedPolicy::tag(x.raw_address());
  const auto before = pmem::stats_snapshot();
  (void)x.load(kVolatile);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
  HashedPolicy::untag(x.raw_address());
}

TEST_F(PersistCountsTest, PLoadOnTaggedLocationFlushes) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, HashedPolicy> x(3);
  HashedPolicy::tag(x.raw_address());
  const auto before = pmem::stats_snapshot();
  (void)x.load(kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 1u);
  HashedPolicy::untag(x.raw_address());
}

TEST_F(PersistCountsTest, PStoreIssuesOnePwbAndTwoPfences) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, HashedPolicy> x(0);
  const auto before = pmem::stats_snapshot();
  x.store(1, kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 1u);
  EXPECT_EQ(d.pfences, 2u) << "Algorithm 4: fence before store + before untag";
}

TEST_F(PersistCountsTest, VStoreIssuesOnlyTheLeadingFence) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, HashedPolicy> x(0);
  const auto before = pmem::stats_snapshot();
  x.store(1, kVolatile);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
  EXPECT_EQ(d.pfences, 1u) << "Condition 4 still fences before shared stores";
}

TEST_F(PersistCountsTest, VolatilePolicyIssuesNothing) {
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, VolatilePolicy> x(0);
  const auto before = pmem::stats_snapshot();
  x.store(1, kPersist);
  (void)x.load(kPersist);
  x.faa(1, kPersist);
  (void)x.exchange(9, kPersist);
  persist<int, VolatilePolicy>::operation_completion();
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 0u);
  EXPECT_EQ(d.pfences, 0u);
}

TEST_F(PersistCountsTest, ReaderFlushesWhileStoreIsPending) {
  // Simulate the §5 race: a reader observes the new value between the
  // writer's store and its untag, and must flush it.
  pmem::BackendScope scope(pmem::Backend::kNoOp);
  persist<int, HashedPolicy> x(0);
  HashedPolicy::tag(x.raw_address());  // writer's increment happened
  const auto before = pmem::stats_snapshot();
  (void)x.load(kPersist);
  (void)x.load(kPersist);
  const auto d = pmem::stats_snapshot() - before;
  EXPECT_EQ(d.pwbs, 2u) << "every p-load during the window must flush";
  HashedPolicy::untag(x.raw_address());
}

// --- layout ---------------------------------------------------------------

TEST(PersistLayout, AdjacentDoublesTheWord) {
  EXPECT_EQ(sizeof(persist<std::int64_t, HashedPolicy>), 8u);
  EXPECT_EQ(sizeof(persist<std::int64_t, AdjacentPolicy>), 16u)
      << "adjacent placement pads value+counter to a double word (§5.1)";
  EXPECT_EQ(sizeof(persist<void*, VolatilePolicy>), 8u);
}

// --- crash semantics through the full stack ---------------------------------

class PersistCrashTest : public PmemTest {};

TEST_F(PersistCrashTest, PStoreSurvivesCrashVStoreMayNot) {
  using P = persist<std::uint64_t, HashedPolicy>;
  pmem::Pool::instance().register_with_sim();
  auto* px = pmem::pnew<P>(std::uint64_t{0});
  auto* py = pmem::pnew<P>(std::uint64_t{0});
  pmem::SimMemory::instance().persist_all();

  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  px->store(11, kPersist);
  py->store(22, kVolatile);
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(px->load_private(), 11u) << "p-store must be durable";
  // The v-store went to the same pool but was never flushed. Its line may
  // coincidentally persist if it shares a line with a flushed word, so we
  // only check it did not corrupt px.
}

TEST_F(PersistCrashTest, AllRmwFormsAreDurable) {
  using P = persist<std::int64_t, AdjacentPolicy>;
  pmem::Pool::instance().register_with_sim();
  auto* a = pmem::pnew<P>(std::int64_t{0});
  auto* b = pmem::pnew<P>(std::int64_t{5});
  auto* c = pmem::pnew<P>(std::int64_t{1});
  pmem::SimMemory::instance().persist_all();

  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  a->faa(4, kPersist);
  (void)b->exchange(50, kPersist);
  std::int64_t expected = 1;
  ASSERT_TRUE(c->cas(expected, 9, kPersist));
  pmem::SimMemory::instance().crash();
  EXPECT_EQ(a->load_private(), 4);
  EXPECT_EQ(b->load_private(), 50);
  EXPECT_EQ(c->load_private(), 9);
}

}  // namespace
}  // namespace flit
