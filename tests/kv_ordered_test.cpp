// Tests for the ordered (skiplist-backed, range-partitioned) KV store:
// scan semantics across shard boundaries, scans under concurrent
// insert/remove, O(1) size counters, simulated-crash recovery of ordered
// shards (every committed key observed in scan order), file restart, and
// cross-layout-tag rejection (ordered file opened as hashed and vice
// versa).
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "pmem/file_region.hpp"
#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using K = std::int64_t;
using Ordered = OrderedStore<HashedWords, Automatic>;

std::string value_for(K k, std::uint64_t salt = 0) {
  const std::size_t len =
      1 + static_cast<std::size_t>((static_cast<std::uint64_t>(k) * 131 +
                                    salt * 257) %
                                   512);
  return std::string(len, static_cast<char>('a' + (k + salt) % 26));
}

class KvOrderedTest : public PmemTest {};

TEST_F(KvOrderedTest, PutGetRemoveRoundTrip) {
  Ordered kv(4, 64, KeyRange{0, 1'000});
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_TRUE(kv.put(1, "one"));
  EXPECT_EQ(kv.get(1), "one");
  EXPECT_FALSE(kv.put(1, "uno"));  // overwrite
  EXPECT_EQ(kv.get(1), "uno");
  EXPECT_TRUE(kv.remove(1));
  EXPECT_EQ(kv.get(1), std::nullopt);
  EXPECT_FALSE(kv.remove(1));
}

TEST_F(KvOrderedTest, RangePartitionIsMonotoneAndStable) {
  Ordered a(4, 64, KeyRange{0, 1'000});
  Ordered b(4, 64, KeyRange{0, 1'000});
  std::size_t prev = 0;
  for (K k = -50; k < 1'100; ++k) {
    const std::size_t i = a.shard_index(k);
    EXPECT_EQ(i, b.shard_index(k)) << k;   // stable across instances
    EXPECT_GE(i, prev) << k;               // monotone in the key
    EXPECT_LT(i, a.nshards()) << k;
    prev = i;
  }
  // Every shard owns a piece of the range.
  EXPECT_EQ(a.shard_index(0), 0u);
  EXPECT_EQ(a.shard_index(999), a.nshards() - 1u);
}

TEST_F(KvOrderedTest, ScanMergesAcrossShardBoundariesInOrder) {
  Ordered kv(4, 64, KeyRange{0, 1'000});
  for (K k = 0; k < 1'000; k += 2) {  // even keys only
    kv.put(k, value_for(k));
  }
  // A scan crossing all four shard ranges: every even key in [100, 100 +
  // 2*300), in ascending order.
  const auto out = kv.scan(100, 300);
  ASSERT_EQ(out.size(), 300u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 100 + static_cast<K>(2 * i));
    EXPECT_EQ(out[i].second, value_for(out[i].first));
  }
  // Start between keys: rounds up to the next present key.
  const auto odd_start = kv.scan(101, 3);
  ASSERT_EQ(odd_start.size(), 3u);
  EXPECT_EQ(odd_start[0].first, 102);
  // Truncated at the top of the keyspace.
  EXPECT_EQ(kv.scan(996, 100).size(), 2u);
  EXPECT_EQ(kv.scan(2'000, 10).size(), 0u);
  EXPECT_EQ(kv.scan(0, 0).size(), 0u);
}

TEST_F(KvOrderedTest, ScanSkipsRemovedAndSeesOverwrites) {
  Ordered kv(2, 64, KeyRange{0, 100});
  for (K k = 0; k < 100; ++k) kv.put(k, value_for(k));
  for (K k = 0; k < 100; k += 3) kv.remove(k);
  kv.put(50, "fresh");  // 50 % 3 != 0: overwrite of a live key
  const auto out = kv.scan(0, 200);
  K prev = std::numeric_limits<K>::min();
  for (const auto& [k, v] : out) {
    EXPECT_GT(k, prev);
    EXPECT_NE(k % 3, 0) << "removed key " << k << " must not appear";
    EXPECT_EQ(v, k == 50 ? "fresh" : value_for(k)) << k;
    prev = k;
  }
  EXPECT_EQ(out.size(), 100u - 34u);  // 34 multiples of 3 in [0, 100)
}

TEST_F(KvOrderedTest, OutOfRangeKeysClampButStaySorted) {
  // Keys outside the declared range route to the edge shards; scans must
  // still be globally sorted and complete.
  Ordered kv(4, 64, KeyRange{0, 100});
  const K keys[] = {-500, -1, 0, 50, 99, 100, 700};
  for (const K k : keys) kv.put(k, value_for(k));
  const auto out = kv.scan(std::numeric_limits<K>::min(), 100);
  ASSERT_EQ(out.size(), std::size(keys));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, keys[i]);
  }
}

TEST_F(KvOrderedTest, SizeCountersAreExactAtQuiescence) {
  Ordered kv(4, 64, KeyRange{0, 512});
  EXPECT_EQ(kv.size(), 0u);
  for (K k = 0; k < 300; ++k) kv.put(k, "v");
  EXPECT_EQ(kv.size(), 300u);
  for (K k = 0; k < 300; ++k) kv.put(k, "w");  // overwrites: net zero
  EXPECT_EQ(kv.size(), 300u);
  for (K k = 0; k < 300; k += 2) kv.remove(k);
  EXPECT_EQ(kv.size(), 150u);
  // Per-shard counters sum to the total.
  std::size_t per_shard = 0;
  for (std::size_t i = 0; i < kv.nshards(); ++i) {
    per_shard += kv.shard(i).size();
  }
  EXPECT_EQ(per_shard, 150u);
}

TEST_F(KvOrderedTest, EmptyKeyRangeIsRejected) {
  EXPECT_THROW(Ordered(2, 64, KeyRange{10, 10}), std::invalid_argument);
  EXPECT_THROW(Ordered(2, 64, KeyRange{10, 5}), std::invalid_argument);
}

TEST_F(KvOrderedTest, ScansUnderConcurrentInsertRemoveStayConsistent) {
  // Anchor keys (multiples of 4) are inserted up front and never touched;
  // churn keys are concurrently inserted/removed/overwritten. Every scan
  // must return strictly ascending keys, the exact committed payload for
  // whatever it returns, and — because anchors are stable for the whole
  // run — every anchor inside the scanned window.
  constexpr K kRange = 1'024;
  Ordered kv(4, 64, KeyRange{0, kRange});
  for (K k = 0; k < kRange; k += 4) kv.put(k, value_for(k));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&kv, &stop, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 5);
      while (!stop.load(std::memory_order_relaxed)) {
        K k = static_cast<K>(rng() % kRange);
        if (k % 4 == 0) ++k;  // never touch an anchor
        if (rng() % 2 == 0) {
          kv.put(k, value_for(k));
        } else {
          kv.remove(k);
        }
      }
    });
  }

  std::vector<std::thread> scanners;
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&kv, &violations, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 31 + 17);
      std::vector<std::pair<K, std::string>> buf;
      for (int i = 0; i < 400; ++i) {
        const K start = static_cast<K>(rng() % kRange);
        const std::size_t want = 1 + rng() % 64;
        kv.scan(start, want, buf);
        K prev = std::numeric_limits<K>::min();
        for (const auto& [k, v] : buf) {
          if (k < start || k <= prev) ++violations;
          if (v != value_for(k)) ++violations;
          prev = k;
        }
        if (buf.size() > want) ++violations;
        // Stable anchors inside [start, last-returned] must all appear
        // (only checkable when the scan wasn't truncated by `want`).
        if (buf.size() < want) {
          std::size_t anchors_seen = 0;
          for (const auto& [k, v] : buf) anchors_seen += k % 4 == 0;
          const K first_anchor = (start + 3) / 4 * 4;
          const std::size_t anchors_expected =
              first_anchor < kRange
                  ? static_cast<std::size_t>((kRange - first_anchor + 3) / 4)
                  : 0;
          if (anchors_seen != anchors_expected) ++violations;
        }
      }
    });
  }
  for (auto& th : scanners) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST_F(KvOrderedTest, OverwriteChurnNeverHidesKeysFromGetsOrScans) {
  // The tentpole's acceptance criterion on the ordered backend: under
  // 100% overwrite churn on a fixed key set, a concurrent get never
  // returns absent and a full scan never drops a key. Every key is
  // written only as value_for(k, salt) for some salt, so any returned
  // payload must be consistent with its key. Run under ASan and the tsan
  // preset (label kv) — the value-claim protocol's races live here.
  constexpr K kKeys = 256;
  Ordered kv(4, 64, KeyRange{0, kKeys});
  for (K k = 0; k < kKeys; ++k) kv.put(k, value_for(k, 0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&kv, &stop, &violations, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 3);
      std::uint64_t salt = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = static_cast<K>(rng() % kKeys);
        if (kv.put(k, value_for(k, salt++))) {
          ++violations;  // an overwrite must never be a fresh insert
        }
      }
    });
  }

  // A reader cannot know which salt it will catch, but every committed
  // value_for(k, s) is a uniform fill of 1..512 bytes — a torn mix of
  // two generations (different fill chars or a stale length) fails this.
  const auto plausible = [](const std::string& v) {
    return !v.empty() && v.size() <= 512 &&
           v.find_first_not_of(v[0]) == std::string::npos;
  };
  std::vector<std::thread> getters;
  for (int t = 0; t < 2; ++t) {
    getters.emplace_back([&kv, &violations, &plausible, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 31 + 17);
      for (int i = 0; i < 20'000; ++i) {
        const K k = static_cast<K>(rng() % kKeys);
        const auto v = kv.get(k);
        if (!v) {
          ++violations;  // the key transiently disappeared
        } else if (!plausible(*v)) {
          ++violations;
        }
      }
    });
  }

  std::thread scanner([&kv, &violations, &plausible] {
    std::vector<std::pair<K, std::string>> buf;
    for (int i = 0; i < 300; ++i) {
      kv.scan(0, static_cast<std::size_t>(kKeys) + 8, buf);
      if (buf.size() != static_cast<std::size_t>(kKeys)) {
        ++violations;  // a scan dropped (or invented) a key mid-overwrite
        continue;
      }
      for (std::size_t j = 0; j < buf.size(); ++j) {
        if (buf[j].first != static_cast<K>(j)) ++violations;
        if (!plausible(buf[j].second)) ++violations;
      }
    }
  });

  std::thread size_checker([&kv, &violations] {
    for (int i = 0; i < 2'000; ++i) {
      if (kv.size() != static_cast<std::size_t>(kKeys)) {
        ++violations;  // overwrites must not move the counters
      }
    }
  });

  for (auto& th : getters) th.join();
  scanner.join();
  size_checker.join();
  stop.store(true);
  for (auto& th : writers) th.join();
  EXPECT_EQ(violations.load(), 0u);

  // Quiescent: every key holds some committed generation, intact.
  for (K k = 0; k < kKeys; ++k) {
    const auto v = kv.get(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_TRUE(plausible(*v)) << "torn value at key " << k;
  }
}

TEST_F(KvOrderedTest, MultiOpsMatchScalarOnTheOrderedStore) {
  // The batched path routes through the range partition: a cross-shard
  // batch must behave exactly like the scalar loop, and a scan after a
  // multi_put must see every element in order.
  Ordered kv(4, 64, KeyRange{0, 1'000});
  std::vector<std::pair<K, std::string_view>> kvs;
  std::vector<std::string> store;
  for (K k = 0; k < 1'000; k += 37) {
    store.push_back("v" + std::to_string(k));
  }
  std::size_t i = 0;
  for (K k = 0; k < 1'000; k += 37) kvs.emplace_back(k, store[i++]);
  const auto fresh = kv.multi_put(kvs);
  for (const bool f : fresh) EXPECT_TRUE(f);
  EXPECT_EQ(kv.size(), kvs.size());

  // multi_get across every shard, with misses interleaved.
  std::vector<K> keys;
  for (K k = 0; k < 1'000; k += 19) keys.push_back(k);
  const auto got = kv.multi_get(keys);
  for (std::size_t j = 0; j < keys.size(); ++j) {
    EXPECT_EQ(got[j], kv.get(keys[j])) << "key " << keys[j];
  }

  // A scan sees the batch's elements in ascending order.
  const auto scanned = kv.scan(0, kvs.size() + 10);
  ASSERT_EQ(scanned.size(), kvs.size());
  for (std::size_t j = 0; j < scanned.size(); ++j) {
    EXPECT_EQ(scanned[j].first, kvs[j].first);
    EXPECT_EQ(scanned[j].second, kvs[j].second);
  }

  // Batched overwrite of every other key; scans observe the new values.
  std::vector<std::pair<K, std::string_view>> over;
  for (std::size_t j = 0; j < kvs.size(); j += 2) {
    over.emplace_back(kvs[j].first, "new");
  }
  const auto fresh2 = kv.multi_put(over);
  for (const bool f : fresh2) EXPECT_FALSE(f) << "overwrites, not inserts";
  const auto rescanned = kv.scan(0, kvs.size() + 10);
  ASSERT_EQ(rescanned.size(), kvs.size());
  for (std::size_t j = 0; j < rescanned.size(); ++j) {
    EXPECT_EQ(rescanned[j].second, j % 2 == 0 ? "new" : store[j]) << j;
  }

  // multi_remove across shards, scan shrinks accordingly.
  std::vector<K> dead;
  for (std::size_t j = 1; j < kvs.size(); j += 2) dead.push_back(kvs[j].first);
  for (const bool r : kv.multi_remove(dead)) EXPECT_TRUE(r);
  EXPECT_EQ(kv.scan(0, 1'000).size(), kvs.size() - dead.size());
}

TEST_F(KvOrderedTest, ReservedSentinelKeysAuditOnTheOrderedStore) {
  // scan()'s contract at the reserved sentinel keys (audited per the
  // issue): INT64_MIN is a safe "from the beginning" start that returns
  // every key (the structures' head sentinels are never emitted), and
  // INT64_MAX returns nothing (it is not storable, and the tail
  // sentinels are never emitted either). Point ops on the sentinels are
  // rejected/absent exactly like the hashed store.
  constexpr K kMin = std::numeric_limits<K>::min();
  constexpr K kMax = std::numeric_limits<K>::max();
  Ordered kv(4, 64, KeyRange{-100, 100});
  const K keys[] = {-90, -1, 0, 7, 99};
  for (const K k : keys) kv.put(k, value_for(k));

  EXPECT_THROW(kv.put(kMin, "x"), std::invalid_argument);
  EXPECT_THROW(kv.put(kMax, "x"), std::invalid_argument);
  EXPECT_EQ(kv.get(kMin), std::nullopt);
  EXPECT_EQ(kv.get(kMax), std::nullopt);
  EXPECT_FALSE(kv.contains(kMin));
  EXPECT_FALSE(kv.remove(kMax));

  const auto all = kv.scan(kMin, 100);
  ASSERT_EQ(all.size(), std::size(keys));
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first, keys[i]);
    EXPECT_EQ(all[i].second, value_for(keys[i]));
  }
  EXPECT_TRUE(kv.scan(kMax, 100).empty())
      << "INT64_MAX is reserved: no stored key can be >= it";
  EXPECT_TRUE(kv.scan(kMax, 0).empty());
  // A scan starting one past the largest real key is empty too.
  EXPECT_TRUE(kv.scan(100, 10).empty());
}

// --- simulated power failure -----------------------------------------------

template <class StoreT>
class KvOrderedCrashTest : public PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    recl::Ebr::instance().set_reclaim(false);  // no reuse across a crash
    pmem::Pool::instance().register_with_sim();
    pmem::set_backend(pmem::Backend::kSimCrash);
  }
  void TearDown() override {
    recl::Ebr::instance().set_reclaim(true);
    PmemTest::TearDown();
  }
};

using OrderedCrashConfigs = ::testing::Types<
    OrderedStore<HashedWords, Automatic>,
    OrderedStore<HashedWords, NVTraverse>, OrderedStore<HashedWords, Manual>,
    OrderedStore<AdjacentWords, Automatic>>;

TYPED_TEST_SUITE(KvOrderedCrashTest, OrderedCrashConfigs);

TYPED_TEST(KvOrderedCrashTest, ScanAfterCrashSeesEveryCommittedKeyInOrder) {
  constexpr K kRange = 192;
  TypeParam kv(4, 64, KeyRange{0, kRange});
  auto* sb = kv.superblock();

  std::mt19937_64 rng(42);
  std::map<K, std::string> oracle;
  for (std::uint64_t i = 0; i < 800; ++i) {
    const K k = static_cast<K>(rng() % kRange);
    if (rng() % 3 != 0) {
      std::string v = value_for(k, i);
      kv.put(k, v);
      oracle[k] = std::move(v);
    } else {
      kv.remove(k);
      oracle.erase(k);
    }
  }

  pmem::SimMemory::instance().crash();
  TypeParam recovered = TypeParam::recover(sb);
  EXPECT_EQ(recovered.generation(), 2u) << "recovery bumps the stamp";

  // Point reads agree with the oracle.
  for (K k = 0; k < kRange; ++k) {
    const auto got = recovered.get(k);
    const auto it = oracle.find(k);
    if (it == oracle.end()) {
      EXPECT_EQ(got, std::nullopt) << "key " << k << " was removed";
    } else {
      ASSERT_TRUE(got.has_value()) << "committed put of key " << k
                                   << " lost in the crash";
      EXPECT_EQ(*got, it->second) << "key " << k;
    }
  }
  // A full scan observes exactly the committed keys, ascending, with the
  // committed payloads — the acceptance criterion of the ordered store.
  const auto out = recovered.scan(0, static_cast<std::size_t>(kRange) + 1);
  ASSERT_EQ(out.size(), oracle.size());
  auto it = oracle.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second) << "key " << k;
    ++it;
  }
  EXPECT_EQ(recovered.size(), oracle.size()) << "recovery rebuilds counters";
}

TYPED_TEST(KvOrderedCrashTest, ConcurrentOpsThenCrashThenScan) {
  constexpr K kRange = 128;
  constexpr int kThreads = 4;
  TypeParam kv(4, 64, KeyRange{0, kRange});
  auto* sb = kv.superblock();

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&kv, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 101 + 11);
      for (std::uint64_t i = 0; i < 800; ++i) {
        const K k = static_cast<K>(rng() % kRange);
        switch (rng() % 3) {
          case 0:
            kv.put(k, value_for(k, i));
            break;
          case 1:
            kv.remove(k);
            break;
          default:
            (void)kv.get(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();  // quiesce: all operations completed

  std::map<K, std::string> before;
  for (K k = 0; k < kRange; ++k) {
    if (auto v = kv.get(k)) before[k] = *v;
  }
  pmem::SimMemory::instance().crash();
  TypeParam recovered = TypeParam::recover(sb);
  const auto out = recovered.scan(0, static_cast<std::size_t>(kRange) + 1);
  ASSERT_EQ(out.size(), before.size());
  auto it = before.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second) << k;
    ++it;
  }
}

// --- real restart + cross-layout rejection ----------------------------------

class KvOrderedFileTest : public PmemTest {
 protected:
  static std::string temp_path() {
    return "/tmp/flit_kv_ordered_test_" + std::to_string(::getpid()) +
           ".pmem";
  }
};

TEST_F(KvOrderedFileTest, ReopenRecoversScansAndPartitionBounds) {
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 32 << 20;
  constexpr K kRange = 600;
  std::map<K, std::string> oracle;

  {
    Ordered kv = Ordered::open(path, kCapacity, 4, 64, KeyRange{0, kRange});
    EXPECT_EQ(kv.generation(), 1u);
    for (K k = 0; k < kRange; k += 2) {
      std::string v = value_for(k, 1);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    for (K k = 0; k < kRange; k += 6) {
      kv.remove(k);
      oracle.erase(k);
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  {
    // The file's shard count and partition bounds win over the arguments.
    Ordered kv = Ordered::open(path, kCapacity, 9, 32, KeyRange{0, 7});
    EXPECT_EQ(kv.generation(), 2u);
    EXPECT_EQ(kv.nshards(), 4u);
    EXPECT_EQ(kv.key_range().lo, 0);
    EXPECT_EQ(kv.key_range().hi, kRange);
    EXPECT_EQ(kv.size(), oracle.size()) << "counters rebuilt on recovery";
    const auto out = kv.scan(0, static_cast<std::size_t>(kRange));
    ASSERT_EQ(out.size(), oracle.size());
    auto it = oracle.begin();
    for (const auto& [k, v] : out) {
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second) << k;
      ++it;
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvOrderedFileTest, CrossLayoutOpenIsRejectedBothWays) {
  // The superblock layout tag must reject a hashed open of an ordered
  // file (and the reverse) with IncompatibleStore — not misread skiplist
  // towers as bucket sentinel arrays or vice versa.
  using Hashed = Store<HashedWords, Automatic>;
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 8 << 20;

  {
    Ordered kv = Ordered::open(path, kCapacity, 2, 32, KeyRange{0, 100});
    kv.put(1, "layout canary");
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  EXPECT_THROW((void)Hashed::open(path, kCapacity, 2, 32),
               IncompatibleStore);
  // The rejecting open must leave the global Pool untouched (validation
  // precedes adoption): allocation still lands in the test pool.
  void* p = pmem::Pool::instance().alloc(64);
  EXPECT_TRUE(pmem::Pool::instance().contains(p));

  // The matching layout still opens (the failed open consumed nothing).
  {
    Ordered kv = Ordered::open(path, kCapacity, 2, 32, KeyRange{0, 100});
    EXPECT_EQ(kv.generation(), 2u);
    EXPECT_EQ(kv.get(1), "layout canary");
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  // And the reverse direction: a hashed file refused by the ordered store.
  pmem::FileRegion::destroy(path);
  {
    Hashed kv = Hashed::open(path, kCapacity, 2, 32);
    kv.put(1, "x");
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  EXPECT_THROW((void)Ordered::open(path, kCapacity, 2, 32, KeyRange{0, 100}),
               IncompatibleStore);
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

TEST_F(KvOrderedFileTest, DirtyShutdownSweepCoversSkiplistTowers) {
  // Same dirty-shutdown protocol as the hashed store (bump mark rewound,
  // clean flag cleared): the recovery sweep must walk skiplist towers and
  // live records so post-recovery allocations cannot clobber them.
  const std::string path = temp_path();
  pmem::FileRegion::destroy(path);
  constexpr std::size_t kCapacity = 32 << 20;
  constexpr K kRange = 400;
  std::map<K, std::string> oracle;

  std::size_t clean_bump = 0;
  {
    Ordered kv = Ordered::open(path, kCapacity, 4, 64, KeyRange{0, kRange});
    kv.put(0, "seed");
    oracle[0] = "seed";
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  {
    pmem::FileRegion r = pmem::FileRegion::open(path, kCapacity);
    clean_bump = r.bump();
  }
  {
    Ordered kv = Ordered::open(path, kCapacity, 4, 64, KeyRange{0, kRange});
    for (K k = 1; k < kRange; ++k) {
      std::string v = value_for(k, 2);
      kv.put(k, v);
      oracle[k] = std::move(v);
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  {
    pmem::FileRegion r = pmem::FileRegion::open(path, kCapacity);
    ASSERT_GT(r.bump(), clean_bump);
    r.set_bump(clean_bump);  // the image a dirty shutdown leaves behind
    r.set_root(Ordered::kCleanShutdownSlot, nullptr);
    r.sync();
  }
  {
    Ordered kv = Ordered::open(path, kCapacity, 4, 64, KeyRange{0, kRange});
    for (K k = 1'000; k < 1'400; ++k) {  // force fresh allocations
      kv.put(k, value_for(k, 3));
    }
    for (const auto& [k, v] : oracle) {
      const auto got = kv.get(k);
      ASSERT_TRUE(got.has_value()) << "key " << k << " lost to stale bump";
      ASSERT_EQ(*got, v) << "key " << k;
    }
    kv.close();
  }
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
  pmem::FileRegion::destroy(path);
}

}  // namespace
}  // namespace flit::kv
