// Unit + stress tests for epoch-based reclamation.
#include "recl/ebr.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pmem/pool.hpp"
#include "support/test_common.hpp"

namespace flit::recl {
namespace {

using flit::test::PmemTest;

std::atomic<int> g_freed{0};

void counting_deleter(void* p) {
  g_freed.fetch_add(1);
  ::operator delete(p);
}

class EbrTest : public PmemTest {
 protected:
  void SetUp() override {
    PmemTest::SetUp();
    g_freed.store(0);
  }
};

TEST_F(EbrTest, RetireDoesNotFreeImmediately) {
  void* p = ::operator new(16);
  Ebr::instance().retire(p, &counting_deleter);
  EXPECT_EQ(g_freed.load(), 0);
  EXPECT_GE(Ebr::instance().limbo_size(), 1u);
  Ebr::instance().drain_all();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST_F(EbrTest, DrainAllFreesEverything) {
  for (int i = 0; i < 100; ++i) {
    Ebr::instance().retire(::operator new(8), &counting_deleter);
  }
  Ebr::instance().drain_all();
  EXPECT_EQ(g_freed.load(), 100);
  EXPECT_EQ(Ebr::instance().limbo_size(), 0u);
}

TEST_F(EbrTest, DisabledReclaimLeaks) {
  Ebr::instance().set_reclaim(false);
  void* p = ::operator new(16);
  Ebr::instance().retire(p, &counting_deleter);
  Ebr::instance().drain_all();
  EXPECT_EQ(g_freed.load(), 0) << "crash-test mode must never free";
  Ebr::instance().set_reclaim(true);
  ::operator delete(p);  // avoid the leak in the test binary
}

TEST_F(EbrTest, GuardsAreReentrant) {
  Ebr::Guard a;
  {
    Ebr::Guard b;
    {
      Ebr::Guard c;
    }
  }
  SUCCEED();
}

TEST_F(EbrTest, EpochAdvancesWhenAllThreadsQuiescent) {
  const std::uint64_t e0 = Ebr::instance().epoch();
  // Retiring kScanThreshold nodes triggers a scan; with no active guards
  // the epoch must advance.
  for (std::size_t i = 0; i <= Ebr::kScanThreshold; ++i) {
    Ebr::instance().retire(::operator new(8), &counting_deleter);
  }
  EXPECT_GT(Ebr::instance().epoch(), e0);
  Ebr::instance().drain_all();
}

TEST_F(EbrTest, ActiveGuardBlocksEpochAdvance) {
  std::atomic<bool> stop{false};
  std::atomic<bool> pinned{false};
  std::thread holder([&] {
    Ebr::Guard g;
    pinned.store(true);
    while (!stop.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  const std::uint64_t e0 = Ebr::instance().epoch();
  for (std::size_t i = 0; i <= 4 * Ebr::kScanThreshold; ++i) {
    Ebr::instance().retire(::operator new(8), &counting_deleter);
  }
  // One epoch step can still happen (holder may have announced the current
  // epoch), but it cannot advance twice while the guard is held.
  EXPECT_LE(Ebr::instance().epoch(), e0 + 1);
  stop.store(true);
  holder.join();
  Ebr::instance().drain_all();
}

TEST_F(EbrTest, NodeRetiredUnderGuardIsNotFreedWhileGuardLive) {
  // Retire from a second thread while this thread holds a guard: the node
  // must survive any number of retire-triggered scans.
  Ebr::Guard g;
  std::thread t([] {
    void* victim = ::operator new(16);
    Ebr::instance().retire(victim, &counting_deleter);
    for (std::size_t i = 0; i <= 4 * Ebr::kScanThreshold; ++i) {
      Ebr::instance().retire(::operator new(8), &counting_deleter);
    }
  });
  t.join();
  // The guard held by this thread pins the epoch to within one step of the
  // victim's retire epoch, so the victim cannot have been freed... unless
  // this thread never announced. Hold the guard and check: at most the
  // nodes retired in already-safe epochs were freed; the total cannot reach
  // everything retired (4*threshold+2) while we pin.
  EXPECT_LT(g_freed.load(), 4 * static_cast<int>(Ebr::kScanThreshold) + 2);
}

TEST_F(EbrTest, ExitedThreadsBucketsAreAdopted) {
  std::thread t([] {
    for (int i = 0; i < 10; ++i) {
      Ebr::instance().retire(::operator new(8), &counting_deleter);
    }
  });
  t.join();
  Ebr::instance().drain_all();
  EXPECT_EQ(g_freed.load(), 10) << "orphaned buckets must still be freed";
}

TEST_F(EbrTest, StressManyThreadsRetireAndFree) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        Ebr::Guard g;
        Ebr::instance().retire(::operator new(16), &counting_deleter);
      }
    });
  }
  for (auto& th : ts) th.join();
  Ebr::instance().drain_all();
  EXPECT_EQ(g_freed.load(), kThreads * kIters);
}

TEST_F(EbrTest, RetirePmemReturnsMemoryToPool) {
  struct Obj {
    std::uint64_t x;
  };
  Obj* o = pmem::pnew<Obj>(Obj{7});
  Ebr::instance().retire_pmem(o);
  Ebr::instance().drain_all();
  // The block goes back to this thread's free list; the next same-size
  // pool allocation reuses it.
  Obj* o2 = pmem::pnew<Obj>(Obj{8});
  EXPECT_EQ(o, o2);
  pmem::pdelete(o2);
}

}  // namespace
}  // namespace flit::recl
