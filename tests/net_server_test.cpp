// End-to-end tests for the epoll network front-end (src/net/server.hpp)
// over real loopback sockets: command semantics, pipelining → multi-op
// batching, torn frames arriving over the wire, protocol errors closing
// the connection, partial-write resumption under large replies, the
// SIGPIPE paper cut (a peer vanishing mid-conversation must not kill the
// process), and clean SHUTDOWN.
#include "net/server.hpp"

#include <chrono>
#include <memory>
#include <poll.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/failpoint.hpp"
#include "core/modes.hpp"
#include "kv/store.hpp"
#include "net/client.hpp"
#include "pmem/file_region.hpp"
#include "support/test_common.hpp"

namespace flit::net {
namespace {

using HashedKv = kv::Store<HashedWords, NVTraverse>;
using OrderedKv = kv::OrderedStore<HashedWords, NVTraverse>;

/// A live server on an ephemeral loopback port, torn down on scope exit.
template <class StoreT>
struct Harness {
  StoreT store;
  Server<StoreT> server;
  std::thread runner;

  explicit Harness(StoreT s, ServerConfig cfg = {})
      : store(std::move(s)), server(store, cfg) {
    runner = std::thread([this] { server.run(); });
  }

  ~Harness() {
    server.shutdown();
    if (runner.joinable()) runner.join();
  }

  Client connect() { return Client::connect("127.0.0.1", server.port()); }
};

class NetServerTest : public test::PmemTest {
 protected:
  static HashedKv hashed() { return HashedKv(4, 256); }
  static OrderedKv ordered() {
    return OrderedKv(4, 64, kv::KeyRange{0, 1 << 20});
  }
};

TEST_F(NetServerTest, SetGetDelRoundTrip) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  EXPECT_TRUE(c.command({"SET", "1", "one"}).ok());
  Reply r = c.command({"GET", "1"});
  ASSERT_EQ(r.type, Reply::Type::kBulk);
  EXPECT_EQ(r.str, "one");
  EXPECT_EQ(c.command({"DEL", "1"}).integer, 1);
  EXPECT_TRUE(c.command({"GET", "1"}).is_null());
  EXPECT_EQ(c.command({"DEL", "1"}).integer, 0);
  EXPECT_EQ(c.command({"PING"}).str, "PONG");
}

TEST_F(NetServerTest, PipelinedRunsBecomeMultiOps) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  constexpr int kN = 48;
  for (int i = 0; i < kN; ++i) {
    c.enqueue({"SET", std::to_string(i), "v" + std::to_string(i)});
  }
  c.flush();
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(c.read_reply().ok());
  for (int i = 0; i < kN; ++i) c.enqueue({"GET", std::to_string(i)});
  c.flush();
  for (int i = 0; i < kN; ++i) {
    const Reply r = c.read_reply();
    ASSERT_EQ(r.type, Reply::Type::kBulk) << i;
    EXPECT_EQ(r.str, "v" + std::to_string(i));
  }
  // The bursts must have gone down the batched multi-op path: the exact
  // split depends on readiness-event timing, but with 2×48 pipelined
  // same-command requests at least some runs batch.
  EXPECT_GT(h.server.stats().batched_keys.load(), 0u);
  // Replies stay in request order across a mixed run boundary: a GET
  // pipelined after a SET of the same key sees the SET.
  c.enqueue({"SET", "7", "old"});
  c.enqueue({"GET", "7"});
  c.enqueue({"SET", "7", "new"});
  c.enqueue({"GET", "7"});
  c.flush();
  EXPECT_TRUE(c.read_reply().ok());
  EXPECT_EQ(c.read_reply().str, "old");
  EXPECT_TRUE(c.read_reply().ok());
  EXPECT_EQ(c.read_reply().str, "new");
}

TEST_F(NetServerTest, MsetMgetMdel) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  EXPECT_TRUE(c.command({"MSET", "10", "a", "11", "b", "12", "c"}).ok());
  const Reply r = c.command({"MGET", "10", "12", "999", "11"});
  ASSERT_EQ(r.type, Reply::Type::kArray);
  ASSERT_EQ(r.elems.size(), 4u);
  EXPECT_EQ(r.elems[0].str, "a");
  EXPECT_EQ(r.elems[1].str, "c");
  EXPECT_TRUE(r.elems[2].is_null());
  EXPECT_EQ(r.elems[3].str, "b");
  EXPECT_EQ(c.command({"MDEL", "10", "11", "999"}).integer, 2);
  EXPECT_TRUE(c.command({"GET", "10"}).is_null());
  EXPECT_EQ(c.command({"GET", "12"}).str, "c");
}

TEST_F(NetServerTest, CommandErrorsAreRecoverable) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  EXPECT_TRUE(c.command({"NOSUCH", "1"}).is_error());
  EXPECT_TRUE(c.command({"GET", "not-a-number"}).is_error());
  EXPECT_TRUE(c.command({"GET"}).is_error());                // arity
  EXPECT_TRUE(c.command({"SET", "1"}).is_error());           // arity
  EXPECT_TRUE(
      c.command({"SET", "9223372036854775807", "v"}).is_error());  // reserved
  EXPECT_TRUE(
      c.command({"SET", "-9223372036854775808", "v"}).is_error());
  // A command error never poisons the connection.
  EXPECT_TRUE(c.command({"SET", "5", "fine"}).ok());
  EXPECT_EQ(c.command({"GET", "5"}).str, "fine");
  // In a pipelined GET run, an invalid element gets its error in place
  // while the valid neighbours still batch and answer correctly.
  c.enqueue({"GET", "5"});
  c.enqueue({"GET", "bogus"});
  c.enqueue({"GET", "5"});
  c.flush();
  EXPECT_EQ(c.read_reply().str, "fine");
  EXPECT_TRUE(c.read_reply().is_error());
  EXPECT_EQ(c.read_reply().str, "fine");
}

TEST_F(NetServerTest, ScanOnOrderedLayout) {
  Harness<OrderedKv> h(ordered());
  Client c = h.connect();
  for (int k = 0; k < 30; ++k) {
    ASSERT_TRUE(
        c.command({"SET", std::to_string(k), "s" + std::to_string(k)}).ok());
  }
  const Reply r = c.command({"SCAN", "10", "5"});
  ASSERT_EQ(r.type, Reply::Type::kArray);
  ASSERT_EQ(r.elems.size(), 10u);  // 5 (key, value) pairs
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.elems[static_cast<std::size_t>(2 * i)].str,
              std::to_string(10 + i));
    EXPECT_EQ(r.elems[static_cast<std::size_t>(2 * i + 1)].str,
              "s" + std::to_string(10 + i));
  }
  // Sentinel start keys are legal scan origins.
  const Reply lo = c.command({"SCAN", "-9223372036854775808", "3"});
  ASSERT_EQ(lo.elems.size(), 6u);
  EXPECT_EQ(lo.elems[0].str, "0");
  EXPECT_TRUE(c.command({"SCAN", "0", "999999999"}).is_error());  // too long
}

TEST_F(NetServerTest, ScanOnHashedLayoutIsAnError) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  const Reply r = c.command({"SCAN", "0", "5"});
  ASSERT_TRUE(r.is_error());
  EXPECT_NE(r.str.find("ordered"), std::string::npos);
}

TEST_F(NetServerTest, TornFramesOverTheWire) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  std::string wire;
  append_request(wire, {"SET", "77", "torn"});
  append_request(wire, {"GET", "77"});
  // Dribble the two pipelined frames one byte at a time through the real
  // socket; the server-side incremental parser must reassemble them.
  for (const char ch : wire) {
    write_all(c.fd(), &ch, 1);
  }
  EXPECT_TRUE(c.read_reply().ok());
  EXPECT_EQ(c.read_reply().str, "torn");
}

TEST_F(NetServerTest, InlineCommandsOverTheWire) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  const std::string wire = "SET 3 inline-value\r\nGET 3\r\nPING\r\n";
  write_all(c.fd(), wire.data(), wire.size());
  EXPECT_TRUE(c.read_reply().ok());
  EXPECT_EQ(c.read_reply().str, "inline-value");
  EXPECT_EQ(c.read_reply().str, "PONG");
}

TEST_F(NetServerTest, MalformedFrameGetsErrorThenClose) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  // Valid request pipelined ahead of garbage: the valid one must still
  // answer, then the -ERR diagnostic, then EOF.
  std::string wire;
  append_request(wire, {"PING"});
  wire += "*borked\r\n";
  write_all(c.fd(), wire.data(), wire.size());
  EXPECT_EQ(c.read_reply().str, "PONG");
  EXPECT_TRUE(c.read_reply().is_error());
  EXPECT_THROW(c.read_reply(), std::runtime_error);  // connection closed
  // The server as a whole keeps serving.
  Client c2 = h.connect();
  EXPECT_EQ(c2.command({"PING"}).str, "PONG");
  EXPECT_GT(h.server.stats().protocol_errors.load(), 0u);
}

TEST_F(NetServerTest, PartialWriteResumption) {
  // Pipeline GETs whose replies vastly exceed the socket buffer while the
  // client reads nothing: the server must park the overflow, register for
  // EPOLLOUT, and resume — byte-perfect — once the client drains.
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  const std::string big(512 << 10, 'x');  // 512 KiB
  ASSERT_TRUE(c.command({"SET", "1", big}).ok());
  constexpr int kReads = 24;  // ~12 MiB of replies
  for (int i = 0; i < kReads; ++i) c.enqueue({"GET", "1"});
  c.flush();
  for (int i = 0; i < kReads; ++i) {
    const Reply r = c.read_reply();
    ASSERT_EQ(r.type, Reply::Type::kBulk) << i;
    ASSERT_EQ(r.str.size(), big.size()) << i;
    EXPECT_EQ(r.str, big) << i;
  }
}

TEST_F(NetServerTest, PeerVanishingMidReplyDoesNotKillTheServer) {
  // The SIGPIPE paper cut: the client pipelines requests with large
  // replies and disconnects without reading. The worker's writes hit a
  // dead socket (EPIPE) — the process must survive and keep serving.
  Harness<HashedKv> h(hashed());
  {
    Client c = h.connect();
    const std::string big(256 << 10, 'y');
    ASSERT_TRUE(c.command({"SET", "2", big}).ok());
    for (int i = 0; i < 16; ++i) c.enqueue({"GET", "2"});
    c.flush();
    // Drop the connection with the replies still in flight.
  }
  Client c2 = h.connect();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c2.command({"PING"}).str, "PONG");
  }
  EXPECT_EQ(c2.command({"GET", "2"}).str, std::string(256 << 10, 'y'));
}

TEST_F(NetServerTest, StatsAndDurabilityCounters) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  ASSERT_TRUE(c.command({"SET", "4", "v"}).ok());
  const Reply r = c.command({"STATS"});
  ASSERT_EQ(r.type, Reply::Type::kBulk);
  EXPECT_NE(r.str.find("layout=hashed"), std::string::npos);
  EXPECT_NE(r.str.find("requests="), std::string::npos);
  EXPECT_NE(r.str.find("pfences="), std::string::npos);
  EXPECT_NE(r.str.find("keys=1"), std::string::npos);
}

TEST_F(NetServerTest, ShutdownCommandStopsTheServer) {
  auto h = std::make_unique<Harness<HashedKv>>(hashed());
  Client c = h->connect();
  ASSERT_TRUE(c.command({"SET", "9", "bye"}).ok());
  EXPECT_TRUE(c.command({"SHUTDOWN"}).ok());
  h->runner.join();  // run() must return on its own
  EXPECT_FALSE(h->runner.joinable());
  h.reset();
  // The store survives the server: data written before SHUTDOWN is there.
}

TEST_F(NetServerTest, ManyConnectionsRoundRobin) {
  ServerConfig cfg;
  cfg.workers = 3;
  Harness<HashedKv> h(hashed(), cfg);
  std::vector<Client> clients;
  for (int i = 0; i < 9; ++i) clients.push_back(h.connect());
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(
        clients[static_cast<std::size_t>(i)]
            .command({"SET", std::to_string(100 + i), "c" + std::to_string(i)})
            .ok());
  }
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(
        clients[static_cast<std::size_t>(i)]
            .command({"GET", std::to_string(100 + i)})
            .str,
        "c" + std::to_string(i));
  }
  EXPECT_EQ(h.server.stats().connections.load(), 9u);
}

// --- overload protection & degraded modes -----------------------------------

TEST_F(NetServerTest, MaxConnectionsShedsTheExcess) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_connections = 3;
  Harness<HashedKv> h(hashed(), cfg);

  std::vector<Client> keep;
  for (int i = 0; i < 3; ++i) {
    keep.push_back(h.connect());
    ASSERT_EQ(keep.back().command({"PING"}).str, "PONG");
  }
  // The 4th connection is accepted and immediately closed (shed): the
  // client observes EOF on its first round trip, never a hang.
  {
    Client extra = h.connect();
    EXPECT_THROW((void)extra.command({"PING"}), std::runtime_error);
  }
  // Waiting for the shed counter (not a fixed sleep): the close happens
  // on the listener thread an instant after connect() returns.
  for (int spin = 0; spin < 200; ++spin) {
    if (h.server.stats().shed_connections.load() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(h.server.stats().shed_connections.load(), 1u);
  // The connections under the cap keep serving...
  for (auto& c : keep) EXPECT_EQ(c.command({"PING"}).str, "PONG");
  // ...and closing one frees a slot for a newcomer.
  keep.pop_back();
  for (int spin = 0; spin < 200; ++spin) {
    if (h.server.stats().open_connections.load() < 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Client fresh = h.connect();
  EXPECT_EQ(fresh.command({"PING"}).str, "PONG");
}

TEST_F(NetServerTest, IdleConnectionsAreReapedActiveOnesAreNot) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.idle_timeout_ms = 150;
  Harness<HashedKv> h(hashed(), cfg);

  Client idle = h.connect();
  Client busy = h.connect();
  ASSERT_EQ(idle.command({"PING"}).str, "PONG");

  // `busy` keeps talking through several full timeout windows — the
  // wheel must lazily re-bucket it, never reap it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool idle_closed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    EXPECT_EQ(busy.command({"PING"}).str, "PONG");
    pollfd pfd{idle.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 50) > 0 && (pfd.revents & (POLLIN | POLLHUP))) {
      char byte;
      bool would_block = false;
      if (read_some(idle.fd(), &byte, 1, would_block) == 0) {
        idle_closed = true;  // EOF: the server reaped it
        break;
      }
    }
  }
  EXPECT_TRUE(idle_closed) << "idle connection outlived its timeout";
  EXPECT_GE(h.server.stats().idle_timeouts.load(), 1u);
  EXPECT_EQ(busy.command({"PING"}).str, "PONG");
}

TEST_F(NetServerTest, PoolExhaustionMapsToOutOfSpacePerRequest) {
  const std::string path =
      "/tmp/flit_net_server_oos_" + std::to_string(::getpid()) + ".pmem";
  pmem::FileRegion::destroy(path);
  {
    ServerConfig cfg;
    cfg.workers = 1;
    Harness<HashedKv> h(HashedKv::open(path, 2 << 20, 2, 64), cfg);
    Client c = h.connect();

    // Fill through the wire until the pool refuses.
    const std::string big(8 << 10, 'z');
    int k = 0;
    Reply fail;
    for (; k < 4096; ++k) {
      fail = c.command({"SET", std::to_string(k), big});
      if (fail.is_error()) break;
    }
    ASSERT_LT(k, 4096) << "a 2 MiB store should not take 4096 8 KiB SETs";
    ASSERT_GT(k, 0);
    EXPECT_NE(fail.str.find("OUT_OF_SPACE"), std::string::npos) << fail.str;

    // Per-request degradation: the same connection still answers reads
    // and deletes.
    EXPECT_EQ(c.command({"GET", "0"}).str, big);
    EXPECT_EQ(c.command({"DEL", "0"}).integer, 1);
    EXPECT_EQ(c.command({"DEL", "1"}).integer, 1);
    EXPECT_EQ(c.command({"GET", "0"}).type, Reply::Type::kNull);
    // (Instant reuse of the freed space is NOT asserted here: these 8 KiB
    // records exceed the pool's recycled size classes, and EBR only scans
    // its limbo every kScanThreshold retires — far more than two DELs.
    // Recycle-after-delete semantics are covered by exhaustion_test,
    // which drains the limbo explicitly.)
    // Exhaustion stays per-request: the next big SET fails the same way
    // while the connection keeps serving.
    EXPECT_NE(c.command({"SET", "0", big})
                  .str.find("OUT_OF_SPACE"),
              std::string::npos);
    EXPECT_EQ(c.command({"GET", "2"}).str, big);

    // health= stays ok: out-of-space is not a durability failure.
    const Reply stats = c.command({"STATS"});
    EXPECT_NE(stats.str.find("health=ok"), std::string::npos);
  }
  pmem::FileRegion::destroy(path);
}

TEST_F(NetServerTest, StatsCarriesOverloadAndHealthFields) {
  Harness<HashedKv> h(hashed());
  Client c = h.connect();
  const Reply r = c.command({"STATS"});
  ASSERT_EQ(r.type, Reply::Type::kBulk);
  for (const char* field :
       {"health=ok", "open_conns=", "shed_conns=", "idle_timeouts=",
        "accept_backoffs=", "injected_faults="}) {
    EXPECT_NE(r.str.find(field), std::string::npos) << field;
  }
}

// Failpoint-armed regression (failpoints preset only): a kAlways commit
// whose msync fails must withdraw the event's acknowledgements — never
// ack a write the store could not make durable — and latch READONLY.
TEST_F(NetServerTest, CommitFailureWithdrawsAcksAndLatchesReadOnly) {
  if (!core::kFailpointsEnabled) {
    GTEST_SKIP() << "needs the failpoints preset (FLIT_FAILPOINTS=ON)";
  }
  const std::string path =
      "/tmp/flit_net_server_ro_" + std::to_string(::getpid()) + ".pmem";
  pmem::FileRegion::destroy(path);
  core::Failpoints::instance().disarm_all();
  pmem::reset_durability_health();
  {
    ServerConfig cfg;
    cfg.workers = 1;
    HashedKv store = HashedKv::open(path, 4 << 20, 2, 64);
    store.set_durability_mode(kv::DurabilityMode::kAlways);
    Harness<HashedKv> h(std::move(store), cfg);
    Client c = h.connect();
    ASSERT_TRUE(c.command({"SET", "1", "acked-durable"}).ok());

    ASSERT_TRUE(core::Failpoints::instance().arm_from_spec(
        "pmem.msync=every:1@EIO"));
    // The SET applies, but its commit-point msync fails: the reply is
    // withdrawn and replaced by one READONLY diagnostic, then EOF.
    const Reply r = c.command({"SET", "2", "never-acked"});
    ASSERT_TRUE(r.is_error()) << r.str;
    EXPECT_NE(r.str.find("READONLY"), std::string::npos) << r.str;
    EXPECT_THROW((void)c.read_reply(), std::runtime_error);  // closed
    core::Failpoints::instance().disarm_all();

    // Reconnect: mutations are refused up front, reads still served.
    Client c2 = h.connect();
    const Reply put = c2.command({"SET", "3", "x"});
    ASSERT_TRUE(put.is_error());
    EXPECT_NE(put.str.find("READONLY"), std::string::npos);
    EXPECT_EQ(c2.command({"GET", "1"}).str, "acked-durable");
    const Reply stats = c2.command({"STATS"});
    EXPECT_NE(stats.str.find("health=readonly"), std::string::npos)
        << stats.str;
    EXPECT_NE(stats.str.find("injected_faults="), std::string::npos);
  }
  core::Failpoints::instance().disarm_all();
  pmem::reset_durability_health();
  pmem::FileRegion::destroy(path);
}

}  // namespace
}  // namespace flit::net
