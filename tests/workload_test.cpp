// Unit tests for the benchmark workload generator and throughput driver.
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "bench_util/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ds/hash_table.hpp"
#include "support/test_common.hpp"

namespace flit::bench {
namespace {

using flit::test::PmemTest;

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Rng a2(123);
  (void)c.next();
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, BoundsRespected) {
  Rng r(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(100), 100u);
    const double u = r.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng r(9);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[r.next_below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 5)
        << "bucket " << b;
  }
}

TEST(OpMix, RatiosMatchConfiguration) {
  for (double pct : {0.0, 5.0, 50.0, 100.0}) {
    OpMix mix(pct);
    Rng rng(static_cast<std::uint64_t>(pct) + 1);
    int updates = 0, inserts = 0, removes = 0;
    constexpr int kN = 200'000;
    for (int i = 0; i < kN; ++i) {
      switch (mix.pick(rng)) {
        case OpKind::kInsert:
          ++updates;
          ++inserts;
          break;
        case OpKind::kRemove:
          ++updates;
          ++removes;
          break;
        case OpKind::kContains:
          break;
      }
    }
    EXPECT_NEAR(static_cast<double>(updates) / kN, pct / 100.0, 0.01)
        << pct << "% updates";
    if (pct > 0) {
      EXPECT_NEAR(static_cast<double>(inserts),
                  static_cast<double>(removes),
                  0.1 * static_cast<double>(updates) + 100)
          << "updates must split ~50/50 insert/delete";
    }
  }
}

class RunnerTest : public PmemTest {};

TEST_F(RunnerTest, PrefillReachesTargetSize) {
  ds::HashTable<std::int64_t, std::int64_t, VolatileWords, Automatic> t(256);
  WorkloadConfig cfg;
  cfg.key_range = 2'000;
  cfg.prefill = 1'000;
  prefill(t, cfg);
  EXPECT_EQ(t.size(), 1'000u);
}

TEST_F(RunnerTest, RunWorkloadProducesOpsAndKeepsSizeStable) {
  ds::HashTable<std::int64_t, std::int64_t, HashedWords, Automatic> t(256);
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.update_pct = 50;
  cfg.key_range = 512;
  cfg.prefill = 256;
  cfg.duration_s = 0.2;
  prefill(t, cfg);
  const RunResult r = run_workload(t, cfg);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.mops(), 0.0);
  EXPECT_GT(r.seconds, 0.15);
  // Uniform keys + 50/50 insert/delete keep the size near the target.
  EXPECT_GT(t.size(), 100u);
  EXPECT_LT(t.size(), 450u);
}

TEST_F(RunnerTest, ZeroUpdateWorkloadIssuesNoPwbsWithFlit) {
  ds::HashTable<std::int64_t, std::int64_t, HashedWords, Automatic> t(256);
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.update_pct = 0;
  cfg.key_range = 256;
  cfg.prefill = 128;
  cfg.duration_s = 0.1;
  prefill(t, cfg);
  const RunResult r = run_workload(t, cfg);
  // §6.5: at 0% updates FliT loads never flush (no location is ever
  // tagged); only per-operation completion fences remain.
  EXPECT_EQ(r.persistence.pwbs, 0u);
  EXPECT_GT(r.persistence.pfences, 0u);
}

TEST(TableOutput, FormatsAndCsv) {
  Table t({"impl", "mops"});
  t.add_row({"flit-HT", Table::fmt(12.345, 2)});
  t.add_row({"plain", Table::fmt(1.0, 2)});
  t.print("demo");      // smoke: must not crash
  t.print_csv("demo");  // smoke
  EXPECT_EQ(Table::fmt(1.5, 1), "1.5");
  EXPECT_EQ(Table::fmt_u(42), "42");
}

TEST(BenchArgs, ParsesFlags) {
  const char* argv[] = {"bin", "--full", "--threads=8", "--seconds=2.5"};
  BenchArgs a = BenchArgs::parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(a.full);
  EXPECT_EQ(a.threads, 8);
  EXPECT_DOUBLE_EQ(a.seconds, 2.5);
  BenchArgs d = BenchArgs::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(d.full);
  EXPECT_EQ(d.threads, 0);
}

}  // namespace
}  // namespace flit::bench
