// LinCheck's own suite — four layers of validation:
//
//   1. Checker unit tests on hand-built histories: linearizable histories
//      are accepted; each violation class is produced by a minimal
//      history that provably exhibits it (the checker is sound, so every
//      rejection test is also a semantics test of the rule).
//   2. Lifetime-analyzer unit tests driving the registry directly with
//      fake pointers: the 3-epoch grace rule, quiescent-drain exemption,
//      use-after-free / unprotected / stale dereference detection, and
//      address-recycling hygiene.
//   3. Recorded stress runs: concurrent workloads over the otherwise
//      dead-code ds::NatarajanBst and ds::LockedBPlusTree (recorded
//      directly via the Recorder, so these run in every build) and over
//      kv::Store scalar/batched/ordered paths (via the FLIT_LINCHECK
//      hooks, so those skip elsewhere) must produce zero findings.
//   4. Seeded-bug validation (FLIT_LINCHECK builds): each
//      FLIT_LINCHECK_UNSAFE mode plants one precise bug in the kv layer
//      and the checker must catch it with the right class and site; plus
//      the durable-linearizability sweep replaying pfence-boundary crash
//      images across all nine store configurations.
#include "check/lincheck.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "check/linearizer.hpp"
#include "ds/locked_bptree.hpp"
#include "ds/natarajan_bst.hpp"
#include "kv/store.hpp"
#include "support/test_common.hpp"

namespace flit {
namespace {

using flit::test::PmemTest;
using check::Event;
using check::Finding;
using check::History;
using check::Op;
using check::ScanEvent;
using check::ViolationClass;
using K = std::int64_t;

// --- helpers ---------------------------------------------------------------

Event ev(std::uint64_t inv, std::uint64_t resp, K key, Op op,
         std::uint64_t value, bool flag) {
  return Event{inv, resp, key, value, op, flag};
}

bool has_class(const std::vector<Finding>& fs, ViolationClass c) {
  for (const Finding& f : fs) {
    if (f.cls == c) return true;
  }
  return false;
}

std::string render(const std::vector<Finding>& fs) {
  std::string s;
  for (const Finding& f : fs) {
    s += std::string(check::to_string(f.cls)) + " key " +
         std::to_string(f.key) + " tick " + std::to_string(f.tick) + ": " +
         f.detail + "\n";
  }
  return s.empty() ? "(no findings)" : s;
}

#define EXPECT_CLEAN(findings) \
  EXPECT_TRUE((findings).empty()) << render(findings)

/// Deterministic unique payload so every put gets a distinct value id —
/// stale reads are then distinguishable from current ones by content.
std::string value_for(K k, std::uint64_t salt) {
  return "v" + std::to_string(k) + ":" + std::to_string(salt) + ":" +
         std::string(1 + static_cast<std::size_t>((k * 7 + salt) % 24), 'x');
}

// --- 1. checker unit tests: accepted histories -----------------------------

TEST(LinCheckHistory, EmptyHistoryAccepted) {
  EXPECT_CLEAN(check::check_history(History{}));
}

TEST(LinCheckHistory, SequentialRunAccepted) {
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 5, Op::kPut, v1, true),      // insert: was absent
      ev(3, 4, 5, Op::kGet, v1, true),      // sees it
      ev(5, 6, 5, Op::kPut, v2, false),     // overwrite: was present
      ev(7, 8, 5, Op::kGet, v2, true),      // sees the new value
      ev(9, 10, 5, Op::kContains, 0, true),
      ev(11, 12, 5, Op::kRemove, 0, true),  // was present
      ev(13, 14, 5, Op::kGet, 0, false),    // gone
      ev(15, 16, 5, Op::kContains, 0, false),
      ev(17, 18, 5, Op::kRemove, 0, false),  // already gone
  };
  EXPECT_CLEAN(check::check_history(h));
}

TEST(LinCheckHistory, ConcurrentOverlapAccepted) {
  // Two overlapping puts and a read inside the overlap seeing the first
  // value: the witness p1 < g1 < p2 < g2 explains every response.
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 4, 7, Op::kPut, v1, true),
      ev(2, 6, 7, Op::kPut, v2, false),
      ev(3, 5, 7, Op::kGet, v1, true),
      ev(7, 8, 7, Op::kGet, v2, true),
  };
  EXPECT_CLEAN(check::check_history(h));
}

TEST(LinCheckHistory, BatchSharedInvTicksAccepted) {
  // Batched multi-op elements share one inv tick (multi_put semantics:
  // applied in batch order, so the duplicate key's flags are insert-then-
  // overwrite and the final read sees the last element's value).
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 3, Op::kPut, v1, true),
      ev(1, 3, 3, Op::kPut, v2, false),
      ev(4, 5, 3, Op::kGet, v2, true),
  };
  EXPECT_CLEAN(check::check_history(h));
}

TEST(LinCheckHistory, IndependentKeysCheckedIndependently) {
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(1, 3, 2, Op::kPut, v2, true),  // same inv tick, different key
      ev(4, 5, 1, Op::kGet, v1, true),
      ev(4, 6, 2, Op::kGet, v2, true),
  };
  EXPECT_CLEAN(check::check_history(h));
}

// --- 1. checker unit tests: rejected histories -----------------------------

TEST(LinCheckHistory, StaleReadRejected) {
  // g returns v1 although the overwrite to v2 completed strictly between
  // p1's response and g's invocation — v1 is certainly superseded.
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 9, Op::kPut, v1, true),
      ev(3, 4, 9, Op::kPut, v2, false),
      ev(5, 6, 9, Op::kGet, v1, true),
  };
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kStaleRead)) << render(fs);
}

TEST(LinCheckHistory, PhantomReadRejected) {
  const std::uint64_t v1 = check::value_id("a");
  const std::uint64_t ghost = check::value_id("never-written");
  History h;
  h.events = {
      ev(1, 2, 9, Op::kPut, v1, true),
      ev(3, 4, 9, Op::kGet, ghost, true),
  };
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kPhantomRead)) << render(fs);
}

TEST(LinCheckHistory, LostUpdateRejected) {
  // The put completed before the get began and nothing ever removed the
  // key, yet the get reports it absent.
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {
      ev(1, 2, 9, Op::kPut, v1, true),
      ev(3, 4, 9, Op::kGet, 0, false),
  };
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kLostUpdate)) << render(fs);
}

TEST(LinCheckHistory, ContainsFlagMismatchRejected) {
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {
      ev(1, 2, 9, Op::kPut, v1, true),
      ev(3, 4, 9, Op::kContains, 0, false),
  };
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kFlagMismatch)) << render(fs);
}

TEST(LinCheckHistory, RemoveFlagMismatchRejected) {
  // remove reports "was absent" on a key certainly present.
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {
      ev(1, 2, 9, Op::kPut, v1, true),
      ev(3, 4, 9, Op::kRemove, 0, false),
  };
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kFlagMismatch)) << render(fs);
}

TEST(LinCheckHistory, NonLinearizableFlagsRejectedBySearch) {
  // Two overlapping inserts both claim "I inserted" with no remove in
  // between: no classifier fires (neither flag is *certainly* wrong in
  // isolation), but no witness order exists — the WGL search must say so.
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 4, 9, Op::kPut, v1, true),
      ev(2, 5, 9, Op::kPut, v2, true),
  };
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kNonLinearizable)) << render(fs);
}

// --- 1. checker unit tests: scans ------------------------------------------

TEST(LinCheckHistory, ScanInOrderAccepted) {
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 2, Op::kPut, v2, true),
  };
  h.scans = {ScanEvent{5, 6, 0, 10, {{1, v1}, {2, v2}}}};
  EXPECT_CLEAN(check::check_history(h));
}

TEST(LinCheckHistory, ScanOutOfOrderRejected) {
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 2, Op::kPut, v2, true),
  };
  h.scans = {ScanEvent{5, 6, 0, 10, {{2, v2}, {1, v1}}}};
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kScanOrder)) << render(fs);
}

TEST(LinCheckHistory, ScanStaleValueRejected) {
  // The scan returns a value overwritten before the scan began.
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 1, Op::kPut, v2, false),
  };
  h.scans = {ScanEvent{5, 6, 0, 10, {{1, v1}}}};
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kScanStale)) << render(fs);
}

TEST(LinCheckHistory, ScanDroppedKeyRejected) {
  // Key 1 is present for the scan's whole interval and inside the
  // returned range, but missing from the output.
  const std::uint64_t v1 = check::value_id("a"), v3 = check::value_id("c");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 3, Op::kPut, v3, true),
  };
  h.scans = {ScanEvent{5, 6, 0, 10, {{3, v3}}}};
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kScanDropped)) << render(fs);
}

TEST(LinCheckHistory, ScanFullOutputOwesNothingPastLimit) {
  // With limit 1 the scan is full after returning key 1; key 3 was not
  // owed even though it was present throughout.
  const std::uint64_t v1 = check::value_id("a"), v3 = check::value_id("c");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 3, Op::kPut, v3, true),
  };
  h.scans = {ScanEvent{5, 6, 0, 1, {{1, v1}}}};
  EXPECT_CLEAN(check::check_history(h));
}

TEST(LinCheckHistory, ScanPresenceOnlyPhantomRejected) {
  // Keys-only scans (value id 0) still get the presence rules: key 2 was
  // removed before the scan began and never re-inserted.
  const std::uint64_t v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 2, Op::kPut, v2, true),
      ev(3, 4, 2, Op::kRemove, 0, true),
  };
  h.scans = {ScanEvent{5, 6, 0, 10, {{2, 0}}}};
  const auto fs = check::check_history(h);
  EXPECT_TRUE(has_class(fs, ViolationClass::kScanPhantom)) << render(fs);
}

// --- 1. checker unit tests: durable mode -----------------------------------

TEST(LinCheckDurable, AcceptsPrefixWithInflightEitherWay) {
  // p2 is in flight at the cut (inv 3 < 5 < resp 6): the image may hold
  // the old value or the new value — both must be accepted.
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 6, 1, Op::kPut, v2, false),
  };
  EXPECT_CLEAN(check::check_durable(h, 5, {{1, v1}}));
  EXPECT_CLEAN(check::check_durable(h, 5, {{1, v2}}));
}

TEST(LinCheckDurable, RejectsDroppedCompletedPut) {
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {ev(1, 2, 1, Op::kPut, v1, true)};
  const auto fs = check::check_durable(h, 10, {});
  EXPECT_TRUE(has_class(fs, ViolationClass::kDurableLost)) << render(fs);
}

TEST(LinCheckDurable, RejectsSupersededValueInImage) {
  // Both puts completed before the cut: recovering the first one's value
  // means the second (completed!) write was lost.
  const std::uint64_t v1 = check::value_id("a"), v2 = check::value_id("b");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 1, Op::kPut, v2, false),
  };
  const auto fs = check::check_durable(h, 10, {{1, v1}});
  EXPECT_TRUE(has_class(fs, ViolationClass::kDurableLost)) << render(fs);
}

TEST(LinCheckDurable, RejectsValueNothingWrote) {
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {ev(1, 2, 1, Op::kPut, v1, true)};
  const auto fs =
      check::check_durable(h, 10, {{1, check::value_id("never-written")}});
  EXPECT_TRUE(has_class(fs, ViolationClass::kDurablePhantom)) << render(fs);
}

TEST(LinCheckDurable, RejectsResurrectedRemovedKey) {
  // The remove completed before the cut; the image resurrecting the old
  // value means the completed remove did not survive.
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {
      ev(1, 2, 1, Op::kPut, v1, true),
      ev(3, 4, 1, Op::kRemove, 0, true),
  };
  const auto fs = check::check_durable(h, 10, {{1, v1}});
  EXPECT_TRUE(has_class(fs, ViolationClass::kDurableLost)) << render(fs);
}

TEST(LinCheckDurable, AcceptsOpsInvokedAfterCut) {
  // A put invoked entirely after the cut cannot be in the image and is
  // owed nothing.
  const std::uint64_t v1 = check::value_id("a");
  History h;
  h.events = {ev(6, 7, 1, Op::kPut, v1, true)};
  EXPECT_CLEAN(check::check_durable(h, 5, {}));
}

// --- 2. lifetime analyzer unit tests ---------------------------------------

/// Drives the registry with fake (member array) pointers. Every test must
/// leave the violation counters acknowledged — TearDown asserts that and
/// drops the fake registry entries so later suites see a clean slate.
class LinCheckLifetimeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    EXPECT_EQ(check::Lifetime::instance().total_violations(), 0u)
        << "a lifetime test forgot to acknowledge its violations";
    check::Lifetime::instance().clear();
  }

  static void expect_and_ack(check::LifetimeViolation kind,
                             std::uint64_t count) {
    auto& lt = check::Lifetime::instance();
    EXPECT_EQ(lt.violations(kind), count) << check::to_string(kind);
    EXPECT_EQ(lt.total_violations(), count);
    lt.reset_violations();
  }

  char node_a_[64] = {};
  char node_b_[64] = {};
};

TEST_F(LinCheckLifetimeTest, FreeAfterGraceIsClean) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_free(node_a_, 7, /*quiescent=*/false);  // epoch 5+2 reached
  EXPECT_EQ(lt.total_violations(), 0u);
}

TEST_F(LinCheckLifetimeTest, EarlyReclaimFlagged) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::early_site");
  lt.on_free(node_a_, 6, /*quiescent=*/false);  // one epoch short of grace
  EXPECT_STREQ(lt.first_violation_site(), "test::early_site");
  expect_and_ack(check::LifetimeViolation::kEarlyReclaim, 1);
}

TEST_F(LinCheckLifetimeTest, QuiescentDrainExemptFromGrace) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_free(node_a_, 5, /*quiescent=*/true);  // drain_all()-style
  EXPECT_EQ(lt.total_violations(), 0u);
}

TEST_F(LinCheckLifetimeTest, UseAfterFreeFlagged) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_free(node_a_, 7, /*quiescent=*/false);
  lt.on_deref(node_a_, 6, "test::uaf_site");
  expect_and_ack(check::LifetimeViolation::kUseAfterFree, 1);
}

TEST_F(LinCheckLifetimeTest, UnprotectedDerefFlagged) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_deref(node_a_, recl::Ebr::kIdleEpoch, "test::no_guard");
  expect_and_ack(check::LifetimeViolation::kUnprotectedDeref, 1);
}

TEST_F(LinCheckLifetimeTest, StaleDerefFlagged) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_deref(node_a_, 7, "test::stale_guard");  // announced >= retire+2
  expect_and_ack(check::LifetimeViolation::kStaleDeref, 1);
}

TEST_F(LinCheckLifetimeTest, GuardedDerefWithinGraceIsClean) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_deref(node_a_, 5, "test::reader");  // retire-epoch reader
  lt.on_deref(node_a_, 6, "test::reader");  // last legitimate epoch
  EXPECT_EQ(lt.total_violations(), 0u);
}

TEST_F(LinCheckLifetimeTest, UntrackedNodesAreNeverFlagged) {
  auto& lt = check::Lifetime::instance();
  lt.on_deref(node_b_, recl::Ebr::kIdleEpoch, "test::live_node");
  lt.on_free(node_b_, 0, /*quiescent=*/false);
  EXPECT_EQ(lt.total_violations(), 0u);
}

TEST_F(LinCheckLifetimeTest, AllocationRecyclesTheAddress) {
  auto& lt = check::Lifetime::instance();
  lt.on_retire(node_a_, 5, "test::retire");
  lt.on_free(node_a_, 7, /*quiescent=*/false);
  lt.on_alloc(node_a_, sizeof node_a_);  // the pool reissued the block
  lt.on_deref(node_a_, recl::Ebr::kIdleEpoch, "test::fresh_owner");
  EXPECT_EQ(lt.total_violations(), 0u);
}

// --- 3a. recorder unit test ------------------------------------------------

TEST(LinCheckRecorder, RecordsArmedWindowOnly) {
  auto& rec = check::Recorder::instance();
  rec.reset();

  // Disarmed: begin() hands out the sentinel and end() drops the event.
  const std::uint64_t dead = rec.begin();
  EXPECT_EQ(dead, check::kNoTick);
  rec.end(dead, Op::kPut, 1, 42, true);

  rec.arm();
  const std::uint64_t inv = rec.begin();
  rec.end(inv, Op::kPut, 1, 42, true);
  const std::uint64_t inv2 = rec.begin();
  rec.end(inv2, Op::kGet, 1, 42, true);
  rec.end_scan(rec.begin(), 0, 10, {{1, 42}});
  rec.disarm();

  const History h = rec.snapshot();
  ASSERT_EQ(h.events.size(), 2u);
  ASSERT_EQ(h.scans.size(), 1u);
  EXPECT_LT(h.events[0].inv, h.events[0].resp);
  EXPECT_LT(h.events[0].resp, h.events[1].inv);
  EXPECT_CLEAN(check::check_history(h));

  rec.reset();
  EXPECT_TRUE(rec.snapshot().events.empty());
}

// --- 3b. recorded stress: the ds-layer structures --------------------------
//
// These drive the Recorder directly (not the FLIT_LINCHECK hooks), so
// they verify real concurrent executions of NatarajanBst and
// LockedBPlusTree in every build. Values are unique per write so any
// stale or phantom read is distinguishable by value id.

/// kInsert semantics: insert() fails on a live key (no overwrite).
struct BstAdapter {
  static constexpr Op kWriteOp = Op::kInsert;
  static constexpr bool kHasScan = false;
  ds::NatarajanBst<K, std::int64_t> t;
  bool write(K k, std::int64_t vid) { return t.insert(k, vid); }
  bool erase(K k) { return t.remove(k); }
  std::optional<std::int64_t> read(K k) { return t.find(k); }
  bool contains(K k) const { return t.contains(k); }
  std::vector<K> range_all(K) { return {}; }
};

/// kPut semantics: insert() is insert-or-overwrite ("fresh" flag), and
/// range() gives keys-only scans checked under the presence rules.
struct BptAdapter {
  static constexpr Op kWriteOp = Op::kPut;
  static constexpr bool kHasScan = true;
  ds::LockedBPlusTree<K, std::int64_t> t;
  bool write(K k, std::int64_t vid) { return t.insert(k, vid); }
  bool erase(K k) { return t.remove(k); }
  std::optional<std::int64_t> read(K k) { return t.find(k); }
  bool contains(K k) const { return t.contains(k); }
  std::vector<K> range_all(K hi) { return t.range(0, hi); }
};

template <class Adapter>
void run_ds_stress(int nthreads, int ops_per_thread, K key_range) {
  auto& rec = check::Recorder::instance();
  rec.reset();
  rec.arm();

  Adapter a;
  std::atomic<std::int64_t> next_vid{1};
  std::vector<std::thread> workers;
  for (int t = 0; t < nthreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(0xd5u * 1000003u + static_cast<unsigned>(t));
      for (int i = 0; i < ops_per_thread; ++i) {
        const K k =
            static_cast<K>(rng() % static_cast<std::uint64_t>(key_range));
        const std::uint64_t roll = rng() % 100;
        const std::uint64_t inv = rec.begin();
        if (roll < 35) {
          const std::int64_t vid = next_vid.fetch_add(1);
          const bool flag = a.write(k, vid);
          rec.end(inv, Adapter::kWriteOp, k, static_cast<std::uint64_t>(vid),
                  flag);
        } else if (roll < 55) {
          const bool flag = a.erase(k);
          rec.end(inv, Op::kRemove, k, 0, flag);
        } else if (roll < 85) {
          const auto got = a.read(k);
          rec.end(inv, Op::kGet, k,
                  got ? static_cast<std::uint64_t>(*got) : 0,
                  got.has_value());
        } else if (!Adapter::kHasScan || roll < 95) {
          rec.end(inv, Op::kContains, k, 0, a.contains(k));
        } else {
          // Keys-only range over the whole key space: limit > key_range
          // means "never full", so every certainly-present key is owed.
          std::vector<std::pair<K, std::uint64_t>> out;
          for (const K rk : a.range_all(key_range)) out.emplace_back(rk, 0);
          rec.end_scan(inv, 0, static_cast<std::size_t>(key_range) + 1,
                       std::move(out));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  rec.disarm();

  const History h = rec.snapshot();
  rec.reset();
  EXPECT_EQ(h.events.size() + h.scans.size(),
            static_cast<std::size_t>(nthreads) * ops_per_thread);
  EXPECT_CLEAN(check::check_history(h));
}

class LinCheckDsStress : public PmemTest {};

TEST_F(LinCheckDsStress, NatarajanBstHistoryLinearizable) {
  // Keys stay far below the BST's kInf1/kInf2 sentinel space.
  run_ds_stress<BstAdapter>(4, 1000, 40);
  if constexpr (check::kLinCheckEnabled) {
    // The lc_deref hooks in NatarajanBst::seek ran against live EBR
    // state for the whole run; any grace-period violation counted.
    EXPECT_EQ(check::Lifetime::instance().total_violations(), 0u)
        << check::Lifetime::instance().first_violation_site();
  }
}

TEST_F(LinCheckDsStress, LockedBPlusTreeHistoryLinearizable) {
  run_ds_stress<BptAdapter>(4, 800, 48);
}

// --- 3c. recorded stress: the kv store hooks -------------------------------
//
// These use the FLIT_LINCHECK recording hooks inside kv::Store, so they
// only observe events in lincheck builds and skip elsewhere.

class LinCheckStoreStress : public PmemTest {};

TEST_F(LinCheckStoreStress, ScalarOpsHistoryLinearizable) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  constexpr K kRange = 64;
  constexpr int kThreads = 4, kOps = 1200;
  kv::Store<HashedWords, Automatic> kv(4, 64);

  auto& rec = check::Recorder::instance();
  rec.reset();
  rec.arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(17u + static_cast<unsigned>(t));
      for (int i = 0; i < kOps; ++i) {
        const K k = static_cast<K>(rng() % kRange);
        const std::uint64_t salt =
            static_cast<std::uint64_t>(t) * kOps + static_cast<unsigned>(i);
        switch (rng() % 4) {
          case 0:
            kv.put(k, value_for(k, salt));
            break;
          case 1:
            kv.remove(k);
            break;
          case 2:
            (void)kv.get(k);
            break;
          default:
            (void)kv.contains(k);
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  rec.disarm();

  const History h = rec.snapshot();
  rec.reset();
  EXPECT_EQ(h.events.size(), static_cast<std::size_t>(kThreads) * kOps);
  EXPECT_CLEAN(check::check_history(h));
  EXPECT_EQ(check::Lifetime::instance().total_violations(), 0u)
      << check::Lifetime::instance().first_violation_site();
}

TEST_F(LinCheckStoreStress, BatchedOpsHistoryLinearizable) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  constexpr K kRange = 48;
  constexpr int kThreads = 4, kBatches = 250, kBatch = 4;
  kv::Store<HashedWords, Automatic> kv(4, 64);

  auto& rec = check::Recorder::instance();
  rec.reset();
  rec.arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(31u + static_cast<unsigned>(t));
      for (int b = 0; b < kBatches; ++b) {
        // Distinct keys per batch: a contiguous wrap-around window.
        const K base = static_cast<K>(rng() % kRange);
        std::vector<K> keys(kBatch);
        for (int j = 0; j < kBatch; ++j) keys[j] = (base + j) % kRange;
        switch (rng() % 3) {
          case 0: {
            std::vector<std::string> vals;
            vals.reserve(kBatch);
            std::vector<std::pair<K, std::string_view>> kvs;
            for (int j = 0; j < kBatch; ++j) {
              const std::uint64_t salt =
                  (static_cast<std::uint64_t>(t) * kBatches + b) * kBatch +
                  static_cast<unsigned>(j);
              vals.push_back(value_for(keys[j], salt));
              kvs.emplace_back(keys[j], vals.back());
            }
            kv.multi_put(kvs);
            break;
          }
          case 1:
            kv.multi_get(keys);
            break;
          default:
            kv.multi_remove(keys);
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  rec.disarm();

  const History h = rec.snapshot();
  rec.reset();
  EXPECT_EQ(h.events.size(),
            static_cast<std::size_t>(kThreads) * kBatches * kBatch);
  EXPECT_CLEAN(check::check_history(h));
  EXPECT_EQ(check::Lifetime::instance().total_violations(), 0u)
      << check::Lifetime::instance().first_violation_site();
}

TEST_F(LinCheckStoreStress, OrderedOpsAndScansHistoryLinearizable) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  constexpr K kRange = 48;
  constexpr int kThreads = 4, kOps = 700;
  kv::OrderedStore<LapWords, Automatic> kv(2, 64);

  auto& rec = check::Recorder::instance();
  rec.reset();
  rec.arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(53u + static_cast<unsigned>(t));
      for (int i = 0; i < kOps; ++i) {
        const K k = static_cast<K>(rng() % kRange);
        const std::uint64_t salt =
            static_cast<std::uint64_t>(t) * kOps + static_cast<unsigned>(i);
        switch (rng() % 5) {
          case 0:
            kv.put(k, value_for(k, salt));
            break;
          case 1:
            kv.remove(k);
            break;
          case 2:
            (void)kv.get(k);
            break;
          case 3:
            (void)kv.contains(k);
            break;
          default:
            (void)kv.scan(k, 8);
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  rec.disarm();

  const History h = rec.snapshot();
  rec.reset();
  EXPECT_GT(h.scans.size(), 0u) << "the workload must exercise scans";
  EXPECT_CLEAN(check::check_history(h));
  EXPECT_EQ(check::Lifetime::instance().total_violations(), 0u)
      << check::Lifetime::instance().first_violation_site();
}

// --- 4a. seeded-bug validation (API-driven) --------------------------------
//
// Each FLIT_LINCHECK_UNSAFE mode plants one precise bug; the checker must
// catch it with the right class, key, and (for the lifetime bug) site.
// The seeded workloads run single-threaded so the resulting history is
// deterministic and the diagnosis exact.

class LinCheckSeeded : public PmemTest {
 protected:
  void TearDown() override {
    check::set_unsafe_mode(check::UnsafeMode::kNone);
    check::Recorder::instance().reset();
    PmemTest::TearDown();
  }
};

TEST_F(LinCheckSeeded, StaleReadCaughtWithClassAndKey) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  kv::Store<HashedWords, Automatic> kv(2, 32);
  auto& rec = check::Recorder::instance();
  rec.reset();

  check::set_unsafe_mode(check::UnsafeMode::kStaleRead);
  rec.arm();
  EXPECT_TRUE(kv.put(1, "v1"));   // application deferred by the bug
  EXPECT_FALSE(kv.put(1, "v2"));  // applies v1, defers v2
  const auto got = kv.get(1);     // observes the superseded v1
  rec.disarm();
  check::set_unsafe_mode(check::UnsafeMode::kNone);
  check::unsafe_apply_pending();  // flush v2 while the store is alive

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v1") << "the seeded bug must actually manifest";
  const auto fs = check::check_history(rec.snapshot());
  rec.reset();
  ASSERT_TRUE(has_class(fs, ViolationClass::kStaleRead)) << render(fs);
  for (const Finding& f : fs) {
    if (f.cls == ViolationClass::kStaleRead) {
      EXPECT_EQ(f.key, 1);
    }
  }
}

TEST_F(LinCheckSeeded, LostUpdateCaughtWithClassAndKey) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  kv::Store<HashedWords, Automatic> kv(2, 32);
  auto& rec = check::Recorder::instance();
  rec.reset();

  check::set_unsafe_mode(check::UnsafeMode::kLostUpdate);
  rec.arm();
  EXPECT_TRUE(kv.put(2, "x"));  // reports success, never applies
  const auto got = kv.get(2);
  rec.disarm();
  check::set_unsafe_mode(check::UnsafeMode::kNone);

  EXPECT_EQ(got, std::nullopt) << "the seeded bug must actually manifest";
  const auto fs = check::check_history(rec.snapshot());
  rec.reset();
  ASSERT_TRUE(has_class(fs, ViolationClass::kLostUpdate)) << render(fs);
  for (const Finding& f : fs) {
    if (f.cls == ViolationClass::kLostUpdate) {
      EXPECT_EQ(f.key, 2);
    }
  }
}

TEST_F(LinCheckSeeded, EarlyRetireCaughtWithSiteAttribution) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  kv::Store<HashedWords, Automatic> kv(2, 32);
  auto& lt = check::Lifetime::instance();
  ASSERT_EQ(lt.total_violations(), 0u);

  kv.put(3, "a");
  check::set_unsafe_mode(check::UnsafeMode::kEarlyRetire);
  kv.put(3, "b");  // the superseded record is freed without grace
  check::set_unsafe_mode(check::UnsafeMode::kNone);

  EXPECT_EQ(kv.get(3), "b");
  EXPECT_GE(lt.violations(check::LifetimeViolation::kEarlyReclaim), 1u);
  EXPECT_NE(std::string_view(lt.first_violation_site())
                .find("kv::Record::retire[early_retire]"),
            std::string_view::npos)
      << "site was: " << lt.first_violation_site();
  lt.reset_violations();
}

// --- 4b. seeded-bug validation (env-driven, for the CI matrix) -------------
//
// CI runs this binary three times with FLIT_LINCHECK_UNSAFE set to each
// mode and --gtest_filter=LinCheckEnvSeeded.*: the test reads the mode
// from the environment and asserts the matching detection. Unset (the
// normal ctest run) it skips.

class LinCheckEnvSeeded : public PmemTest {};

TEST_F(LinCheckEnvSeeded, DetectsConfiguredBug) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  const check::UnsafeMode mode = check::unsafe_mode();
  if (mode == check::UnsafeMode::kNone) {
    GTEST_SKIP() << "FLIT_LINCHECK_UNSAFE not set";
  }

  kv::Store<HashedWords, Automatic> kv(2, 32);
  auto& rec = check::Recorder::instance();
  auto& lt = check::Lifetime::instance();
  rec.reset();

  switch (mode) {
    case check::UnsafeMode::kStaleRead: {
      rec.arm();
      kv.put(1, "v1");
      kv.put(1, "v2");
      const auto got = kv.get(1);
      rec.disarm();
      check::set_unsafe_mode(check::UnsafeMode::kNone);
      check::unsafe_apply_pending();
      ASSERT_EQ(got, "v1");
      const auto fs = check::check_history(rec.snapshot());
      EXPECT_TRUE(has_class(fs, ViolationClass::kStaleRead)) << render(fs);
      break;
    }
    case check::UnsafeMode::kLostUpdate: {
      rec.arm();
      kv.put(2, "x");
      const auto got = kv.get(2);
      rec.disarm();
      check::set_unsafe_mode(check::UnsafeMode::kNone);
      ASSERT_EQ(got, std::nullopt);
      const auto fs = check::check_history(rec.snapshot());
      EXPECT_TRUE(has_class(fs, ViolationClass::kLostUpdate)) << render(fs);
      break;
    }
    case check::UnsafeMode::kEarlyRetire: {
      kv.put(3, "a");
      kv.put(3, "b");
      check::set_unsafe_mode(check::UnsafeMode::kNone);
      EXPECT_GE(lt.violations(check::LifetimeViolation::kEarlyReclaim), 1u);
      EXPECT_NE(
          std::string_view(lt.first_violation_site()).find("early_retire"),
          std::string_view::npos);
      lt.reset_violations();
      break;
    }
    default:
      FAIL() << "unknown FLIT_LINCHECK_UNSAFE mode";
  }
  rec.reset();
}

// --- 4c. durable linearizability across crash images -----------------------
//
// Record a workload while capturing pfence-boundary persistent images
// (each tagged with the recorder tick at capture time), then reboot into
// every image and require check_durable() to accept the recovered state:
// completed-before-cut operations must survive; in-flight ones may land
// either way. Runs over the same nine configurations as the tier-1
// crash-recovery sweep.

template <class StoreT>
class LinCheckDurableSweep : public PmemTest {
 protected:
  // A small pool keeps the per-image clones cheap (a dozen full-region
  // snapshots are held at once).
  static constexpr std::size_t kSmallPool = std::size_t{4} << 20;

  void SetUp() override {
    PmemTest::SetUp();
    pmem::SimMemory::instance().clear_regions();
    pmem::Pool::instance().reinit(kSmallPool);
    recl::Ebr::instance().set_reclaim(false);  // no reuse across a crash
    pmem::Pool::instance().register_with_sim();
    pmem::set_backend(pmem::Backend::kSimCrash);
  }
  void TearDown() override {
    pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);
    recl::Ebr::instance().set_reclaim(true);
    check::Recorder::instance().reset();
    PmemTest::TearDown();
  }
};

using CrashConfigs = ::testing::Types<
    kv::Store<HashedWords, Automatic>, kv::Store<HashedWords, NVTraverse>,
    kv::Store<HashedWords, Manual>, kv::Store<AdjacentWords, Automatic>,
    kv::Store<PerLineWords, Automatic>, kv::Store<LapWords, Automatic>,
    kv::Store<LapWords, NVTraverse>, kv::OrderedStore<HashedWords, Manual>,
    kv::OrderedStore<LapWords, Automatic>>;

TYPED_TEST_SUITE(LinCheckDurableSweep, CrashConfigs);

TYPED_TEST(LinCheckDurableSweep, CrashImagesAreDurablyLinearizable) {
  if (!check::kLinCheckEnabled) GTEST_SKIP() << "needs -DFLIT_LINCHECK=ON";
  constexpr K kRange = 24;

  auto& rec = check::Recorder::instance();
  rec.reset();

  TypeParam kv(2, 32);
  auto* sb = kv.superblock();

  // Sparse image capture: every 5th pfence, up to 12 images, each tagged
  // with the tick cut at capture time (ops with inv < cut were invoked
  // before this persistent state existed).
  struct Ctx {
    std::uint64_t fence_count = 0;
    bool armed = false;
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> images;
    static void hook(void* p) {
      auto* c = static_cast<Ctx*>(p);
      if (!c->armed) return;
      if (++c->fence_count % 5 == 0 && c->images.size() < 12) {
        c->images.emplace_back(check::Recorder::instance().now(),
                               pmem::SimMemory::instance().clone_shadow(0));
      }
    }
  };
  Ctx ctx;
  pmem::SimMemory::instance().set_pfence_hook(&Ctx::hook, &ctx);

  rec.arm();
  ctx.armed = true;
  std::mt19937_64 rng(0x5eedu);
  for (int i = 0; i < 140; ++i) {
    const K k = static_cast<K>(rng() % kRange);
    if (rng() % 4 == 0) {
      kv.remove(k);
    } else {
      kv.put(k, value_for(k, static_cast<std::uint64_t>(i)));
    }
  }
  ctx.armed = false;
  rec.disarm();
  pmem::SimMemory::instance().set_pfence_hook(nullptr, nullptr);

  const History h = rec.snapshot();
  rec.reset();
  ASSERT_FALSE(ctx.images.empty()) << "the workload must cross pfences";

  const std::vector<std::byte> final_state =
      pmem::SimMemory::instance().clone_volatile(0);
  for (const auto& [cut, image] : ctx.images) {
    pmem::SimMemory::instance().overwrite_volatile(image, 0);
    {
      TypeParam recovered = TypeParam::recover(sb);
      std::map<K, std::uint64_t> contents;
      for (K k = 0; k < kRange; ++k) {
        // The recorder is disarmed, so these probes leave no events.
        if (const auto got = recovered.get(k)) {
          contents[k] = check::value_id(*got);
        }
      }
      const auto fs = check::check_durable(h, cut, contents);
      EXPECT_CLEAN(fs);
    }
    pmem::SimMemory::instance().overwrite_volatile(final_state, 0);
    if (::testing::Test::HasFailure()) break;  // first bad image is enough
  }
}

}  // namespace
}  // namespace flit
