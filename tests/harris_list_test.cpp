// Unit + concurrency tests for the Harris linked list.
#include "ds/harris_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using List = HarrisList<std::int64_t, std::int64_t, HashedWords, Automatic>;

class HarrisListTest : public PmemTest {};

TEST_F(HarrisListTest, EmptyListContainsNothing) {
  List l;
  EXPECT_FALSE(l.contains(0));
  EXPECT_FALSE(l.contains(42));
  EXPECT_EQ(l.size(), 0u);
}

TEST_F(HarrisListTest, InsertThenContains) {
  List l;
  EXPECT_TRUE(l.insert(5, 50));
  EXPECT_TRUE(l.contains(5));
  EXPECT_FALSE(l.contains(4));
  EXPECT_EQ(l.size(), 1u);
}

TEST_F(HarrisListTest, DuplicateInsertFails) {
  List l;
  EXPECT_TRUE(l.insert(5, 50));
  EXPECT_FALSE(l.insert(5, 51));
  EXPECT_EQ(l.find(5).value(), 50);
}

TEST_F(HarrisListTest, RemovePresentAndAbsent) {
  List l;
  EXPECT_TRUE(l.insert(1, 10));
  EXPECT_TRUE(l.remove(1));
  EXPECT_FALSE(l.remove(1));
  EXPECT_FALSE(l.contains(1));
}

TEST_F(HarrisListTest, FindReturnsValue) {
  List l;
  l.insert(7, 700);
  EXPECT_EQ(l.find(7).value(), 700);
  EXPECT_FALSE(l.find(8).has_value());
}

TEST_F(HarrisListTest, OrderedInsertionsAllVisible) {
  List l;
  for (std::int64_t k = 0; k < 200; ++k) EXPECT_TRUE(l.insert(k, k * 2));
  for (std::int64_t k = 0; k < 200; ++k) {
    EXPECT_TRUE(l.contains(k)) << k;
    EXPECT_EQ(l.find(k).value(), k * 2);
  }
  EXPECT_EQ(l.size(), 200u);
}

TEST_F(HarrisListTest, ReverseAndShuffledInsertions) {
  List l;
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 199; k >= 0; --k) keys.push_back(k * 3);
  for (auto k : keys) EXPECT_TRUE(l.insert(k, k));
  for (auto k : keys) EXPECT_TRUE(l.contains(k));
  EXPECT_FALSE(l.contains(1));  // not a multiple of 3
}

TEST_F(HarrisListTest, InterleavedInsertRemove) {
  List l;
  for (std::int64_t k = 0; k < 100; ++k) l.insert(k, k);
  for (std::int64_t k = 0; k < 100; k += 2) EXPECT_TRUE(l.remove(k));
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(l.contains(k), k % 2 == 1) << k;
  }
  EXPECT_EQ(l.size(), 50u);
}

TEST_F(HarrisListTest, SentinelKeysAreReserved) {
  List l;
  // Min/max keys back the sentinels; user keys must stay strictly inside.
  EXPECT_TRUE(l.insert(List::kMinKey + 1, 1));
  EXPECT_TRUE(l.insert(List::kMaxKey - 1, 2));
  EXPECT_TRUE(l.contains(List::kMinKey + 1));
  EXPECT_TRUE(l.contains(List::kMaxKey - 1));
}

TEST_F(HarrisListTest, ConcurrentDisjointInserts) {
  List l;
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&l, t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(l.insert(t * kPerThread + i, i));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(l.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::int64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(l.contains(k)) << k;
  }
}

TEST_F(HarrisListTest, ConcurrentInsertRemoveSameKeysBalances) {
  List l;
  constexpr int kPairs = 4;
  constexpr std::int64_t kRange = 64;
  constexpr int kIters = 4'000;
  std::vector<std::thread> ts;
  std::atomic<std::int64_t> net{0};
  for (int t = 0; t < 2 * kPairs; ++t) {
    ts.emplace_back([&l, &net, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 77);
      std::int64_t local = 0;
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng() % kRange);
        if (t % 2 == 0) {
          if (l.insert(k, k)) ++local;
        } else {
          if (l.remove(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(l.size(), static_cast<std::size_t>(net.load()))
      << "successful inserts minus removes must equal the final size";
}

TEST_F(HarrisListTest, ConcurrentMixedWorkloadKeepsKeysInRange) {
  List l;
  constexpr int kThreads = 6;
  constexpr std::int64_t kRange = 128;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&l, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 13 + 1);
      for (int i = 0; i < 3'000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng() % kRange);
        switch (rng() % 3) {
          case 0:
            l.insert(k, k);
            break;
          case 1:
            l.remove(k);
            break;
          default:
            l.contains(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_LE(l.size(), static_cast<std::size_t>(kRange));
}

TEST_F(HarrisListTest, RecoverHandleSeesSameContent) {
  List l;
  for (std::int64_t k = 0; k < 50; ++k) l.insert(k, k + 1000);
  List view = List::recover(l.head(), l.tail());
  for (std::int64_t k = 0; k < 50; ++k) {
    EXPECT_TRUE(view.contains(k));
    EXPECT_EQ(view.find(k).value(), k + 1000);
  }
  EXPECT_EQ(view.size(), 50u);
  // `view` is non-owning; destroying it must not free nodes (l's dtor will).
}

}  // namespace
}  // namespace flit::ds
