// Property tests: every (structure × durability method × word
// implementation) combination must behave as a linearizable set.
//
// Single-threaded runs are checked op-by-op against std::set; concurrent
// runs are checked with conservation invariants. This is the paper's
// implicit claim that FliT instrumentation never changes volatile
// semantics (P-V Interface, Condition 1).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "ds/harris_list.hpp"
#include "ds/hash_table.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/skiplist.hpp"
#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;

// ---------------------------------------------------------------------------
// Config plumbing: a Config names a concrete set type and how to build it.
// ---------------------------------------------------------------------------

template <class SetT>
struct MakeDefault {
  static SetT make() { return SetT(); }
};
template <class SetT>
struct MakeBuckets {
  static SetT make() { return SetT(256); }
};

template <class SetT, template <class> class Maker, int RandomSeed>
struct Config {
  using Set = SetT;
  static Set make() { return Maker<SetT>::make(); }
  static constexpr int seed = RandomSeed;
};

template <class Words, class Method>
using ListOf = HarrisList<std::int64_t, std::int64_t, Words, Method>;
template <class Words, class Method>
using BstOf = NatarajanBst<std::int64_t, std::int64_t, Words, Method>;
template <class Words, class Method>
using SkipOf = SkipList<std::int64_t, std::int64_t, Words, Method>;
template <class Words, class Method>
using TableOf = HashTable<std::int64_t, std::int64_t, Words, Method>;

using AllConfigs = ::testing::Types<
    // Harris list: methods × {flit-HT, adjacent}, plus plain / volatile /
    // link-and-persist under Automatic.
    Config<ListOf<HashedWords, Automatic>, MakeDefault, 1>,
    Config<ListOf<HashedWords, NVTraverse>, MakeDefault, 2>,
    Config<ListOf<HashedWords, Manual>, MakeDefault, 3>,
    Config<ListOf<AdjacentWords, Automatic>, MakeDefault, 4>,
    Config<ListOf<AdjacentWords, Manual>, MakeDefault, 5>,
    Config<ListOf<PlainWords, Automatic>, MakeDefault, 6>,
    Config<ListOf<VolatileWords, Automatic>, MakeDefault, 7>,
    Config<ListOf<LapWords, Automatic>, MakeDefault, 8>,
    Config<ListOf<LapWords, Manual>, MakeDefault, 9>,
    // BST (no link-and-persist possible: uses both pointer bits).
    Config<BstOf<HashedWords, Automatic>, MakeDefault, 10>,
    Config<BstOf<HashedWords, NVTraverse>, MakeDefault, 11>,
    Config<BstOf<HashedWords, Manual>, MakeDefault, 12>,
    Config<BstOf<AdjacentWords, Automatic>, MakeDefault, 13>,
    Config<BstOf<PerLineWords, Automatic>, MakeDefault, 14>,
    Config<BstOf<PlainWords, Manual>, MakeDefault, 15>,
    Config<BstOf<VolatileWords, Automatic>, MakeDefault, 16>,
    // Skiplist.
    Config<SkipOf<HashedWords, Automatic>, MakeDefault, 17>,
    Config<SkipOf<HashedWords, NVTraverse>, MakeDefault, 18>,
    Config<SkipOf<HashedWords, Manual>, MakeDefault, 19>,
    Config<SkipOf<AdjacentWords, Automatic>, MakeDefault, 20>,
    Config<SkipOf<LapWords, Automatic>, MakeDefault, 21>,
    // Hash table.
    Config<TableOf<HashedWords, Automatic>, MakeBuckets, 22>,
    Config<TableOf<HashedWords, NVTraverse>, MakeBuckets, 23>,
    Config<TableOf<HashedWords, Manual>, MakeBuckets, 24>,
    Config<TableOf<AdjacentWords, Automatic>, MakeBuckets, 25>,
    Config<TableOf<LapWords, Manual>, MakeBuckets, 26>,
    Config<TableOf<PerLineWords, NVTraverse>, MakeBuckets, 27>>;

template <class C>
class SetPropertyTest : public PmemTest {};
TYPED_TEST_SUITE(SetPropertyTest, AllConfigs);

TYPED_TEST(SetPropertyTest, MatchesStdSetUnderRandomOps) {
  auto set = TypeParam::make();
  std::set<std::int64_t> oracle;
  std::mt19937_64 rng(static_cast<std::uint64_t>(TypeParam::seed));
  constexpr std::int64_t kRange = 96;

  for (int i = 0; i < 6'000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng() % kRange);
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert
        const bool expect = oracle.insert(k).second;
        ASSERT_EQ(set.insert(k, k), expect) << "op " << i << " key " << k;
        break;
      }
      case 2: {  // remove
        const bool expect = oracle.erase(k) > 0;
        ASSERT_EQ(set.remove(k), expect) << "op " << i << " key " << k;
        break;
      }
      default: {  // contains
        ASSERT_EQ(set.contains(k), oracle.count(k) > 0)
            << "op " << i << " key " << k;
      }
    }
  }
  EXPECT_EQ(set.size(), oracle.size());
  for (std::int64_t k = 0; k < kRange; ++k) {
    ASSERT_EQ(set.contains(k), oracle.count(k) > 0) << k;
  }
}

TYPED_TEST(SetPropertyTest, ConcurrentNetInsertionsMatchSize) {
  auto set = TypeParam::make();
  constexpr int kThreads = 4;
  constexpr std::int64_t kRange = 128;
  std::atomic<std::int64_t> net{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&set, &net, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(
          TypeParam::seed * 1000 + t));
      std::int64_t local = 0;
      for (int i = 0; i < 2'000; ++i) {
        const std::int64_t k = static_cast<std::int64_t>(rng() % kRange);
        if (rng() % 2 == 0) {
          if (set.insert(k, k)) ++local;
        } else {
          if (set.remove(k)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(set.size(), static_cast<std::size_t>(net.load()));
}

TYPED_TEST(SetPropertyTest, InsertedKeysVisibleToOtherThreads) {
  auto set = TypeParam::make();
  constexpr std::int64_t kKeys = 256;
  std::atomic<std::int64_t> published{-1};
  std::atomic<bool> ok{true};
  std::thread reader([&] {
    std::int64_t seen = -1;
    while (seen < kKeys - 1) {
      const std::int64_t p = published.load(std::memory_order_acquire);
      for (std::int64_t k = seen + 1; k <= p; ++k) {
        if (!set.contains(k)) {
          ok.store(false);
          return;
        }
      }
      seen = p;
    }
  });
  for (std::int64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(set.insert(k, k));
    published.store(k, std::memory_order_release);
  }
  reader.join();
  EXPECT_TRUE(ok.load()) << "a completed insert must be visible to readers";
}

}  // namespace
}  // namespace flit::ds
