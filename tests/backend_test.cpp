// Unit tests for the pwb/pfence backend dispatch and CPU feature detection.
#include "pmem/backend.hpp"

#include <gtest/gtest.h>

#include "pmem/cpu_features.hpp"
#include "support/test_common.hpp"

namespace flit::pmem {
namespace {

class BackendTest : public flit::test::PmemTest {};

TEST_F(BackendTest, SetAndGetBackend) {
  for (Backend b : {Backend::kNoOp, Backend::kHardware, Backend::kSimLatency,
                    Backend::kSimCrash}) {
    set_backend(b);
    EXPECT_EQ(backend(), b);
  }
}

TEST_F(BackendTest, BackendScopeRestores) {
  set_backend(Backend::kNoOp);
  {
    BackendScope scope(Backend::kSimCrash);
    EXPECT_EQ(backend(), Backend::kSimCrash);
    {
      BackendScope inner(Backend::kHardware);
      EXPECT_EQ(backend(), Backend::kHardware);
    }
    EXPECT_EQ(backend(), Backend::kSimCrash);
  }
  EXPECT_EQ(backend(), Backend::kNoOp);
}

TEST_F(BackendTest, EveryBackendCountsInstructions) {
  int x = 0;
  for (Backend b : {Backend::kNoOp, Backend::kHardware, Backend::kSimLatency,
                    Backend::kSimCrash}) {
    BackendScope scope(b);
    const StatsSnapshot before = stats_snapshot();
    pwb(&x);
    pwb(&x);
    pfence();
    const StatsSnapshot delta = stats_snapshot() - before;
    EXPECT_EQ(delta.pwbs, 2u) << to_string(b);
    EXPECT_EQ(delta.pfences, 1u) << to_string(b);
  }
}

TEST_F(BackendTest, HardwareBackendExecutesWithoutFaulting) {
  // Whatever instruction CPUID picked (possibly none) must be callable.
  BackendScope scope(Backend::kHardware);
  alignas(64) std::uint64_t buf[16] = {};
  for (auto& w : buf) {
    w = 1;
    pwb(&w);
  }
  pfence();
  SUCCEED();
}

TEST_F(BackendTest, SimCrashBackendRoutesToSimMemory) {
  alignas(64) static std::uint64_t region[8] = {};
  region[0] = 0;
  SimMemory::instance().register_region(region, sizeof(region));
  BackendScope scope(Backend::kSimCrash);

  region[0] = 77;
  pwb(&region[0]);
  pfence();
  SimMemory::instance().crash();
  EXPECT_EQ(region[0], 77u);
}

TEST_F(BackendTest, PersistRangeCoversAllSpannedLines) {
  alignas(64) static std::byte region[512];
  for (auto& b : region) b = std::byte{0};
  SimMemory::instance().register_region(region, sizeof(region));
  BackendScope scope(Backend::kSimCrash);

  // Dirty a 200-byte range starting mid-line; persist_range must catch the
  // partially covered first and last lines too.
  for (int i = 30; i < 230; ++i) region[i] = std::byte{0xEE};
  persist_range(&region[30], 200);
  SimMemory::instance().crash();
  for (int i = 30; i < 230; ++i) {
    ASSERT_EQ(region[i], std::byte{0xEE}) << "offset " << i;
  }
}

TEST_F(BackendTest, SimLatencyDelaysAreConfigurable) {
  BackendScope scope(Backend::kSimLatency);
  set_sim_latency(0, 0);
  int x = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) pwb(&x);
  const auto fast = std::chrono::steady_clock::now() - t0;

  set_sim_latency(2000, 0);  // 2us per pwb
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; ++i) pwb(&x);
  const auto slow = std::chrono::steady_clock::now() - t1;
  EXPECT_GT(slow, fast) << "configured pwb delay must be observable";
  EXPECT_GT(std::chrono::duration<double>(slow).count(), 0.001);
  set_sim_latency(0, 0);
}

TEST(CpuFeatures, DetectionIsStableAndNamed) {
  const FlushInstruction a = detect_flush_instruction();
  const FlushInstruction b = detect_flush_instruction();
  EXPECT_EQ(a, b);
  EXPECT_STRNE(to_string(a), "unknown");
}

TEST(BackendNames, AllNamed) {
  EXPECT_STREQ(to_string(Backend::kNoOp), "noop");
  EXPECT_STREQ(to_string(Backend::kHardware), "hardware");
  EXPECT_STREQ(to_string(Backend::kSimLatency), "sim-latency");
  EXPECT_STREQ(to_string(Backend::kSimCrash), "sim-crash");
}

}  // namespace
}  // namespace flit::pmem
