// test_common.hpp — shared fixtures/helpers for the FliT test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "pmem/backend.hpp"
#include "pmem/pool.hpp"
#include "pmem/sim_memory.hpp"
#include "recl/ebr.hpp"

namespace flit::test {

/// Fixture that gives each test a fresh small persistent pool and a clean
/// simulator, with the backend left in kNoOp (tests opt into other
/// backends via BackendScope).
class PmemTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPoolBytes = std::size_t{32} << 20;  // 32 MiB

  void SetUp() override {
    pmem::SimMemory::instance().clear_regions();
    pmem::Pool::instance().reinit(kPoolBytes);
    pmem::set_backend(pmem::Backend::kNoOp);
    pmem::set_sim_latency(0, 0);
    recl::Ebr::instance().set_reclaim(true);
  }

  void TearDown() override {
    recl::Ebr::instance().drain_all();
    pmem::SimMemory::instance().clear_regions();
    pmem::set_backend(pmem::Backend::kNoOp);
  }
};

/// Deterministic uniform int helper.
inline std::int64_t rand_key(std::mt19937_64& rng, std::int64_t range) {
  return static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(range));
}

}  // namespace flit::test
