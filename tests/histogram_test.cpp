// Unit tests for the log2-linear latency histogram (bench_util/
// histogram.hpp): slot mapping round-trips, bounded relative error at
// every scale, percentile correctness against exact order statistics,
// and merge.
#include "bench_util/histogram.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace flit::bench {
namespace {

TEST(Histogram, SmallValuesAreExact) {
  // Below 2*kSub every value has its own slot.
  for (std::uint64_t v = 0; v < 2 * LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::slot(v), v);
    EXPECT_EQ(LatencyHistogram::slot_lo(v), v);
    EXPECT_EQ(LatencyHistogram::slot_hi(v), v);
  }
}

TEST(Histogram, SlotBoundsRoundTrip) {
  // Every probed value must land in a slot whose [lo, hi] contains it.
  std::vector<std::uint64_t> probes;
  for (unsigned shift = 0; shift < 63; ++shift) {
    const std::uint64_t base = 1ull << shift;
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
    probes.push_back(2 * base - 1);
  }
  probes.push_back(~0ull);
  for (const std::uint64_t v : probes) {
    const std::size_t s = LatencyHistogram::slot(v);
    ASSERT_LT(s, LatencyHistogram::kSlots) << v;
    EXPECT_LE(LatencyHistogram::slot_lo(s), v) << v;
    EXPECT_GE(LatencyHistogram::slot_hi(s), v) << v;
  }
}

TEST(Histogram, SlotsArePartition) {
  // Consecutive slots tile the value space with no gaps or overlaps.
  for (std::size_t s = 0; s + 1 < LatencyHistogram::kSlots; ++s) {
    if (LatencyHistogram::slot_hi(s) == ~0ull) break;  // top of the range
    EXPECT_EQ(LatencyHistogram::slot_hi(s) + 1,
              LatencyHistogram::slot_lo(s + 1))
        << s;
  }
}

TEST(Histogram, RelativeErrorBounded) {
  // Bucket width / value <= 1/kSub above the exact range: the promised
  // ~6% quantization bound.
  for (unsigned shift = 5; shift < 62; ++shift) {
    const std::uint64_t v = (1ull << shift) + (1ull << (shift - 1));
    const std::size_t s = LatencyHistogram::slot(v);
    const double width = static_cast<double>(LatencyHistogram::slot_hi(s) -
                                             LatencyHistogram::slot_lo(s));
    EXPECT_LE(width / static_cast<double>(v),
              1.0 / static_cast<double>(LatencyHistogram::kSub))
        << v;
  }
}

TEST(Histogram, PercentilesTrackExactOrderStatistics) {
  LatencyHistogram h;
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> samples;
  // Log-uniform latencies, ~ns to ~100ms scale.
  for (int i = 0; i < 100'000; ++i) {
    const double e = std::uniform_real_distribution<double>(1.0, 8.0)(rng);
    const auto v = static_cast<std::uint64_t>(std::pow(10.0, e));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.max(), samples.back());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const auto approx = static_cast<double>(h.percentile(q));
    EXPECT_NEAR(approx, static_cast<double>(exact),
                static_cast<double>(exact) * 0.10)
        << "q=" << q;
  }
}

TEST(Histogram, PercentileEdgeCases) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  h.record(7);
  EXPECT_EQ(h.percentile(0.0), 7u);
  EXPECT_EQ(h.percentile(0.5), 7u);
  EXPECT_EQ(h.percentile(1.0), 7u);
  // The reported quantile never exceeds the max actually seen, even when
  // the bucket midpoint would.
  LatencyHistogram g;
  g.record(1'000'000);
  EXPECT_LE(g.percentile(1.0), 1'000'000u);
}

TEST(Histogram, MergeAddsBucketwise) {
  LatencyHistogram a, b;
  for (std::uint64_t v = 1; v <= 1000; ++v) a.record(v);
  for (std::uint64_t v = 1001; v <= 2000; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_EQ(a.max(), 2000u);
  const std::uint64_t p50 = a.percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 1000.0, 1000.0 / 16.0);
}

}  // namespace
}  // namespace flit::bench
