// Durability-mode tests for kv::Store (never / everysec / always):
// mode selection and parsing, the kAlways note_write_commit() hook
// checkpointing per acknowledged write batch, the kEverySec background
// flusher running on its interval and stopping on mode change / close,
// pool-backed stores treating every mode as a no-op, and data written
// under each mode surviving a reopen.
#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <unistd.h>

#include "pmem/file_region.hpp"
#include "support/test_common.hpp"

namespace flit::kv {
namespace {

using flit::test::PmemTest;
using KvStore = Store<HashedWords, NVTraverse>;
using std::chrono::milliseconds;

class KvDurabilityTest : public PmemTest {
 protected:
  static std::string temp_path() {
    return "/tmp/flit_kv_durability_test_" + std::to_string(::getpid()) +
           ".pmem";
  }

  void TearDown() override {
    pmem::FileRegion::destroy(temp_path());
    PmemTest::TearDown();
  }

  static KvStore open_file_store() {
    return KvStore::open(temp_path(), 16 << 20, 2, 64);
  }
};

TEST_F(KvDurabilityTest, ParseAndToString) {
  EXPECT_EQ(parse_durability_mode("never"), DurabilityMode::kNever);
  EXPECT_EQ(parse_durability_mode("everysec"), DurabilityMode::kEverySec);
  EXPECT_EQ(parse_durability_mode("always"), DurabilityMode::kAlways);
  EXPECT_FALSE(parse_durability_mode("ALWAYS").has_value());
  EXPECT_FALSE(parse_durability_mode("").has_value());
  EXPECT_STREQ(to_string(DurabilityMode::kNever), "never");
  EXPECT_STREQ(to_string(DurabilityMode::kEverySec), "everysec");
  EXPECT_STREQ(to_string(DurabilityMode::kAlways), "always");
}

TEST_F(KvDurabilityTest, DefaultIsNeverAndHookIsFree) {
  pmem::FileRegion::destroy(temp_path());
  KvStore kv = open_file_store();
  EXPECT_EQ(kv.durability_mode(), DurabilityMode::kNever);
  kv.put(1, "a");
  kv.note_write_commit();
  kv.note_write_commit();
  EXPECT_EQ(kv.checkpoints(), 0u) << "kNever: the hook must be a no-op";
  kv.checkpoint();
  EXPECT_EQ(kv.checkpoints(), 1u) << "explicit checkpoint still works";
  kv.close();
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
}

TEST_F(KvDurabilityTest, AlwaysCheckpointsPerAcknowledgedBatch) {
  pmem::FileRegion::destroy(temp_path());
  KvStore kv = open_file_store();
  kv.set_durability_mode(DurabilityMode::kAlways);
  EXPECT_EQ(kv.durability_mode(), DurabilityMode::kAlways);
  const std::uint64_t before = kv.checkpoints();
  for (int i = 0; i < 5; ++i) {
    std::string v = "v";
    v += std::to_string(i);
    kv.put(i, v);
    kv.note_write_commit();  // what the server does per readiness event
  }
  EXPECT_EQ(kv.checkpoints(), before + 5);
  kv.close();
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  // Everything acknowledged under kAlways is there after reopen.
  KvStore kv2 = open_file_store();
  for (int i = 0; i < 5; ++i) {
    std::string want = "v";
    want += std::to_string(i);
    const auto v = kv2.get(i);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, want);
  }
  kv2.close();
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
}

TEST_F(KvDurabilityTest, EverySecFlusherRunsAndStops) {
  pmem::FileRegion::destroy(temp_path());
  KvStore kv = open_file_store();
  // Short interval so the test observes multiple flushes quickly; the
  // production default is 1 s.
  kv.set_durability_mode(DurabilityMode::kEverySec, milliseconds(5));
  kv.put(1, "tick");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (kv.checkpoints() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_GE(kv.checkpoints(), 2u) << "flusher never ran";

  // Switching back to kNever stops the flusher: the counter freezes.
  kv.set_durability_mode(DurabilityMode::kNever);
  const std::uint64_t frozen = kv.checkpoints();
  std::this_thread::sleep_for(milliseconds(40));
  EXPECT_EQ(kv.checkpoints(), frozen);
  kv.close();
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
}

TEST_F(KvDurabilityTest, CloseStopsTheFlusher) {
  pmem::FileRegion::destroy(temp_path());
  KvStore kv = open_file_store();
  kv.set_durability_mode(DurabilityMode::kEverySec, milliseconds(5));
  kv.put(7, "x");
  kv.close();  // must join the flusher; no use-after-close flushes
  std::this_thread::sleep_for(milliseconds(25));
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);

  KvStore kv2 = open_file_store();
  EXPECT_EQ(kv2.get(7), "x");
  kv2.close();
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
}

TEST_F(KvDurabilityTest, PoolBackedModesAreNoOps) {
  KvStore kv(2, 64);
  EXPECT_FALSE(kv.file_backed());
  kv.set_durability_mode(DurabilityMode::kAlways);
  kv.put(1, "a");
  kv.note_write_commit();
  EXPECT_EQ(kv.checkpoints(), 0u);
  kv.set_durability_mode(DurabilityMode::kEverySec, milliseconds(5));
  std::this_thread::sleep_for(milliseconds(25));
  EXPECT_EQ(kv.checkpoints(), 0u) << "no backing file: nothing to msync";
  kv.checkpoint();
  EXPECT_EQ(kv.checkpoints(), 0u);
}

TEST_F(KvDurabilityTest, ModeSurvivesAMove) {
  pmem::FileRegion::destroy(temp_path());
  KvStore kv = open_file_store();
  kv.set_durability_mode(DurabilityMode::kEverySec, milliseconds(5));
  // Moving the handle (open() itself returns by value) must retarget the
  // flusher, not leave it flushing a dead store.
  KvStore moved = std::move(kv);
  EXPECT_EQ(moved.durability_mode(), DurabilityMode::kEverySec);
  moved.put(3, "moved");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (moved.checkpoints() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_GE(moved.checkpoints(), 2u);
  moved.close();
  pmem::Pool::instance().reinit(PmemTest::kPoolBytes);
}

}  // namespace
}  // namespace flit::kv
