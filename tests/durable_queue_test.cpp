// Unit + concurrency + crash tests for the durable queue (Friedman-style).
#include "ds/durable_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "support/test_common.hpp"

namespace flit::ds {
namespace {

using flit::test::PmemTest;
using Queue = DurableQueue<std::int64_t, HashedWords>;

class DurableQueueTest : public PmemTest {};

TEST_F(DurableQueueTest, EmptyDequeueReturnsNothing) {
  Queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST_F(DurableQueueTest, FifoOrder) {
  Queue q;
  for (std::int64_t i = 0; i < 100; ++i) q.enqueue(i);
  EXPECT_FALSE(q.empty());
  for (std::int64_t i = 0; i < 100; ++i) {
    auto v = q.dequeue(0);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST_F(DurableQueueTest, InterleavedEnqueueDequeue) {
  Queue q;
  q.enqueue(1);
  q.enqueue(2);
  EXPECT_EQ(q.dequeue(0).value(), 1);
  q.enqueue(3);
  EXPECT_EQ(q.dequeue(0).value(), 2);
  EXPECT_EQ(q.dequeue(0).value(), 3);
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST_F(DurableQueueTest, ConcurrentProducersConsumers) {
  Queue q;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::int64_t kPerProducer = 5'000;
  std::atomic<std::int64_t> consumed_sum{0};
  std::atomic<std::int64_t> consumed_count{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&q, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&, c] {
      for (;;) {
        // Order matters: only an empty dequeue that STARTED after
        // done_producing was observed is final — read the flag first.
        // (Reading it after an empty dequeue races with the last enqueue;
        // and a second "confirming" dequeue must not drop a won value.)
        const bool done = done_producing.load();
        auto v = q.dequeue(c);
        if (v.has_value()) {
          consumed_sum.fetch_add(*v);
          consumed_count.fetch_add(1);
        } else if (done) {
          return;
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) ts[static_cast<std::size_t>(p)].join();
  done_producing.store(true);
  for (int c = 0; c < kConsumers; ++c) {
    ts[static_cast<std::size_t>(kProducers + c)].join();
  }
  const std::int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
  EXPECT_TRUE(q.empty());
}

TEST_F(DurableQueueTest, RecoverySeesEnqueuedButNotDequeuedItems) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  Queue q;
  pmem::SimMemory::instance().persist_all();

  for (std::int64_t i = 0; i < 10; ++i) q.enqueue(i);
  EXPECT_EQ(q.dequeue(1).value(), 0);
  EXPECT_EQ(q.dequeue(1).value(), 1);
  EXPECT_EQ(q.dequeue(1).value(), 2);

  pmem::SimMemory::instance().crash();
  Queue rec = Queue::recover(q.anchor());
  // Items 3..9 were enqueued (persisted) and never claimed.
  for (std::int64_t i = 3; i < 10; ++i) {
    auto v = rec.dequeue(2);
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(rec.dequeue(2).has_value());
}

TEST_F(DurableQueueTest, CrashMidStreamNeverResurrectsClaimedItems) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  Queue q;
  pmem::SimMemory::instance().persist_all();

  for (std::int64_t i = 0; i < 50; ++i) q.enqueue(i);
  std::vector<std::int64_t> taken;
  for (int i = 0; i < 20; ++i) taken.push_back(q.dequeue(7).value());

  pmem::SimMemory::instance().crash();
  Queue rec = Queue::recover(q.anchor());
  std::vector<std::int64_t> remaining;
  while (auto v = rec.dequeue(8)) remaining.push_back(*v);

  // No claimed item may reappear, and nothing may be lost: the claimed set
  // and the recovered set partition [0, 50).
  std::vector<std::int64_t> all = taken;
  all.insert(all.end(), remaining.begin(), remaining.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 50u);
  for (std::int64_t i = 0; i < 50; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

// --- detectability (paper §7) -----------------------------------------------

TEST_F(DurableQueueTest, EnqueueDetectabilityAfterCrash) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  Queue q;
  pmem::SimMemory::instance().persist_all();

  // Thread 3 performs enqueue ops with sequence numbers 0..4.
  for (std::int64_t seq = 0; seq < 5; ++seq) {
    q.enqueue_tagged(100 + seq, /*tid=*/3, seq);
  }
  pmem::SimMemory::instance().crash();

  // After recovery thread 3 can detect exactly which of its ops completed.
  for (std::int64_t seq = 0; seq < 5; ++seq) {
    EXPECT_TRUE(Queue::was_enqueued(q.anchor(), 3, seq)) << seq;
  }
  EXPECT_FALSE(Queue::was_enqueued(q.anchor(), 3, 5));   // never attempted
  EXPECT_FALSE(Queue::was_enqueued(q.anchor(), 4, 0));   // other thread
}

TEST_F(DurableQueueTest, DequeueDetectabilityAfterCrash) {
  pmem::Pool::instance().register_with_sim();
  pmem::BackendScope scope(pmem::Backend::kSimCrash);
  Queue q;
  pmem::SimMemory::instance().persist_all();

  for (std::int64_t i = 0; i < 6; ++i) q.enqueue_tagged(10 * i, 1, i);
  // Thread 2 dequeues with sequence numbers 0 and 1.
  const auto v0 = q.dequeue(Queue::pack_claim(2, 0));
  const auto v1 = q.dequeue(Queue::pack_claim(2, 1));
  ASSERT_TRUE(v0 && v1);

  pmem::SimMemory::instance().crash();
  // Recovery: thread 2's claims are recoverable with their values...
  EXPECT_EQ(Queue::claimed_value(q.anchor(), 2, 0), v0);
  EXPECT_EQ(Queue::claimed_value(q.anchor(), 2, 1), v1);
  // ...and an op it never performed is provably absent.
  EXPECT_FALSE(Queue::claimed_value(q.anchor(), 2, 2).has_value());

  // The remaining items are exactly the unclaimed ones.
  Queue rec = Queue::recover(q.anchor());
  std::vector<std::int64_t> rest;
  while (auto v = rec.dequeue(Queue::pack_claim(3, 0))) rest.push_back(*v);
  EXPECT_EQ(rest.size(), 4u);
}

TEST_F(DurableQueueTest, PackClaimRoundTrips) {
  const std::int64_t token = Queue::pack_claim(37, 123456);
  EXPECT_EQ(Queue::claim_tid(token), 37);
  EXPECT_EQ(Queue::claim_seq(token), 123456);
  EXPECT_NE(token, Queue::kUnclaimed);
}

}  // namespace
}  // namespace flit::ds
