# Resolve GoogleTest, defining the GTest::gtest_main target, in order of
# preference:
#
#  1. When sanitizers are on and the distro ships the googletest sources
#     (Debian/Ubuntu libgtest-dev => /usr/src/googletest), build them in-tree
#     so gtest carries the same -fsanitize instrumentation as the tests.
#  2. An installed binary package via find_package(GTest) — but never for
#     sanitizer builds: linking uninstrumented gtest into instrumented tests
#     yields spurious TSan/ASan reports, so sanitizer builds without the
#     distro sources fall through to the (instrumented) fetch instead.
#  3. FetchContent from GitHub (needs network; pinned release tarball so CI
#     can cache it).
include_guard(GLOBAL)

set(FLIT_GTEST_SOURCE_DIR "/usr/src/googletest" CACHE PATH
    "Distro-provided googletest source tree (used for sanitizer builds)")

set(_flit_gtest_from_source FALSE)
if(FLIT_SANITIZE AND EXISTS "${FLIT_GTEST_SOURCE_DIR}/CMakeLists.txt")
  set(_flit_gtest_from_source TRUE)
endif()

if(NOT _flit_gtest_from_source AND NOT FLIT_SANITIZE)
  find_package(GTest QUIET)
endif()

if(_flit_gtest_from_source)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${FLIT_GTEST_SOURCE_DIR}"
                   "${CMAKE_BINARY_DIR}/_gtest_src" EXCLUDE_FROM_ALL)
  message(STATUS "flit: GoogleTest built from ${FLIT_GTEST_SOURCE_DIR} (sanitized)")
elseif(GTest_FOUND)
  message(STATUS "flit: GoogleTest found via find_package")
else()
  message(STATUS "flit: GoogleTest not installed; fetching pinned release")
  include(FetchContent)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  FetchContent_MakeAvailable(googletest)
endif()

if(NOT TARGET GTest::gtest_main)
  message(FATAL_ERROR "flit: no usable GoogleTest (GTest::gtest_main missing)")
endif()
