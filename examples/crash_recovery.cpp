// crash_recovery — end-to-end durability demo on the crash simulator.
//
// Builds a durable BST (automatic mode), runs concurrent updates, pulls
// the plug (simulated power failure), recovers from the persistent roots,
// and verifies nothing committed was lost. Then repeats the experiment
// with the non-persistent configuration to show what a crash does to
// unprotected data.
//
// Build & run:  ./examples/crash_recovery
#include <cstdio>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "ds/natarajan_bst.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"
#include "pmem/sim_memory.hpp"

using namespace flit;
using K = std::int64_t;

template <class Set>
std::set<K> sweep(const Set& s, K range) {
  std::set<K> out;
  for (K k = 0; k < range; ++k) {
    if (s.contains(k)) out.insert(k);
  }
  return out;
}

int main() {
  // Crash tests must not reuse freed nodes across the failure point.
  recl::Ebr::instance().set_reclaim(false);
  pmem::Pool::instance().reinit(std::size_t{64} << 20);
  pmem::Pool::instance().register_with_sim();
  pmem::set_backend(pmem::Backend::kSimCrash);

  constexpr K kRange = 256;

  {
    using Bst = ds::NatarajanBst<K, K, HashedWords, Automatic>;
    Bst tree;
    auto* root = tree.root();
    auto* sent = tree.sentinel();

    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&tree, t] {
        std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
        for (int i = 0; i < 2'000; ++i) {
          const K k = static_cast<K>(rng() % kRange);
          if (rng() % 2 == 0) {
            tree.insert(k, k);
          } else {
            tree.remove(k);
          }
        }
      });
    }
    for (auto& th : ts) th.join();

    const std::set<K> before = sweep(tree, kRange);
    std::printf("durable BST before crash: %zu keys\n", before.size());

    pmem::SimMemory::instance().crash();
    std::printf("*** simulated power failure ***\n");

    Bst recovered = Bst::recover(root, sent);
    const std::set<K> after = sweep(recovered, kRange);
    std::printf("durable BST after recovery: %zu keys — %s\n", after.size(),
                after == before ? "IDENTICAL (durably linearizable)"
                                : "MISMATCH (bug!)");
    if (after != before) return 1;
  }

  {
    using Bst = ds::NatarajanBst<K, K, VolatileWords, Automatic>;
    Bst tree;
    auto* root = tree.root();
    auto* sent = tree.sentinel();
    pmem::SimMemory::instance().persist_all();  // keep the sentinels only

    for (K k = 0; k < 128; ++k) tree.insert(k, k);
    std::printf("\nnon-persistent BST before crash: %zu keys\n",
                sweep(tree, kRange).size());
    pmem::SimMemory::instance().crash();
    std::printf("*** simulated power failure ***\n");
    Bst recovered = Bst::recover(root, sent);
    std::printf("non-persistent BST after recovery: %zu keys — "
                "everything unflushed is gone\n",
                sweep(recovered, kRange).size());
  }

  std::printf("crash_recovery: OK\n");
  return 0;
}
