// persistent_restart — real persistence across process restarts.
//
// The other examples simulate NVRAM inside one process. This one opens a
// file-backed kv::Store (fsdax-style): each run re-opens the file,
// transparently recovers all shards and the generation stamp, verifies
// last run's data, and writes a new generation of records. All the root-
// slot, allocator-bump and recovery plumbing that earlier versions of
// this example hand-rolled now lives inside Store::open()/close().
//
// Build & run (run it several times!):  ./examples/persistent_restart
// Start over:                           rm /tmp/flit_restart_demo.pmem
#include <cstdio>
#include <string>

#include "kv/store.hpp"
#include "pmem/backend.hpp"

using namespace flit;
using KvStore = kv::Store<HashedWords, Automatic>;

namespace {
constexpr const char* kPath = "/tmp/flit_restart_demo.pmem";
constexpr std::int64_t kPerGeneration = 1'000;
// The demo's own metadata lives in the store too: generation g is
// *completed* iff marker key -(g+1) exists, inserted only after the
// generation's records are all in — a single atomic+durable operation,
// like every put (overwrites included, since they became one in-place
// value CAS). The store's generation() stamp counts sessions (bumped at
// open), so an interrupted run leaves the two different — and the next
// run simply rewrites the incomplete generation instead of reporting
// data loss.
constexpr std::int64_t marker_key(std::uint64_t g) {
  return -static_cast<std::int64_t>(g) - 1;
}

std::string value_for(std::int64_t key, std::uint64_t generation) {
  return "gen" + std::to_string(generation) + ":key" + std::to_string(key);
}
}  // namespace

namespace {
KvStore open_or_recreate() {
  try {
    return KvStore::open(kPath, 64 << 20, /*nshards=*/4,
                         /*capacity_per_shard=*/1'024);
  } catch (const kv::IncompatibleStore& e) {
    // A stale file from an older/incompatible layout (e.g. the pre-KV
    // version of this demo). It's a demo file: start over. Transient
    // system errors (EMFILE, ENOMEM, a taken address range) propagate —
    // destroying the data would not fix those.
    std::printf("cannot recover %s (%s);\nrecreating the demo store.\n",
                kPath, e.what());
    pmem::FileRegion::destroy(kPath);
    return KvStore::open(kPath, 64 << 20, 4, 1'024);
  }
}
}  // namespace

int main() {
  pmem::set_backend(pmem::Backend::kHardware);  // real clwb when available
  KvStore store = open_or_recreate();

  const std::uint64_t sessions = store.generation();
  std::uint64_t completed = 0;
  while (store.contains(marker_key(completed + 1))) ++completed;
  if (sessions > 1) {
    std::printf(
        "recovered store: session %llu, %llu completed generations, "
        "%zu records on file\n",
        static_cast<unsigned long long>(sessions),
        static_cast<unsigned long long>(completed), store.size());
    bool ok = true;
    for (std::uint64_t g = 1; g <= completed; ++g) {
      for (std::int64_t i = 0; i < kPerGeneration; i += 97) {
        const auto k =
            static_cast<std::int64_t>(g - 1) * kPerGeneration + i;
        const auto v = store.get(k);
        if (!v || *v != value_for(k, g)) {
          std::printf("  MISSING/CORRUPT key %lld from generation %llu!\n",
                      static_cast<long long>(k),
                      static_cast<unsigned long long>(g));
          ok = false;
        }
      }
    }
    std::printf("spot-check of completed generations: %s\n",
                ok ? "all present" : "DATA LOSS");
    if (!ok) return 1;
  } else {
    std::printf("fresh store created at %s\n", kPath);
  }

  const std::uint64_t writing = completed + 1;
  const auto base =
      static_cast<std::int64_t>(writing - 1) * kPerGeneration;
  try {
    for (std::int64_t i = 0; i < kPerGeneration; ++i) {
      store.put(base + i, value_for(base + i, writing));
    }
    store.put(marker_key(writing), "done");  // commit: one fresh insert
  } catch (const std::bad_alloc&) {
    // The fixed-size demo file eventually fills (each session leaks its
    // predecessors' free lists — the allocator model is arena-like).
    std::printf(
        "demo file is full after %llu completed generations;\n"
        "rm %s to start over.\n",
        static_cast<unsigned long long>(completed), kPath);
    return 1;
  }
  const std::size_t total = store.size();
  store.close();  // quiesce, persist the bump mark, sync, unmap

  std::printf("wrote generation %llu (%lld records); total now %zu\n",
              static_cast<unsigned long long>(writing),
              static_cast<long long>(kPerGeneration), total);
  std::printf("run me again to watch the data come back.\n");
  std::printf("persistent_restart: OK\n");
  return 0;
}
