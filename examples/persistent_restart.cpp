// persistent_restart — real persistence across process restarts.
//
// The other examples simulate NVRAM inside one process. This one uses the
// file-backed region (fsdax-style): a durable hash table lives in a
// mmap'd file; each run of the program re-opens the file, recovers the
// table from its persistent roots, verifies last run's data, and adds a
// new generation of keys.
//
// Build & run (run it several times!):  ./examples/persistent_restart
// Start over:                           rm /tmp/flit_restart_demo.pmem
#include <cstdio>

#include "ds/hash_table.hpp"
#include "pmem/backend.hpp"
#include "pmem/file_region.hpp"
#include "pmem/pool.hpp"

using namespace flit;
using Store = ds::HashTable<std::int64_t, std::int64_t, HashedWords,
                            Automatic>;

namespace {
constexpr const char* kPath = "/tmp/flit_restart_demo.pmem";
constexpr std::int64_t kPerGeneration = 1'000;

// Root slots in the region header.
constexpr std::size_t kRootsSlot = 0;      // HashTable::Roots*
constexpr std::size_t kGenerationSlot = 1; // generation counter word
}  // namespace

int main() {
  pmem::set_backend(pmem::Backend::kHardware);  // real clwb when available
  pmem::FileRegion region = pmem::FileRegion::open(kPath, 64 << 20);
  pmem::Pool::instance().adopt(region.usable_base(),
                               region.usable_capacity(), region.bump());

  std::int64_t generation = 0;
  // Leaked intentionally: the handle is volatile, the nodes are not; see
  // the file_region test for why the destructor must not run.
  Store* store = nullptr;

  if (region.recovered()) {
    auto* gen_word = static_cast<std::int64_t*>(region.root(kGenerationSlot));
    generation = *gen_word;
    store = new Store(Store::recover(
        static_cast<Store::Roots*>(region.root(kRootsSlot))));
    std::printf("recovered region: generation %lld, %zu keys on file\n",
                static_cast<long long>(generation), store->size());

    // Verify every previous generation is intact.
    bool ok = true;
    for (std::int64_t g = 0; g < generation; ++g) {
      for (std::int64_t i = 0; i < kPerGeneration; i += 97) {
        const std::int64_t k = g * kPerGeneration + i;
        if (!store->contains(k)) {
          std::printf("  MISSING key %lld from generation %lld!\n",
                      static_cast<long long>(k), static_cast<long long>(g));
          ok = false;
        }
      }
    }
    std::printf("spot-check of prior generations: %s\n",
                ok ? "all present" : "DATA LOSS");
    if (!ok) return 1;
  } else {
    std::printf("fresh region created at %s\n", kPath);
    store = new Store(4'096);
    region.set_root(kRootsSlot, store->roots());
    auto* gen_word =
        static_cast<std::int64_t*>(pmem::Pool::instance().alloc(64));
    *gen_word = 0;
    region.set_root(kGenerationSlot, gen_word);
  }

  // Write this run's generation of keys.
  for (std::int64_t i = 0; i < kPerGeneration; ++i) {
    store->insert(generation * kPerGeneration + i, generation);
  }
  auto* gen_word = static_cast<std::int64_t*>(region.root(kGenerationSlot));
  *gen_word = generation + 1;

  recl::Ebr::instance().drain_all();
  region.set_bump(pmem::Pool::instance().bump_used());
  region.sync();
  std::printf("wrote generation %lld (%lld keys); total now %zu\n",
              static_cast<long long>(generation),
              static_cast<long long>(kPerGeneration), store->size());
  std::printf("run me again to watch the data come back.\n");
  std::printf("persistent_restart: OK\n");
  return 0;
}
