// ordered_store — the ordered (skiplist-backed) KV store: range-
// partitioned shards, ordered range scans, and scan-visible crash
// recovery.
//
// The paper's claim is that FliT instrumentation makes *any* lock-free
// structure durable; the KV layer exercises that generality by swapping
// the hash-table backend for a skiplist (kv::OrderedStore) — same
// get/put/remove API, plus scan(start, n), which YCSB E (scan-heavy
// workloads) builds on.
//
// Build & run:  ./examples/ordered_store
#include <cstdio>
#include <cinttypes>

#include "bench_util/ycsb.hpp"
#include "kv/store.hpp"
#include "pmem/backend.hpp"

using namespace flit;

using Ordered = kv::OrderedStore<HashedWords, NVTraverse>;

int main() {
  pmem::set_backend(pmem::Backend::kSimLatency);

  // Range-partition the keyspace [0, 4096) over 4 skiplist shards: shard
  // ranges are disjoint and ordered, so a cross-shard scan is a simple
  // concatenation. The bounds persist in the superblock — routing is
  // stable across restarts.
  Ordered store(4, /*capacity_per_shard=*/64, kv::KeyRange{0, 4'096});

  for (std::int64_t k = 0; k < 4'096; k += 2) {
    store.put(k, bench::ycsb_value(k, 64));
  }
  std::printf("loaded %zu records across %u ordered shards\n", store.size(),
              store.nshards());

  // An ordered scan: 8 pairs starting at the first key >= 1000, in
  // ascending key order, crossing shard boundaries transparently.
  const auto window = store.scan(1'000, 8);
  std::printf("scan(1000, 8):");
  for (const auto& [k, v] : window) {
    std::printf(" %" PRId64, k);
  }
  std::printf("\n");

  // A YCSB E burst (95%% short scans / 5%% inserts) — every scanned
  // payload is verified against its key stamp.
  bench::YcsbConfig cfg;
  cfg.mix = bench::YcsbMix::e();
  cfg.threads = 4;
  cfg.record_count = 2'048;  // scans start inside the prefilled half
  cfg.value_bytes = 64;
  cfg.duration_s = 0.3;
  const bench::YcsbResult r = bench::run_ycsb(store, cfg);
  std::printf("YCSB-E: %" PRIu64 " ops, %" PRIu64
              " scanned pairs (%.2f Mops/s, %.1f pairs/op)\n",
              r.total_ops, r.scan_entries, r.mops(),
              r.total_ops ? static_cast<double>(r.scan_entries) /
                                static_cast<double>(r.total_ops)
                          : 0.0);

  bool ok = r.value_mismatches == 0;

  // Scans also prove recovery: rebuild the store from its superblock (as
  // the crash tests do) and check the scan order is intact.
  const std::size_t before = store.size();
  Ordered recovered = Ordered::recover(store.superblock());
  const auto all = recovered.scan(0, before + 1);
  std::int64_t prev = -1;
  for (const auto& [k, v] : all) {
    if (k <= prev) ok = false;
    prev = k;
  }
  std::printf("recovered generation %" PRIu64 ": %zu records, scan %s\n",
              recovered.generation(), all.size(),
              all.size() == before ? "complete and ordered" : "INCOMPLETE");
  ok = ok && all.size() == before;

  std::printf("ordered_store: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
