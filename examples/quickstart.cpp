// quickstart — the paper's §4 usage model in one file.
//
// 1. Declare shared words with persist<> (default pflag = persisted).
// 2. Use them exactly like atomics (load / store / CAS / FAA, or the
//    overloaded = and -> operators).
// 3. Call operation_completion() at the end of each operation.
// That alone makes a linearizable structure durably linearizable
// (Theorem 3.1); the flit-counters silently remove redundant flushes.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/modes.hpp"
#include "core/persist.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"

using namespace flit;

// A durable bank account: balance and a version stamp, both persist<>.
struct Account {
  persist<std::int64_t, HashedPolicy> balance;
  persist<std::int64_t, HashedPolicy> version;
  Account() : balance(0), version(0) {}

  void deposit(std::int64_t amount) {
    balance.faa(amount);  // p-FAA: tagged, flushed, fenced under the hood
    version.faa(1);
    persist<std::int64_t, HashedPolicy>::operation_completion();
  }

  bool withdraw(std::int64_t amount) {
    for (;;) {
      std::int64_t cur = balance.load();  // p-load: flush-if-tagged
      if (cur < amount) {
        persist<std::int64_t, HashedPolicy>::operation_completion();
        return false;
      }
      if (balance.cas(cur, cur - amount)) {  // p-CAS
        version.faa(1);
        persist<std::int64_t, HashedPolicy>::operation_completion();
        return true;
      }
    }
  }
};

int main() {
  // Pick the persistence backend: kHardware issues real clwb/sfence; the
  // simulated backends let the same binary run on any machine.
  pmem::set_backend(pmem::Backend::kSimLatency);
  std::printf("flush instruction available on this CPU: %s\n",
              pmem::to_string(pmem::detect_flush_instruction()));

  // Persistent allocation (the libvmmalloc role): objects whose fields are
  // persist<> live in the persistent pool.
  auto* acct = pmem::pnew<Account>();

  acct->deposit(100);
  acct->deposit(250);
  const bool ok1 = acct->withdraw(300);
  const bool ok2 = acct->withdraw(300);

  std::printf("balance=%ld version=%ld withdraw#1=%s withdraw#2=%s\n",
              static_cast<long>(acct->balance.load()),
              static_cast<long>(acct->version.load()),
              ok1 ? "ok" : "insufficient", ok2 ? "ok" : "insufficient");

  const auto stats = pmem::stats_snapshot();
  std::printf("persistence instructions issued: %llu pwbs, %llu pfences\n",
              static_cast<unsigned long long>(stats.pwbs),
              static_cast<unsigned long long>(stats.pfences));

  pmem::pdelete(acct);
  std::printf("quickstart: OK\n");
  return 0;
}
