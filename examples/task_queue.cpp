// task_queue — a crash-safe work queue on the durable queue (the paper §4
// pattern of keeping head/tail volatile while nodes are persistent).
//
// Producers enqueue task ids; consumers claim tasks; a simulated power
// failure hits mid-stream; recovery shows every task is either claimed or
// still queued — none lost, none duplicated (exactly-once dispatch).
//
// Build & run:  ./examples/task_queue
#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "ds/durable_queue.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"
#include "pmem/sim_memory.hpp"

using namespace flit;
using Queue = ds::DurableQueue<std::int64_t, HashedWords>;

int main() {
  recl::Ebr::instance().set_reclaim(false);
  pmem::Pool::instance().reinit(std::size_t{64} << 20);
  pmem::Pool::instance().register_with_sim();
  pmem::set_backend(pmem::Backend::kSimCrash);

  Queue queue;
  constexpr std::int64_t kTasks = 10'000;

  // Producers and consumers run concurrently.
  std::vector<std::int64_t> claimed;
  std::mutex claimed_mu;
  std::atomic<bool> done{false};
  std::vector<std::thread> ts;
  for (int p = 0; p < 2; ++p) {
    ts.emplace_back([&queue, p] {
      for (std::int64_t i = p; i < kTasks; i += 2) queue.enqueue(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    ts.emplace_back([&, c] {
      std::vector<std::int64_t> mine;
      while (!done.load() || !queue.empty()) {
        if (auto v = queue.dequeue(c)) {
          mine.push_back(*v);
          if (mine.size() >= kTasks / 4) break;  // stop mid-stream
        }
      }
      std::lock_guard<std::mutex> lk(claimed_mu);
      claimed.insert(claimed.end(), mine.begin(), mine.end());
    });
  }
  ts[0].join();
  ts[1].join();
  done.store(true);
  ts[2].join();
  ts[3].join();

  std::printf("enqueued %lld tasks, %zu claimed before the crash\n",
              static_cast<long long>(kTasks), claimed.size());

  pmem::SimMemory::instance().crash();
  std::printf("*** simulated power failure ***\n");

  Queue recovered = Queue::recover(queue.anchor());
  std::vector<std::int64_t> rest;
  while (auto v = recovered.dequeue(99)) rest.push_back(*v);

  // Exactly-once: claimed ∪ recovered == all tasks, disjoint.
  std::vector<std::int64_t> all = claimed;
  all.insert(all.end(), rest.begin(), rest.end());
  std::sort(all.begin(), all.end());
  bool exact = all.size() == static_cast<std::size_t>(kTasks);
  for (std::size_t i = 0; exact && i < all.size(); ++i) {
    exact = all[i] == static_cast<std::int64_t>(i);
  }
  std::printf("recovered %zu unclaimed tasks; exactly-once dispatch: %s\n",
              rest.size(), exact ? "VERIFIED" : "VIOLATED (bug!)");
  std::printf("task_queue: %s\n", exact ? "OK" : "FAILED");
  return exact ? 0 : 1;
}
