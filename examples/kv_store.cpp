// kv_store — a multi-threaded durable key-value store built on the FliT
// hash table (the paper's motivating use case: persistent database
// indexes / in-memory KV stores on NVRAM).
//
// Demonstrates choosing a durability method and counter placement at the
// type level, and measuring the persistence-instruction cost of a real
// workload mix.
//
// Build & run:  ./examples/kv_store [n_threads]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util/workload.hpp"
#include "ds/hash_table.hpp"
#include "pmem/backend.hpp"

using namespace flit;

// Production pick per the paper's conclusions: flit-HT placement (no node
// layout changes) + NVtraverse annotations (volatile traversals).
using Store = ds::HashTable<std::int64_t, std::int64_t, HashedWords,
                            NVTraverse>;

int main(int argc, char** argv) {
  const int n_threads = argc > 1 ? std::atoi(argv[1]) : 4;
  pmem::set_backend(pmem::Backend::kSimLatency);

  constexpr std::int64_t kKeys = 16'384;
  Store store(kKeys);

  // Phase 1: bulk load.
  for (std::int64_t k = 0; k < kKeys / 2; ++k) store.insert(k, k * k);
  std::printf("loaded %zu keys\n", store.size());

  // Phase 2: concurrent mixed workload (90% lookups / 10% updates).
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> hits{0}, ops{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < n_threads; ++t) {
    workers.emplace_back([&, t] {
      bench::Rng rng(static_cast<std::uint64_t>(t) * 7919 + 3);
      std::uint64_t local_hits = 0;
      for (int i = 0; i < 200'000; ++i) {
        const auto k = static_cast<std::int64_t>(rng.next_below(kKeys));
        const double r = rng.next_unit();
        if (r < 0.90) {
          if (store.contains(k)) ++local_hits;
        } else if (r < 0.95) {
          store.insert(k, k);
        } else {
          store.remove(k);
        }
      }
      hits.fetch_add(local_hits);
      ops.fetch_add(200'000);
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto stats = pmem::stats_snapshot();
  std::printf("%llu ops in %.2fs (%.2f Mops/s), hit-rate %.1f%%\n",
              static_cast<unsigned long long>(ops.load()), secs,
              static_cast<double>(ops.load()) / secs / 1e6,
              100.0 * static_cast<double>(hits.load()) /
                  static_cast<double>(ops.load()));
  std::printf("pwbs/op = %.3f  pfences/op = %.3f  (FliT skipped the rest)\n",
              static_cast<double>(stats.pwbs) /
                  static_cast<double>(ops.load()),
              static_cast<double>(stats.pfences) /
                  static_cast<double>(ops.load()));
  std::printf("final size: %zu keys\nkv_store: OK\n", store.size());
  return 0;
}
