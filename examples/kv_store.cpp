// kv_store — the sharded durable key-value store under a YCSB-B-style
// workload (the paper's motivating use case: persistent database indexes /
// in-memory KV stores on NVRAM).
//
// Built entirely on the kv::Store subsystem: hash-partitioned shards over
// FliT hash tables, variable-length persistent value records, and the
// YCSB workload driver from bench_util — no hand-rolled workload mix or
// root-slot plumbing.
//
// Build & run:  ./examples/kv_store [n_threads]
#include <cstdio>
#include <cstdlib>

#include "bench_util/ycsb.hpp"
#include "kv/store.hpp"
#include "pmem/backend.hpp"

using namespace flit;

// Production pick per the paper's conclusions: flit-HT placement (no node
// layout changes) + NVtraverse annotations (volatile traversals).
using KvStore = kv::Store<HashedWords, NVTraverse>;

int main(int argc, char** argv) {
  const int n_threads = argc > 1 ? std::atoi(argv[1]) : 4;
  pmem::set_backend(pmem::Backend::kSimLatency);

  bench::YcsbConfig cfg;
  cfg.mix = bench::YcsbMix::b();  // 95% reads / 5% updates, zipfian
  cfg.threads = n_threads;
  cfg.record_count = 16'384;
  cfg.value_bytes = 100;
  cfg.duration_s = 1.0;

  KvStore store(8, cfg.record_count / 8);
  bench::ycsb_load(store, cfg);
  std::printf("loaded %zu records across %u shards\n", store.size(),
              store.nshards());

  const bench::YcsbResult r = bench::run_ycsb(store, cfg);
  std::printf("YCSB-%s: %llu ops in %.2fs (%.2f Mops/s)\n", cfg.mix.name,
              static_cast<unsigned long long>(r.total_ops), r.seconds,
              r.mops());
  std::printf("pwbs/op = %.3f  pfences/op = %.3f  (FliT skipped the rest)\n",
              r.pwbs_per_op(), r.pfences_per_op());
  std::printf("final size: %zu records, generation %llu\n", store.size(),
              static_cast<unsigned long long>(store.generation()));

  if (r.value_mismatches != 0) {
    std::printf("kv_store: FAILED (%llu corrupt reads)\n",
                static_cast<unsigned long long>(r.value_mismatches));
    return 1;
  }
  std::printf("kv_store: OK\n");
  return 0;
}
