// flit-server — the durable KV store behind the network front-end.
//
// Serves the RESP-like protocol (see src/net/server.hpp for the command
// set) over a kv::Store (hashed layout) or kv::OrderedStore (ordered;
// adds SCAN), NVTraverse method, flit-HT words. Pipelined requests are
// grouped into the batched multi-op path per readiness event, so fence
// coalescing shows up on real connections — flit_loadgen measures it.
//
//   ./flit_server                          # hashed, port 0 (ephemeral)
//   ./flit_server --layout=ordered --port=7379
//   ./flit_server --file=/mnt/pmem/kv.img --durability=always
//
// Flags:
//   --host=A --port=N       listen address (default 127.0.0.1:0; the
//                           chosen port is printed — parse the line
//                           "flit-server: listening on HOST:PORT ...")
//   --workers=N             epoll worker threads (default 2)
//   --shards=N              store shards (default 8)
//   --layout=hashed|ordered store backend (default hashed)
//   --keys=N                expected keyspace (sizes buckets; sets the
//                           ordered partition range [0, N + N/8))
//   --file=PATH             file-backed store (durable across restarts)
//   --durability=MODE       never | everysec | always (default never;
//                           only meaningful with --file)
//   --flush-ms=N            everysec flusher interval in milliseconds
//                           (default 1000; smoke tests shrink it so a
//                           checkpoint lands within the test window)
//   --capacity-mb=N         pool/file capacity (default 1024)
//   --failpoints=LIST       arm failpoint sites (site=trigger[@errno];...)
//                           after the store is built — unlike the
//                           FLIT_FAILPOINTS env var, which would also
//                           fire during store construction and kill the
//                           boot. Requires a FLIT_FAILPOINTS=ON build.
//   --max-conns=N           shed new connections past N open (0 = no
//                           cap; default 4096)
//   --idle-timeout-ms=N     close connections idle longer than N ms
//                           (0 = never; default 0)
//   --hw                    real clwb/sfence backend instead of the
//                           simulated-latency one
//
// SIGINT/SIGTERM (or a SHUTDOWN command) stop the server cleanly:
// in-flight replies flush, a file-backed store close()s (final msync +
// clean-shutdown mark).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/failpoint.hpp"
#include "core/modes.hpp"
#include "kv/store.hpp"
#include "net/server.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"

namespace {

using namespace flit;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int workers = 2;
  int shards = 8;
  bool ordered = false;
  std::uint64_t keys = 1'000'000;
  std::string file;
  kv::DurabilityMode durability = kv::DurabilityMode::kNever;
  long flush_ms = 1000;
  std::size_t capacity_mb = 1024;
  std::size_t max_conns = 4096;
  int idle_timeout_ms = 0;
  std::string failpoints;
  bool hw = false;
};

const char* arg_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

[[noreturn]] void usage_error(const std::string& why) {
  std::fprintf(stderr, "flit-server: %s\n", why.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (const char* v = arg_value(a, "--host")) {
      o.host = v;
    } else if (const char* v = arg_value(a, "--port")) {
      o.port = std::atoi(v);
    } else if (const char* v = arg_value(a, "--workers")) {
      o.workers = std::atoi(v);
    } else if (const char* v = arg_value(a, "--shards")) {
      o.shards = std::atoi(v);
    } else if (const char* v = arg_value(a, "--layout")) {
      if (std::strcmp(v, "ordered") == 0) {
        o.ordered = true;
      } else if (std::strcmp(v, "hashed") != 0) {
        usage_error("--layout must be hashed or ordered");
      }
    } else if (const char* v = arg_value(a, "--keys")) {
      o.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--file")) {
      o.file = v;
    } else if (const char* v = arg_value(a, "--durability")) {
      const auto m = kv::parse_durability_mode(v);
      if (!m) usage_error("--durability must be never, everysec or always");
      o.durability = *m;
    } else if (const char* v = arg_value(a, "--flush-ms")) {
      o.flush_ms = std::atol(v);
    } else if (const char* v = arg_value(a, "--capacity-mb")) {
      o.capacity_mb = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--failpoints")) {
      o.failpoints = v;
    } else if (const char* v = arg_value(a, "--max-conns")) {
      o.max_conns = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--idle-timeout-ms")) {
      o.idle_timeout_ms = std::atoi(v);
    } else if (std::strcmp(a, "--hw") == 0) {
      o.hw = true;
    } else {
      usage_error(std::string("unknown flag ") + a);
    }
  }
  if (o.port < 0 || o.port > 65535) usage_error("--port out of range");
  if (o.workers < 1 || o.shards < 1 || o.keys == 0 || o.capacity_mb == 0) {
    usage_error("--workers/--shards/--keys/--capacity-mb must be positive");
  }
  if (o.durability != kv::DurabilityMode::kNever && o.file.empty()) {
    usage_error("--durability needs a file-backed store (--file=PATH)");
  }
  if (o.flush_ms <= 0) usage_error("--flush-ms must be positive");
  if (o.idle_timeout_ms < 0) usage_error("--idle-timeout-ms must be >= 0");
  if (!o.failpoints.empty() && !core::kFailpointsEnabled) {
    usage_error("--failpoints needs a FLIT_FAILPOINTS=ON build "
                "(cmake --preset failpoints)");
  }
  return o;
}

// Signal path: SIGINT/SIGTERM route to Server::shutdown(), which is an
// atomic store plus eventfd writes — async-signal-safe.
std::atomic<void (*)()> g_shutdown{nullptr};

void on_signal(int) {
  if (auto* f = g_shutdown.load(std::memory_order_acquire)) f();
}

template <class StoreT>
StoreT make_store(const Options& o) {
  const auto per_shard = std::max<std::size_t>(
      o.keys / static_cast<std::size_t>(o.shards), 64);
  kv::KeyRange range{0, static_cast<std::int64_t>(o.keys + o.keys / 8)};
  if (!o.file.empty()) {
    return StoreT::open(o.file, o.capacity_mb << 20,
                        static_cast<std::uint32_t>(o.shards), per_shard,
                        range);
  }
  pmem::Pool::instance().reinit(o.capacity_mb << 20);
  return StoreT(static_cast<std::uint32_t>(o.shards), per_shard, range);
}

template <class StoreT>
int serve(const Options& o) {
  StoreT store = make_store<StoreT>(o);
  store.set_durability_mode(o.durability,
                            std::chrono::milliseconds(o.flush_ms));
  if (!o.failpoints.empty()) {
    // Armed only now — the store (and its prefilled buckets) is already
    // built, so injected faults land on served requests, not on boot.
    const std::size_t n =
        core::Failpoints::instance().arm_from_list(o.failpoints);
    std::printf("flit-server: armed %zu failpoint site(s): %s\n", n,
                o.failpoints.c_str());
  }

  net::ServerConfig cfg;
  cfg.host = o.host;
  cfg.port = static_cast<std::uint16_t>(o.port);
  cfg.workers = o.workers;
  cfg.max_value_bytes = kv::Record::kMaxValueBytes;
  cfg.max_connections = o.max_conns;
  cfg.idle_timeout_ms = o.idle_timeout_ms;
  net::Server<StoreT> server(store, cfg);

  static net::Server<StoreT>* g_server = nullptr;
  g_server = &server;
  g_shutdown.store(+[] { g_server->shutdown(); },
                   std::memory_order_release);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::printf(
      "flit-server: listening on %s:%u layout=%s workers=%d shards=%d "
      "durability=%s backend=%s %s\n",
      o.host.c_str(), server.port(), StoreT::kOrdered ? "ordered" : "hashed",
      o.workers, o.shards, kv::to_string(o.durability),
      pmem::to_string(pmem::backend()),
      o.file.empty() ? "(pool-backed)" : o.file.c_str());
  std::fflush(stdout);

  server.run();
  g_shutdown.store(nullptr, std::memory_order_release);

  const net::ServerStats& s = server.stats();
  std::printf(
      "flit-server: stopped. connections=%llu requests=%llu "
      "batched_keys=%llu scalar_ops=%llu protocol_errors=%llu "
      "checkpoints=%llu shed=%llu idle_timeouts=%llu keys=%zu\n",
      static_cast<unsigned long long>(s.connections.load()),
      static_cast<unsigned long long>(s.requests.load()),
      static_cast<unsigned long long>(s.batched_keys.load()),
      static_cast<unsigned long long>(s.scalar_ops.load()),
      static_cast<unsigned long long>(s.protocol_errors.load()),
      static_cast<unsigned long long>(store.checkpoints()),
      static_cast<unsigned long long>(s.shed_connections.load()),
      static_cast<unsigned long long>(s.idle_timeouts.load()),
      store.size());
  store.close();  // flusher stops; file-backed: final msync + clean mark
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  pmem::set_backend(o.hw ? pmem::Backend::kHardware
                         : pmem::Backend::kSimLatency);
  pmem::set_sim_latency(90, 60);  // ~Optane clwb / sfence ballpark
  try {
    return o.ordered ? serve<kv::OrderedStore<HashedWords, NVTraverse>>(o)
                     : serve<kv::Store<HashedWords, NVTraverse>>(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flit-server: fatal: %s\n", e.what());
    return 1;
  }
}
