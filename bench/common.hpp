// common.hpp — shared scaffolding for the per-figure benchmark binaries.
//
// Every binary runs a smoke-sized version of its figure by default (so the
// whole suite completes in minutes on a laptop/CI container) and the
// paper-scale version under --full. Absolute numbers are not expected to
// match the paper's Optane testbed (see EXPERIMENTS.md); the *shape* of
// each figure is.
//
// Backend: kSimLatency by default (DRAM machines), with pwb/pfence delays
// in the ballpark of Optane write-back costs. Pass --hw to use the real
// clwb/clflushopt/clflush + sfence path.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "bench_util/workload.hpp"
#include "core/modes.hpp"
#include "pmem/backend.hpp"
#include "pmem/pool.hpp"
#include "recl/ebr.hpp"

namespace flit::bench {

struct BenchEnv {
  BenchArgs args;
  int threads;
  double seconds;

  static BenchEnv init(int argc, char** argv, int default_threads = 4,
                       double default_seconds = 0.3) {
    BenchEnv e;
    e.args = BenchArgs::parse(argc, argv);
    bool hw = false;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--hw") == 0) hw = true;
    }
    e.threads = e.args.threads > 0 ? e.args.threads
                                   : (e.args.full ? 44 : default_threads);
    e.seconds = e.args.seconds > 0 ? e.args.seconds
                                   : (e.args.full ? 5.0 : default_seconds);
    pmem::set_backend(hw ? pmem::Backend::kHardware
                         : pmem::Backend::kSimLatency);
    pmem::set_sim_latency(90, 60);  // ~Optane clwb / sfence ballpark
    pmem::Pool::instance().reinit(e.args.full ? (std::size_t{8} << 30)
                                              : (std::size_t{1} << 30));
    std::printf("# backend=%s threads=%d seconds=%.2f %s\n",
                pmem::to_string(pmem::backend()), e.threads, e.seconds,
                e.args.full ? "(paper-scale)" : "(smoke scale; --full for "
                                                "paper parameters)");
    return e;
  }

  WorkloadConfig config(double update_pct, std::uint64_t size) const {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.update_pct = update_pct;
    cfg.key_range = 2 * size;
    cfg.prefill = size;
    cfg.duration_s = seconds;
    return cfg;
  }
};

/// Build + prefill + run one benchmark point, recycling the pool between
/// points so memory stays bounded across a sweep.
template <class MakeFn>
RunResult run_point(MakeFn make, const WorkloadConfig& cfg) {
  recl::Ebr::instance().drain_all();
  pmem::Pool::instance().reset();
  auto set = make();
  prefill(set, cfg);
  return run_workload(set, cfg);
}

}  // namespace flit::bench
