// flit-crashtest — whole-process crash harness for the durable KV store.
//
// The persistency tests under tests/ simulate crashes by discarding
// volatile state inside one process. This harness kills a REAL process
// (SIGKILL, no cleanup, no destructors) at a randomized point in a mixed
// workload against a file-backed store, reopens the image in a fresh
// process, and checks the durability contract end to end:
//
//   * every ACKNOWLEDGED write is present with its exact payload,
//   * every in-flight write is old-complete, new-complete or absent —
//     never torn, and never with collateral damage to other keys,
//   * on the ordered layout, scan() agrees with point lookups and is
//     strictly ascending.
//
// Ack protocol (child -> parent over a pipe; every line < PIPE_BUF so
// writes are atomic even from multiple worker threads):
//
//   I <tid> <seq> P <key> <vseq>   op issued: put of make_value(key,vseq)
//   I <tid> <seq> R <key>          op issued: remove
//   D <tid> <seq>                  ops <= seq applied (pre-durability)
//   A <tid> <seq>                  ops <= seq DURABLE (the ack line)
//
// A-lines are emitted from the store's checkpoint post-hook using a
// pre-hook snapshot of each thread's completed sequence number, so an
// ack never races ahead of the msync that covers the op:
//   - always:   every write calls note_write_commit() -> checkpoint,
//   - everysec: the store's flusher thread checkpoints on its interval,
//   - never:    the harness runs its own checkpoint() ticker (explicit
//               sync points), acks ride on those.
//
// Verification floor per thread = max(last D, last A): SIGKILL does not
// clear the page cache, so applied-but-not-yet-synced ops also survive —
// the harness verifies the ACK ACCOUNTING and crash atomicity, not media
// loss (that needs a power-fail rig; see docs/EXPERIMENTS.md).
//
// The verifier runs via fork+exec of /proc/self/exe (--verify): a fresh
// address space gets fresh ASLR, so the region's recorded base is almost
// always free; exit code 4 reports the rare remap collision and the
// parent re-execs.
//
// Network mode (--mode=net) drives the same check through flit_server
// --durability=always: pipelined SET/DEL over real sockets, each reply
// is the ack (the server checkpoints before flushing replies), SIGKILL
// lands on the server mid-load.
//
// Seeded-bug validation: the hidden env var FLIT_CRASHTEST_UNSAFE_ACK=1
// makes the workload child acknowledge ops BEFORE applying them (a
// deliberate ack-before-durable bug behind a deferred-apply queue).
// --expect-violation inverts the exit status; CI asserts the harness
// catches the planted bug.
//
// Exhaustion sweep (--inject): the store gets a deliberately tiny
// capacity so the workload drives it into OutOfSpace mid-run, and the
// SIGKILL lands on a store operating at the brim. Failed mutations emit
// an F-line (`F <tid> <lo> <hi>`) excluding those seqs from the ack
// floor — a refused op promised nothing — while the workload keeps
// going: removes recycle space and later puts land in it, so the kill
// samples the full degrade/recycle cycle, and recovery of the
// nearly-full image is verified like any other iteration. The kill is
// refusal-triggered: the parent SIGKILLs a randomized --kill-min/max-ms
// after the *first observed refusal* (not after a fixed wall-clock
// point), so the brim is reached on loaded CI machines and fast
// workstations alike; a 10 s fallback caps a workload that never
// exhausts, and the run fails if no iteration ever hit OutOfSpace
// (capacity too generous to test anything).
//
//   ./flit_crashtest --iters=12 --layout=ordered --durability=always
//   ./flit_crashtest --mode=net --layout=hashed --iters=6
//   ./flit_crashtest --inject --iters=8
//   FLIT_CRASHTEST_UNSAFE_ACK=1 ./flit_crashtest --expect-violation
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/modes.hpp"
#include "kv/store.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "pmem/backend.hpp"
#include "pmem/file_region.hpp"
#include "pmem/pool.hpp"

namespace {

using namespace flit;
using Key = std::int64_t;

using HashedStore = kv::Store<HashedWords, NVTraverse>;
using OrderedStore = kv::OrderedStore<HashedWords, NVTraverse>;

constexpr int kMaxThreads = 8;

// ---------------------------------------------------------------- options

struct Options {
  std::string mode = "api";       // api | net
  std::string layout = "hashed";  // hashed | ordered
  kv::DurabilityMode durability = kv::DurabilityMode::kAlways;
  int iters = 12;
  int threads = 2;  // api-mode worker threads / net-mode connections
  int pipeline = 8;
  std::uint64_t keys = 2048;
  int shards = 8;
  std::size_t capacity_mb = 96;
  int kill_min_ms = 15;
  int kill_max_ms = 350;
  bool kill_set = false;
  std::uint64_t seed = 0;  // 0: draw from std::random_device
  std::string file;        // default: /tmp/flit_crashtest_<pid>.img
  std::string server;      // default: <dir of argv[0]>/flit_server
  bool expect_violation = false;
  bool verbose = false;
  bool inject = false;        // exhaustion sweep (see file comment)
  bool capacity_set = false;  // --capacity-mb given explicitly

  // --verify mode (internal; the harness exec's itself with these).
  bool verify = false;
  std::string expect_file;
};

const char* arg_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

[[noreturn]] void usage_error(const std::string& why) {
  std::fprintf(stderr, "flit-crashtest: %s\n", why.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (const char* v = arg_value(a, "--mode")) {
      o.mode = v;
    } else if (const char* v = arg_value(a, "--layout")) {
      o.layout = v;
    } else if (const char* v = arg_value(a, "--durability")) {
      const auto m = kv::parse_durability_mode(v);
      if (!m) usage_error("--durability must be never, everysec or always");
      o.durability = *m;
    } else if (const char* v = arg_value(a, "--iters")) {
      o.iters = std::atoi(v);
    } else if (const char* v = arg_value(a, "--threads")) {
      o.threads = std::atoi(v);
    } else if (const char* v = arg_value(a, "--pipeline")) {
      o.pipeline = std::atoi(v);
    } else if (const char* v = arg_value(a, "--keys")) {
      o.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--shards")) {
      o.shards = std::atoi(v);
    } else if (const char* v = arg_value(a, "--capacity-mb")) {
      o.capacity_mb = std::strtoull(v, nullptr, 10);
      o.capacity_set = true;
    } else if (const char* v = arg_value(a, "--kill-min-ms")) {
      o.kill_min_ms = std::atoi(v);
      o.kill_set = true;
    } else if (const char* v = arg_value(a, "--kill-max-ms")) {
      o.kill_max_ms = std::atoi(v);
      o.kill_set = true;
    } else if (const char* v = arg_value(a, "--seed")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--file")) {
      o.file = v;
    } else if (const char* v = arg_value(a, "--server")) {
      o.server = v;
    } else if (std::strcmp(a, "--inject") == 0) {
      o.inject = true;
    } else if (std::strcmp(a, "--expect-violation") == 0) {
      o.expect_violation = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      o.verbose = true;
    } else if (std::strcmp(a, "--verify") == 0) {
      o.verify = true;
    } else if (const char* v = arg_value(a, "--expect")) {
      o.expect_file = v;
    } else {
      usage_error(std::string("unknown flag ") + a);
    }
  }
  if (o.mode != "api" && o.mode != "net") {
    usage_error("--mode must be api or net");
  }
  if (o.layout != "hashed" && o.layout != "ordered") {
    usage_error("--layout must be hashed or ordered");
  }
  if (o.iters < 1 || o.threads < 1 || o.threads > kMaxThreads ||
      o.pipeline < 1 || o.keys == 0 || o.shards < 1 || o.capacity_mb == 0) {
    usage_error("--iters/--threads/--pipeline/--keys/--shards/--capacity-mb "
                "must be positive (threads <= 8)");
  }
  if (o.kill_min_ms < 1 || o.kill_max_ms < o.kill_min_ms) {
    usage_error("need 1 <= --kill-min-ms <= --kill-max-ms");
  }
  if (o.mode == "net" && o.durability != kv::DurabilityMode::kAlways) {
    // Replies are only durability acks when every batch checkpoints.
    usage_error("--mode=net requires --durability=always");
  }
  if (o.inject) {
    if (o.mode != "api") {
      // Net mode would need the client side to tolerate -ERR OUT_OF_SPACE
      // replies; the server's per-request degradation is covered by
      // net_server_test instead.
      usage_error("--inject requires --mode=api");
    }
    // Small enough that the put/remove mix exhausts it inside the kill
    // window; a share of overwrites leak (values past the recycled size
    // classes are bump-only), so the store wedges at the brim quickly.
    if (!o.capacity_set) o.capacity_mb = 1;
    // The kill window becomes the post-first-refusal delay (see the
    // top-of-file comment): short, so the kill lands near the brim.
    if (!o.kill_set) {
      o.kill_min_ms = 20;
      o.kill_max_ms = 150;
    }
  }
  if (o.file.empty()) {
    o.file = "/tmp/flit_crashtest_" + std::to_string(::getpid()) + ".img";
  }
  return o;
}

std::string sibling_path(const char* argv0, const char* name) {
  std::string s = argv0;
  const auto slash = s.find_last_of('/');
  return slash == std::string::npos ? std::string(name)
                                    : s.substr(0, slash + 1) + name;
}

// ------------------------------------------------------------- test data

/// Deterministic, variable-length payload for (key, vseq). The header
/// names both coordinates and the filler depends on them, so any torn
/// mix of two versions fails the exact-match check.
std::string make_value(Key key, std::uint64_t vseq) {
  std::string v = "k" + std::to_string(key) + ".v" + std::to_string(vseq) +
                  ".";
  const std::size_t len =
      1 + static_cast<std::size_t>(
              (static_cast<std::uint64_t>(key) * 131 + vseq * 257) % 1200);
  const char fill = static_cast<char>(
      'a' + (static_cast<std::uint64_t>(key) + vseq * 31) % 26);
  if (v.size() < len) v.append(len - v.size(), fill);
  return v;
}

// ------------------------------------------------- child-side ack stream

/// Shared fd sink; each send() is one line < PIPE_BUF, so concurrent
/// worker threads interleave whole lines, never bytes.
struct AckPipe {
  int fd = -1;

  void send(const char* buf, std::size_t n) const {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, buf + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        _exit(7);  // parent hung up: nothing sensible left to report
      }
      off += static_cast<std::size_t>(w);
    }
  }

  void line(const char* fmt, ...) const __attribute__((format(printf, 2, 3))) {
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0) send(buf, static_cast<std::size_t>(n));
  }
};

struct ChildShared {
  AckPipe pipe;
  // Highest fully-applied seq per thread (0 = none). Written by workers,
  // snapshotted by the checkpoint pre-hook.
  std::atomic<std::uint64_t> completed[kMaxThreads] = {};
  std::uint64_t snapshot[kMaxThreads] = {};
  std::uint64_t acked[kMaxThreads] = {};
  int threads = 0;
};

/// One issued-but-deferred op, used only by the seeded-bug mode.
struct DeferredOp {
  bool is_put = false;
  Key key = 0;
  std::uint64_t vseq = 0;
  std::uint64_t seq = 0;
};

template <class StoreT>
[[noreturn]] void run_workload_child(const Options& o, std::uint64_t seed,
                                     int write_fd) {
  std::signal(SIGPIPE, SIG_IGN);
  ChildShared sh;
  sh.pipe.fd = write_fd;
  sh.threads = o.threads;

  const bool unsafe_ack = std::getenv("FLIT_CRASHTEST_UNSAFE_ACK") != nullptr;

  try {
    pmem::set_backend(pmem::Backend::kSimLatency);
    pmem::set_sim_latency(10, 10);
    const auto per_shard = std::max<std::size_t>(
        o.keys / static_cast<std::size_t>(o.shards), 64);
    const kv::KeyRange range{0, static_cast<Key>(o.keys + o.keys / 8)};
    StoreT store = StoreT::open(o.file, o.capacity_mb << 20,
                                static_cast<std::uint32_t>(o.shards),
                                per_shard, range);

    if (!unsafe_ack) {
      // Ack plumbing: pre snapshots what is about to become durable,
      // post (after the msync) turns the snapshot into A-lines. Both run
      // under the store's checkpoint serialization.
      store.set_checkpoint_hooks(
          [&sh] {
            for (int t = 0; t < sh.threads; ++t) {
              sh.snapshot[t] =
                  sh.completed[t].load(std::memory_order_acquire);
            }
          },
          [&sh] {
            for (int t = 0; t < sh.threads; ++t) {
              if (sh.snapshot[t] > sh.acked[t]) {
                sh.acked[t] = sh.snapshot[t];
                sh.pipe.line("A %d %llu\n", t,
                             static_cast<unsigned long long>(sh.acked[t]));
              }
            }
          });
      if (o.durability != kv::DurabilityMode::kNever) {
        store.set_durability_mode(o.durability,
                                  std::chrono::milliseconds(40));
      }
    }

    std::atomic<bool> pool_full{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < o.threads; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + t + 1);
        const std::uint64_t stripe =
            o.keys / static_cast<std::uint64_t>(o.threads);
        auto pick_key = [&]() -> Key {
          return static_cast<Key>(
              t + o.threads * static_cast<int>(rng() % stripe));
        };
        std::map<Key, std::uint64_t> vseq;  // per-key version counter
        std::uint64_t seq = 0;
        std::deque<DeferredOp> lagged;  // seeded-bug queue

        auto apply_put = [&](Key k, std::uint64_t vs) {
          store.put(k, make_value(k, vs));
        };
        auto done = [&](std::uint64_t s) {
          sh.pipe.line("D %d %llu\n", t, static_cast<unsigned long long>(s));
          sh.completed[t].store(s, std::memory_order_release);
          if (!unsafe_ack && o.durability == kv::DurabilityMode::kAlways) {
            store.note_write_commit();
          }
        };
        auto drain_one_lagged = [&] {
          const DeferredOp d = lagged.front();
          lagged.pop_front();
          if (d.is_put) {
            apply_put(d.key, d.vseq);
          } else {
            store.remove(d.key);
          }
          sh.pipe.line("D %d %llu\n", t,
                       static_cast<unsigned long long>(d.seq));
        };
        // --inject: a mutation refused by the full pool emits an F-line
        // (those seqs never join the ack floor — a refused op promised
        // nothing; a multi-op may have landed a prefix, so its elements
        // stay "in-flight": any per-key post-state is acceptable) and
        // the workload keeps running at the brim. Without --inject a
        // bad_alloc escapes to the park-for-the-kill handler below.
        auto attempt = [&](std::uint64_t lo, std::uint64_t hi,
                           auto&& fn) -> bool {
          if (!o.inject) {
            fn();
            return true;
          }
          try {
            fn();
            return true;
          } catch (const std::bad_alloc&) {
            sh.pipe.line("F %d %llu %llu\n", t,
                         static_cast<unsigned long long>(lo),
                         static_cast<unsigned long long>(hi));
            return false;
          }
        };

        try {
          for (;;) {
            const std::uint32_t r = static_cast<std::uint32_t>(rng() % 100);
            if (unsafe_ack) {
              // SEEDED BUG: acknowledge at issue time, apply ~16 ops
              // later. A kill inside the window loses acked writes.
              const Key k = pick_key();
              const bool is_put = r < 75;
              const std::uint64_t vs = is_put ? ++vseq[k] : 0;
              ++seq;
              if (is_put) {
                sh.pipe.line("I %d %llu P %lld %llu\n", t,
                             static_cast<unsigned long long>(seq),
                             static_cast<long long>(k),
                             static_cast<unsigned long long>(vs));
              } else {
                sh.pipe.line("I %d %llu R %lld\n", t,
                             static_cast<unsigned long long>(seq),
                             static_cast<long long>(k));
              }
              sh.pipe.line("A %d %llu\n", t,
                           static_cast<unsigned long long>(seq));
              lagged.push_back({is_put, k, vs, seq});
              if (lagged.size() > 16) drain_one_lagged();
              continue;
            }
            if (r < 45) {  // single put
              const Key k = pick_key();
              const std::uint64_t vs = ++vseq[k];
              ++seq;
              sh.pipe.line("I %d %llu P %lld %llu\n", t,
                           static_cast<unsigned long long>(seq),
                           static_cast<long long>(k),
                           static_cast<unsigned long long>(vs));
              if (!attempt(seq, seq, [&] { apply_put(k, vs); })) continue;
              done(seq);
            } else if (r < 62) {  // multi_put, batch of 6
              char buf[6 * 48];
              int n = 0;
              std::vector<std::pair<Key, std::string>> owned;
              owned.reserve(6);
              for (int i = 0; i < 6; ++i) {
                const Key k = pick_key();
                const std::uint64_t vs = ++vseq[k];
                ++seq;
                n += std::snprintf(buf + n, sizeof(buf) - n,
                                   "I %d %llu P %lld %llu\n", t,
                                   static_cast<unsigned long long>(seq),
                                   static_cast<long long>(k),
                                   static_cast<unsigned long long>(vs));
                owned.emplace_back(k, make_value(k, vs));
              }
              sh.pipe.send(buf, static_cast<std::size_t>(n));
              std::vector<std::pair<Key, std::string_view>> kvs;
              kvs.reserve(owned.size());
              for (const auto& [k, v] : owned) kvs.emplace_back(k, v);
              if (!attempt(seq - 5, seq,
                           [&] { store.multi_put(kvs); })) {
                continue;
              }
              done(seq);
            } else if (r < 76) {  // single remove
              const Key k = pick_key();
              ++seq;
              sh.pipe.line("I %d %llu R %lld\n", t,
                           static_cast<unsigned long long>(seq),
                           static_cast<long long>(k));
              if (!attempt(seq, seq, [&] { store.remove(k); })) continue;
              done(seq);
            } else if (r < 84) {  // multi_remove, batch of 4
              char buf[4 * 40];
              int n = 0;
              std::vector<Key> ks;
              for (int i = 0; i < 4; ++i) {
                const Key k = pick_key();
                ++seq;
                n += std::snprintf(buf + n, sizeof(buf) - n,
                                   "I %d %llu R %lld\n", t,
                                   static_cast<unsigned long long>(seq),
                                   static_cast<long long>(k));
                ks.push_back(k);
              }
              sh.pipe.send(buf, static_cast<std::size_t>(n));
              if (!attempt(seq - 3, seq,
                           [&] { store.multi_remove(ks); })) {
                continue;
              }
              done(seq);
            } else if (r < 94) {  // reads keep traversal paths hot
              (void)store.get(pick_key());
            } else {
              std::vector<Key> ks;
              for (int i = 0; i < 6; ++i) ks.push_back(pick_key());
              (void)store.multi_get(ks);
            }
          }
        } catch (const std::bad_alloc&) {
          pool_full.store(true, std::memory_order_release);
          // Stop issuing; keep the process alive for the kill so the
          // parent still sees a SIGKILL exit (full pools are a sizing
          // problem, not a verification failure).
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
        }
      });
    }

    // kNever still needs explicit sync points for acks to ride on.
    if (!unsafe_ack && o.durability == kv::DurabilityMode::kNever) {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        store.checkpoint();
      }
    }
    for (auto& w : workers) w.join();  // unreachable: workers run forever
    _exit(0);
  } catch (const std::exception& e) {
    char buf[240];
    const int n =
        std::snprintf(buf, sizeof(buf), "E %.200s\n", e.what());
    sh.pipe.send(buf, static_cast<std::size_t>(n > 0 ? n : 0));
    _exit(3);
  }
}

// ------------------------------------------------------------- verifier

struct ExpectOp {
  bool is_put = false;
  std::uint64_t vseq = 0;
  bool acked = false;
};

struct Expect {
  std::uint64_t keys = 0;
  std::map<Key, std::vector<ExpectOp>> per_key;  // program order per key
  std::size_t acked_total = 0;
};

std::optional<Expect> load_expect(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  Expect e;
  char line[128];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == 'U') {
      std::sscanf(line, "U %llu", reinterpret_cast<unsigned long long*>(
                                      &e.keys));
    } else if (line[0] == 'O') {
      char kind = 0;
      long long key = 0;
      unsigned long long vseq = 0;
      int acked = 0;
      if (std::sscanf(line, "O %lld %c %llu %d", &key, &kind, &vseq,
                      &acked) == 4) {
        e.per_key[static_cast<Key>(key)].push_back(
            {kind == 'P', vseq, acked != 0});
        if (acked != 0) ++e.acked_total;
      }
    }
  }
  std::fclose(f);
  return e;
}

/// Post-crash image check. Exit codes: 0 contract holds, 1 violation,
/// 4 could not remap the region (caller re-execs for fresh ASLR).
template <class StoreT>
int verify_image(const Options& o) {
  const auto expect = load_expect(o.expect_file);
  if (!expect) {
    std::fprintf(stderr, "verify: cannot read %s\n", o.expect_file.c_str());
    return 1;
  }

  pmem::set_backend(pmem::Backend::kSimLatency);
  pmem::set_sim_latency(0, 0);
  const auto per_shard = std::max<std::size_t>(
      expect->keys / static_cast<std::size_t>(o.shards), 64);
  const kv::KeyRange range{
      0, static_cast<Key>(expect->keys + expect->keys / 8)};

  std::optional<StoreT> store;
  try {
    store.emplace(StoreT::open(o.file, o.capacity_mb << 20,
                               static_cast<std::uint32_t>(o.shards),
                               per_shard, range));
  } catch (const std::exception& e) {
    if (std::strstr(e.what(), "could not re-map") != nullptr) return 4;
    if (expect->acked_total == 0) {
      // Killed before anything was acknowledged — e.g. mid-creation. A
      // rejected image loses nothing the store ever promised to keep.
      std::printf("verify: open rejected (%s); no acked ops — ok\n",
                  e.what());
      return 0;
    }
    std::fprintf(stderr,
                 "verify: VIOLATION: open() rejected an image holding %zu "
                 "acked ops: %s\n",
                 expect->acked_total, e.what());
    return 1;
  }

  int violations = 0;
  std::size_t present = 0;
  std::map<Key, std::string> probed;  // present keys -> recovered value

  for (Key k = 0; k < static_cast<Key>(expect->keys); ++k) {
    const auto recovered = store->get(k);
    if (recovered) {
      ++present;
      probed.emplace(k, *recovered);
    }
    const auto it = expect->per_key.find(k);
    const std::size_t n = it == expect->per_key.end() ? 0 : it->second.size();

    // Allowed states: the post-state of any op at or after the acked
    // floor; "absent" additionally when no op on this key was acked.
    int floor = -1;
    if (n != 0) {
      for (std::size_t i = 0; i < n; ++i) {
        if (it->second[i].acked) floor = static_cast<int>(i);
      }
    }
    bool ok = false;
    if (floor == -1 && !recovered) ok = true;
    for (std::size_t i = (floor < 0 ? 0 : static_cast<std::size_t>(floor));
         !ok && i < n; ++i) {
      const ExpectOp& op = it->second[i];
      if (op.is_put) {
        ok = recovered && *recovered == make_value(k, op.vseq);
      } else {
        ok = !recovered;
      }
    }
    if (ok) continue;

    ++violations;
    if (violations == 21) {
      std::fprintf(stderr, "verify: ... further violations suppressed\n");
    }
    if (violations > 20) continue;  // keep counting keys, stop printing
    // Classify: rolled back past the floor, lost, or torn.
    const char* kind = "torn/corrupt value";
    if (!recovered) {
      kind = "acknowledged write lost";
    } else if (n != 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const ExpectOp& op = it->second[i];
        if (op.is_put && *recovered == make_value(k, op.vseq)) {
          kind = "acknowledged write rolled back";
          break;
        }
      }
    }
    std::fprintf(stderr,
                 "verify: VIOLATION key=%lld: %s (ops=%zu floor=%d "
                 "recovered=%s)\n",
                 static_cast<long long>(k), kind, n, floor,
                 recovered ? recovered->substr(0, 40).c_str() : "<absent>");
  }

  if (store->size() != present) {
    std::fprintf(stderr,
                 "verify: VIOLATION: size()=%zu but %zu keys probe as "
                 "present\n",
                 store->size(), present);
    ++violations;
  }

  if constexpr (StoreT::kOrdered) {
    // scan() must agree with point lookups: strictly ascending, no key
    // outside the universe, exact values, nothing missing or extra.
    std::map<Key, std::string> scanned;
    Key start = std::numeric_limits<Key>::min();
    bool ascending = true;
    for (;;) {
      const auto chunk = store->scan(start, 512);
      for (const auto& [k, v] : chunk) {
        if (!scanned.empty() && k <= scanned.rbegin()->first) {
          ascending = false;
        }
        scanned.emplace(k, v);
      }
      if (chunk.size() < 512) break;
      start = chunk.back().first + 1;
    }
    if (!ascending) {
      std::fprintf(stderr, "verify: VIOLATION: scan order not ascending\n");
      ++violations;
    }
    if (scanned != probed) {
      std::fprintf(stderr,
                   "verify: VIOLATION: scan() (%zu keys) disagrees with "
                   "point lookups (%zu keys)\n",
                   scanned.size(), probed.size());
      ++violations;
    }
  }

  if (violations == 0) {
    std::printf("verify: ok (%zu keys present, %zu acked ops honored)\n",
                present, expect->acked_total);
  }
  return violations == 0 ? 0 : 1;
}

// ----------------------------------------------------- parent: ack log

struct IterLog {
  // Per thread/connection, ops in seq order (seq = index + 1).
  std::vector<std::vector<ExpectOp>> ops;
  std::vector<std::vector<Key>> op_keys;
  std::vector<std::uint64_t> done_floor;
  std::vector<std::uint64_t> acked_floor;
  // Seqs refused by a full pool (--inject): excluded from the floors —
  // a later D covering their seq range must not promise them durable.
  std::vector<std::set<std::uint64_t>> failed;
  std::size_t failed_total = 0;
  std::string child_error;

  explicit IterLog(int threads)
      : ops(threads), op_keys(threads), done_floor(threads, 0),
        acked_floor(threads, 0), failed(threads) {}

  void parse_line(const char* line) {
    int t = 0;
    unsigned long long seq = 0, vseq = 0;
    long long key = 0;
    if (line[0] == 'I') {
      char kind = 0;
      if (std::sscanf(line, "I %d %llu %c %lld %llu", &t, &seq, &kind, &key,
                      &vseq) >= 4 &&
          t >= 0 && t < static_cast<int>(ops.size())) {
        // Seqs are dense per thread; I-lines arrive in order.
        ops[t].push_back({kind == 'P', vseq, false});
        op_keys[t].push_back(static_cast<Key>(key));
      }
    } else if (line[0] == 'D') {
      if (std::sscanf(line, "D %d %llu", &t, &seq) == 2 && t >= 0 &&
          t < static_cast<int>(ops.size())) {
        done_floor[t] = std::max<std::uint64_t>(done_floor[t], seq);
      }
    } else if (line[0] == 'A') {
      if (std::sscanf(line, "A %d %llu", &t, &seq) == 2 && t >= 0 &&
          t < static_cast<int>(ops.size())) {
        acked_floor[t] = std::max<std::uint64_t>(acked_floor[t], seq);
      }
    } else if (line[0] == 'F') {
      unsigned long long lo = 0, hi = 0;
      if (std::sscanf(line, "F %d %llu %llu", &t, &lo, &hi) == 3 &&
          t >= 0 && t < static_cast<int>(ops.size()) && lo >= 1 &&
          lo <= hi && hi - lo < 64) {
        for (unsigned long long s2 = lo; s2 <= hi; ++s2) {
          failed[t].insert(s2);
        }
        ++failed_total;
      }
    } else if (line[0] == 'E') {
      child_error = line + 2;
    }
  }

  /// Fold floors into per-op acked flags. SIGKILL keeps the page cache,
  /// so applied (D) implies survives-reopen just like acked (A) does.
  void seal() {
    for (std::size_t t = 0; t < ops.size(); ++t) {
      const std::uint64_t floor = std::max(done_floor[t], acked_floor[t]);
      for (std::size_t i = 0; i < ops[t].size() && i < floor; ++i) {
        if (failed[t].count(i + 1) != 0) continue;  // refused, not covered
        ops[t][i].acked = true;
      }
    }
  }

  std::size_t acked_total() const {
    std::size_t n = 0;
    for (const auto& v : ops) {
      for (const auto& op : v) n += op.acked ? 1 : 0;
    }
    return n;
  }

  std::size_t issued_total() const {
    std::size_t n = 0;
    for (const auto& v : ops) n += v.size();
    return n;
  }

  bool write_expect(const std::string& path, std::uint64_t keys) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "U %llu\n", static_cast<unsigned long long>(keys));
    for (std::size_t t = 0; t < ops.size(); ++t) {
      for (std::size_t i = 0; i < ops[t].size(); ++i) {
        const ExpectOp& op = ops[t][i];
        std::fprintf(f, "O %lld %c %llu %d\n",
                     static_cast<long long>(op_keys[t][i]),
                     op.is_put ? 'P' : 'R',
                     static_cast<unsigned long long>(op.vseq),
                     op.acked ? 1 : 0);
      }
    }
    return std::fclose(f) == 0;
  }
};

// ----------------------------------------------------- parent: plumbing

int wait_child(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  return status;
}

/// Read ack lines until `deadline`, then SIGKILL `pid` and drain to EOF.
/// Returns false on a premature child exit (EOF before the kill).
/// `refusal_kill_ms >= 0` re-bases the deadline to that many ms after
/// the first F-line lands (capped by the passed deadline, which then
/// acts as the never-exhausted fallback).
bool drain_pipe(int fd, pid_t pid, std::chrono::steady_clock::time_point
                                        deadline,
                IterLog& log, int refusal_kill_ms = -1) {
  std::string buf;
  char chunk[4096];
  bool killed = false;
  bool premature = false;
  bool refusal_seen = false;
  for (;;) {
    if (refusal_kill_ms >= 0 && !refusal_seen && log.failed_total > 0) {
      refusal_seen = true;
      const auto trigger = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(refusal_kill_ms);
      if (trigger < deadline) deadline = trigger;
    }
    if (!killed) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        ::kill(pid, SIGKILL);
        killed = true;
      } else {
        struct pollfd p = {fd, POLLIN, 0};
        const int ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count());
        const int r = ::poll(&p, 1, std::max(ms, 1));
        if (r == 0) continue;  // timed out: kill on the next pass
        if (r < 0) {
          if (errno == EINTR) continue;
          break;
        }
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      if (!killed) premature = true;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0, nl;
    while ((nl = buf.find('\n', pos)) != std::string::npos) {
      buf[nl] = '\0';
      log.parse_line(buf.c_str() + pos);
      pos = nl + 1;
    }
    buf.erase(0, pos);
  }
  if (!killed) ::kill(pid, SIGKILL);
  return !premature;
}

/// fork+exec ourselves in --verify mode; retries remap collisions (exit
/// 4) with fresh address spaces. Returns 0 pass, 1 violation, -1 error.
int run_verifier(const char* self, const Options& o,
                 const std::string& expect_path) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    const pid_t pid = ::fork();
    if (pid < 0) return -1;
    if (pid == 0) {
      const std::string file_arg = "--file=" + o.file;
      const std::string expect_arg = "--expect=" + expect_path;
      const std::string layout_arg = "--layout=" + o.layout;
      const std::string shards_arg = "--shards=" + std::to_string(o.shards);
      const std::string cap_arg =
          "--capacity-mb=" + std::to_string(o.capacity_mb);
      const char* argv[] = {self,
                            "--verify",
                            file_arg.c_str(),
                            expect_arg.c_str(),
                            layout_arg.c_str(),
                            shards_arg.c_str(),
                            cap_arg.c_str(),
                            nullptr};
      ::execv(self, const_cast<char**>(argv));
      _exit(127);
    }
    const int status = wait_child(pid);
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == 0) return 0;
      if (code == 1) return 1;
      if (code == 4) continue;  // remap collision: reroll ASLR
      std::fprintf(stderr, "flit-crashtest: verifier exited with %d\n",
                   code);
      return -1;
    }
    std::fprintf(stderr, "flit-crashtest: verifier died (status %d)\n",
                 status);
    return -1;
  }
  std::fprintf(stderr,
               "flit-crashtest: verifier could not remap the region after "
               "6 attempts\n");
  return -1;
}

// ------------------------------------------------------- api-mode iter

/// One kill/reopen/verify round. Returns 0 ok, 1 violation, -1 error.
int run_api_iteration(const char* self, const Options& o,
                      std::uint64_t iter_seed, std::mt19937_64& rng,
                      std::size_t& acked_accum, std::size_t& oos_accum) {
  pmem::FileRegion::destroy(o.file);

  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(fds[0]);
    if (o.layout == "ordered") {
      run_workload_child<OrderedStore>(o, iter_seed, fds[1]);
    } else {
      run_workload_child<HashedStore>(o, iter_seed, fds[1]);
    }
  }
  ::close(fds[1]);

  const int kill_ms = o.kill_min_ms +
                      static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                   o.kill_max_ms -
                                                   o.kill_min_ms + 1));
  IterLog log(o.threads);
  // Inject mode: kill_ms counts from the first refusal, with a generous
  // fallback so a workload that never exhausts still dies (and then
  // fails the oos_accum check at the end of main).
  const bool killed_running =
      o.inject ? drain_pipe(fds[0], pid,
                            std::chrono::steady_clock::now() +
                                std::chrono::seconds(10),
                            log, kill_ms)
               : drain_pipe(fds[0], pid,
                            std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(kill_ms),
                            log);
  ::close(fds[0]);
  const int status = wait_child(pid);

  if (!log.child_error.empty()) {
    std::fprintf(stderr, "flit-crashtest: workload child failed: %s\n",
                 log.child_error.c_str());
    return -1;
  }
  if (!killed_running || !WIFSIGNALED(status) ||
      WTERMSIG(status) != SIGKILL) {
    std::fprintf(stderr,
                 "flit-crashtest: child exited on its own (status %d) — "
                 "expected to die by SIGKILL\n",
                 status);
    return -1;
  }

  log.seal();
  acked_accum += log.acked_total();
  oos_accum += log.failed_total;
  const std::string expect_path = o.file + ".expect";
  if (!log.write_expect(expect_path, o.keys)) return -1;
  if (o.verbose) {
    std::printf(o.inject ? "  kill@brim+%dms issued=%zu acked=%zu oos=%zu\n"
                         : "  kill@%dms issued=%zu acked=%zu oos=%zu\n",
                kill_ms, log.issued_total(), log.acked_total(),
                log.failed_total);
  }
  return run_verifier(self, o, expect_path);
}

// ------------------------------------------------------- net-mode iter

int run_net_iteration(const char* self, const Options& o,
                      std::uint64_t iter_seed, std::mt19937_64& rng,
                      std::size_t& acked_accum) {
  pmem::FileRegion::destroy(o.file);
  net::ignore_sigpipe();

  // Spawn flit_server with its stdout on a pipe; parse the listen line.
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string file_arg = "--file=" + o.file;
    const std::string layout_arg = "--layout=" + o.layout;
    const std::string keys_arg = "--keys=" + std::to_string(o.keys);
    const std::string shards_arg = "--shards=" + std::to_string(o.shards);
    const std::string cap_arg =
        "--capacity-mb=" + std::to_string(o.capacity_mb);
    const char* argv[] = {o.server.c_str(), "--port=0",
                          "--durability=always", "--flush-ms=1000",
                          file_arg.c_str(),     layout_arg.c_str(),
                          keys_arg.c_str(),     shards_arg.c_str(),
                          cap_arg.c_str(),      nullptr};
    ::execv(o.server.c_str(), const_cast<char**>(argv));
    _exit(127);
  }
  ::close(fds[1]);

  std::uint16_t port = 0;
  {
    std::FILE* f = ::fdopen(fds[0], "r");
    char line[512];
    while (f != nullptr && std::fgets(line, sizeof(line), f) != nullptr) {
      unsigned p = 0;
      if (std::sscanf(line, "flit-server: listening on %*[0-9.]:%u", &p) ==
          1) {
        port = static_cast<std::uint16_t>(p);
        break;
      }
    }
    if (f != nullptr) std::fclose(f);  // also closes fds[0]
  }
  if (port == 0) {
    std::fprintf(stderr, "flit-crashtest: flit_server did not come up\n");
    ::kill(pid, SIGKILL);
    wait_child(pid);
    return -1;
  }

  // Pipelined SET/DEL load; a reply received == the op is acked (the
  // server checkpoints each batch before flushing its replies).
  IterLog log(o.threads);
  std::atomic<bool> conn_error{false};
  std::vector<std::thread> conns;
  for (int c = 0; c < o.threads; ++c) {
    conns.emplace_back([&, c] {
      std::mt19937_64 crng(iter_seed * 0xD1B54A32D192ED03ull + c + 1);
      const std::uint64_t stripe =
          o.keys / static_cast<std::uint64_t>(o.threads);
      std::map<Key, std::uint64_t> vseq;
      try {
        net::Client cl = net::Client::connect("127.0.0.1", port);
        std::vector<std::string> key_strs(
            static_cast<std::size_t>(o.pipeline));
        std::vector<std::string> vals(static_cast<std::size_t>(o.pipeline));
        for (;;) {
          const std::size_t first = log.ops[c].size();
          for (int i = 0; i < o.pipeline; ++i) {
            const Key k = static_cast<Key>(
                c + o.threads * static_cast<int>(crng() % stripe));
            key_strs[i] = std::to_string(k);
            if (crng() % 100 < 75) {
              const std::uint64_t vs = ++vseq[k];
              vals[i] = make_value(k, vs);
              cl.enqueue({"SET", key_strs[i], vals[i]});
              log.ops[c].push_back({true, vs, false});
            } else {
              cl.enqueue({"DEL", key_strs[i]});
              log.ops[c].push_back({false, 0, false});
            }
            log.op_keys[c].push_back(k);
          }
          cl.flush();
          for (int i = 0; i < o.pipeline; ++i) {
            const net::Reply r = cl.read_reply();
            if (r.is_error()) throw std::runtime_error("reply: " + r.str);
            log.ops[c][first + static_cast<std::size_t>(i)].acked = true;
          }
        }
      } catch (const std::exception& e) {
        // EOF/EPIPE after the kill is the expected way out; a reply-level
        // error is not.
        if (std::strncmp(e.what(), "reply:", 6) == 0) {
          std::fprintf(stderr, "flit-crashtest: conn %d: %s\n", c,
                       e.what());
          conn_error.store(true, std::memory_order_release);
        }
      }
    });
  }

  const int kill_ms = o.kill_min_ms +
                      static_cast<int>(rng() % static_cast<std::uint64_t>(
                                                   o.kill_max_ms -
                                                   o.kill_min_ms + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(kill_ms));
  ::kill(pid, SIGKILL);
  for (auto& t : conns) t.join();
  wait_child(pid);
  if (conn_error.load(std::memory_order_acquire)) return -1;

  // No seal(): net-mode acks come only from replies, there is no D
  // channel (the server's internal progress is invisible — exactly what
  // a client sees).
  acked_accum += log.acked_total();
  const std::string expect_path = o.file + ".expect";
  if (!log.write_expect(expect_path, o.keys)) return -1;
  if (o.verbose) {
    std::printf("  kill@%dms issued=%zu acked=%zu\n", kill_ms,
                log.issued_total(), log.acked_total());
  }
  return run_verifier(self, o, expect_path);
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);

  if (o.verify) {
    try {
      return o.layout == "ordered" ? verify_image<OrderedStore>(o)
                                   : verify_image<HashedStore>(o);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "verify: fatal: %s\n", e.what());
      return 1;
    }
  }

  if (o.server.empty()) o.server = sibling_path(argv[0], "flit_server");
  if (o.seed == 0) {
    o.seed = (static_cast<std::uint64_t>(std::random_device{}()) << 32) ^
             std::random_device{}();
    if (o.seed == 0) o.seed = 1;
  }
  std::mt19937_64 rng(o.seed);

  std::printf(
      "flit-crashtest: mode=%s layout=%s durability=%s iters=%d "
      "threads=%d keys=%llu seed=%llu%s\n",
      o.mode.c_str(), o.layout.c_str(), kv::to_string(o.durability),
      o.iters, o.threads, static_cast<unsigned long long>(o.keys),
      static_cast<unsigned long long>(o.seed),
      std::getenv("FLIT_CRASHTEST_UNSAFE_ACK") != nullptr
          ? " [UNSAFE_ACK seeded bug active]"
          : "");
  std::fflush(stdout);

  int violations = 0;
  int errors = 0;
  std::size_t acked_accum = 0;
  std::size_t oos_accum = 0;
  for (int i = 0; i < o.iters; ++i) {
    const std::uint64_t iter_seed = rng();
    const int r = o.mode == "net"
                      ? run_net_iteration(argv[0], o, iter_seed, rng,
                                          acked_accum)
                      : run_api_iteration(argv[0], o, iter_seed, rng,
                                          acked_accum, oos_accum);
    if (r == 1) {
      ++violations;
      std::fprintf(stderr,
                   "flit-crashtest: iteration %d FAILED (seed=%llu, "
                   "iter_seed=%llu)\n",
                   i, static_cast<unsigned long long>(o.seed),
                   static_cast<unsigned long long>(iter_seed));
      if (!o.expect_violation) break;  // keep the image for a post-mortem
    } else if (r < 0) {
      ++errors;
      std::fprintf(stderr,
                   "flit-crashtest: iteration %d errored (seed=%llu)\n", i,
                   static_cast<unsigned long long>(o.seed));
      break;
    }
  }

  const bool keep_image = violations != 0 && !o.expect_violation;
  if (!keep_image) {
    pmem::FileRegion::destroy(o.file);
    (void)::unlink((o.file + ".expect").c_str());
  }

  if (errors != 0) {
    std::fprintf(stderr, "flit-crashtest: aborted on a harness error\n");
    return 1;
  }
  if (o.expect_violation) {
    if (violations == 0) {
      std::fprintf(stderr,
                   "flit-crashtest: expected the seeded bug to be caught, "
                   "but every iteration passed\n");
      return 1;
    }
    std::printf("flit-crashtest: seeded bug detected in %d/%d iterations "
                "— detector works\n",
                violations, o.iters);
    return 0;
  }
  if (violations != 0) {
    std::fprintf(stderr,
                 "flit-crashtest: DURABILITY CONTRACT VIOLATED "
                 "(seed=%llu; image kept at %s)\n",
                 static_cast<unsigned long long>(o.seed), o.file.c_str());
    return 1;
  }
  if (acked_accum == 0) {
    std::fprintf(stderr,
                 "flit-crashtest: no op was ever acknowledged across %d "
                 "iterations — ack plumbing is broken\n",
                 o.iters);
    return 1;
  }
  if (o.inject && oos_accum == 0) {
    std::fprintf(stderr,
                 "flit-crashtest: --inject never hit OutOfSpace across %d "
                 "iterations — capacity too generous to test exhaustion\n",
                 o.iters);
    return 1;
  }
  if (o.inject) {
    std::printf("flit-crashtest: ok — %d kills at the brim, %zu acked ops "
                "verified, %zu refusals, 0 violations (seed=%llu)\n",
                o.iters, acked_accum, oos_accum,
                static_cast<unsigned long long>(o.seed));
    return 0;
  }
  std::printf("flit-crashtest: ok — %d kills, %zu acked ops verified, 0 "
              "violations (seed=%llu)\n",
              o.iters, acked_accum,
              static_cast<unsigned long long>(o.seed));
  return 0;
}
