// flit_loadgen — closed-loop verified load generator for flit-server.
//
// N connections (one thread each) × pipeline depth × a YCSB-style mix:
// every round, each connection assembles `pipeline` operations from the
// mix — reads first, then writes, so the server's run-grouping turns the
// burst into one multi_get plus one multi_put — flushes them as one
// pipelined batch, and reads the replies back before starting the next
// round. Closed loop: per-request latency is the round's flush-to-last-
// reply time (every request in the burst is in flight for the whole
// round), recorded in a log2-linear histogram (p50/p99/p999).
//
// Verification gives the run teeth, like bench/ycsb_kv:
//   * every GET of a prefilled key must hit, and its payload's key stamp
//     must match (A/B/C/E never remove keys);
//   * SCAN replies must be ascending, start at/after the requested key,
//     and stamp-match every pair;
//   * any -ERR reply or connection drop counts as an error.
// Any miss/mismatch/error fails the process (exit 1), so the CI smoke
// run is an end-to-end correctness check of the network path.
//
// The server's STATS command is sampled before and after each point:
// pfences/op on the wire-facing workload is the paper's fence-coalescing
// argument measured through real pipelined connections (flat ~O(1)
// fences per *batch* means pfences/op falls with pipeline depth; the
// server-smoke gate asserts pipelined << scalar).
//
//   ./flit_loadgen --port=7379                       # one point
//   ./flit_loadgen --port=7379 --sweep               # conns × pipeline grid
//   ./flit_loadgen --port=7379 --mix=E               # scans (ordered server)
//
// Flags: --host= --port= --conns=N --pipeline=N --mix=A|B|C|E --keys=N
//        --value-bytes=N --seconds=F --seed=N --sweep --no-load
//        --shutdown (send SHUTDOWN when done)
//        --chaos (misbehave on purpose: randomly abandon a flushed burst
//        without reading replies, half-close mid-round, or send a
//        truncated frame and hang up — then reconnect and resume. The
//        server must shrug every one of these off: verification still
//        runs on well-behaved rounds and any miss/mismatch, or a failure
//        to reconnect, fails the process. SET payloads are a pure
//        function of the key, so a torn burst's half-applied writes are
//        indistinguishable from applied ones.)
//
// Emits CSV rows (CsvWriter) and BENCH_flit_loadgen.json; columns are
// understood by scripts/bench_diff.py (which tolerates their absence in
// old snapshots).
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/histogram.hpp"
#include "bench_util/table.hpp"
#include "bench_util/ycsb.hpp"
#include "net/client.hpp"

namespace {

using namespace flit;
using namespace flit::bench;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int conns = 4;
  std::size_t pipeline = 16;
  std::string mix = "A";
  std::uint64_t keys = 20'000;
  std::size_t value_bytes = 100;
  double seconds = 0.3;
  std::uint64_t seed = 0x5EEDu;
  bool sweep = false;
  bool no_load = false;
  bool shutdown = false;
  bool chaos = false;
};

const char* arg_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (const char* v = arg_value(a, "--host")) {
      o.host = v;
    } else if (const char* v = arg_value(a, "--port")) {
      o.port = std::atoi(v);
    } else if (const char* v = arg_value(a, "--conns")) {
      o.conns = std::atoi(v);
    } else if (const char* v = arg_value(a, "--pipeline")) {
      o.pipeline = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--mix")) {
      o.mix = v;
    } else if (const char* v = arg_value(a, "--keys")) {
      o.keys = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--value-bytes")) {
      o.value_bytes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg_value(a, "--seconds")) {
      o.seconds = std::atof(v);
    } else if (const char* v = arg_value(a, "--seed")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--sweep") == 0) {
      o.sweep = true;
    } else if (std::strcmp(a, "--no-load") == 0) {
      o.no_load = true;
    } else if (std::strcmp(a, "--shutdown") == 0) {
      o.shutdown = true;
    } else if (std::strcmp(a, "--chaos") == 0) {
      o.chaos = true;
    } else {
      std::fprintf(stderr, "flit_loadgen: unknown flag %s\n", a);
      std::exit(2);
    }
  }
  if (o.port <= 0 || o.port > 65535) {
    std::fprintf(stderr, "flit_loadgen: --port=N is required\n");
    std::exit(2);
  }
  if (o.conns < 1 || o.pipeline < 1 || o.keys == 0 || o.seconds <= 0) {
    std::fprintf(stderr, "flit_loadgen: bad --conns/--pipeline/--keys\n");
    std::exit(2);
  }
  if (o.mix != "A" && o.mix != "B" && o.mix != "C" && o.mix != "E") {
    std::fprintf(stderr, "flit_loadgen: --mix must be A, B, C or E\n");
    std::exit(2);
  }
  return o;
}

YcsbMix mix_of(const std::string& name) {
  if (name == "B") return YcsbMix::b();
  if (name == "C") return YcsbMix::c();
  if (name == "E") return YcsbMix::e();
  return YcsbMix::a();
}

/// Pull "name=value" out of the STATS bulk reply; 0 when absent.
std::uint64_t parse_stat(const std::string& text, const char* name) {
  const std::string needle = std::string(name) + "=";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
}

std::string parse_stat_str(const std::string& text, const char* name) {
  const std::string needle = std::string(name) + "=";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t from = at + needle.size();
  const std::size_t end = text.find(' ', from);
  return text.substr(from, end == std::string::npos ? end : end - from);
}

/// Prefill keys [0, keys) through the wire: MSET in chunks (well under
/// the server's array-element limit), verified +OK.
void load_phase(const Options& o) {
  net::Client c = net::Client::connect(o.host,
                                       static_cast<std::uint16_t>(o.port));
  constexpr std::size_t kChunk = 128;
  std::vector<std::string> parts;
  std::vector<std::string_view> views;
  for (std::uint64_t k0 = 0; k0 < o.keys; k0 += kChunk) {
    const std::uint64_t hi = std::min(o.keys, k0 + kChunk);
    parts.clear();
    parts.push_back("MSET");
    for (std::uint64_t k = k0; k < hi; ++k) {
      parts.push_back(std::to_string(k));
      parts.push_back(
          ycsb_value(static_cast<std::int64_t>(k), o.value_bytes));
    }
    views.assign(parts.begin(), parts.end());
    c.enqueue_parts(views.data(), views.size());
    c.flush();
    const net::Reply r = c.read_reply();
    if (!r.ok()) {
      std::fprintf(stderr, "flit_loadgen: load MSET failed: %s\n",
                   r.str.c_str());
      std::exit(1);
    }
  }
}

struct ConnResult {
  std::uint64_t ops = 0;
  std::uint64_t misses = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t errors = 0;
  std::uint64_t scan_entries = 0;
  std::uint64_t chaos_events = 0;  ///< rounds sacrificed to --chaos
  LatencyHistogram hist;  ///< per-request sojourn, nanoseconds
};

/// One connection's closed loop. Reads-then-writes per round: safe for
/// these mixes (no read-modify-write), and it presents the server with
/// exactly two command runs per burst — the multi-op fast path.
ConnResult run_conn(const Options& o, const YcsbMix& mix, int tid,
                    std::atomic<std::int64_t>& frontier,
                    const Zipfian& zipf, Clock::time_point deadline) {
  ConnResult res;
  const auto port = static_cast<std::uint16_t>(o.port);
  std::optional<net::Client> c(net::Client::connect(o.host, port));
  Rng rng(o.seed + 0x9000ull * static_cast<std::uint64_t>(tid + 1));

  struct PendingRead {
    std::int64_t key;
    bool is_scan;
  };
  std::vector<PendingRead> reads;
  std::vector<std::int64_t> writes;
  std::string value;

  while (Clock::now() < deadline) {
    reads.clear();
    writes.clear();
    // Assemble the round: reads (GET/SCAN) first, then writes (SET).
    for (std::size_t i = 0; i < o.pipeline; ++i) {
      switch (mix.pick(rng)) {
        case YcsbOp::kRead:
          reads.push_back(
              {static_cast<std::int64_t>(zipf.next_scrambled(rng)), false});
          break;
        case YcsbOp::kScan:
          reads.push_back(
              {static_cast<std::int64_t>(zipf.next_scrambled(rng)), true});
          break;
        case YcsbOp::kUpdate:
          writes.push_back(
              static_cast<std::int64_t>(zipf.next_scrambled(rng)));
          break;
        case YcsbOp::kInsert:
          writes.push_back(
              frontier.fetch_add(1, std::memory_order_relaxed));
          break;
        case YcsbOp::kRmw:
          // Not offered by the loadgen mixes; treat as update.
          writes.push_back(
              static_cast<std::int64_t>(zipf.next_scrambled(rng)));
          break;
      }
    }
    for (const PendingRead& r : reads) {
      const std::string key = std::to_string(r.key);
      if (r.is_scan) {
        const std::uint64_t len = 1 + rng.next() % mix.max_scan_len;
        c->enqueue({"SCAN", key, std::to_string(len)});
      } else {
        c->enqueue({"GET", key});
      }
    }
    for (const std::int64_t k : writes) {
      value = ycsb_value(k, o.value_bytes);
      c->enqueue({"SET", std::to_string(k), value});
    }

    // Chaos: sacrifice ~1 round in 8 to deliberate client misbehavior.
    // The server owes the process nothing for these rounds — the test is
    // that it survives them and keeps serving the reconnected client.
    if (o.chaos && rng.next() % 8 == 0) {
      ++res.chaos_events;
      switch (rng.next() % 3) {
        case 0:
          // Abandon: flush the burst, hang up without reading replies.
          c->flush();
          break;
        case 1:
          // Half-close: signal EOF mid-conversation, then drain. The
          // server must flush the replies it owes before closing.
          c->flush();
          ::shutdown(c->fd(), SHUT_WR);
          try {
            for (;;) (void)c->read_reply();
          } catch (const std::exception&) {
            // EOF is the expected outcome.
          }
          break;
        default: {
          // Torn frame: the flushed burst plus a request cut off
          // mid-bulk. The parser must discard the partial state.
          c->flush();
          static const char kTorn[] = "*2\r\n$3\r\nGET\r\n$5\r\n12";
          (void)::send(c->fd(), kTorn, sizeof(kTorn) - 1, MSG_NOSIGNAL);
          break;
        }
      }
      c.reset();
      try {
        c.emplace(net::Client::connect(o.host, port));
      } catch (const std::exception&) {
        ++res.errors;  // a chaos round must not cost us the server
        return res;
      }
      continue;
    }

    const auto t0 = Clock::now();
    c->flush();
    for (const PendingRead& r : reads) {
      const net::Reply rep = c->read_reply();
      if (rep.is_error()) {
        ++res.errors;
        continue;
      }
      if (r.is_scan) {
        if (rep.type != net::Reply::Type::kArray ||
            rep.elems.size() % 2 != 0) {
          ++res.errors;
          continue;
        }
        if (rep.elems.empty()) {
          ++res.misses;  // prefilled keyspace, start key in range
          continue;
        }
        std::int64_t prev = std::numeric_limits<std::int64_t>::min();
        for (std::size_t j = 0; j + 1 < rep.elems.size(); j += 2) {
          const char* ks = rep.elems[j].str.c_str();
          const std::int64_t sk = std::strtoll(ks, nullptr, 10);
          if (sk < r.key || sk <= prev ||
              !ycsb_value_matches(sk, rep.elems[j + 1].str,
                                  o.value_bytes)) {
            ++res.mismatches;
          }
          prev = sk;
          ++res.scan_entries;
        }
      } else {
        if (rep.is_null()) {
          ++res.misses;  // A/B/C never remove: a miss is a lost record
        } else if (rep.type != net::Reply::Type::kBulk ||
                   !ycsb_value_matches(r.key, rep.str, o.value_bytes)) {
          ++res.mismatches;
        }
      }
    }
    for (std::size_t j = 0; j < writes.size(); ++j) {
      const net::Reply rep = c->read_reply();
      if (!rep.ok()) ++res.errors;
    }
    const auto dt = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    // Closed loop: every request in the burst was in flight for the whole
    // round, so the round time IS each request's sojourn time.
    res.hist.record(dt);
    res.ops += o.pipeline;
  }
  return res;
}

struct PointRow {
  std::string layout, mix;
  int conns;
  std::size_t pipeline;
  double mops, p50_us, p99_us, p999_us, pfences_per_op, pwbs_per_op;
  std::uint64_t misses, mismatches, errors, chaos_events;
};

PointRow run_point(const Options& o, int conns, std::size_t pipeline,
                   CsvWriter& csv, Table& table) {
  Options p = o;
  p.conns = conns;
  p.pipeline = pipeline;
  const YcsbMix mix = mix_of(p.mix);
  const Zipfian zipf(p.keys, 0.99);
  std::atomic<std::int64_t> frontier{static_cast<std::int64_t>(p.keys)};

  net::Client control = net::Client::connect(
      p.host, static_cast<std::uint16_t>(p.port));
  const net::Reply before = control.command({"STATS"});
  const std::string layout = parse_stat_str(before.str, "layout");

  std::vector<ConnResult> results(static_cast<std::size_t>(conns));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(p.seconds));
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          run_conn(p, mix, t, frontier, zipf, deadline);
    });
  }
  for (auto& th : threads) th.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  // Fresh connection for the closing sample: the control connection sat
  // idle for the whole point and a server running --idle-timeout-ms may
  // have legitimately reaped it.
  net::Client control2 = net::Client::connect(
      p.host, static_cast<std::uint16_t>(p.port));
  const net::Reply after = control2.command({"STATS"});

  ConnResult tot;
  for (const ConnResult& r : results) {
    tot.ops += r.ops;
    tot.misses += r.misses;
    tot.mismatches += r.mismatches;
    tot.errors += r.errors;
    tot.scan_entries += r.scan_entries;
    tot.chaos_events += r.chaos_events;
    tot.hist.merge(r.hist);
  }
  const std::uint64_t pfences =
      parse_stat(after.str, "pfences") - parse_stat(before.str, "pfences");
  const std::uint64_t pwbs =
      parse_stat(after.str, "pwbs") - parse_stat(before.str, "pwbs");

  PointRow row;
  row.layout = layout.empty() ? "hashed" : layout;
  row.mix = p.mix;
  row.conns = conns;
  row.pipeline = pipeline;
  row.mops = seconds > 0
                 ? static_cast<double>(tot.ops) / seconds / 1e6
                 : 0.0;
  row.p50_us = static_cast<double>(tot.hist.percentile(0.50)) / 1e3;
  row.p99_us = static_cast<double>(tot.hist.percentile(0.99)) / 1e3;
  row.p999_us = static_cast<double>(tot.hist.percentile(0.999)) / 1e3;
  row.pfences_per_op =
      tot.ops > 0
          ? static_cast<double>(pfences) / static_cast<double>(tot.ops)
          : 0.0;
  row.pwbs_per_op =
      tot.ops > 0 ? static_cast<double>(pwbs) / static_cast<double>(tot.ops)
                  : 0.0;
  row.misses = tot.misses;
  row.mismatches = tot.mismatches;
  row.errors = tot.errors;
  row.chaos_events = tot.chaos_events;

  const std::string conns_s = Table::fmt_u(static_cast<std::uint64_t>(conns));
  const std::string pipe_s = Table::fmt_u(pipeline);
  csv.row({"net", row.layout, row.mix, pipe_s, conns_s,
           Table::fmt(row.mops, 3), Table::fmt(row.p50_us, 1),
           Table::fmt(row.p99_us, 1), Table::fmt(row.p999_us, 1),
           Table::fmt(row.pfences_per_op, 3),
           Table::fmt(row.pwbs_per_op, 3), Table::fmt_u(row.misses),
           Table::fmt_u(row.mismatches), Table::fmt_u(row.errors),
           Table::fmt_u(row.chaos_events)});
  table.add_row({row.layout, row.mix, conns_s, pipe_s,
                 Table::fmt(row.mops, 3), Table::fmt(row.p50_us, 1),
                 Table::fmt(row.p99_us, 1), Table::fmt(row.p999_us, 1),
                 Table::fmt(row.pfences_per_op, 3)});
  return row;
}

void write_json(const char* path, const std::vector<PointRow>& rows,
                const Options& o, bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("flit_loadgen: warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"flit_loadgen\",\n  \"keys\": %llu,\n"
               "  \"value_bytes\": %zu,\n  \"seconds_per_point\": %.3f,\n"
               "  \"ok\": %s,\n  \"rows\": [\n",
               static_cast<unsigned long long>(o.keys), o.value_bytes,
               o.seconds, ok ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PointRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"words\": \"net\", \"layout\": \"%s\", \"mix\": \"%s\", "
        "\"batch\": %zu, \"conns\": %d, \"mops\": %.4f, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
        "\"pfences_per_op\": %.4f, \"pwbs_per_op\": %.4f, "
        "\"misses\": %llu, \"mismatches\": %llu, \"errors\": %llu, "
        "\"chaos_events\": %llu}%s\n",
        r.layout.c_str(), r.mix.c_str(), r.pipeline, r.conns, r.mops,
        r.p50_us, r.p99_us, r.p999_us, r.pfences_per_op, r.pwbs_per_op,
        static_cast<unsigned long long>(r.misses),
        static_cast<unsigned long long>(r.mismatches),
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.chaos_events),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("flit_loadgen: wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  std::printf(
      "# flit_loadgen: %s:%d mix=%s keys=%llu value=%zuB "
      "seconds/point=%.2f%s\n",
      o.host.c_str(), o.port, o.mix.c_str(),
      static_cast<unsigned long long>(o.keys), o.value_bytes, o.seconds,
      o.sweep ? " (sweep: conns x pipeline grid)" : "");

  try {
    if (!o.no_load) load_phase(o);

    Table table({"layout", "mix", "conns", "pipeline", "Mops", "p50_us",
                 "p99_us", "p999_us", "pfences/op"});
    CsvWriter csv("flit_loadgen",
                  {"words", "layout", "mix", "batch", "conns", "Mops",
                   "p50_us", "p99_us", "p999_us", "pfences/op", "pwbs/op",
                   "misses", "mismatches", "errors", "chaos"});
    std::vector<PointRow> rows;
    if (o.sweep) {
      for (const int conns : {1, 2, 4, 8}) {
        for (const std::size_t pipeline : {1u, 4u, 16u, 64u}) {
          rows.push_back(run_point(o, conns, pipeline, csv, table));
        }
      }
    } else {
      rows.push_back(run_point(o, o.conns, o.pipeline, csv, table));
    }

    table.print("flit-server throughput vs connections x pipeline depth");
    std::printf(
        "\nExpected shape: Mops rises with pipeline depth (each burst is\n"
        "one multi-op batch on the server) and with connections until the\n"
        "worker threads saturate; pfences/op falls with pipeline depth on\n"
        "write mixes — the coalesced-fence path driven by real traffic.\n");

    std::uint64_t misses = 0, mismatches = 0, errors = 0, chaos = 0;
    for (const PointRow& r : rows) {
      misses += r.misses;
      mismatches += r.mismatches;
      errors += r.errors;
      chaos += r.chaos_events;
    }
    const bool ok = misses == 0 && mismatches == 0 && errors == 0;
    write_json("BENCH_flit_loadgen.json", rows, o, ok);

    if (o.shutdown) {
      net::Client c = net::Client::connect(
          o.host, static_cast<std::uint16_t>(o.port));
      const net::Reply r = c.command({"SHUTDOWN"});
      if (!r.ok()) {
        std::fprintf(stderr, "flit_loadgen: SHUTDOWN failed\n");
        return 1;
      }
    }
    if (!ok) {
      std::printf(
          "flit_loadgen: FAILED (%llu misses, %llu mismatches, "
          "%llu errors)\n",
          static_cast<unsigned long long>(misses),
          static_cast<unsigned long long>(mismatches),
          static_cast<unsigned long long>(errors));
      return 1;
    }
    if (o.chaos) {
      std::printf("flit_loadgen: OK (%llu chaos rounds survived)\n",
                  static_cast<unsigned long long>(chaos));
    } else {
      std::printf("flit_loadgen: OK\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flit_loadgen: fatal: %s\n", e.what());
    return 1;
  }
}
