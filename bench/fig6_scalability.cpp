// Figure 6 — scalability of the automatic BST (10K keys, 5% updates) as
// the thread count grows.
//
// Series (as in the paper): non-persistent baseline (grey), plain pwb/
// pfence placement (blue), flit-HT, flit-adjacent. Expected shape: the two
// FliT variants scale like the non-persistent baseline; plain sits far
// below and scales worse.
#include "common.hpp"
#include "ds/natarajan_bst.hpp"

namespace {

using namespace flit;
using namespace flit::bench;

template <class Words>
using Bst = ds::NatarajanBst<std::int64_t, std::int64_t, Words, Automatic>;

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t size = 10'000;

  std::vector<int> threads =
      env.args.full ? std::vector<int>{1, 4, 8, 16, 24, 32, 44, 64, 96}
                    : std::vector<int>{1, 2, 4, 8};
  if (env.args.threads > 0) threads = {env.args.threads};

  Table table({"threads", "non-persistent", "plain", "flit-HT",
               "flit-adjacent"});
  for (const int t : threads) {
    WorkloadConfig cfg = env.config(5.0, size);
    cfg.threads = t;
    const RunResult none =
        run_point([] { return Bst<VolatileWords>(); }, cfg);
    const RunResult plain = run_point([] { return Bst<PlainWords>(); }, cfg);
    const RunResult ht = run_point([] { return Bst<HashedWords>(); }, cfg);
    const RunResult adj =
        run_point([] { return Bst<AdjacentWords>(); }, cfg);
    table.add_row({Table::fmt_u(static_cast<unsigned long long>(t)),
                   Table::fmt(none.mops(), 3), Table::fmt(plain.mops(), 3),
                   Table::fmt(ht.mops(), 3), Table::fmt(adj.mops(), 3)});
  }

  table.print("Figure 6: scalability (automatic BST, 10K keys, 5% updates)");
  table.print_csv("fig6");
  std::printf(
      "\nExpected paper shape: flit-HT and flit-adjacent track the\n"
      "non-persistent baseline's scaling; plain is far below throughout.\n");
  return 0;
}
