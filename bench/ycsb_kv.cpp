// YCSB workloads over the sharded durable KV store (src/kv/).
//
// Two sweeps:
//
//   1. Scalar sweep — the words configurations of the paper's grid (plus
//      the non-persistent baseline) across the YCSB A/B/C/D/F mixes on
//      the hashed store and the scan-heavy YCSB E mix (plus F again) on
//      the ordered (skiplist-backed) store, NVtraverse method throughout
//      (the paper's production pick for traversal-heavy structures).
//
//   2. Batched sweep — the multi-op path (Store::multi_get/multi_put)
//      over the A/B/C/F mixes at batch ∈ {1, 4, 16, 64} on BOTH store
//      layouts (flit-HT words): batch=1 is the scalar per-op baseline;
//      larger batches group ops by shard, pipeline probes with software
//      prefetch, and coalesce the write path's pfences (one fence for a
//      whole batch of records, one for all of its publishes). The
//      pfences/op column is the paper's Figure-9 argument extended to
//      batching — scripts/check_fence_coalescing.py asserts the
//      amortization never regresses.
//
// Emits one CSV row per point as it completes, and a machine-readable
// BENCH_ycsb_kv.json summary at exit so the perf trajectory can be
// tracked run over run (scripts/bench_diff.py compares two snapshots).
//
// Reads verify the fetched payload's key stamp, scans additionally
// verify ascending key order, and F's read-modify-writes verify the
// exact payload version their thread last committed (put over an
// existing key is one atomic value-record CAS — a store that dropped an
// overwrite shows up as a lost update). Any mismatch, lost update, or
// miss outside D's read-latest race fails the run (exit 1), so the CTest
// smoke entry doubles as an end-to-end correctness check of the KV
// subsystem under concurrency — batched paths included.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/ycsb.hpp"
#include "common.hpp"
#include "kv/store.hpp"

namespace {

using namespace flit;
using namespace flit::bench;

struct JsonRow {
  std::string words, layout, mix;
  std::size_t batch;
  double mops, pwbs_per_op, pfences_per_op;
  double redundant_pwbs_per_op, empty_pfences_per_op;
  std::uint64_t misses, mismatches, lost_updates;
};

struct Totals {
  std::uint64_t mismatches = 0;
  std::uint64_t lost_records = 0;
  std::uint64_t lost_updates = 0;
  std::vector<JsonRow> rows;
};

template <class KV>
void run_one(const char* name, const char* layout, KV& store,
             const YcsbConfig& cfg, const Zipfian& zipf, CsvWriter& csv,
             Table& table, Totals& tot) {
  ycsb_load(store, cfg);
  const YcsbResult r = run_ycsb(store, cfg, zipf);
  tot.mismatches += r.value_mismatches;
  tot.lost_updates += r.lost_updates;
  // With atomic in-place overwrites, every mix whose reads target keys
  // that are never removed must never miss: A/B/C/F read only prefilled
  // keys (updates and RMWs replace in place — no visibility gap), and
  // under E scans start at a prefilled key and nothing is ever removed.
  // Only D's read-latest reads may race the insert they skewed towards.
  if (!cfg.mix.read_latest) {
    tot.lost_records += r.read_misses;
  }

  const std::string batch_s = Table::fmt_u(cfg.batch);
  csv.row({name, layout, cfg.mix.name, batch_s, Table::fmt(r.mops(), 3),
           Table::fmt(r.pwbs_per_op(), 3), Table::fmt(r.pfences_per_op(), 3),
           Table::fmt(r.redundant_pwbs_per_op(), 4),
           Table::fmt(r.empty_pfences_per_op(), 4),
           Table::fmt_u(r.read_misses), Table::fmt_u(r.value_mismatches),
           Table::fmt_u(r.lost_updates)});
  table.add_row({name, layout, cfg.mix.name, batch_s,
                 Table::fmt(r.mops(), 3), Table::fmt(r.pwbs_per_op(), 3),
                 Table::fmt(r.pfences_per_op(), 3)});
  tot.rows.push_back({name, layout, cfg.mix.name, cfg.batch, r.mops(),
                      r.pwbs_per_op(), r.pfences_per_op(),
                      r.redundant_pwbs_per_op(), r.empty_pfences_per_op(),
                      r.read_misses, r.value_mismatches, r.lost_updates});
}

template <class Words>
void run_words(const char* name, const YcsbConfig& base, const Zipfian& zipf,
               CsvWriter& csv, Table& table, Totals& tot) {
  const YcsbMix mixes[] = {YcsbMix::a(), YcsbMix::b(), YcsbMix::c(),
                           YcsbMix::d(), YcsbMix::f()};
  for (const YcsbMix& mix : mixes) {
    recl::Ebr::instance().drain_all();
    pmem::Pool::instance().reset();

    YcsbConfig cfg = base;
    cfg.mix = mix;

    // 8 shards, sized so chains stay short at the prefilled record count.
    kv::Store<Words, NVTraverse> store(
        8, std::max<std::size_t>(cfg.record_count / 8, 64));
    run_one(name, "hashed", store, cfg, zipf, csv, table, tot);
  }

  // YCSB E (95% short ordered scans / 5% inserts) runs on the ordered,
  // range-partitioned store — the hashed layout cannot serve scans — and
  // F runs there a second time so the overwrite CAS is verified on both
  // backends. The partition range matches the prefilled keyspace plus
  // 1/8 headroom: the prefill (and the zipfian scan starts) spread
  // across all 8 shards, and the insert frontier grows into the top
  // shard's slack before clamping there.
  for (const YcsbMix& mix : {YcsbMix::e(), YcsbMix::f()}) {
    recl::Ebr::instance().drain_all();
    pmem::Pool::instance().reset();

    YcsbConfig cfg = base;
    cfg.mix = mix;
    const auto rc = static_cast<std::int64_t>(cfg.record_count);
    kv::OrderedStore<Words, NVTraverse> store(8, /*capacity_per_shard=*/64,
                                              kv::KeyRange{0, rc + rc / 8});
    run_one(name, "ordered", store, cfg, zipf, csv, table, tot);
  }
}

/// The batched multi-op sweep: flit-HT words, A/B/C/F, both layouts,
/// batch ∈ `batches`. batch=1 runs the scalar per-op loop (the baseline
/// every larger batch is compared against).
void run_batched(const YcsbConfig& base, const Zipfian& zipf,
                 const std::vector<std::size_t>& batches, CsvWriter& csv,
                 Table& table, Totals& tot) {
  const YcsbMix mixes[] = {YcsbMix::a(), YcsbMix::b(), YcsbMix::c(),
                           YcsbMix::f()};
  const auto sweep = [&](const char* layout, auto make_store) {
    for (const YcsbMix& mix : mixes) {
      for (const std::size_t batch : batches) {
        recl::Ebr::instance().drain_all();
        pmem::Pool::instance().reset();

        YcsbConfig cfg = base;
        cfg.mix = mix;
        cfg.batch = batch;
        auto store = make_store(cfg);
        run_one("flit-ht", layout, store, cfg, zipf, csv, table, tot);
      }
    }
  };
  sweep("hashed", [](const YcsbConfig& cfg) {
    return kv::Store<HashedWords, NVTraverse>(
        8, std::max<std::size_t>(cfg.record_count / 8, 64));
  });
  sweep("ordered", [](const YcsbConfig& cfg) {
    const auto rc = static_cast<std::int64_t>(cfg.record_count);
    return kv::OrderedStore<HashedWords, NVTraverse>(
        8, /*capacity_per_shard=*/64, kv::KeyRange{0, rc + rc / 8});
  });
}

/// Write the machine-readable summary next to the CSV stream. One flat
/// JSON object, no dependencies — the fields mirror the CSV columns.
void write_json(const char* path, const Totals& tot, std::uint64_t records,
                int threads, double seconds, bool ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("ycsb_kv: warning: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"ycsb_kv\",\n  \"records\": %llu,\n"
               "  \"threads\": %d,\n  \"seconds_per_point\": %.3f,\n"
               "  \"ok\": %s,\n  \"rows\": [\n",
               static_cast<unsigned long long>(records), threads, seconds,
               ok ? "true" : "false");
  for (std::size_t i = 0; i < tot.rows.size(); ++i) {
    const JsonRow& r = tot.rows[i];
    std::fprintf(
        f,
        "    {\"words\": \"%s\", \"layout\": \"%s\", \"mix\": \"%s\", "
        "\"batch\": %zu, \"mops\": %.4f, \"pwbs_per_op\": %.4f, "
        "\"pfences_per_op\": %.4f, \"redundant_pwbs_per_op\": %.4f, "
        "\"empty_pfences_per_op\": %.4f, \"misses\": %llu, "
        "\"mismatches\": %llu, \"lost_updates\": %llu}%s\n",
        r.words.c_str(), r.layout.c_str(), r.mix.c_str(), r.batch, r.mops,
        r.pwbs_per_op, r.pfences_per_op, r.redundant_pwbs_per_op,
        r.empty_pfences_per_op,
        static_cast<unsigned long long>(r.misses),
        static_cast<unsigned long long>(r.mismatches),
        static_cast<unsigned long long>(r.lost_updates),
        i + 1 < tot.rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("ycsb_kv: wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t records = env.args.full ? 1'000'000 : 20'000;
  const std::size_t value_bytes = 100;  // YCSB default payload

  std::printf(
      "# ycsb_kv: records=%llu value=%zuB shards=8 method=%s\n"
      "# scalar: A-D, F hashed; E (scans) + F ordered. batched: A/B/C/F\n"
      "# on both layouts, batch in {1,4,16,64} (--batch=N restricts)\n",
      static_cast<unsigned long long>(records), value_bytes,
      NVTraverse::name);

  Table table(
      {"words", "layout", "mix", "batch", "Mops", "pwbs/op", "pfences/op"});
  // redundant_pwbs/op needs a FLIT_PERSIST_CHECK build to be nonzero (the
  // lint lives in the shadow line state); empty_pfences/op is always on.
  CsvWriter csv("ycsb_kv",
                {"words", "layout", "mix", "batch", "Mops", "pwbs/op",
                 "pfences/op", "redundant_pwbs/op", "empty_pfences/op",
                 "misses", "mismatches", "lost_updates"});
  Totals tot;

  YcsbConfig base;
  base.threads = env.threads;
  base.record_count = records;
  base.value_bytes = value_bytes;
  base.duration_s = env.seconds;
  // One generator for the whole sweep: the zeta sum is memoized, but the
  // object itself is also reusable across phases.
  const Zipfian zipf(base.record_count, base.zipf_theta);

  run_words<HashedWords>("flit-ht", base, zipf, csv, table, tot);
  run_words<AdjacentWords>("flit-adjacent", base, zipf, csv, table, tot);
  run_words<PerLineWords>("flit-perline", base, zipf, csv, table, tot);
  run_words<PlainWords>("plain", base, zipf, csv, table, tot);
  run_words<VolatileWords>("non-persistent", base, zipf, csv, table, tot);

  std::vector<std::size_t> batches = {1, 4, 16, 64};
  if (env.args.batch > 0) {
    batches = {1, static_cast<std::size_t>(env.args.batch)};
    if (env.args.batch == 1) batches = {1};
  }
  run_batched(base, zipf, batches, csv, table, tot);

  table.print("YCSB over the sharded KV store (NVtraverse)");
  std::printf(
      "\nExpected shape: FliT variants cluster together well above plain\n"
      "and approach the non-persistent ceiling as the read share grows\n"
      "(C > B > A); D sits near B (inserts are rare, reads hit hot\n"
      "keys); F sits near A (RMW = read + overwrite put). E's op rate\n"
      "is lower than A-D (each op is a multi-key ordered scan on the\n"
      "skiplist store), but the same FliT-vs-plain ordering holds. In\n"
      "the batched sweep, pfences/op falls roughly as 1/batch for the\n"
      "write mixes (coalesced record fence + shared publish fence) and\n"
      "throughput rises accordingly; batch=1 is the scalar baseline.\n");

  const bool ok =
      tot.mismatches == 0 && tot.lost_records == 0 && tot.lost_updates == 0;
  write_json("BENCH_ycsb_kv.json", tot, records, env.threads, env.seconds,
             ok);
  if (!ok) {
    std::printf(
        "ycsb_kv: FAILED (%llu value mismatches, %llu lost records, "
        "%llu lost updates)\n",
        static_cast<unsigned long long>(tot.mismatches),
        static_cast<unsigned long long>(tot.lost_records),
        static_cast<unsigned long long>(tot.lost_updates));
    return 1;
  }
  std::printf("ycsb_kv: OK\n");
  return 0;
}
