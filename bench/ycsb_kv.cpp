// YCSB workloads over the sharded durable KV store (src/kv/).
//
// Sweeps the words configurations of the paper's grid (plus the
// non-persistent baseline) across the YCSB A/B/C/D mixes on the hashed
// store and the scan-heavy YCSB E mix on the ordered (skiplist-backed)
// store, NVtraverse method throughout (the paper's production pick for
// traversal-heavy structures). Emits one CSV row per (words, mix) point
// as it completes.
//
// Reads verify the fetched payload's key stamp, and scans additionally
// verify ascending key order; any mismatch fails the run (exit 1), so
// the CTest smoke entry doubles as an end-to-end correctness check of
// the KV subsystem under concurrency.
#include <algorithm>

#include "bench_util/ycsb.hpp"
#include "common.hpp"
#include "kv/store.hpp"

namespace {

using namespace flit;
using namespace flit::bench;

template <class KV>
void run_one(const char* name, KV& store, const YcsbConfig& cfg,
             const Zipfian& zipf, CsvWriter& csv, Table& table,
             std::uint64_t& mismatches, std::uint64_t& lost_records) {
  ycsb_load(store, cfg);
  const YcsbResult r = run_ycsb(store, cfg, zipf);
  mismatches += r.value_mismatches;
  // Mixes whose reads can only hit stable prefilled keys must never
  // miss: under C every key is prefilled, and under E scans start at a
  // prefilled key and nothing is ever removed. (A/B misses are the
  // documented put-overwrite gap; D misses are a read-latest read racing
  // the insert it skewed towards.)
  if (cfg.mix.update_frac == 0.0 && !cfg.mix.read_latest) {
    lost_records += r.read_misses;
  }

  csv.row({name, cfg.mix.name, Table::fmt(r.mops(), 3),
           Table::fmt(r.pwbs_per_op(), 3), Table::fmt_u(r.read_misses),
           Table::fmt_u(r.value_mismatches)});
  table.add_row({name, cfg.mix.name, Table::fmt(r.mops(), 3),
                 Table::fmt(r.pwbs_per_op(), 3)});
}

template <class Words>
void run_words(const char* name, const YcsbConfig& base, const Zipfian& zipf,
               CsvWriter& csv, Table& table, std::uint64_t& mismatches,
               std::uint64_t& lost_records) {
  const YcsbMix mixes[] = {YcsbMix::a(), YcsbMix::b(), YcsbMix::c(),
                           YcsbMix::d()};
  for (const YcsbMix& mix : mixes) {
    recl::Ebr::instance().drain_all();
    pmem::Pool::instance().reset();

    YcsbConfig cfg = base;
    cfg.mix = mix;

    // 8 shards, sized so chains stay short at the prefilled record count.
    kv::Store<Words, NVTraverse> store(
        8, std::max<std::size_t>(cfg.record_count / 8, 64));
    run_one(name, store, cfg, zipf, csv, table, mismatches, lost_records);
  }

  // YCSB E (95% short ordered scans / 5% inserts) runs on the ordered,
  // range-partitioned store — the hashed layout cannot serve scans. The
  // partition range matches the prefilled keyspace plus 1/8 headroom:
  // the prefill (and the zipfian scan starts) spread across all 8
  // shards, and the insert frontier grows into the top shard's slack
  // before clamping there.
  {
    recl::Ebr::instance().drain_all();
    pmem::Pool::instance().reset();

    YcsbConfig cfg = base;
    cfg.mix = YcsbMix::e();
    const auto rc = static_cast<std::int64_t>(cfg.record_count);
    kv::OrderedStore<Words, NVTraverse> store(8, /*capacity_per_shard=*/64,
                                              kv::KeyRange{0, rc + rc / 8});
    run_one(name, store, cfg, zipf, csv, table, mismatches, lost_records);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t records = env.args.full ? 1'000'000 : 20'000;
  const std::size_t value_bytes = 100;  // YCSB default payload

  std::printf(
      "# ycsb_kv: records=%llu value=%zuB shards=8 method=%s\n"
      "# A-D: hashed store; E (scans): ordered skiplist store\n",
      static_cast<unsigned long long>(records), value_bytes,
      NVTraverse::name);

  Table table({"words", "mix", "Mops", "pwbs/op"});
  CsvWriter csv("ycsb_kv",
                {"words", "mix", "Mops", "pwbs/op", "misses", "mismatches"});
  std::uint64_t mismatches = 0;
  std::uint64_t lost_records = 0;

  YcsbConfig base;
  base.threads = env.threads;
  base.record_count = records;
  base.value_bytes = value_bytes;
  base.duration_s = env.seconds;
  // One generator for the whole sweep: construction is O(records).
  const Zipfian zipf(base.record_count, base.zipf_theta);

  run_words<HashedWords>("flit-ht", base, zipf, csv, table, mismatches,
                         lost_records);
  run_words<AdjacentWords>("flit-adjacent", base, zipf, csv, table,
                           mismatches, lost_records);
  run_words<PerLineWords>("flit-perline", base, zipf, csv, table,
                          mismatches, lost_records);
  run_words<PlainWords>("plain", base, zipf, csv, table, mismatches,
                        lost_records);
  run_words<VolatileWords>("non-persistent", base, zipf, csv, table,
                           mismatches, lost_records);

  table.print("YCSB A-E over the sharded KV store (NVtraverse)");
  std::printf(
      "\nExpected shape: FliT variants cluster together well above plain\n"
      "and approach the non-persistent ceiling as the read share grows\n"
      "(C > B > A); D sits near B (inserts are rare, reads hit hot\n"
      "keys). E's op rate is lower than A-D (each op is a multi-key\n"
      "ordered scan on the skiplist store), but the same FliT-vs-plain\n"
      "ordering holds.\n");

  if (mismatches != 0 || lost_records != 0) {
    std::printf(
        "ycsb_kv: FAILED (%llu value mismatches, %llu lost records)\n",
                static_cast<unsigned long long>(mismatches),
                static_cast<unsigned long long>(lost_records));
    return 1;
  }
  std::printf("ycsb_kv: OK\n");
  return 0;
}
