// Google-benchmark microbenchmarks of individual flit-instructions: the
// per-instruction costs that explain the figure-level results (what a
// p-load pays when clean vs tagged, what a p-store's fences cost, etc.).
#include <benchmark/benchmark.h>

#include "core/link_and_persist.hpp"
#include "core/modes.hpp"
#include "core/persist.hpp"
#include "pmem/backend.hpp"

namespace {

using namespace flit;

// The microbenches measure instruction overhead, not simulated NVRAM
// latency, so run them over the no-op backend.
struct NoOpBackendSetup {
  NoOpBackendSetup() {
    pmem::set_backend(pmem::Backend::kNoOp);
    pmem::set_sim_latency(0, 0);
  }
} g_setup;

template <class Policy>
void BM_PLoad_Clean(benchmark::State& state) {
  persist<std::uint64_t, Policy> x(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.load(kPersist));
  }
}
BENCHMARK(BM_PLoad_Clean<HashedPolicy>);
BENCHMARK(BM_PLoad_Clean<AdjacentPolicy>);
BENCHMARK(BM_PLoad_Clean<PerLinePolicy>);
BENCHMARK(BM_PLoad_Clean<PlainPolicy>);
BENCHMARK(BM_PLoad_Clean<VolatilePolicy>);

template <class Policy>
void BM_VLoad(benchmark::State& state) {
  persist<std::uint64_t, Policy> x(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.load(kVolatile));
  }
}
BENCHMARK(BM_VLoad<HashedPolicy>);
BENCHMARK(BM_VLoad<VolatilePolicy>);

template <class Policy>
void BM_PStore(benchmark::State& state) {
  persist<std::uint64_t, Policy> x(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    x.store(++v, kPersist);
  }
}
BENCHMARK(BM_PStore<HashedPolicy>);
BENCHMARK(BM_PStore<AdjacentPolicy>);
BENCHMARK(BM_PStore<PlainPolicy>);
BENCHMARK(BM_PStore<VolatilePolicy>);

template <class Policy>
void BM_PCas(benchmark::State& state) {
  persist<std::uint64_t, Policy> x(0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::uint64_t e = v;
    x.cas(e, ++v, kPersist);
  }
}
BENCHMARK(BM_PCas<HashedPolicy>);
BENCHMARK(BM_PCas<AdjacentPolicy>);

template <class Policy>
void BM_PFaa(benchmark::State& state) {
  persist<std::uint64_t, Policy> x(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.faa(1, kPersist));
  }
}
BENCHMARK(BM_PFaa<HashedPolicy>);
BENCHMARK(BM_PFaa<AdjacentPolicy>);

void BM_LapLoad_Clean(benchmark::State& state) {
  static int target = 7;
  lap_word<int*> w(&target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.load(kPersist));
  }
}
BENCHMARK(BM_LapLoad_Clean);

void BM_LapCas(benchmark::State& state) {
  static int a = 1, b = 2;
  lap_word<int*> w(&a);
  int* cur = &a;
  for (auto _ : state) {
    int* next = (cur == &a) ? &b : &a;
    w.cas(cur, next, kPersist);
    cur = next;
  }
}
BENCHMARK(BM_LapCas);

void BM_OperationCompletion(benchmark::State& state) {
  for (auto _ : state) {
    persist<int, HashedPolicy>::operation_completion();
  }
}
BENCHMARK(BM_OperationCompletion);

}  // namespace

BENCHMARK_MAIN();
