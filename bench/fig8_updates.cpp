// Figure 8 — effect of the update ratio, at two structure sizes,
// normalized to the non-persistent baseline.
//
// Paper: 44 threads, automatic durability; sizes 10K and 10M keys (128 and
// 4K for the list); update ratios 0/5/50%. Expected shape: more updates =>
// bigger gap below the baseline; large structures => all persistent
// versions approach 1.0 (traversal cache misses dominate).
#include "common.hpp"
#include "ds/harris_list.hpp"
#include "ds/hash_table.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/skiplist.hpp"

namespace {

using namespace flit;
using namespace flit::bench;
using K = std::int64_t;

template <class W>
using ListOf = ds::HarrisList<K, K, W, Automatic>;
template <class W>
using BstOf = ds::NatarajanBst<K, K, W, Automatic>;
template <class W>
using SkipOf = ds::SkipList<K, K, W, Automatic>;
template <class W>
using TableOf = ds::HashTable<K, K, W, Automatic>;

template <template <class> class DsOf>
void run_ds(const char* name, const BenchEnv& env, std::uint64_t size,
            auto make, Table& table) {
  char label[64];
  for (const double upd : {0.0, 5.0, 50.0}) {
    const WorkloadConfig cfg = env.config(upd, size);
    const double base =
        run_point([&] { return make.template operator()<
                            DsOf<VolatileWords>>(); },
                  cfg)
            .mops();
    const double plain =
        run_point([&] { return make.template operator()<
                            DsOf<PlainWords>>(); },
                  cfg)
            .mops();
    const double adj =
        run_point([&] { return make.template operator()<
                            DsOf<AdjacentWords>>(); },
                  cfg)
            .mops();
    const double ht =
        run_point([&] { return make.template operator()<
                            DsOf<HashedWords>>(); },
                  cfg)
            .mops();
    std::snprintf(label, sizeof(label), "%s/%.0f%%", name, upd);
    auto norm = [&](double v) {
      return Table::fmt(base > 0 ? v / base : 0, 3);
    };
    table.add_row({label, norm(plain), norm(adj), norm(ht),
                   Table::fmt(base, 3)});
  }
}

struct MakeDefault {
  template <class S>
  S operator()() const {
    return S();
  }
};
struct MakeBuckets {
  std::size_t n;
  template <class S>
  S operator()() const {
    return S(n);
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  // Paper sizes: 10K and 10M (lists 128 / 4K). Smoke keeps the large size
  // modest so the suite stays fast; --full uses the paper's.
  const std::uint64_t small = 10'000;
  const std::uint64_t large = env.args.full ? 10'000'000 : 100'000;
  const std::uint64_t list_small = 128;
  const std::uint64_t list_large = env.args.full ? 4'096 : 1'024;

  Table table({"structure/updates", "plain (norm)", "flit-adjacent (norm)",
               "flit-HT (norm)", "baseline Mops"});

  run_ds<BstOf>("bst-small", env, small, MakeDefault{}, table);
  run_ds<TableOf>("hashtable-small", env, small, MakeBuckets{small}, table);
  run_ds<ListOf>("list-small", env, list_small, MakeDefault{}, table);
  run_ds<SkipOf>("skiplist-small", env, small, MakeDefault{}, table);

  run_ds<BstOf>("bst-large", env, large, MakeDefault{}, table);
  run_ds<TableOf>("hashtable-large", env, large, MakeBuckets{large}, table);
  run_ds<ListOf>("list-large", env, list_large, MakeDefault{}, table);
  run_ds<SkipOf>("skiplist-large", env, large, MakeDefault{}, table);

  table.print(
      "Figure 8: update-ratio sweep, automatic durability, normalized to "
      "the non-persistent baseline");
  table.print_csv("fig8");
  std::printf(
      "\nExpected paper shape: normalized throughput falls as updates\n"
      "grow; at 0%% updates FliT is ~1.0; large structures pull all\n"
      "persistent versions back toward 1.0.\n");
  return 0;
}
